// Package datasets exposes the synthetic benchmark generators so library
// users can exercise the rhythmic pixel pipeline on realistic moving-scene
// inputs with exact ground truth: a textured world with a free camera (the
// V-SLAM setting), a portal scene with faces entering and leaving (the face
// detection setting), and an articulated walking figure (the pose
// estimation setting).
package datasets

import "repro/internal/synth"

// World is a textured canvas a virtual camera pans across.
type World = synth.World

// Pose is a 2D camera pose over a World.
type Pose = synth.Pose

// MotionProfile shapes generated camera trajectories.
type MotionProfile = synth.MotionProfile

// Motion profiles from near-static to rapid.
var (
	ProfileStatic = synth.ProfileStatic
	ProfileSlow   = synth.ProfileSlow
	ProfileMedium = synth.ProfileMedium
	ProfileFast   = synth.ProfileFast
)

// NewWorld generates a deterministic textured world.
func NewWorld(w, h int, seed int64) *World { return synth.NewWorld(w, h, seed) }

// Box is an axis-aligned ground-truth bounding box.
type Box = synth.Box

// FaceSequence is a synthetic face-detection benchmark.
type FaceSequence = synth.FaceSequence

// NewFaceSequence generates a face sequence with ground-truth boxes.
func NewFaceSequence(w, h, frames, nFaces int, seed int64) *FaceSequence {
	return synth.NewFaceSequence(w, h, frames, nFaces, seed)
}

// PoseSequence is a synthetic human-pose benchmark.
type PoseSequence = synth.PoseSequence

// Joints names the skeleton joints of PoseSequence ground truth.
var Joints = synth.Joints

// NewPoseSequence generates a walking-figure sequence.
func NewPoseSequence(w, h, frames int, seed int64) *PoseSequence {
	return synth.NewPoseSequence(w, h, frames, seed)
}

// NewMultiPoseSequence generates a sequence with several figures walking at
// different depths, speeds, and gait phases (the multi-person PoseTrack
// setting).
func NewMultiPoseSequence(w, h, frames, nPeople int, seed int64) *PoseSequence {
	return synth.NewMultiPoseSequence(w, h, frames, nPeople, seed)
}
