package datasets

import "testing"

func TestWorldAndTrajectory(t *testing.T) {
	w := NewWorld(512, 512, 1)
	poses := w.Trajectory(20, 128, 96, ProfileSlow, 2)
	if len(poses) != 20 {
		t.Fatalf("got %d poses", len(poses))
	}
	img := w.Render(poses[0], 128, 96)
	if img.W != 128 || img.H != 96 {
		t.Errorf("render %dx%d", img.W, img.H)
	}
	// All four profiles are usable.
	for _, p := range []MotionProfile{ProfileStatic, ProfileSlow, ProfileMedium, ProfileFast} {
		if p.SpeedPxPerFrame <= 0 {
			t.Errorf("profile speed %v", p.SpeedPxPerFrame)
		}
	}
}

func TestFaceSequenceFacade(t *testing.T) {
	s := NewFaceSequence(320, 240, 30, 2, 3)
	if s.Frames != 30 || len(s.Truth) != 30 {
		t.Fatal("face sequence shape wrong")
	}
	if s.RenderFrame(5) == nil {
		t.Fatal("nil render")
	}
}

func TestPoseSequenceFacade(t *testing.T) {
	single := NewPoseSequence(320, 240, 20, 4)
	if single.NumWalkers() != 1 || len(single.Truth[0]) != len(Joints) {
		t.Error("single pose shape wrong")
	}
	multi := NewMultiPoseSequence(320, 240, 20, 3, 4)
	if multi.NumWalkers() != 3 || len(multi.Truth[0]) != 3*len(Joints) {
		t.Error("multi pose shape wrong")
	}
	var b Box = multi.Truth[0][0]
	if b.W <= 0 {
		t.Error("degenerate truth box")
	}
}
