// SLAM example: the paper's §3.4 case study end to end. A virtual camera
// pans across a textured world; an ORB-style feature frontend finds
// keypoints on the decoded frames; a cycle-length policy turns the features
// into region labels for the next frame (size → extent, octave → stride,
// displacement → skip); and the rhythmic pixel system captures only those
// regions between periodic full frames.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/datasets"
	"repro/rpx"
)

const (
	width, height = 480, 360
	frames        = 60
	cycleLength   = 10
)

func main() {
	world := datasets.NewWorld(1536, 1536, 42)
	trajectory := world.Trajectory(frames, width, height, datasets.ProfileMedium, 7)

	sys, err := rpx.NewSystem(width, height, rpx.Gray8)
	if err != nil {
		log.Fatal(err)
	}
	detector := rpx.NewFeatureDetector()
	params := rpx.DefaultFeatureParams()

	// The policy closes the loop: features from the last decoded frame
	// define the regions for the next frame.
	var featureLabels rpx.RegionList
	policy := rpx.NewCyclePolicy(cycleLength, width, height,
		rpx.PolicySourceFunc(func(int) rpx.RegionList { return featureLabels }))

	var prev []rpx.KeyPoint
	for t := 0; t < frames; t++ {
		labels := policy.Labels(t)
		if len(labels) == 0 {
			labels = rpx.RegionList{rpx.FullFrame(width, height)}
		}
		if err := sys.SetRegionLabels(labels); err != nil {
			log.Fatal(err)
		}

		input := world.Render(trajectory[t], width, height)
		cs, err := sys.Capture(input)
		if err != nil {
			log.Fatal(err)
		}
		decoded, err := sys.Decoded()
		if err != nil {
			log.Fatal(err)
		}

		// Vision side: detect features on the decoded frame, estimate
		// per-feature motion against the previous frame.
		kps := detector.Detect(decoded)
		disp := meanDisplacement(prev, kps)
		prev = kps
		featureLabels = rpx.FeatureRegions(kps, disp, width, height, params)

		kind := "regions"
		if policy.IsFullCapture(t) {
			kind = "FULL   "
		}
		if t%6 == 0 {
			fmt.Printf("frame %2d [%s]: %4d labels in, %3d features out, stored %5.1f%% of pixels\n",
				t, kind, len(labels), len(kps), cs.PixelFraction*100)
		}
	}

	st := sys.Stats()
	fmt.Printf("\nover %d frames: stored %.1f%% of the pixel stream, wrote %.2f MB (frame-based: %.2f MB)\n",
		frames,
		100*float64(st.PixelsStored)/float64(st.PixelsIn),
		float64(st.BytesWritten)/1e6,
		float64(st.PixelsIn)/1e6)
	fmt.Printf("write-traffic reduction vs frame-based capture: %.0f%%\n",
		st.ReductionVsFrameBased(1)*100)
}

// meanDisplacement estimates per-frame feature motion by nearest-neighbor
// distance between consecutive keypoint sets (good enough to pick a skip
// rate; the full system uses descriptor matching).
func meanDisplacement(prev, cur []rpx.KeyPoint) float64 {
	if len(prev) == 0 || len(cur) == 0 {
		return 10 // unknown: assume fast so regions refresh every frame
	}
	var sum float64
	n := 0
	for i := 0; i < len(cur) && i < 60; i++ {
		best := 1e18
		for j := range prev {
			dx := cur[i].X - prev[j].X
			dy := cur[i].Y - prev[j].Y
			if d := dx*dx + dy*dy; d < best {
				best = d
			}
		}
		if best < 40*40 {
			sum += math.Sqrt(best)
			n++
		}
	}
	if n == 0 {
		return 10
	}
	return sum / float64(n)
}
