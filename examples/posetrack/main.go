// Pose tracking example: a walking figure's joints drive per-joint region
// labels — small full-density regions around fast joints (hands, feet) and
// strided, temporally skipped regions around slow ones (hips, head) —
// demonstrating per-region spatiotemporal control on one scene.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/datasets"
	"repro/rpx"
)

const (
	width, height = 480, 360
	frames        = 80
	cycleLength   = 10
)

func main() {
	seq := datasets.NewPoseSequence(width, height, frames, 3)
	sys, err := rpx.NewSystem(width, height, rpx.Gray8)
	if err != nil {
		log.Fatal(err)
	}
	params := rpx.DefaultBoxParams()
	params.Margin = 0.6
	params.MaxSkip = 3

	var jointLabels rpx.RegionList
	policy := rpx.NewCyclePolicy(cycleLength, width, height,
		rpx.PolicySourceFunc(func(int) rpx.RegionList { return jointLabels }))

	prev := seq.Truth[0]
	for t := 0; t < frames; t++ {
		labels := policy.Labels(t)
		if len(labels) == 0 {
			labels = rpx.RegionList{rpx.FullFrame(width, height)}
		}
		if err := sys.SetRegionLabels(labels); err != nil {
			log.Fatal(err)
		}
		cs, err := sys.Capture(seq.RenderFrame(t))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Decoded(); err != nil {
			log.Fatal(err)
		}

		// Per-joint velocities decide each region's temporal rate.
		cur := seq.Truth[t]
		vels := make([]float64, len(cur))
		for j := range cur {
			cx, cy := cur[j].Center()
			px, py := prev[j].Center()
			vels[j] = math.Hypot(cx-px, cy-py)
		}
		prev = cur
		jointLabels = rpx.BoxRegions(cur, vels, width, height, params)

		// Report on mid-cycle frames, where the rhythm is visible.
		if t%20 == 5 {
			fast, slow := rhythmSplit(jointLabels)
			fmt.Printf("frame %2d: stored %5.1f%% of pixels; %d joints sampled every frame, %d skipping\n",
				t, cs.PixelFraction*100, fast, slow)
		}
	}

	st := sys.Stats()
	fmt.Printf("\n%d joints tracked over %d frames\n", len(datasets.Joints), frames)
	fmt.Printf("stored %.1f%% of the pixel stream (%.0f%% write-traffic reduction vs frame-based)\n",
		100*float64(st.PixelsStored)/float64(st.PixelsIn),
		st.ReductionVsFrameBased(1)*100)
}

// rhythmSplit counts labels sampled every frame versus temporally skipped.
func rhythmSplit(ls rpx.RegionList) (everyFrame, skipping int) {
	for _, l := range ls {
		if l.Skip <= 1 {
			everyFrame++
		} else {
			skipping++
		}
	}
	return everyFrame, skipping
}
