// Policy-user example: the paper's two-tier developer model (§4.3.1).
// Policy makers publish named policies; a policy user picks one from the
// pool, feeds it per-frame task feedback, and lets it drive the capture —
// no policy code written. The same loop runs here against every built-in
// policy for comparison.
package main

import (
	"fmt"
	"log"

	"repro/datasets"
	"repro/rpx"
)

const (
	width, height = 480, 360
	frames        = 60
	cycleLength   = 10
)

func main() {
	fmt.Println("registered policies:")
	for _, name := range rpx.PolicyNames() {
		desc, _ := rpx.DescribePolicy(name)
		fmt.Printf("  %-15s %s\n", name, desc)
	}
	fmt.Println()

	fmt.Printf("%-15s %-14s %-12s\n", "Policy", "PixelsStored", "AvgRegions")
	for _, name := range rpx.PolicyNames() {
		stored, avgRegions, err := run(name)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-15s %-14s %-12.1f\n", name, fmt.Sprintf("%.1f%%", stored*100), avgRegions)
	}
}

// run drives one policy over the face scene, feeding it ground-truth boxes
// and feature detections as task feedback.
func run(policyName string) (stored float64, avgRegions float64, err error) {
	pol, err := rpx.BuildPolicy(policyName, width, height, cycleLength)
	if err != nil {
		return 0, 0, err
	}
	sys, err := rpx.NewSystem(width, height, rpx.Gray8)
	if err != nil {
		return 0, 0, err
	}
	seq := datasets.NewFaceSequence(width, height, frames, 4, 21)
	detector := rpx.NewFeatureDetector()
	detector.MaxFeatures = 120
	detector.GridCell = 48

	var regionSum float64
	var prevBoxes []rpx.Box
	for t := 0; t < frames; t++ {
		labels := pol.Labels(t)
		if len(labels) == 0 {
			labels = rpx.RegionList{rpx.FullFrame(width, height)}
		}
		regionSum += float64(len(labels))
		if err := sys.SetRegionLabels(labels); err != nil {
			return 0, 0, err
		}
		if _, err := sys.Capture(seq.RenderFrame(t)); err != nil {
			return 0, 0, err
		}
		decoded, err := sys.Decoded()
		if err != nil {
			return 0, 0, err
		}

		// Task feedback: feature detections for feature policies, the
		// scene's boxes (a detector stand-in) for box policies.
		kps := detector.Detect(decoded)
		boxes := seq.Truth[t]
		vels := make([]float64, len(boxes))
		for i := range boxes {
			if i < len(prevBoxes) {
				cx, cy := boxes[i].Center()
				px, py := prevBoxes[i].Center()
				dx, dy := cx-px, cy-py
				if dx < 0 {
					dx = -dx
				}
				if dy < 0 {
					dy = -dy
				}
				vels[i] = dx + dy
			} else {
				vels[i] = 5
			}
		}
		prevBoxes = boxes
		pol.Observe(rpx.PolicyFeedback{
			KeyPoints:        kps,
			MeanDisplacement: 3,
			Boxes:            boxes,
			BoxVelocities:    vels,
		})
	}
	st := sys.Stats()
	return float64(st.PixelsStored) / float64(st.PixelsIn), regionSum / frames, nil
}
