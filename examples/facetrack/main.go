// Face tracking example: faces cross a portal scene (the ChokePoint
// setting). Tracked face boxes drive box-based region labels with margins
// and motion-derived skip rates; a cycle-length sweep shows the paper's
// central tradeoff — longer cycles discard more pixels but degrade the
// boxes the tracker sees.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/datasets"
	"repro/rpx"
)

const (
	width, height = 480, 360
	frames        = 90
	numFaces      = 4
)

func main() {
	fmt.Println("cycle length sweep — face tracking on rhythmic pixel regions")
	fmt.Printf("%-12s %-16s %-18s\n", "CycleLength", "PixelsStored", "MeanTrackError(px)")
	for _, cl := range []int{5, 10, 15} {
		stored, trackErr, err := run(cl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %-16s %-18.1f\n", cl, fmt.Sprintf("%.1f%%", stored*100), trackErr)
	}
	fmt.Println("\nlonger cycles store fewer pixels; track error grows as boxes go stale between full captures.")
}

// run executes the face workload at one cycle length, returning the stored
// pixel fraction and the mean distance between region centers and the
// nearest ground-truth face.
func run(cycleLength int) (stored float64, meanErr float64, err error) {
	seq := datasets.NewFaceSequence(width, height, frames, numFaces, 11)
	sys, err := rpx.NewSystem(width, height, rpx.Gray8)
	if err != nil {
		return 0, 0, err
	}
	params := rpx.DefaultBoxParams()

	// Predictive policy: Kalman filters place regions where faces will be.
	pred := rpx.NewPredictivePolicy(width, height, params)
	policy := rpx.NewCyclePolicy(cycleLength, width, height, pred)

	var errSum float64
	errN := 0
	for t := 0; t < frames; t++ {
		labels := policy.Labels(t)
		if len(labels) == 0 {
			labels = rpx.RegionList{rpx.FullFrame(width, height)}
		}
		if err := sys.SetRegionLabels(labels); err != nil {
			return 0, 0, err
		}
		if _, err := sys.Capture(seq.RenderFrame(t)); err != nil {
			return 0, 0, err
		}
		decoded, err := sys.Decoded()
		if err != nil {
			return 0, 0, err
		}
		_ = decoded // a real app would run its detector here

		// Feed the policy the (ground-truth) face boxes as a stand-in for
		// a detector, so the example isolates the capture behavior.
		pred.Observe(seq.Truth[t])

		// Score how well the issued regions covered the actual faces.
		if !policy.IsFullCapture(t) {
			for _, g := range seq.Truth[t] {
				gx, gy := g.Center()
				best := math.Inf(1)
				for _, l := range labels {
					lx := float64(l.X) + float64(l.W)/2
					ly := float64(l.Y) + float64(l.H)/2
					if d := math.Hypot(gx-lx, gy-ly); d < best {
						best = d
					}
				}
				if !math.IsInf(best, 1) {
					errSum += best
					errN++
				}
			}
		}
	}
	st := sys.Stats()
	stored = float64(st.PixelsStored) / float64(st.PixelsIn)
	if errN > 0 {
		meanErr = errSum / float64(errN)
	}
	return stored, meanErr, nil
}
