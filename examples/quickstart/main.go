// Quickstart: encode a frame with a few rhythmic pixel regions, decode it
// back, and inspect the traffic savings — the smallest complete use of the
// rpx API.
package main

import (
	"fmt"
	"log"

	"repro/rpx"
)

func main() {
	const w, h = 640, 480

	// Build the pipeline: runtime + encoder + framebuffer + decoder.
	sys, err := rpx.NewSystem(w, h, rpx.Gray8)
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic input frame: dark background with two bright objects.
	input := rpx.NewFrame(w, h, rpx.Gray8)
	input.Fill(30)
	input.FillRect(100, 80, 200, 160, 200) // a "tracked surface"
	input.FillCircle(480, 360, 60, 230)    // a "moving object"

	// Region labels, the heart of the abstraction (Table 1):
	//  - the detailed surface at full density every frame;
	//  - the moving object at half density;
	//  - a coarse context region over the rest at stride 4, every 3rd frame.
	labels := []rpx.RegionLabel{
		{X: 90, Y: 70, W: 220, H: 180, Stride: 1, Skip: 1},
		{X: 400, Y: 280, W: 160, H: 160, Stride: 2, Skip: 1},
		{X: 0, Y: 0, W: w, H: h, Stride: 4, Skip: 3},
	}
	if err := sys.SetRegionLabels(labels); err != nil {
		log.Fatal(err)
	}

	// Capture a few frames; labels persist until replaced.
	for i := 0; i < 4; i++ {
		cs, err := sys.Capture(input)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame %d: stored %6d of %d pixels (%.1f%%), %d bytes with metadata\n",
			cs.FrameIndex, cs.EncodedPixels, w*h, cs.PixelFraction*100, cs.EncodedBytes)
	}

	// Decode the most recent frame: existing vision code sees a normal
	// frame-addressed image.
	decoded, err := sys.Decoded()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndecoded surface pixel (150,120): input=%d decoded=%d (lossless in full-density regions)\n",
		input.Gray(150, 120), decoded.Gray(150, 120))
	fmt.Printf("decoded object pixel (480,360):  input=%d decoded=%d (held neighbors under stride)\n",
		input.Gray(480, 360), decoded.Gray(480, 360))

	// A tiled accelerator can request any sub-window directly.
	window, err := sys.DecodeWindow(100, 80, 64, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window decode: %dx%d tile fetched\n", window.W, window.H)

	st := sys.Stats()
	fmt.Printf("\ntraffic: wrote %d bytes for %d input pixels — %.0f%% less than frame-based capture\n",
		st.BytesWritten, st.PixelsIn, st.ReductionVsFrameBased(1)*100)
}
