// Command rpxcamera runs the full camera pipeline — sensor, CSI link, ISP,
// rhythmic pixel encoder/decoder — over a procedurally generated scene, and
// shows what the system keeps: per-frame pixel fractions, ASCII renders of
// the decoded frame and EncMask, and end-of-run traffic totals.
//
// Usage:
//
//	rpxcamera -w 320 -h 240 -frames 30 -cl 10 -seed 7
//	rpxcamera -dump /tmp/frames    # also write decoded PGM frames
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/synth"
	"repro/internal/viz"
	"repro/rpx"
)

func main() {
	w := flag.Int("w", 320, "frame width (even)")
	h := flag.Int("h", 240, "frame height (even)")
	frames := flag.Int("frames", 30, "frames to capture")
	cl := flag.Int("cl", 10, "cycle length (full capture every N frames)")
	seed := flag.Int64("seed", 7, "scene/trajectory seed")
	dump := flag.String("dump", "", "directory to write decoded PGM frames")
	show := flag.Int("show", 1, "render every Nth frame as ASCII (0 disables)")
	flag.Parse()

	if err := run(*w, *h, *frames, *cl, *seed, *dump, *show); err != nil {
		fmt.Fprintln(os.Stderr, "rpxcamera:", err)
		os.Exit(1)
	}
}

func run(w, h, frames, cl int, seed int64, dump string, show int) error {
	pipe, err := rpx.NewCameraPipeline(rpx.CameraConfig{W: w, H: h, Seed: seed})
	if err != nil {
		return err
	}
	world := synth.NewWorld(max(4*w, 1024), max(4*h, 1024), seed)
	traj := world.Trajectory(frames, w, h, synth.ProfileMedium, seed+1)

	detector := rpx.NewFeatureDetector()
	detector.MaxFeatures = max(60, w*h/1400)
	detector.GridCell = 48
	params := rpx.DefaultFeatureParams()

	var featureLabels rpx.RegionList
	policy := rpx.NewCyclePolicy(cl, w, h,
		rpx.PolicySourceFunc(func(int) rpx.RegionList { return featureLabels }))

	var prev []rpx.KeyPoint
	for t := 0; t < frames; t++ {
		labels := policy.Labels(t)
		if len(labels) == 0 {
			labels = rpx.RegionList{rpx.FullFrame(w, h)}
		}
		if err := pipe.SetRegionLabels(labels); err != nil {
			return err
		}
		// Render an RGB scene so the Bayer sensor has color to sample.
		sceneGray := world.Render(traj[t], w, h)
		scene := rpx.NewFrame(w, h, rpx.RGB24)
		for i, v := range sceneGray.Pix {
			scene.Pix[3*i], scene.Pix[3*i+1], scene.Pix[3*i+2] = v, v, v
		}
		cs, err := pipe.CaptureScene(scene)
		if err != nil {
			return err
		}
		decoded, err := pipe.Decoded()
		if err != nil {
			return err
		}
		kps := detector.Detect(decoded)
		disp := meanShift(prev, kps)
		prev = kps
		featureLabels = rpx.FeatureRegions(kps, disp, w, h, params)

		fmt.Printf("frame %2d: %3d labels, %3d features, %5.1f%% pixels kept\n",
			t, len(labels), len(kps), cs.PixelFraction*100)
		if show > 0 && t%show == 0 {
			fmt.Println(viz.Frame(decoded, 72))
			if ef := pipe.Sys.LastEncoded(); ef != nil {
				fmt.Println(viz.Legend())
				fmt.Println(viz.Mask(ef, 72))
			}
		}
		if dump != "" {
			if err := os.MkdirAll(dump, 0o755); err != nil {
				return err
			}
			if err := decoded.SavePNM(filepath.Join(dump, fmt.Sprintf("frame%03d.pgm", t))); err != nil {
				return err
			}
		}
	}

	st := pipe.Sys.Stats()
	fe := pipe.FrontEndStats()
	fmt.Printf("\n%d frames: sensor %d, CSI %.2f MB, ISP %.1f Mpx\n",
		fe.FramesSensed, fe.FramesSensed, float64(fe.CSIBytes)/1e6, float64(fe.ISPPixels)/1e6)
	fmt.Printf("framebuffer writes %.2f MB for %.1f Mpx sensed — %.0f%% below frame-based\n",
		float64(st.BytesWritten)/1e6, float64(st.PixelsIn)/1e6,
		st.ReductionVsFrameBased(1)*100)
	return nil
}

// meanShift estimates global feature motion by nearest-neighbor pairing.
func meanShift(prev, cur []rpx.KeyPoint) float64 {
	if len(prev) == 0 || len(cur) == 0 {
		return 10
	}
	var sum float64
	n := 0
	for i := 0; i < len(cur) && i < 50; i++ {
		best := math.Inf(1)
		for j := range prev {
			d := math.Hypot(cur[i].X-prev[j].X, cur[i].Y-prev[j].Y)
			if d < best {
				best = d
			}
		}
		if best < 40 {
			sum += best
			n++
		}
	}
	if n == 0 {
		return 10
	}
	return sum / float64(n)
}
