// Command rpxbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	rpxbench -exp all            # every experiment (minutes at -scale full)
//	rpxbench -exp fig8 -scale quick
//	rpxbench -list
//
// Experiments: fig3, table4, fig8, fig9a, fig9b, fig9c, table5, energy,
// appendix, clsweep, futurework, parallel, gateway, stream, hotpath,
// maskcodec.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

// csvOut, when set, is the directory plottable experiments write CSVs into.
var csvOut string

// jsonOut, when set, is the directory benchmark experiments write committed
// BENCH_*.json documents into (e.g. -json . regenerates BENCH_gateway.json
// at the repo root).
var jsonOut string

// writeBenchJSON persists one experiment's BENCH_<name>.json via the given
// emitter.
func writeBenchJSON(name string, emit func(w *os.File) error) error {
	if jsonOut == "" {
		return nil
	}
	if err := os.MkdirAll(jsonOut, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(jsonOut, "BENCH_"+name+".json"))
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCSV persists one experiment's CSV via the given emitter.
func writeCSV(name string, emit func(w *os.File) error) error {
	if csvOut == "" {
		return nil
	}
	if err := os.MkdirAll(csvOut, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(csvOut, name+".csv"))
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type experiment struct {
	name string
	desc string
	run  func(experiments.Scale) (string, error)
}

var registry = []experiment{
	{"fig3", "ORB-SLAM case study: pixels captured & ATE (Fig. 3)", runFig3},
	{"table4", "Observed region statistics per task (Table 4)", runTable4},
	{"fig8", "Pixel memory throughput & footprint per baseline (Fig. 8)", runFig8},
	{"fig9a", "V-SLAM accuracy across baselines (Fig. 9a)", runFig9a},
	{"fig9b", "Human pose estimation mAP across baselines (Fig. 9b)", runFig9b},
	{"fig9c", "Face detection mAP across baselines (Fig. 9c)", runFig9c},
	{"table5", "Encoder resource scaling, parallel vs hybrid (Table 5)", runTable5},
	{"energy", "First-order energy model savings (§6.2, Table 6)", runEnergy},
	{"appendix", "Per-frame pixel progression over a cycle (Figs. 10-15)", runAppendix},
	{"clsweep", "Cycle length vs traffic/accuracy tradeoff (§6.1-6.2)", runCLSweep},
	{"futurework", "§7 directions: DRAM-less, in-sensor encoder, adaptive cycle", runFutureWork},
	{"parallel", "Row-band parallel encode/decode scaling vs worker count", runParallel},
	{"gateway", "rpxgw proxy overhead vs direct rpxd dial at 1/8/64 sessions", runGateway},
	{"stream", "v3 push delivery vs request/reply pull at 1/8/64 sessions", runStream},
	{"hotpath", "pooled zero-copy frame path vs copy-heavy baseline at 1/8/64 sessions", runHotpath},
	{"maskcodec", "packed (RLE) container metadata vs raw, per workload", runMaskCodec},
	{"policyloop", "closed-loop scenario policies: accuracy vs traffic over a CL sweep", runPolicyLoop},
}

func main() {
	expFlag := flag.String("exp", "all", "experiment to run (or 'all')")
	scaleFlag := flag.String("scale", "quick", "quick (seconds) or full (minutes)")
	csvDir := flag.String("csv", "", "also write CSV files for plottable experiments into this directory")
	jsonDir := flag.String("json", "", "also write BENCH_*.json files for benchmark experiments into this directory")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()
	csvOut = *csvDir
	jsonOut = *jsonDir

	if *list {
		for _, e := range registry {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}
	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "rpxbench: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	names := strings.Split(*expFlag, ",")
	if *expFlag == "all" {
		names = names[:0]
		for _, e := range registry {
			names = append(names, e.name)
		}
	}
	for _, name := range names {
		e, ok := find(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "rpxbench: unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		fmt.Printf("== %s — %s ==\n", e.name, e.desc)
		start := time.Now()
		out, err := e.run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpxbench: %s failed: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("(%s in %.1fs)\n\n", e.name, time.Since(start).Seconds())
	}
}

func find(name string) (experiment, bool) {
	for _, e := range registry {
		if e.name == name {
			return e, true
		}
	}
	return experiment{}, false
}

func runFig3(s experiments.Scale) (string, error) {
	r, err := experiments.Fig3(s)
	if err != nil {
		return "", err
	}
	return r.Report(), nil
}

func runTable4(s experiments.Scale) (string, error) {
	rows, err := experiments.Table4(s)
	if err != nil {
		return "", err
	}
	return experiments.Table4Report(rows), nil
}

func runFig8(s experiments.Scale) (string, error) {
	rows, err := experiments.Fig8(s)
	if err != nil {
		return "", err
	}
	if err := writeCSV("fig8", func(f *os.File) error { return experiments.Fig8CSV(f, rows) }); err != nil {
		return "", err
	}
	return experiments.Fig8Report(rows), nil
}

func runFig9a(s experiments.Scale) (string, error) {
	rows, err := experiments.Fig9SLAM(s)
	if err != nil {
		return "", err
	}
	if err := writeCSV("fig9a", func(f *os.File) error { return experiments.Fig9SLAMCSV(f, rows) }); err != nil {
		return "", err
	}
	return experiments.Fig9SLAMReport(rows), nil
}

func runFig9b(s experiments.Scale) (string, error) {
	rows, err := experiments.Fig9Pose(s)
	if err != nil {
		return "", err
	}
	if err := writeCSV("fig9b", func(f *os.File) error {
		return experiments.Fig9DetectionCSV(f, "pose", rows)
	}); err != nil {
		return "", err
	}
	return experiments.Fig9DetectionReport("Human pose estimation", rows), nil
}

func runFig9c(s experiments.Scale) (string, error) {
	rows, err := experiments.Fig9Face(s)
	if err != nil {
		return "", err
	}
	if err := writeCSV("fig9c", func(f *os.File) error {
		return experiments.Fig9DetectionCSV(f, "face", rows)
	}); err != nil {
		return "", err
	}
	return experiments.Fig9DetectionReport("Face detection", rows), nil
}

func runTable5(experiments.Scale) (string, error) {
	return experiments.Table5Report(experiments.Table5()), nil
}

func runEnergy(s experiments.Scale) (string, error) {
	r, err := experiments.Energy(s)
	if err != nil {
		return "", err
	}
	return r.Report(), nil
}

func runAppendix(s experiments.Scale) (string, error) {
	series, err := experiments.Appendix(s)
	if err != nil {
		return "", err
	}
	if err := writeCSV("appendix", func(f *os.File) error { return experiments.AppendixCSV(f, series) }); err != nil {
		return "", err
	}
	return experiments.AppendixReport(series), nil
}

func runFutureWork(s experiments.Scale) (string, error) {
	r, err := experiments.FutureWork(s)
	if err != nil {
		return "", err
	}
	return r.Report(), nil
}

func runCLSweep(s experiments.Scale) (string, error) {
	cls := []int{5, 10, 15}
	if s == experiments.Full {
		cls = []int{2, 5, 10, 15, 20, 30}
	}
	rows, err := experiments.CLSweep(s, cls)
	if err != nil {
		return "", err
	}
	if err := writeCSV("clsweep", func(f *os.File) error { return experiments.CLSweepCSV(f, rows) }); err != nil {
		return "", err
	}
	return experiments.CLSweepReport(rows), nil
}

func runParallel(s experiments.Scale) (string, error) {
	rows, err := experiments.ParallelScaling(s)
	if err != nil {
		return "", err
	}
	if err := writeCSV("parallel", func(f *os.File) error { return experiments.ParallelCSV(f, rows) }); err != nil {
		return "", err
	}
	return experiments.ParallelReport(rows), nil
}

func runGateway(s experiments.Scale) (string, error) {
	rows, err := experiments.GatewayOverhead(s)
	if err != nil {
		return "", err
	}
	if err := writeCSV("gateway", func(f *os.File) error { return experiments.GatewayCSV(f, rows) }); err != nil {
		return "", err
	}
	if err := writeBenchJSON("gateway", func(f *os.File) error { return experiments.GatewayJSON(f, rows) }); err != nil {
		return "", err
	}
	return experiments.GatewayReport(rows), nil
}

func runStream(s experiments.Scale) (string, error) {
	rows, err := experiments.StreamDelivery(s)
	if err != nil {
		return "", err
	}
	if err := writeCSV("stream", func(f *os.File) error { return experiments.StreamCSV(f, rows) }); err != nil {
		return "", err
	}
	if err := writeBenchJSON("stream", func(f *os.File) error { return experiments.StreamJSON(f, rows) }); err != nil {
		return "", err
	}
	return experiments.StreamReport(rows), nil
}

func runMaskCodec(s experiments.Scale) (string, error) {
	rows, err := experiments.MaskCodec(s)
	if err != nil {
		return "", err
	}
	if err := writeCSV("maskcodec", func(f *os.File) error { return experiments.MaskCodecCSV(f, rows) }); err != nil {
		return "", err
	}
	if err := writeBenchJSON("maskcodec", func(f *os.File) error { return experiments.MaskCodecJSON(f, rows) }); err != nil {
		return "", err
	}
	return experiments.MaskCodecReport(rows), nil
}

func runHotpath(s experiments.Scale) (string, error) {
	rows, err := experiments.Hotpath(s)
	if err != nil {
		return "", err
	}
	if err := writeCSV("hotpath", func(f *os.File) error { return experiments.HotpathCSV(f, rows) }); err != nil {
		return "", err
	}
	if err := writeBenchJSON("hotpath", func(f *os.File) error { return experiments.HotpathJSON(f, rows) }); err != nil {
		return "", err
	}
	return experiments.HotpathReport(rows), nil
}

func runPolicyLoop(s experiments.Scale) (string, error) {
	rows, err := experiments.PolicyLoop(s)
	if err != nil {
		return "", err
	}
	if err := writeCSV("policyloop", func(f *os.File) error { return experiments.PolicyLoopCSV(f, rows) }); err != nil {
		return "", err
	}
	if err := writeBenchJSON("policyloop", func(f *os.File) error { return experiments.PolicyLoopJSON(f, rows) }); err != nil {
		return "", err
	}
	return experiments.PolicyLoopReport(rows), nil
}
