package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestModelFor(t *testing.T) {
	for _, name := range []string{"FCH", "FCL", "Multi-ROI", "H.264", "RP10", "RP7"} {
		m, err := modelFor(name, 640, 480, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if name != "RP7" && m.Name() != name {
			t.Errorf("Name = %q, want %q", m.Name(), name)
		}
	}
	for _, bad := range []string{"RPx", "RP0", "bogus"} {
		if _, err := modelFor(bad, 640, 480, 1); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestLoadTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.txt")
	content := `# comment
full
10,10,64,64,2,1;200,100,80,80,1,2

10,12,64,64,2,1
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	frames, err := loadTrace(path, 640, 480)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("got %d frames", len(frames))
	}
	if len(frames[0]) != 1 || frames[0][0].W != 640 {
		t.Errorf("frame 0 = %v, want full", frames[0])
	}
	if len(frames[1]) != 2 {
		t.Errorf("frame 1 = %v", frames[1])
	}
	if frames[2] != nil {
		t.Errorf("blank line should be an empty frame, got %v", frames[2])
	}
	if !frames[1].IsSortedByY() {
		t.Error("regions not sorted")
	}
}

func TestLoadTraceErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"badArity":  "1,2,3\n",
		"badNumber": "a,b,c,d,e,f\n",
		"outside":   "0,0,9999,10,1,1\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadTrace(path, 640, 480); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := loadTrace(filepath.Join(dir, "missing"), 640, 480); err == nil {
		t.Error("missing file accepted")
	}
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, []byte("# only a comment\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrace(empty, 640, 480); err == nil {
		t.Error("empty trace accepted")
	}
}
