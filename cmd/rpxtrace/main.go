// Command rpxtrace runs the throughput simulator over a region label trace
// file and reports memory traffic and footprint per capture system, the
// §5.3.1 methodology as a standalone tool.
//
// The trace file holds one frame per line: semicolon-separated
// x,y,w,h,stride,skip tuples (empty line = no regions; the word "full" =
// full-frame capture). Example:
//
//	full
//	10,10,64,64,2,1;200,100,80,80,1,2
//	10,12,64,64,2,1
//
// Usage:
//
//	rpxtrace -w 1920 -h 1080 -bpp 3 -fps 30 -trace trace.txt -systems FCH,RP10,Multi-ROI
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/baseline"
	"repro/internal/region"
	"repro/internal/trace"
)

func main() {
	w := flag.Int("w", 1920, "frame width")
	h := flag.Int("h", 1080, "frame height")
	bpp := flag.Int("bpp", 3, "bytes per pixel")
	fps := flag.Float64("fps", 30, "frame rate")
	tracePath := flag.String("trace", "", "trace file (one frame of regions per line)")
	systems := flag.String("systems", "FCH,FCL,RP10,Multi-ROI,H.264", "comma-separated capture systems")
	flag.Parse()

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "rpxtrace: missing -trace")
		os.Exit(2)
	}
	frames, err := loadTrace(*tracePath, *w, *h)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpxtrace:", err)
		os.Exit(1)
	}
	cfg := trace.Config{W: *w, H: *h, BytesPerPixel: *bpp, FPS: *fps}
	fmt.Printf("%-10s %12s %12s %12s %14s %14s\n", "System", "Total MB/s", "Write MB/s", "Read MB/s", "Mean foot MB", "Peak foot MB")
	for _, name := range strings.Split(*systems, ",") {
		name = strings.TrimSpace(name)
		model, err := modelFor(name, *w, *h, *bpp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpxtrace:", err)
			os.Exit(1)
		}
		res, err := trace.Run(cfg, model, frames)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpxtrace:", err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %12.1f %12.1f %12.1f %14.1f %14.1f\n",
			name, res.TotalMBps, res.WriteMBps, res.ReadMBps, res.MeanFootprintMB, res.PeakFootprintMB)
	}
}

func modelFor(name string, w, h, bpp int) (baseline.Model, error) {
	switch {
	case name == "FCH":
		return baseline.NewFCH(w, h, bpp), nil
	case name == "FCL":
		return baseline.NewFCL(w, h, bpp, 4), nil
	case name == "Multi-ROI":
		return baseline.NewMultiROI(w, h, bpp), nil
	case name == "H.264":
		return baseline.NewH264(w, h, bpp), nil
	case strings.HasPrefix(name, "RP"):
		cl, err := strconv.Atoi(name[2:])
		if err != nil || cl < 1 {
			return nil, fmt.Errorf("bad rhythmic system %q (want RP<cycle>)", name)
		}
		return baseline.NewRhythmic(cl, w, h, bpp), nil
	}
	return nil, fmt.Errorf("unknown system %q", name)
}

func loadTrace(path string, w, h int) ([]region.List, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var frames []region.List
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			if line == "" {
				frames = append(frames, nil)
			}
		case line == "full":
			frames = append(frames, region.List{region.FullFrame(w, h)})
		default:
			var ls region.List
			for _, part := range strings.Split(line, ";") {
				part = strings.TrimSpace(part)
				if part == "" {
					continue
				}
				fields := strings.Split(part, ",")
				if len(fields) != 6 {
					return nil, fmt.Errorf("%s:%d: region %q needs 6 fields", path, lineNo, part)
				}
				var vals [6]int
				for i, fstr := range fields {
					v, err := strconv.Atoi(strings.TrimSpace(fstr))
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %v", path, lineNo, err)
					}
					vals[i] = v
				}
				l := region.Label{X: vals[0], Y: vals[1], W: vals[2], H: vals[3], Stride: vals[4], Skip: vals[5]}
				if err := l.Validate(w, h); err != nil {
					return nil, fmt.Errorf("%s:%d: %v", path, lineNo, err)
				}
				ls = append(ls, l)
			}
			frames = append(frames, ls.SortByY())
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("%s: empty trace", path)
	}
	return frames, nil
}
