package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/frame"
)

func TestParseRegions(t *testing.T) {
	ls, err := parseRegions("10,20,30,40,2,3; 50,60,16,16,1,1", 200, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 2 {
		t.Fatalf("got %d regions", len(ls))
	}
	if ls[0].X != 10 || ls[0].Stride != 2 || ls[0].Skip != 3 {
		t.Errorf("first region = %v", ls[0])
	}
	// Empty spec → full frame.
	full, err := parseRegions("", 100, 80)
	if err != nil || len(full) != 1 || full[0].W != 100 || full[0].H != 80 {
		t.Errorf("empty spec = %v, %v", full, err)
	}
	// Errors.
	for _, bad := range []string{
		"1,2,3",          // wrong arity
		"a,b,c,d,e,f",    // non-numeric
		"0,0,500,10,1,1", // outside frame
		"0,0,10,10,0,1",  // bad stride
	} {
		if _, err := parseRegions(bad, 200, 200); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestParseRegionsFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "regions.txt")
	if err := os.WriteFile(path, []byte("1,2,10,10,1,1\n20,20,5,5,2,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ls, err := parseRegions("@"+path, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 2 || ls[1].Stride != 2 {
		t.Errorf("file regions = %v", ls)
	}
	if _, err := parseRegions("@/nonexistent", 100, 100); err == nil {
		t.Error("missing file accepted")
	}
}

func TestEncodeDecodeFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.pgm")
	rpxPath := filepath.Join(dir, "f.rpx")
	out := filepath.Join(dir, "out.pgm")

	src := frame.New(32, 24, frame.Gray8)
	for i := range src.Pix {
		src.Pix[i] = uint8(i)
	}
	if err := src.SavePNM(in); err != nil {
		t.Fatal(err)
	}
	if err := encode(in, rpxPath, "4,4,16,12,1,1", 0); err != nil {
		t.Fatal(err)
	}
	if err := info(rpxPath); err != nil {
		t.Fatal(err)
	}
	if err := decode(rpxPath, out); err != nil {
		t.Fatal(err)
	}
	dec, err := frame.LoadPNM(out)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Gray(10, 10) != src.Gray(10, 10) {
		t.Error("in-region pixel lost")
	}
	if dec.Gray(0, 0) != 0 {
		t.Error("out-of-region pixel not black")
	}
	// Error paths.
	if err := encode(in, "", "", 0); err == nil {
		t.Error("missing -out accepted")
	}
	if err := decode(rpxPath, ""); err == nil {
		t.Error("missing -out accepted")
	}
	if err := info(filepath.Join(dir, "missing.rpx")); err == nil {
		t.Error("missing input accepted")
	}
}

func TestEncodeSeqDecodeSeq(t *testing.T) {
	dir := t.TempDir()
	seqDir := filepath.Join(dir, "seq")
	if err := os.MkdirAll(seqDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		fr := frame.New(16, 16, frame.Gray8)
		fr.Fill(uint8(40 * i))
		if err := fr.SavePNM(filepath.Join(seqDir, "f"+string(rune('0'+i))+".pgm")); err != nil {
			t.Fatal(err)
		}
	}
	stream := filepath.Join(dir, "s.rpxs")
	if err := encodeSeq(seqDir, stream, "2,2,8,8,1,1", 2); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "out")
	if err := decodeSeq(stream, outDir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Errorf("decoded %d frames", len(entries))
	}
	// Frame 0 was a full capture (cl=2): corner pixel survives.
	f0, err := frame.LoadPNM(filepath.Join(outDir, "frame00000.pgm"))
	if err != nil {
		t.Fatal(err)
	}
	if f0.Gray(0, 0) != 0 { // fill(0) frame
		t.Errorf("frame 0 corner = %d", f0.Gray(0, 0))
	}
	// Frame 1 (regions only): corner black, region value 40.
	f1, err := frame.LoadPNM(filepath.Join(outDir, "frame00001.pgm"))
	if err != nil {
		t.Fatal(err)
	}
	if f1.Gray(4, 4) != 40 {
		t.Errorf("frame 1 region pixel = %d, want 40", f1.Gray(4, 4))
	}
	// Empty dir fails.
	if err := encodeSeq(dir, stream, "", 0); err == nil {
		t.Error("dir without images accepted")
	}
}
