// Command rpxencode encodes and decodes frames with rhythmic pixel regions
// from the command line.
//
// Encode a PGM/PPM frame into the packed container:
//
//	rpxencode -mode encode -in frame.pgm -out frame.rpx \
//	    -regions "100,80,200,160,2,1;10,10,64,64,1,2" -frame 0
//
// Decode a container back to an image:
//
//	rpxencode -mode decode -in frame.rpx -out decoded.pgm
//
// Inspect a container:
//
//	rpxencode -mode info -in frame.rpx
//
// Regions are semicolon-separated x,y,w,h,stride,skip tuples, or "@file"
// to read one tuple per line from a file.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/region"
	"repro/internal/viz"
)

func main() {
	mode := flag.String("mode", "encode", "encode, decode, or info")
	in := flag.String("in", "", "input file (PGM/PPM for encode; .rpx for decode/info)")
	out := flag.String("out", "", "output file")
	regionsSpec := flag.String("regions", "", "regions as x,y,w,h,stride,skip;... or @file")
	frameIndex := flag.Int("frame", 0, "temporal frame index (affects skip rhythm)")
	cycleLength := flag.Int("cl", 0, "encode-seq: insert a full-frame capture every N frames (0 disables)")
	showViz := flag.Bool("viz", false, "info mode: render the EncMask as ASCII art")
	flag.Parse()
	vizFlag = *showViz

	if *in == "" {
		fail("missing -in")
	}
	var err error
	switch *mode {
	case "encode":
		err = encode(*in, *out, *regionsSpec, *frameIndex)
	case "decode":
		err = decode(*in, *out)
	case "info":
		err = info(*in)
	case "encode-seq":
		err = encodeSeq(*in, *out, *regionsSpec, *cycleLength)
	case "decode-seq":
		err = decodeSeq(*in, *out)
	default:
		fail(fmt.Sprintf("unknown mode %q", *mode))
	}
	if err != nil {
		fail(err.Error())
	}
}

// encodeSeq encodes every PGM/PPM in a directory (sorted by name) into one
// .rpxs stream. With -cl > 0 the given regions apply to intermediate frames
// and a full-frame capture is inserted every cycleLength frames.
func encodeSeq(dir, out, regionsSpec string, cycleLength int) error {
	if out == "" {
		return fmt.Errorf("missing -out")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".pgm") || strings.HasSuffix(name, ".ppm") {
			paths = append(paths, filepath.Join(dir, name))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return fmt.Errorf("no .pgm/.ppm files in %s", dir)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	sw := core.NewStreamWriter(bw)

	var enc *core.Encoder
	var labels region.List
	var totalIn, totalOut int64
	for i, path := range paths {
		fr, err := frame.LoadPNM(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if enc == nil {
			enc = core.NewEncoder(fr.W, fr.H, fr.Format)
			labels, err = parseRegions(regionsSpec, fr.W, fr.H)
			if err != nil {
				return err
			}
		}
		frameLabels := labels
		if cycleLength > 0 && i%cycleLength == 0 {
			frameLabels = region.List{region.FullFrame(fr.W, fr.H)}
		}
		if err := enc.SetRegionLabels(frameLabels); err != nil {
			return err
		}
		ef, err := enc.EncodeFrame(fr, i)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := sw.WriteFrame(ef); err != nil {
			return err
		}
		totalIn += int64(fr.SizeBytes())
		totalOut += int64(ef.TotalBytes())
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Printf("encoded %d frames from %s into %s: %d -> %d bytes (%.2fx)\n",
		len(paths), dir, out, totalIn, totalOut, float64(totalIn)/float64(totalOut))
	return nil
}

// decodeSeq replays a .rpxs stream into numbered PGM/PPM files.
func decodeSeq(in, outDir string) error {
	if outDir == "" {
		return fmt.Errorf("missing -out")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	// Peek the header for the pixel format, then replay from the start.
	sr, err := core.NewStreamReader(bufio.NewReader(f))
	if err != nil {
		return err
	}
	format := frame.Gray8
	ext := "pgm"
	if sr.BPP == 3 {
		format, ext = frame.RGB24, "ppm"
	}
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	n := 0
	err = core.DecodeStream(bufio.NewReader(f), format,
		func(idx int, dec *frame.Frame) error {
			n++
			return dec.SavePNM(filepath.Join(outDir, fmt.Sprintf("frame%05d.%s", idx, ext)))
		})
	if err != nil {
		return err
	}
	fmt.Printf("decoded %d frames from %s into %s\n", n, in, outDir)
	return nil
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "rpxencode:", msg)
	os.Exit(1)
}

func parseRegions(spec string, w, h int) (region.List, error) {
	if spec == "" {
		return region.List{region.FullFrame(w, h)}, nil
	}
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, err
		}
		spec = strings.Join(strings.Fields(string(data)), ";")
	}
	var out region.List
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ",")
		if len(fields) != 6 {
			return nil, fmt.Errorf("region %q: want 6 comma-separated fields", part)
		}
		var vals [6]int
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("region %q: %v", part, err)
			}
			vals[i] = v
		}
		l := region.Label{X: vals[0], Y: vals[1], W: vals[2], H: vals[3], Stride: vals[4], Skip: vals[5]}
		if err := l.Validate(w, h); err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

func encode(in, out, regionsSpec string, frameIndex int) error {
	if out == "" {
		return fmt.Errorf("missing -out")
	}
	fr, err := frame.LoadPNM(in)
	if err != nil {
		return err
	}
	labels, err := parseRegions(regionsSpec, fr.W, fr.H)
	if err != nil {
		return err
	}
	enc := core.NewEncoder(fr.W, fr.H, fr.Format)
	if err := enc.SetRegionLabels(labels); err != nil {
		return err
	}
	ef, err := enc.EncodeFrame(fr, frameIndex)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if _, err := ef.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	orig := fr.SizeBytes()
	fmt.Printf("encoded %s: %dx%d, %d regions, %d/%d pixels kept (%.1f%%), %d bytes total (%.2fx reduction)\n",
		in, fr.W, fr.H, len(labels), ef.NumEncodedPixels(), fr.NumPixels(),
		100*float64(ef.NumEncodedPixels())/float64(fr.NumPixels()),
		ef.TotalBytes(), float64(orig)/float64(ef.TotalBytes()))
	return nil
}

func decode(in, out string) error {
	if out == "" {
		return fmt.Errorf("missing -out")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	ef, err := core.ReadEncodedFrame(f)
	f.Close()
	if err != nil {
		return err
	}
	format := frame.Gray8
	if ef.BytesPerPixel == 3 {
		format = frame.RGB24
	}
	dec := core.NewDecoder(ef.W, ef.H, format)
	if err := dec.Push(ef); err != nil {
		return err
	}
	fr, err := dec.DecodeFrame()
	if err != nil {
		return err
	}
	if err := fr.SavePNM(out); err != nil {
		return err
	}
	fmt.Printf("decoded %s: %dx%d frame %d -> %s\n", in, ef.W, ef.H, ef.FrameIndex, out)
	return nil
}

func info(in string) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	ef, err := core.ReadEncodedFrame(f)
	if err != nil {
		return err
	}
	h := ef.Mask.Histogram()
	total := ef.W * ef.H
	fmt.Printf("%s: %dx%d, %d bytes/px, frame index %d\n", in, ef.W, ef.H, ef.BytesPerPixel, ef.FrameIndex)
	fmt.Printf("  payload: %d pixels (%d bytes)\n", ef.NumEncodedPixels(), ef.PixelDataBytes())
	fmt.Printf("  metadata: %d bytes (row offsets + EncMask)\n", ef.MetadataBytes())
	fmt.Printf("  EncMask: R=%d (%.1f%%)  St=%d (%.1f%%)  Sk=%d (%.1f%%)  N=%d (%.1f%%)\n",
		h[3], pct(h[3], total), h[1], pct(h[1], total), h[2], pct(h[2], total), h[0], pct(h[0], total))
	fmt.Printf("  compression vs raw: %.2fx\n", ef.CompressionRatio())
	if vizFlag {
		fmt.Println(viz.Legend())
		fmt.Print(viz.Mask(ef, 96))
		fmt.Print(viz.CodeHistogramBar(ef, 40))
	}
	return nil
}

// vizFlag enables the ASCII EncMask rendering in info mode.
var vizFlag bool

func pct(n, total int) float64 { return 100 * float64(n) / float64(total) }
