package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/rpx"
	"repro/rpx/client"
)

// TestServeAndDrain boots the daemon loop on a loopback listener, runs a
// client session against it, then cancels the context and verifies the
// graceful shutdown path: clean return, sessions drained, stats flushed.
func TestServeAndDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var log bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- serveAndDrain(ctx, ln, nil, 0, server.Config{}, server.TCPConfig{}, 5*time.Second, &log)
	}()

	sess, err := client.Dial(ln.Addr().String(), client.Config{W: 32, H: 32, Format: rpx.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(32, 32)}); err != nil {
		t.Fatal(err)
	}
	fr := rpx.NewFrame(32, 32, rpx.Gray8)
	for i := range fr.Pix {
		fr.Pix[i] = byte(i)
	}
	if _, err := sess.Capture(fr); err != nil {
		t.Fatal(err)
	}
	dec, err := sess.Decoded()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(fr) {
		t.Fatal("daemon round trip mismatch")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveAndDrain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	out := log.String()
	if !strings.Contains(out, "final stats") || !strings.Contains(out, "\"frames_captured\": 1") {
		t.Fatalf("final stats not flushed:\n%s", out)
	}
}

// adminGet fetches an admin URL and returns status code and body.
func adminGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// TestAdminEndpoints boots the daemon with the admin endpoint enabled,
// drives traffic through two sessions, and verifies /metrics, /healthz,
// /debug/vars, /debug/trace, and /debug/pprof — including the /healthz flip
// to 503 during the graceful drain window.
func TestAdminEndpoints(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adminLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + adminLn.Addr().String()

	hold := make(chan struct{})
	testDrainHold = hold
	defer func() { testDrainHold = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	var log bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- serveAndDrain(ctx, ln, adminLn, 64, server.Config{}, server.TCPConfig{}, 5*time.Second, &log)
	}()

	// Drive two concurrent sessions so per-session series exist.
	var sessions []*client.Session
	for i := 0; i < 2; i++ {
		sess, err := client.Dial(ln.Addr().String(), client.Config{W: 32, H: 32, Format: rpx.Gray8})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
		if err := sess.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(32, 32)}); err != nil {
			t.Fatal(err)
		}
		fr := rpx.NewFrame(32, 32, rpx.Gray8)
		for j := range fr.Pix {
			fr.Pix[j] = byte(i + j)
		}
		for c := 0; c < 3; c++ {
			if _, err := sess.Capture(fr); err != nil {
				t.Fatal(err)
			}
		}
		dec, err := sess.Decoded()
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Equal(fr) {
			t.Fatal("round trip mismatch")
		}
	}

	// Healthy while serving.
	if code, body := adminGet(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz while serving: code=%d body=%q", code, body)
	}

	// /metrics: global counters, op latency histograms, per-session series
	// (scraped while sessions are still open).
	_, metrics := adminGet(t, base+"/metrics")
	for _, want := range []string{
		"rpxd_frames_captured_total 6",
		"rpxd_sessions_opened_total 2",
		"rpxd_sessions_open 2",
		"rpxd_op_latency_seconds_bucket",
		`rpxd_op_latency_seconds_count{op="capture"}`,
		`rpxd_session_frames_captured_total{session="1"} 3`,
		`rpxd_session_frames_captured_total{session="2"} 3`,
		`rpxd_session_op_latency_seconds_count{op="capture",session="1"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("metrics body:\n%s", metrics)
	}

	// /debug/vars is valid JSON holding the same families.
	_, vars := adminGet(t, base+"/debug/vars")
	var varsDoc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &varsDoc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, vars)
	}
	if _, ok := varsDoc["rpxd_frames_captured_total"]; !ok {
		t.Fatalf("/debug/vars missing rpxd_frames_captured_total:\n%s", vars)
	}

	// /debug/trace: spans for every frame-path op.
	_, trace := adminGet(t, base+"/debug/trace")
	var traceDoc struct {
		Total int `json:"total"`
		Spans []struct {
			Op string `json:"op"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(trace), &traceDoc); err != nil {
		t.Fatalf("/debug/trace not JSON: %v\n%s", err, trace)
	}
	if traceDoc.Total == 0 {
		t.Fatalf("/debug/trace has no spans:\n%s", trace)
	}
	seen := map[string]bool{}
	for _, sp := range traceDoc.Spans {
		seen[sp.Op] = true
	}
	for _, op := range []string{"classify", "pack", "push", "decode"} {
		if !seen[op] {
			t.Errorf("/debug/trace missing op %q (saw %v)", op, seen)
		}
	}

	// pprof index answers.
	if code, _ := adminGet(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ code=%d", code)
	}

	for _, sess := range sessions {
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Trigger shutdown; serveAndDrain flips /healthz to 503 and then blocks
	// on testDrainHold, so the draining window is observable here.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := adminGet(t, base+"/healthz")
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "draining") {
				t.Fatalf("/healthz draining body=%q", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/healthz never flipped to 503 after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(hold)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveAndDrain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if out := log.String(); !strings.Contains(out, "rpxd: admin listening on "+adminLn.Addr().String()) {
		t.Fatalf("admin listen line not logged:\n%s", out)
	}
}
