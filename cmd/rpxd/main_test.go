package main

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/rpx"
	"repro/rpx/client"
)

// TestServeAndDrain boots the daemon loop on a loopback listener, runs a
// client session against it, then cancels the context and verifies the
// graceful shutdown path: clean return, sessions drained, stats flushed.
func TestServeAndDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var log bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- serveAndDrain(ctx, ln, server.Config{}, server.TCPConfig{}, 5*time.Second, &log)
	}()

	sess, err := client.Dial(ln.Addr().String(), client.Config{W: 32, H: 32, Format: rpx.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(32, 32)}); err != nil {
		t.Fatal(err)
	}
	fr := rpx.NewFrame(32, 32, rpx.Gray8)
	for i := range fr.Pix {
		fr.Pix[i] = byte(i)
	}
	if _, err := sess.Capture(fr); err != nil {
		t.Fatal(err)
	}
	dec, err := sess.Decoded()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(fr) {
		t.Fatal("daemon round trip mismatch")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveAndDrain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	out := log.String()
	if !strings.Contains(out, "final stats") || !strings.Contains(out, "\"frames_captured\": 1") {
		t.Fatalf("final stats not flushed:\n%s", out)
	}
}
