package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync/atomic"

	"repro/internal/obs"
)

// health is the /healthz state: it answers 200 while serving and flips to
// 503 the moment graceful drain begins, so load balancers and probes stop
// routing to a daemon that is winding down.
type health struct{ draining atomic.Bool }

// setDraining flips the endpoint to 503.
func (h *health) setDraining() { h.draining.Store(true) }

// ServeHTTP implements the /healthz handler.
func (h *health) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if h.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// newAdminMux assembles the admin endpoint: Prometheus metrics, JSON
// metrics, health, the frame-path trace dump, and pprof.
func newAdminMux(reg *obs.Registry, tracer *obs.Tracer, h *health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/healthz", h)
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		tracer.WriteJSON(w)
	})
	// pprof is routed explicitly onto this mux (the blank import of
	// net/http/pprof only registers on http.DefaultServeMux, which the
	// admin server deliberately does not use).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
