// Command rpxd serves rhythmic-pixel capture/decode sessions over TCP.
//
// Each client connection negotiates one session (geometry, pixel format,
// decoder history depth, queue depth, backpressure mode) via the rpxd wire
// protocol and then streams frames in and reconstructed pixels out. Every
// session runs its own encoder/decoder pipeline on a dedicated worker
// goroutine behind a bounded request queue, so N clients capture and decode
// concurrently with independent rhythms.
//
// Usage:
//
//	rpxd -addr :7621 -max-sessions 64 -queue-depth 16 -idle-ttl 5m
//
// Sessions idle longer than -idle-ttl are evicted (their connections
// closed, their slots freed) so abandoned clients cannot pin -max-sessions;
// 0 disables eviction and leaves only the per-read -read-timeout guard.
//
// Protocol v3 connections may also SUBSCRIBE to another session's frame
// stream: the connection switches into push mode and receives FRAME_PUSH
// batches under a credit window granted by the subscriber, so a stalled
// consumer drops frames (counted) instead of buffering unboundedly or
// stalling the producer. The rpxd_stream_* metric series on /metrics
// tracks open subscriptions, pushed/dropped frames, and in-flight buffered
// frames.
//
// With -admin the daemon also serves an observability endpoint on a second
// address: /metrics (Prometheus text), /healthz (200 while serving, 503
// once drain begins), /debug/vars (metrics as JSON), /debug/trace (recent
// frame-path spans), and /debug/pprof/*. The admin endpoint stays up
// through the drain so the last scrape sees final counter values.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, queued
// requests drain, and the final statistics snapshot is written to stderr as
// JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// testDrainHold, when non-nil (tests only), is waited on after /healthz
// flips to draining and before session queues drain, so tests can observe
// the 503 window deterministically.
var testDrainHold <-chan struct{}

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		addr         = flag.String("addr", ":7621", "listen address")
		adminAddr    = flag.String("admin", "", "admin listen address for /metrics, /healthz, /debug/vars, /debug/trace, /debug/pprof (empty = disabled)")
		traceSpans   = flag.Int("trace-spans", obs.DefaultTraceSpans, "frame-path tracer ring capacity in spans")
		maxSessions  = flag.Int("max-sessions", server.DefaultMaxSessions, "maximum concurrent sessions")
		queueDepth   = flag.Int("queue-depth", server.DefaultQueueDepth, "default per-session request queue bound")
		readTimeout  = flag.Duration("read-timeout", server.DefaultReadTimeout, "per-read connection deadline")
		writeTimeout = flag.Duration("write-timeout", server.DefaultWriteTimeout, "per-write connection deadline")
		maxPayload   = flag.Int("max-payload", 0, "per-message payload cap in bytes (0 = 32 MiB)")
		drainTime    = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain budget")
		idleTTL      = flag.Duration("idle-ttl", 0, "evict sessions idle longer than this (0 = never)")
		idleSweep    = flag.Duration("idle-sweep", 0, "idle janitor scan interval (0 = idle-ttl/4)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var adminLn net.Listener
	if *adminAddr != "" {
		var err error
		adminLn, err = net.Listen("tcp", *adminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpxd: admin listen:", err)
			return 1
		}
	}

	if err := run(ctx, *addr, adminLn, *traceSpans, server.Config{
		MaxSessions:   *maxSessions,
		QueueDepth:    *queueDepth,
		IdleTTL:       *idleTTL,
		SweepInterval: *idleSweep,
	}, server.TCPConfig{
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		MaxPayload:   *maxPayload,
	}, *drainTime, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rpxd:", err)
		return 1
	}
	return 0
}

// run serves until ctx is cancelled, then drains and flushes stats to logw.
// adminLn, when non-nil, is taken over by the admin HTTP endpoint.
func run(ctx context.Context, addr string, adminLn net.Listener, traceSpans int, mcfg server.Config, tcfg server.TCPConfig, drainTime time.Duration, logw io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if adminLn != nil {
			adminLn.Close()
		}
		return err
	}
	return serveAndDrain(ctx, ln, adminLn, traceSpans, mcfg, tcfg, drainTime, logw)
}

// serveAndDrain runs the server on an existing listener until ctx is
// cancelled, then performs the graceful shutdown sequence: flip /healthz to
// draining, close the listener, drain session queues, flush the final stats
// snapshot, and only then stop the admin endpoint.
func serveAndDrain(ctx context.Context, ln, adminLn net.Listener, traceSpans int, mcfg server.Config, tcfg server.TCPConfig, drainTime time.Duration, logw io.Writer) error {
	var (
		hstate   *server.Health
		adminSrv *http.Server
		reg      *obs.Registry
		tracer   *obs.Tracer
	)
	if adminLn != nil {
		if traceSpans <= 0 {
			traceSpans = obs.DefaultTraceSpans
		}
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(traceSpans)
		mcfg.Metrics = reg
		mcfg.Trace = tracer
	}
	mgr := server.NewManager(mcfg)
	if adminLn != nil {
		hstate = server.NewHealth(mgr.SessionsOpen)
		adminSrv = &http.Server{Handler: newAdminMux(reg, tracer, hstate)}
		go adminSrv.Serve(adminLn)
		fmt.Fprintf(logw, "rpxd: admin listening on %s\n", adminLn.Addr())
	}

	srv := server.NewTCPServer(mgr, tcfg)
	fmt.Fprintf(logw, "rpxd: listening on %s (max sessions %d, queue depth %d)\n",
		ln.Addr(), mcfg.MaxSessions, mcfg.QueueDepth)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	stopAdmin := func() {
		if adminSrv != nil {
			closeCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			adminSrv.Shutdown(closeCtx)
			cancel()
		}
	}

	select {
	case err := <-serveErr:
		srv.Shutdown(context.Background())
		stopAdmin()
		return err
	case <-ctx.Done():
	}

	if hstate != nil {
		hstate.SetDraining()
	}
	if testDrainHold != nil {
		<-testDrainHold
	}

	fmt.Fprintln(logw, "rpxd: shutting down, draining sessions")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTime)
	defer cancel()
	shutdownErr := srv.Shutdown(drainCtx)
	<-serveErr // Serve returns nil once the listener closes under drain

	snap := srv.Manager().Snapshot()
	if b, err := json.MarshalIndent(snap, "", "  "); err == nil {
		fmt.Fprintf(logw, "rpxd: final stats\n%s\n", b)
	}
	stopAdmin()
	if shutdownErr != nil {
		return fmt.Errorf("drain incomplete: %w", shutdownErr)
	}
	return nil
}
