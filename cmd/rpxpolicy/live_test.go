package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/rpx"
	"repro/rpx/client"
)

// TestLivePolicyLoop is the CI policy-loop smoke, gated on RPXPOLICY_ADDR
// (an rpxd or rpxgw address) and RPXPOLICY_BIN (a built rpxpolicy binary).
// It opens a producer session, execs the real worker binary against it, and
// streams a synthetic moving-box scene while asserting the three things the
// closed loop promises:
//
//  1. the worker's labels actually steer the producer — the captured pixel
//     fraction changes across at least two policy cycles;
//  2. the decoded output stays byte-consistent with the oracle — a local
//     decoder fed the producer's encoded stream (via a side subscription)
//     reconstructs exactly what the server serves as Decoded(), across
//     every label change the worker makes;
//  3. the worker's admin endpoint reports >= 2 completed cycles, and
//     SIGTERM drains it cleanly with a final stats flush.
func TestLivePolicyLoop(t *testing.T) {
	addr := os.Getenv("RPXPOLICY_ADDR")
	bin := os.Getenv("RPXPOLICY_BIN")
	if addr == "" || bin == "" {
		t.Skip("RPXPOLICY_ADDR / RPXPOLICY_BIN not set; live policy-loop smoke runs only under scripts/ci.sh")
	}

	const w, h = 64, 48
	producer, err := client.Dial(addr, client.Config{W: w, H: h, Format: rpx.Gray8, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if err := producer.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(w, h)}); err != nil {
		t.Fatal(err)
	}

	// Side subscription: the oracle's view of the encoded stream.
	watcher, err := client.Dial(addr, client.Config{W: 8, H: 8, Format: rpx.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()
	st, err := watcher.Subscribe(client.SubscribeOptions{Target: producer.ID(), Credit: 512, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}

	// The real worker binary, steering the producer through the same server.
	var workerLog lockedBuffer
	worker := exec.Command(bin,
		"-addr", addr,
		"-target", fmt.Sprint(producer.ID()),
		"-policy", "motion-skip",
		"-cl", "2",
		"-w", fmt.Sprint(w), "-h", fmt.Sprint(h),
		"-admin", "127.0.0.1:0",
	)
	stderr, err := worker.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := worker.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	defer func() {
		worker.Process.Kill()
		worker.Wait()
	}()
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			workerLog.append(sc.Text() + "\n")
		}
	}()
	adminAddr := ""
	for deadline := time.Now().Add(10 * time.Second); adminAddr == ""; {
		if time.Now().After(deadline) {
			t.Fatalf("worker admin endpoint never came up; log:\n%s", workerLog.String())
		}
		for _, line := range strings.Split(workerLog.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "rpxpolicy: admin listening on "); ok {
				adminAddr = rest
			}
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Stream the moving-box scene until the worker has demonstrably steered
	// the capture rhythm at least twice, byte-checking every frame.
	oracle := core.NewDecoder(w, h, rpx.Gray8)
	fr := rpx.NewFrame(w, h, rpx.Gray8)
	fractions := map[string]bool{}
	nextSeq := uint64(0)
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; len(fractions) < 3; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("labels never changed across 2 cycles: saw fractions %v; worker log:\n%s",
				fractions, workerLog.String())
		}
		for p := range fr.Pix {
			fr.Pix[p] = 24
		}
		bx, by := (i*4)%(w-16), (i*2)%(h-16)
		for y := by; y < by+16; y++ {
			for x := bx; x < bx+16; x++ {
				fr.Pix[y*w+x] = 232
			}
		}
		cs, err := producer.Capture(fr)
		if err != nil {
			t.Fatal(err)
		}
		fractions[fmt.Sprintf("%.4f", cs.PixelFraction)] = true
		serverDec, err := producer.Decoded()
		if err != nil {
			t.Fatal(err)
		}
		// Drain the side subscription up to this frame and replay it through
		// the local decoder: the oracle must agree with the server's decode
		// byte-for-byte, whatever labels the worker just installed.
		for {
			sf, err := st.Recv()
			if err != nil {
				t.Fatalf("oracle stream: %v", err)
			}
			if sf.Seq != nextSeq {
				t.Fatalf("oracle stream dropped frames: seq %d, want %d (raise credit)", sf.Seq, nextSeq)
			}
			nextSeq++
			if nextSeq%64 == 0 {
				if err := st.Grant(64); err != nil {
					t.Fatalf("oracle credit grant: %v", err)
				}
			}
			ef, err := sf.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if err := oracle.Push(ef); err != nil {
				t.Fatal(err)
			}
			if sf.Seq == uint64(cs.FrameIndex) {
				break
			}
		}
		oracleDec, err := oracle.DecodeFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !oracleDec.Equal(serverDec) {
			t.Fatalf("frame %d: server decode differs from the oracle decoder (fraction %.4f)",
				cs.FrameIndex, cs.PixelFraction)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The worker's own accounting: >= 2 completed cycles on /metrics.
	cycles := scrapeCounter(t, adminAddr, "rpxpolicy_cycles_total")
	if cycles < 2 {
		t.Fatalf("worker reports %v cycles, want >= 2; log:\n%s", cycles, workerLog.String())
	}
	if pushed := scrapeCounter(t, adminAddr, "rpxpolicy_labels_pushed_total"); pushed < 2 {
		t.Fatalf("worker reports %v pushed workloads, want >= 2", pushed)
	}

	// Graceful drain on SIGTERM with a final stats flush.
	if err := worker.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- worker.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("worker exit: %v; log:\n%s", err, workerLog.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("worker did not drain on SIGTERM; log:\n%s", workerLog.String())
	}
	if !strings.Contains(workerLog.String(), "final stats") {
		t.Fatalf("no final stats flush; log:\n%s", workerLog.String())
	}

	if err := st.Close(); err != nil {
		t.Fatalf("oracle stream close: %v", err)
	}
}

// scrapeCounter fetches one counter value from a Prometheus /metrics page.
func scrapeCounter(t *testing.T, adminAddr, name string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + adminAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parse %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("/metrics lacks %s:\n%s", name, body)
	return 0
}

// lockedBuffer is a strings.Builder safe for the reader goroutine and the
// polling test body.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) append(s string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.WriteString(s)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
