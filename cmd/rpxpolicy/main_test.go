package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/policyloop"
	"repro/internal/server"
	"repro/rpx"
	"repro/rpx/client"
)

// TestListPolicies: every registered policy appears with its description —
// the -list-policies surface the unknown-name Build error points at.
func TestListPolicies(t *testing.T) {
	var buf bytes.Buffer
	listPolicies(&buf)
	out := buf.String()
	names := policy.Names()
	if len(names) < 7 {
		t.Fatalf("registry has %d policies, want the 4 paper policies plus 3 scenarios", len(names))
	}
	for _, name := range names {
		if !strings.Contains(out, name+"\t") {
			t.Errorf("listing lacks %q:\n%s", name, out)
		}
		desc, _ := policy.Describe(name)
		if !strings.Contains(out, desc) {
			t.Errorf("listing lacks the description of %q", name)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]rpx.Format{"gray8": rpx.Gray8, "rgb24": rpx.RGB24, "yuv444": rpx.YUV444} {
		got, err := parseFormat(s)
		if err != nil || got != want {
			t.Errorf("parseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseFormat("bayer"); err == nil {
		t.Error("parseFormat accepted an unknown format")
	}
}

// TestRunClosesLoop boots the worker's run() against an in-process rpxd,
// with the admin endpoint live, and verifies: the loop steers the producer
// (captures drop below full frame), /metrics exports the rpxpolicy_* series,
// and cancellation drains cleanly with a final stats flush.
func TestRunClosesLoop(t *testing.T) {
	const w, h = 64, 48
	mgr := server.NewManager(server.Config{})
	srv := server.NewTCPServer(mgr, server.TCPConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	producer, err := client.Dial(ln.Addr().String(), client.Config{W: w, H: h, Format: rpx.Gray8, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if err := producer.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(w, h)}); err != nil {
		t.Fatal(err)
	}

	adminLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var log bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, adminLn, policyloop.Config{
			Addr:        ln.Addr().String(),
			Target:      producer.ID(),
			Policy:      "saliency-stride",
			CycleLength: 2,
			W:           w, H: h, Format: rpx.Gray8,
		}, &log)
	}()

	fr := rpx.NewFrame(w, h, rpx.Gray8)
	steered := false
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; !steered; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("worker never steered the producer; log:\n%s", log.String())
		}
		for p := range fr.Pix {
			fr.Pix[p] = 16
		}
		bx, by := (i*4)%(w-16), (i*2)%(h-16)
		for y := by; y < by+16; y++ {
			for x := bx; x < bx+16; x++ {
				fr.Pix[y*w+x] = 240
			}
		}
		cs, err := producer.Capture(fr)
		if err != nil {
			t.Fatal(err)
		}
		steered = cs.PixelFraction < 0.99
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get("http://" + adminLn.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{"rpxpolicy_cycles_total", "rpxpolicy_labels_pushed_total", "rpxpolicy_cycle_lag_seconds"} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics lacks %s", series)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after cancel = %v; log:\n%s", err, log.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not drain; log:\n%s", log.String())
	}
	if !strings.Contains(log.String(), "final stats") {
		t.Fatalf("no final stats flush in log:\n%s", log.String())
	}
}
