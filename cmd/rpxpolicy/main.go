// Command rpxpolicy runs the closed-loop region-policy worker: it
// subscribes to a producing session's frame stream on an rpxd (or through
// an rpxgw), decodes the pushed frames, runs a registry-selected policy
// over the observed scene once per cycle, and pushes the resulting
// region-label workload back to the producer with in-stream label feedback
// (protocol v5). The producer's capture rhythm is then steered by what the
// policy saw — the deployment shape the paper's §4.3.1 policy/user split
// implies, with the policy in its own process.
//
// Usage:
//
//	rpxpolicy -addr localhost:7621 -target 3 -policy motion-skip -w 640 -h 480 -cl 4
//
// -list-policies prints the registered policies with their descriptions and
// exits; -policy accepts any of those names. With -admin the worker serves
// /metrics (the rpxpolicy_* series), /healthz, /debug/vars, and
// /debug/pprof on a second address.
//
// SIGINT/SIGTERM drain gracefully: the subscription closes cleanly and the
// final loop statistics are written to stderr as JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/policyloop"
	"repro/internal/server"
	"repro/rpx"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		addr       = flag.String("addr", "localhost:7621", "rpxd or rpxgw address")
		target     = flag.Uint64("target", 0, "producing session id to steer")
		policyName = flag.String("policy", "motion-skip", "region policy (see -list-policies)")
		listPol    = flag.Bool("list-policies", false, "print the registered policies and exit")
		cl         = flag.Int("cl", policyloop.DefaultCycleLength, "cycle length: frames between policy observations")
		width      = flag.Int("w", 0, "target frame width")
		height     = flag.Int("h", 0, "target frame height")
		format     = flag.String("format", "gray8", "target pixel format: gray8, rgb24, yuv444")
		tile       = flag.Int("tile", 0, "motion-grid tile pitch in pixels (0 = default)")
		feats      = flag.Bool("features", false, "run the feature/track frontend (gray8 targets)")
		credit     = flag.Int("credit", policyloop.DefaultCredit, "push credit window in frames")
		batch      = flag.Int("batch", policyloop.DefaultBatch, "frames per push batch")
		timeout    = flag.Duration("timeout", 0, "stream read timeout (0 = client default)")
		reconnect  = flag.Bool("reconnect", true, "re-attach after transport errors")
		maxRetries = flag.Int("max-retries", policyloop.DefaultMaxRetries, "consecutive failed re-attach attempts before giving up")
		backoff    = flag.Duration("backoff", policyloop.DefaultBackoff, "base re-attach backoff")
		adminAddr  = flag.String("admin", "", "admin listen address for /metrics, /healthz, /debug/vars, /debug/pprof (empty = disabled)")
	)
	flag.Parse()

	if *listPol {
		listPolicies(os.Stdout)
		return 0
	}
	f, err := parseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpxpolicy:", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var adminLn net.Listener
	if *adminAddr != "" {
		adminLn, err = net.Listen("tcp", *adminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpxpolicy: admin listen:", err)
			return 1
		}
	}

	if err := run(ctx, adminLn, policyloop.Config{
		Addr:        *addr,
		Target:      *target,
		Policy:      *policyName,
		CycleLength: *cl,
		W:           *width,
		H:           *height,
		Format:      f,
		Tile:        *tile,
		Features:    *feats,
		Credit:      *credit,
		Batch:       *batch,
		Timeout:     *timeout,
		Reconnect:   *reconnect,
		MaxRetries:  *maxRetries,
		Backoff:     *backoff,
	}, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rpxpolicy:", err)
		return 1
	}
	return 0
}

// run drives one loop until ctx cancels, serving the admin endpoint (when
// adminLn is non-nil) for its whole lifetime and flushing the final stats
// snapshot to logw.
func run(ctx context.Context, adminLn net.Listener, cfg policyloop.Config, logw io.Writer) error {
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	cfg.Logf = func(format string, args ...any) {
		fmt.Fprintf(logw, format+"\n", args...)
	}
	loop, err := policyloop.New(cfg)
	if err != nil {
		return err
	}

	var adminSrv *http.Server
	var hstate *server.Health
	if adminLn != nil {
		hstate = server.NewHealth(func() int { return int(loop.Stats().Frames) })
		adminSrv = &http.Server{Handler: newAdminMux(reg, hstate)}
		go adminSrv.Serve(adminLn)
		fmt.Fprintf(logw, "rpxpolicy: admin listening on %s\n", adminLn.Addr())
	}

	fmt.Fprintf(logw, "rpxpolicy: steering session %d on %s (policy %s, CL %d)\n",
		cfg.Target, cfg.Addr, cfg.Policy, cfg.CycleLength)
	runErr := loop.Run(ctx)

	if hstate != nil {
		hstate.SetDraining()
	}
	snap := loop.Stats()
	if b, err := json.MarshalIndent(snap, "", "  "); err == nil {
		fmt.Fprintf(logw, "rpxpolicy: final stats\n%s\n", b)
	}
	if adminSrv != nil {
		closeCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		adminSrv.Shutdown(closeCtx)
		cancel()
	}
	return runErr
}

// listPolicies prints the registry, one "name\tdescription" line each.
func listPolicies(w io.Writer) {
	for _, name := range policy.Names() {
		desc, _ := policy.Describe(name)
		fmt.Fprintf(w, "%s\t%s\n", name, desc)
	}
}

// parseFormat maps the -format flag to a pixel format.
func parseFormat(s string) (rpx.Format, error) {
	switch s {
	case "gray8":
		return rpx.Gray8, nil
	case "rgb24":
		return rpx.RGB24, nil
	case "yuv444":
		return rpx.YUV444, nil
	}
	return 0, fmt.Errorf("unknown format %q (want gray8, rgb24, or yuv444)", s)
}
