package main

import (
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
	"repro/internal/server"
)

// newAdminMux assembles the worker's admin endpoint: Prometheus metrics
// (the rpxpolicy_* series), JSON metrics, health, and pprof — the same
// surface rpxd and rpxgw expose, so one scrape config covers the fleet.
func newAdminMux(reg *obs.Registry, h *server.Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/healthz", h)
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.WriteJSON(w)
	})
	// pprof is routed explicitly onto this mux (the blank import of
	// net/http/pprof only registers on http.DefaultServeMux, which the
	// admin server deliberately does not use).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
