package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/rpx"
	"repro/rpx/client"
)

// startBackend boots an in-process rpxd for the daemon tests.
func startBackend(t *testing.T) string {
	t.Helper()
	mgr := server.NewManager(server.Config{})
	srv := server.NewTCPServer(mgr, server.TCPConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

// TestServeAndDrain boots the gateway daemon loop on a loopback listener
// with one real rpxd behind it, proxies a client session end to end, then
// cancels the context and verifies the graceful shutdown path: clean
// return, snapshot flushed.
func TestServeAndDrain(t *testing.T) {
	backend := startBackend(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var log bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- serveAndDrain(ctx, ln, nil, gateway.Config{
			Backends: []gateway.Backend{{Addr: backend}},
			Health:   gateway.WatcherConfig{Interval: time.Hour},
		}, 5*time.Second, &log)
	}()

	sess, err := client.Dial(ln.Addr().String(), client.Config{W: 32, H: 32, Format: rpx.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(32, 32)}); err != nil {
		t.Fatal(err)
	}
	fr := rpx.NewFrame(32, 32, rpx.Gray8)
	for i := range fr.Pix {
		fr.Pix[i] = byte(i)
	}
	if _, err := sess.Capture(fr); err != nil {
		t.Fatal(err)
	}
	dec, err := sess.Decoded()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(fr) {
		t.Fatal("gateway round trip mismatch")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveAndDrain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gateway did not shut down")
	}
	out := log.String()
	if !strings.Contains(out, "final stats") || !strings.Contains(out, "\"sessions_total\": 1") {
		t.Fatalf("final stats not flushed:\n%s", out)
	}
}

// adminGet fetches an admin URL and returns status code and body.
func adminGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// TestAdminEndpoints boots the gateway with the admin endpoint enabled,
// drives proxied traffic, and verifies /metrics, /healthz (including the
// 503 draining window and its JSON body), /debug/vars, and /debug/pprof.
func TestAdminEndpoints(t *testing.T) {
	backend := startBackend(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adminLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + adminLn.Addr().String()

	hold := make(chan struct{})
	testDrainHold = hold
	defer func() { testDrainHold = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	var log bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- serveAndDrain(ctx, ln, adminLn, gateway.Config{
			Backends: []gateway.Backend{{Addr: backend}},
			Health:   gateway.WatcherConfig{Interval: time.Hour},
		}, 5*time.Second, &log)
	}()

	var sessions []*client.Session
	for i := 0; i < 2; i++ {
		sess, err := client.Dial(ln.Addr().String(), client.Config{W: 32, H: 32, Format: rpx.Gray8})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
		if err := sess.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(32, 32)}); err != nil {
			t.Fatal(err)
		}
		fr := rpx.NewFrame(32, 32, rpx.Gray8)
		for j := range fr.Pix {
			fr.Pix[j] = byte(i + j)
		}
		for c := 0; c < 3; c++ {
			if _, err := sess.Capture(fr); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sess.Decoded(); err != nil {
			t.Fatal(err)
		}
	}

	// Healthy while serving, with the JSON session count.
	if code, body := adminGet(t, base+"/healthz"); code != http.StatusOK ||
		!strings.Contains(body, `"state":"ok"`) || !strings.Contains(body, `"sessions":2`) {
		t.Fatalf("/healthz while serving: code=%d body=%q", code, body)
	}

	_, metrics := adminGet(t, base+"/metrics")
	for _, want := range []string{
		"rpxgw_sessions_open 2",
		"rpxgw_sessions_opened_total 2",
		"rpxgw_sessions_rerouted_total 0",
		`rpxgw_backend_up{backend="` + backend + `"} 1`,
		`rpxgw_backend_sessions{backend="` + backend + `"} 2`,
		`rpxgw_proxy_op_latency_seconds_count{op="capture"}`,
		`rpxgw_proxy_op_latency_seconds_bucket`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("metrics body:\n%s", metrics)
	}

	_, vars := adminGet(t, base+"/debug/vars")
	var varsDoc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &varsDoc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, vars)
	}
	if _, ok := varsDoc["rpxgw_sessions_opened_total"]; !ok {
		t.Fatalf("/debug/vars missing rpxgw_sessions_opened_total:\n%s", vars)
	}

	if code, _ := adminGet(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ code=%d", code)
	}

	for _, sess := range sessions {
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
	}

	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := adminGet(t, base+"/healthz")
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "draining") {
				t.Fatalf("/healthz draining body=%q", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/healthz never flipped to 503 after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(hold)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveAndDrain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gateway did not shut down")
	}
	if out := log.String(); !strings.Contains(out, "rpxgw: admin listening on "+adminLn.Addr().String()) {
		t.Fatalf("admin listen line not logged:\n%s", out)
	}
}

// expectedFaultErr mirrors the client fault contract for the live matrix.
func expectedFaultErr(err error) bool {
	var re *wire.RemoteError
	var ne net.Error
	return errors.Is(err, client.ErrBrokenSession) ||
		errors.As(err, &re) ||
		errors.As(err, &ne) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// TestLiveGatewayStream is the CI streaming smoke driver, gated on
// RPXGW_ADDR: against an externally started rpxgw it opens a producer and
// a subscriber session, relays a v3 push stream through the gateway, and
// requires every pushed frame in order followed by a clean UNSUBSCRIBE
// that hands the connection back to request/reply.
func TestLiveGatewayStream(t *testing.T) {
	addr := os.Getenv("RPXGW_ADDR")
	if addr == "" {
		t.Skip("RPXGW_ADDR not set; live streaming smoke runs only under scripts/ci.sh")
	}

	const w, h, frames = 32, 24, 16
	producer, err := client.Dial(addr, client.Config{W: w, H: h, Format: rpx.Gray8, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if err := producer.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(w, h)}); err != nil {
		t.Fatal(err)
	}
	subscriber, err := client.Dial(addr, client.Config{W: 8, H: 8, Format: rpx.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	defer subscriber.Close()
	st, err := subscriber.Subscribe(client.SubscribeOptions{Target: producer.ID(), Credit: 64, Batch: 4})
	if err != nil {
		t.Fatalf("subscribe through live gateway: %v", err)
	}

	fr := rpx.NewFrame(w, h, rpx.Gray8)
	for i := 0; i < frames; i++ {
		for p := range fr.Pix {
			fr.Pix[p] = byte(i*13 + p)
		}
		if _, err := producer.Capture(fr); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
	}
	for i := 0; i < frames; i++ {
		f, err := st.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if f.Seq != uint64(i) || f.Dropped != 0 {
			t.Fatalf("frame %d: seq %d dropped %d — gap or reorder through the live gateway", i, f.Seq, f.Dropped)
		}
		if _, err := f.Decode(); err != nil {
			t.Fatalf("frame %d does not decode: %v", i, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("clean unsubscribe: %v", err)
	}
	if _, err := subscriber.ServerStats(); err != nil {
		t.Fatalf("request/reply after unsubscribe: %v", err)
	}
	t.Logf("live streaming smoke: %d frames pushed through %s", frames, addr)
}

// TestLiveGatewayMatrix is the CI smoke driver, gated on RPXGW_ADDR: it
// runs a 4-session capture/decode matrix against an externally started
// rpxgw binary and, when RPXGW_KILL_PID names an rpxd process, kills it
// mid-matrix. The candidate-set oracle must hold throughout: every op
// returns correct bytes or a typed error, and sessions recover onto the
// surviving backends. scripts/ci.sh runs this against 2 rpxd + 1 rpxgw
// with a pinned FAULTNET_SEED environment.
func TestLiveGatewayMatrix(t *testing.T) {
	addr := os.Getenv("RPXGW_ADDR")
	if addr == "" {
		t.Skip("RPXGW_ADDR not set; live gateway smoke runs only under scripts/ci.sh")
	}
	var killPID int
	if v := os.Getenv("RPXGW_KILL_PID"); v != "" {
		pid, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("RPXGW_KILL_PID=%q: %v", v, err)
		}
		killPID = pid
	}

	const w, h, frames, sessions = 32, 24, 24, 4
	var killOnce sync.Once
	kill := func() {
		if killPID == 0 {
			return
		}
		killOnce.Do(func() {
			t.Logf("killing backend pid %d mid-matrix", killPID)
			if err := syscall.Kill(killPID, syscall.SIGKILL); err != nil {
				t.Errorf("kill backend pid %d: %v", killPID, err)
			}
		})
	}

	var wg sync.WaitGroup
	for si := 0; si < sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				t.Errorf("session %d: %s", si, fmt.Sprintf(format, args...))
			}
			sess, err := client.Dial(addr, client.Config{
				W: w, H: h, Format: rpx.Gray8, Block: true,
				RequestTimeout: 5 * time.Second,
				Reconnect:      true, MaxRetries: 6, Backoff: 5 * time.Millisecond,
			})
			if err != nil {
				fail("dial: %v", err)
				return
			}
			defer sess.Close()
			if err := sess.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(w, h)}); err != nil {
				fail("set labels: %v", err)
				return
			}
			mkFrame := func(i int) *rpx.Frame {
				fr := rpx.NewFrame(w, h, rpx.Gray8)
				for p := range fr.Pix {
					fr.Pix[p] = byte(si*1000*37 + i*11 + p)
				}
				return fr
			}
			var candidates []int
			for i := 0; i < frames; i++ {
				if i == frames/2 {
					kill()
				}
				if _, err := sess.Capture(mkFrame(i)); err != nil {
					if !expectedFaultErr(err) {
						fail("capture %d: unexpected error class: %v", i, err)
						return
					}
					candidates = append(candidates, i)
				} else {
					candidates = []int{i}
				}
				dec, err := sess.Decoded()
				if err != nil {
					if !expectedFaultErr(err) {
						fail("decode %d: unexpected error class: %v", i, err)
						return
					}
					continue
				}
				matched := false
				for _, c := range candidates {
					if dec.Equal(mkFrame(c)) {
						matched = true
						break
					}
				}
				if !matched {
					fail("decode %d matches none of the possibly-captured frames %v — a mismatched reply through the gateway", i, candidates)
					return
				}
			}
		}(si)
	}
	wg.Wait()
}
