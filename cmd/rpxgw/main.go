// Command rpxgw is a consistent-hash session gateway in front of an rpxd
// fleet. Clients speak the ordinary rpxd wire protocol to the gateway; each
// connection is pinned to one backend at HELLO time by hashing a
// per-session key onto a ring of virtual nodes, and from then on requests
// and replies are relayed in lockstep without decoding frame payloads.
//
// A health watcher polls every backend's /healthz (or TCP-dials backends
// with no admin address): draining and dead backends leave the ring and
// their live sessions are migrated onto the least-loaded survivors by
// replaying the client's original HELLO and last SET_LABELS — the same
// replay sequence the rpx client's reconnect path uses. Idempotent requests
// caught mid-failure are retried on the replacement invisibly; CAPTURE gets
// a typed UNAVAILABLE error, never a mismatched reply.
//
// Usage:
//
//	rpxgw -addr :7631 -backends 10.0.0.1:7621@10.0.0.1:9621,10.0.0.2:7621
//
// Each -backends entry is "addr[@admin]"; the admin address enables
// healthz-based cordoning and load-weighted migration, without it the
// watcher falls back to TCP dial probes.
//
// With -admin the gateway serves its own observability endpoint: /metrics
// (rpxgw_* series, Prometheus text), /healthz (200 while serving, 503 once
// drain begins, with the same JSON body rpxd serves), /debug/vars, and
// /debug/pprof/*.
//
// SIGINT/SIGTERM trigger a graceful shutdown: /healthz flips to draining,
// the listener closes, in-flight round trips finish within -drain-timeout,
// and the final routing snapshot is written to stderr as JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/server"
)

// testDrainHold, when non-nil (tests only), is waited on after /healthz
// flips to draining and before sessions drain, so tests can observe the 503
// window deterministically.
var testDrainHold <-chan struct{}

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		addr           = flag.String("addr", ":7631", "listen address")
		backendsFlag   = flag.String("backends", "", "comma-separated backend list, each \"addr[@admin]\" (required)")
		adminAddr      = flag.String("admin", "", "admin listen address for /metrics, /healthz, /debug/vars, /debug/pprof (empty = disabled)")
		vnodes         = flag.Int("vnodes", gateway.DefaultVNodes, "virtual nodes per backend on the hash ring")
		maxPayload     = flag.Int("max-payload", 0, "per-message payload cap in bytes (0 = 32 MiB)")
		dialTimeout    = flag.Duration("dial-timeout", gateway.DefaultDialTimeout, "backend dial deadline")
		readTimeout    = flag.Duration("read-timeout", 2*time.Minute, "per-read client connection deadline")
		writeTimeout   = flag.Duration("write-timeout", 30*time.Second, "per-write client connection deadline")
		backendTimeout = flag.Duration("backend-timeout", gateway.DefaultBackendTimeout, "backend round-trip deadline")
		healthInterval = flag.Duration("health-interval", 2*time.Second, "backend health probe period")
		healthTimeout  = flag.Duration("health-timeout", time.Second, "single health probe deadline")
		healthStrikes  = flag.Int("health-strikes", 2, "consecutive probe failures before a backend is declared dead")
		drainTime      = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain budget")
	)
	flag.Parse()

	backends, err := gateway.ParseBackends(*backendsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpxgw:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var adminLn net.Listener
	if *adminAddr != "" {
		adminLn, err = net.Listen("tcp", *adminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpxgw: admin listen:", err)
			return 1
		}
	}

	if err := run(ctx, *addr, adminLn, gateway.Config{
		Backends:       backends,
		VNodes:         *vnodes,
		MaxPayload:     *maxPayload,
		DialTimeout:    *dialTimeout,
		ReadTimeout:    *readTimeout,
		WriteTimeout:   *writeTimeout,
		BackendTimeout: *backendTimeout,
		Health: gateway.WatcherConfig{
			Interval: *healthInterval,
			Timeout:  *healthTimeout,
			Strikes:  *healthStrikes,
		},
	}, *drainTime, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rpxgw:", err)
		return 1
	}
	return 0
}

// run serves until ctx is cancelled, then drains and flushes the routing
// snapshot to logw. adminLn, when non-nil, is taken over by the admin HTTP
// endpoint.
func run(ctx context.Context, addr string, adminLn net.Listener, gcfg gateway.Config, drainTime time.Duration, logw io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if adminLn != nil {
			adminLn.Close()
		}
		return err
	}
	return serveAndDrain(ctx, ln, adminLn, gcfg, drainTime, logw)
}

// serveAndDrain runs the gateway on an existing listener until ctx is
// cancelled, then performs the graceful shutdown sequence: flip /healthz to
// draining, close the listener, drain sessions, flush the final snapshot,
// and only then stop the admin endpoint.
func serveAndDrain(ctx context.Context, ln, adminLn net.Listener, gcfg gateway.Config, drainTime time.Duration, logw io.Writer) error {
	var reg *obs.Registry
	if adminLn != nil {
		reg = obs.NewRegistry()
		gcfg.Metrics = reg
	}
	g, err := gateway.New(gcfg)
	if err != nil {
		if adminLn != nil {
			adminLn.Close()
		}
		ln.Close()
		return err
	}

	var (
		hstate   *server.Health
		adminSrv *http.Server
	)
	if adminLn != nil {
		hstate = server.NewHealth(g.SessionsOpen)
		adminSrv = &http.Server{Handler: newAdminMux(reg, hstate)}
		go adminSrv.Serve(adminLn)
		fmt.Fprintf(logw, "rpxgw: admin listening on %s\n", adminLn.Addr())
	}

	fmt.Fprintf(logw, "rpxgw: listening on %s (%d backends, %d vnodes)\n",
		ln.Addr(), len(gcfg.Backends), gcfg.VNodes)

	serveErr := make(chan error, 1)
	go func() { serveErr <- g.Serve(ln) }()

	stopAdmin := func() {
		if adminSrv != nil {
			closeCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			adminSrv.Shutdown(closeCtx)
			cancel()
		}
	}

	select {
	case err := <-serveErr:
		shutCtx, cancel := context.WithTimeout(context.Background(), drainTime)
		g.Shutdown(shutCtx)
		cancel()
		stopAdmin()
		return err
	case <-ctx.Done():
	}

	if hstate != nil {
		hstate.SetDraining()
	}
	if testDrainHold != nil {
		<-testDrainHold
	}

	fmt.Fprintln(logw, "rpxgw: shutting down, draining sessions")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTime)
	defer cancel()
	shutdownErr := g.Shutdown(drainCtx)
	<-serveErr // Serve returns nil once the listener closes under drain

	if b, err := json.MarshalIndent(g.Snapshot(), "", "  "); err == nil {
		fmt.Fprintf(logw, "rpxgw: final stats\n%s\n", b)
	}
	stopAdmin()
	if shutdownErr != nil {
		return fmt.Errorf("drain incomplete: %w", shutdownErr)
	}
	return nil
}
