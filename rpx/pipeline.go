package rpx

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/isp"
	"repro/internal/sensor"
)

// CameraPipeline is the end-to-end video pipeline of the paper's platform
// (Table 2): a raster-scan image sensor, a CSI-class serial link, ISP
// stages (demosaic, gamma, color conversion), and the rhythmic pixel
// System at the ISP output. It turns RGB scene frames into encoded
// framebuffer contents exactly the way the FPGA prototype does, and
// accounts for sensor and link activity for energy analysis.
type CameraPipeline struct {
	// Sys is the rhythmic pixel system fed by the ISP output.
	Sys *System

	sensor *sensor.Sensor
	link   *sensor.CSILink
	isp    *isp.Pipeline

	// lines is a scratch buffer for the CSI line packets of one frame,
	// reused across CaptureScene calls to keep the per-frame hot path
	// allocation-free.
	lines [][]byte
}

// CameraConfig configures NewCameraPipeline.
type CameraConfig struct {
	W, H int
	// FPS is the capture rate (default 30).
	FPS float64
	// ReadNoiseSigma adds sensor read noise in 8-bit codes (default 1.5).
	ReadNoiseSigma float64
	// Seed makes sensor noise deterministic.
	Seed int64
	// Options configure the underlying System.
	Options []Option
}

// NewCameraPipeline builds the full pipeline. Dimensions must be even
// (Bayer mosaic).
func NewCameraPipeline(cfg CameraConfig) (*CameraPipeline, error) {
	if cfg.FPS == 0 {
		cfg.FPS = 30
	}
	if cfg.ReadNoiseSigma == 0 {
		cfg.ReadNoiseSigma = 1.5
	}
	sen, err := sensor.New(sensor.Config{
		W: cfg.W, H: cfg.H, FPS: cfg.FPS,
		ReadNoiseSigma: cfg.ReadNoiseSigma, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(cfg.W, cfg.H, Gray8, cfg.Options...)
	if err != nil {
		return nil, err
	}
	p := &CameraPipeline{
		Sys:    sys,
		sensor: sen,
		link:   sensor.NewCSILink(),
		isp:    isp.NewPipeline(),
	}
	if !p.isp.MeetsRate(cfg.W, cfg.H, cfg.FPS) {
		return nil, fmt.Errorf("rpx: %dx%d @ %.0f fps exceeds the ISP's 2 px/clock budget", cfg.W, cfg.H, cfg.FPS)
	}
	return p, nil
}

// CaptureScene drives one frame through the whole pipeline: the sensor
// samples the RGB (or gray) scene through its Bayer mosaic with read noise,
// the mosaic crosses the CSI link, the ISP demosaics/gammas/converts, and
// the rhythmic encoder packs the result into the framebuffer under the
// currently installed region labels.
func (p *CameraPipeline) CaptureScene(scene *Frame) (CaptureStats, error) {
	bayer, err := p.sensor.Capture(scene)
	if err != nil {
		return CaptureStats{}, err
	}
	p.streamFrame(bayer)
	processed, err := p.isp.Process(bayer)
	if err != nil {
		return CaptureStats{}, err
	}
	return p.Sys.Capture(processed)
}

// streamFrame serializes the mosaic over the CSI link as framed line
// packets, reusing the pipeline's scratch line slice.
func (p *CameraPipeline) streamFrame(bayer *Frame) {
	if cap(p.lines) < bayer.H {
		p.lines = make([][]byte, 0, bayer.H)
	}
	p.lines = p.lines[:0]
	p.sensor.Stream(bayer, func(_ int, line []byte) {
		p.lines = append(p.lines, line)
	})
	p.link.TransferFrame(p.lines)
}

// SetRegionLabels forwards to the underlying System.
func (p *CameraPipeline) SetRegionLabels(labels []RegionLabel) error {
	return p.Sys.SetRegionLabels(labels)
}

// Decoded forwards to the underlying System.
func (p *CameraPipeline) Decoded() (*Frame, error) { return p.Sys.Decoded() }

// PipelineStats reports front-end activity for energy accounting.
type PipelineStats struct {
	FramesSensed     int
	CSIBytes         int64
	ISPPixels        int64
	EncoderWriteByte int64
}

// FrontEndStats returns sensor/link/ISP activity counters.
func (p *CameraPipeline) FrontEndStats() PipelineStats {
	return PipelineStats{
		FramesSensed:     p.sensor.FramesCaptured(),
		CSIBytes:         p.link.BytesTransferred(),
		ISPPixels:        p.isp.PixelsProcessed(),
		EncoderWriteByte: p.Sys.Stats().BytesWritten,
	}
}

// ProcessedFormat returns the format frames leave the ISP in.
func (p *CameraPipeline) ProcessedFormat() frame.Format { return frame.Gray8 }
