package rpx

import (
	"bytes"
	"fmt"
	"testing"
)

// ownershipLabels mixes full-rate, strided, and temporally skipped regions
// so consecutive frames produce different encoded bytes.
func ownershipLabels() []RegionLabel {
	return []RegionLabel{
		{X: 2, Y: 2, W: 30, H: 20, Stride: 1, Skip: 1},
		{X: 36, Y: 8, W: 20, H: 32, Stride: 2, Skip: 1},
		{X: 6, Y: 30, W: 40, H: 14, Stride: 1, Skip: 2},
	}
}

func ownershipFrame(w, h, seed int) *Frame {
	fr := NewFrame(w, h, Gray8)
	for i := range fr.Pix {
		fr.Pix[i] = byte(seed*53 + i*13)
	}
	return fr
}

// TestLastEncodedAliasingRegression is the regression for the
// LastEncoded-returns-the-live-pointer bug: a caller-held frame was
// silently rewritten by later captures once buffer recycling reuses its
// storage. The held copy must stay byte-stable through arbitrarily many
// subsequent captures.
func TestLastEncodedAliasingRegression(t *testing.T) {
	const w, h = 64, 48
	sys, err := NewSystem(w, h, Gray8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetRegionLabels(ownershipLabels()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Capture(ownershipFrame(w, h, 0)); err != nil {
		t.Fatal(err)
	}
	held := sys.LastEncoded()
	snapshot := held.AppendTo(nil)

	// Push well past the history depth so the frame's storage would have
	// been recycled had LastEncoded leaked the live pointer.
	for i := 1; i <= 12; i++ {
		if _, err := sys.Capture(ownershipFrame(w, h, i)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(held.AppendTo(nil), snapshot) {
		t.Fatal("frame returned by LastEncoded was mutated by later captures")
	}
	if err := held.Validate(); err != nil {
		t.Fatalf("held frame corrupted: %v", err)
	}
}

// TestBorrowLastEncodedSemantics pins the borrow contract: the borrowed
// pointer is the live frame (no copy), and it is only guaranteed stable
// until the next Capture.
func TestBorrowLastEncodedSemantics(t *testing.T) {
	const w, h = 64, 48
	sys, err := NewSystem(w, h, Gray8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetRegionLabels(ownershipLabels()); err != nil {
		t.Fatal(err)
	}
	if sys.BorrowLastEncoded() != nil || sys.LastEncoded() != nil {
		t.Fatal("non-nil encoded frame before any capture")
	}
	if _, err := sys.Capture(ownershipFrame(w, h, 1)); err != nil {
		t.Fatal(err)
	}
	borrowed := sys.BorrowLastEncoded()
	if borrowed != sys.BorrowLastEncoded() {
		t.Fatal("BorrowLastEncoded copied: successive borrows differ")
	}
	owned := sys.LastEncoded()
	if owned == borrowed {
		t.Fatal("LastEncoded returned the live pointer, not a copy")
	}
	if !bytes.Equal(owned.AppendTo(nil), borrowed.AppendTo(nil)) {
		t.Fatal("owned copy differs from the borrowed frame")
	}
	// Serializing the borrow before the next capture is the documented
	// zero-copy pattern; the bytes must match the owned copy.
	if !bytes.Equal(borrowed.AppendTo(nil), owned.AppendTo(nil)) {
		t.Fatal("borrowed serialization differs")
	}
}

// TestMutateAfterReturnDifferential is the ownership property pass: returned
// buffers are the caller's to trash. Mutating everything LastEncoded and
// DecodeWindow hand back between captures must leave the reference pipeline
// (same inputs, untouched outputs) byte-identical, at parallelism 1/2/8.
func TestMutateAfterReturnDifferential(t *testing.T) {
	const w, h, frames = 64, 48, 10
	for _, par := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			subject, err := NewSystem(w, h, Gray8, WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			reference, err := NewSystem(w, h, Gray8, WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			for _, sys := range []*System{subject, reference} {
				if err := sys.SetRegionLabels(ownershipLabels()); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < frames; i++ {
				if _, err := subject.Capture(ownershipFrame(w, h, i)); err != nil {
					t.Fatal(err)
				}
				if _, err := reference.Capture(ownershipFrame(w, h, i)); err != nil {
					t.Fatal(err)
				}

				got := subject.LastEncoded()
				want := reference.LastEncoded()
				if !bytes.Equal(got.AppendTo(nil), want.AppendTo(nil)) {
					t.Fatalf("frame %d: subject diverged from reference", i)
				}

				gotFr, err := subject.DecodeWindow(4, 4, 40, 32)
				if err != nil {
					t.Fatal(err)
				}
				wantFr, err := reference.DecodeWindow(4, 4, 40, 32)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotFr.Pix, wantFr.Pix) {
					t.Fatalf("frame %d: decoded window diverged", i)
				}

				// Trash every returned buffer; the next iteration proves the
				// pipeline did not share storage with us.
				for p := range got.Pix {
					got.Pix[p] ^= 0xFF
				}
				for p := range got.RowOffsets {
					got.RowOffsets[p] += 7
				}
				got.Mask.Fill(0, got.Mask.Len(), 3)
				for p := range gotFr.Pix {
					gotFr.Pix[p] ^= 0xFF
				}
			}
		})
	}
}

// TestAllocsCaptureSteadyState pins the sequential capture hot path —
// encode into a recycled frame, history push, eviction back to the pool —
// at zero steady-state allocations.
func TestAllocsCaptureSteadyState(t *testing.T) {
	const w, h = 64, 48
	sys, err := NewSystem(w, h, Gray8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetRegionLabels(ownershipLabels()); err != nil {
		t.Fatal(err)
	}
	fr := ownershipFrame(w, h, 3)
	capture := func() {
		if _, err := sys.Capture(fr); err != nil {
			t.Fatal(err)
		}
	}
	// Warm past the history depth so eviction feeds the pool each frame.
	for i := 0; i < 8; i++ {
		capture()
	}
	if allocs := testing.AllocsPerRun(50, capture); allocs != 0 {
		t.Fatalf("steady-state Capture allocates %v per frame, want 0", allocs)
	}
}
