package client

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/wire"
	"repro/rpx/client/replay"
)

// Reconnect defaults.
const (
	// DefaultMaxRetries is the re-dial budget per recovery when
	// Config.MaxRetries is zero.
	DefaultMaxRetries = 3
	// DefaultBackoff is the base re-dial backoff when Config.Backoff is
	// zero.
	DefaultBackoff = 50 * time.Millisecond
	// maxBackoffShift caps exponential growth at Backoff<<maxBackoffShift,
	// so a long retry budget cannot escalate into minute-long sleeps.
	maxBackoffShift = 6
)

func (s *Session) maxRetries() int {
	if s.cfg.MaxRetries > 0 {
		return s.cfg.MaxRetries
	}
	return DefaultMaxRetries
}

func (s *Session) baseBackoff() time.Duration {
	if s.cfg.Backoff > 0 {
		return s.cfg.Backoff
	}
	return DefaultBackoff
}

// backoffLocked returns the sleep before re-dial attempt k (0-based):
// exponential growth from the base plus up to 50% uniform jitter, so a herd
// of clients losing one server does not re-dial in lockstep.
func (s *Session) backoffLocked(attempt int) time.Duration {
	if attempt > maxBackoffShift {
		attempt = maxBackoffShift
	}
	d := s.baseBackoff() << attempt
	return d + time.Duration(s.rng.Int63n(int64(d/2)+1))
}

// reconnectLocked heals a poisoned session: it re-dials with exponential
// backoff plus jitter, replays the HELLO handshake, and re-installs the
// last SetRegionLabels workload so the new server-side pipeline encodes the
// same regions the old one did. The session stays broken if every attempt
// fails (the caller's next call will try again) or if the server now
// rejects the handshake outright (permanent, surfaced immediately).
func (s *Session) reconnectLocked() error {
	var err error
	for attempt := 0; attempt < s.maxRetries(); attempt++ {
		time.Sleep(s.backoffLocked(attempt))
		if err = s.connectLocked(); err != nil {
			// A server-side handshake rejection (session limit, geometry,
			// protocol) will not improve with retries.
			var re *wire.RemoteError
			if errors.As(err, &re) {
				return fmt.Errorf("%w: reconnect rejected: %w", ErrBrokenSession, re)
			}
			continue
		}
		if s.lastLabels != nil {
			if err = s.replayLabelsLocked(); err != nil {
				continue
			}
		}
		s.reconnects++
		return nil
	}
	return fmt.Errorf("%w: reconnect failed after %d attempts: %w", ErrBrokenSession, s.maxRetries(), err)
}

// replayLabelsLocked re-installs the remembered workload on a freshly
// reconnected session via the shared replay helper; failure re-poisons it.
func (s *Session) replayLabelsLocked() error {
	if err := replay.InstallLabels(s.conn, s.br, wire.MarshalLabels(s.lastLabels), s.maxPayload, s.timeout); err != nil {
		s.poisonLocked()
		return fmt.Errorf("client: %w", err)
	}
	return nil
}
