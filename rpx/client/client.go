// Package client is the Go client for rpxd, the rhythmic-pixel
// capture/decode service. One Dial is one session: the connection handshake
// negotiates frame geometry, pixel format, decoder history depth, and
// backpressure mode, and the returned Session then mirrors the rpx.System
// surface — SetRegionLabels, Capture, Decoded, DecodeWindow — over the wire.
//
//	sess, err := client.Dial("localhost:7621", client.Config{W: 640, H: 480, Format: rpx.Gray8})
//	...
//	sess.SetRegionLabels(labels)
//	stats, _ := sess.Capture(frame)
//	img, _ := sess.Decoded()
//
// A Session is safe for concurrent use by multiple goroutines; requests are
// serialized over the single connection in submission order.
//
// # Failure semantics
//
// The protocol is strict request/reply, so after any transport error — a
// write or read deadline firing, a short read, a reset — the connection's
// framing is undefined: a late reply may still be in flight, and reading it
// as the answer to the next request would attribute the wrong bytes to the
// wrong call. The Session therefore poisons itself on the first transport
// error: the failing call returns that error, and every later call fails
// with ErrBrokenSession instead of trusting the stream.
//
// With Config.Reconnect set, a poisoned session heals itself instead: the
// next call re-dials with exponential backoff plus jitter, replays the
// handshake and the last installed region labels, and retries the
// operation when it is idempotent (SetRegionLabels, Decoded, DecodeWindow,
// LastEncoded, ServerStats). Capture is not idempotent — the server may or
// may not have encoded the in-flight frame — so a Capture that hits a
// transport error always surfaces it; the session still recovers for
// subsequent calls. Note that the server builds a fresh pipeline for the
// new connection: frame history does not survive a reconnect, so a Decode
// before the first post-reconnect Capture fails with a remote error.
package client

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/rpx"
	"repro/rpx/client/replay"
)

// ErrBrokenSession is returned by every call after a transport error
// poisoned the session (and reconnection is disabled or failed): the
// request/reply framing can no longer be trusted, so the client refuses to
// read what could be a stale reply.
var ErrBrokenSession = errors.New("client: session broken by transport error")

// Config parameterizes Dial. W, H, and Format are required; the rest
// default server-side.
type Config struct {
	// W, H are the session frame dimensions.
	W, H int
	// Format is the session pixel format (rpx.Gray8, rpx.RGB24, rpx.YUV444).
	Format rpx.Format
	// HistoryDepth is the decoder scratchpad depth (0 = server default).
	HistoryDepth int
	// QueueDepth bounds the server-side request queue (0 = server default).
	QueueDepth int
	// Block selects blocking backpressure; when false a saturated session
	// fails fast and Capture returns a BACKLOG error (see IsBacklog).
	Block bool
	// Parallelism is the number of row-band encode/decode workers the
	// server gives this session's pipeline (0 = server default: 1, the
	// sequential reference path). Any value yields byte-identical results.
	Parallelism int
	// PackedMask requests the packed-metadata codec (wire.CodecPackedMask)
	// at the handshake: GET_ENCODED replies and FRAME_PUSH records then
	// carry the RPXE v2 container, whose mask is run-length encoded and
	// whose row offsets are varint deltas. Decoding is transparent —
	// LastEncoded and StreamFrame.Decode handle both containers — but the
	// raw bytes differ, so leave this unset for byte-identity with v1
	// captures. Requires a v4 server; older servers fail the handshake.
	PackedMask bool
	// LabelFeedback negotiates protocol v5 so an open subscription may push
	// region-label workloads back to its target session in-stream
	// (Stream.SetLabels) — the closed-loop policy path. Leave unset for
	// byte-identity with v3/v4 handshakes. Requires a v5 server; older
	// servers fail the handshake.
	LabelFeedback bool
	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
	// RequestTimeout bounds each request round trip (default 30s).
	RequestTimeout time.Duration

	// Reconnect heals poisoned sessions: after a transport error the next
	// call re-dials, replays the handshake and the last SetRegionLabels
	// workload, and retries idempotent operations. Without it a transport
	// error permanently breaks the session (ErrBrokenSession).
	Reconnect bool
	// MaxRetries bounds re-dial attempts per recovery (default 3).
	MaxRetries int
	// Backoff is the base re-dial backoff; attempt k sleeps about
	// Backoff<<k plus up to 50% jitter (default 50ms).
	Backoff time.Duration
}

// Session is an open rpxd session. Methods are safe for concurrent use.
type Session struct {
	addr string
	cfg  Config

	mu           sync.Mutex // serializes request/reply round trips
	conn         net.Conn
	br           *bufio.Reader
	mw           *wire.MessageWriter // framing writer; serializes concurrent writers itself
	closed       bool
	broken       bool
	id           uint64
	maxPayload   int
	protoVersion int     // negotiated protocol revision (from HELLO_ACK)
	codec        uint8   // granted codec bits (from a v4 HELLO_ACK)
	stream       *Stream // open push subscription, nil in request/reply mode
	dialTimeout  time.Duration
	timeout      time.Duration
	lastLabels   []rpx.RegionLabel // replayed after reconnect; nil = never set
	reconnects   int
	rng          *rand.Rand // backoff jitter; guarded by mu
}

// Dial connects to an rpxd server and negotiates a session.
func Dial(addr string, cfg Config) (*Session, error) {
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}
	reqTimeout := cfg.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = 30 * time.Second
	}
	s := &Session{
		addr:        addr,
		cfg:         cfg,
		maxPayload:  wire.DefaultMaxPayload,
		dialTimeout: dialTimeout,
		timeout:     reqTimeout,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if err := s.connectLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// connectLocked dials and performs the HELLO handshake, installing the new
// connection on success. Callers must hold s.mu (or own s exclusively, as
// Dial does). The handshake itself lives in the shared replay package so
// the gateway's session-migration path replays byte-identical messages.
func (s *Session) connectLocked() error {
	conn, err := net.DialTimeout("tcp", s.addr, s.dialTimeout)
	if err != nil {
		return fmt.Errorf("client: dial %s: %w", s.addr, err)
	}
	br := bufio.NewReader(conn)
	hello := wire.Hello{
		W: s.cfg.W, H: s.cfg.H, Format: s.cfg.Format,
		HistoryDepth: s.cfg.HistoryDepth,
		QueueDepth:   s.cfg.QueueDepth,
		Block:        s.cfg.Block,
		Parallelism:  s.cfg.Parallelism,
	}
	switch {
	case s.cfg.LabelFeedback:
		// v5 is the lowest revision with in-stream label feedback; the
		// HELLO byte layout is the v4 one plus the version number.
		hello.Version = 5
	case s.cfg.PackedMask:
		// Pin v4, the revision that introduced the codec byte, so the
		// packed handshake bytes never drift as ProtoVersion advances.
		hello.Version = 4
	default:
		// Pin v3 so the default handshake and everything after it stay
		// byte-identical to pre-codec clients — raw is the reference path.
		hello.Version = 3
	}
	if s.cfg.PackedMask {
		hello.Codec = wire.CodecPackedMask
	}
	ack, _, err := replay.Handshake(conn, br, wire.MarshalHello(hello), s.maxPayload, s.timeout)
	if err != nil {
		conn.Close()
		return fmt.Errorf("client: %w", err)
	}
	s.conn = conn
	s.br = br
	// All post-handshake writes go through one MessageWriter: header and
	// payload leave in a single vectored write, and its internal lock makes
	// concurrent writers (request/reply vs. streaming grants) safe without
	// a separate write mutex.
	s.mw = wire.NewMessageWriter(conn)
	s.id = ack.SessionID
	s.maxPayload = ack.MaxPayload
	s.protoVersion = ack.Version
	s.codec = ack.Codec
	s.broken = false
	if s.cfg.PackedMask && s.codec&wire.CodecPackedMask == 0 {
		// A v4 server always grants the packed bit; anything else means the
		// peer cannot honor what Config asked for.
		conn.Close()
		return fmt.Errorf("client: server did not grant the packed-mask codec")
	}
	return nil
}

// PackedMask reports whether the server granted the packed-metadata codec
// at the handshake (Config.PackedMask was set and the peer speaks v4).
func (s *Session) PackedMask() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.codec&wire.CodecPackedMask != 0
}

// ProtoVersion returns the protocol revision the server negotiated in the
// HELLO_ACK (wire.MinProtoVersion for a legacy 12-byte ack).
func (s *Session) ProtoVersion() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.protoVersion
}

// ID returns the server-assigned session id (of the newest connection, if
// the session has reconnected).
func (s *Session) ID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.id
}

// Dimensions returns the negotiated frame geometry.
func (s *Session) Dimensions() (w, h int) { return s.cfg.W, s.cfg.H }

// Broken reports whether the session is poisoned: a transport error
// desynchronized the request/reply stream and no reconnect has healed it.
func (s *Session) Broken() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.broken
}

// Reconnects returns how many times the session has transparently
// re-dialed and replayed its workload.
func (s *Session) Reconnects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconnects
}

// poisonLocked marks the stream unusable and tears the connection down.
func (s *Session) poisonLocked() {
	s.broken = true
	if s.conn != nil {
		s.conn.Close()
	}
}

// roundTripLocked sends one request and reads one reply. Any transport
// error poisons the session: after a deadline fires or a read comes back
// short, a late reply may still be in flight, and the next read would
// attribute it to the wrong request.
func (s *Session) roundTripLocked(typ byte, payload []byte) (byte, []byte, error) {
	s.conn.SetWriteDeadline(time.Now().Add(s.timeout))
	if err := s.mw.WriteMessage(typ, payload, s.maxPayload); err != nil {
		s.poisonLocked()
		return 0, nil, fmt.Errorf("client: send: %w", err)
	}
	s.conn.SetReadDeadline(time.Now().Add(s.timeout))
	rtyp, rpayload, err := wire.ReadMessage(s.br, s.maxPayload)
	if err != nil {
		s.poisonLocked()
		return 0, nil, fmt.Errorf("client: receive: %w", err)
	}
	return rtyp, rpayload, nil
}

// call performs a round trip and unwraps ERROR replies. Idempotent
// operations are retried across reconnects when Config.Reconnect is set;
// non-idempotent ones (Capture) surface their transport error, though the
// session still heals for subsequent calls.
func (s *Session) call(typ byte, payload []byte, wantReply byte, idempotent bool) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if s.closed {
			return nil, fmt.Errorf("client: session closed")
		}
		if s.stream != nil {
			// An open push subscription owns the connection's framing.
			return nil, ErrStreaming
		}
		if s.broken {
			if !s.cfg.Reconnect {
				return nil, ErrBrokenSession
			}
			if err := s.reconnectLocked(); err != nil {
				return nil, err
			}
		}
		rtyp, rpayload, err := s.roundTripLocked(typ, payload)
		if err == nil {
			if rtyp == wire.MsgError {
				re, uerr := wire.UnmarshalError(rpayload)
				if uerr != nil {
					return nil, uerr
				}
				return nil, re
			}
			if rtyp != wantReply {
				// A reply of the wrong type means the stream is already
				// desynchronized; refuse to keep reading it.
				s.poisonLocked()
				return nil, fmt.Errorf("%w: got reply type %d, want %d", ErrBrokenSession, rtyp, wantReply)
			}
			return rpayload, nil
		}
		if !s.cfg.Reconnect || !idempotent || attempt >= s.maxRetries() {
			return nil, err
		}
	}
}

// SetRegionLabels installs the capture workload for the next frame. The
// labels are remembered and replayed if the session reconnects.
func (s *Session) SetRegionLabels(labels []rpx.RegionLabel) error {
	_, err := s.call(wire.MsgSetLabels, wire.MarshalLabels(labels), wire.MsgAck, true)
	if err == nil {
		s.mu.Lock()
		s.lastLabels = append([]rpx.RegionLabel{}, labels...)
		s.mu.Unlock()
	}
	return err
}

// Capture streams one frame to the server for encoding and returns the
// capture statistics. The frame must match the negotiated geometry.
// Capture is not retried across reconnects: a transport error mid-capture
// leaves it unknown whether the server encoded the frame, so the error is
// surfaced and the caller decides whether to resend.
func (s *Session) Capture(fr *rpx.Frame) (rpx.CaptureStats, error) {
	if fr.W != s.cfg.W || fr.H != s.cfg.H || fr.Format != s.cfg.Format {
		return rpx.CaptureStats{}, fmt.Errorf("client: frame is %dx%d %v, session is %dx%d %v",
			fr.W, fr.H, fr.Format, s.cfg.W, s.cfg.H, s.cfg.Format)
	}
	payload, err := s.call(wire.MsgCapture, fr.Pix, wire.MsgCaptureAck, false)
	if err != nil {
		return rpx.CaptureStats{}, err
	}
	ack, err := wire.UnmarshalCaptureAck(payload)
	if err != nil {
		return rpx.CaptureStats{}, err
	}
	return rpx.CaptureStats{
		FrameIndex:    ack.FrameIndex,
		EncodedPixels: ack.EncodedPixels,
		EncodedBytes:  ack.EncodedBytes,
		PixelFraction: ack.PixelFraction,
	}, nil
}

// Decoded reconstructs the newest frame server-side and returns it.
func (s *Session) Decoded() (*rpx.Frame, error) {
	payload, err := s.call(wire.MsgDecode, nil, wire.MsgFrame, true)
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalFrame(payload)
}

// DecodeWindow reconstructs a sub-rectangle of the newest frame.
func (s *Session) DecodeWindow(x, y, w, h int) (*rpx.Frame, error) {
	payload, err := s.call(wire.MsgDecodeWindow, wire.MarshalWindow(wire.Window{X: x, Y: y, W: w, H: h}), wire.MsgFrame, true)
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalFrame(payload)
}

// LastEncoded fetches the newest encoded frame in its packed (RPXE)
// representation — the same container .rpxs streams use.
func (s *Session) LastEncoded() (*rpx.EncodedFrame, error) {
	payload, err := s.call(wire.MsgGetEncoded, nil, wire.MsgEncoded, true)
	if err != nil {
		return nil, err
	}
	return core.ReadEncodedFrame(bytes.NewReader(payload))
}

// ServerStats fetches a snapshot of the whole server's statistics.
func (s *Session) ServerStats() (server.Snapshot, error) {
	payload, err := s.call(wire.MsgStats, nil, wire.MsgStatsAck, true)
	if err != nil {
		return server.Snapshot{}, err
	}
	var snap server.Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return server.Snapshot{}, fmt.Errorf("client: decode stats: %w", err)
	}
	return snap, nil
}

// Close ends the session and closes the connection. A poisoned session is
// torn down without the graceful CLOSE exchange (its framing is not
// trustworthy).
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.broken || s.conn == nil || s.stream != nil {
		// A poisoned session's framing is not trustworthy, and an open
		// stream owns the framing: tear down without the CLOSE exchange.
		if s.conn != nil {
			s.conn.Close()
		}
		return nil
	}
	s.conn.SetWriteDeadline(time.Now().Add(s.timeout))
	s.mw.WriteMessage(wire.MsgClose, nil, s.maxPayload)
	s.conn.SetReadDeadline(time.Now().Add(s.timeout))
	wire.ReadMessage(s.br, s.maxPayload) // best-effort ACK
	return s.conn.Close()
}

// IsBacklog reports whether err is the server's fail-fast backpressure
// signal (the session's request queue was full).
func IsBacklog(err error) bool {
	var re *wire.RemoteError
	return errors.As(err, &re) && re.Code == wire.CodeBacklog
}

// IsGeometryRejected reports whether err is the server's handshake-time
// rejection of a session geometry whose frames could never fit the
// negotiated payload cap.
func IsGeometryRejected(err error) bool {
	var re *wire.RemoteError
	return errors.As(err, &re) && re.Code == wire.CodeGeometry
}
