// Package client is the Go client for rpxd, the rhythmic-pixel
// capture/decode service. One Dial is one session: the connection handshake
// negotiates frame geometry, pixel format, decoder history depth, and
// backpressure mode, and the returned Session then mirrors the rpx.System
// surface — SetRegionLabels, Capture, Decoded, DecodeWindow — over the wire.
//
//	sess, err := client.Dial("localhost:7621", client.Config{W: 640, H: 480, Format: rpx.Gray8})
//	...
//	sess.SetRegionLabels(labels)
//	stats, _ := sess.Capture(frame)
//	img, _ := sess.Decoded()
//
// A Session is safe for concurrent use by multiple goroutines; requests are
// serialized over the single connection in submission order.
package client

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/rpx"
)

// Config parameterizes Dial. W, H, and Format are required; the rest
// default server-side.
type Config struct {
	// W, H are the session frame dimensions.
	W, H int
	// Format is the session pixel format (rpx.Gray8, rpx.RGB24, rpx.YUV444).
	Format rpx.Format
	// HistoryDepth is the decoder scratchpad depth (0 = server default).
	HistoryDepth int
	// QueueDepth bounds the server-side request queue (0 = server default).
	QueueDepth int
	// Block selects blocking backpressure; when false a saturated session
	// fails fast and Capture returns a BACKLOG error (see IsBacklog).
	Block bool
	// Parallelism is the number of row-band encode/decode workers the
	// server gives this session's pipeline (0 = server default: 1, the
	// sequential reference path). Any value yields byte-identical results.
	Parallelism int
	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
	// RequestTimeout bounds each request round trip (default 30s).
	RequestTimeout time.Duration
}

// Session is an open rpxd session. Methods are safe for concurrent use.
type Session struct {
	conn net.Conn
	br   *bufio.Reader

	mu         sync.Mutex // serializes request/reply round trips
	closed     bool
	id         uint64
	maxPayload int
	timeout    time.Duration
	cfg        Config
}

// Dial connects to an rpxd server and negotiates a session.
func Dial(addr string, cfg Config) (*Session, error) {
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}
	reqTimeout := cfg.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	s := &Session{
		conn:       conn,
		br:         bufio.NewReader(conn),
		maxPayload: wire.DefaultMaxPayload,
		timeout:    reqTimeout,
		cfg:        cfg,
	}
	hello := wire.Hello{
		W: cfg.W, H: cfg.H, Format: cfg.Format,
		HistoryDepth: cfg.HistoryDepth,
		QueueDepth:   cfg.QueueDepth,
		Block:        cfg.Block,
		Parallelism:  cfg.Parallelism,
	}
	typ, payload, err := s.roundTrip(wire.MsgHello, wire.MarshalHello(hello))
	if err != nil {
		conn.Close()
		return nil, err
	}
	if typ == wire.MsgError {
		conn.Close()
		if re, uerr := wire.UnmarshalError(payload); uerr == nil {
			return nil, fmt.Errorf("client: handshake rejected: %w", re)
		}
		return nil, fmt.Errorf("client: handshake rejected")
	}
	if typ != wire.MsgHelloAck {
		conn.Close()
		return nil, fmt.Errorf("client: unexpected handshake reply type %d", typ)
	}
	ack, err := wire.UnmarshalHelloAck(payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	s.id = ack.SessionID
	s.maxPayload = ack.MaxPayload
	return s, nil
}

// ID returns the server-assigned session id.
func (s *Session) ID() uint64 { return s.id }

// Dimensions returns the negotiated frame geometry.
func (s *Session) Dimensions() (w, h int) { return s.cfg.W, s.cfg.H }

// roundTrip sends one request and reads one reply under the session lock.
func (s *Session) roundTrip(typ byte, payload []byte) (byte, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, nil, fmt.Errorf("client: session closed")
	}
	s.conn.SetWriteDeadline(time.Now().Add(s.timeout))
	if err := wire.WriteMessage(s.conn, typ, payload, s.maxPayload); err != nil {
		return 0, nil, fmt.Errorf("client: send: %w", err)
	}
	s.conn.SetReadDeadline(time.Now().Add(s.timeout))
	rtyp, rpayload, err := wire.ReadMessage(s.br, s.maxPayload)
	if err != nil {
		return 0, nil, fmt.Errorf("client: receive: %w", err)
	}
	return rtyp, rpayload, nil
}

// call performs a round trip and unwraps ERROR replies.
func (s *Session) call(typ byte, payload []byte, wantReply byte) ([]byte, error) {
	rtyp, rpayload, err := s.roundTrip(typ, payload)
	if err != nil {
		return nil, err
	}
	if rtyp == wire.MsgError {
		re, uerr := wire.UnmarshalError(rpayload)
		if uerr != nil {
			return nil, uerr
		}
		return nil, re
	}
	if rtyp != wantReply {
		return nil, fmt.Errorf("client: unexpected reply type %d, want %d", rtyp, wantReply)
	}
	return rpayload, nil
}

// SetRegionLabels installs the capture workload for the next frame.
func (s *Session) SetRegionLabels(labels []rpx.RegionLabel) error {
	_, err := s.call(wire.MsgSetLabels, wire.MarshalLabels(labels), wire.MsgAck)
	return err
}

// Capture streams one frame to the server for encoding and returns the
// capture statistics. The frame must match the negotiated geometry.
func (s *Session) Capture(fr *rpx.Frame) (rpx.CaptureStats, error) {
	if fr.W != s.cfg.W || fr.H != s.cfg.H || fr.Format != s.cfg.Format {
		return rpx.CaptureStats{}, fmt.Errorf("client: frame is %dx%d %v, session is %dx%d %v",
			fr.W, fr.H, fr.Format, s.cfg.W, s.cfg.H, s.cfg.Format)
	}
	payload, err := s.call(wire.MsgCapture, fr.Pix, wire.MsgCaptureAck)
	if err != nil {
		return rpx.CaptureStats{}, err
	}
	ack, err := wire.UnmarshalCaptureAck(payload)
	if err != nil {
		return rpx.CaptureStats{}, err
	}
	return rpx.CaptureStats{
		FrameIndex:    ack.FrameIndex,
		EncodedPixels: ack.EncodedPixels,
		EncodedBytes:  ack.EncodedBytes,
		PixelFraction: ack.PixelFraction,
	}, nil
}

// Decoded reconstructs the newest frame server-side and returns it.
func (s *Session) Decoded() (*rpx.Frame, error) {
	payload, err := s.call(wire.MsgDecode, nil, wire.MsgFrame)
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalFrame(payload)
}

// DecodeWindow reconstructs a sub-rectangle of the newest frame.
func (s *Session) DecodeWindow(x, y, w, h int) (*rpx.Frame, error) {
	payload, err := s.call(wire.MsgDecodeWindow, wire.MarshalWindow(wire.Window{X: x, Y: y, W: w, H: h}), wire.MsgFrame)
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalFrame(payload)
}

// LastEncoded fetches the newest encoded frame in its packed (RPXE)
// representation — the same container .rpxs streams use.
func (s *Session) LastEncoded() (*rpx.EncodedFrame, error) {
	payload, err := s.call(wire.MsgGetEncoded, nil, wire.MsgEncoded)
	if err != nil {
		return nil, err
	}
	return core.ReadEncodedFrame(bytes.NewReader(payload))
}

// ServerStats fetches a snapshot of the whole server's statistics.
func (s *Session) ServerStats() (server.Snapshot, error) {
	payload, err := s.call(wire.MsgStats, nil, wire.MsgStatsAck)
	if err != nil {
		return server.Snapshot{}, err
	}
	var snap server.Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return server.Snapshot{}, fmt.Errorf("client: decode stats: %w", err)
	}
	return snap, nil
}

// Close ends the session and closes the connection.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.conn.SetWriteDeadline(time.Now().Add(s.timeout))
	wire.WriteMessage(s.conn, wire.MsgClose, nil, s.maxPayload)
	s.conn.SetReadDeadline(time.Now().Add(s.timeout))
	wire.ReadMessage(s.br, s.maxPayload) // best-effort ACK
	err := s.conn.Close()
	s.mu.Unlock()
	return err
}

// IsBacklog reports whether err is the server's fail-fast backpressure
// signal (the session's request queue was full).
func IsBacklog(err error) bool {
	var re *wire.RemoteError
	return errors.As(err, &re) && re.Code == wire.CodeBacklog
}
