package client_test

import (
	"bufio"
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/rpx"
	"repro/rpx/client"
)

// recordedMsg is one raw request a recording server received.
type recordedMsg struct {
	typ     byte
	payload []byte
}

// recordingServer is a minimal scripted rpxd stand-in that records the
// exact payload bytes of every request, per connection. It exists to prove
// the reconnect path's replayed messages are byte-identical to the
// originals now that the replay logic lives in the shared
// rpx/client/replay package (used verbatim by the rpxgw gateway too).
type recordingServer struct {
	ln net.Listener

	mu    sync.Mutex
	conns [][]recordedMsg
}

func startRecordingServer(t *testing.T) *recordingServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := &recordingServer{ln: ln}
	t.Cleanup(func() { ln.Close() })
	go rs.acceptLoop()
	return rs
}

func (rs *recordingServer) acceptLoop() {
	for {
		conn, err := rs.ln.Accept()
		if err != nil {
			return
		}
		rs.mu.Lock()
		idx := len(rs.conns)
		rs.conns = append(rs.conns, nil)
		rs.mu.Unlock()
		go rs.handle(conn, idx)
	}
}

// handle serves one scripted connection: HELLO and SET_LABELS are acked,
// and STATS is the pivot — the first connection is cut without a reply
// (poisoning the client), later connections answer it, so the client's
// reconnect replays HELLO + labels in between.
func (rs *recordingServer) handle(conn net.Conn, idx int) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		typ, payload, err := wire.ReadMessage(br, wire.DefaultMaxPayload)
		if err != nil {
			return
		}
		rs.mu.Lock()
		rs.conns[idx] = append(rs.conns[idx], recordedMsg{typ, append([]byte(nil), payload...)})
		rs.mu.Unlock()
		switch typ {
		case wire.MsgHello:
			wire.WriteMessage(conn, wire.MsgHelloAck, wire.MarshalHelloAck(wire.HelloAck{
				SessionID: uint64(idx + 1), MaxPayload: wire.DefaultMaxPayload,
			}), wire.DefaultMaxPayload)
		case wire.MsgSetLabels:
			wire.WriteMessage(conn, wire.MsgAck, nil, wire.DefaultMaxPayload)
		case wire.MsgStats:
			if idx == 0 {
				return // cut without replying: the client poisons and reconnects
			}
			wire.WriteMessage(conn, wire.MsgStatsAck, []byte("{}"), wire.DefaultMaxPayload)
		case wire.MsgClose:
			wire.WriteMessage(conn, wire.MsgAck, nil, wire.DefaultMaxPayload)
			return
		default:
			wire.WriteMessage(conn, wire.MsgAck, nil, wire.DefaultMaxPayload)
		}
	}
}

func (rs *recordingServer) recorded(conn int) []recordedMsg {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if conn >= len(rs.conns) {
		return nil
	}
	return append([]recordedMsg(nil), rs.conns[conn]...)
}

// TestReconnectReplayByteIdentical pins the refactor of the reconnect path
// onto rpx/client/replay: the HELLO and SET_LABELS messages replayed on the
// post-poison connection must be byte-for-byte the messages the session
// sent originally — and both must equal the canonical marshalling, so no
// re-encoding drift can hide in either path.
func TestReconnectReplayByteIdentical(t *testing.T) {
	rs := startRecordingServer(t)
	cfg := client.Config{
		W: 48, H: 36, Format: rpx.Gray8,
		HistoryDepth: 5, QueueDepth: 7, Block: true, Parallelism: 2,
		RequestTimeout: 2 * time.Second,
		Reconnect:      true, MaxRetries: 4, Backoff: time.Millisecond,
	}
	sess, err := client.Dial(rs.ln.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	labels := []rpx.RegionLabel{
		{X: 4, Y: 4, W: 32, H: 16, Stride: 2, Skip: 1},
		{X: 0, Y: 24, W: 48, H: 12, Stride: 1, Skip: 3, Phase: 1},
	}
	if err := sess.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}

	// The first STATS cuts connection 0; the retry reconnects (replaying
	// HELLO + labels on connection 1) and succeeds.
	if _, err := sess.ServerStats(); err != nil {
		t.Fatalf("stats after scripted cut: %v", err)
	}
	if sess.Reconnects() != 1 {
		t.Fatalf("Reconnects = %d, want 1", sess.Reconnects())
	}

	first, second := rs.recorded(0), rs.recorded(1)
	if len(first) < 2 || len(second) < 2 {
		t.Fatalf("recorded %d + %d messages, want >= 2 on each connection", len(first), len(second))
	}
	if first[0].typ != wire.MsgHello || second[0].typ != wire.MsgHello {
		t.Fatalf("first message types = %d, %d, want HELLO on both connections", first[0].typ, second[0].typ)
	}
	if !bytes.Equal(first[0].payload, second[0].payload) {
		t.Errorf("replayed HELLO differs from original:\n  dial:   %x\n  replay: %x", first[0].payload, second[0].payload)
	}
	if want := wire.MarshalHello(wire.Hello{
		Version: 3, // default clients pin v3 (no codec negotiation)
		W:       cfg.W, H: cfg.H, Format: cfg.Format,
		HistoryDepth: cfg.HistoryDepth, QueueDepth: cfg.QueueDepth,
		Block: cfg.Block, Parallelism: cfg.Parallelism,
	}); !bytes.Equal(second[0].payload, want) {
		t.Errorf("replayed HELLO differs from canonical marshalling:\n  canon:  %x\n  replay: %x", want, second[0].payload)
	}
	if first[1].typ != wire.MsgSetLabels || second[1].typ != wire.MsgSetLabels {
		t.Fatalf("second message types = %d, %d, want SET_LABELS on both connections", first[1].typ, second[1].typ)
	}
	if !bytes.Equal(first[1].payload, second[1].payload) {
		t.Errorf("replayed SET_LABELS differs from original:\n  dial:   %x\n  replay: %x", first[1].payload, second[1].payload)
	}
	if want := wire.MarshalLabels(labels); !bytes.Equal(second[1].payload, want) {
		t.Errorf("replayed SET_LABELS differs from canonical marshalling:\n  canon:  %x\n  replay: %x", want, second[1].payload)
	}
}
