// Package replay implements the session-bootstrap sequence that two very
// different components need to perform identically: the rpx client's
// reconnect path (heal a poisoned session by re-dialing) and the rpxgw
// gateway's migration path (move a live session off a draining or dead
// backend onto a survivor). Both must open a fresh connection, replay the
// HELLO handshake, and re-install the last SetRegionLabels workload so the
// replacement pipeline encodes the same regions the old one did.
//
// The functions take the raw marshalled payload rather than the typed
// structs so a forwarder can replay exactly the bytes the original client
// sent — the gateway never re-encodes what it routes, and the client's
// wire.MarshalHello output goes through the same code path, keeping the
// two implementations byte-identical on the wire by construction.
package replay

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/wire"
)

// Handshake writes a HELLO payload on a freshly-dialed connection and reads
// the reply. On success it returns the parsed acknowledgment plus the raw
// HELLO_ACK payload (a forwarder relays the latter verbatim). A server-side
// rejection is returned as an error wrapping the *wire.RemoteError, so
// callers can distinguish permanent rejections from transport failures with
// errors.As.
func Handshake(conn net.Conn, br *bufio.Reader, helloPayload []byte, maxPayload int, timeout time.Duration) (wire.HelloAck, []byte, error) {
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if err := wire.WriteMessage(conn, wire.MsgHello, helloPayload, maxPayload); err != nil {
		return wire.HelloAck{}, nil, fmt.Errorf("send handshake: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	typ, payload, err := wire.ReadMessage(br, maxPayload)
	if err != nil {
		return wire.HelloAck{}, nil, fmt.Errorf("read handshake: %w", err)
	}
	switch typ {
	case wire.MsgHelloAck:
	case wire.MsgError:
		if re, uerr := wire.UnmarshalError(payload); uerr == nil {
			return wire.HelloAck{}, nil, fmt.Errorf("handshake rejected: %w", re)
		}
		return wire.HelloAck{}, nil, errors.New("handshake rejected")
	default:
		return wire.HelloAck{}, nil, fmt.Errorf("unexpected handshake reply type %d", typ)
	}
	ack, err := wire.UnmarshalHelloAck(payload)
	if err != nil {
		return wire.HelloAck{}, nil, err
	}
	return ack, payload, nil
}

// InstallLabels re-installs a SET_LABELS payload on a freshly-handshaken
// connection and expects the ACK. Like Handshake, a server-side rejection
// wraps the *wire.RemoteError; any other failure is a transport error and
// the connection's framing must be considered unusable.
func InstallLabels(conn net.Conn, br *bufio.Reader, labelsPayload []byte, maxPayload int, timeout time.Duration) error {
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if err := wire.WriteMessage(conn, wire.MsgSetLabels, labelsPayload, maxPayload); err != nil {
		return fmt.Errorf("replay labels: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	typ, payload, err := wire.ReadMessage(br, maxPayload)
	if err != nil {
		return fmt.Errorf("replay labels: %w", err)
	}
	switch typ {
	case wire.MsgAck:
		return nil
	case wire.MsgError:
		if re, uerr := wire.UnmarshalError(payload); uerr == nil {
			return fmt.Errorf("replay labels rejected: %w", re)
		}
		return errors.New("replay labels rejected")
	default:
		return fmt.Errorf("unexpected replay-labels reply type %d", typ)
	}
}
