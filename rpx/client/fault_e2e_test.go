package client_test

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/rpx"
	"repro/rpx/client"
)

// startProxiedServer boots an rpxd TCPServer behind a faultnet proxy and
// returns the proxy plus the dialable (faulty) address.
func startProxiedServer(tb testing.TB, mcfg server.Config, tcfg server.TCPConfig, pcfg faultnet.ProxyConfig) (*faultnet.Proxy, string) {
	tb.Helper()
	backend := startServer(tb, mcfg, tcfg)
	p, err := faultnet.NewProxy(backend, pcfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { p.Close() })
	return p, p.Addr()
}

// legacySession reproduces the pre-fix client's round-trip semantics: set
// deadlines, write the request, read exactly one reply — and, crucially,
// keep using the connection after a timeout. It exists to demonstrate the
// desync bug the real client now refuses to commit.
type legacySession struct {
	conn net.Conn
	br   *bufio.Reader
}

func legacyDial(t *testing.T, addr string, cfg client.Config) *legacySession {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	ls := &legacySession{conn: conn, br: bufio.NewReader(conn)}
	payload, err := ls.roundTrip(wire.MsgHello, wire.MarshalHello(wire.Hello{
		W: cfg.W, H: cfg.H, Format: cfg.Format,
	}), 5*time.Second)
	if err != nil {
		t.Fatalf("legacy handshake: %v", err)
	}
	if _, err := wire.UnmarshalHelloAck(payload); err != nil {
		t.Fatalf("legacy handshake ack: %v", err)
	}
	return ls
}

// roundTrip is the pre-fix behaviour: on timeout the error is returned but
// the connection is reused as if nothing happened.
func (ls *legacySession) roundTrip(typ byte, payload []byte, timeout time.Duration) ([]byte, error) {
	ls.conn.SetWriteDeadline(time.Now().Add(timeout))
	if err := wire.WriteMessage(ls.conn, typ, payload, wire.DefaultMaxPayload); err != nil {
		return nil, err
	}
	ls.conn.SetReadDeadline(time.Now().Add(timeout))
	_, rpayload, err := wire.ReadMessage(ls.br, wire.DefaultMaxPayload)
	return rpayload, err
}

// delayedReplyRules delays the 5th server→client message — the FRAME reply
// to the first DecodeWindow in the scripted scenario below (1 HELLO_ACK,
// 2 ACK labels, 3 CAPTURE_ACK, 4 FRAME decode, 5 FRAME window) — far past
// the client's RequestTimeout.
func delayedReplyRules(delay time.Duration) faultnet.ProxyConfig {
	return faultnet.ProxyConfig{Rules: []faultnet.Rule{
		{Dir: faultnet.ServerToClient, Nth: 5, Delay: delay, Once: true},
	}}
}

// TestDesyncLegacyClientReturnsMismatchedReply documents the headline bug:
// with the old round-trip semantics, a reply delayed past the request
// timeout stays in the socket, and the *next* call reads it as its own
// answer — here, a DecodeWindow for an 8x8 rectangle happily returns a
// 16x12 frame that belongs to the previous request.
func TestDesyncLegacyClientReturnsMismatchedReply(t *testing.T) {
	_, addr := startProxiedServer(t, server.Config{}, server.TCPConfig{}, delayedReplyRules(400*time.Millisecond))
	const w, h = 32, 24
	ls := legacyDial(t, addr, client.Config{W: w, H: h, Format: rpx.Gray8})

	if _, err := ls.roundTrip(wire.MsgSetLabels, wire.MarshalLabels([]rpx.RegionLabel{rpx.FullFrame(w, h)}), 5*time.Second); err != nil {
		t.Fatalf("set labels: %v", err)
	}
	fr := rpx.NewFrame(w, h, rpx.Gray8)
	fillFrame(fr, 1, 0)
	if _, err := ls.roundTrip(wire.MsgCapture, fr.Pix, 5*time.Second); err != nil {
		t.Fatalf("capture: %v", err)
	}
	if _, err := ls.roundTrip(wire.MsgDecode, nil, 5*time.Second); err != nil {
		t.Fatalf("decode: %v", err)
	}

	// Request a 16x12 window; its reply is delayed past the timeout.
	win1 := wire.MarshalWindow(wire.Window{X: 0, Y: 0, W: 16, H: 12})
	if _, err := ls.roundTrip(wire.MsgDecodeWindow, win1, 100*time.Millisecond); err == nil {
		t.Fatal("delayed reply arrived in time; fault injection did not fire")
	}

	// Legacy behaviour: request a *different* 8x8 window and read the stale
	// 16x12 reply as if it answered this call.
	win2 := wire.MarshalWindow(wire.Window{X: 8, Y: 8, W: 8, H: 8})
	payload, err := ls.roundTrip(wire.MsgDecodeWindow, win2, 5*time.Second)
	if err != nil {
		t.Fatalf("legacy second window: %v", err)
	}
	got, err := wire.UnmarshalFrame(payload)
	if err != nil {
		t.Fatalf("legacy second window payload: %v", err)
	}
	if got.W == 8 && got.H == 8 {
		t.Fatal("legacy client got the correct window — the desync this fix addresses did not reproduce")
	}
	if got.W != 16 || got.H != 12 {
		t.Fatalf("legacy client got %dx%d, expected the stale 16x12 reply", got.W, got.H)
	}
}

// TestBrokenSessionAfterTimeout is the fixed client on the identical
// scenario: the timed-out call fails, and instead of reading the stale
// reply the next call fails with ErrBrokenSession.
func TestBrokenSessionAfterTimeout(t *testing.T) {
	_, addr := startProxiedServer(t, server.Config{}, server.TCPConfig{}, delayedReplyRules(400*time.Millisecond))
	const w, h = 32, 24
	sess, err := client.Dial(addr, client.Config{
		W: w, H: h, Format: rpx.Gray8, RequestTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(w, h)}); err != nil {
		t.Fatal(err)
	}
	fr := rpx.NewFrame(w, h, rpx.Gray8)
	fillFrame(fr, 1, 0)
	if _, err := sess.Capture(fr); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Decoded(); err != nil {
		t.Fatal(err)
	}

	_, err = sess.DecodeWindow(0, 0, 16, 12)
	if err == nil {
		t.Fatal("delayed reply arrived in time; fault injection did not fire")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("timed-out call = %v, want a timeout error", err)
	}
	if !sess.Broken() {
		t.Fatal("session not poisoned after timeout")
	}

	// The call that used to read the stale 16x12 reply now refuses.
	if _, err := sess.DecodeWindow(8, 8, 8, 8); !errors.Is(err, client.ErrBrokenSession) {
		t.Fatalf("post-timeout call = %v, want ErrBrokenSession", err)
	}
	if _, err := sess.Capture(fr); !errors.Is(err, client.ErrBrokenSession) {
		t.Fatalf("post-timeout capture = %v, want ErrBrokenSession", err)
	}
}

// TestReconnectRecoversWithLabelsReplayed is the opt-in recovery path: the
// same delayed-reply poisoning, but with Reconnect enabled the session
// re-dials, replays HELLO and the remembered region labels, and the next
// capture/decode cycle is byte-identical to a fresh reference system with
// the same labels — proving the workload was re-installed.
func TestReconnectRecoversWithLabelsReplayed(t *testing.T) {
	_, addr := startProxiedServer(t, server.Config{}, server.TCPConfig{}, delayedReplyRules(400*time.Millisecond))
	const w, h = 32, 24
	labels := []rpx.RegionLabel{
		{X: 4, Y: 4, W: 20, H: 16, Stride: 2, Skip: 1},
		{X: 0, Y: 20, W: w, H: 4, Stride: 1, Skip: 1},
	}
	sess, err := client.Dial(addr, client.Config{
		W: w, H: h, Format: rpx.Gray8,
		RequestTimeout: 100 * time.Millisecond,
		Reconnect:      true, MaxRetries: 4, Backoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	fr := rpx.NewFrame(w, h, rpx.Gray8)
	fillFrame(fr, 2, 0)
	if _, err := sess.Capture(fr); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Decoded(); err != nil {
		t.Fatal(err)
	}

	// The delayed reply poisons the stream; the idempotent call is retried
	// on a fresh connection, where the new pipeline has no frame yet — a
	// typed remote error, never a stale or mismatched reply.
	_, err = sess.DecodeWindow(0, 0, 16, 12)
	if err == nil {
		t.Fatal("delayed reply arrived in time; fault injection did not fire")
	}
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("retried window = %v, want a remote error from the fresh session", err)
	}
	if sess.Reconnects() != 1 {
		t.Fatalf("Reconnects = %d, want 1", sess.Reconnects())
	}
	if sess.Broken() {
		t.Fatal("session still broken after successful reconnect")
	}

	// Byte-identical decode afterward, against a reference that proves the
	// labels were replayed onto the new server-side pipeline.
	ref, err := rpx.NewSystem(w, h, rpx.Gray8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		fillFrame(fr, 2, i)
		got, err := sess.Capture(fr)
		if err != nil {
			t.Fatalf("post-reconnect capture %d: %v", i, err)
		}
		want, err := ref.Capture(fr)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("post-reconnect capture stats %d = %+v, want %+v", i, got, want)
		}
		dGot, err := sess.Decoded()
		if err != nil {
			t.Fatalf("post-reconnect decode %d: %v", i, err)
		}
		dWant, err := ref.Decoded()
		if err != nil {
			t.Fatal(err)
		}
		if !dGot.Equal(dWant) {
			t.Fatalf("post-reconnect decode %d differs byte-for-byte", i)
		}
	}
}

// faultSeeds returns the injection-matrix seeds: FAULTNET_SEED pins a
// single deterministic seed (the CI smoke stage uses this so failures
// reproduce); otherwise a small fixed spread runs.
func faultSeeds(t *testing.T) []int64 {
	if v := os.Getenv("FAULTNET_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("FAULTNET_SEED=%q: %v", v, err)
		}
		return []int64{seed}
	}
	return []int64{1, 7, 1234}
}

// expectedFaultErr asserts an error from a faulty-network call is one of
// the typed/transport classes the client contract allows — never silence,
// never a mangled success.
func expectedFaultErr(err error) bool {
	var re *wire.RemoteError
	var ne net.Error
	return errors.Is(err, client.ErrBrokenSession) ||
		errors.As(err, &re) ||
		errors.As(err, &ne) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// TestFaultMatrix drives concurrent client sessions through a proxy
// injecting random latency spikes, partial writes, mid-message resets, and
// truncations, under -race. The oracle: with full-frame labels the decoded
// frame must byte-equal the last successfully captured frame (or one whose
// capture's ack was lost in flight) — every completed call returns either
// the correct bytes or a typed error, never a mismatched frame.
func TestFaultMatrix(t *testing.T) {
	for _, seed := range faultSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, addr := startProxiedServer(t, server.Config{}, server.TCPConfig{}, faultnet.ProxyConfig{
				ClientFaults: faultnet.Faults{
					Seed:             seed,
					LatencyProb:      0.05,
					LatencyMin:       time.Millisecond,
					LatencyMax:       30 * time.Millisecond,
					PartialWriteProb: 0.10,
					ResetProb:        0.02,
					TruncateProb:     0.02,
				},
			})
			const w, h, frames, sessions = 24, 16, 40, 4
			var wg sync.WaitGroup
			for si := 0; si < sessions; si++ {
				wg.Add(1)
				go func(si int) {
					defer wg.Done()
					fail := func(format string, args ...any) {
						t.Errorf("seed %d session %d: %s", seed, si, fmt.Sprintf(format, args...))
					}
					sess, err := client.Dial(addr, client.Config{
						W: w, H: h, Format: rpx.Gray8, Block: true,
						RequestTimeout: 250 * time.Millisecond,
						Reconnect:      true, MaxRetries: 6, Backoff: 2 * time.Millisecond,
					})
					if err != nil {
						// The handshake itself may be hit by injected faults;
						// that is a legitimate, typed outcome.
						if !expectedFaultErr(err) {
							fail("dial: unexpected error class: %v", err)
						}
						return
					}
					defer sess.Close()
					installed := false
					for attempt := 0; attempt < 50; attempt++ {
						err := sess.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(w, h)})
						if err == nil {
							installed = true
							break
						}
						if !expectedFaultErr(err) {
							fail("set labels: unexpected error class: %v", err)
							return
						}
					}
					if !installed {
						fail("labels never installed in 50 attempts")
						return
					}

					mkFrame := func(i int) *rpx.Frame {
						fr := rpx.NewFrame(w, h, rpx.Gray8)
						fillFrame(fr, si*1000, i)
						return fr
					}
					// candidates is the set of frame indices the server may
					// legitimately hold: the last acked capture, plus any
					// captures whose acks were lost in flight since.
					var candidates []int
					for i := 0; i < frames; i++ {
						if _, err := sess.Capture(mkFrame(i)); err != nil {
							if !expectedFaultErr(err) {
								fail("capture %d: unexpected error class: %v", i, err)
								return
							}
							candidates = append(candidates, i)
						} else {
							candidates = []int{i}
						}
						dec, err := sess.Decoded()
						if err != nil {
							if !expectedFaultErr(err) {
								fail("decode %d: unexpected error class: %v", i, err)
								return
							}
							continue
						}
						matched := false
						for _, c := range candidates {
							if dec.Equal(mkFrame(c)) {
								matched = true
								break
							}
						}
						if !matched {
							fail("decode %d returned a frame matching none of the possibly-captured frames %v — a mismatched reply", i, candidates)
							return
						}
					}
				}(si)
			}
			wg.Wait()
		})
	}
}
