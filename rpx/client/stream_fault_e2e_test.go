package client_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/server"
	"repro/rpx"
	"repro/rpx/client"
)

// Streaming under transport faults. The oracle everywhere: a subscriber
// observes a prefix of the frame sequence — contiguous seqs from its start
// point, every payload byte-identical to the request/reply view — and then
// either the stream is complete or a typed/transport error ends it. Never a
// torn FRAME_PUSH, never a gap, never a duplicate.

// streamFaultFixture boots a backend, a fault proxy in front of it for the
// subscriber, a producer dialed DIRECTLY to the backend (so scripted rule
// ordinals only ever count the subscriber's connection), and the expected
// per-seq bytes for `frames` captures.
type streamFaultFixture struct {
	backendAddr string
	proxy       *faultnet.Proxy
	producer    *client.Session
	want        [][]byte
}

func newStreamFaultFixture(t *testing.T, pcfg faultnet.ProxyConfig, w, h int) *streamFaultFixture {
	t.Helper()
	backend := startServer(t, server.Config{}, server.TCPConfig{})
	p, err := faultnet.NewProxy(backend, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	producer, err := client.Dial(backend, client.Config{W: w, H: h, Format: rpx.Gray8, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { producer.Close() })
	if err := producer.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(w, h)}); err != nil {
		t.Fatal(err)
	}
	return &streamFaultFixture{backendAddr: backend, proxy: p, producer: producer}
}

// capture runs n producer captures and records the reference bytes for each.
func (fx *streamFaultFixture) capture(t *testing.T, w, h, n int) {
	t.Helper()
	fr := rpx.NewFrame(w, h, rpx.Gray8)
	for i := 0; i < n; i++ {
		fillFrame(fr, 7, len(fx.want))
		if _, err := fx.producer.Capture(fr); err != nil {
			t.Fatal(err)
		}
		ef, err := fx.producer.LastEncoded()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ef.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		fx.want = append(fx.want, buf.Bytes())
	}
}

// drainUntilFault receives from st until a fault surfaces, asserting the
// prefix oracle along the way, and returns (framesReceived, err).
func drainUntilFault(t *testing.T, st *client.Stream, want [][]byte) (int, error) {
	t.Helper()
	got := 0
	for got < len(want) {
		f, err := st.Recv()
		if err != nil {
			return got, err
		}
		if f.Seq != uint64(got) {
			t.Fatalf("frame %d has seq %d — gap or reorder under faults", got, f.Seq)
		}
		if f.Dropped != 0 {
			t.Fatalf("frame %d reports drops with ample credit", got)
		}
		if !bytes.Equal(f.Raw, want[got]) {
			t.Fatalf("frame %d bytes diverge from the request/reply reference — torn or corrupted push", got)
		}
		got++
	}
	return got, nil
}

// TestStreamFaultScriptedCuts: the proxy truncates (claiming the full
// length, delivering a prefix — a mid-message, mid-batch cut) or drops the
// subscriber's 5th server→client message, i.e. the 3rd FRAME_PUSH
// (1 HELLO_ACK, 2 SUBSCRIBE_ACK, 3+ pushes). The subscriber must see the
// untouched pushes byte-perfect and then a transport error that poisons the
// session — never a short or mangled frame surfaced as data.
func TestStreamFaultScriptedCuts(t *testing.T) {
	const w, h, frames = 48, 32, 8
	cuts := []struct {
		name string
		rule faultnet.Rule
	}{
		{"truncate-mid-push", faultnet.Rule{Dir: faultnet.ServerToClient, Nth: 5, TruncateTo: 11, Once: true}},
		{"drop-push", faultnet.Rule{Dir: faultnet.ServerToClient, Nth: 5, Drop: true, Once: true}},
	}
	for _, tc := range cuts {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fx := newStreamFaultFixture(t, faultnet.ProxyConfig{Rules: []faultnet.Rule{tc.rule}}, w, h)
			sub, err := client.Dial(fx.proxy.Addr(), client.Config{
				W: 8, H: 8, Format: rpx.Gray8, RequestTimeout: 2 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Close()
			st, err := sub.Subscribe(client.SubscribeOptions{Target: fx.producer.ID(), Credit: 64, Batch: 4})
			if err != nil {
				t.Fatal(err)
			}
			fx.capture(t, w, h, frames)

			got, err := drainUntilFault(t, st, fx.want)
			if err == nil {
				t.Fatalf("all %d frames arrived; the scripted cut never fired", got)
			}
			if !expectedFaultErr(err) {
				t.Fatalf("stream ended with unexpected error class: %v", err)
			}
			// The two intact pushes (messages 3 and 4) carried at least two
			// frames; the cut message must deliver nothing at all.
			if got < 2 {
				t.Fatalf("only %d frames before the cut, want the intact pushes first", got)
			}
			if !sub.Broken() {
				t.Fatal("session not poisoned after a torn push")
			}
			if _, err := sub.ServerStats(); err == nil {
				t.Fatal("poisoned session still answered a request")
			}
		})
	}
}

// TestStreamFaultMatrix: random latency, partial writes, resets, and
// truncations on the subscriber's connection, seeds pinned via
// FAULTNET_SEED. Whatever prefix of the stream survives must be contiguous
// and byte-perfect; the first fault must surface as a typed/transport
// error.
func TestStreamFaultMatrix(t *testing.T) {
	const w, h, frames = 32, 24, 30
	for _, seed := range faultSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fx := newStreamFaultFixture(t, faultnet.ProxyConfig{
				ClientFaults: faultnet.Faults{
					Seed:             seed,
					LatencyProb:      0.05,
					LatencyMin:       time.Millisecond,
					LatencyMax:       10 * time.Millisecond,
					PartialWriteProb: 0.10,
					ResetProb:        0.03,
					TruncateProb:     0.05,
				},
			}, w, h)
			sub, err := client.Dial(fx.proxy.Addr(), client.Config{
				W: 8, H: 8, Format: rpx.Gray8, RequestTimeout: 2 * time.Second,
			})
			if err != nil {
				// Faults may hit the handshake itself; typed outcome, fine.
				if !expectedFaultErr(err) {
					t.Fatalf("dial: unexpected error class: %v", err)
				}
				return
			}
			defer sub.Close()
			st, err := sub.Subscribe(client.SubscribeOptions{Target: fx.producer.ID(), Credit: 64, Batch: 4})
			if err != nil {
				if !expectedFaultErr(err) {
					t.Fatalf("subscribe: unexpected error class: %v", err)
				}
				return
			}
			fx.capture(t, w, h, frames)

			got, err := drainUntilFault(t, st, fx.want)
			switch {
			case err == nil:
				// Clean run for this seed: close out; the unsubscribe itself
				// may still be hit by a fault.
				if cerr := st.Close(); cerr != nil && !expectedFaultErr(cerr) {
					t.Fatalf("close: unexpected error class: %v", cerr)
				}
			case expectedFaultErr(err):
				t.Logf("seed %d: fault after %d clean frames: %v", seed, got, err)
			default:
				t.Fatalf("stream ended with unexpected error class: %v", err)
			}
		})
	}
}
