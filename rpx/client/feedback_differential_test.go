package client_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/rpx"
	"repro/rpx/client"
)

// TestStreamLabelBoundaryDifferential: the differential acceptance test for
// mid-stream label updates. A label workload pushed over an open
// subscription takes effect on the deterministic boundary the server
// reports, and the streamed output is byte-identical to an in-process
// rpx.System (sequential reference path) that switches workloads at exactly
// that boundary — for every combination of server-side parallelism (1, 2,
// 8) and wire codec (raw, packed). Whatever the parallelism and container
// format, the frames on each side of the boundary reconstruct to the same
// bytes the reference produces.
func TestStreamLabelBoundaryDifferential(t *testing.T) {
	const w, h = 64, 48
	labelsA := []rpx.RegionLabel{rpx.FullFrame(w, h)}
	// The replacement workload mixes sampling parameters so both the spatial
	// (stride) and temporal (skip/phase) decode paths cross the boundary.
	labelsB := []rpx.RegionLabel{
		{X: 0, Y: 0, W: 32, H: 24, Stride: 1, Skip: 1},
		{X: 32, Y: 24, W: 32, H: 24, Stride: 2, Skip: 2, Phase: 1},
	}
	for _, parallelism := range []int{1, 2, 8} {
		for _, packed := range []bool{false, true} {
			codec := "raw"
			if packed {
				codec = "packed"
			}
			t.Run(fmt.Sprintf("p%d/%s", parallelism, codec), func(t *testing.T) {
				runLabelBoundaryDifferential(t, w, h, parallelism, packed, labelsA, labelsB)
			})
		}
	}
}

func runLabelBoundaryDifferential(t *testing.T, w, h, parallelism int, packed bool, labelsA, labelsB []rpx.RegionLabel) {
	addr := startServer(t, server.Config{}, server.TCPConfig{})
	producer, err := client.Dial(addr, client.Config{
		W: w, H: h, Format: rpx.Gray8, Block: true,
		Parallelism: parallelism, PackedMask: packed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if err := producer.SetRegionLabels(labelsA); err != nil {
		t.Fatal(err)
	}
	sub, err := client.Dial(addr, client.Config{
		W: 8, H: 8, Format: rpx.Gray8,
		LabelFeedback: true, PackedMask: packed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	st, err := sub.Subscribe(client.SubscribeOptions{Target: producer.ID(), Credit: 64, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	var acks []client.LabelsApplied
	st.OnLabelsApplied(func(la client.LabelsApplied) { acks = append(acks, la) })

	// Inputs are a deterministic function of the frame index alone, so every
	// matrix cell streams the same scene.
	next := 0
	capture := func(n int) {
		t.Helper()
		fr := rpx.NewFrame(w, h, rpx.Gray8)
		for i := 0; i < n; i++ {
			fillFrame(fr, 7, next)
			next++
			if _, err := producer.Capture(fr); err != nil {
				t.Fatal(err)
			}
		}
	}

	const before, after = 4, 4
	capture(before)
	if err := st.SetLabels(labelsB); err != nil {
		t.Fatal(err)
	}
	capture(after)

	var frames []client.StreamFrame
	for len(frames) < before+after {
		f, err := st.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		frames = append(frames, f)
	}
	// The ack rides an independent writer; keep the stream moving until it
	// lands (frames captured meanwhile stay part of the comparison).
	for len(acks) == 0 {
		capture(1)
		f, err := st.Recv()
		if err != nil {
			t.Fatalf("Recv awaiting ack: %v", err)
		}
		frames = append(frames, f)
	}
	if acks[0].Err != nil {
		t.Fatalf("labels rejected: %v", acks[0].Err)
	}
	boundary := acks[0].AppliedSeq
	if boundary > uint64(next) {
		t.Fatalf("boundary %d beyond the %d captured frames", boundary, next)
	}

	// Reference: always the sequential in-process pipeline (parallelism 1),
	// fed the same inputs, switching workloads exactly at the reported
	// boundary. Byte-identity against it proves both the boundary exactness
	// and the parallelism/codec independence of everything after it.
	ref, err := rpx.NewSystem(w, h, rpx.Gray8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetRegionLabels(labelsA); err != nil {
		t.Fatal(err)
	}
	dec := core.NewDecoder(w, h, rpx.Gray8)
	fr := rpx.NewFrame(w, h, rpx.Gray8)
	for i, f := range frames {
		if f.Seq != uint64(i) {
			t.Fatalf("stream frame %d has seq %d (dropped frames would desynchronize the replay)", i, f.Seq)
		}
		if f.Seq == boundary {
			if err := ref.SetRegionLabels(labelsB); err != nil {
				t.Fatal(err)
			}
		}
		fillFrame(fr, 7, i)
		refStats, err := ref.Capture(fr)
		if err != nil {
			t.Fatal(err)
		}
		if f.Stats != refStats {
			t.Fatalf("frame %d stats %+v, reference %+v (boundary %d)", i, f.Stats, refStats, boundary)
		}
		refDec, err := ref.Decoded()
		if err != nil {
			t.Fatal(err)
		}
		ef, err := f.Decode()
		if err != nil {
			t.Fatalf("frame %d container: %v", i, err)
		}
		if err := dec.Push(ef); err != nil {
			t.Fatal(err)
		}
		got, err := dec.DecodeFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(refDec) {
			t.Fatalf("frame %d decodes differently from the sequential reference (boundary %d, parallelism %d, packed %v)",
				i, boundary, parallelism, packed)
		}
	}
}
