package client

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
	"repro/rpx"
)

// Streaming push mode (protocol v3).
//
// Subscribe switches the session from request/reply to server push: the
// server sends FRAME_PUSH batches as frames are captured, bounded by the
// credit the client has granted, until Close (a clean UNSUBSCRIBE) or a
// terminal server error ends the stream and the session returns to
// request/reply. While a stream is open every normal call fails with
// ErrStreaming — the connection's framing belongs to the stream.
//
// A Stream is a single-consumer object: Recv and Close must not be called
// concurrently with each other. Grant has its own write path and may be
// called from any goroutine (typically the one consuming frames).
//
// Failure semantics mirror the session's (see the package comment): any
// transport error poisons the underlying session, the failing stream call
// returns the error, and later calls fail with ErrBrokenSession. A terminal
// server error (the producing session closed) ends only the stream — it is
// reported as a *wire.RemoteError and the session stays usable.

// ErrStreaming is returned by request/reply calls while a push stream owns
// the connection.
var ErrStreaming = errors.New("client: session is in streaming mode")

// ErrStreamingUnsupported is returned by Subscribe when the server
// negotiated protocol v2, which has no push mode.
var ErrStreamingUnsupported = errors.New("client: server negotiated protocol v2, streaming needs v3")

// SubscribeOptions parameterizes Subscribe.
type SubscribeOptions struct {
	// Target selects the session whose frame stream to attach to: 0 means
	// this session's own stream, otherwise a server-assigned session id
	// (another client's Session.ID()) for cross-session fan-out.
	Target uint64
	// Credit is the initial credit window in frames (0 = frames drop until
	// the first Grant). At most wire.MaxCreditWindow.
	Credit int
	// Batch bounds frames per FRAME_PUSH message (0 = 1, at most
	// wire.MaxBatch).
	Batch int
}

// StreamFrame is one pushed frame.
type StreamFrame struct {
	// Seq is the producing session's frame index for this frame. A gap
	// between consecutive frames' Seq means the subscription was out of
	// credit and frames were dropped.
	Seq uint64
	// Stats are the frame's capture statistics, identical to what the
	// producer's Capture call returned.
	Stats rpx.CaptureStats
	// Dropped is the subscription's cumulative dropped-frame count as of
	// the push that carried this frame.
	Dropped uint64
	// Raw is the encoded frame in the RPXE container framing —
	// byte-identical to LastEncoded's wire payload for the same frame.
	Raw []byte
}

// Decode unpacks the frame's RPXE container.
func (f *StreamFrame) Decode() (*rpx.EncodedFrame, error) {
	return core.ReadEncodedFrame(bytes.NewReader(f.Raw))
}

// LabelsApplied reports the outcome of one in-stream SetLabels: the first
// frame sequence number captured under the new workload, or the server's
// rejection. Every pushed frame with Seq >= AppliedSeq observed the new
// labels; every earlier frame the previous ones.
type LabelsApplied struct {
	// AppliedSeq is the deterministic label boundary (valid when Err is nil).
	AppliedSeq uint64
	// Err is nil on success, else the server's *wire.RemoteError.
	Err error
}

// Stream is an open push subscription.
type Stream struct {
	s       *Session
	id      uint64
	nextSeq uint64
	buf     []StreamFrame
	done    bool
	err     error

	// onApplied, when set, receives each LABELS_APPLIED synchronously from
	// the goroutine calling Recv; unset, outcomes queue in applied.
	onApplied func(LabelsApplied)
	applied   []LabelsApplied
}

// Subscribe opens a push stream. The session must have negotiated protocol
// v3 and must not be broken, closed, or already streaming.
func (s *Session) Subscribe(opts SubscribeOptions) (*Stream, error) {
	if opts.Credit < 0 || opts.Credit > wire.MaxCreditWindow {
		return nil, fmt.Errorf("client: subscribe credit %d outside [0, %d]", opts.Credit, wire.MaxCreditWindow)
	}
	if opts.Batch < 0 || opts.Batch > wire.MaxBatch {
		return nil, fmt.Errorf("client: subscribe batch %d outside [0, %d]", opts.Batch, wire.MaxBatch)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("client: session closed")
	}
	if s.stream != nil {
		return nil, ErrStreaming
	}
	if s.broken {
		if !s.cfg.Reconnect {
			return nil, ErrBrokenSession
		}
		if err := s.reconnectLocked(); err != nil {
			return nil, err
		}
	}
	if s.protoVersion < 3 {
		return nil, ErrStreamingUnsupported
	}
	rtyp, rpayload, err := s.roundTripLocked(wire.MsgSubscribe, wire.MarshalSubscribe(wire.Subscribe{
		Target: opts.Target,
		Credit: uint32(opts.Credit),
		Batch:  uint32(opts.Batch),
	}))
	if err != nil {
		return nil, err
	}
	if rtyp == wire.MsgError {
		re, uerr := wire.UnmarshalError(rpayload)
		if uerr != nil {
			return nil, uerr
		}
		return nil, re
	}
	if rtyp != wire.MsgSubscribeAck {
		s.poisonLocked()
		return nil, fmt.Errorf("%w: got reply type %d, want %d", ErrBrokenSession, rtyp, wire.MsgSubscribeAck)
	}
	ack, err := wire.UnmarshalSubscribeAck(rpayload)
	if err != nil {
		s.poisonLocked()
		return nil, err
	}
	st := &Stream{s: s, id: ack.SubID, nextSeq: ack.NextSeq}
	s.stream = st
	return st, nil
}

// ID returns the server-assigned subscription id.
func (st *Stream) ID() uint64 { return st.id }

// NextSeq returns the sequence number of the first frame the subscription
// could observe (from the SUBSCRIBE_ACK).
func (st *Stream) NextSeq() uint64 { return st.nextSeq }

// failTransport poisons the session — stream framing is request/reply
// framing, a transport error desynchronizes both — and ends the stream.
func (st *Stream) failTransport(err error) error {
	st.s.mu.Lock()
	st.s.poisonLocked()
	st.s.stream = nil
	st.s.mu.Unlock()
	st.done = true
	st.err = err
	return err
}

// finish ends the stream without poisoning: the session's request/reply
// framing is intact and resumes.
func (st *Stream) finish(err error) {
	st.s.mu.Lock()
	st.s.stream = nil
	st.s.mu.Unlock()
	st.done = true
	st.err = err
}

// Recv returns the next pushed frame, reading FRAME_PUSH batches off the
// wire as needed. It returns io.EOF after a clean Close, and the terminal
// *wire.RemoteError if the server ended the stream (the session remains
// usable in both cases). Transport errors poison the session.
func (st *Stream) Recv() (StreamFrame, error) {
	for {
		if len(st.buf) > 0 {
			f := st.buf[0]
			st.buf = st.buf[1:]
			return f, nil
		}
		if st.done {
			return StreamFrame{}, st.err
		}
		typ, payload, err := st.readMsg()
		if err != nil {
			return StreamFrame{}, st.failTransport(fmt.Errorf("client: stream receive: %w", err))
		}
		switch typ {
		case wire.MsgFramePush:
			if err := st.buffer(payload); err != nil {
				return StreamFrame{}, st.failTransport(err)
			}
		case wire.MsgLabelsApplied:
			if err := st.noteApplied(payload); err != nil {
				return StreamFrame{}, st.failTransport(err)
			}
		case wire.MsgError:
			re, uerr := wire.UnmarshalError(payload)
			if uerr != nil {
				return StreamFrame{}, st.failTransport(uerr)
			}
			st.finish(re)
			return StreamFrame{}, re
		default:
			return StreamFrame{}, st.failTransport(fmt.Errorf(
				"%w: got message type %d while streaming", ErrBrokenSession, typ))
		}
	}
}

// noteApplied validates one LABELS_APPLIED payload and dispatches it to the
// callback or the pending queue.
func (st *Stream) noteApplied(payload []byte) error {
	la, err := wire.UnmarshalLabelsApplied(payload)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if la.SubID != st.id {
		return fmt.Errorf("%w: LABELS_APPLIED for subscription %d, want %d", ErrBrokenSession, la.SubID, st.id)
	}
	out := LabelsApplied{AppliedSeq: la.AppliedSeq}
	if la.Code != 0 {
		out.Err = &wire.RemoteError{Code: la.Code, Message: la.Msg}
	}
	if st.onApplied != nil {
		st.onApplied(out)
		return nil
	}
	st.applied = append(st.applied, out)
	return nil
}

// OnLabelsApplied installs the callback that receives each SetLabels
// outcome, called synchronously from the goroutine inside Recv. Set it
// before the first SetLabels; without a callback, outcomes queue for
// TakeLabelsApplied instead.
func (st *Stream) OnLabelsApplied(fn func(LabelsApplied)) { st.onApplied = fn }

// TakeLabelsApplied drains the queued SetLabels outcomes accumulated by
// Recv when no callback is installed. Single-consumer, like Recv.
func (st *Stream) TakeLabelsApplied() []LabelsApplied {
	out := st.applied
	st.applied = nil
	return out
}

// SetLabels pushes a region-label workload back to the subscription's
// target session without leaving push mode — the closed-loop feedback path
// (protocol v5, Config.LabelFeedback). The write returns immediately; the
// server's acknowledgment (the first frame sequence number captured under
// the new labels, or a rejection) is delivered through Recv to the
// OnLabelsApplied callback or the TakeLabelsApplied queue. Like Grant, it
// is safe to call while another goroutine blocks in Recv.
func (st *Stream) SetLabels(labels []rpx.RegionLabel) error {
	s := st.s
	if st.done {
		return st.err
	}
	if v := s.ProtoVersion(); v < 5 {
		return fmt.Errorf("client: in-stream labels need protocol v5 (Config.LabelFeedback), session negotiated v%d", v)
	}
	s.conn.SetWriteDeadline(time.Now().Add(s.timeout))
	if err := s.mw.WriteMessage(wire.MsgStreamLabels, wire.MarshalStreamLabels(wire.StreamLabels{
		SubID:  st.id,
		Labels: labels,
	}), s.maxPayload); err != nil {
		return st.failTransport(fmt.Errorf("client: stream labels: %w", err))
	}
	return nil
}

// readMsg reads one message off the stream's connection. The stream owns
// the read side while open (request/reply calls are locked out), so no
// session lock is needed.
func (st *Stream) readMsg() (byte, []byte, error) {
	s := st.s
	s.conn.SetReadDeadline(time.Now().Add(s.timeout))
	return wire.ReadMessage(s.br, s.maxPayload)
}

// buffer validates one FRAME_PUSH payload and queues its frames.
func (st *Stream) buffer(payload []byte) error {
	p, err := wire.UnmarshalFramePush(payload)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if p.SubID != st.id {
		return fmt.Errorf("%w: FRAME_PUSH for subscription %d, want %d", ErrBrokenSession, p.SubID, st.id)
	}
	for _, f := range p.Frames {
		st.buf = append(st.buf, StreamFrame{
			Seq: f.Seq,
			Stats: rpx.CaptureStats{
				FrameIndex:    f.Stats.FrameIndex,
				EncodedPixels: f.Stats.EncodedPixels,
				EncodedBytes:  f.Stats.EncodedBytes,
				PixelFraction: f.Stats.PixelFraction,
			},
			Dropped: p.Dropped,
			Raw:     f.Enc,
		})
	}
	return nil
}

// Grant gives the server n more push credits (1 <= n <=
// wire.MaxCreditWindow; the server clamps the total outstanding window).
// Safe to call while another goroutine blocks in Recv — grants ride the
// connection's write side, pushes its read side.
func (st *Stream) Grant(n int) error {
	if n <= 0 || n > wire.MaxCreditWindow {
		return fmt.Errorf("client: grant %d outside [1, %d]", n, wire.MaxCreditWindow)
	}
	s := st.s
	if st.done {
		return st.err
	}
	// The MessageWriter serializes this against any concurrent write and
	// emits the whole message in one vectored write, so a grant can never
	// tear another in-flight message.
	s.conn.SetWriteDeadline(time.Now().Add(s.timeout))
	if err := s.mw.WriteMessage(wire.MsgCredit, wire.MarshalCredit(wire.Credit{
		SubID: st.id,
		N:     uint32(n),
	}), s.maxPayload); err != nil {
		return st.failTransport(fmt.Errorf("client: stream grant: %w", err))
	}
	return nil
}

// Close unsubscribes cleanly: it sends UNSUBSCRIBE, then reads and discards
// remaining pushes until the server's final ACK, returning the session to
// request/reply mode. After Close, Recv returns io.EOF. Close must not be
// called concurrently with Recv.
func (st *Stream) Close() error {
	if st.done {
		return nil
	}
	s := st.s
	s.conn.SetWriteDeadline(time.Now().Add(s.timeout))
	err := s.mw.WriteMessage(wire.MsgUnsubscribe, wire.MarshalUnsubscribe(wire.Unsubscribe{
		SubID: st.id,
	}), s.maxPayload)
	if err != nil {
		return st.failTransport(fmt.Errorf("client: unsubscribe: %w", err))
	}
	for {
		typ, payload, err := st.readMsg()
		if err != nil {
			return st.failTransport(fmt.Errorf("client: unsubscribe: %w", err))
		}
		switch typ {
		case wire.MsgFramePush:
			// Frames that were already in flight when we unsubscribed;
			// discarded by choice — Recv before Close to keep them.
		case wire.MsgLabelsApplied:
			// A SetLabels acknowledgment that was in flight when we
			// unsubscribed; queue it so the outcome is not lost.
			if err := st.noteApplied(payload); err != nil {
				return st.failTransport(err)
			}
		case wire.MsgAck:
			st.finish(io.EOF)
			return nil
		case wire.MsgError:
			re, uerr := wire.UnmarshalError(payload)
			if uerr != nil {
				return st.failTransport(uerr)
			}
			st.finish(re)
			return re
		default:
			return st.failTransport(fmt.Errorf(
				"%w: got message type %d awaiting unsubscribe ack", ErrBrokenSession, typ))
		}
	}
}
