package client_test

import (
	"testing"

	"repro/internal/server"
	"repro/rpx"
	"repro/rpx/client"
)

// TestStreamLabelFeedback: the closed-loop path end to end. A v5 subscriber
// pushes a label workload back to the producer mid-stream and the
// LABELS_APPLIED boundary is exact — every frame before it carries the old
// workload's pixel fraction, every frame from it on the new one.
func TestStreamLabelFeedback(t *testing.T) {
	const w, h = 64, 48
	addr := startServer(t, server.Config{}, server.TCPConfig{})
	producer, err := client.Dial(addr, client.Config{W: w, H: h, Format: rpx.Gray8, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if err := producer.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(w, h)}); err != nil {
		t.Fatal(err)
	}

	sub, err := client.Dial(addr, client.Config{W: 8, H: 8, Format: rpx.Gray8, LabelFeedback: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if v := sub.ProtoVersion(); v != 5 {
		t.Fatalf("LabelFeedback client negotiated v%d, want 5", v)
	}
	st, err := sub.Subscribe(client.SubscribeOptions{Target: producer.ID(), Credit: 64, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}

	var acks []client.LabelsApplied
	st.OnLabelsApplied(func(la client.LabelsApplied) { acks = append(acks, la) })

	capture := func(n int) {
		t.Helper()
		fr := rpx.NewFrame(w, h, rpx.Gray8)
		for i := 0; i < n; i++ {
			fillFrame(fr, 9, i)
			if _, err := producer.Capture(fr); err != nil {
				t.Fatal(err)
			}
		}
	}

	const before = 3
	capture(before)
	// Push the new workload from the subscriber side, mid-stream. The write
	// is async; the ack arrives through Recv, ordered before any frame
	// captured under the new labels.
	if err := st.SetLabels([]rpx.RegionLabel{{X: 0, Y: 0, W: w / 2, H: h / 2, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	// Captures submitted only after the ack is on the wire would be trivially
	// ordered; submitting them immediately exercises the worker-queue
	// serialization instead. The boundary must still be exact.
	const after = 3
	capture(after)

	total := before + after
	frames := make([]client.StreamFrame, 0, total)
	for len(frames) < total {
		f, err := st.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		frames = append(frames, f)
	}
	// The ack and the frame pushes leave on independent writers, so keep
	// the stream moving until the ack has arrived.
	for len(acks) == 0 {
		capture(1)
		total++
		f, err := st.Recv()
		if err != nil {
			t.Fatalf("Recv awaiting ack: %v", err)
		}
		frames = append(frames, f)
	}
	if acks[0].Err != nil {
		t.Fatalf("labels rejected: %v", acks[0].Err)
	}
	boundary := acks[0].AppliedSeq
	// SetLabels raced the captures through the producer's queue, so the
	// boundary may land anywhere up to the frames captured so far; wherever
	// it landed, it must split the pixel-fraction regimes exactly.
	if boundary > uint64(total) {
		t.Fatalf("boundary %d beyond the %d captured frames", boundary, total)
	}
	for _, f := range frames {
		full := f.Stats.PixelFraction > 0.99
		if f.Seq < boundary && !full {
			t.Fatalf("frame %d is before boundary %d but has fraction %.3f, want full",
				f.Seq, boundary, f.Stats.PixelFraction)
		}
		if f.Seq >= boundary && full {
			t.Fatalf("frame %d is at/after boundary %d but still full-frame", f.Seq, boundary)
		}
	}

	// A rejected workload reports its error through the same path and leaves
	// the stream and the previous labels intact.
	if err := st.SetLabels([]rpx.RegionLabel{{X: -4, Y: 0, W: w * 4, H: h, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	for len(acks) < 2 {
		capture(1)
		f, err := st.Recv()
		if err != nil {
			t.Fatalf("Recv after rejected labels: %v", err)
		}
		if f.Stats.PixelFraction > 0.99 {
			t.Fatal("rejected labels replaced the in-force workload")
		}
	}
	if acks[1].Err == nil {
		t.Fatalf("rejected workload: acks = %+v, want a second ack with an error", acks)
	}

	if err := st.Close(); err != nil {
		t.Fatalf("stream close: %v", err)
	}
	// The session is back in request/reply mode.
	if _, err := sub.ServerStats(); err != nil {
		t.Fatalf("request/reply after unsubscribe: %v", err)
	}
}

// TestStreamLabelsNeedV5: a default (v3) subscriber cannot push labels —
// the client refuses locally before touching the wire, and the stream
// stays usable.
func TestStreamLabelsNeedV5(t *testing.T) {
	addr := startServer(t, server.Config{}, server.TCPConfig{})
	producer, err := client.Dial(addr, client.Config{W: 32, H: 32, Format: rpx.Gray8, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	sub, err := client.Dial(addr, client.Config{W: 8, H: 8, Format: rpx.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	st, err := sub.Subscribe(client.SubscribeOptions{Target: producer.ID(), Credit: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetLabels([]rpx.RegionLabel{rpx.FullFrame(32, 32)}); err == nil {
		t.Fatal("SetLabels on a v3 stream succeeded")
	}
	fr := rpx.NewFrame(32, 32, rpx.Gray8)
	fillFrame(fr, 2, 0)
	if _, err := producer.Capture(fr); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != nil {
		t.Fatalf("stream broken by the refused SetLabels: %v", err)
	}
}
