package client_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/rpx"
	"repro/rpx/client"
)

// startServer boots a TCPServer on a loopback listener.
func startServer(tb testing.TB, mcfg server.Config, tcfg server.TCPConfig) string {
	tb.Helper()
	mgr := server.NewManager(mcfg)
	srv := server.NewTCPServer(mgr, tcfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go srv.Serve(ln)
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

// sessionGeometry is one concurrent client's distinct configuration.
type sessionGeometry struct {
	w, h    int
	format  rpx.Format
	history int
	labels  []rpx.RegionLabel
}

func e2eGeometries() []sessionGeometry {
	return []sessionGeometry{
		{64, 48, rpx.Gray8, 0, []rpx.RegionLabel{{X: 8, Y: 8, W: 32, H: 24, Stride: 1, Skip: 1}}},
		{80, 60, rpx.Gray8, 6, []rpx.RegionLabel{{X: 0, Y: 0, W: 80, H: 60, Stride: 2, Skip: 1}}},
		{32, 32, rpx.RGB24, 0, []rpx.RegionLabel{rpx.FullFrame(32, 32)}},
		{96, 32, rpx.Gray8, 4, []rpx.RegionLabel{{X: 16, Y: 4, W: 64, H: 24, Stride: 1, Skip: 2}}},
		{48, 48, rpx.YUV444, 0, []rpx.RegionLabel{{X: 4, Y: 4, W: 40, H: 40, Stride: 2, Skip: 2}}},
		{128, 24, rpx.Gray8, 0, []rpx.RegionLabel{{X: 0, Y: 0, W: 64, H: 24, Stride: 1, Skip: 1}, {X: 64, Y: 0, W: 64, H: 24, Stride: 4, Skip: 3}}},
		{56, 72, rpx.Gray8, 8, []rpx.RegionLabel{{X: 8, Y: 16, W: 40, H: 40, Stride: 2, Skip: 1}}},
		{40, 40, rpx.RGB24, 0, []rpx.RegionLabel{{X: 0, Y: 0, W: 40, H: 20, Stride: 1, Skip: 1}}},
	}
}

// fillFrame generates a deterministic per-session, per-frame test pattern.
func fillFrame(fr *rpx.Frame, session, index int) {
	for i := range fr.Pix {
		fr.Pix[i] = byte(session*37 + index*11 + i)
	}
}

// TestEndToEndConcurrentSessions is the acceptance test: >= 8 concurrent
// client sessions with different geometries each capture >= 16 frames
// through a loopback rpxd and must decode byte-for-byte identically to an
// in-process rpx.System fed the same frames.
func TestEndToEndConcurrentSessions(t *testing.T) {
	addr := startServer(t, server.Config{}, server.TCPConfig{})
	geoms := e2eGeometries()
	const frames = 16

	var wg sync.WaitGroup
	for gi, g := range geoms {
		wg.Add(1)
		go func(gi int, g sessionGeometry) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				t.Errorf("session %d (%dx%d %v): %s", gi, g.w, g.h, g.format, fmt.Sprintf(format, args...))
			}

			sess, err := client.Dial(addr, client.Config{
				W: g.w, H: g.h, Format: g.format, HistoryDepth: g.history, Block: true,
			})
			if err != nil {
				fail("dial: %v", err)
				return
			}
			defer sess.Close()

			ref, err := rpx.NewSystem(g.w, g.h, g.format, historyOpts(g.history)...)
			if err != nil {
				fail("ref system: %v", err)
				return
			}
			if err := sess.SetRegionLabels(g.labels); err != nil {
				fail("set labels: %v", err)
				return
			}
			if err := ref.SetRegionLabels(g.labels); err != nil {
				fail("ref set labels: %v", err)
				return
			}

			fr := rpx.NewFrame(g.w, g.h, g.format)
			for i := 0; i < frames; i++ {
				fillFrame(fr, gi, i)
				got, err := sess.Capture(fr)
				if err != nil {
					fail("capture %d: %v", i, err)
					return
				}
				want, err := ref.Capture(fr)
				if err != nil {
					fail("ref capture %d: %v", i, err)
					return
				}
				if got != want {
					fail("capture stats %d = %+v, want %+v", i, got, want)
					return
				}
				dGot, err := sess.Decoded()
				if err != nil {
					fail("decode %d: %v", i, err)
					return
				}
				dWant, err := ref.Decoded()
				if err != nil {
					fail("ref decode %d: %v", i, err)
					return
				}
				if !dGot.Equal(dWant) {
					fail("decoded frame %d differs byte-for-byte", i)
					return
				}
				if i == frames/2 {
					wx, wy := g.w/4, g.h/4
					wGot, err := sess.DecodeWindow(wx, wy, g.w/2, g.h/2)
					if err != nil {
						fail("decode window: %v", err)
						return
					}
					wWant, err := ref.DecodeWindow(wx, wy, g.w/2, g.h/2)
					if err != nil {
						fail("ref decode window: %v", err)
						return
					}
					if !wGot.Equal(wWant) {
						fail("decode window differs byte-for-byte")
						return
					}
				}
			}

			// The encoded representation must match too (same container).
			efGot, err := sess.LastEncoded()
			if err != nil {
				fail("last encoded: %v", err)
				return
			}
			efWant := ref.LastEncoded()
			if efGot.FrameIndex != efWant.FrameIndex || efGot.TotalBytes() != efWant.TotalBytes() {
				fail("encoded frame mismatch: idx %d/%d bytes %d/%d",
					efGot.FrameIndex, efWant.FrameIndex, efGot.TotalBytes(), efWant.TotalBytes())
			}
		}(gi, g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Aggregate stats must reflect the whole run.
	sess, err := client.Dial(addr, client.Config{W: 16, H: 16, Format: rpx.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	snap, err := sess.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	wantFrames := int64(len(geoms) * frames)
	if snap.FramesCaptured != wantFrames {
		t.Fatalf("server FramesCaptured = %d, want %d", snap.FramesCaptured, wantFrames)
	}
	if snap.SessionsOpened != int64(len(geoms))+1 {
		t.Fatalf("server SessionsOpened = %d, want %d", snap.SessionsOpened, len(geoms)+1)
	}
	if snap.EncodedBytes == 0 {
		t.Fatal("server EncodedBytes = 0")
	}
	capture := snap.OpLatency["capture"]
	if capture.Count != uint64(wantFrames) {
		t.Fatalf("capture latency count = %d, want %d", capture.Count, wantFrames)
	}
}

// TestEndToEndParallelSessions opens concurrent sessions that differ only
// in their negotiated row-band parallelism (HELLO Parallelism field) and
// feeds them identical frame sequences: every degree must produce exactly
// the same capture stats, decoded frames, windows, and packed encoded
// representation as an in-process sequential rpx.System.
func TestEndToEndParallelSessions(t *testing.T) {
	addr := startServer(t, server.Config{}, server.TCPConfig{})
	const w, h, frames = 96, 72, 12
	labels := []rpx.RegionLabel{
		{X: 8, Y: 8, W: 64, H: 40, Stride: 2, Skip: 2},
		{X: 0, Y: 52, W: w, H: 20, Stride: 1, Skip: 1},
		{X: 70, Y: 0, W: 26, H: 48, Stride: 3, Skip: 3},
	}

	ref, err := rpx.NewSystem(w, h, rpx.Gray8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	type step struct {
		stats   rpx.CaptureStats
		decoded *rpx.Frame
		window  *rpx.Frame
	}
	want := make([]step, frames)
	fr := rpx.NewFrame(w, h, rpx.Gray8)
	for i := 0; i < frames; i++ {
		fillFrame(fr, 0, i)
		st, err := ref.Capture(fr)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := ref.Decoded()
		if err != nil {
			t.Fatal(err)
		}
		win, err := ref.DecodeWindow(8, 8, 64, 48)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = step{stats: st, decoded: dec, window: win}
	}
	wantEnc := ref.LastEncoded()

	var wg sync.WaitGroup
	for _, par := range []int{1, 2, 4, 8} {
		wg.Add(1)
		go func(par int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				t.Errorf("parallelism %d: %s", par, fmt.Sprintf(format, args...))
			}
			sess, err := client.Dial(addr, client.Config{
				W: w, H: h, Format: rpx.Gray8, Block: true, Parallelism: par,
			})
			if err != nil {
				fail("dial: %v", err)
				return
			}
			defer sess.Close()
			if err := sess.SetRegionLabels(labels); err != nil {
				fail("set labels: %v", err)
				return
			}
			fr := rpx.NewFrame(w, h, rpx.Gray8)
			for i := 0; i < frames; i++ {
				fillFrame(fr, 0, i)
				st, err := sess.Capture(fr)
				if err != nil {
					fail("capture %d: %v", i, err)
					return
				}
				if st != want[i].stats {
					fail("capture stats %d = %+v, want %+v", i, st, want[i].stats)
					return
				}
				dec, err := sess.Decoded()
				if err != nil {
					fail("decode %d: %v", i, err)
					return
				}
				if !dec.Equal(want[i].decoded) {
					fail("decoded frame %d differs from sequential reference", i)
					return
				}
				win, err := sess.DecodeWindow(8, 8, 64, 48)
				if err != nil {
					fail("window %d: %v", i, err)
					return
				}
				if !win.Equal(want[i].window) {
					fail("window %d differs from sequential reference", i)
					return
				}
			}
			ef, err := sess.LastEncoded()
			if err != nil {
				fail("last encoded: %v", err)
				return
			}
			if ef.FrameIndex != wantEnc.FrameIndex || ef.TotalBytes() != wantEnc.TotalBytes() ||
				!ef.Mask.Equal(wantEnc.Mask) {
				fail("encoded representation differs from sequential reference")
			}
		}(par)
	}
	wg.Wait()
}

func historyOpts(depth int) []rpx.Option {
	if depth <= 0 {
		return nil
	}
	return []rpx.Option{rpx.WithHistoryDepth(depth)}
}

// BenchmarkSessionsFPS reports aggregate frames/sec through a loopback
// rpxd across 1, 4, and 8 concurrent sessions (capture + decode per frame).
func BenchmarkSessionsFPS(b *testing.B) {
	for _, sessions := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			addr := startServer(b, server.Config{}, server.TCPConfig{})
			const w, h = 64, 48

			clients := make([]*client.Session, sessions)
			for i := range clients {
				sess, err := client.Dial(addr, client.Config{W: w, H: h, Format: rpx.Gray8, Block: true})
				if err != nil {
					b.Fatal(err)
				}
				defer sess.Close()
				if err := sess.SetRegionLabels([]rpx.RegionLabel{{X: 8, Y: 8, W: 48, H: 32, Stride: 2, Skip: 1}}); err != nil {
					b.Fatal(err)
				}
				clients[i] = sess
			}

			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			perSession := b.N
			for ci, sess := range clients {
				wg.Add(1)
				go func(ci int, sess *client.Session) {
					defer wg.Done()
					fr := rpx.NewFrame(w, h, rpx.Gray8)
					for i := 0; i < perSession; i++ {
						fillFrame(fr, ci, i)
						if _, err := sess.Capture(fr); err != nil {
							b.Error(err)
							return
						}
						if _, err := sess.Decoded(); err != nil {
							b.Error(err)
							return
						}
					}
				}(ci, sess)
			}
			wg.Wait()
			b.StopTimer()
			total := float64(sessions * perSession)
			b.ReportMetric(total/time.Since(start).Seconds(), "frames/sec")
		})
	}
}
