package client_test

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
	"repro/rpx"
	"repro/rpx/client"
)

// TestStreamPushBasic: a producer session captures frames request/reply
// while a second connection subscribes to its stream and receives every
// frame in order, byte-identical to the producer's LastEncoded view.
func TestStreamPushBasic(t *testing.T) {
	addr := startServer(t, server.Config{}, server.TCPConfig{})
	producer, err := client.Dial(addr, client.Config{W: 64, H: 48, Format: rpx.Gray8, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	// Default clients pin v3 — the byte-identity reference path; only
	// Config.PackedMask opts into the v4 codec handshake.
	if v := producer.ProtoVersion(); v != 3 {
		t.Fatalf("negotiated version %d, want 3", v)
	}
	sub, err := client.Dial(addr, client.Config{W: 8, H: 8, Format: rpx.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	st, err := sub.Subscribe(client.SubscribeOptions{Target: producer.ID(), Credit: 64, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.NextSeq() != 0 {
		t.Fatalf("NextSeq = %d on a virgin producer", st.NextSeq())
	}
	// Request/reply is locked out while the stream owns the connection.
	if _, err := sub.Decoded(); !errors.Is(err, client.ErrStreaming) {
		t.Fatalf("Decoded during stream = %v, want ErrStreaming", err)
	}

	if err := producer.SetRegionLabels([]rpx.RegionLabel{{X: 8, Y: 8, W: 32, H: 24, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	const frames = 20
	fr := rpx.NewFrame(64, 48, rpx.Gray8)
	stats := make([]rpx.CaptureStats, frames)
	for i := 0; i < frames; i++ {
		fillFrame(fr, 1, i)
		cs, err := producer.Capture(fr)
		if err != nil {
			t.Fatal(err)
		}
		stats[i] = cs
	}
	want, err := producer.LastEncoded()
	if err != nil {
		t.Fatal(err)
	}

	var lastRaw []byte
	for i := 0; i < frames; i++ {
		f, err := st.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if f.Seq != uint64(i) {
			t.Fatalf("frame %d has seq %d — gap or reorder", i, f.Seq)
		}
		if f.Stats != stats[i] {
			t.Fatalf("frame %d stats = %+v, want %+v", i, f.Stats, stats[i])
		}
		if f.Dropped != 0 {
			t.Fatalf("frame %d reports %d dropped with ample credit", i, f.Dropped)
		}
		if _, err := f.Decode(); err != nil {
			t.Fatalf("frame %d does not decode: %v", i, err)
		}
		lastRaw = f.Raw
	}
	var buf bytes.Buffer
	if _, err := want.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lastRaw, buf.Bytes()) {
		t.Fatal("pushed frame bytes differ from the request/reply LastEncoded view")
	}

	// Clean unsubscribe: the stream ends with io.EOF and the session
	// returns to request/reply mode on the same connection.
	if err := st.Close(); err != nil {
		t.Fatalf("stream close: %v", err)
	}
	if _, err := st.Recv(); err != io.EOF {
		t.Fatalf("Recv after close = %v, want io.EOF", err)
	}
	if _, err := sub.ServerStats(); err != nil {
		t.Fatalf("request/reply after unsubscribe: %v", err)
	}
}

// TestStreamCreditStarvation: with the window exhausted the server drops
// frames (counted, visible as a seq gap) instead of buffering unboundedly
// or blocking the producer.
func TestStreamCreditStarvation(t *testing.T) {
	addr := startServer(t, server.Config{}, server.TCPConfig{})
	producer, err := client.Dial(addr, client.Config{W: 32, H: 32, Format: rpx.Gray8, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	subSess, err := client.Dial(addr, client.Config{W: 8, H: 8, Format: rpx.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	defer subSess.Close()
	st, err := subSess.Subscribe(client.SubscribeOptions{Target: producer.ID(), Credit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := producer.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(32, 32)}); err != nil {
		t.Fatal(err)
	}
	fr := rpx.NewFrame(32, 32, rpx.Gray8)
	for i := 0; i < 5; i++ {
		fillFrame(fr, 2, i)
		if _, err := producer.Capture(fr); err != nil {
			t.Fatal(err)
		}
	}
	// Frames 0 and 1 consumed the window; 2..4 dropped.
	for i := 0; i < 2; i++ {
		f, err := st.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if f.Seq != uint64(i) {
			t.Fatalf("got seq %d, want %d", f.Seq, i)
		}
	}
	if err := st.Grant(wire.MaxCreditWindow); err != nil {
		t.Fatal(err)
	}
	// The CREDIT grant travels on the subscriber connection and races the
	// producer's next capture on its own connection: a capture the server
	// processes first is dropped (zero credit, by design). Keep producing
	// until one frame lands in the re-opened window.
	stop := make(chan struct{})
	captureErr := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 5; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			fillFrame(fr, 2, i)
			if _, err := producer.Capture(fr); err != nil {
				captureErr <- err
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	f, err := st.Recv()
	close(stop)
	wg.Wait()
	if err != nil {
		select {
		case cerr := <-captureErr:
			t.Fatalf("recv: %v (capture: %v)", err, cerr)
		default:
		}
		t.Fatal(err)
	}
	if f.Seq < 5 {
		t.Fatalf("post-grant seq = %d, want >= 5 (frames 2..4 dropped)", f.Seq)
	}
	// Frames 2..f.Seq-1 were dropped while the window was closed; nothing
	// after the grant took effect may be lost.
	if f.Dropped != f.Seq-2 {
		t.Fatalf("dropped = %d, want %d (frames 2..%d)", f.Dropped, f.Seq-2, f.Seq-1)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamFanOutAndSessionClose: two subscribers on one producer receive
// identical bytes; when the producer's session ends mid-stream each gets
// the typed UNAVAILABLE error, not a torn stream.
func TestStreamFanOutAndSessionClose(t *testing.T) {
	addr := startServer(t, server.Config{}, server.TCPConfig{})
	producer, err := client.Dial(addr, client.Config{W: 48, H: 32, Format: rpx.Gray8, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if err := producer.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(48, 32)}); err != nil {
		t.Fatal(err)
	}

	const nSubs = 2
	streams := make([]*client.Stream, nSubs)
	for i := range streams {
		sess, err := client.Dial(addr, client.Config{W: 8, H: 8, Format: rpx.Gray8})
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		if streams[i], err = sess.Subscribe(client.SubscribeOptions{Target: producer.ID(), Credit: 16, Batch: 4}); err != nil {
			t.Fatal(err)
		}
	}

	const frames = 6
	fr := rpx.NewFrame(48, 32, rpx.Gray8)
	for i := 0; i < frames; i++ {
		fillFrame(fr, 3, i)
		if _, err := producer.Capture(fr); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < frames; i++ {
		var first []byte
		for si, st := range streams {
			f, err := st.Recv()
			if err != nil {
				t.Fatalf("sub %d frame %d: %v", si, i, err)
			}
			if f.Seq != uint64(i) {
				t.Fatalf("sub %d frame %d seq = %d", si, i, f.Seq)
			}
			if si == 0 {
				first = f.Raw
			} else if !bytes.Equal(first, f.Raw) {
				t.Fatalf("fan-out bytes diverge at frame %d", i)
			}
		}
	}

	// Producer goes away: both streams must end with the typed error.
	if err := producer.Close(); err != nil {
		t.Fatal(err)
	}
	for si, st := range streams {
		_, err := st.Recv()
		var re *wire.RemoteError
		if !errors.As(err, &re) || re.Code != wire.CodeUnavailable {
			t.Fatalf("sub %d end-of-stream err = %v, want UNAVAILABLE", si, err)
		}
		// Terminal server error ends only the stream, not the session.
		if _, err := st.Recv(); !errors.As(err, &re) {
			t.Fatalf("sub %d Recv after end = %v", si, err)
		}
	}
}

// TestStreamSubscribeErrors pins the failure modes: unknown target session
// and double subscribe.
func TestStreamSubscribeErrors(t *testing.T) {
	addr := startServer(t, server.Config{}, server.TCPConfig{})
	sess, err := client.Dial(addr, client.Config{W: 16, H: 16, Format: rpx.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	var re *wire.RemoteError
	if _, err := sess.Subscribe(client.SubscribeOptions{Target: 9999}); !errors.As(err, &re) || re.Code != wire.CodeBadRequest {
		t.Fatalf("unknown target err = %v, want BAD_REQUEST", err)
	}
	// The failed subscribe left the session in request/reply mode.
	st, err := sess.Subscribe(client.SubscribeOptions{Credit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Subscribe(client.SubscribeOptions{Credit: 1}); !errors.Is(err, client.ErrStreaming) {
		t.Fatalf("double subscribe err = %v, want ErrStreaming", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ServerStats(); err != nil {
		t.Fatalf("request/reply after unsubscribe: %v", err)
	}
}
