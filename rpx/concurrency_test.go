package rpx

import (
	"sync"
	"testing"
)

// TestStatsConcurrentWithCapture exercises the documented concurrency
// contract: operations stay on one goroutine while Stats, EncoderStats, and
// DecoderStats are polled from monitoring goroutines. Run under -race this
// verifies the snapshot path is data-race free.
func TestStatsConcurrentWithCapture(t *testing.T) {
	sys, err := NewSystem(96, 64, Gray8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetRegionLabels([]RegionLabel{{X: 8, Y: 8, W: 48, H: 32, Stride: 2, Skip: 2}}); err != nil {
		t.Fatal(err)
	}

	const frames = 64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastFrames int
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := sys.Stats()
				if st.FramesCaptured < lastFrames {
					t.Errorf("FramesCaptured went backwards: %d -> %d", lastFrames, st.FramesCaptured)
					return
				}
				lastFrames = st.FramesCaptured
				_ = sys.EncoderStats()
				_ = sys.DecoderStats()
			}
		}()
	}

	fr := NewFrame(96, 64, Gray8)
	for i := 0; i < frames; i++ {
		for j := range fr.Pix {
			fr.Pix[j] = byte(i + j)
		}
		if _, err := sys.Capture(fr); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
		if i%8 == 0 {
			if _, err := sys.Decoded(); err != nil {
				t.Fatalf("decode %d: %v", i, err)
			}
		}
	}
	close(stop)
	wg.Wait()

	if got := sys.Stats().FramesCaptured; got != frames {
		t.Fatalf("FramesCaptured = %d, want %d", got, frames)
	}
	if got := sys.EncoderStats().FramesEncoded; got != frames {
		t.Fatalf("EncoderStats().FramesEncoded = %d, want %d", got, frames)
	}
	if sys.DecoderStats().PixelsRequested == 0 {
		t.Fatal("DecoderStats snapshot never updated")
	}
}
