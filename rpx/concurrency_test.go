package rpx

import (
	"bytes"
	"sync"
	"testing"
)

// TestStatsConcurrentWithCapture exercises the documented concurrency
// contract: operations stay on one goroutine while Stats, EncoderStats, and
// DecoderStats are polled from monitoring goroutines. Run under -race this
// verifies the snapshot path is data-race free.
func TestStatsConcurrentWithCapture(t *testing.T) {
	sys, err := NewSystem(96, 64, Gray8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetRegionLabels([]RegionLabel{{X: 8, Y: 8, W: 48, H: 32, Stride: 2, Skip: 2}}); err != nil {
		t.Fatal(err)
	}

	const frames = 64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastFrames int
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := sys.Stats()
				if st.FramesCaptured < lastFrames {
					t.Errorf("FramesCaptured went backwards: %d -> %d", lastFrames, st.FramesCaptured)
					return
				}
				lastFrames = st.FramesCaptured
				_ = sys.EncoderStats()
				_ = sys.DecoderStats()
			}
		}()
	}

	fr := NewFrame(96, 64, Gray8)
	for i := 0; i < frames; i++ {
		for j := range fr.Pix {
			fr.Pix[j] = byte(i + j)
		}
		if _, err := sys.Capture(fr); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
		if i%8 == 0 {
			if _, err := sys.Decoded(); err != nil {
				t.Fatalf("decode %d: %v", i, err)
			}
		}
	}
	close(stop)
	wg.Wait()

	if got := sys.Stats().FramesCaptured; got != frames {
		t.Fatalf("FramesCaptured = %d, want %d", got, frames)
	}
	if got := sys.EncoderStats().FramesEncoded; got != frames {
		t.Fatalf("EncoderStats().FramesEncoded = %d, want %d", got, frames)
	}
	if sys.DecoderStats().PixelsRequested == 0 {
		t.Fatal("DecoderStats snapshot never updated")
	}
}

// TestParallelSystemConcurrent runs a WithParallelism(4) system — row-band
// worker goroutines live inside Capture, Decoded, and DecodeWindow — while
// monitoring goroutines poll every stats surface. Under -race this verifies
// the band workers' shared-mask writes and stats stitching are race free.
// A sequential reference system consumes the same frames so the parallel
// path's output is also checked byte for byte while racing the pollers.
func TestParallelSystemConcurrent(t *testing.T) {
	const w, h, frames = 96, 64, 48
	labels := []RegionLabel{
		{X: 8, Y: 8, W: 48, H: 32, Stride: 2, Skip: 2},
		{X: 0, Y: 40, W: w, H: 24, Stride: 1, Skip: 1},
		{X: 60, Y: 0, W: 30, H: 60, Stride: 3, Skip: 3},
	}
	par, err := NewSystem(w, h, Gray8, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := par.Parallelism(); got != 4 {
		t.Fatalf("Parallelism() = %d, want 4", got)
	}
	ref, err := NewSystem(w, h, Gray8)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*System{par, ref} {
		if err := s.SetRegionLabels(labels); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = par.Stats()
				_ = par.EncoderStats()
				_ = par.DecoderStats()
			}
		}()
	}

	fr := NewFrame(w, h, Gray8)
	for i := 0; i < frames; i++ {
		for j := range fr.Pix {
			fr.Pix[j] = byte(3*i + j)
		}
		ps, err := par.Capture(fr)
		if err != nil {
			t.Fatalf("parallel capture %d: %v", i, err)
		}
		rs, err := ref.Capture(fr)
		if err != nil {
			t.Fatalf("reference capture %d: %v", i, err)
		}
		if ps != rs {
			t.Fatalf("capture %d stats diverge: parallel %+v reference %+v", i, ps, rs)
		}
		pd, err := par.Decoded()
		if err != nil {
			t.Fatalf("parallel decode %d: %v", i, err)
		}
		rd, err := ref.Decoded()
		if err != nil {
			t.Fatalf("reference decode %d: %v", i, err)
		}
		if !bytes.Equal(pd.Pix, rd.Pix) {
			t.Fatalf("frame %d: parallel decode differs from sequential", i)
		}
		if i%4 == 0 {
			pw, err := par.DecodeWindow(8, 8, 48, 40)
			if err != nil {
				t.Fatalf("parallel window %d: %v", i, err)
			}
			rw, err := ref.DecodeWindow(8, 8, 48, 40)
			if err != nil {
				t.Fatalf("reference window %d: %v", i, err)
			}
			if !bytes.Equal(pw.Pix, rw.Pix) {
				t.Fatalf("frame %d: parallel window differs from sequential", i)
			}
		}
	}
	close(stop)
	wg.Wait()

	if got, want := par.EncoderStats(), ref.EncoderStats(); got != want {
		t.Fatalf("encoder stats diverge:\nparallel   %+v\nsequential %+v", got, want)
	}
}
