package rpx

import (
	"testing"

	"repro/internal/synth"
)

func TestCameraPipelineEndToEnd(t *testing.T) {
	p, err := NewCameraPipeline(CameraConfig{W: 64, H: 48, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetRegionLabels([]RegionLabel{FullFrame(64, 48)}); err != nil {
		t.Fatal(err)
	}
	world := synth.NewWorld(128, 128, 2)
	scene := world.Render(synth.Pose{X: 64, Y: 64}, 64, 48)
	cs, err := p.CaptureScene(scene)
	if err != nil {
		t.Fatal(err)
	}
	if cs.EncodedPixels != 64*48 {
		t.Errorf("EncodedPixels = %d", cs.EncodedPixels)
	}
	dec, err := p.Decoded()
	if err != nil {
		t.Fatal(err)
	}
	// The decoded frame went through Bayer + noise + demosaic + gamma; it
	// cannot equal the scene, but it must correlate: bright scene areas
	// stay brighter than dark ones.
	scene.FillRect(0, 0, 1, 1, 0) // no-op touch to keep scene in scope
	var brightIn, darkIn, brightOut, darkOut int
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			if scene.Gray(x, y) > 128 {
				brightIn++
				brightOut += int(dec.Gray(x, y))
			} else {
				darkIn++
				darkOut += int(dec.Gray(x, y))
			}
		}
	}
	if brightIn > 10 && darkIn > 10 {
		if brightOut/brightIn <= darkOut/darkIn {
			t.Error("pipeline destroyed scene contrast")
		}
	}
	st := p.FrontEndStats()
	// CSI bytes = pixel payload plus packet framing overhead (FS/FE short
	// packets and per-line header+CRC): 64*48 + 2*4 + 48*6 = 3368.
	if st.FramesSensed != 1 || st.CSIBytes != 64*48+8+48*6 || st.ISPPixels != 64*48 {
		t.Errorf("front-end stats = %+v", st)
	}
	if st.EncoderWriteByte == 0 {
		t.Error("no encoder writes recorded")
	}
	if p.ProcessedFormat() != Gray8 {
		t.Error("processed format should be Gray8")
	}
}

func TestCameraPipelineValidation(t *testing.T) {
	if _, err := NewCameraPipeline(CameraConfig{W: 63, H: 48}); err == nil {
		t.Error("odd width accepted (Bayer needs even dims)")
	}
	if _, err := NewCameraPipeline(CameraConfig{W: 3840, H: 2160, FPS: 200}); err == nil {
		t.Error("rate beyond the ISP budget accepted")
	}
	if _, err := NewCameraPipeline(CameraConfig{W: 64, H: 48, Options: []Option{WithHistoryDepth(0)}}); err == nil {
		t.Error("bad system option accepted")
	}
}

func TestCameraPipelineRegionCapture(t *testing.T) {
	p, err := NewCameraPipeline(CameraConfig{W: 64, H: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetRegionLabels([]RegionLabel{{X: 16, Y: 16, W: 32, H: 32, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	world := synth.NewWorld(128, 128, 4)
	scene := world.Render(synth.Pose{X: 64, Y: 64}, 64, 64)
	cs, err := p.CaptureScene(scene)
	if err != nil {
		t.Fatal(err)
	}
	if cs.EncodedPixels != 32*32 {
		t.Errorf("EncodedPixels = %d, want 1024", cs.EncodedPixels)
	}
	dec, err := p.Decoded()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Gray(0, 0) != 0 {
		t.Error("outside-region pixel not black")
	}
}

// TestStreamFrameScratchReuse asserts the CSI serialization path does not
// rebuild its line slice every frame: after warm-up, the only allocation
// left is the packet list the link model returns (1 alloc), not the
// per-frame lines slice it used to rebuild.
func TestStreamFrameScratchReuse(t *testing.T) {
	p, err := NewCameraPipeline(CameraConfig{W: 64, H: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bayer := NewFrame(64, 64, Gray8)
	p.streamFrame(bayer) // warm the scratch buffer
	allocs := testing.AllocsPerRun(100, func() { p.streamFrame(bayer) })
	if allocs > 1 {
		t.Errorf("streamFrame allocates %.1f objects/frame, want <= 1 (lines scratch not reused)", allocs)
	}
}

func BenchmarkCaptureScene(b *testing.B) {
	p, err := NewCameraPipeline(CameraConfig{W: 256, H: 256, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.SetRegionLabels([]RegionLabel{{X: 64, Y: 64, W: 128, H: 128, Stride: 2, Skip: 1}}); err != nil {
		b.Fatal(err)
	}
	world := synth.NewWorld(512, 512, 4)
	scene := world.Render(synth.Pose{X: 256, Y: 256}, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.CaptureScene(scene); err != nil {
			b.Fatal(err)
		}
	}
}
