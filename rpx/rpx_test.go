package rpx

import (
	"bytes"
	"testing"

	"repro/internal/synth"
)

func TestSystemRoundTrip(t *testing.T) {
	sys, err := NewSystem(64, 48, Gray8)
	if err != nil {
		t.Fatal(err)
	}
	if w, h := sys.Dimensions(); w != 64 || h != 48 {
		t.Errorf("Dimensions = %dx%d", w, h)
	}
	if err := sys.SetRegionLabels([]RegionLabel{FullFrame(64, 48)}); err != nil {
		t.Fatal(err)
	}
	world := synth.NewWorld(128, 128, 1)
	in := world.Render(synth.Pose{X: 64, Y: 64}, 64, 48)
	cs, err := sys.Capture(in)
	if err != nil {
		t.Fatal(err)
	}
	if cs.FrameIndex != 0 || cs.EncodedPixels != 64*48 || cs.PixelFraction != 1 {
		t.Errorf("CaptureStats = %+v", cs)
	}
	out, err := sys.Decoded()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(in) {
		t.Error("full-frame round trip lossy")
	}
	if sys.FrameIndex() != 1 {
		t.Errorf("FrameIndex = %d", sys.FrameIndex())
	}
	if sys.LastEncoded() == nil {
		t.Error("LastEncoded nil after capture")
	}
}

func TestSystemRegionDiscard(t *testing.T) {
	sys, err := NewSystem(32, 32, Gray8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetRegionLabels([]RegionLabel{{X: 8, Y: 8, W: 16, H: 16, Stride: 2, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	in := NewFrame(32, 32, Gray8)
	in.Fill(200)
	cs, err := sys.Capture(in)
	if err != nil {
		t.Fatal(err)
	}
	if cs.EncodedPixels != 64 { // 8x8 lattice
		t.Errorf("EncodedPixels = %d, want 64", cs.EncodedPixels)
	}
	st := sys.Stats()
	if st.PixelsStored != 64 || st.PixelsIn != 1024 || st.FramesCaptured != 1 {
		t.Errorf("Stats = %+v", st)
	}
	if st.ReductionVsFrameBased(1) < 0.5 {
		t.Errorf("reduction = %v, want substantial", st.ReductionVsFrameBased(1))
	}
	win, err := sys.DecodeWindow(8, 8, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if win.Gray(0, 0) != 200 {
		t.Error("window decode wrong")
	}
	if sys.Stats().BytesRead == 0 {
		t.Error("BytesRead not accounted")
	}
}

func TestSystemOptionValidation(t *testing.T) {
	if _, err := NewSystem(0, 5, Gray8); err == nil {
		t.Error("bad dims accepted")
	}
	if _, err := NewSystem(5, 5, Gray8, WithHistoryDepth(0)); err == nil {
		t.Error("bad depth accepted")
	}
	if _, err := NewSystem(5, 5, Gray8, WithRegisterCapacity(0)); err == nil {
		t.Error("bad capacity accepted")
	}
	sys, err := NewSystem(5, 5, Gray8, WithFirstFrameIndex(7))
	if err != nil {
		t.Fatal(err)
	}
	if sys.FrameIndex() != 7 {
		t.Errorf("first index = %d", sys.FrameIndex())
	}
}

func TestSystemEmptyLabelsDiscardAll(t *testing.T) {
	sys, _ := NewSystem(16, 16, Gray8)
	in := NewFrame(16, 16, Gray8)
	in.Fill(99)
	cs, err := sys.Capture(in)
	if err != nil {
		t.Fatal(err)
	}
	if cs.EncodedPixels != 0 {
		t.Errorf("no labels stored %d pixels", cs.EncodedPixels)
	}
	out, err := sys.Decoded()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Pix {
		if v != 0 {
			t.Fatal("expected all-black decode")
		}
	}
}

func TestSystemSkipAcrossFrames(t *testing.T) {
	sys, _ := NewSystem(16, 16, Gray8)
	if err := sys.SetRegionLabels([]RegionLabel{{X: 0, Y: 0, W: 16, H: 16, Stride: 1, Skip: 2}}); err != nil {
		t.Fatal(err)
	}
	a := NewFrame(16, 16, Gray8)
	a.Fill(111)
	b := NewFrame(16, 16, Gray8)
	b.Fill(222)
	if _, err := sys.Capture(a); err != nil { // frame 0: active
		t.Fatal(err)
	}
	if _, err := sys.Capture(b); err != nil { // frame 1: skipped
		t.Fatal(err)
	}
	out, err := sys.Decoded()
	if err != nil {
		t.Fatal(err)
	}
	if out.Gray(5, 5) != 111 {
		t.Errorf("skipped frame decoded %d, want frame-0 value 111", out.Gray(5, 5))
	}
}

func TestPolicyHelpersCompose(t *testing.T) {
	kps := []KeyPoint{{X: 50, Y: 50, Size: 31, Octave: 1}}
	ls := FeatureRegions(kps, 2, 320, 240, DefaultFeatureParams())
	if len(ls) != 1 {
		t.Fatalf("FeatureRegions = %v", ls)
	}
	boxes := []Box{{X: 10, Y: 10, W: 30, H: 30}}
	bls := BoxRegions(boxes, []float64{1}, 320, 240, DefaultBoxParams())
	if len(bls) != 1 {
		t.Fatalf("BoxRegions = %v", bls)
	}
	pol := NewCyclePolicy(10, 320, 240, PolicySourceFunc(func(int) RegionList { return bls }))
	if got := pol.Labels(0); len(got) != 1 || got[0].W != 320 {
		t.Errorf("cycle frame 0 = %v", got)
	}
	if got := pol.Labels(3); len(got) != 1 || got[0].W == 320 {
		t.Errorf("cycle frame 3 = %v", got)
	}
	pred := NewPredictivePolicy(320, 240, DefaultBoxParams())
	pred.Observe(boxes)
	pred.Observe([]Box{{X: 12, Y: 10, W: 30, H: 30}})
	if got := pred.Labels(2); len(got) != 1 {
		t.Errorf("predictive labels = %v", got)
	}
}

func TestSystemLabelsPersistAcrossFrames(t *testing.T) {
	sys, _ := NewSystem(16, 16, Gray8)
	if err := sys.SetRegionLabels([]RegionLabel{{X: 0, Y: 0, W: 8, H: 8, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	in := NewFrame(16, 16, Gray8)
	for i := 0; i < 3; i++ {
		cs, err := sys.Capture(in)
		if err != nil {
			t.Fatal(err)
		}
		if cs.EncodedPixels != 64 {
			t.Fatalf("frame %d: %d pixels", i, cs.EncodedPixels)
		}
	}
	if len(sys.Labels()) != 1 {
		t.Error("labels did not persist")
	}
}

func TestStreamPersistence(t *testing.T) {
	sys, err := NewSystem(24, 24, Gray8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetRegionLabels([]RegionLabel{{X: 4, Y: 4, W: 12, H: 12, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	for i := 0; i < 3; i++ {
		in := NewFrame(24, 24, Gray8)
		in.Fill(uint8(50 + 50*i))
		if _, err := sys.Capture(in); err != nil {
			t.Fatal(err)
		}
		if err := sw.WriteFrame(sys.LastEncoded()); err != nil {
			t.Fatal(err)
		}
	}
	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sr.W != 24 || sr.H != 24 {
		t.Errorf("stream geometry %dx%d", sr.W, sr.H)
	}
	count := 0
	err = DecodeStream(bytes.NewReader(buf.Bytes()), Gray8, func(idx int, dec *Frame) error {
		if got, want := dec.Gray(8, 8), uint8(50+50*idx); got != want {
			t.Errorf("frame %d: %d, want %d", idx, got, want)
		}
		count++
		return nil
	})
	if err != nil || count != 3 {
		t.Fatalf("replayed %d frames, err=%v", count, err)
	}
}

func TestPolicyRegistryThroughFacade(t *testing.T) {
	names := PolicyNames()
	if len(names) < 4 {
		t.Fatalf("only %d registered policies", len(names))
	}
	pol, err := BuildPolicy("feature-cycle", 320, 240, 10)
	if err != nil {
		t.Fatal(err)
	}
	pol.Observe(PolicyFeedback{
		KeyPoints:        []KeyPoint{{X: 100, Y: 100, Size: 31}},
		MeanDisplacement: 3,
	})
	if got := pol.Labels(1); len(got) == 0 {
		t.Error("no labels from registered policy")
	}
	if _, err := BuildPolicy("bogus", 320, 240, 10); err == nil {
		t.Error("unknown policy accepted")
	}
	if desc, ok := DescribePolicy("predictive"); !ok || desc == "" {
		t.Error("predictive description missing")
	}
}
