package rpx_test

import (
	"fmt"

	"repro/rpx"
)

// The canonical flow: configure regions, capture, decode, inspect savings.
func Example() {
	sys, err := rpx.NewSystem(64, 64, rpx.Gray8)
	if err != nil {
		panic(err)
	}
	// One detailed region at full density, the rest of the frame discarded.
	err = sys.SetRegionLabels([]rpx.RegionLabel{
		{X: 16, Y: 16, W: 32, H: 32, Stride: 1, Skip: 1},
	})
	if err != nil {
		panic(err)
	}
	in := rpx.NewFrame(64, 64, rpx.Gray8)
	in.Fill(200)
	cs, err := sys.Capture(in)
	if err != nil {
		panic(err)
	}
	decoded, err := sys.Decoded()
	if err != nil {
		panic(err)
	}
	fmt.Printf("stored %d of %d pixels\n", cs.EncodedPixels, 64*64)
	fmt.Printf("inside region: %d, outside: %d\n", decoded.Gray(32, 32), decoded.Gray(0, 0))
	// Output:
	// stored 1024 of 4096 pixels
	// inside region: 200, outside: 0
}

// Stride trades spatial resolution for traffic inside one region.
func ExampleRegionLabel_stride() {
	sys, _ := rpx.NewSystem(16, 16, rpx.Gray8)
	_ = sys.SetRegionLabels([]rpx.RegionLabel{
		{X: 0, Y: 0, W: 16, H: 16, Stride: 4, Skip: 1},
	})
	in := rpx.NewFrame(16, 16, rpx.Gray8)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			in.SetGray(x, y, uint8(16*y+x))
		}
	}
	cs, _ := sys.Capture(in)
	decoded, _ := sys.Decoded()
	fmt.Printf("stored %d pixels (stride 4 keeps 1 in 16)\n", cs.EncodedPixels)
	// Non-lattice pixels hold their top-left lattice neighbor.
	fmt.Printf("lattice (4,4)=%d held (6,7)=%d\n", decoded.Gray(4, 4), decoded.Gray(6, 7))
	// Output:
	// stored 16 pixels (stride 4 keeps 1 in 16)
	// lattice (4,4)=68 held (6,7)=68
}

// Skip trades temporal resolution: skipped frames decode from history.
func ExampleRegionLabel_skip() {
	sys, _ := rpx.NewSystem(8, 8, rpx.Gray8)
	_ = sys.SetRegionLabels([]rpx.RegionLabel{
		{X: 0, Y: 0, W: 8, H: 8, Stride: 1, Skip: 2},
	})
	a := rpx.NewFrame(8, 8, rpx.Gray8)
	a.Fill(100)
	b := rpx.NewFrame(8, 8, rpx.Gray8)
	b.Fill(250)

	csA, _ := sys.Capture(a) // frame 0: on the rhythm, captured
	csB, _ := sys.Capture(b) // frame 1: skipped
	decoded, _ := sys.Decoded()
	fmt.Printf("frame 0 stored %d, frame 1 stored %d\n", csA.EncodedPixels, csB.EncodedPixels)
	fmt.Printf("frame 1 decodes frame 0's pixels: %d\n", decoded.Gray(4, 4))
	// Output:
	// frame 0 stored 64, frame 1 stored 0
	// frame 1 decodes frame 0's pixels: 100
}

// A cycle policy alternates full captures with task-driven regions.
func ExampleCyclePolicy() {
	regions := rpx.RegionList{{X: 10, Y: 10, W: 20, H: 20, Stride: 1, Skip: 1}}
	pol := rpx.NewCyclePolicy(3, 100, 100,
		rpx.PolicySourceFunc(func(int) rpx.RegionList { return regions }))
	for t := 0; t < 4; t++ {
		labels := pol.Labels(t)
		fmt.Printf("frame %d: full=%v regions=%d\n", t, pol.IsFullCapture(t), len(labels))
	}
	// Output:
	// frame 0: full=true regions=1
	// frame 1: full=false regions=1
	// frame 2: full=false regions=1
	// frame 3: full=true regions=1
}
