// Package rpx is the public API of the rhythmic pixel regions system — the
// visual sensing pipeline of Kodukula et al., "Rhythmic Pixel Regions:
// Multi-resolution Visual Sensing System towards High-Precision Visual
// Computing at Low Power" (ASPLOS 2021) — reproduced in pure Go.
//
// The central abstraction is the RegionLabel: a rectangular neighborhood of
// pixels with its own spatial resolution (Stride) and temporal rate (Skip).
// An application registers hundreds of labels per frame; the encoder packs
// only the matching pixels (plus compact metadata) into memory, and the
// decoder reconstructs ordinary frames — or any sub-window — on demand, so
// existing vision code runs unmodified while DRAM traffic drops by the
// fraction of pixels discarded.
//
// Basic use:
//
//	sys, _ := rpx.NewSystem(640, 480, rpx.Gray8)
//	sys.SetRegionLabels([]rpx.RegionLabel{{X: 100, Y: 80, W: 200, H: 160, Stride: 2, Skip: 1}})
//	sys.Capture(inputFrame)          // encode into the (simulated) framebuffer
//	out, _ := sys.Decoded()          // reconstruct for the vision algorithm
//
// Policies (see NewCyclePolicy, FeatureRegions, BoxRegions) close the loop
// from vision results back to the next frame's labels.
package rpx

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/features"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/region"
	"repro/internal/synth"
)

// RegionLabel describes one rhythmic pixel region: position, extent,
// spatial stride, and temporal skip (see the package documentation).
type RegionLabel = region.Label

// RegionList is a capture workload of region labels.
type RegionList = region.List

// Frame is a raster-scan pixel buffer.
type Frame = frame.Frame

// Format selects the pixel format of a pipeline.
type Format = frame.Format

// Pixel formats.
const (
	Gray8  = frame.Gray8
	RGB24  = frame.RGB24
	YUV444 = frame.YUV444
)

// NewFrame allocates a zeroed frame.
func NewFrame(w, h int, f Format) *Frame { return frame.New(w, h, f) }

// FullFrame returns a label covering the whole frame at full density.
func FullFrame(w, h int) RegionLabel { return region.FullFrame(w, h) }

// KeyPoint is a detected visual feature (ORB-style).
type KeyPoint = features.KeyPoint

// FeatureDetector extracts keypoints from frames.
type FeatureDetector = features.Detector

// NewFeatureDetector returns a detector with ORB-like defaults.
func NewFeatureDetector() *FeatureDetector { return features.NewDetector() }

// Box is an axis-aligned bounding box used by box-driven policies.
type Box = synth.Box

// EncodedFrame is the packed in-memory representation of one captured
// frame.
type EncodedFrame = core.EncodedFrame

// CaptureStats reports one Capture call.
type CaptureStats struct {
	// FrameIndex is the temporal index assigned to the frame.
	FrameIndex int
	// EncodedPixels is the number of pixels stored.
	EncodedPixels int
	// EncodedBytes is payload plus metadata written to the framebuffer.
	EncodedBytes int
	// PixelFraction is EncodedPixels / (W*H).
	PixelFraction float64
}

// SystemStats aggregates traffic over a System's lifetime.
type SystemStats struct {
	FramesCaptured  int
	BytesWritten    int64 // encoded payload + metadata into the framebuffer
	BytesRead       int64 // decoder fetches from the framebuffer
	PixelsIn        int64 // pixels consumed from the sensor stream
	PixelsStored    int64 // pixels surviving encoding
	RegisterUpdates int64 // AXI-lite writes for label configuration
}

// ReductionVsFrameBased returns the write-traffic reduction against storing
// every frame in full: 0.6 means 60% fewer bytes written.
func (s SystemStats) ReductionVsFrameBased(bytesPerPixel int) float64 {
	full := s.PixelsIn * int64(bytesPerPixel)
	if full == 0 {
		return 0
	}
	return 1 - float64(s.BytesWritten)/float64(full)
}

// System ties together the runtime (SetRegionLabels register path), the
// rhythmic pixel encoder, the simulated framebuffer, and the decoder.
//
// Concurrency contract: a System is single-goroutine for its operations —
// SetRegionLabels, Capture, Decoded, DecodeWindow, and LastEncoded must all
// be issued from one goroutine (or be externally serialized). The read-only
// statistics accessors Stats, EncoderStats, and DecoderStats are the
// exception: they return snapshots taken under an internal mutex and are
// safe to call concurrently from a monitoring goroutine while captures are
// in flight.
// frameEncoder is the encoder surface a System drives: implemented by the
// sequential core.Encoder (the reference implementation) and by
// core.ParallelEncoder (row-band sharded, byte-identical output).
type frameEncoder interface {
	driver.LabelSink
	Labels() region.List
	Stats() core.EncoderStats
	EncodeFrame(fr *frame.Frame, frameIndex int) (*core.EncodedFrame, error)
	SetFramePool(*core.FramePool)
}

type System struct {
	w, h        int
	format      Format
	parallelism int

	enc frameEncoder
	dec *core.Decoder
	rt  *driver.Runtime

	frameIndex int
	last       *core.EncodedFrame

	// pool recycles encoded-frame storage: frames evicted from the
	// decoder's history ring feed the encoder's next output. Owned by the
	// operations goroutine, like the encoder it serves.
	pool *core.FramePool

	// tracer, when non-nil, receives frame-path spans (classify → pack →
	// push → decode) tagged with tracerTag. Mutated only through SetTracer
	// under the single-goroutine contract.
	tracer    *obs.Tracer
	tracerTag uint64

	// statsMu guards the snapshot fields below, which mutating operations
	// refresh and the concurrent-safe accessors read.
	statsMu  sync.Mutex
	stats    SystemStats
	encStats core.EncoderStats
	decStats core.DecoderStats
}

// Option configures a System.
type Option func(*options)

type options struct {
	historyDepth     int
	registerCapacity int
	firstFrameIndex  int
	parallelism      int
}

// WithHistoryDepth sets how many encoded frames the decoder can resolve
// temporally skipped pixels against (default 4, the paper's scratchpad).
func WithHistoryDepth(depth int) Option { return func(o *options) { o.historyDepth = depth } }

// WithRegisterCapacity sets the maximum number of region labels the
// hardware register file holds (default 1600).
func WithRegisterCapacity(n int) Option { return func(o *options) { o.registerCapacity = n } }

// WithFirstFrameIndex sets the temporal index of the first captured frame
// (default 0); region skip phases are evaluated against this index.
func WithFirstFrameIndex(i int) Option { return func(o *options) { o.firstFrameIndex = i } }

// WithParallelism sets how many row-band workers Capture and decode
// operations fan out to (default 1: the sequential reference path). Any
// n produces byte-identical encoded frames and decoded pixels; n > 1
// trades goroutines for wall-clock on multi-core hosts. Parallelism is
// internal to each operation — the System's concurrency contract is
// unchanged. Values are capped at MaxParallelism.
func WithParallelism(n int) Option { return func(o *options) { o.parallelism = n } }

// MaxParallelism bounds WithParallelism: beyond the widest plausible host
// there is only scheduler overhead, and the cap keeps a hostile rpxd HELLO
// from requesting millions of goroutines per session.
const MaxParallelism = 256

// NewSystem creates a rhythmic pixel pipeline for w x h frames.
func NewSystem(w, h int, format Format, opts ...Option) (*System, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("rpx: invalid dimensions %dx%d", w, h)
	}
	o := options{historyDepth: core.DefaultHistoryDepth, registerCapacity: driver.DefaultMaxRegions, parallelism: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if o.historyDepth < 1 {
		return nil, fmt.Errorf("rpx: history depth %d < 1", o.historyDepth)
	}
	if o.registerCapacity < 1 {
		return nil, fmt.Errorf("rpx: register capacity %d < 1", o.registerCapacity)
	}
	if o.parallelism < 1 {
		return nil, fmt.Errorf("rpx: parallelism %d < 1", o.parallelism)
	}
	if o.parallelism > MaxParallelism {
		return nil, fmt.Errorf("rpx: parallelism %d exceeds cap %d", o.parallelism, MaxParallelism)
	}
	var enc frameEncoder
	if o.parallelism > 1 {
		enc = core.NewParallelEncoder(w, h, format, o.parallelism)
	} else {
		enc = core.NewEncoder(w, h, format)
	}
	pool := &core.FramePool{}
	enc.SetFramePool(pool)
	dec := core.NewDecoder(w, h, format,
		core.WithHistoryDepth(o.historyDepth), core.WithParallelism(o.parallelism))
	rt := driver.NewRuntime(w, h, driver.NewRegisterFile(o.registerCapacity), enc)
	return &System{
		w: w, h: h, format: format, parallelism: o.parallelism,
		enc: enc, dec: dec, rt: rt, pool: pool,
		frameIndex: o.firstFrameIndex,
	}, nil
}

// Parallelism returns the configured row-band worker count (1 = sequential).
func (s *System) Parallelism() int { return s.parallelism }

// Dimensions returns the pipeline frame size.
func (s *System) Dimensions() (w, h int) { return s.w, s.h }

// SetRegionLabels installs the capture workload through the runtime and
// driver register path. The list lands in the driver's shadow registers and
// takes effect at the next Capture (the frame boundary), as on the real
// hardware; labels persist across frames until replaced. An empty list
// discards every pixel until new labels arrive.
func (s *System) SetRegionLabels(labels []RegionLabel) error {
	return s.rt.SetRegionLabels(RegionList(labels))
}

// Labels returns the currently installed (y-sorted) labels.
func (s *System) Labels() RegionList { return s.enc.Labels() }

// FrameIndex returns the index the next Capture will use.
func (s *System) FrameIndex() int { return s.frameIndex }

// Capture streams a frame through the encoder into the framebuffer and
// makes it the decoder's newest frame. Pending SetRegionLabels writes are
// committed at this frame boundary. When a tracer is attached, the three
// capture-side frame-path spans (classify, pack, push) are recorded.
func (s *System) Capture(fr *Frame) (CaptureStats, error) {
	var t0 time.Time
	if s.tracer != nil {
		t0 = time.Now()
	}
	if err := s.rt.FrameBoundary(); err != nil {
		return CaptureStats{}, err
	}
	t0 = s.span(obs.SpanClassify, s.frameIndex, t0, 0)
	ef, err := s.enc.EncodeFrame(fr, s.frameIndex)
	if err != nil {
		return CaptureStats{}, err
	}
	t0 = s.span(obs.SpanPack, s.frameIndex, t0, ef.TotalBytes())
	evicted, err := s.dec.PushEvict(ef)
	if err != nil {
		return CaptureStats{}, err
	}
	s.span(obs.SpanPush, s.frameIndex, t0, 0)
	s.last = ef
	// The frame the history ring just dropped is unreachable by any caller
	// (Borrow contract: borrowed pointers expired at this Capture), so its
	// storage feeds the next encode.
	s.pool.Put(evicted)
	cs := CaptureStats{
		FrameIndex:    s.frameIndex,
		EncodedPixels: ef.NumEncodedPixels(),
		EncodedBytes:  ef.TotalBytes(),
		PixelFraction: float64(ef.NumEncodedPixels()) / float64(s.w*s.h),
	}
	s.frameIndex++
	s.statsMu.Lock()
	s.stats.FramesCaptured++
	s.stats.BytesWritten += int64(ef.TotalBytes())
	s.stats.PixelsIn += int64(s.w * s.h)
	s.stats.PixelsStored += int64(ef.NumEncodedPixels())
	s.stats.RegisterUpdates = s.rt.RegisterFile().AXIWrites()
	s.encStats = s.enc.Stats()
	s.decStats = s.dec.Stats()
	s.statsMu.Unlock()
	return cs, nil
}

// Decoded reconstructs the full most-recent frame.
func (s *System) Decoded() (*Frame, error) {
	return s.DecodeWindow(0, 0, s.w, s.h)
}

// DecodeWindow reconstructs a sub-rectangle of the most recent frame, the
// access pattern of a tiled vision accelerator. When a tracer is attached,
// a decode span carrying the encoded bytes fetched is recorded.
func (s *System) DecodeWindow(x, y, w, h int) (*Frame, error) {
	var t0 time.Time
	if s.tracer != nil {
		t0 = time.Now()
	}
	before := s.dec.Stats().EncodedBytesRead
	fr, err := s.dec.DecodeWindow(x, y, w, h)
	if err != nil {
		return nil, err
	}
	after := s.dec.Stats()
	if s.last != nil {
		s.span(obs.SpanDecode, s.last.FrameIndex, t0, after.EncodedBytesRead-before)
	}
	s.statsMu.Lock()
	s.stats.BytesRead += int64(after.EncodedBytesRead - before)
	s.decStats = after
	s.statsMu.Unlock()
	return fr, nil
}

// span records one frame-path span ending now and returns the new start
// time for the next span; it is a no-op (returning the zero time) when no
// tracer is attached.
func (s *System) span(op string, frameIndex int, t0 time.Time, bytes int) time.Time {
	if s.tracer == nil {
		return time.Time{}
	}
	now := time.Now()
	s.tracer.Record(obs.Span{
		Session: s.tracerTag,
		Frame:   frameIndex,
		Op:      op,
		Start:   t0.UnixNano(),
		Dur:     now.Sub(t0).Nanoseconds(),
		Bytes:   bytes,
	})
	return now
}

// MetricsRegistry is the metrics registry Observe targets. The registry
// implementation lives in the internal observability layer shared with
// rpxd; the alias (plus NewMetricsRegistry, NewFrameTracer, and
// NewMetricLabel) lets external modules hold and use one through the rpx
// package without importing an internal path.
type MetricsRegistry = obs.Registry

// MetricLabel is one key/value pair attached to every series a single
// Observe call registers.
type MetricLabel = obs.Label

// FrameTracer is the fixed-ring frame-path span recorder SetTracer
// attaches; dump it with its WriteJSON or Snapshot methods.
type FrameTracer = obs.Tracer

// NewMetricsRegistry returns an empty metrics registry. Expose it with its
// WritePrometheus or WriteJSON methods.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewFrameTracer returns a frame-path tracer retaining the most recent
// capacity spans (capacity <= 0 selects a default).
func NewFrameTracer(capacity int) *FrameTracer { return obs.NewTracer(capacity) }

// NewMetricLabel builds one metric label for Observe.
func NewMetricLabel(key, value string) MetricLabel { return obs.L(key, value) }

// SetTracer attaches a frame-path tracer: Capture and DecodeWindow record
// classify/pack/push/decode spans tagged with tag (an rpxd session id, or
// any caller-chosen identifier). Pass nil to detach. SetTracer follows the
// System's single-goroutine contract: call it from the operations
// goroutine, not concurrently with Capture or decode.
func (s *System) SetTracer(t *obs.Tracer, tag uint64) {
	s.tracer = t
	s.tracerTag = tag
}

// Observe registers the System's lifetime traffic counters — SystemStats,
// EncoderStats, and DecoderStats — into an observability registry, each
// series carrying the given labels. Values are read at scrape time through
// the monitoring-safe stats accessors, so scrapes never synchronize with
// Capture beyond the internal stats mutex. Register a given System at most
// once per registry (per label set).
func (s *System) Observe(reg *obs.Registry, labels ...obs.Label) {
	counter := func(name, help string, fn func() int64) {
		reg.CounterFunc(name, help, func() uint64 { return uint64(fn()) }, labels...)
	}
	counter("rpx_frames_captured_total", "Frames captured.",
		func() int64 { return int64(s.Stats().FramesCaptured) })
	counter("rpx_bytes_written_total", "Encoded payload plus metadata bytes written to the framebuffer.",
		func() int64 { return s.Stats().BytesWritten })
	counter("rpx_bytes_read_total", "Encoded bytes fetched by the decoder.",
		func() int64 { return s.Stats().BytesRead })
	counter("rpx_pixels_in_total", "Pixels consumed from the sensor stream.",
		func() int64 { return s.Stats().PixelsIn })
	counter("rpx_pixels_stored_total", "Pixels surviving encoding.",
		func() int64 { return s.Stats().PixelsStored })
	counter("rpx_register_updates_total", "AXI-lite writes for label configuration.",
		func() int64 { return s.Stats().RegisterUpdates })
	counter("rpx_encoder_rows_processed_total", "Raster rows the encoder consumed.",
		func() int64 { return int64(s.EncoderStats().RowsProcessed) })
	counter("rpx_encoder_roi_compares_total", "RoI Selector y-range label examinations.",
		func() int64 { return int64(s.EncoderStats().RoISelectorCompares) })
	counter("rpx_decoder_pixels_requested_total", "Decoded-space pixels serviced.",
		func() int64 { return int64(s.DecoderStats().PixelsRequested) })
	counter("rpx_decoder_direct_r_total", "Pixels fetched from the newest encoded frame.",
		func() int64 { return int64(s.DecoderStats().DirectR) })
	counter("rpx_decoder_held_st_total", "Strided pixels serviced from the resampling or line buffer.",
		func() int64 { return int64(s.DecoderStats().HeldSt) })
	counter("rpx_decoder_fetched_sk_total", "Pixels fetched from older history frames.",
		func() int64 { return int64(s.DecoderStats().FetchedSk) })
	counter("rpx_decoder_black_total", "Pixels emitted as black.",
		func() int64 { return int64(s.DecoderStats().Black) })
	counter("rpx_decoder_encoded_bytes_read_total", "Payload bytes fetched from encoded frames.",
		func() int64 { return int64(s.DecoderStats().EncodedBytesRead) })
	counter("rpx_decoder_sub_requests_total", "PMMU sub-requests issued.",
		func() int64 { return int64(s.DecoderStats().SubRequests) })
	counter("rpx_decoder_metadata_bits_read_total", "EncMask metadata bits the PMMU examined for delivered rows.",
		func() int64 { return int64(s.DecoderStats().MetadataBitsRead) })
}

// LastEncoded returns a deep copy of the most recent encoded frame (nil
// before any Capture), for inspection and persistence. The caller owns the
// copy: it stays valid and immutable-by-others forever, and mutating it
// cannot corrupt the pipeline. Hot paths that can honour the borrow
// contract should prefer BorrowLastEncoded, which returns the live frame
// without copying.
func (s *System) LastEncoded() *EncodedFrame {
	if s.last == nil {
		return nil
	}
	return s.last.Clone()
}

// BorrowLastEncoded returns the live most recent encoded frame (nil before
// any Capture) without copying.
//
// Borrow contract: the frame belongs to the System. It is valid only until
// the next Capture — which recycles its storage into the encoder's frame
// pool — and the caller must not mutate it or retain the pointer across
// captures. Callers needing either guarantee use LastEncoded (an owned
// deep copy) or serialize the frame (EncodedFrame.AppendTo) before the
// next Capture.
func (s *System) BorrowLastEncoded() *EncodedFrame { return s.last }

// Stats returns the lifetime traffic counters. Safe to call from a
// monitoring goroutine concurrently with captures.
func (s *System) Stats() SystemStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// EncoderStats exposes the encoder's work counters as of the last completed
// operation. Safe to call from a monitoring goroutine.
func (s *System) EncoderStats() core.EncoderStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.encStats
}

// DecoderStats exposes the decoder's work counters as of the last completed
// operation. Safe to call from a monitoring goroutine.
func (s *System) DecoderStats() core.DecoderStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.decStats
}

// --- Encoded stream persistence ---

// StreamWriter serializes a sequence of encoded frames into the .rpxs
// container (all frames must share geometry).
type StreamWriter = core.StreamWriter

// NewStreamWriter returns a stream writer targeting w; feed it
// System.LastEncoded() after each Capture to persist a session.
func NewStreamWriter(w io.Writer) *StreamWriter { return core.NewStreamWriter(w) }

// StreamReader reads the .rpxs container frame by frame.
type StreamReader = core.StreamReader

// NewStreamReader validates the container header.
func NewStreamReader(r io.Reader) (*StreamReader, error) { return core.NewStreamReader(r) }

// DecodeStream replays a persisted stream through a fresh decoder, calling
// fn with each reconstructed frame in capture order (temporal-skip history
// accumulates exactly as it did live).
func DecodeStream(r io.Reader, format Format, fn func(frameIndex int, decoded *Frame) error) error {
	return core.DecodeStream(r, format, fn)
}

// --- Policy surface ---

// CyclePolicy is the paper's example policy: full-frame captures every
// CycleLength frames with task-driven regions in between.
type CyclePolicy = policy.Cycle

// PolicySource supplies intermediate-frame region labels.
type PolicySource = policy.Source

// PolicySourceFunc adapts a function to PolicySource.
type PolicySourceFunc = policy.SourceFunc

// NewCyclePolicy returns a cycle policy over a w x h frame.
func NewCyclePolicy(cycleLength, w, h int, src PolicySource) *CyclePolicy {
	return policy.NewCycle(cycleLength, w, h, src)
}

// FeatureParams tunes FeatureRegions.
type FeatureParams = policy.FeatureParams

// DefaultFeatureParams returns the evaluation defaults.
func DefaultFeatureParams() FeatureParams { return policy.DefaultFeatureParams() }

// FeatureRegions builds labels around keypoints: size → region extent,
// octave → stride, displacement → skip.
func FeatureRegions(kps []KeyPoint, meanDisplacement float64, w, h int, p FeatureParams) RegionList {
	return policy.FromKeypoints(kps, meanDisplacement, w, h, p)
}

// FeatureRegionsVel is FeatureRegions with per-feature velocities:
// displacements is aligned with kps (negative entries fall back to
// fallbackDisplacement), so each region gets its own temporal rate.
func FeatureRegionsVel(kps []KeyPoint, displacements []float64, fallbackDisplacement float64, w, h int, p FeatureParams) RegionList {
	return policy.FromKeypointsVel(kps, displacements, fallbackDisplacement, w, h, p)
}

// BoxParams tunes BoxRegions.
type BoxParams = policy.BoxParams

// DefaultBoxParams returns the evaluation defaults.
func DefaultBoxParams() BoxParams { return policy.DefaultBoxParams() }

// BoxRegions builds labels around tracked boxes with margins and
// motion-derived skip rates.
func BoxRegions(boxes []Box, velocities []float64, w, h int, p BoxParams) RegionList {
	return policy.FromBoxes(boxes, velocities, w, h, p)
}

// PredictivePolicy places regions at Kalman-predicted object positions.
type PredictivePolicy = policy.Predictive

// NewPredictivePolicy returns a predictive policy for a w x h frame.
func NewPredictivePolicy(w, h int, p BoxParams) *PredictivePolicy {
	return policy.NewPredictive(w, h, p)
}

// AdaptiveCyclePolicy varies its cycle length with observed scene motion
// (the paper's §7 adaptive-cycle direction).
type AdaptiveCyclePolicy = policy.AdaptiveCycle

// NewAdaptiveCyclePolicy returns an adaptive policy; feed it ObserveMotion
// each frame.
func NewAdaptiveCyclePolicy(minCycle, maxCycle, w, h int, fastMotion float64, src PolicySource) *AdaptiveCyclePolicy {
	return policy.NewAdaptiveCycle(minCycle, maxCycle, w, h, fastMotion, src)
}

// --- Policy registry: the paper's policy-maker / policy-user split ---

// Policy is a complete region-selection loop: Observe task feedback, emit
// the next frame's labels.
type Policy = policy.Policy

// PolicyFeedback carries per-frame task results into a Policy.
type PolicyFeedback = policy.Feedback

// PolicyMaker registers a named policy implementation.
type PolicyMaker = policy.Maker

// RegisterPolicy adds a policy to the shared pool (policy-maker tier).
func RegisterPolicy(m PolicyMaker) { policy.Register(m) }

// BuildPolicy instantiates a registered policy by name (policy-user tier).
// Built-ins: "feature-cycle", "box-cycle", "predictive", "adaptive-cycle".
func BuildPolicy(name string, w, h, cycleLength int) (Policy, error) {
	return policy.Build(name, w, h, cycleLength)
}

// PolicyNames lists the registered policies.
func PolicyNames() []string { return policy.Names() }

// DescribePolicy returns a registered policy's description.
func DescribePolicy(name string) (string, bool) { return policy.Describe(name) }
