package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/region"
)

func TestFrameBasedTraffic(t *testing.T) {
	fch := NewFCH(3840, 2160, 1)
	tr := fch.FrameTraffic(nil, 0)
	size := int64(3840 * 2160)
	if tr.WriteBytes != size || tr.ReadBytes != size || tr.PixelsStored != size {
		t.Errorf("FCH traffic = %+v", tr)
	}
	if tr.FootprintBytes != size*RingDepth {
		t.Errorf("FCH footprint = %d, want %d", tr.FootprintBytes, size*RingDepth)
	}
	if fch.Name() != "FCH" {
		t.Errorf("Name = %q", fch.Name())
	}
	fcl := NewFCL(3840, 2160, 1, 4) // 960x540
	trl := fcl.FrameTraffic(nil, 0)
	if trl.WriteBytes != 960*540 {
		t.Errorf("FCL write = %d", trl.WriteBytes)
	}
	if fcl.Name() != "FCL" {
		t.Errorf("Name = %q", fcl.Name())
	}
}

func TestRhythmicTrafficFullFrame(t *testing.T) {
	m := NewRhythmic(10, 100, 100, 1)
	if m.Name() != "RP10" {
		t.Errorf("Name = %q", m.Name())
	}
	full := region.List{region.FullFrame(100, 100)}
	tr := m.FrameTraffic(full, 0)
	if tr.PixelsStored != 100*100 {
		t.Errorf("PixelsStored = %d", tr.PixelsStored)
	}
	// Payload + mask (2500 B) + offsets (404 B).
	wantWrite := int64(10000 + 2500 + 404)
	if tr.WriteBytes != wantWrite {
		t.Errorf("WriteBytes = %d, want %d", tr.WriteBytes, wantWrite)
	}
	if tr.ReadBytes != wantWrite { // no Sk pixels
		t.Errorf("ReadBytes = %d, want %d", tr.ReadBytes, wantWrite)
	}
}

func TestRhythmicTrafficSparseAndSkip(t *testing.T) {
	m := NewRhythmic(5, 100, 100, 1)
	labels := region.List{{X: 10, Y: 10, W: 20, H: 20, Stride: 2, Skip: 2}}
	// Frame 0: active, 10x10 lattice pixels stored.
	tr0 := m.FrameTraffic(labels, 0)
	if tr0.PixelsStored != 100 {
		t.Errorf("frame 0 PixelsStored = %d, want 100", tr0.PixelsStored)
	}
	// Frame 1: skipped, nothing stored, but reads fetch Sk pixels from
	// history (400 region pixels).
	tr1 := m.FrameTraffic(labels, 1)
	if tr1.PixelsStored != 0 {
		t.Errorf("frame 1 PixelsStored = %d, want 0", tr1.PixelsStored)
	}
	meta := int64((100*100+3)/4 + 4*101)
	if tr1.WriteBytes != meta {
		t.Errorf("frame 1 WriteBytes = %d, want metadata only %d", tr1.WriteBytes, meta)
	}
	if tr1.ReadBytes != meta+400 {
		t.Errorf("frame 1 ReadBytes = %d, want %d", tr1.ReadBytes, meta+400)
	}
}

func TestRhythmicFootprintRing(t *testing.T) {
	m := NewRhythmic(10, 64, 64, 1)
	full := region.List{region.FullFrame(64, 64)}
	var last Traffic
	for i := 0; i < 6; i++ {
		last = m.FrameTraffic(full, i)
	}
	perFrame := int64(64*64) + int64((64*64+3)/4) + int64(4*65)
	if last.FootprintBytes != 4*perFrame {
		t.Errorf("footprint = %d, want 4 frames x %d", last.FootprintBytes, perFrame)
	}
}

func TestRhythmicLessTrafficThanFCH(t *testing.T) {
	const w, h = 640, 480
	rng := rand.New(rand.NewSource(1))
	var labels region.List
	for i := 0; i < 50; i++ {
		l, ok := region.Clip(region.Label{
			X: rng.Intn(w), Y: rng.Intn(h), W: 30 + rng.Intn(40), H: 30 + rng.Intn(40),
			Stride: 1 + rng.Intn(3), Skip: 1 + rng.Intn(3),
		}, w, h)
		if ok {
			labels = append(labels, l)
		}
	}
	labels.SortByY()
	rp := NewRhythmic(10, w, h, 1)
	fch := NewFCH(w, h, 1)
	rpT := rp.FrameTraffic(labels, 1)
	fchT := fch.FrameTraffic(labels, 1)
	if rpT.WriteBytes >= fchT.WriteBytes {
		t.Errorf("RP write %d >= FCH write %d for sparse regions", rpT.WriteBytes, fchT.WriteBytes)
	}
}

func TestMultiROITraffic(t *testing.T) {
	m := NewMultiROI(640, 480, 1)
	if m.Name() != "Multi-ROI" {
		t.Errorf("Name = %q", m.Name())
	}
	// Two disjoint boxes of 100x100: traffic = sum of areas at full res
	// (stride/skip ignored), expanded to the sensor's window alignment:
	// widths round up to multiples of 16 → 112x100 each.
	labels := region.List{
		{X: 0, Y: 0, W: 100, H: 100, Stride: 4, Skip: 4},
		{X: 300, Y: 300, W: 100, H: 100, Stride: 4, Skip: 4},
	}
	tr := m.FrameTraffic(labels, 0)
	want := int64(2 * 112 * 100)
	if tr.PixelsStored != want {
		t.Errorf("PixelsStored = %d, want %d (stride/skip ignored, 16px alignment)", tr.PixelsStored, want)
	}
	if tr.WriteBytes != want || tr.ReadBytes != want {
		t.Errorf("traffic = %+v", tr)
	}
}

func TestMultiROICapsRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var labels region.List
	for i := 0; i < 300; i++ {
		l, ok := region.Clip(region.Label{
			X: rng.Intn(1900), Y: rng.Intn(1060), W: 20, H: 20, Stride: 1, Skip: 1,
		}, 1920, 1080)
		if ok {
			labels = append(labels, l)
		}
	}
	labels.SortByY()
	m := NewMultiROI(1920, 1080, 1)
	tr := m.FrameTraffic(labels, 0)
	// 300 scattered 20x20 regions merged into 16 boxes cover far more area
	// than the regions themselves: the multi-ROI baseline overfetches.
	var exact int64
	for _, l := range labels {
		exact += int64(l.Area())
	}
	if tr.PixelsStored <= exact {
		t.Errorf("multi-ROI stored %d <= exact %d; clustering should overfetch", tr.PixelsStored, exact)
	}
}

func TestH264Traffic(t *testing.T) {
	m := NewH264(1920, 1080, 1)
	if m.Name() != "H.264" {
		t.Errorf("Name = %q", m.Name())
	}
	size := int64(1920 * 1080)
	tr := m.FrameTraffic(nil, 0)
	// The codec moves several frame-sized buffers per frame: total traffic
	// must substantially exceed frame-based computing's 2x.
	if tr.WriteBytes+tr.ReadBytes <= 3*size {
		t.Errorf("H.264 traffic = %d, want > 3x frame size", tr.WriteBytes+tr.ReadBytes)
	}
	// Footprint holds multiple frames.
	if tr.FootprintBytes <= 2*size {
		t.Errorf("H.264 footprint = %d, want multi-frame", tr.FootprintBytes)
	}
}

func TestBaselineOrdering(t *testing.T) {
	// The paper's Fig. 8 ordering for sparse-region workloads:
	// RPx < Multi-ROI < FCH < H.264 in total traffic.
	const w, h = 1280, 720
	rng := rand.New(rand.NewSource(3))
	var labels region.List
	for i := 0; i < 100; i++ {
		l, ok := region.Clip(region.Label{
			X: rng.Intn(w), Y: rng.Intn(h), W: 40 + rng.Intn(40), H: 40 + rng.Intn(40),
			Stride: 1 + rng.Intn(4), Skip: 1 + rng.Intn(3),
		}, w, h)
		if ok {
			labels = append(labels, l)
		}
	}
	labels.SortByY()
	total := func(m Model) int64 {
		tr := m.FrameTraffic(labels, 1)
		return tr.WriteBytes + tr.ReadBytes
	}
	rp := total(NewRhythmic(10, w, h, 1))
	mr := total(NewMultiROI(w, h, 1))
	fch := total(NewFCH(w, h, 1))
	h264 := total(NewH264(w, h, 1))
	if !(rp < mr && fch < h264) {
		t.Errorf("ordering violated: RP=%d MultiROI=%d FCH=%d H264=%d", rp, mr, fch, h264)
	}
}
