// Package baseline implements the per-frame memory traffic models of every
// system the paper's evaluation compares (§5.3 "Baselines"):
//
//   - FCH/FCL: frame-based computing at high/low uniform resolution;
//   - RPx: rhythmic pixel regions (driven by the real encoder's
//     classification via core.CountCodes);
//   - Multi-ROI: off-the-shelf multi-ROI cameras, limited to 16 rectangular
//     regions merged by k-means, without stride/skip adaptation, storing
//     each region as a grouped sequence (overlaps duplicated);
//   - H.264: a datasheet-style codec model that moves multiple reference
//     frames through memory per encoded frame.
package baseline

import (
	"fmt"

	"repro/internal/bitpack"
	"repro/internal/core"
	"repro/internal/region"
)

// Traffic is the DRAM activity one frame induces under a model.
type Traffic struct {
	// WriteBytes is framebuffer write traffic for capturing the frame.
	WriteBytes int64
	// ReadBytes is read traffic for the application consuming the frame.
	ReadBytes int64
	// FootprintBytes is the live framebuffer allocation after this frame.
	FootprintBytes int64
	// PixelsStored is the number of pixels written (the paper's "fraction
	// of pixels captured" metric divides this by W*H).
	PixelsStored int64
}

// Model produces per-frame traffic for a capture system.
type Model interface {
	// Name identifies the model in reports (e.g. "FCH", "RP10").
	Name() string
	// FrameTraffic evaluates the traffic of one frame given the region
	// labels the application requested for it. Frame-based models ignore
	// the labels.
	FrameTraffic(labels region.List, frameIndex int) Traffic
}

// RingDepth is the framebuffer ring depth every model buffers: the rhythmic
// decoder needs its 4-frame metadata scratchpad window resident, and the
// frame-based pipelines conventionally keep a matching ring in the camera
// HAL.
const RingDepth = 4

// FrameBased models uniform full-frame capture at a fixed resolution: FCH
// at the sensor's high resolution or FCL at a downscaled one.
type FrameBased struct {
	Label         string
	W, H          int
	BytesPerPixel int
}

// NewFCH returns the high-resolution frame-based baseline.
func NewFCH(w, h, bpp int) FrameBased {
	return FrameBased{Label: "FCH", W: w, H: h, BytesPerPixel: bpp}
}

// NewFCL returns a low-resolution frame-based baseline downscaled by factor.
func NewFCL(w, h, bpp, factor int) FrameBased {
	return FrameBased{Label: "FCL", W: w / factor, H: h / factor, BytesPerPixel: bpp}
}

// Name implements Model.
func (m FrameBased) Name() string { return m.Label }

// FrameTraffic implements Model: the whole frame is written once and read
// once, and a RingDepth ring of full frames stays live.
func (m FrameBased) FrameTraffic(_ region.List, _ int) Traffic {
	size := int64(m.W) * int64(m.H) * int64(m.BytesPerPixel)
	return Traffic{
		WriteBytes:     size,
		ReadBytes:      size,
		FootprintBytes: size * RingDepth,
		PixelsStored:   int64(m.W) * int64(m.H),
	}
}

// Rhythmic models the rhythmic pixel region system with a given cycle
// length naming convention (RP5, RP10, ...). Traffic is derived from the
// exact EncMask classification the hardware encoder would produce.
type Rhythmic struct {
	Label         string
	W, H          int
	BytesPerPixel int
	HistoryDepth  int

	// ring holds the last HistoryDepth encoded-frame total sizes for the
	// footprint model.
	ring []int64
}

// NewRhythmic returns a rhythmic-pixel traffic model. cycleLength only
// affects the display name; the actual rhythm comes from the per-frame
// label lists the policy generates.
func NewRhythmic(cycleLength, w, h, bpp int) *Rhythmic {
	return &Rhythmic{
		Label:         fmt.Sprintf("RP%d", cycleLength),
		W:             w,
		H:             h,
		BytesPerPixel: bpp,
		HistoryDepth:  core.DefaultHistoryDepth,
	}
}

// Name implements Model.
func (m *Rhythmic) Name() string { return m.Label }

// metadataBytes is the per-frame metadata cost: a 2-bit EncMask per pixel
// plus 4-byte per-row offsets.
func (m *Rhythmic) metadataBytes() int64 {
	return int64((m.W*m.H+3)/4) + int64(4*(m.H+1))
}

// FrameTraffic implements Model.
func (m *Rhythmic) FrameTraffic(labels region.List, frameIndex int) Traffic {
	counts := core.CountCodes(m.W, m.H, frameIndex, labels)
	rPixels := int64(counts[bitpack.CodeR])
	skPixels := int64(counts[bitpack.CodeSk])
	payload := rPixels * int64(m.BytesPerPixel)
	meta := m.metadataBytes()

	// Write path: encoded payload plus metadata enter DRAM.
	write := payload + meta
	// Read path: the decoder fetches the current frame's payload and
	// metadata once as the app consumes the frame, plus history fetches
	// for temporally skipped pixels.
	read := payload + meta + skPixels*int64(m.BytesPerPixel)

	// Footprint: the scratchpad window of encoded frames stays live.
	m.ring = append(m.ring, payload+meta)
	if len(m.ring) > m.HistoryDepth {
		m.ring = m.ring[1:]
	}
	var foot int64
	for _, s := range m.ring {
		foot += s
	}
	return Traffic{WriteBytes: write, ReadBytes: read, FootprintBytes: foot, PixelsStored: rPixels}
}

// MultiROI models an off-the-shelf multi-ROI camera: at most MaxRegions
// rectangular windows, no stride or skip, regions stored as grouped
// sequences so overlapping areas are duplicated.
type MultiROI struct {
	W, H          int
	BytesPerPixel int
	MaxRegions    int
	Seed          int64

	ring []int64
}

// MaxMultiROIRegions is the paper's observed commercial limit.
const MaxMultiROIRegions = 16

// NewMultiROI returns the multi-ROI camera model.
func NewMultiROI(w, h, bpp int) *MultiROI {
	return &MultiROI{W: w, H: h, BytesPerPixel: bpp, MaxRegions: MaxMultiROIRegions, Seed: 1}
}

// Name implements Model.
func (m *MultiROI) Name() string { return "Multi-ROI" }

// roiAlignX and roiAlignY are commercial multi-ROI window alignment
// constraints: readout windows snap to coarse column granularity and even
// rows (e.g. Ximea multi-ROI cameras align horizontal offsets/widths to
// multiples of 16 and vertical ones to multiples of 2).
const (
	roiAlignX = 16
	roiAlignY = 2
)

// alignROI expands a box to the sensor's window alignment grid, clipped to
// the frame.
func alignROI(b region.Label, w, h int) region.Label {
	x0 := b.X / roiAlignX * roiAlignX
	y0 := b.Y / roiAlignY * roiAlignY
	x1 := (b.X + b.W + roiAlignX - 1) / roiAlignX * roiAlignX
	y1 := (b.Y + b.H + roiAlignY - 1) / roiAlignY * roiAlignY
	if x1 > w {
		x1 = w
	}
	if y1 > h {
		y1 = h
	}
	b.X, b.Y, b.W, b.H = x0, y0, x1-x0, y1-y0
	return b
}

// FrameTraffic implements Model.
func (m *MultiROI) FrameTraffic(labels region.List, _ int) Traffic {
	boxes := region.ClusterKMeans(labels, m.MaxRegions, m.W, m.H, m.Seed)
	var pixels int64
	for _, b := range boxes {
		pixels += int64(alignROI(b, m.W, m.H).Area()) // grouped storage duplicates overlaps
	}
	bytes := pixels * int64(m.BytesPerPixel)
	m.ring = append(m.ring, bytes)
	if len(m.ring) > RingDepth {
		m.ring = m.ring[1:]
	}
	var foot int64
	for _, s := range m.ring {
		foot += s
	}
	return Traffic{WriteBytes: bytes, ReadBytes: bytes, FootprintBytes: foot, PixelsStored: pixels}
}

// H264 models a hardware H.264 encoder pipeline from datasheet behaviour:
// each input frame is written raw to memory, read by the codec, motion
// search reads reference frames, the reconstructed reference is written
// back, and the compressed bitstream is written out. Compression reduces
// the *bitstream*, not the pixel traffic — which is why the paper finds
// H.264 generates substantially more memory traffic than every other
// baseline.
type H264 struct {
	W, H          int
	BytesPerPixel int
	// RefFrames is the number of reference frames motion estimation reads.
	RefFrames int
	// CompressionRatio divides the frame size to estimate bitstream bytes
	// (Baseline profile, level 5.2 per the paper's codec configuration).
	CompressionRatio float64
}

// NewH264 returns the codec model with the paper's configuration: Baseline
// profile (1 reference frame, plus the current reconstruction) at level 5.2.
func NewH264(w, h, bpp int) H264 {
	return H264{W: w, H: h, BytesPerPixel: bpp, RefFrames: 2, CompressionRatio: 20}
}

// Name implements Model.
func (m H264) Name() string { return "H.264" }

// FrameTraffic implements Model.
func (m H264) FrameTraffic(_ region.List, _ int) Traffic {
	size := int64(m.W) * int64(m.H) * int64(m.BytesPerPixel)
	bitstream := int64(float64(size) / m.CompressionRatio)
	write := size + size + bitstream              // raw capture + recon reference + bitstream
	read := size + int64(m.RefFrames)*size        // codec input + motion search
	foot := size*int64(2+m.RefFrames) + bitstream // current, recon, references, bitstream
	return Traffic{
		WriteBytes:     write,
		ReadBytes:      read,
		FootprintBytes: foot,
		PixelsStored:   int64(m.W) * int64(m.H),
	}
}
