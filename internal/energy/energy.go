// Package energy implements the paper's first-order energy model
// (Appendix A.2, Table 6): per-pixel energy for sensing, DRAM storage,
// interface communication, and per-MAC compute energy. The model is linear
// in traffic, which the paper uses "to contextualize the benefits of
// reducing pixel memory throughput in a mobile system".
package energy

// Model holds the per-operation energy constants in picojoules. The zero
// value is not useful; use Default for the paper's Table 6 numbers.
type Model struct {
	// SensePJPerPixel is image sensing energy: pixel array, read-out
	// circuits, and analog signal chain (~595 pJ/pixel).
	SensePJPerPixel float64
	// DRAMReadPJPerPixel and DRAMWritePJPerPixel split the 677 pJ/pixel
	// LPDDR4 storage energy into ~300 read + ~400 write (§6.2).
	DRAMReadPJPerPixel  float64
	DRAMWritePJPerPixel float64
	// CSIPJPerPixel is camera-interface transfer energy (~1 nJ/pixel).
	CSIPJPerPixel float64
	// DDRInterfacePJPerPixel is SoC-DRAM interface transfer energy
	// (~3 nJ/pixel; together with storage, ~2.8-4 nJ per moved pixel).
	DDRInterfacePJPerPixel float64
	// MACPJ is the energy of one multiply-accumulate (~4.6 pJ).
	MACPJ float64
}

// Default is the paper's Table 6 model.
var Default = Model{
	SensePJPerPixel:        595,
	DRAMReadPJPerPixel:     300,
	DRAMWritePJPerPixel:    400,
	CSIPJPerPixel:          1000,
	DDRInterfacePJPerPixel: 3000,
	MACPJ:                  4.6,
}

// Breakdown is per-component energy for a workload in millijoules.
type Breakdown struct {
	SenseMJ   float64
	StorageMJ float64
	CommMJ    float64
	ComputeMJ float64
}

// TotalMJ sums the components.
func (b Breakdown) TotalMJ() float64 { return b.SenseMJ + b.StorageMJ + b.CommMJ + b.ComputeMJ }

// Activity describes the pixel and compute activity of a workload span.
type Activity struct {
	// PixelsSensed is the number of pixels read off the sensor.
	PixelsSensed int64
	// PixelsWritten and PixelsRead count DRAM framebuffer traffic in
	// pixels (bytes for 8-bit channels).
	PixelsWritten int64
	PixelsRead    int64
	// PixelsOverCSI counts pixels crossing the camera serial interface.
	PixelsOverCSI int64
	// PixelsOverDDR counts pixels crossing the SoC-DRAM interface.
	PixelsOverDDR int64
	// MACs counts multiply-accumulate operations performed.
	MACs int64
}

// Energy evaluates the model over an activity span.
func (m Model) Energy(a Activity) Breakdown {
	const pjToMJ = 1e-9
	return Breakdown{
		SenseMJ:   float64(a.PixelsSensed) * m.SensePJPerPixel * pjToMJ,
		StorageMJ: (float64(a.PixelsWritten)*m.DRAMWritePJPerPixel + float64(a.PixelsRead)*m.DRAMReadPJPerPixel) * pjToMJ,
		CommMJ:    (float64(a.PixelsOverCSI)*m.CSIPJPerPixel + float64(a.PixelsOverDDR)*m.DDRInterfacePJPerPixel) * pjToMJ,
		ComputeMJ: float64(a.MACs) * m.MACPJ * pjToMJ,
	}
}

// PowerMW converts a per-frame energy (mJ) at a frame rate into milliwatts.
func PowerMW(perFrameMJ, fps float64) float64 { return perFrameMJ * fps }

// SavingsMJPerFrame returns the per-frame energy difference between a
// baseline and a reduced activity, in millijoules.
func (m Model) SavingsMJPerFrame(base, reduced Activity, frames int) float64 {
	if frames <= 0 {
		return 0
	}
	return (m.Energy(base).TotalMJ() - m.Energy(reduced).TotalMJ()) / float64(frames)
}
