package energy

import (
	"math"
	"testing"
)

func TestDefaultConstantsMatchTable6(t *testing.T) {
	if Default.SensePJPerPixel != 595 {
		t.Errorf("sense = %v, want 595", Default.SensePJPerPixel)
	}
	if Default.DRAMReadPJPerPixel+Default.DRAMWritePJPerPixel != 700 {
		t.Errorf("storage = %v, want ~677-700 split 300/400",
			Default.DRAMReadPJPerPixel+Default.DRAMWritePJPerPixel)
	}
	if Default.MACPJ != 4.6 {
		t.Errorf("MAC = %v, want 4.6", Default.MACPJ)
	}
	// "Communication cost is at least three orders of magnitude more than
	// compute cost" (Table 6 caption).
	if Default.DDRInterfacePJPerPixel/Default.MACPJ < 500 {
		t.Error("DDR/MAC ratio should be ~3 orders of magnitude")
	}
}

func TestEnergyLinear(t *testing.T) {
	a := Activity{PixelsSensed: 1000, PixelsWritten: 1000, PixelsRead: 1000,
		PixelsOverCSI: 1000, PixelsOverDDR: 2000, MACs: 1_000_000}
	b := Default.Energy(a)
	// Sensing: 1000 * 595 pJ = 595 nJ = 5.95e-4 mJ.
	if math.Abs(b.SenseMJ-5.95e-4) > 1e-9 {
		t.Errorf("SenseMJ = %v", b.SenseMJ)
	}
	// Storage: 1000*400 + 1000*300 = 700 nJ.
	if math.Abs(b.StorageMJ-7e-4) > 1e-9 {
		t.Errorf("StorageMJ = %v", b.StorageMJ)
	}
	// Comm: 1000*1000 + 2000*3000 = 7000 nJ.
	if math.Abs(b.CommMJ-7e-3) > 1e-9 {
		t.Errorf("CommMJ = %v", b.CommMJ)
	}
	// Compute: 1e6 * 4.6 pJ = 4.6 uJ = 4.6e-3 mJ.
	if math.Abs(b.ComputeMJ-4.6e-3) > 1e-9 {
		t.Errorf("ComputeMJ = %v", b.ComputeMJ)
	}
	if math.Abs(b.TotalMJ()-(b.SenseMJ+b.StorageMJ+b.CommMJ+b.ComputeMJ)) > 1e-12 {
		t.Error("TotalMJ inconsistent")
	}
}

func TestPaperHeadlineSavings(t *testing.T) {
	// §6.2: for RP10 on V-SLAM at 4K 30 fps, reduced interface traffic
	// saves ~18 mJ/frame (~550 mW). Check the model reproduces the order
	// of magnitude: a 4K frame is 8.3 Mpx; RP10 removes ~55-65% of the
	// read+write pixel movement across DDR interface + storage.
	fullPx := int64(3840 * 2160)
	base := Activity{
		PixelsWritten: fullPx, PixelsRead: fullPx,
		PixelsOverDDR: 2 * fullPx,
	}
	// ~40% of pixels survive encoding.
	redPx := int64(float64(fullPx) * 0.40)
	reduced := Activity{
		PixelsWritten: redPx, PixelsRead: redPx,
		PixelsOverDDR: 2 * redPx,
	}
	perFrame := Default.SavingsMJPerFrame(base, reduced, 1)
	if perFrame < 10 || perFrame > 40 {
		t.Errorf("per-frame savings = %.1f mJ, want 10-40 (paper: ~18)", perFrame)
	}
	power := PowerMW(perFrame, 30)
	if power < 300 || power > 1200 {
		t.Errorf("power savings = %.0f mW, want 300-1200 (paper: ~550)", power)
	}
}

func TestSavingsEdgeCases(t *testing.T) {
	if Default.SavingsMJPerFrame(Activity{}, Activity{}, 0) != 0 {
		t.Error("zero frames should yield 0")
	}
	// Reduced > base gives negative savings (a regression, not an error).
	base := Activity{PixelsWritten: 10}
	worse := Activity{PixelsWritten: 100}
	if Default.SavingsMJPerFrame(base, worse, 1) >= 0 {
		t.Error("regression should be negative")
	}
}

func TestPowerMW(t *testing.T) {
	if PowerMW(18, 30) != 540 {
		t.Errorf("PowerMW(18, 30) = %v, want 540", PowerMW(18, 30))
	}
}
