package core

import "fmt"

// Bus models the decoder's integration with the DDR controller (§4.2.3):
// "we integrate the decoder module with the existing DDR controller inside
// the SoC. By doing so, the decoder can intercept memory traffic coming
// from any processing element and service requests." Read transactions
// whose addresses fall inside the decoded framebuffer window are translated
// and served from encoded data; every other access bypasses to the backing
// memory, exactly the Out-of-Frame Handler split of Fig. 6.
type Bus struct {
	dec  *Decoder
	base uint64
	// backing is the standard DRAM the bypass path reads (byte-addressed
	// from address 0).
	backing []byte

	pixelTxns  int64
	bypassTxns int64
}

// NewBus maps the decoder's framebuffer at base over the backing memory.
func NewBus(dec *Decoder, base uint64, backing []byte) *Bus {
	return &Bus{dec: dec, base: base, backing: backing}
}

// PixelTxns returns the number of transactions served from encoded data.
func (b *Bus) PixelTxns() int64 { return b.pixelTxns }

// BypassTxns returns the number of standard memory accesses.
func (b *Bus) BypassTxns() int64 { return b.bypassTxns }

// Read services a byte-addressed read of n bytes. Requests inside the
// decoded framebuffer window must be pixel-aligned and stay within one row
// (the constraint a burst-oriented requester naturally satisfies).
func (b *Bus) Read(addr uint64, n int) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: non-positive read length %d", n)
	}
	end := b.base + uint64(b.dec.w*b.dec.h*b.dec.bpp)
	if addr >= b.base && addr+uint64(n) <= end {
		// Pixel transaction: translate decoded-space bytes to a window
		// decode of the covered pixel run.
		rel := int(addr - b.base)
		if rel%b.dec.bpp != 0 || n%b.dec.bpp != 0 {
			return nil, fmt.Errorf("core: misaligned pixel read addr=%#x len=%d bpp=%d", addr, n, b.dec.bpp)
		}
		pixIdx := rel / b.dec.bpp
		x, y := pixIdx%b.dec.w, pixIdx/b.dec.w
		count := n / b.dec.bpp
		if x+count > b.dec.w {
			return nil, fmt.Errorf("core: pixel read crosses row boundary (x=%d count=%d w=%d)", x, count, b.dec.w)
		}
		win, err := b.dec.DecodeWindow(x, y, count, 1)
		if err != nil {
			return nil, err
		}
		b.pixelTxns++
		return win.Pix, nil
	}
	// Standard memory access.
	if addr+uint64(n) > uint64(len(b.backing)) {
		return nil, fmt.Errorf("core: bypass read [%#x,%#x) outside %d-byte backing memory", addr, addr+uint64(n), len(b.backing))
	}
	b.bypassTxns++
	out := make([]byte, n)
	copy(out, b.backing[addr:addr+uint64(n)])
	return out, nil
}
