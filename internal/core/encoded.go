// Package core implements the paper's primary contribution: the rhythmic
// pixel encoder and decoder (§4).
//
// The encoder consumes a dense raster-scan pixel stream and, guided by a
// y-sorted region label list, packs only "regional" pixels into a tightly
// packed encoded frame while emitting two forms of metadata: a per-row
// offset table and a 2-bit-per-pixel encoding mask (EncMask). The decoder
// reconstructs frames — or arbitrary pixel windows — from the encoded frame
// plus metadata alone, without consulting region labels, which is what makes
// it agnostic to the number of regions.
package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bitpack"
	"repro/internal/frame"
)

// EncodedFrame is the in-memory representation the encoder writes to the
// (simulated) DRAM framebuffer: packed regional pixels in raster order plus
// the decoder metadata (§3.2, §3.3).
type EncodedFrame struct {
	// W, H are the dimensions of the original (decoded-space) frame.
	W, H int
	// BytesPerPixel is the pixel depth of the stream (1 for Gray8, 3 for
	// RGB24/YUV444).
	BytesPerPixel int
	// FrameIndex is the temporal index of the source frame; the decoder
	// uses it to resolve temporally skipped pixels against history.
	FrameIndex int
	// Pix holds the packed regional (CodeR) pixels in raster-scan order.
	Pix []byte
	// RowOffsets has H+1 entries; RowOffsets[y] is the number of encoded
	// pixels before row y, so row y's pixels occupy indexes
	// [RowOffsets[y], RowOffsets[y+1]) of the packed stream.
	RowOffsets []uint32
	// Mask is the EncMask: one 2-bit code per original-frame pixel.
	Mask *bitpack.Mask2
}

// NumEncodedPixels returns the number of packed pixels.
func (ef *EncodedFrame) NumEncodedPixels() int { return len(ef.Pix) / ef.BytesPerPixel }

// PixelDataBytes returns the byte size of the packed pixel payload.
func (ef *EncodedFrame) PixelDataBytes() int { return len(ef.Pix) }

// MetadataBytes returns the byte size of the per-row offsets plus EncMask —
// the paper's ~8% overhead for a Gray8 1080p frame.
func (ef *EncodedFrame) MetadataBytes() int {
	return len(ef.RowOffsets)*4 + ef.Mask.SizeBytes()
}

// TotalBytes returns pixel payload plus metadata.
func (ef *EncodedFrame) TotalBytes() int { return ef.PixelDataBytes() + ef.MetadataBytes() }

// CompressionRatio returns original frame bytes / encoded total bytes.
func (ef *EncodedFrame) CompressionRatio() float64 {
	orig := float64(ef.W * ef.H * ef.BytesPerPixel)
	return orig / float64(ef.TotalBytes())
}

// PixelAt returns the packed bytes of the CodeR pixel at original-frame
// coordinates (x, y). It reports an error when the pixel is not CodeR.
// This is the PMMU address translation in function form: encoded index =
// RowOffsets[y] + (number of R codes before x in row y).
func (ef *EncodedFrame) PixelAt(x, y int) ([]byte, error) {
	if x < 0 || x >= ef.W || y < 0 || y >= ef.H {
		return nil, fmt.Errorf("core: pixel (%d,%d) outside %dx%d frame", x, y, ef.W, ef.H)
	}
	base := y * ef.W
	if ef.Mask.Get(base+x) != bitpack.CodeR {
		return nil, fmt.Errorf("core: pixel (%d,%d) is %v, not R", x, y, ef.Mask.Get(base+x))
	}
	idx := int(ef.RowOffsets[y]) + ef.Mask.CountRRange(base, base+x)
	off := idx * ef.BytesPerPixel
	return ef.Pix[off : off+ef.BytesPerPixel], nil
}

// Validate checks the structural invariants tying the three components
// together: offsets are monotone, each row's offset delta equals the row's
// R-code count, and the packed payload length matches the total R count.
func (ef *EncodedFrame) Validate() error {
	if ef.W <= 0 || ef.H <= 0 {
		return fmt.Errorf("core: invalid dimensions %dx%d", ef.W, ef.H)
	}
	if ef.BytesPerPixel <= 0 {
		return fmt.Errorf("core: invalid bytes-per-pixel %d", ef.BytesPerPixel)
	}
	if len(ef.RowOffsets) != ef.H+1 {
		return fmt.Errorf("core: %d row offsets, want %d", len(ef.RowOffsets), ef.H+1)
	}
	if ef.Mask.Len() != ef.W*ef.H {
		return fmt.Errorf("core: mask has %d entries, want %d", ef.Mask.Len(), ef.W*ef.H)
	}
	if ef.RowOffsets[0] != 0 {
		return fmt.Errorf("core: RowOffsets[0] = %d, want 0", ef.RowOffsets[0])
	}
	for y := 0; y < ef.H; y++ {
		delta := int(ef.RowOffsets[y+1]) - int(ef.RowOffsets[y])
		if delta < 0 {
			return fmt.Errorf("core: row offsets not monotone at row %d", y)
		}
		rCount := ef.Mask.CountRRange(y*ef.W, (y+1)*ef.W)
		if delta != rCount {
			return fmt.Errorf("core: row %d offset delta %d != mask R count %d", y, delta, rCount)
		}
	}
	if want := int(ef.RowOffsets[ef.H]) * ef.BytesPerPixel; len(ef.Pix) != want {
		return fmt.Errorf("core: payload is %d bytes, offsets imply %d", len(ef.Pix), want)
	}
	return nil
}

// Clone returns a deep copy of ef that shares no storage with the original.
// The copy is safe to hold, mutate, or serialize regardless of what later
// happens to ef (e.g. the producing System recycling its buffers).
func (ef *EncodedFrame) Clone() *EncodedFrame {
	c := &EncodedFrame{
		W:             ef.W,
		H:             ef.H,
		BytesPerPixel: ef.BytesPerPixel,
		FrameIndex:    ef.FrameIndex,
		Pix:           append([]byte(nil), ef.Pix...),
		RowOffsets:    append([]uint32(nil), ef.RowOffsets...),
		Mask:          ef.Mask.Clone(),
	}
	return c
}

// CopyFrom makes dst a deep copy of src, reusing dst's buffers where their
// capacity allows. dst afterwards shares no storage with src.
func (ef *EncodedFrame) CopyFrom(src *EncodedFrame) {
	ef.W, ef.H, ef.BytesPerPixel, ef.FrameIndex = src.W, src.H, src.BytesPerPixel, src.FrameIndex
	ef.Pix = append(ef.Pix[:0], src.Pix...)
	ef.RowOffsets = append(ef.RowOffsets[:0], src.RowOffsets...)
	if ef.Mask == nil || ef.Mask.Len() != src.Mask.Len() {
		ef.Mask = src.Mask.Clone()
	} else {
		copy(ef.Mask.Bytes(), src.Mask.Bytes())
	}
}

// encodedMagic identifies the serialized encoded-frame container.
const encodedMagic = 0x52505845 // "RPXE"

// encodedHeaderSize is the fixed RPXE container header length.
const encodedHeaderSize = 28

// EncodedHeaderSize is the fixed RPXE container header length, shared by
// the v1 (raw) and v2 (packed-metadata) container forms. Exported so
// measurement code can split a serialized container into header, payload,
// and metadata-tail bytes without re-parsing it.
const EncodedHeaderSize = encodedHeaderSize

// EncodedSize returns the exact serialized length of the RPXE container
// WriteTo/AppendTo produce, so callers can size a destination buffer and
// serialize with a single allocation (or none).
func (ef *EncodedFrame) EncodedSize() int {
	return encodedHeaderSize + len(ef.Pix) + 4*len(ef.RowOffsets) + ef.Mask.SizeBytes()
}

// AppendTo appends the RPXE container (the same layout WriteTo emits) to dst
// and returns the extended slice. It performs no allocation when dst has
// EncodedSize() spare capacity.
func (ef *EncodedFrame) AppendTo(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, encodedMagic)
	dst = binary.LittleEndian.AppendUint32(dst, encodedVersionRaw)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ef.W))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ef.H))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ef.BytesPerPixel))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ef.FrameIndex))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ef.Pix)))
	dst = append(dst, ef.Pix...)
	for _, v := range ef.RowOffsets {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return append(dst, ef.Mask.Bytes()...)
}

// WriteTo serializes the encoded frame in a compact binary container so CLI
// tools can persist encoded streams. Layout: magic, version, W, H, bpp,
// frame index, payload length, payload, row offsets, mask bytes.
func (ef *EncodedFrame) WriteTo(w io.Writer) (int64, error) {
	var n int64
	hdr := make([]byte, 0, 32)
	hdr = binary.LittleEndian.AppendUint32(hdr, encodedMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, encodedVersionRaw)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(ef.W))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(ef.H))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(ef.BytesPerPixel))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(ef.FrameIndex))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(ef.Pix)))
	k, err := w.Write(hdr)
	n += int64(k)
	if err != nil {
		return n, err
	}
	k, err = w.Write(ef.Pix)
	n += int64(k)
	if err != nil {
		return n, err
	}
	offs := make([]byte, 4*len(ef.RowOffsets))
	for i, v := range ef.RowOffsets {
		binary.LittleEndian.PutUint32(offs[4*i:], v)
	}
	k, err = w.Write(offs)
	n += int64(k)
	if err != nil {
		return n, err
	}
	k, err = w.Write(ef.Mask.Bytes())
	n += int64(k)
	return n, err
}

// MaxFrameDim bounds the width and height a deserialized encoded frame may
// claim, matching the wire protocol's session-geometry cap. Untrusted
// headers beyond it are rejected rather than trusted for allocation sizing.
const MaxFrameDim = 1 << 15

// readChunk is the allocation granularity for length-prefixed reads of
// untrusted data: buffers grow as bytes actually arrive, so a hostile
// length field in a truncated input cannot force a large up-front
// allocation (it fails after at most one spare chunk).
const readChunk = 1 << 20

// readExact reads exactly n bytes from r, growing the buffer in bounded
// chunks.
func readExact(r io.Reader, n int) ([]byte, error) {
	if n <= readChunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, 0, readChunk)
	for len(buf) < n {
		m := min(readChunk, n-len(buf))
		start := len(buf)
		buf = append(buf, make([]byte, m)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// ReadEncodedFrame deserializes a frame written by WriteTo. The input is
// untrusted: structurally invalid or truncated data yields an error (never
// a panic), and allocations are bounded by the bytes actually present plus
// one chunk, so a hostile length prefix cannot force an over-allocation.
func ReadEncodedFrame(r io.Reader) (*EncodedFrame, error) {
	hdr := make([]byte, 28)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("core: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr) != encodedMagic {
		return nil, fmt.Errorf("core: bad magic %#x", binary.LittleEndian.Uint32(hdr))
	}
	v := binary.LittleEndian.Uint32(hdr[4:])
	if v != encodedVersionRaw && v != encodedVersionPacked {
		return nil, fmt.Errorf("core: unsupported version %d", v)
	}
	w := int(binary.LittleEndian.Uint32(hdr[8:]))
	h := int(binary.LittleEndian.Uint32(hdr[12:]))
	bpp := int(binary.LittleEndian.Uint32(hdr[16:]))
	idx := int(binary.LittleEndian.Uint32(hdr[20:]))
	payloadLen := int(binary.LittleEndian.Uint32(hdr[24:]))
	if w <= 0 || h <= 0 || w > MaxFrameDim || h > MaxFrameDim || bpp <= 0 || bpp > 4 {
		return nil, fmt.Errorf("core: unreasonable header %dx%d bpp=%d", w, h, bpp)
	}
	if !payloadLenOK(payloadLen, w, h, bpp) {
		return nil, fmt.Errorf("core: payload %d exceeds frame size", payloadLen)
	}
	ef := &EncodedFrame{W: w, H: h, BytesPerPixel: bpp, FrameIndex: idx}
	var err error
	if ef.Pix, err = readExact(r, payloadLen); err != nil {
		return nil, fmt.Errorf("core: short payload: %w", err)
	}
	if v == encodedVersionPacked {
		if err := readPackedMeta(r, ef); err != nil {
			return nil, err
		}
	} else {
		offs := make([]byte, 4*(h+1))
		if _, err := io.ReadFull(r, offs); err != nil {
			return nil, fmt.Errorf("core: short offsets: %w", err)
		}
		ef.RowOffsets = make([]uint32, h+1)
		for i := range ef.RowOffsets {
			ef.RowOffsets[i] = binary.LittleEndian.Uint32(offs[4*i:])
		}
		maskBytes, err := readExact(r, (w*h+3)/4)
		if err != nil {
			return nil, fmt.Errorf("core: short mask: %w", err)
		}
		mask, err := bitpack.FromBytes(maskBytes, w*h)
		if err != nil {
			return nil, err
		}
		ef.Mask = mask
	}
	if err := ef.Validate(); err != nil {
		return nil, fmt.Errorf("core: corrupt encoded frame: %w", err)
	}
	return ef, nil
}

// payloadLenOK reports whether a wire-declared payload length fits within
// the w x h x bpp frame it claims to come from. The comparison is in
// divide form because the product w*h*bpp can overflow the platform int on
// 32-bit targets (2^15 * 2^15 * 4 == 2^32), which would let a hostile
// length — itself negative after the uint32 -> int conversion — slip past
// a `payloadLen > w*h*bpp` check and reach allocation. Generic over the
// integer width so the regression test can pin the 32-bit behavior on any
// host; w and h must each be at most MaxFrameDim so w*h itself cannot
// overflow T.
func payloadLenOK[T int | int32 | int64](payloadLen, w, h, bpp T) bool {
	if payloadLen < 0 {
		return false
	}
	q := payloadLen / bpp
	return q < w*h || (q == w*h && payloadLen%bpp == 0)
}

// formatBPP maps a frame format to the encoder's pixel depth.
func formatBPP(f frame.Format) int { return f.BytesPerPixel() }
