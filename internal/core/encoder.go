package core

import (
	"fmt"

	"repro/internal/bitpack"
	"repro/internal/frame"
	"repro/internal/region"
)

// Encoder is the rhythmic pixel encoder (§4.1): a streaming block that
// intercepts the raster-scan pixel stream at the ISP output and forwards
// only pixels matching the stride and skip specification of some region.
//
// Architecture, mirroring Fig. 5:
//
//   - memory-mapped registers hold the y-sorted region label list
//     (SetRegionLabels);
//   - a Sequencer tracks the (row, pixel) location — here the PushRow /
//     per-pixel loop;
//   - once per row, the RoI Selector reduces the label list to the sublist
//     whose y-range covers the row;
//   - once per pixel, the Comparison Engine classifies the pixel into one of
//     the four EncMask codes;
//   - the Sampler forwards CodeR pixels to the packed output and the
//     metadata generators count per-row offsets and append EncMask codes.
//
// Pixels are classified with code precedence R > Sk > St > N (the numeric
// order of the 2-bit codes): a pixel covered by several regions takes the
// strongest classification any of them gives it.
//
// An Encoder is not safe for concurrent use.
type Encoder struct {
	w, h   int
	format frame.Format
	bpp    int

	labels region.List // y-sorted; the "memory-mapped register" contents

	// Per-frame streaming state.
	cur      *EncodedFrame
	row      int
	rowCodes []bitpack.Code // scratch: classification of the current row
	sublist  []int          // scratch: RoI Selector output (indices into labels)

	pool *FramePool // optional frame recycling; nil means allocate fresh

	stats EncoderStats
}

// EncoderStats counts the work the encoder performed, used by the scaling
// and ablation experiments (Table 5 discussion).
type EncoderStats struct {
	// FramesEncoded is the number of completed frames.
	FramesEncoded int
	// RowsProcessed is the number of raster rows consumed.
	RowsProcessed int
	// PixelsIn is the number of pixels consumed from the stream.
	PixelsIn int
	// PixelsOut is the number of pixels forwarded to the encoded frame.
	PixelsOut int
	// RoISelectorCompares counts y-range label examinations (once per row
	// per examined label; the sorted list allows early termination).
	RoISelectorCompares int
	// RegionPaintOps counts per-pixel classification writes while painting
	// row sublist regions (proportional to regional coverage, not W·regions).
	RegionPaintOps int
	// RowsWithNoRegions counts rows where the RoI selector emitted an empty
	// sublist and per-pixel comparison was skipped entirely.
	RowsWithNoRegions int
}

// NewEncoder returns an encoder for w x h frames of the given format.
func NewEncoder(w, h int, format frame.Format) *Encoder {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("core: invalid encoder dimensions %dx%d", w, h))
	}
	return &Encoder{
		w:        w,
		h:        h,
		format:   format,
		bpp:      formatBPP(format),
		rowCodes: make([]bitpack.Code, w),
	}
}

// SetRegionLabels installs a capture workload. The list is validated,
// cloned, and sorted by Y (the paper performs this pre-sort in the app
// runtime so the hardware RoI Selector can shortlist rows cheaply). Labels
// persist across frames until replaced.
func (e *Encoder) SetRegionLabels(ls region.List) error {
	if err := ls.Validate(e.w, e.h); err != nil {
		return err
	}
	e.labels = ls.Clone().SortByY()
	return nil
}

// Labels returns the installed y-sorted label list (shared storage; callers
// must not mutate it).
func (e *Encoder) Labels() region.List { return e.labels }

// Stats returns the accumulated work counters.
func (e *Encoder) Stats() EncoderStats { return e.stats }

// ResetStats zeroes the work counters.
func (e *Encoder) ResetStats() { e.stats = EncoderStats{} }

// SetFramePool installs a frame-recycling pool that BeginFrame draws output
// frames from. Frames the caller is done with must be returned via
// pool.Put; a nil pool restores fresh allocation per frame.
func (e *Encoder) SetFramePool(p *FramePool) { e.pool = p }

// BeginFrame starts streaming a new frame with the given temporal index.
// Any partially streamed frame is discarded.
func (e *Encoder) BeginFrame(frameIndex int) {
	ef := e.pool.Get(e.w, e.h, e.bpp)
	ef.FrameIndex = frameIndex
	ef.RowOffsets = append(ef.RowOffsets, 0)
	e.cur = ef
	e.row = 0
}

// PushRow consumes one raster line of w*bpp bytes. Rows must arrive in
// order; pushing more than h rows or a missized row panics, as a hardware
// stream mismatch would be a wiring bug rather than a runtime condition.
func (e *Encoder) PushRow(line []byte) {
	if e.cur == nil {
		panic("core: PushRow before BeginFrame")
	}
	if e.row >= e.h {
		panic(fmt.Sprintf("core: row %d pushed to %d-row frame", e.row, e.h))
	}
	if len(line) != e.w*e.bpp {
		panic(fmt.Sprintf("core: row is %d bytes, want %d", len(line), e.w*e.bpp))
	}
	y := e.row
	e.stats.RowsProcessed++
	e.stats.PixelsIn += e.w

	e.sublist = rowSublist(e.labels, y, e.sublist, &e.stats)

	maskBase := y * e.w
	if len(e.sublist) == 0 {
		// Entire row is non-regional: skip per-pixel comparison entirely
		// (the paper's "the encoder saves work by skipping region
		// comparison entirely for those rows where there are no regions").
		e.stats.RowsWithNoRegions++
		e.cur.RowOffsets = append(e.cur.RowOffsets, e.cur.RowOffsets[y])
		e.row++
		return
	}

	codes := e.rowCodes
	paintRowCodes(e.labels, e.sublist, codes, y, e.cur.FrameIndex, &e.stats)

	// Sampler: forward CodeR pixels and emit metadata.
	count := 0
	for x := 0; x < e.w; x++ {
		c := codes[x]
		if c != bitpack.CodeN {
			e.cur.Mask.Set(maskBase+x, c)
		}
		if c == bitpack.CodeR {
			e.cur.Pix = append(e.cur.Pix, line[x*e.bpp:(x+1)*e.bpp]...)
			count++
		}
	}
	e.stats.PixelsOut += count
	e.cur.RowOffsets = append(e.cur.RowOffsets, e.cur.RowOffsets[y]+uint32(count))
	e.row++
}

// EndFrame completes the stream and returns the encoded frame. It panics if
// fewer than h rows were pushed.
func (e *Encoder) EndFrame() *EncodedFrame {
	if e.cur == nil {
		panic("core: EndFrame before BeginFrame")
	}
	if e.row != e.h {
		panic(fmt.Sprintf("core: EndFrame after %d of %d rows", e.row, e.h))
	}
	ef := e.cur
	e.cur = nil
	e.stats.FramesEncoded++
	return ef
}

// rowSublist is the RoI Selector (§4.1) in function form: it fills dst with
// the indices of labels whose y-range covers row y. The list must be
// y-sorted, so scanning stops at the first label starting below the row. It
// is shared by the sequential Encoder (the reference implementation) and the
// row-band workers of ParallelEncoder; any change here changes both.
func rowSublist(labels region.List, y int, dst []int, stats *EncoderStats) []int {
	dst = dst[:0]
	for i, l := range labels {
		stats.RoISelectorCompares++
		if l.Y > y {
			break
		}
		if l.RowInYRange(y) {
			dst = append(dst, i)
		}
	}
	return dst
}

// paintRowCodes is the Comparison Engine (§4.1) in function form: it paints
// row y's classification into codes (length frame-width) from the sublist.
// Painting per region interval costs O(sum of region widths) rather than
// O(W x regions); the R/St lattice distinction is a cheap modulo. Pixels are
// classified with code precedence R > Sk > St > N. Shared by the sequential
// and parallel encoders.
func paintRowCodes(labels region.List, sublist []int, codes []bitpack.Code, y, frameIndex int, stats *EncoderStats) {
	for i := range codes {
		codes[i] = bitpack.CodeN
	}
	for _, li := range sublist {
		l := labels[li]
		x1 := l.X + l.W
		switch {
		case !l.ActiveAt(frameIndex):
			for x := l.X; x < x1; x++ {
				stats.RegionPaintOps++
				if codes[x] < bitpack.CodeSk {
					codes[x] = bitpack.CodeSk
				}
			}
		case l.Stride > 1 && (y-l.Y)%l.Stride != 0:
			// Row off the vertical stride lattice: all pixels strided.
			for x := l.X; x < x1; x++ {
				stats.RegionPaintOps++
				if codes[x] < bitpack.CodeSt {
					codes[x] = bitpack.CodeSt
				}
			}
		default:
			for x := l.X; x < x1; x++ {
				stats.RegionPaintOps++
				if l.Stride <= 1 || (x-l.X)%l.Stride == 0 {
					codes[x] = bitpack.CodeR
				} else if codes[x] < bitpack.CodeSt {
					codes[x] = bitpack.CodeSt
				}
			}
		}
	}
}

// EncodeFrame streams an entire frame through the encoder and returns the
// encoded result. The frame must match the encoder's dimensions and format.
func (e *Encoder) EncodeFrame(fr *frame.Frame, frameIndex int) (*EncodedFrame, error) {
	if fr.W != e.w || fr.H != e.h {
		return nil, fmt.Errorf("core: frame is %dx%d, encoder expects %dx%d", fr.W, fr.H, e.w, e.h)
	}
	if fr.Format != e.format {
		return nil, fmt.Errorf("core: frame format %v, encoder expects %v", fr.Format, e.format)
	}
	e.BeginFrame(frameIndex)
	stride := fr.Stride()
	for y := 0; y < e.h; y++ {
		e.PushRow(fr.Pix[y*stride : (y+1)*stride])
	}
	return e.EndFrame(), nil
}
