package core

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/frame"
	"repro/internal/region"
)

// Fuzz targets for the two untrusted decode surfaces owned by this package:
// the RPXE encoded-frame container and the RPXS stream container. Both
// guarantee error-never-panic on arbitrary bytes, with allocations bounded
// by the bytes actually present (see readExact) — the fuzzers double as
// regression tests for those bounds.

// fuzzEncodedSeed encodes a small synthetic frame so the corpus starts from
// structurally valid containers in both pixel formats.
func fuzzEncodedSeed(tb testing.TB, format frame.Format) []byte {
	tb.Helper()
	const w, h = 16, 12
	enc := NewEncoder(w, h, format)
	if err := enc.SetRegionLabels(region.List{
		{X: 2, Y: 1, W: 9, H: 7, Stride: 2, Skip: 1},
		{X: 0, Y: 8, W: w, H: 4, Stride: 1, Skip: 2},
	}); err != nil {
		tb.Fatal(err)
	}
	fr := frame.New(w, h, format)
	for i := range fr.Pix {
		fr.Pix[i] = byte(i * 7)
	}
	ef, err := enc.EncodeFrame(fr, 0)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ef.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadEncodedFrame(f *testing.F) {
	f.Add(fuzzEncodedSeed(f, frame.Gray8))
	f.Add(fuzzEncodedSeed(f, frame.RGB24))
	f.Add([]byte{0x45, 0x58, 0x50, 0x52}) // magic only, truncated header
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		ef, err := ReadEncodedFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that deserializes must satisfy the structural invariants
		// and survive a byte-identical round trip.
		if verr := ef.Validate(); verr != nil {
			t.Fatalf("accepted frame fails Validate: %v", verr)
		}
		var buf bytes.Buffer
		if _, werr := ef.WriteTo(&buf); werr != nil {
			t.Fatalf("re-serialize: %v", werr)
		}
		ef2, rerr := ReadEncodedFrame(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("round trip rejected: %v", rerr)
		}
		if ef2.W != ef.W || ef2.H != ef.H || !bytes.Equal(ef2.Pix, ef.Pix) || !ef2.Mask.Equal(ef.Mask) {
			t.Fatalf("round trip not identical")
		}
	})
}

// fuzzStreamSeed writes a short two-frame stream.
func fuzzStreamSeed(tb testing.TB) []byte {
	tb.Helper()
	const w, h = 16, 12
	enc := NewEncoder(w, h, frame.Gray8)
	if err := enc.SetRegionLabels(region.List{{X: 1, Y: 1, W: 10, H: 10, Stride: 1, Skip: 2}}); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	fr := frame.New(w, h, frame.Gray8)
	for i := 0; i < 2; i++ {
		for j := range fr.Pix {
			fr.Pix[j] = byte(i + j)
		}
		ef, err := enc.EncodeFrame(fr, i)
		if err != nil {
			tb.Fatal(err)
		}
		if err := sw.WriteFrame(ef); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

func FuzzStreamReader(f *testing.F) {
	f.Add(fuzzStreamSeed(f))
	f.Add([]byte{0x53, 0x58, 0x50, 0x52, 1, 0, 0, 0}) // magic + version, truncated
	f.Add(bytes.Repeat([]byte{0x00}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A hostile stream cannot make the reader loop forever on bounded
		// input, but cap the frame count anyway so the fuzzer's time goes
		// into parsing, not decoding pathological-but-valid megastreams.
		for i := 0; i < 16; i++ {
			ef, err := sr.ReadFrame()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if ef.W != sr.W || ef.H != sr.H {
				t.Fatalf("reader accepted frame geometry %dx%d in %dx%d stream", ef.W, ef.H, sr.W, sr.H)
			}
		}
	})
}
