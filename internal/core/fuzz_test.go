package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"repro/internal/frame"
	"repro/internal/region"
)

// Fuzz targets for the two untrusted decode surfaces owned by this package:
// the RPXE encoded-frame container and the RPXS stream container. Both
// guarantee error-never-panic on arbitrary bytes, with allocations bounded
// by the bytes actually present (see readExact) — the fuzzers double as
// regression tests for those bounds.

// fuzzEncodedSeed encodes a small synthetic frame so the corpus starts from
// structurally valid containers in both pixel formats.
func fuzzEncodedSeed(tb testing.TB, format frame.Format) []byte {
	tb.Helper()
	const w, h = 16, 12
	enc := NewEncoder(w, h, format)
	if err := enc.SetRegionLabels(region.List{
		{X: 2, Y: 1, W: 9, H: 7, Stride: 2, Skip: 1},
		{X: 0, Y: 8, W: w, H: 4, Stride: 1, Skip: 2},
	}); err != nil {
		tb.Fatal(err)
	}
	fr := frame.New(w, h, format)
	for i := range fr.Pix {
		fr.Pix[i] = byte(i * 7)
	}
	ef, err := enc.EncodeFrame(fr, 0)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ef.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzPackedSeed is fuzzEncodedSeed's frame in the RPXE v2 (packed
// metadata) container.
func fuzzPackedSeed(tb testing.TB, format frame.Format) []byte {
	tb.Helper()
	ef, err := ReadEncodedFrame(bytes.NewReader(fuzzEncodedSeed(tb, format)))
	if err != nil {
		tb.Fatal(err)
	}
	return ef.AppendPacked(nil)
}

// fuzzHostilePayloadLenSeed is the ISSUE 9 overflow regression as a corpus
// entry: maximum geometry with payloadLen 0x80000000, which wraps negative
// through the uint32->int conversion on 32-bit platforms while w*h*bpp
// wraps to 0 — the old multiply-form bound check accepted it.
func fuzzHostilePayloadLenSeed() []byte {
	hdr := make([]byte, 0, 28)
	hdr = binary.LittleEndian.AppendUint32(hdr, encodedMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, encodedVersionRaw)
	hdr = binary.LittleEndian.AppendUint32(hdr, MaxFrameDim)
	hdr = binary.LittleEndian.AppendUint32(hdr, MaxFrameDim)
	hdr = binary.LittleEndian.AppendUint32(hdr, 4)          // bpp
	hdr = binary.LittleEndian.AppendUint32(hdr, 0)          // frame index
	hdr = binary.LittleEndian.AppendUint32(hdr, 0x80000000) // payloadLen
	return hdr
}

// fuzzDirtyPaddingSeed is a valid 3x3 Gray8 v1 container except the mask's
// final-byte padding fields are nonzero — the FromBytes canonicalization
// regression (ISSUE 9) as a corpus entry.
func fuzzDirtyPaddingSeed() []byte {
	b := make([]byte, 0, 48)
	b = binary.LittleEndian.AppendUint32(b, encodedMagic)
	b = binary.LittleEndian.AppendUint32(b, encodedVersionRaw)
	b = binary.LittleEndian.AppendUint32(b, 3) // w
	b = binary.LittleEndian.AppendUint32(b, 3) // h
	b = binary.LittleEndian.AppendUint32(b, 1) // bpp
	b = binary.LittleEndian.AppendUint32(b, 0) // frame index
	b = binary.LittleEndian.AppendUint32(b, 0) // payloadLen: all-N frame
	for i := 0; i < 4; i++ {
		b = binary.LittleEndian.AppendUint32(b, 0) // row offsets
	}
	// 9 mask elements -> 3 bytes; codes all N but padding fields dirty.
	return append(b, 0x00, 0x00, 0xC0)
}

func FuzzReadEncodedFrame(f *testing.F) {
	f.Add(fuzzEncodedSeed(f, frame.Gray8))
	f.Add(fuzzEncodedSeed(f, frame.RGB24))
	f.Add(fuzzPackedSeed(f, frame.Gray8))
	f.Add(fuzzPackedSeed(f, frame.RGB24))
	f.Add(fuzzHostilePayloadLenSeed())
	f.Add(fuzzDirtyPaddingSeed())
	f.Add([]byte{0x45, 0x58, 0x50, 0x52}) // magic only, truncated header
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		ef, err := ReadEncodedFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that deserializes must satisfy the structural invariants
		// and survive a byte-identical round trip.
		if verr := ef.Validate(); verr != nil {
			t.Fatalf("accepted frame fails Validate: %v", verr)
		}
		var buf bytes.Buffer
		if _, werr := ef.WriteTo(&buf); werr != nil {
			t.Fatalf("re-serialize: %v", werr)
		}
		ef2, rerr := ReadEncodedFrame(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("round trip rejected: %v", rerr)
		}
		if ef2.W != ef.W || ef2.H != ef.H || !bytes.Equal(ef2.Pix, ef.Pix) || !ef2.Mask.Equal(ef.Mask) {
			t.Fatalf("round trip not identical")
		}
		// The packed container must round trip the same frame exactly:
		// pixels, row offsets, and mask codes.
		ef3, perr := ReadEncodedFrame(bytes.NewReader(ef.AppendPacked(nil)))
		if perr != nil {
			t.Fatalf("packed round trip rejected: %v", perr)
		}
		if ef3.W != ef.W || ef3.H != ef.H || !bytes.Equal(ef3.Pix, ef.Pix) || !ef3.Mask.Equal(ef.Mask) {
			t.Fatalf("packed round trip not identical")
		}
		for y := range ef.RowOffsets {
			if ef3.RowOffsets[y] != ef.RowOffsets[y] {
				t.Fatalf("packed round trip RowOffsets[%d] = %d, want %d", y, ef3.RowOffsets[y], ef.RowOffsets[y])
			}
		}
	})
}

// fuzzStreamSeed writes a short two-frame stream.
func fuzzStreamSeed(tb testing.TB) []byte {
	tb.Helper()
	const w, h = 16, 12
	enc := NewEncoder(w, h, frame.Gray8)
	if err := enc.SetRegionLabels(region.List{{X: 1, Y: 1, W: 10, H: 10, Stride: 1, Skip: 2}}); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	fr := frame.New(w, h, frame.Gray8)
	for i := 0; i < 2; i++ {
		for j := range fr.Pix {
			fr.Pix[j] = byte(i + j)
		}
		ef, err := enc.EncodeFrame(fr, i)
		if err != nil {
			tb.Fatal(err)
		}
		if err := sw.WriteFrame(ef); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

func FuzzStreamReader(f *testing.F) {
	f.Add(fuzzStreamSeed(f))
	f.Add([]byte{0x53, 0x58, 0x50, 0x52, 1, 0, 0, 0}) // magic + version, truncated
	f.Add(bytes.Repeat([]byte{0x00}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A hostile stream cannot make the reader loop forever on bounded
		// input, but cap the frame count anyway so the fuzzer's time goes
		// into parsing, not decoding pathological-but-valid megastreams.
		for i := 0; i < 16; i++ {
			ef, err := sr.ReadFrame()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if ef.W != sr.W || ef.H != sr.H {
				t.Fatalf("reader accepted frame geometry %dx%d in %dx%d stream", ef.W, ef.H, sr.W, sr.H)
			}
		}
	})
}
