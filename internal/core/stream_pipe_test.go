package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/region"
)

// These tests drive the .rpxs container across a net.Pipe, where reads are
// incremental and writer-paced — the shape rpxd relies on. A synchronous
// pipe also catches any reader that over-reads past a frame boundary: the
// writer side would block forever instead of round-tripping.

// pipeConns returns both ends of a net.Pipe with a test-scoped deadline so a
// deadlocked reader/writer pair fails fast instead of hanging the suite.
func pipeConns(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	cw, cr := net.Pipe()
	deadline := time.Now().Add(10 * time.Second)
	cw.SetDeadline(deadline)
	cr.SetDeadline(deadline)
	t.Cleanup(func() { cw.Close(); cr.Close() })
	return cw, cr
}

func TestStreamOverPipeRoundTrip(t *testing.T) {
	const w, h, frames = 32, 24, 6
	cw, cr := pipeConns(t)

	enc := NewEncoder(w, h, frame.Gray8)
	if err := enc.SetRegionLabels(region.List{{X: 4, Y: 4, W: 20, H: 16, Stride: 1, Skip: 2}}); err != nil {
		t.Fatal(err)
	}
	var inputs []*frame.Frame
	for i := 0; i < frames; i++ {
		inputs = append(inputs, testFrame(w, h, frame.Gray8, int64(300+i)))
	}

	writeErr := make(chan error, 1)
	go func() {
		defer cw.Close()
		sw := NewStreamWriter(cw)
		for i, fr := range inputs {
			ef, err := enc.EncodeFrame(fr, i)
			if err != nil {
				writeErr <- err
				return
			}
			if err := sw.WriteFrame(ef); err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- nil
	}()

	// Reference decode: the same frames through an in-process decoder.
	refDec := NewDecoder(w, h, frame.Gray8)
	refEnc := NewEncoder(w, h, frame.Gray8)
	if err := refEnc.SetRegionLabels(region.List{{X: 4, Y: 4, W: 20, H: 16, Stride: 1, Skip: 2}}); err != nil {
		t.Fatal(err)
	}

	n := 0
	err := DecodeStream(cr, frame.Gray8, func(idx int, dec *frame.Frame) error {
		ef, err := refEnc.EncodeFrame(inputs[idx], idx)
		if err != nil {
			return err
		}
		if err := refDec.Push(ef); err != nil {
			return err
		}
		want, err := refDec.DecodeFrame()
		if err != nil {
			return err
		}
		if !dec.Equal(want) {
			t.Errorf("frame %d: piped decode differs from in-process decode", idx)
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatalf("DecodeStream: %v", err)
	}
	if n != frames {
		t.Fatalf("decoded %d frames, want %d", n, frames)
	}
	if err := <-writeErr; err != nil {
		t.Fatalf("writer: %v", err)
	}
}

func TestStreamOverPipeTruncatedHeader(t *testing.T) {
	cw, cr := pipeConns(t)
	go func() {
		cw.Write([]byte{0x53, 0x58, 0x50, 0x52, 1, 0}) // 6 of 20 header bytes
		cw.Close()
	}()
	_, err := NewStreamReader(cr)
	if err == nil {
		t.Fatal("truncated header accepted")
	}
	if !strings.Contains(err.Error(), "short stream header") {
		t.Fatalf("err = %v, want short-header error", err)
	}
}

func TestStreamOverPipeBadMagic(t *testing.T) {
	cw, cr := pipeConns(t)
	go func() {
		hdr := make([]byte, 20)
		binary.LittleEndian.PutUint32(hdr, 0xDEADBEEF)
		binary.LittleEndian.PutUint32(hdr[4:], 1)
		cw.Write(hdr)
		cw.Close()
	}()
	if _, err := NewStreamReader(cr); err == nil || !strings.Contains(err.Error(), "bad stream magic") {
		t.Fatalf("err = %v, want bad-magic error", err)
	}
}

func TestStreamOverPipeMismatchedGeometry(t *testing.T) {
	// A stream whose header declares 16x16 but whose first frame is 8x8.
	// StreamWriter refuses to produce this, so splice it by hand.
	enc := NewEncoder(8, 8, frame.Gray8)
	if err := enc.SetRegionLabels(region.List{region.FullFrame(8, 8)}); err != nil {
		t.Fatal(err)
	}
	ef, err := enc.EncodeFrame(frame.New(8, 8, frame.Gray8), 0)
	if err != nil {
		t.Fatal(err)
	}
	var spliced bytes.Buffer
	hdr := make([]byte, 0, 20)
	hdr = binary.LittleEndian.AppendUint32(hdr, streamMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, 1)
	hdr = binary.LittleEndian.AppendUint32(hdr, 16)
	hdr = binary.LittleEndian.AppendUint32(hdr, 16)
	hdr = binary.LittleEndian.AppendUint32(hdr, 1)
	spliced.Write(hdr)
	if _, err := ef.WriteTo(&spliced); err != nil {
		t.Fatal(err)
	}

	cw, cr := pipeConns(t)
	go func() {
		cw.Write(spliced.Bytes())
		cw.Close()
	}()
	sr, err := NewStreamReader(cr)
	if err != nil {
		t.Fatal(err)
	}
	if sr.W != 16 || sr.H != 16 {
		t.Fatalf("header geometry = %dx%d, want 16x16", sr.W, sr.H)
	}
	if _, err := sr.ReadFrame(); err == nil || !strings.Contains(err.Error(), "geometry mismatch") {
		t.Fatalf("err = %v, want geometry-mismatch error", err)
	}
}

func TestStreamOverPipeTruncatedFrame(t *testing.T) {
	// A writer that dies mid-frame must surface a hard error, not io.EOF.
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	enc := NewEncoder(16, 16, frame.Gray8)
	if err := enc.SetRegionLabels(region.List{region.FullFrame(16, 16)}); err != nil {
		t.Fatal(err)
	}
	ef, err := enc.EncodeFrame(testFrame(16, 16, frame.Gray8, 400), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteFrame(ef); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cw, cr := pipeConns(t)
	go func() {
		cw.Write(full[:len(full)-7])
		cw.Close()
	}()
	sr, err := NewStreamReader(cr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.ReadFrame(); err == nil || err == io.EOF {
		t.Fatalf("truncated frame over pipe: err = %v, want hard error", err)
	}
}
