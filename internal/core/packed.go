package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bitpack"
)

// RPXE v2: the packed-metadata container.
//
// Version 1 serializes the decoder metadata raw — 4 bytes per row offset
// plus the 2 bpp EncMask, the paper's ~8% overhead (§3). Version 2 keeps
// the 28-byte header and pixel payload byte-identical but replaces the
// metadata tail with two length-prefixed blocks:
//
//	u32 offLen  | uvarint row-offset deltas (H values; RowOffsets[0] is 0)
//	u32 maskLen | packed mask (codec id + body, see bitpack.AppendPacked)
//
// Offsets are monotone with per-row deltas bounded by W, so deltas are
// small uvarints; the mask is RLE with a raw fallback. Both decode under
// hard caps derived from the header geometry, so a hostile length prefix
// cannot force an over-allocation. ReadEncodedFrame accepts both versions;
// which one a transport emits is negotiated at HELLO (wire.CodecPackedMask).

// RPXE container versions.
const (
	encodedVersionRaw    = 1 // raw row offsets + raw mask
	encodedVersionPacked = 2 // varint offset deltas + packed mask
)

// PackedMaxSize bounds the serialized length AppendPacked can produce, so
// pooled callers can size a scratch buffer once and reuse it without
// reallocating.
func (ef *EncodedFrame) PackedMaxSize() int {
	return encodedHeaderSize + len(ef.Pix) +
		4 + binary.MaxVarintLen32*ef.H +
		4 + bitpack.PackedMaxSize(ef.Mask.Len())
}

// AppendPacked appends the RPXE v2 container to dst and returns the
// extended slice. It performs no allocation when dst has PackedMaxSize()
// spare capacity. The raw container (AppendTo/WriteTo) remains the
// byte-identity reference form; this one trades encode work for wire bytes.
func (ef *EncodedFrame) AppendPacked(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, encodedMagic)
	dst = binary.LittleEndian.AppendUint32(dst, encodedVersionPacked)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ef.W))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ef.H))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ef.BytesPerPixel))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ef.FrameIndex))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ef.Pix)))
	dst = append(dst, ef.Pix...)

	offPos := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	var tmp [binary.MaxVarintLen32]byte
	for y := 0; y < ef.H; y++ {
		k := binary.PutUvarint(tmp[:], uint64(ef.RowOffsets[y+1]-ef.RowOffsets[y]))
		dst = append(dst, tmp[:k]...)
	}
	binary.LittleEndian.PutUint32(dst[offPos:], uint32(len(dst)-offPos-4))

	maskPos := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = bitpack.AppendPacked(dst, ef.Mask)
	binary.LittleEndian.PutUint32(dst[maskPos:], uint32(len(dst)-maskPos-4))
	return dst
}

// readU32 reads one little-endian length prefix.
func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// readPackedMeta reads the v2 metadata tail (offset-delta block then packed
// mask block) into ef, whose geometry the caller has already validated
// against MaxFrameDim. Both block lengths are capped by what the geometry
// can legitimately produce before any allocation happens.
func readPackedMeta(r io.Reader, ef *EncodedFrame) error {
	w, h := ef.W, ef.H

	offLen, err := readU32(r)
	if err != nil {
		return fmt.Errorf("core: short offset block length: %w", err)
	}
	if int64(offLen) > int64(binary.MaxVarintLen32)*int64(h) {
		return fmt.Errorf("core: offset block of %d bytes exceeds cap for %d rows", offLen, h)
	}
	offs, err := readExact(r, int(offLen))
	if err != nil {
		return fmt.Errorf("core: short offset block: %w", err)
	}
	ef.RowOffsets = make([]uint32, h+1)
	total := uint64(0)
	for y := 0; y < h; y++ {
		delta, k := binary.Uvarint(offs)
		if k <= 0 {
			return fmt.Errorf("core: malformed offset delta at row %d", y)
		}
		offs = offs[k:]
		if delta > uint64(w) {
			return fmt.Errorf("core: row %d offset delta %d exceeds width %d", y, delta, w)
		}
		total += delta
		ef.RowOffsets[y+1] = uint32(total)
	}
	if len(offs) != 0 {
		return fmt.Errorf("core: %d trailing bytes after offset deltas", len(offs))
	}

	maskLen, err := readU32(r)
	if err != nil {
		return fmt.Errorf("core: short mask block length: %w", err)
	}
	if int64(maskLen) > int64(bitpack.PackedMaxSize(w*h)) {
		return fmt.Errorf("core: mask block of %d bytes exceeds cap for %dx%d", maskLen, w, h)
	}
	maskBytes, err := readExact(r, int(maskLen))
	if err != nil {
		return fmt.Errorf("core: short mask block: %w", err)
	}
	mask, err := bitpack.DecodePacked(maskBytes, w*h)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	ef.Mask = mask
	return nil
}
