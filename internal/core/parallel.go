package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bitpack"
	"repro/internal/frame"
	"repro/internal/region"
)

// This file implements the row-sharded parallel encode path. The paper's
// encoder is a spatially streaming block whose per-row work — RoI sublist
// selection, per-pixel classification, packing — depends only on the row
// index, the label list, and the frame index, never on other rows. That
// makes row bands the natural parallel decomposition: each worker encodes a
// contiguous band into private buffers, and a cheap sequential stitch
// prefix-sums the per-row pixel counts into the global RowOffsets table.
// The output is byte-for-byte identical to the sequential Encoder, which
// remains the reference implementation (see differential_test.go).

// bandAlign is the row granularity of encode shards. The EncMask packs four
// 2-bit codes per byte, so a band boundary at a multiple of four rows sits
// at element index y*w ≡ 0 (mod 4) — a byte boundary for any frame width —
// and every worker owns a disjoint byte range of the shared mask, keeping
// concurrent Mask.Set read-modify-writes race-free.
const bandAlign = 4

// ParallelEncoder encodes frames by sharding rows across a pool of workers.
// It produces output byte-identical to the sequential Encoder for the same
// labels and frame. Like Encoder, a ParallelEncoder is not safe for
// concurrent use by multiple callers; the parallelism is internal to each
// EncodeFrame call.
type ParallelEncoder struct {
	w, h   int
	format frame.Format
	bpp    int
	n      int

	labels region.List

	bands   [][2]int // [y0, y1) row ranges, fixed at construction
	workers []*encodeWorker

	pool *FramePool // optional frame recycling; nil means allocate fresh

	stats EncoderStats
}

// encodeWorker holds one band worker's reusable scratch, so steady-state
// encoding allocates only the output frame.
type encodeWorker struct {
	rowCodes []bitpack.Code
	sublist  []int
	payload  []byte   // packed CodeR pixels of the band, raster order
	counts   []uint32 // per-row CodeR pixel counts within the band
	stats    EncoderStats
}

// NewParallelEncoder returns an encoder for w x h frames of the given
// format that shards each frame into up to n row bands (n <= 0 selects
// GOMAXPROCS). n = 1 degenerates to a single band, i.e. sequential work
// with the parallel bookkeeping.
func NewParallelEncoder(w, h int, format frame.Format, n int) *ParallelEncoder {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("core: invalid encoder dimensions %dx%d", w, h))
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &ParallelEncoder{w: w, h: h, format: format, bpp: formatBPP(format), n: n}
	// Rows per band: ceil(h/n) rounded up to the mask alignment. The last
	// band may be short; band count never exceeds n.
	rows := (h + n - 1) / n
	rows = (rows + bandAlign - 1) / bandAlign * bandAlign
	for y := 0; y < h; y += rows {
		p.bands = append(p.bands, [2]int{y, min(y+rows, h)})
	}
	p.workers = make([]*encodeWorker, len(p.bands))
	for i := range p.workers {
		p.workers[i] = &encodeWorker{rowCodes: make([]bitpack.Code, w)}
	}
	return p
}

// Parallelism returns the configured worker count.
func (p *ParallelEncoder) Parallelism() int { return p.n }

// Bands returns the number of row bands a frame is sharded into.
func (p *ParallelEncoder) Bands() int { return len(p.bands) }

// SetRegionLabels installs a capture workload, mirroring
// Encoder.SetRegionLabels: validated, cloned, y-sorted, persistent across
// frames until replaced.
func (p *ParallelEncoder) SetRegionLabels(ls region.List) error {
	if err := ls.Validate(p.w, p.h); err != nil {
		return err
	}
	p.labels = ls.Clone().SortByY()
	return nil
}

// Labels returns the installed y-sorted label list (shared storage; callers
// must not mutate it).
func (p *ParallelEncoder) Labels() region.List { return p.labels }

// Stats returns the accumulated work counters, summed across workers. The
// totals are identical to what the sequential Encoder reports for the same
// inputs: every counter is a per-row quantity and every row is processed
// exactly once.
func (p *ParallelEncoder) Stats() EncoderStats { return p.stats }

// ResetStats zeroes the work counters.
func (p *ParallelEncoder) ResetStats() { p.stats = EncoderStats{} }

// SetFramePool installs a frame-recycling pool that EncodeFrame draws output
// frames from. Frames the caller is done with must be returned via
// pool.Put; a nil pool restores fresh allocation per frame.
func (p *ParallelEncoder) SetFramePool(fp *FramePool) { p.pool = fp }

// EncodeFrame encodes an entire frame and returns the result. The frame
// must match the encoder's dimensions and format. Band workers run
// concurrently; the call returns after all bands are stitched.
func (p *ParallelEncoder) EncodeFrame(fr *frame.Frame, frameIndex int) (*EncodedFrame, error) {
	if fr.W != p.w || fr.H != p.h {
		return nil, fmt.Errorf("core: frame is %dx%d, encoder expects %dx%d", fr.W, fr.H, p.w, p.h)
	}
	if fr.Format != p.format {
		return nil, fmt.Errorf("core: frame format %v, encoder expects %v", fr.Format, p.format)
	}
	ef := p.pool.Get(p.w, p.h, p.bpp)
	ef.FrameIndex = frameIndex
	// Stitching fills every entry by index, so size the table up front; the
	// pool guarantees the capacity.
	ef.RowOffsets = ef.RowOffsets[:0]
	for i := 0; i <= p.h; i++ {
		ef.RowOffsets = append(ef.RowOffsets, 0)
	}
	stride := fr.Stride()

	if len(p.bands) == 1 {
		p.encodeBand(p.workers[0], fr, ef, frameIndex, p.bands[0][0], p.bands[0][1], stride)
	} else {
		var wg sync.WaitGroup
		for bi := range p.bands {
			wg.Add(1)
			go func(bi int) {
				defer wg.Done()
				p.encodeBand(p.workers[bi], fr, ef, frameIndex, p.bands[bi][0], p.bands[bi][1], stride)
			}(bi)
		}
		wg.Wait()
	}

	// Stitch: rebase per-row offsets by prefix-summing band pixel counts in
	// raster order, then concatenate band payloads. The EncMask needs no
	// stitching — workers wrote disjoint byte ranges of the shared mask.
	var off uint32
	total := 0
	for bi, b := range p.bands {
		w := p.workers[bi]
		for r := 0; r < b[1]-b[0]; r++ {
			ef.RowOffsets[b[0]+r] = off
			off += w.counts[r]
		}
		total += len(w.payload)
	}
	ef.RowOffsets[p.h] = off
	if cap(ef.Pix) < total {
		ef.Pix = make([]byte, 0, total)
	} else {
		ef.Pix = ef.Pix[:0]
	}
	for bi := range p.bands {
		ef.Pix = append(ef.Pix, p.workers[bi].payload...)
	}

	p.stats.FramesEncoded++
	for bi := range p.bands {
		st := &p.workers[bi].stats
		p.stats.RowsProcessed += st.RowsProcessed
		p.stats.PixelsIn += st.PixelsIn
		p.stats.PixelsOut += st.PixelsOut
		p.stats.RoISelectorCompares += st.RoISelectorCompares
		p.stats.RegionPaintOps += st.RegionPaintOps
		p.stats.RowsWithNoRegions += st.RowsWithNoRegions
	}
	return ef, nil
}

// encodeBand runs the sequential per-row pipeline — RoI sublist, paint,
// sample — over rows [y0, y1), packing into the worker's private payload
// and writing mask codes into the band's exclusively owned byte range of
// the shared EncMask.
func (p *ParallelEncoder) encodeBand(w *encodeWorker, fr *frame.Frame, ef *EncodedFrame, frameIndex, y0, y1, stride int) {
	w.payload = w.payload[:0]
	if cap(w.counts) < y1-y0 {
		w.counts = make([]uint32, y1-y0)
	} else {
		w.counts = w.counts[:y1-y0]
	}
	w.stats = EncoderStats{}

	for y := y0; y < y1; y++ {
		w.stats.RowsProcessed++
		w.stats.PixelsIn += p.w
		w.sublist = rowSublist(p.labels, y, w.sublist, &w.stats)
		if len(w.sublist) == 0 {
			w.stats.RowsWithNoRegions++
			w.counts[y-y0] = 0
			continue
		}
		paintRowCodes(p.labels, w.sublist, w.rowCodes, y, frameIndex, &w.stats)

		line := fr.Pix[y*stride : (y+1)*stride]
		maskBase := y * p.w
		count := 0
		for x := 0; x < p.w; x++ {
			c := w.rowCodes[x]
			if c != bitpack.CodeN {
				ef.Mask.Set(maskBase+x, c)
			}
			if c == bitpack.CodeR {
				w.payload = append(w.payload, line[x*p.bpp:(x+1)*p.bpp]...)
				count++
			}
		}
		w.stats.PixelsOut += count
		w.counts[y-y0] = uint32(count)
	}
}
