package core

import (
	"bytes"
	"testing"

	"repro/internal/frame"
	"repro/internal/region"
)

func busFixture(t *testing.T) (*Bus, *frame.Frame) {
	t.Helper()
	const w, h = 16, 8
	fr := testFrame(w, h, frame.Gray8, 1000)
	enc := NewEncoder(w, h, frame.Gray8)
	if err := enc.SetRegionLabels(region.List{{X: 4, Y: 2, W: 8, H: 4, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, enc, fr, 0)
	dec := NewDecoder(w, h, frame.Gray8)
	if err := dec.Push(ef); err != nil {
		t.Fatal(err)
	}
	backing := make([]byte, 4096)
	for i := range backing {
		backing[i] = byte(i)
	}
	return NewBus(dec, 0x800, backing), fr
}

func TestBusPixelRead(t *testing.T) {
	bus, fr := busFixture(t)
	// Row 3, columns 4..12 — inside the region: decoded pixels.
	addr := uint64(0x800 + 3*16 + 4)
	got, err := bus.Read(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := fr.Pix[3*16+4 : 3*16+12]
	if !bytes.Equal(got, want) {
		t.Errorf("pixel read = %v, want %v", got, want)
	}
	// Outside the region but inside the framebuffer: black.
	got2, err := bus.Read(0x800, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got2 {
		if v != 0 {
			t.Errorf("non-regional read = %v, want black", got2)
			break
		}
	}
	if bus.PixelTxns() != 2 || bus.BypassTxns() != 0 {
		t.Errorf("txn counts: pixel=%d bypass=%d", bus.PixelTxns(), bus.BypassTxns())
	}
}

func TestBusBypassRead(t *testing.T) {
	bus, _ := busFixture(t)
	got, err := bus.Read(0x100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0x00, 0x01, 0x02, 0x03}) {
		t.Errorf("bypass read = %v", got)
	}
	// Above the framebuffer window: also bypass.
	if _, err := bus.Read(0x900, 4); err != nil {
		t.Fatal(err)
	}
	if bus.BypassTxns() != 2 || bus.PixelTxns() != 0 {
		t.Errorf("txn counts: pixel=%d bypass=%d", bus.PixelTxns(), bus.BypassTxns())
	}
}

func TestBusErrors(t *testing.T) {
	bus, _ := busFixture(t)
	if _, err := bus.Read(0x800, 0); err == nil {
		t.Error("zero-length read accepted")
	}
	// Row-crossing pixel read.
	if _, err := bus.Read(0x800+14, 4); err == nil {
		t.Error("row-crossing pixel read accepted")
	}
	// Beyond backing memory.
	if _, err := bus.Read(5000, 4); err == nil {
		t.Error("out-of-backing read accepted")
	}
}

func TestBusMatchesFullDecode(t *testing.T) {
	bus, _ := busFixture(t)
	full, err := bus.dec.DecodeFrame()
	if err != nil {
		t.Fatal(err)
	}
	// Reading every row through the bus reproduces the full decode.
	for y := 0; y < 8; y++ {
		got, err := bus.Read(uint64(0x800+y*16), 16)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, full.Pix[y*16:(y+1)*16]) {
			t.Fatalf("row %d bus read differs from full decode", y)
		}
	}
}
