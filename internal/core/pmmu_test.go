package core

import (
	"testing"

	"repro/internal/bitpack"
	"repro/internal/frame"
	"repro/internal/region"
)

func pmmuFixture(t *testing.T) (*EncodedFrame, *PMMU) {
	t.Helper()
	const w, h = 16, 8
	fr := testFrame(w, h, frame.Gray8, 70)
	e := NewEncoder(w, h, frame.Gray8)
	// Region covering columns 4..11 of rows 2..5 at full density.
	if err := e.SetRegionLabels(region.List{{X: 4, Y: 2, W: 8, H: 4, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, fr, 0)
	return ef, NewPMMU([]*EncodedFrame{ef}, 0x1000)
}

func TestPMMUOutOfFrameBypass(t *testing.T) {
	_, p := pmmuFixture(t)
	// Below the framebuffer base: bypass.
	subs, pixel, err := p.TranslateAddr(0x500, 4)
	if err != nil || pixel || subs != nil {
		t.Errorf("below-base access: subs=%v pixel=%v err=%v, want bypass", subs, pixel, err)
	}
	// Beyond the framebuffer end (16*8 bytes at base 0x1000): bypass.
	if _, pixel, _ := p.TranslateAddr(0x1000+16*8, 4); pixel {
		t.Error("past-end access treated as pixel transaction")
	}
	// Straddling the end: bypass.
	if _, pixel, _ := p.TranslateAddr(0x1000+16*8-2, 4); pixel {
		t.Error("straddling access treated as pixel transaction")
	}
	if p.Stats().Bypassed != 3 {
		t.Errorf("Bypassed = %d, want 3", p.Stats().Bypassed)
	}
}

func TestPMMUPixelTransaction(t *testing.T) {
	ef, p := pmmuFixture(t)
	// Row 3, columns 4..11 — the full regional span.
	addr := uint64(0x1000 + 3*16 + 4)
	subs, pixel, err := p.TranslateAddr(addr, 8)
	if err != nil || !pixel {
		t.Fatalf("pixel transaction failed: pixel=%v err=%v", pixel, err)
	}
	if len(subs) != 1 {
		t.Fatalf("got %d sub-requests, want 1 merged run: %+v", len(subs), subs)
	}
	s := subs[0]
	if s.Code != bitpack.CodeR || s.Source != 0 || s.Count != 8 || s.X != 4 || s.Y != 3 {
		t.Errorf("sub-request = %+v", s)
	}
	// EncIndex should be row 3's offset (row 2 contributed 8 pixels).
	if s.EncIndex != int(ef.RowOffsets[3]) {
		t.Errorf("EncIndex = %d, want %d", s.EncIndex, ef.RowOffsets[3])
	}
}

func TestPMMUMixedRun(t *testing.T) {
	_, p := pmmuFixture(t)
	// Row 3, columns 0..16: N(0..4) R(4..12) N(12..16) → 3 sub-requests.
	subs, err := p.TranslateRow(3, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 {
		t.Fatalf("got %d sub-requests: %+v", len(subs), subs)
	}
	if subs[0].Code != bitpack.CodeN || subs[0].Count != 4 ||
		subs[1].Code != bitpack.CodeR || subs[1].Count != 8 ||
		subs[2].Code != bitpack.CodeN || subs[2].Count != 4 {
		t.Errorf("sub-requests = %+v", subs)
	}
}

func TestPMMUErrors(t *testing.T) {
	_, p := pmmuFixture(t)
	if _, _, err := p.TranslateAddr(0x1000+3*16+14, 4); err == nil {
		t.Error("row-crossing transaction accepted")
	}
	if _, err := p.TranslateRow(99, 0, 4); err == nil {
		t.Error("bad row accepted")
	}
	if _, err := p.TranslateRow(0, 8, 4); err == nil {
		t.Error("inverted run accepted")
	}
	// Misalignment only possible with bpp > 1.
	fr := testFrame(8, 4, frame.RGB24, 71)
	e := NewEncoder(8, 4, frame.RGB24)
	if err := e.SetRegionLabels(region.List{region.FullFrame(8, 4)}); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, fr, 0)
	p3 := NewPMMU([]*EncodedFrame{ef}, 0)
	if _, _, err := p3.TranslateAddr(1, 3); err == nil {
		t.Error("misaligned RGB transaction accepted")
	}
}

func TestPMMUSkResolution(t *testing.T) {
	const w, h = 8, 4
	e := NewEncoder(w, h, frame.Gray8)
	if err := e.SetRegionLabels(region.List{{X: 0, Y: 0, W: 8, H: 4, Stride: 1, Skip: 2}}); err != nil {
		t.Fatal(err)
	}
	fr0 := testFrame(w, h, frame.Gray8, 72)
	ef0 := mustEncode(t, e, fr0, 0) // active
	ef1 := mustEncode(t, e, fr0, 1) // skipped
	p := NewPMMU([]*EncodedFrame{ef1, ef0}, 0)
	subs, err := p.TranslateRow(1, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 {
		t.Fatalf("got %d sub-requests: %+v", len(subs), subs)
	}
	if subs[0].Code != bitpack.CodeSk || subs[0].Source != 1 || subs[0].Count != 8 {
		t.Errorf("Sk sub-request = %+v, want source=1 count=8", subs[0])
	}
	if subs[0].EncIndex != int(ef0.RowOffsets[1]) {
		t.Errorf("EncIndex = %d, want row-1 offset %d", subs[0].EncIndex, ef0.RowOffsets[1])
	}
}

func TestPMMUSkResolvesToStInHistory(t *testing.T) {
	// Region with stride 2 and skip 2: on the skipped frame, a pixel that
	// was St in the hosting frame resolves to a hold, not a fetch.
	const w, h = 8, 4
	e := NewEncoder(w, h, frame.Gray8)
	if err := e.SetRegionLabels(region.List{{X: 0, Y: 0, W: 8, H: 4, Stride: 2, Skip: 2}}); err != nil {
		t.Fatal(err)
	}
	fr := testFrame(w, h, frame.Gray8, 73)
	ef0 := mustEncode(t, e, fr, 0)
	ef1 := mustEncode(t, e, fr, 1)
	p := NewPMMU([]*EncodedFrame{ef1, ef0}, 0)
	subs, err := p.TranslateRow(0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Column 0: Sk→R(history). Column 1: Sk→St(history)→hold. Etc.
	var kinds []bitpack.Code
	for _, s := range subs {
		for i := 0; i < s.Count; i++ {
			kinds = append(kinds, s.Code)
		}
	}
	want := []bitpack.Code{bitpack.CodeSk, bitpack.CodeSt, bitpack.CodeSk, bitpack.CodeSt}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("column %d resolution = %v, want %v (all: %v)", i, kinds[i], k, kinds)
		}
	}
}

func TestPMMUInFrameOverflow(t *testing.T) {
	_, p := pmmuFixture(t) // 16x8 Gray8 framebuffer at base 0x1000
	// Adversarial address near the top of the address space: addr+length
	// wraps to a tiny value, which the pre-fix check accepted as in-frame.
	addr := ^uint64(0) - 2
	if p.InFrame(addr, 4) {
		t.Error("wrapping addr+length accepted as in-frame")
	}
	subs, pixel, err := p.TranslateAddr(addr, 4)
	if err != nil || pixel || subs != nil {
		t.Errorf("wrapping transaction: subs=%v pixel=%v err=%v, want clean bypass", subs, pixel, err)
	}
	if got := p.Stats().Bypassed; got != 1 {
		t.Errorf("Bypassed = %d, want 1", got)
	}
	// A length that wraps on its own from a valid in-frame address.
	if p.InFrame(0x1000, 1<<40) {
		t.Error("oversized length accepted as in-frame")
	}
	if p.InFrame(0x1000, -1) {
		t.Error("negative length accepted as in-frame")
	}
	// Sanity: legitimate bounds still pass.
	if !p.InFrame(0x1000, 16*8) || !p.InFrame(0x1000+16*8-4, 4) {
		t.Error("valid in-frame transactions rejected")
	}
}

// metaFixture builds a two-frame history (both frames fully captured inside
// the region, columns 4..11 of rows 2..5) so metadata accounting can be
// pinned exactly.
func metaFixture(t *testing.T) *PMMU {
	t.Helper()
	const w, h = 16, 8
	e := NewEncoder(w, h, frame.Gray8)
	if err := e.SetRegionLabels(region.List{{X: 4, Y: 2, W: 8, H: 4, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	fr := testFrame(w, h, frame.Gray8, 74)
	ef0 := mustEncode(t, e, fr, 0)
	ef1 := mustEncode(t, e, fr, 1)
	return NewPMMU([]*EncodedFrame{ef1, ef0}, 0)
}

// TestPMMUMetadataAccountingLazy pins the exact MetadataBitsRead charge for
// a run of R pixels with a nonzero column origin: 8 bits per fast-path
// group of four codes, plus one 2*x0-bit prefix scan for the newest frame
// the first time its R-count cursor is consulted. The history frame is
// never consulted (no Sk pixel), so it must charge nothing — the pre-fix
// eager cursor init charged 2*x0 bits per history frame per row regardless.
func TestPMMUMetadataAccountingLazy(t *testing.T) {
	p := metaFixture(t)
	// Row 3, columns [4,12): R R R R | R R R R, both groups byte-aligned.
	subs, err := p.TranslateRow(3, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].Count != 8 {
		t.Fatalf("sub-requests = %+v, want one merged run of 8", subs)
	}
	// 2 fast-path groups x 8 bits + frame-0 prefix scan of 2*4 bits = 24.
	if got := p.Stats().MetadataBitsRead; got != 24 {
		t.Errorf("MetadataBitsRead = %d, want exactly 24", got)
	}
}

// TestPMMUMetadataAccountingNoFetch pins the charge for a run that fetches
// nothing: only the examined codes are charged, and no R-count cursor (not
// even the newest frame's) performs its prefix scan.
func TestPMMUMetadataAccountingNoFetch(t *testing.T) {
	p := metaFixture(t)
	// Row 0 is outside the region: columns [4,8) are one N N N N group.
	subs, err := p.TranslateRow(0, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].Code != bitpack.CodeN {
		t.Fatalf("sub-requests = %+v, want one N run", subs)
	}
	if got := p.Stats().MetadataBitsRead; got != 8 {
		t.Errorf("MetadataBitsRead = %d, want exactly 8 (no cursor prefix scans)", got)
	}
}

// TestPMMUMetadataAccountingSk pins the charge when an Sk pixel consults
// history: the hosting frame's cursor pays its prefix scan once, and
// unconsulted deeper frames pay nothing.
func TestPMMUMetadataAccountingSk(t *testing.T) {
	const w, h = 8, 4
	e := NewEncoder(w, h, frame.Gray8)
	// Full-frame region, skip 2: frame 0 captures, frame 1 skips.
	if err := e.SetRegionLabels(region.List{{X: 0, Y: 0, W: 8, H: 4, Stride: 1, Skip: 2}}); err != nil {
		t.Fatal(err)
	}
	fr := testFrame(w, h, frame.Gray8, 75)
	ef0 := mustEncode(t, e, fr, 0) // active: all R
	ef1 := mustEncode(t, e, fr, 1) // skipped: all Sk
	p := NewPMMU([]*EncodedFrame{ef1, ef0}, 0)
	// Row 1, columns [2,4): two Sk pixels (not byte-aligned at x=2), each
	// charging 2 bits (own code) + 2 bits (frame-1 history probe); frame 1's
	// cursor prefix scan charges 2*x0 = 4 bits once.
	subs, err := p.TranslateRow(1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].Code != bitpack.CodeSk || subs[0].Source != 1 {
		t.Fatalf("sub-requests = %+v, want one Sk run from frame 1", subs)
	}
	if got := p.Stats().MetadataBitsRead; got != 2*2+2*2+4 {
		t.Errorf("MetadataBitsRead = %d, want exactly 12", got)
	}
}

func TestPMMUStats(t *testing.T) {
	_, p := pmmuFixture(t)
	if _, err := p.TranslateRow(3, 0, 16); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.SubRequests != 3 {
		t.Errorf("SubRequests = %d, want 3", s.SubRequests)
	}
	if s.MetadataBitsRead < 32 { // at least 2 bits per examined pixel
		t.Errorf("MetadataBitsRead = %d, want >= 32", s.MetadataBitsRead)
	}
}
