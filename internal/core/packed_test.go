package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitpack"
	"repro/internal/frame"
	"repro/internal/region"
)

// testEncodedFrame encodes one structured frame for container tests.
func testEncodedFrame(t *testing.T, format frame.Format) *EncodedFrame {
	t.Helper()
	const w, h = 64, 48
	enc := NewEncoder(w, h, format)
	if err := enc.SetRegionLabels(region.List{
		{X: 8, Y: 4, W: 40, H: 30, Stride: 2, Skip: 1},
		{X: 0, Y: 40, W: w, H: 8, Stride: 1, Skip: 2},
	}); err != nil {
		t.Fatal(err)
	}
	fr := frame.New(w, h, format)
	for i := range fr.Pix {
		fr.Pix[i] = byte(i*13 + 5)
	}
	ef, err := enc.EncodeFrame(fr, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ef
}

func TestPackedContainerRoundTrip(t *testing.T) {
	for _, format := range []frame.Format{frame.Gray8, frame.RGB24} {
		ef := testEncodedFrame(t, format)
		packed := ef.AppendPacked(nil)
		if len(packed) > ef.PackedMaxSize() {
			t.Fatalf("%v: packed %d bytes exceeds PackedMaxSize %d", format, len(packed), ef.PackedMaxSize())
		}
		got, err := ReadEncodedFrame(bytes.NewReader(packed))
		if err != nil {
			t.Fatalf("%v: read packed: %v", format, err)
		}
		if got.W != ef.W || got.H != ef.H || got.BytesPerPixel != ef.BytesPerPixel || got.FrameIndex != ef.FrameIndex {
			t.Fatalf("%v: header fields changed in round trip", format)
		}
		encodedEqual(t, format.String(), ef, got)
		// The raw container stays the byte-identity reference: re-serializing
		// the packed round trip in v1 form must equal the original v1 bytes.
		if !bytes.Equal(got.AppendTo(nil), ef.AppendTo(nil)) {
			t.Fatalf("%v: raw re-serialization differs after packed round trip", format)
		}
	}
}

// TestPackedContainerShrinksMetadata pins the tentpole's point: on a
// region workload at a realistic geometry (full-stride regions over QVGA,
// as the BENCH_maskcodec rows use) the v2 metadata tail is at least 3x
// smaller than the v1 raw offsets + mask. Stride-2 masks alternate R/St
// per pixel and compress worse — the bound for those is PackedMaxSize, not
// this ratio.
func TestPackedContainerShrinksMetadata(t *testing.T) {
	const w, h = 320, 240
	enc := NewEncoder(w, h, frame.Gray8)
	if err := enc.SetRegionLabels(region.List{
		{X: 80, Y: 60, W: 160, H: 120, Stride: 1, Skip: 1},
		{X: 20, Y: 200, W: 120, H: 30, Stride: 1, Skip: 2},
	}); err != nil {
		t.Fatal(err)
	}
	fr := frame.New(w, h, frame.Gray8)
	for i := range fr.Pix {
		fr.Pix[i] = byte(i * 31)
	}
	ef, err := enc.EncodeFrame(fr, 0)
	if err != nil {
		t.Fatal(err)
	}
	rawMeta := ef.EncodedSize() - encodedHeaderSize - len(ef.Pix)
	packedMeta := len(ef.AppendPacked(nil)) - encodedHeaderSize - len(ef.Pix)
	if packedMeta*3 > rawMeta {
		t.Fatalf("packed metadata %d bytes, want <= raw/3 (%d/3 = %d)", packedMeta, rawMeta, rawMeta/3)
	}
}

// TestReadPackedMetaHostile: every malformed v2 tail must be rejected with
// an error, never a panic or an unbounded allocation.
func TestReadPackedMetaHostile(t *testing.T) {
	ef := testEncodedFrame(t, frame.Gray8)
	good := ef.AppendPacked(nil)
	payloadEnd := encodedHeaderSize + len(ef.Pix)
	offLen := int(binary.LittleEndian.Uint32(good[payloadEnd:]))
	maskPos := payloadEnd + 4 + offLen

	mutate := func(name string, fn func(b []byte) []byte) {
		b := fn(append([]byte(nil), good...))
		if _, err := ReadEncodedFrame(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: hostile v2 container accepted", name)
		}
	}
	mutate("truncated offset block length", func(b []byte) []byte { return b[:payloadEnd+2] })
	mutate("offset block length over cap", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[payloadEnd:], 0xFFFFFFFF)
		return b
	})
	mutate("truncated offset block", func(b []byte) []byte { return b[:payloadEnd+4+1] })
	mutate("delta exceeds width", func(b []byte) []byte {
		// Replace the offset block with h uvarint deltas just beyond W.
		var blk []byte
		var tmp [binary.MaxVarintLen32]byte
		for y := 0; y < ef.H; y++ {
			k := binary.PutUvarint(tmp[:], uint64(ef.W)+1)
			blk = append(blk, tmp[:k]...)
		}
		out := append([]byte(nil), b[:payloadEnd]...)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(blk)))
		out = append(out, blk...)
		return append(out, b[maskPos:]...)
	})
	mutate("trailing bytes after deltas", func(b []byte) []byte {
		out := append([]byte(nil), b[:payloadEnd]...)
		out = binary.LittleEndian.AppendUint32(out, uint32(offLen+1))
		out = append(out, b[payloadEnd+4:payloadEnd+4+offLen]...)
		out = append(out, 0x00)
		return append(out, b[maskPos:]...)
	})
	mutate("truncated mask block length", func(b []byte) []byte { return b[:maskPos+2] })
	mutate("mask block length over cap", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[maskPos:], 0xFFFFFFFF)
		return b
	})
	mutate("truncated mask block", func(b []byte) []byte { return b[:len(b)-1] })
	mutate("unknown mask codec", func(b []byte) []byte {
		b[maskPos+4] = 0x3F
		return b
	})
	mutate("mask disagrees with offsets", func(b []byte) []byte {
		// A valid all-N RLE mask whose R counts contradict the offsets.
		var tmp [binary.MaxVarintLen64]byte
		k := binary.PutUvarint(tmp[:], uint64(ef.W*ef.H-1)<<2|uint64(bitpack.CodeN))
		blk := append([]byte{bitpack.MaskCodecRLE}, tmp[:k]...)
		out := append([]byte(nil), b[:maskPos]...)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(blk)))
		return append(out, blk...)
	})

	// The unmutated container still parses (the mutators copy).
	if _, err := ReadEncodedFrame(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine v2 container rejected: %v", err)
	}
}

// Regression (ISSUE 9 satellite): the payload-length bound used to be
// `payloadLen > w*h*bpp`, whose product overflows a 32-bit int at the
// maximum geometry (2^15 * 2^15 * 4 == 2^32 wraps to 0) — and a hostile
// length of 0x80000000 arrives negative through the uint32->int conversion,
// so `negative > 0` let it through to allocation. payloadLenOK is generic
// so this test pins the 32-bit arithmetic on any host.
func TestPayloadLenCheckOverflow32Bit(t *testing.T) {
	var w, h, bpp int32 = MaxFrameDim, MaxFrameDim, 4
	hostile := int32(math.MinInt32) // int32(uint32(0x80000000))

	// Demonstrate the old check's failure mode: the product wraps to 0 and
	// the comparison accepts the hostile length.
	if product := w * h * bpp; product != 0 {
		t.Fatalf("expected w*h*bpp to wrap to 0 in int32, got %d", product)
	}
	if oldCheckRejects := hostile > w*h*bpp; oldCheckRejects {
		t.Fatal("multiply-form check unexpectedly rejected the hostile length; regression premise broken")
	}

	// The divide-form must reject it.
	if payloadLenOK(hostile, w, h, bpp) {
		t.Fatal("payloadLenOK accepted a negative (wrapped) payload length")
	}
	// And still accept the true maximum payload, which only fits in 64 bits.
	if !payloadLenOK[int64](1<<32, MaxFrameDim, MaxFrameDim, 4) {
		t.Fatal("payloadLenOK rejected the exact maximum payload")
	}
	if payloadLenOK[int64](1<<32+1, MaxFrameDim, MaxFrameDim, 4) {
		t.Fatal("payloadLenOK accepted one byte over the maximum")
	}
}

// TestPayloadLenCheckMatchesReference checks divide-form equivalence with
// the overflow-free 64-bit comparison across randomized geometries.
func TestPayloadLenCheckMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		w := int64(1 + rng.Intn(MaxFrameDim))
		h := int64(1 + rng.Intn(MaxFrameDim))
		bpp := int64(1 + rng.Intn(4))
		var pl int64
		switch rng.Intn(4) {
		case 0:
			pl = rng.Int63n(1 << 33)
		case 1:
			pl = w*h*bpp + int64(rng.Intn(5)) - 2 // boundary neighborhood
		case 2:
			pl = int64(int32(rng.Uint32())) // includes negatives
		case 3:
			pl = rng.Int63n(w*h*bpp + 1)
		}
		want := pl >= 0 && pl <= w*h*bpp
		if got := payloadLenOK(pl, w, h, bpp); got != want {
			t.Fatalf("payloadLenOK(%d, %d, %d, %d) = %v, want %v", pl, w, h, bpp, got, want)
		}
	}
}

// TestAllocsAppendPacked gates the pooled packed-serialize path used by the
// server's publish/GetEncoded paths: steady-state packing into a reused
// scratch must not allocate.
func TestAllocsAppendPacked(t *testing.T) {
	ef := testEncodedFrame(t, frame.Gray8)
	scratch := make([]byte, 0, ef.PackedMaxSize())
	if avg := testing.AllocsPerRun(200, func() {
		scratch = ef.AppendPacked(scratch[:0])
	}); avg != 0 {
		t.Errorf("AppendPacked into pooled scratch: %.1f allocs/run, want 0", avg)
	}
}
