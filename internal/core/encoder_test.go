package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitpack"
	"repro/internal/frame"
	"repro/internal/region"
)

// testFrame builds a deterministic gradient-ish frame so every pixel value
// is distinct enough to catch addressing bugs.
func testFrame(w, h int, format frame.Format, seed int64) *frame.Frame {
	fr := frame.New(w, h, format)
	rng := rand.New(rand.NewSource(seed))
	for i := range fr.Pix {
		fr.Pix[i] = uint8(rng.Intn(256))
	}
	return fr
}

func mustEncode(t *testing.T, e *Encoder, fr *frame.Frame, idx int) *EncodedFrame {
	t.Helper()
	ef, err := e.EncodeFrame(fr, idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ef.Validate(); err != nil {
		t.Fatalf("encoded frame invalid: %v", err)
	}
	return ef
}

func TestEncodeFullFrameKeepsEveryPixel(t *testing.T) {
	fr := testFrame(32, 24, frame.Gray8, 1)
	e := NewEncoder(32, 24, frame.Gray8)
	if err := e.SetRegionLabels(region.List{region.FullFrame(32, 24)}); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, fr, 0)
	if ef.NumEncodedPixels() != 32*24 {
		t.Fatalf("encoded %d pixels, want %d", ef.NumEncodedPixels(), 32*24)
	}
	if !bytes.Equal(ef.Pix, fr.Pix) {
		t.Fatal("full-frame encode should preserve the raster stream verbatim")
	}
	h := ef.Mask.Histogram()
	if h[bitpack.CodeR] != 32*24 {
		t.Fatalf("mask histogram %v, want all R", h)
	}
}

func TestEncodeNoRegionsDropsEverything(t *testing.T) {
	fr := testFrame(16, 16, frame.Gray8, 2)
	e := NewEncoder(16, 16, frame.Gray8)
	ef := mustEncode(t, e, fr, 0)
	if ef.NumEncodedPixels() != 0 {
		t.Fatalf("encoded %d pixels with no labels, want 0", ef.NumEncodedPixels())
	}
	if e.Stats().RowsWithNoRegions != 16 {
		t.Errorf("RowsWithNoRegions = %d, want 16", e.Stats().RowsWithNoRegions)
	}
}

func TestEncodeSingleRegionPacksRasterOrder(t *testing.T) {
	fr := frame.New(8, 8, frame.Gray8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			fr.SetGray(x, y, uint8(y*8+x))
		}
	}
	e := NewEncoder(8, 8, frame.Gray8)
	if err := e.SetRegionLabels(region.List{{X: 2, Y: 3, W: 3, H: 2, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, fr, 0)
	want := []byte{3*8 + 2, 3*8 + 3, 3*8 + 4, 4*8 + 2, 4*8 + 3, 4*8 + 4}
	if !bytes.Equal(ef.Pix, want) {
		t.Fatalf("packed pixels = %v, want %v", ef.Pix, want)
	}
	if ef.RowOffsets[3] != 0 || ef.RowOffsets[4] != 3 || ef.RowOffsets[5] != 6 || ef.RowOffsets[8] != 6 {
		t.Fatalf("row offsets = %v", ef.RowOffsets)
	}
}

func TestEncodeOverlappingRegionsStoreOnce(t *testing.T) {
	fr := testFrame(20, 20, frame.Gray8, 3)
	e := NewEncoder(20, 20, frame.Gray8)
	// Two fully overlapping regions: pixel stored once, not twice.
	err := e.SetRegionLabels(region.List{
		{X: 5, Y: 5, W: 10, H: 10, Stride: 1, Skip: 1},
		{X: 5, Y: 5, W: 10, H: 10, Stride: 1, Skip: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, fr, 0)
	if ef.NumEncodedPixels() != 100 {
		t.Fatalf("encoded %d pixels, want 100 (no duplication)", ef.NumEncodedPixels())
	}
}

func TestEncodeStrideLattice(t *testing.T) {
	fr := testFrame(12, 12, frame.Gray8, 4)
	e := NewEncoder(12, 12, frame.Gray8)
	if err := e.SetRegionLabels(region.List{{X: 2, Y: 2, W: 8, H: 8, Stride: 2, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, fr, 0)
	if ef.NumEncodedPixels() != 16 { // ceil(8/2)^2
		t.Fatalf("encoded %d pixels, want 16", ef.NumEncodedPixels())
	}
	h := ef.Mask.Histogram()
	if h[bitpack.CodeR] != 16 || h[bitpack.CodeSt] != 64-16 || h[bitpack.CodeN] != 144-64 {
		t.Fatalf("histogram = %v", h)
	}
	// Lattice points carry the original values.
	for y := 2; y < 10; y += 2 {
		for x := 2; x < 10; x += 2 {
			px, err := ef.PixelAt(x, y)
			if err != nil {
				t.Fatalf("PixelAt(%d,%d): %v", x, y, err)
			}
			if px[0] != fr.Gray(x, y) {
				t.Fatalf("pixel (%d,%d) = %d, want %d", x, y, px[0], fr.Gray(x, y))
			}
		}
	}
}

func TestEncodeSkipMarksSk(t *testing.T) {
	fr := testFrame(10, 10, frame.Gray8, 5)
	e := NewEncoder(10, 10, frame.Gray8)
	if err := e.SetRegionLabels(region.List{{X: 0, Y: 0, W: 10, H: 10, Stride: 1, Skip: 2}}); err != nil {
		t.Fatal(err)
	}
	// Frame 0: active (skip=2, phase=0).
	ef0 := mustEncode(t, e, fr, 0)
	if ef0.NumEncodedPixels() != 100 {
		t.Fatalf("frame 0: %d pixels, want 100", ef0.NumEncodedPixels())
	}
	// Frame 1: inactive, everything Sk, nothing stored.
	ef1 := mustEncode(t, e, fr, 1)
	if ef1.NumEncodedPixels() != 0 {
		t.Fatalf("frame 1: %d pixels, want 0", ef1.NumEncodedPixels())
	}
	if h := ef1.Mask.Histogram(); h[bitpack.CodeSk] != 100 {
		t.Fatalf("frame 1 histogram = %v, want all Sk", h)
	}
}

func TestEncodeRGB(t *testing.T) {
	fr := testFrame(6, 4, frame.RGB24, 6)
	e := NewEncoder(6, 4, frame.RGB24)
	if err := e.SetRegionLabels(region.List{{X: 1, Y: 1, W: 2, H: 2, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, fr, 0)
	if ef.NumEncodedPixels() != 4 || len(ef.Pix) != 12 {
		t.Fatalf("encoded %d px / %d bytes", ef.NumEncodedPixels(), len(ef.Pix))
	}
	px, err := ef.PixelAt(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(px, fr.Pixel(2, 2)) {
		t.Fatal("RGB pixel bytes mismatch")
	}
}

func TestEncoderMatchesClassifyFrameAllDesigns(t *testing.T) {
	const w, h = 64, 48
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		var labels region.List
		for i := 0; i < 1+rng.Intn(12); i++ {
			l, ok := region.Clip(region.Label{
				X: rng.Intn(w), Y: rng.Intn(h),
				W: 1 + rng.Intn(30), H: 1 + rng.Intn(30),
				Stride: 1 + rng.Intn(4), Skip: 1 + rng.Intn(4),
			}, w, h)
			if ok {
				labels = append(labels, l)
			}
		}
		labels.SortByY()
		frameIdx := rng.Intn(7)

		fr := testFrame(w, h, frame.Gray8, int64(trial))
		e := NewEncoder(w, h, frame.Gray8)
		if err := e.SetRegionLabels(labels); err != nil {
			t.Fatal(err)
		}
		ef := mustEncode(t, e, fr, frameIdx)

		for _, d := range []Design{DesignHybrid, DesignParallel, DesignNaive} {
			mask, _ := ClassifyFrame(w, h, frameIdx, labels, d)
			if !ef.Mask.Equal(mask) {
				t.Fatalf("trial %d: encoder mask differs from %v ClassifyFrame (labels=%v frame=%d)",
					trial, d, labels, frameIdx)
			}
		}
	}
}

func TestDesignsAgreeAndHybridDoesLessWork(t *testing.T) {
	const w, h = 320, 240
	rng := rand.New(rand.NewSource(21))
	var labels region.List
	for i := 0; i < 40; i++ {
		l, ok := region.Clip(region.Label{
			X: rng.Intn(w), Y: rng.Intn(h), W: 10 + rng.Intn(40), H: 10 + rng.Intn(40),
			Stride: 1 + rng.Intn(3), Skip: 1 + rng.Intn(3),
		}, w, h)
		if ok {
			labels = append(labels, l)
		}
	}
	labels.SortByY()
	maskH, statsH := ClassifyFrame(w, h, 0, labels, DesignHybrid)
	maskP, statsP := ClassifyFrame(w, h, 0, labels, DesignParallel)
	maskN, statsN := ClassifyFrame(w, h, 0, labels, DesignNaive)
	if !maskH.Equal(maskP) || !maskH.Equal(maskN) {
		t.Fatal("designs disagree on classification")
	}
	if statsP.PixelCompares != w*h*len(labels) {
		t.Errorf("parallel compares = %d, want %d", statsP.PixelCompares, w*h*len(labels))
	}
	if statsN.PixelCompares > statsP.PixelCompares {
		t.Error("naive should never exceed parallel comparisons")
	}
	if statsH.TotalCompares() >= statsN.PixelCompares/5 {
		t.Errorf("hybrid total compares = %d, not ≪ naive %d — RoI selector not saving work",
			statsH.TotalCompares(), statsN.PixelCompares)
	}
	if statsH.RunSkippedPixels == 0 {
		t.Error("hybrid run-length optimization never engaged")
	}
}

func TestEncoderRejectsBadInput(t *testing.T) {
	e := NewEncoder(10, 10, frame.Gray8)
	if err := e.SetRegionLabels(region.List{{X: 0, Y: 0, W: 20, H: 5, Stride: 1, Skip: 1}}); err == nil {
		t.Error("oversized label accepted")
	}
	if _, err := e.EncodeFrame(frame.New(5, 5, frame.Gray8), 0); err == nil {
		t.Error("wrong-size frame accepted")
	}
	if _, err := e.EncodeFrame(frame.New(10, 10, frame.RGB24), 0); err == nil {
		t.Error("wrong-format frame accepted")
	}
	for name, fn := range map[string]func(){
		"PushRowBeforeBegin": func() { NewEncoder(4, 4, frame.Gray8).PushRow(make([]byte, 4)) },
		"EndBeforeBegin":     func() { NewEncoder(4, 4, frame.Gray8).EndFrame() },
		"ShortRow": func() {
			e := NewEncoder(4, 4, frame.Gray8)
			e.BeginFrame(0)
			e.PushRow(make([]byte, 3))
		},
		"TooManyRows": func() {
			e := NewEncoder(2, 1, frame.Gray8)
			e.BeginFrame(0)
			e.PushRow(make([]byte, 2))
			e.PushRow(make([]byte, 2))
		},
		"EarlyEnd": func() {
			e := NewEncoder(2, 2, frame.Gray8)
			e.BeginFrame(0)
			e.EndFrame()
		},
		"BadDims": func() { NewEncoder(0, 4, frame.Gray8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEncoderLabelsSortedAndIsolated(t *testing.T) {
	e := NewEncoder(100, 100, frame.Gray8)
	ls := region.List{
		{X: 0, Y: 50, W: 5, H: 5, Stride: 1, Skip: 1},
		{X: 0, Y: 10, W: 5, H: 5, Stride: 1, Skip: 1},
	}
	if err := e.SetRegionLabels(ls); err != nil {
		t.Fatal(err)
	}
	if !e.Labels().IsSortedByY() {
		t.Error("installed labels not sorted")
	}
	ls[0].X = 90 // caller mutation must not affect the encoder
	if e.Labels()[0].X == 90 || e.Labels()[1].X == 90 {
		t.Error("encoder shares label storage with caller")
	}
}

func TestEncoderStatsAccumulate(t *testing.T) {
	fr := testFrame(16, 16, frame.Gray8, 8)
	e := NewEncoder(16, 16, frame.Gray8)
	if err := e.SetRegionLabels(region.List{{X: 0, Y: 0, W: 8, H: 8, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	mustEncode(t, e, fr, 0)
	mustEncode(t, e, fr, 1)
	s := e.Stats()
	if s.FramesEncoded != 2 || s.RowsProcessed != 32 || s.PixelsIn != 512 || s.PixelsOut != 128 {
		t.Errorf("stats = %+v", s)
	}
	e.ResetStats()
	if e.Stats().FramesEncoded != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestEncodedFrameSerializationRoundTrip(t *testing.T) {
	fr := testFrame(40, 30, frame.Gray8, 9)
	e := NewEncoder(40, 30, frame.Gray8)
	if err := e.SetRegionLabels(region.List{
		{X: 3, Y: 2, W: 20, H: 15, Stride: 2, Skip: 2},
		{X: 25, Y: 20, W: 10, H: 8, Stride: 1, Skip: 1},
	}); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, fr, 3)
	var buf bytes.Buffer
	if _, err := ef.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEncodedFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != ef.W || got.H != ef.H || got.FrameIndex != 3 || !bytes.Equal(got.Pix, ef.Pix) || !got.Mask.Equal(ef.Mask) {
		t.Fatal("serialization round trip mismatch")
	}
	for i, v := range ef.RowOffsets {
		if got.RowOffsets[i] != v {
			t.Fatal("row offsets mismatch")
		}
	}
}

func TestReadEncodedFrameErrors(t *testing.T) {
	// Corrupt magic.
	bad := make([]byte, 28)
	if _, err := ReadEncodedFrame(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated stream.
	fr := testFrame(8, 8, frame.Gray8, 10)
	e := NewEncoder(8, 8, frame.Gray8)
	if err := e.SetRegionLabels(region.List{region.FullFrame(8, 8)}); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, fr, 0)
	var buf bytes.Buffer
	if _, err := ef.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 20, 30, len(full) - 2} {
		if _, err := ReadEncodedFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestEncodedFrameValidateCatchesCorruption(t *testing.T) {
	fr := testFrame(8, 8, frame.Gray8, 12)
	e := NewEncoder(8, 8, frame.Gray8)
	if err := e.SetRegionLabels(region.List{{X: 1, Y: 1, W: 4, H: 4, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, fr, 0)

	c := *ef
	c.RowOffsets = append([]uint32(nil), ef.RowOffsets...)
	c.RowOffsets[3]++
	if c.Validate() == nil {
		t.Error("offset corruption not detected")
	}

	c2 := *ef
	c2.Pix = c2.Pix[:len(c2.Pix)-1]
	if c2.Validate() == nil {
		t.Error("payload truncation not detected")
	}

	c3 := *ef
	c3.Mask = ef.Mask.Clone()
	c3.Mask.Set(1*8+1, bitpack.CodeN) // remove an R without fixing offsets
	if c3.Validate() == nil {
		t.Error("mask corruption not detected")
	}
}

func TestMetadataOverheadIsRoughly8Percent(t *testing.T) {
	// Paper §4.1.2: EncMask occupies 2 bits per pixel = ~8% of frame data
	// for a Gray8 1080p frame (500 KB); per-row offsets add a sliver.
	e := NewEncoder(1920, 1080, frame.Gray8)
	fr := frame.New(1920, 1080, frame.Gray8)
	ef := mustEncode(t, e, fr, 0)
	overhead := float64(ef.MetadataBytes()) / float64(1920*1080)
	if overhead < 0.25 || overhead > 0.26 {
		// 2bpp = exactly 25% of 8-bit pixel data; the paper's "8%" figure
		// is relative to a 3-byte (RGB/YUV) pixel: 0.25/3 ≈ 8.3%.
		t.Errorf("Gray8 metadata overhead = %.3f, want ~0.252", overhead)
	}
	e3 := NewEncoder(1920, 1080, frame.YUV444)
	fr3 := frame.New(1920, 1080, frame.YUV444)
	ef3 := mustEncode(t, e3, fr3, 0)
	overhead3 := float64(ef3.MetadataBytes()) / float64(1920*1080*3)
	if overhead3 < 0.08 || overhead3 > 0.09 {
		t.Errorf("YUV444 metadata overhead = %.3f, want ~0.084 (paper's 8%%)", overhead3)
	}
}
