package core

import (
	"fmt"
	"sync"

	"repro/internal/bitpack"
	"repro/internal/frame"
)

// DefaultHistoryDepth is the number of recent encoded frames whose metadata
// the decoder's scratchpad holds, matching the paper's "four most recent
// encoded frames" (§4.2.1).
const DefaultHistoryDepth = 4

// strideLookbackRows bounds how many rows above a requested window the
// decoder pre-decodes to prime its line buffer, so that vertically strided
// pixels at the top of a mid-frame window reconstruct correctly. The paper's
// workloads use strides up to 4 (Table 4); 8 gives margin.
const strideLookbackRows = 8

// DecoderStats counts decode work and traffic for the evaluation harness.
type DecoderStats struct {
	// PixelsRequested is the number of decoded-space pixels serviced.
	PixelsRequested int
	// DirectR counts pixels fetched from the newest encoded frame.
	DirectR int
	// HeldSt counts strided pixels serviced from the resampling buffer or
	// line buffer.
	HeldSt int
	// FetchedSk counts pixels fetched from older history frames.
	FetchedSk int
	// Black counts pixels emitted as black (non-regional or unresolvable).
	Black int
	// EncodedBytesRead counts payload bytes fetched from encoded frames.
	EncodedBytesRead int
	// SubRequests counts PMMU sub-requests issued.
	SubRequests int
	// MetadataBitsRead counts EncMask bits the PMMU examined while
	// translating the delivered rows (see PMMUStats.MetadataBitsRead for the
	// exact accounting). Warm-up rows decoded only to prime the line buffer
	// are excluded, so sequential and parallel decodes report identical
	// values for the same request.
	MetadataBitsRead int
}

// Decoder is the rhythmic pixel decoder (§4.2). It accumulates encoded
// frames in a bounded history window and services pixel requests in the
// original decoded address space: the PMMU translates requests to encoded
// space, and the FIFO Sampling Unit reconstructs values — dequeuing fetched
// pixels, re-sampling the previous pixel (horizontally, or the previous row
// through a one-line buffer for vertically strided rows), fetching
// temporally skipped pixels from history, and emitting black for
// non-regional positions.
//
// A Decoder is not safe for concurrent use.
type Decoder struct {
	w, h        int
	format      frame.Format
	bpp         int
	depth       int
	parallelism int

	// The history window is a fixed ring: ring holds the scratchpad slots,
	// head indexes the newest frame, and history is a preallocated
	// newest-first view over the ring that Push refreshes — so pushing a
	// frame moves at most depth pointers and never allocates, while the
	// PMMU keeps its history[0] = newest contract.
	ring    []*EncodedFrame
	head    int
	count   int
	history []*EncodedFrame // newest first; view over ring
	stats   DecoderStats
}

// DecoderOption configures a Decoder.
type DecoderOption func(*Decoder)

// WithHistoryDepth sets the metadata scratchpad depth (>= 1). Depth 1
// disables temporal-skip resolution: Sk pixels decode black.
func WithHistoryDepth(depth int) DecoderOption {
	return func(d *Decoder) {
		if depth < 1 {
			panic("core: history depth must be >= 1")
		}
		d.depth = depth
	}
}

// WithParallelism sets the number of row-band workers a full-frame or
// windowed decode may fan out to (default 1: fully sequential, the
// reference path). Parallelism is internal to each decode call; the Decoder
// itself remains single-caller. Band sub-decodes share the frame history
// read-only and reconstruct bit-identical pixels to the sequential path.
func WithParallelism(n int) DecoderOption {
	return func(d *Decoder) {
		if n < 1 {
			panic("core: decode parallelism must be >= 1")
		}
		d.parallelism = n
	}
}

// NewDecoder returns a decoder for w x h frames of the given format.
func NewDecoder(w, h int, format frame.Format, opts ...DecoderOption) *Decoder {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("core: invalid decoder dimensions %dx%d", w, h))
	}
	d := &Decoder{w: w, h: h, format: format, bpp: formatBPP(format), depth: DefaultHistoryDepth, parallelism: 1}
	for _, opt := range opts {
		opt(d)
	}
	d.ring = make([]*EncodedFrame, d.depth)
	d.history = make([]*EncodedFrame, 0, d.depth)
	return d
}

// Push inserts an encoded frame as the newest history entry, evicting the
// oldest beyond the scratchpad depth. The frame must match the decoder's
// geometry. Push never allocates: the ring slots and the newest-first view
// are fixed buffers sized at construction.
func (d *Decoder) Push(ef *EncodedFrame) error {
	_, err := d.PushEvict(ef)
	return err
}

// PushEvict is Push returning ownership of the frame it displaced: once a
// frame falls off the history ring the decoder holds no reference to it, so
// the caller may recycle its buffers (e.g. hand it to a FramePool). The
// result is nil until the ring has wrapped.
func (d *Decoder) PushEvict(ef *EncodedFrame) (evicted *EncodedFrame, err error) {
	if ef.W != d.w || ef.H != d.h || ef.BytesPerPixel != d.bpp {
		return nil, fmt.Errorf("core: encoded frame %dx%d bpp=%d does not match decoder %dx%d bpp=%d",
			ef.W, ef.H, ef.BytesPerPixel, d.w, d.h, d.bpp)
	}
	d.head = (d.head + d.depth - 1) % d.depth
	evicted = d.ring[d.head] // non-nil once the ring has wrapped
	d.ring[d.head] = ef
	if d.count < d.depth {
		d.count++
	}
	d.history = d.history[:d.count]
	for i := 0; i < d.count; i++ {
		d.history[i] = d.ring[(d.head+i)%d.depth]
	}
	return evicted, nil
}

// HistoryLen returns the number of buffered encoded frames.
func (d *Decoder) HistoryLen() int { return len(d.history) }

// HistoryDepth returns the configured scratchpad depth.
func (d *Decoder) HistoryDepth() int { return d.depth }

// Parallelism returns the configured row-band worker count.
func (d *Decoder) Parallelism() int { return d.parallelism }

// Stats returns the accumulated decode counters.
func (d *Decoder) Stats() DecoderStats { return d.stats }

// ResetStats zeroes the counters.
func (d *Decoder) ResetStats() { d.stats = DecoderStats{} }

// DecodeFrame reconstructs the full decoded frame for the newest pushed
// encoded frame.
func (d *Decoder) DecodeFrame() (*frame.Frame, error) {
	return d.DecodeWindow(0, 0, d.w, d.h)
}

// DecodeWindow reconstructs the rectangle [x0, x0+w) x [y0, y0+h) in decoded
// space, the request shape a vision accelerator issues when reading a frame
// tile. At least one encoded frame must have been pushed.
//
// Rows are reconstructed at full width internally and the window columns
// copied out — the same row-burst behaviour a DRAM-backed decoder has, and
// the property that makes any window decode agree exactly with the
// corresponding crop of a full-frame decode (strided pixels may hold values
// that originate left of the window). When the window starts below the
// frame top, up to strideLookbackRows rows above it are decoded into the
// line buffer first (and discarded) so vertically strided pixels on the
// window's first rows reconstruct from their source row; warm-up rows are
// excluded from Stats.
// When the decoder was configured WithParallelism(n > 1), the window is
// split into independent row-band sub-decodes that share the frame history
// read-only; each band primes its own line buffer with the same lookback
// warm-up, so the stitched result is byte-identical to the sequential path
// and the accumulated statistics are too (each output row is charged
// exactly once; warm-up rows are always discarded).
func (d *Decoder) DecodeWindow(x0, y0, w, h int) (*frame.Frame, error) {
	if len(d.history) == 0 {
		return nil, fmt.Errorf("core: decode before any encoded frame was pushed")
	}
	if x0 < 0 || y0 < 0 || w <= 0 || h <= 0 || x0+w > d.w || y0+h > d.h {
		return nil, fmt.Errorf("core: window (%d,%d %dx%d) outside %dx%d frame", x0, y0, w, h, d.w, d.h)
	}
	out := frame.New(w, h, d.format)

	// A band shorter than the warm-up lookback spends more rows priming
	// than producing, so small requests stay sequential.
	nb := min(d.parallelism, max(1, h/strideLookbackRows))
	if nb <= 1 {
		if err := d.decodeBand(out, x0, y0, w, 0, h, &d.stats); err != nil {
			return nil, err
		}
		return out, nil
	}

	rows := (h + nb - 1) / nb
	type band struct {
		r0, r1 int
		stats  DecoderStats
		err    error
	}
	bands := make([]band, 0, nb)
	for r := 0; r < h; r += rows {
		bands = append(bands, band{r0: r, r1: min(r+rows, h)})
	}
	var wg sync.WaitGroup
	for i := range bands {
		wg.Add(1)
		go func(b *band) {
			defer wg.Done()
			// Bands write disjoint row ranges of out and read the shared
			// history; each gets a private sampler, PMMU, and stats.
			b.err = d.decodeBand(out, x0, y0, w, b.r0, b.r1, &b.stats)
		}(&bands[i])
	}
	wg.Wait()
	for i := range bands {
		if bands[i].err != nil {
			return nil, bands[i].err
		}
		d.stats.add(bands[i].stats)
	}
	return out, nil
}

// decodeBand reconstructs output rows [r0, r1) of the window anchored at
// (x0, y0): the sequential decode loop over one row band, with up to
// strideLookbackRows of discarded warm-up rows above the band so vertically
// strided pixels on its first rows reconstruct from their source row.
func (d *Decoder) decodeBand(out *frame.Frame, x0, y0, w, r0, r1 int, stats *DecoderStats) error {
	pmmu := NewPMMU(d.history, 0)
	fifo := newFIFOSampler(d.bpp, d.w)

	warmup := min(y0+r0, strideLookbackRows)
	var discard DecoderStats
	rowBuf := make([]byte, d.w*d.bpp)
	prevMetaBits := 0
	for row := r0 - warmup; row < r1; row++ {
		y := y0 + row
		subs, err := pmmu.TranslateRow(y, 0, d.w)
		if err != nil {
			return err
		}
		st := stats
		if row < r0 {
			st = &discard
		}
		st.SubRequests += len(subs)
		// Attribute this row's metadata reads (a delta against the shared
		// PMMU's running counter) to the same bucket as its pixels, so
		// warm-up rows never inflate the delivered-row accounting.
		metaBits := pmmu.Stats().MetadataBitsRead
		st.MetadataBitsRead += metaBits - prevMetaBits
		prevMetaBits = metaBits
		fifo.beginRow()
		if err := fifo.serviceRow(subs, d.history, 0, rowBuf, st); err != nil {
			return err
		}
		fifo.commitRow(rowBuf)
		if row >= r0 {
			copy(out.Pix[row*out.Stride():(row+1)*out.Stride()], rowBuf[x0*d.bpp:(x0+w)*d.bpp])
		}
	}
	return nil
}

// add accumulates o into s.
func (s *DecoderStats) add(o DecoderStats) {
	s.PixelsRequested += o.PixelsRequested
	s.DirectR += o.DirectR
	s.HeldSt += o.HeldSt
	s.FetchedSk += o.FetchedSk
	s.Black += o.Black
	s.EncodedBytesRead += o.EncodedBytesRead
	s.SubRequests += o.SubRequests
	s.MetadataBitsRead += o.MetadataBitsRead
}

// fifoSampler is the FIFO Sampling Unit (§4.2.2): it consumes sub-request
// response data and produces decoded pixel values. A strided position
// re-samples the previous pixel when one was fetched earlier in the row
// (horizontal stride) or the pixel directly above from a one-row line buffer
// (vertical stride); the line buffer corresponds to the decoder's 2x18Kb
// BRAM budget reported in §6.3.
type fifoSampler struct {
	bpp      int
	resample []byte // last fetched pixel value in the current row
	hasValue bool
	black    []byte
	lineBuf  []byte // previous decoded row
	lineOK   bool
}

func newFIFOSampler(bpp, w int) *fifoSampler {
	return &fifoSampler{
		bpp:      bpp,
		resample: make([]byte, bpp),
		black:    make([]byte, bpp),
		lineBuf:  make([]byte, w*bpp),
	}
}

// beginRow resets the resampling buffer at a row boundary.
func (f *fifoSampler) beginRow() {
	f.hasValue = false
}

// commitRow stores the decoded row into the line buffer for the next row's
// vertical-stride resolution.
func (f *fifoSampler) commitRow(row []byte) {
	copy(f.lineBuf, row)
	f.lineOK = true
}

// serviceRow materializes one row's sub-requests into dst (w*bpp bytes,
// starting at decoded column x0).
func (f *fifoSampler) serviceRow(subs []SubRequest, history []*EncodedFrame, x0 int, dst []byte, stats *DecoderStats) error {
	for _, s := range subs {
		dstOff := (s.X - x0) * f.bpp
		switch {
		case s.Source != SourceNone:
			src := history[s.Source]
			start := s.EncIndex * f.bpp
			end := start + s.Count*f.bpp
			if start < 0 || end > len(src.Pix) {
				return fmt.Errorf("core: sub-request [%d:%d) outside %d-byte payload of frame tag %d",
					start, end, len(src.Pix), s.Source)
			}
			copy(dst[dstOff:dstOff+s.Count*f.bpp], src.Pix[start:end])
			copy(f.resample, src.Pix[end-f.bpp:end])
			f.hasValue = true
			stats.EncodedBytesRead += s.Count * f.bpp
			stats.PixelsRequested += s.Count
			if s.Code == bitpack.CodeR {
				stats.DirectR += s.Count
			} else {
				stats.FetchedSk += s.Count
			}
		case s.Code == bitpack.CodeSt && f.hasValue:
			// Horizontal stride: hold the last fetched value.
			if f.bpp == 1 {
				fillBytes(dst[dstOff:dstOff+s.Count], f.resample[0])
			} else {
				for i := 0; i < s.Count; i++ {
					copy(dst[dstOff+i*f.bpp:dstOff+(i+1)*f.bpp], f.resample)
				}
			}
			stats.HeldSt += s.Count
			stats.PixelsRequested += s.Count
		case s.Code == bitpack.CodeSt && f.lineOK:
			// Vertical stride (no fetch yet this row): copy from the line
			// buffer, i.e. the decoded row above, per pixel.
			copy(dst[dstOff:dstOff+s.Count*f.bpp], f.lineBuf[dstOff:dstOff+s.Count*f.bpp])
			stats.HeldSt += s.Count
			stats.PixelsRequested += s.Count
		default:
			// Non-regional, unresolvable skip, or stride with neither a
			// held value nor a line buffer: black.
			fillBytes(dst[dstOff:dstOff+s.Count*f.bpp], 0)
			stats.Black += s.Count
			stats.PixelsRequested += s.Count
		}
	}
	return nil
}

// fillBytes sets every byte of b to v (the compiler lowers the loop to a
// memset-style fill).
func fillBytes(b []byte, v byte) {
	for i := range b {
		b[i] = v
	}
}
