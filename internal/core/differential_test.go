package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/frame"
	"repro/internal/region"
)

// This file is the differential correctness harness for the row-sharded
// parallel encode/decode path: the sequential Encoder/Decoder is the
// reference implementation, and the parallel path must be byte-for-byte
// equal to it — payload, row offsets, EncMask, decoded pixels, and work
// counters — across randomized workloads. Failures print the generator
// seed so any case replays deterministically.

// diffParallelisms are the worker counts the differential suite checks
// against the sequential reference, per the acceptance criteria (n=8 must
// be exact).
var diffParallelisms = []int{2, 3, 8}

// genCase is one generated differential case.
type genCase struct {
	w, h   int
	format frame.Format
	labels region.List
	frames []*frame.Frame
}

// genLabels builds a randomized region list over a w x h frame: counts from
// empty to a dozen, overlapping freely, clipped to the frame, strides 1-4,
// skips 1-4 with random phase, with occasional degenerate shapes (empty
// rows between regions, single-pixel-high bands, full-frame coverage).
func genLabels(rng *rand.Rand, w, h int) region.List {
	var ls region.List
	switch rng.Intn(8) {
	case 0:
		// Empty workload: every pixel non-regional.
		return ls
	case 1:
		// Full frame at random rhythm.
		ls = append(ls, region.Label{X: 0, Y: 0, W: w, H: h, Stride: 1 + rng.Intn(4), Skip: 1 + rng.Intn(4)})
	}
	n := rng.Intn(13)
	for i := 0; i < n; i++ {
		lw := 1 + rng.Intn(w)
		lh := 1 + rng.Intn(h)
		if rng.Intn(4) == 0 {
			lh = 1 // single-row region: exercises band-boundary rows
		}
		l := region.Label{
			X:      rng.Intn(w),
			Y:      rng.Intn(h),
			W:      lw,
			H:      lh,
			Stride: 1 + rng.Intn(4),
			Skip:   1 + rng.Intn(4),
		}
		l.Phase = rng.Intn(l.Skip)
		if clipped, ok := region.Clip(l, w, h); ok {
			ls = append(ls, clipped)
		}
	}
	return ls
}

// genFrame fills a frame with seeded noise.
func genFrame(rng *rand.Rand, w, h int, f frame.Format) *frame.Frame {
	fr := frame.New(w, h, f)
	rng.Read(fr.Pix)
	return fr
}

// genDiffCase draws one differential case: geometry (including heights that
// do and do not align with the encoder's 4-row band granularity), labels,
// and a short frame sequence so temporal skip and history resolution are
// exercised.
func genDiffCase(rng *rand.Rand, format frame.Format) genCase {
	w := 8 + rng.Intn(120) // 8..127: odd widths exercise mask packing
	h := 5 + rng.Intn(88)  // 5..92: not multiples of band alignment
	nframes := 1 + rng.Intn(4)
	c := genCase{w: w, h: h, format: format, labels: genLabels(rng, w, h)}
	for i := 0; i < nframes; i++ {
		c.frames = append(c.frames, genFrame(rng, w, h, format))
	}
	return c
}

// encodedEqual asserts two encoded frames match byte for byte in payload,
// offsets, and mask.
func encodedEqual(t *testing.T, tag string, seq, par *EncodedFrame) {
	t.Helper()
	if !bytes.Equal(seq.Pix, par.Pix) {
		t.Fatalf("%s: payload differs (%d vs %d bytes)", tag, len(seq.Pix), len(par.Pix))
	}
	if len(seq.RowOffsets) != len(par.RowOffsets) {
		t.Fatalf("%s: offset table length %d vs %d", tag, len(seq.RowOffsets), len(par.RowOffsets))
	}
	for y, v := range seq.RowOffsets {
		if par.RowOffsets[y] != v {
			t.Fatalf("%s: RowOffsets[%d] = %d, want %d", tag, y, par.RowOffsets[y], v)
		}
	}
	if !seq.Mask.Equal(par.Mask) {
		t.Fatalf("%s: EncMask differs", tag)
	}
}

// TestDifferentialEncodeParallel asserts parallel encode equals sequential
// encode byte for byte across >= 200 generated cases and both pixel
// formats, at every checked worker count.
func TestDifferentialEncodeParallel(t *testing.T) {
	const casesPerFormat = 120 // x2 formats >= 200 total cases
	for _, format := range []frame.Format{frame.Gray8, frame.RGB24} {
		format := format
		t.Run(format.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0x5eed0001 + int64(format)))
			for ci := 0; ci < casesPerFormat; ci++ {
				c := genDiffCase(rng, format)
				tag := fmt.Sprintf("case %d (%dx%d, %d labels, %d frames)", ci, c.w, c.h, len(c.labels), len(c.frames))

				seq := NewEncoder(c.w, c.h, c.format)
				if err := seq.SetRegionLabels(c.labels); err != nil {
					t.Fatalf("%s: sequential labels: %v", tag, err)
				}
				pars := make([]*ParallelEncoder, len(diffParallelisms))
				for i, n := range diffParallelisms {
					pars[i] = NewParallelEncoder(c.w, c.h, c.format, n)
					if err := pars[i].SetRegionLabels(c.labels); err != nil {
						t.Fatalf("%s: parallel labels: %v", tag, err)
					}
				}
				for fi, fr := range c.frames {
					want, err := seq.EncodeFrame(fr, fi)
					if err != nil {
						t.Fatalf("%s: sequential encode: %v", tag, err)
					}
					for i, n := range diffParallelisms {
						got, err := pars[i].EncodeFrame(fr, fi)
						if err != nil {
							t.Fatalf("%s: parallel(n=%d) encode: %v", tag, n, err)
						}
						encodedEqual(t, fmt.Sprintf("%s n=%d frame=%d", tag, n, fi), want, got)
						if err := got.Validate(); err != nil {
							t.Fatalf("%s n=%d: parallel frame invalid: %v", tag, n, err)
						}
					}
				}
				// Work counters are per-row quantities, so the parallel
				// totals must equal the sequential totals exactly.
				for i, n := range diffParallelisms {
					if seqStats, parStats := seq.Stats(), pars[i].Stats(); seqStats != parStats {
						t.Fatalf("%s: stats diverge at n=%d: sequential %+v parallel %+v", tag, n, seqStats, parStats)
					}
				}
			}
		})
	}
}

// TestDifferentialDecodeParallel asserts parallel full-frame and windowed
// decode equal the sequential reference byte for byte, sharing history
// across multi-frame sequences so temporal-skip resolution is covered.
func TestDifferentialDecodeParallel(t *testing.T) {
	const casesPerFormat = 120
	for _, format := range []frame.Format{frame.Gray8, frame.RGB24} {
		format := format
		t.Run(format.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0xdec0de01 + int64(format)))
			for ci := 0; ci < casesPerFormat; ci++ {
				c := genDiffCase(rng, format)
				tag := fmt.Sprintf("case %d (%dx%d, %d labels, %d frames)", ci, c.w, c.h, len(c.labels), len(c.frames))

				enc := NewEncoder(c.w, c.h, c.format)
				if err := enc.SetRegionLabels(c.labels); err != nil {
					t.Fatalf("%s: labels: %v", tag, err)
				}
				seqDec := NewDecoder(c.w, c.h, c.format)
				parDecs := make([]*Decoder, len(diffParallelisms))
				for i, n := range diffParallelisms {
					parDecs[i] = NewDecoder(c.w, c.h, c.format, WithParallelism(n))
				}
				for fi, fr := range c.frames {
					ef, err := enc.EncodeFrame(fr, fi)
					if err != nil {
						t.Fatalf("%s: encode: %v", tag, err)
					}
					if err := seqDec.Push(ef); err != nil {
						t.Fatalf("%s: push: %v", tag, err)
					}
					for _, pd := range parDecs {
						if err := pd.Push(ef); err != nil {
							t.Fatalf("%s: parallel push: %v", tag, err)
						}
					}
				}

				want, err := seqDec.DecodeFrame()
				if err != nil {
					t.Fatalf("%s: sequential decode: %v", tag, err)
				}
				// A randomized large window plus the full frame per decoder.
				wx, wy := rng.Intn(c.w), rng.Intn(c.h)
				ww, wh := 1+rng.Intn(c.w-wx), 1+rng.Intn(c.h-wy)
				wantWin, err := seqDec.DecodeWindow(wx, wy, ww, wh)
				if err != nil {
					t.Fatalf("%s: sequential window: %v", tag, err)
				}
				for i, n := range diffParallelisms {
					got, err := parDecs[i].DecodeFrame()
					if err != nil {
						t.Fatalf("%s: parallel(n=%d) decode: %v", tag, n, err)
					}
					if !bytes.Equal(want.Pix, got.Pix) {
						t.Fatalf("%s: parallel(n=%d) full decode differs", tag, n)
					}
					gotWin, err := parDecs[i].DecodeWindow(wx, wy, ww, wh)
					if err != nil {
						t.Fatalf("%s: parallel(n=%d) window: %v", tag, n, err)
					}
					if !bytes.Equal(wantWin.Pix, gotWin.Pix) {
						t.Fatalf("%s: parallel(n=%d) window (%d,%d %dx%d) differs", tag, n, wx, wy, ww, wh)
					}
					// Stats parity: every output row is charged exactly once
					// across bands; warm-up rows are discarded on both paths.
					if seqDec.Stats() != parDecs[i].Stats() {
						t.Fatalf("%s: decoder stats diverge at n=%d:\nsequential %+v\nparallel   %+v",
							tag, n, seqDec.Stats(), parDecs[i].Stats())
					}
				}
			}
		})
	}
}

// TestDifferentialPackedContainer routes every randomized case through
// both RPXE containers — raw v1 (the byte-identity reference) and packed
// v2 — and decodes the packed copies at parallelism 1, 2, and 8. The
// packed round trip must reproduce the mask codes and row offsets exactly,
// and decoded pixels must be byte-equal to the raw-container reference for
// full frames and random windows alike.
func TestDifferentialPackedContainer(t *testing.T) {
	const casesPerFormat = 60
	packedParallelisms := []int{1, 2, 8}
	for _, format := range []frame.Format{frame.Gray8, frame.RGB24} {
		format := format
		t.Run(format.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0x9acced01 + int64(format)))
			for ci := 0; ci < casesPerFormat; ci++ {
				c := genDiffCase(rng, format)
				tag := fmt.Sprintf("case %d (%dx%d, %d labels, %d frames)", ci, c.w, c.h, len(c.labels), len(c.frames))

				enc := NewEncoder(c.w, c.h, c.format)
				if err := enc.SetRegionLabels(c.labels); err != nil {
					t.Fatalf("%s: labels: %v", tag, err)
				}
				rawDec := NewDecoder(c.w, c.h, c.format)
				packDecs := make([]*Decoder, len(packedParallelisms))
				for i, n := range packedParallelisms {
					packDecs[i] = NewDecoder(c.w, c.h, c.format, WithParallelism(n))
				}
				for fi, fr := range c.frames {
					ef, err := enc.EncodeFrame(fr, fi)
					if err != nil {
						t.Fatalf("%s: encode: %v", tag, err)
					}
					packed := ef.AppendPacked(nil)
					if len(packed) > ef.PackedMaxSize() {
						t.Fatalf("%s: packed %d bytes exceeds PackedMaxSize %d", tag, len(packed), ef.PackedMaxSize())
					}
					pef, err := ReadEncodedFrame(bytes.NewReader(packed))
					if err != nil {
						t.Fatalf("%s: read packed: %v", tag, err)
					}
					// Exact metadata round trip: mask codes and row offsets.
					encodedEqual(t, tag+" packed round trip", ef, pef)
					if pef.FrameIndex != ef.FrameIndex {
						t.Fatalf("%s: packed FrameIndex %d, want %d", tag, pef.FrameIndex, ef.FrameIndex)
					}
					rf, err := ReadEncodedFrame(bytes.NewReader(ef.AppendTo(nil)))
					if err != nil {
						t.Fatalf("%s: read raw: %v", tag, err)
					}
					if err := rawDec.Push(rf); err != nil {
						t.Fatalf("%s: raw push: %v", tag, err)
					}
					for _, pd := range packDecs {
						if err := pd.Push(pef); err != nil {
							t.Fatalf("%s: packed push: %v", tag, err)
						}
					}
				}

				want, err := rawDec.DecodeFrame()
				if err != nil {
					t.Fatalf("%s: raw decode: %v", tag, err)
				}
				wx, wy := rng.Intn(c.w), rng.Intn(c.h)
				ww, wh := 1+rng.Intn(c.w-wx), 1+rng.Intn(c.h-wy)
				wantWin, err := rawDec.DecodeWindow(wx, wy, ww, wh)
				if err != nil {
					t.Fatalf("%s: raw window: %v", tag, err)
				}
				for i, n := range packedParallelisms {
					got, err := packDecs[i].DecodeFrame()
					if err != nil {
						t.Fatalf("%s: packed(n=%d) decode: %v", tag, n, err)
					}
					if !bytes.Equal(want.Pix, got.Pix) {
						t.Fatalf("%s: packed(n=%d) full decode differs from raw reference", tag, n)
					}
					gotWin, err := packDecs[i].DecodeWindow(wx, wy, ww, wh)
					if err != nil {
						t.Fatalf("%s: packed(n=%d) window: %v", tag, n, err)
					}
					if !bytes.Equal(wantWin.Pix, gotWin.Pix) {
						t.Fatalf("%s: packed(n=%d) window (%d,%d %dx%d) differs", tag, n, wx, wy, ww, wh)
					}
				}
			}
		})
	}
}

// TestParallelEncoderBandAlignment pins the invariant the lock-free shared
// EncMask depends on: every band boundary sits at a row multiple of the
// mask alignment, so band byte ranges never overlap.
func TestParallelEncoderBandAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		w := 1 + rng.Intn(200)
		h := 1 + rng.Intn(200)
		n := 1 + rng.Intn(16)
		p := NewParallelEncoder(w, h, frame.Gray8, n)
		if p.Bands() > n {
			t.Fatalf("%dx%d n=%d: %d bands exceed worker count", w, h, n, p.Bands())
		}
		for bi, b := range p.bands {
			if b[0]%bandAlign != 0 {
				t.Fatalf("%dx%d n=%d: band %d starts at row %d (not %d-aligned)", w, h, n, bi, b[0], bandAlign)
			}
			if (b[0]*w)%4 != 0 {
				t.Fatalf("%dx%d n=%d: band %d mask element %d not byte-aligned", w, h, n, bi, b[0]*w)
			}
		}
	}
}
