package core

import (
	"bytes"
	"testing"

	"repro/internal/frame"
	"repro/internal/region"
)

// poolTestLabels is a mixed workload: full-stride region, strided region,
// temporally skipped region, plus uncovered background.
func poolTestLabels() region.List {
	return region.List{
		{X: 4, Y: 4, W: 24, H: 16, Stride: 1, Skip: 1},
		{X: 40, Y: 10, W: 16, H: 30, Stride: 2, Skip: 1},
		{X: 8, Y: 36, W: 32, H: 12, Stride: 1, Skip: 2},
	}
}

func poolTestFrame(w, h, seed int) *frame.Frame {
	fr := frame.New(w, h, frame.Gray8)
	for i := range fr.Pix {
		fr.Pix[i] = byte(seed*31 + i*7)
	}
	return fr
}

// TestFramePoolRecycleByteIdentical proves a recycled frame encodes
// byte-identically to a fresh one even when the recycled buffers held a
// different (dirty) frame before reuse.
func TestFramePoolRecycleByteIdentical(t *testing.T) {
	const w, h = 64, 48
	mk := func(pool *FramePool) *Encoder {
		enc := NewEncoder(w, h, frame.Gray8)
		if err := enc.SetRegionLabels(poolTestLabels()); err != nil {
			t.Fatal(err)
		}
		enc.SetFramePool(pool)
		return enc
	}
	pool := &FramePool{}
	pooled := mk(pool)
	reference := mk(nil)

	var recycled *EncodedFrame
	for i := 0; i < 10; i++ {
		fr := poolTestFrame(w, h, i)
		got, err := pooled.EncodeFrame(fr, i)
		if err != nil {
			t.Fatal(err)
		}
		want, err := reference.EncodeFrame(fr, i)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && got != recycled {
			t.Fatalf("frame %d: pool did not recycle the returned frame", i)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got.AppendTo(nil), want.AppendTo(nil)) {
			t.Fatalf("frame %d: pooled encode differs from fresh encode", i)
		}
		// Scribble over the frame before recycling: the next Get must fully
		// clear it.
		for p := range got.Pix {
			got.Pix[p] = 0xAA
		}
		got.Mask.Fill(0, got.Mask.Len(), 3)
		pool.Put(got)
		recycled = got
	}
}

// TestFramePoolGeometryMismatch proves the pool never hands back storage
// sized for a different session geometry.
func TestFramePoolGeometryMismatch(t *testing.T) {
	pool := &FramePool{}
	a := pool.Get(32, 24, 1)
	pool.Put(a)
	b := pool.Get(64, 48, 1)
	if b == a {
		t.Fatal("pool returned 32x24 storage for a 64x48 request")
	}
	if b.Mask.Len() != 64*48 || cap(b.RowOffsets) < 49 {
		t.Fatalf("fresh frame mis-sized: mask %d, offsets cap %d", b.Mask.Len(), cap(b.RowOffsets))
	}
}

// TestCloneAndCopyFromIndependence proves Clone/CopyFrom yield storage fully
// detached from the source.
func TestCloneAndCopyFromIndependence(t *testing.T) {
	const w, h = 64, 48
	enc := NewEncoder(w, h, frame.Gray8)
	if err := enc.SetRegionLabels(poolTestLabels()); err != nil {
		t.Fatal(err)
	}
	src, err := enc.EncodeFrame(poolTestFrame(w, h, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	wire := src.AppendTo(nil)

	clone := src.Clone()
	var copied EncodedFrame
	copied.CopyFrom(src)

	// Trash the source in place.
	for i := range src.Pix {
		src.Pix[i] ^= 0xFF
	}
	for i := range src.RowOffsets {
		src.RowOffsets[i] += 1000
	}
	src.Mask.Fill(0, src.Mask.Len(), 0)

	if !bytes.Equal(clone.AppendTo(nil), wire) {
		t.Fatal("Clone shares storage with its source")
	}
	if !bytes.Equal(copied.AppendTo(nil), wire) {
		t.Fatal("CopyFrom shares storage with its source")
	}
	if err := clone.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendToMatchesWriteTo pins AppendTo and EncodedSize to the WriteTo
// container byte for byte.
func TestAppendToMatchesWriteTo(t *testing.T) {
	const w, h = 64, 48
	enc := NewEncoder(w, h, frame.Gray8)
	if err := enc.SetRegionLabels(poolTestLabels()); err != nil {
		t.Fatal(err)
	}
	ef, err := enc.EncodeFrame(poolTestFrame(w, h, 3), 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ef.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got := ef.AppendTo(nil)
	if !bytes.Equal(got, buf.Bytes()) {
		t.Fatalf("AppendTo differs from WriteTo: %d vs %d bytes", len(got), buf.Len())
	}
	if ef.EncodedSize() != len(got) {
		t.Fatalf("EncodedSize %d, serialized %d", ef.EncodedSize(), len(got))
	}
	back, err := ReadEncodedFrame(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.AppendTo(nil), got) {
		t.Fatal("round trip through ReadEncodedFrame not byte-identical")
	}
}

// TestAllocsEncodePooledSteadyState pins the pooled sequential
// encode→history→recycle cycle — the per-capture hot path — at zero
// steady-state allocations.
func TestAllocsEncodePooledSteadyState(t *testing.T) {
	const w, h = 64, 48
	enc := NewEncoder(w, h, frame.Gray8)
	if err := enc.SetRegionLabels(poolTestLabels()); err != nil {
		t.Fatal(err)
	}
	pool := &FramePool{}
	enc.SetFramePool(pool)
	dec := NewDecoder(w, h, frame.Gray8)
	fr := poolTestFrame(w, h, 5)

	idx := 0
	capture := func() {
		ef, err := enc.EncodeFrame(fr, idx)
		if err != nil {
			t.Fatal(err)
		}
		evicted, err := dec.PushEvict(ef)
		if err != nil {
			t.Fatal(err)
		}
		pool.Put(evicted)
		idx++
	}
	// Warm up past the history depth so the ring wraps and eviction feeds
	// the pool.
	for i := 0; i < DefaultHistoryDepth+2; i++ {
		capture()
	}
	if allocs := testing.AllocsPerRun(50, capture); allocs != 0 {
		t.Fatalf("pooled capture cycle allocates %v per frame, want 0", allocs)
	}
}

// TestAllocsAppendToSteadyState pins RPXE serialization into a reused
// buffer at zero allocations.
func TestAllocsAppendToSteadyState(t *testing.T) {
	const w, h = 64, 48
	enc := NewEncoder(w, h, frame.Gray8)
	if err := enc.SetRegionLabels(poolTestLabels()); err != nil {
		t.Fatal(err)
	}
	ef, err := enc.EncodeFrame(poolTestFrame(w, h, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 0, ef.EncodedSize())
	if allocs := testing.AllocsPerRun(100, func() {
		scratch = ef.AppendTo(scratch[:0])
	}); allocs != 0 {
		t.Fatalf("AppendTo into sized scratch allocates %v per run, want 0", allocs)
	}
}
