package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/frame"
	"repro/internal/region"
)

// encodeDecodeSetup runs one frame through encoder and decoder.
func encodeDecodeSetup(t *testing.T, w, h int, labels region.List, seed int64) (*frame.Frame, *frame.Frame) {
	t.Helper()
	fr := testFrame(w, h, frame.Gray8, seed)
	e := NewEncoder(w, h, frame.Gray8)
	if err := e.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, fr, 0)
	d := NewDecoder(w, h, frame.Gray8)
	if err := d.Push(ef); err != nil {
		t.Fatal(err)
	}
	dec, err := d.DecodeFrame()
	if err != nil {
		t.Fatal(err)
	}
	return fr, dec
}

func TestDecodeFullFrameLossless(t *testing.T) {
	fr, dec := encodeDecodeSetup(t, 33, 27, region.List{region.FullFrame(33, 27)}, 1)
	if !dec.Equal(fr) {
		t.Fatal("full-frame encode/decode must be lossless")
	}
}

func TestDecodeNoRegionsAllBlack(t *testing.T) {
	_, dec := encodeDecodeSetup(t, 16, 16, nil, 2)
	for i, v := range dec.Pix {
		if v != 0 {
			t.Fatalf("pixel %d = %d, want black", i, v)
		}
	}
}

func TestDecodeRegionExactOutsideBlack(t *testing.T) {
	labels := region.List{{X: 4, Y: 5, W: 8, H: 6, Stride: 1, Skip: 1}}
	fr, dec := encodeDecodeSetup(t, 20, 20, labels, 3)
	for y := 0; y < 20; y++ {
		for x := 0; x < 20; x++ {
			want := uint8(0)
			if labels[0].Contains(x, y) {
				want = fr.Gray(x, y)
			}
			if got := dec.Gray(x, y); got != want {
				t.Fatalf("pixel (%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestDecodeStrideNearestNeighbor(t *testing.T) {
	// A strided region must reconstruct as nearest-neighbor (top-left hold)
	// of its lattice pixels, both horizontally and vertically.
	labels := region.List{{X: 4, Y: 4, W: 8, H: 8, Stride: 2, Skip: 1}}
	fr, dec := encodeDecodeSetup(t, 16, 16, labels, 4)
	for y := 4; y < 12; y++ {
		for x := 4; x < 12; x++ {
			latX := 4 + (x-4)/2*2
			latY := 4 + (y-4)/2*2
			if got, want := dec.Gray(x, y), fr.Gray(latX, latY); got != want {
				t.Fatalf("pixel (%d,%d) = %d, want lattice (%d,%d) = %d", x, y, got, latX, latY, want)
			}
		}
	}
}

func TestDecodeStride4VerticalPropagation(t *testing.T) {
	labels := region.List{{X: 0, Y: 0, W: 12, H: 12, Stride: 4, Skip: 1}}
	fr, dec := encodeDecodeSetup(t, 12, 12, labels, 5)
	for y := 0; y < 12; y++ {
		for x := 0; x < 12; x++ {
			if got, want := dec.Gray(x, y), fr.Gray(x/4*4, y/4*4); got != want {
				t.Fatalf("pixel (%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestDecodeTemporalSkipFetchesFromHistory(t *testing.T) {
	const w, h = 16, 16
	labels := region.List{{X: 2, Y: 2, W: 10, H: 10, Stride: 1, Skip: 3}}
	e := NewEncoder(w, h, frame.Gray8)
	if err := e.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(w, h, frame.Gray8)

	fr0 := testFrame(w, h, frame.Gray8, 10) // frame 0: region active
	fr1 := testFrame(w, h, frame.Gray8, 11) // frame 1: region skipped
	ef0 := mustEncode(t, e, fr0, 0)
	ef1 := mustEncode(t, e, fr1, 1)
	if err := d.Push(ef0); err != nil {
		t.Fatal(err)
	}
	if err := d.Push(ef1); err != nil {
		t.Fatal(err)
	}
	dec, err := d.DecodeFrame()
	if err != nil {
		t.Fatal(err)
	}
	// Skipped pixels must come from frame 0's capture.
	for y := 2; y < 12; y++ {
		for x := 2; x < 12; x++ {
			if got, want := dec.Gray(x, y), fr0.Gray(x, y); got != want {
				t.Fatalf("skipped pixel (%d,%d) = %d, want frame-0 value %d", x, y, got, want)
			}
		}
	}
	if d.Stats().FetchedSk != 100 {
		t.Errorf("FetchedSk = %d, want 100", d.Stats().FetchedSk)
	}
}

func TestDecodeSkipBeyondHistoryIsBlack(t *testing.T) {
	const w, h = 8, 8
	// Region skips for longer than the scratchpad depth: with depth 2 the
	// hosting frame is evicted and skipped pixels decode black.
	labels := region.List{{X: 0, Y: 0, W: 8, H: 8, Stride: 1, Skip: 10}}
	e := NewEncoder(w, h, frame.Gray8)
	if err := e.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(w, h, frame.Gray8, WithHistoryDepth(2))
	for i := 0; i < 4; i++ { // frame 0 active, 1..3 skipped
		ef := mustEncode(t, e, testFrame(w, h, frame.Gray8, int64(20+i)), i)
		if err := d.Push(ef); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := d.DecodeFrame()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec.Pix {
		if v != 0 {
			t.Fatalf("pixel %d = %d, want black (history evicted)", i, v)
		}
	}
	if d.Stats().Black != 64 {
		t.Errorf("Black = %d, want 64", d.Stats().Black)
	}
}

func TestDecodeSkipWithinDepth4(t *testing.T) {
	// Default depth 4: a region sampled every 4 frames stays decodable.
	const w, h = 8, 8
	labels := region.List{{X: 0, Y: 0, W: 8, H: 8, Stride: 1, Skip: 4}}
	e := NewEncoder(w, h, frame.Gray8)
	if err := e.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(w, h, frame.Gray8)
	frames := make([]*frame.Frame, 4)
	for i := range frames {
		frames[i] = testFrame(w, h, frame.Gray8, int64(30+i))
		ef := mustEncode(t, e, frames[i], i)
		if err := d.Push(ef); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := d.DecodeFrame()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dec.Gray(3, 3), frames[0].Gray(3, 3); got != want {
		t.Errorf("skip-4 pixel = %d, want frame-0 value %d", got, want)
	}
	if d.HistoryLen() != 4 {
		t.Errorf("HistoryLen = %d, want 4", d.HistoryLen())
	}
}

func TestDecodeWindow(t *testing.T) {
	labels := region.List{{X: 8, Y: 8, W: 16, H: 16, Stride: 2, Skip: 1}}
	const w, h = 32, 32
	fr := testFrame(w, h, frame.Gray8, 40)
	e := NewEncoder(w, h, frame.Gray8)
	if err := e.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, fr, 0)
	d := NewDecoder(w, h, frame.Gray8)
	if err := d.Push(ef); err != nil {
		t.Fatal(err)
	}
	full, err := d.DecodeFrame()
	if err != nil {
		t.Fatal(err)
	}
	// Any window decode must match the corresponding crop of the full
	// decode, including windows starting mid-region (stride seeding and
	// vertical lookback).
	for _, win := range [][4]int{{0, 0, 32, 32}, {10, 10, 12, 12}, {9, 9, 5, 5}, {11, 13, 8, 3}, {0, 20, 32, 12}, {31, 31, 1, 1}} {
		got, err := d.DecodeWindow(win[0], win[1], win[2], win[3])
		if err != nil {
			t.Fatalf("window %v: %v", win, err)
		}
		want := full.Crop(win[0], win[1], win[2], win[3])
		if !got.Equal(want) {
			t.Fatalf("window %v decode differs from full-frame crop", win)
		}
	}
}

func TestDecodeWindowErrors(t *testing.T) {
	d := NewDecoder(16, 16, frame.Gray8)
	if _, err := d.DecodeFrame(); err == nil {
		t.Error("decode before push: want error")
	}
	e := NewEncoder(16, 16, frame.Gray8)
	ef := mustEncode(t, e, frame.New(16, 16, frame.Gray8), 0)
	if err := d.Push(ef); err != nil {
		t.Fatal(err)
	}
	for _, win := range [][4]int{{-1, 0, 4, 4}, {0, 0, 0, 4}, {14, 0, 4, 4}, {0, 14, 4, 4}} {
		if _, err := d.DecodeWindow(win[0], win[1], win[2], win[3]); err == nil {
			t.Errorf("window %v accepted", win)
		}
	}
}

func TestDecoderPushRejectsMismatch(t *testing.T) {
	d := NewDecoder(16, 16, frame.Gray8)
	e := NewEncoder(8, 8, frame.Gray8)
	ef := mustEncode(t, e, frame.New(8, 8, frame.Gray8), 0)
	if err := d.Push(ef); err == nil {
		t.Error("mismatched encoded frame accepted")
	}
}

func TestDecoderOptionValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"ZeroDepth": func() { NewDecoder(4, 4, frame.Gray8, WithHistoryDepth(0)) },
		"BadDims":   func() { NewDecoder(0, 4, frame.Gray8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	d := NewDecoder(4, 4, frame.Gray8, WithHistoryDepth(7))
	if d.HistoryDepth() != 7 {
		t.Errorf("HistoryDepth = %d, want 7", d.HistoryDepth())
	}
}

// TestDecoderPushRingOrder exercises the fixed-ring history window past one
// full wrap: the newest-first view and eviction order must match the old
// prepend-and-truncate semantics exactly.
func TestDecoderPushRingOrder(t *testing.T) {
	const w, h = 8, 8
	e := NewEncoder(w, h, frame.Gray8)
	if err := e.SetRegionLabels(region.List{region.FullFrame(w, h)}); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(w, h, frame.Gray8, WithHistoryDepth(3))
	fr := testFrame(w, h, frame.Gray8, 60)
	for i := 0; i < 5; i++ {
		if err := d.Push(mustEncode(t, e, fr, i)); err != nil {
			t.Fatal(err)
		}
		wantLen := min(i+1, 3)
		if d.HistoryLen() != wantLen {
			t.Fatalf("after push %d: HistoryLen = %d, want %d", i, d.HistoryLen(), wantLen)
		}
		for j, hf := range d.history {
			if want := i - j; hf.FrameIndex != want {
				t.Fatalf("after push %d: history[%d].FrameIndex = %d, want %d (newest first)",
					i, j, hf.FrameIndex, want)
			}
		}
	}
}

// TestDecoderPushNoAllocs pins the fix for the per-push history
// reallocation: once constructed, Push must never allocate, at any fill
// level of the ring.
func TestDecoderPushNoAllocs(t *testing.T) {
	const w, h = 16, 16
	e := NewEncoder(w, h, frame.Gray8)
	if err := e.SetRegionLabels(region.List{region.FullFrame(w, h)}); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, testFrame(w, h, frame.Gray8, 61), 0)
	d := NewDecoder(w, h, frame.Gray8) // default depth 4
	if n := testing.AllocsPerRun(100, func() {
		if err := d.Push(ef); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Push allocates %v per call, want 0", n)
	}
}

func TestDecoderStatsConsistent(t *testing.T) {
	labels := region.List{{X: 0, Y: 0, W: 8, H: 8, Stride: 2, Skip: 1}}
	const w, h = 16, 16
	fr := testFrame(w, h, frame.Gray8, 50)
	e := NewEncoder(w, h, frame.Gray8)
	if err := e.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, fr, 0)
	d := NewDecoder(w, h, frame.Gray8)
	if err := d.Push(ef); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DecodeFrame(); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.PixelsRequested != w*h {
		t.Errorf("PixelsRequested = %d, want %d", s.PixelsRequested, w*h)
	}
	if s.DirectR+s.HeldSt+s.FetchedSk+s.Black != s.PixelsRequested {
		t.Errorf("stats don't partition: %+v", s)
	}
	if s.DirectR != 16 { // 4x4 lattice
		t.Errorf("DirectR = %d, want 16", s.DirectR)
	}
	if s.EncodedBytesRead != 16 {
		t.Errorf("EncodedBytesRead = %d, want 16", s.EncodedBytesRead)
	}
	d.ResetStats()
	if d.Stats().PixelsRequested != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestDecodeRGBRegion(t *testing.T) {
	labels := region.List{{X: 2, Y: 2, W: 4, H: 4, Stride: 1, Skip: 1}}
	const w, h = 8, 8
	fr := testFrame(w, h, frame.RGB24, 60)
	e := NewEncoder(w, h, frame.RGB24)
	if err := e.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, e, fr, 0)
	d := NewDecoder(w, h, frame.RGB24)
	if err := d.Push(ef); err != nil {
		t.Fatal(err)
	}
	dec, err := d.DecodeFrame()
	if err != nil {
		t.Fatal(err)
	}
	for y := 2; y < 6; y++ {
		for x := 2; x < 6; x++ {
			got, want := dec.Pixel(x, y), fr.Pixel(x, y)
			for c := 0; c < 3; c++ {
				if got[c] != want[c] {
					t.Fatalf("RGB pixel (%d,%d) channel %d = %d, want %d", x, y, c, got[c], want[c])
				}
			}
		}
	}
}

// Property test: for random label sets with stride=1, skip=1, every regional
// pixel round-trips exactly and every non-regional pixel is black.
func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	const w, h = 24, 24
	f := func(seed int64, rects [4][4]uint8) bool {
		var labels region.List
		for _, r := range rects {
			l, ok := region.Clip(region.Label{
				X: int(r[0]) % w, Y: int(r[1]) % h,
				W: int(r[2])%12 + 1, H: int(r[3])%12 + 1,
				Stride: 1, Skip: 1,
			}, w, h)
			if ok {
				labels = append(labels, l)
			}
		}
		labels.SortByY()
		fr := testFrame(w, h, frame.Gray8, seed)
		e := NewEncoder(w, h, frame.Gray8)
		if err := e.SetRegionLabels(labels); err != nil {
			return false
		}
		ef, err := e.EncodeFrame(fr, 0)
		if err != nil || ef.Validate() != nil {
			return false
		}
		d := NewDecoder(w, h, frame.Gray8)
		if d.Push(ef) != nil {
			return false
		}
		dec, err := d.DecodeFrame()
		if err != nil {
			return false
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				inside := false
				for _, l := range labels {
					if l.Contains(x, y) {
						inside = true
						break
					}
				}
				want := uint8(0)
				if inside {
					want = fr.Gray(x, y)
				}
				if dec.Gray(x, y) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: encoded payload size always equals the R-code count times bpp,
// for arbitrary stride/skip/phase mixes.
func TestEncodedSizeMatchesMaskProperty(t *testing.T) {
	const w, h = 32, 32
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		var labels region.List
		for i := 0; i < rng.Intn(8); i++ {
			skip := 1 + rng.Intn(5)
			l, ok := region.Clip(region.Label{
				X: rng.Intn(w), Y: rng.Intn(h),
				W: 1 + rng.Intn(20), H: 1 + rng.Intn(20),
				Stride: 1 + rng.Intn(5), Skip: skip, Phase: rng.Intn(skip),
			}, w, h)
			if ok {
				labels = append(labels, l)
			}
		}
		labels.SortByY()
		e := NewEncoder(w, h, frame.Gray8)
		if err := e.SetRegionLabels(labels); err != nil {
			t.Fatal(err)
		}
		ef := mustEncode(t, e, testFrame(w, h, frame.Gray8, int64(trial)), rng.Intn(9))
		if got, want := ef.NumEncodedPixels(), ef.Mask.Histogram()[3]; got != want {
			t.Fatalf("trial %d: payload %d pixels, mask has %d R codes", trial, got, want)
		}
	}
}

// Property: when every region is active this frame (skip=1), the decode is
// independent of whatever history the decoder holds.
func TestDecodeActiveFrameIgnoresHistoryProperty(t *testing.T) {
	const w, h = 24, 24
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 20; trial++ {
		var labels region.List
		for i := 0; i < 1+rng.Intn(6); i++ {
			l, ok := region.Clip(region.Label{
				X: rng.Intn(w), Y: rng.Intn(h),
				W: 1 + rng.Intn(16), H: 1 + rng.Intn(16),
				Stride: 1 + rng.Intn(3), Skip: 1,
			}, w, h)
			if ok {
				labels = append(labels, l)
			}
		}
		labels.SortByY()
		enc := NewEncoder(w, h, frame.Gray8)
		if err := enc.SetRegionLabels(labels); err != nil {
			t.Fatal(err)
		}
		fr := testFrame(w, h, frame.Gray8, int64(500+trial))
		ef := mustEncode(t, enc, fr, 3)

		// Decoder A: fresh. Decoder B: polluted with unrelated history.
		decA := NewDecoder(w, h, frame.Gray8)
		if err := decA.Push(ef); err != nil {
			t.Fatal(err)
		}
		decB := NewDecoder(w, h, frame.Gray8)
		encJunk := NewEncoder(w, h, frame.Gray8)
		if err := encJunk.SetRegionLabels(region.List{region.FullFrame(w, h)}); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			junk := mustEncode(t, encJunk, testFrame(w, h, frame.Gray8, int64(900+k)), k)
			if err := decB.Push(junk); err != nil {
				t.Fatal(err)
			}
		}
		if err := decB.Push(ef); err != nil {
			t.Fatal(err)
		}
		a, err := decA.DecodeFrame()
		if err != nil {
			t.Fatal(err)
		}
		b, err := decB.DecodeFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("trial %d: skip-free decode depends on history (labels %v)", trial, labels)
		}
	}
}

// Property: for any valid encoded frame, every window decode agrees with
// the corresponding crop of the full decode.
func TestDecodeWindowConsistencyProperty(t *testing.T) {
	const w, h = 32, 32
	rng := rand.New(rand.NewSource(654))
	for trial := 0; trial < 15; trial++ {
		var labels region.List
		for i := 0; i < 1+rng.Intn(8); i++ {
			skip := 1 + rng.Intn(3)
			l, ok := region.Clip(region.Label{
				X: rng.Intn(w), Y: rng.Intn(h),
				W: 1 + rng.Intn(20), H: 1 + rng.Intn(20),
				Stride: 1 + rng.Intn(4), Skip: skip, Phase: rng.Intn(skip),
			}, w, h)
			if ok {
				labels = append(labels, l)
			}
		}
		labels.SortByY()
		enc := NewEncoder(w, h, frame.Gray8)
		if err := enc.SetRegionLabels(labels); err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(w, h, frame.Gray8)
		for f := 0; f < 3; f++ {
			ef := mustEncode(t, enc, testFrame(w, h, frame.Gray8, int64(700+3*trial+f)), f)
			if err := dec.Push(ef); err != nil {
				t.Fatal(err)
			}
		}
		full, err := dec.DecodeFrame()
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 8; k++ {
			x0, y0 := rng.Intn(w-4), rng.Intn(h-4)
			ww := 1 + rng.Intn(w-x0)
			wh := 1 + rng.Intn(h-y0)
			win, err := dec.DecodeWindow(x0, y0, ww, wh)
			if err != nil {
				t.Fatal(err)
			}
			if !win.Equal(full.Crop(x0, y0, ww, wh)) {
				t.Fatalf("trial %d: window (%d,%d %dx%d) inconsistent (labels %v)",
					trial, x0, y0, ww, wh, labels)
			}
		}
	}
}
