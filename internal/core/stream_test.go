package core

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"repro/internal/frame"
	"repro/internal/region"
)

func TestStreamRoundTrip(t *testing.T) {
	const w, h = 32, 24
	enc := NewEncoder(w, h, frame.Gray8)
	if err := enc.SetRegionLabels(region.List{{X: 4, Y: 4, W: 16, H: 16, Stride: 1, Skip: 2}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	var inputs []*frame.Frame
	for i := 0; i < 5; i++ {
		fr := testFrame(w, h, frame.Gray8, int64(100+i))
		inputs = append(inputs, fr)
		ef := mustEncode(t, enc, fr, i)
		if err := sw.WriteFrame(ef); err != nil {
			t.Fatal(err)
		}
	}
	if sw.FramesWritten() != 5 {
		t.Errorf("FramesWritten = %d", sw.FramesWritten())
	}

	// Replay: frame 0's region content must survive into skipped frames.
	n := 0
	err := DecodeStream(bytes.NewReader(buf.Bytes()), frame.Gray8, func(idx int, dec *frame.Frame) error {
		if idx != n {
			t.Errorf("frame index %d, want %d", idx, n)
		}
		src := inputs[idx]
		if idx%2 == 1 { // skipped frames show the previous capture
			src = inputs[idx-1]
		}
		if dec.Gray(10, 10) != src.Gray(10, 10) {
			t.Errorf("frame %d: decoded %d, want %d", idx, dec.Gray(10, 10), src.Gray(10, 10))
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("decoded %d frames", n)
	}
}

func TestStreamWriterRejectsGeometryChange(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	encA := NewEncoder(16, 16, frame.Gray8)
	efA := mustEncode(t, encA, frame.New(16, 16, frame.Gray8), 0)
	if err := sw.WriteFrame(efA); err != nil {
		t.Fatal(err)
	}
	encB := NewEncoder(8, 8, frame.Gray8)
	efB := mustEncode(t, encB, frame.New(8, 8, frame.Gray8), 1)
	if err := sw.WriteFrame(efB); err == nil {
		t.Error("geometry change accepted")
	}
}

func TestStreamReaderErrors(t *testing.T) {
	// Bad magic.
	if _, err := NewStreamReader(bytes.NewReader(make([]byte, 20))); err == nil {
		t.Error("bad magic accepted")
	}
	// Short header.
	if _, err := NewStreamReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("short header accepted")
	}
	// Truncated mid-frame: error, not silent EOF.
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	enc := NewEncoder(16, 16, frame.Gray8)
	if err := enc.SetRegionLabels(region.List{region.FullFrame(16, 16)}); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteFrame(mustEncode(t, enc, frame.New(16, 16, frame.Gray8), 0)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	sr, err := NewStreamReader(bytes.NewReader(full[:len(full)-4]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.ReadFrame(); err == nil || err == io.EOF {
		t.Errorf("truncated frame: err = %v, want hard error", err)
	}
	// Clean end: exactly one frame then EOF.
	sr2, err := NewStreamReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr2.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if _, err := sr2.ReadFrame(); err != io.EOF {
		t.Errorf("stream end: err = %v, want io.EOF", err)
	}
	if sr2.FramesRead() != 1 {
		t.Errorf("FramesRead = %d", sr2.FramesRead())
	}
}

// Robustness: random single-byte corruptions of a valid container must
// produce an error or a differing frame — never a panic.
func TestReadEncodedFrameCorruptionRobust(t *testing.T) {
	enc := NewEncoder(24, 24, frame.Gray8)
	if err := enc.SetRegionLabels(region.List{{X: 2, Y: 2, W: 18, H: 18, Stride: 2, Skip: 2}}); err != nil {
		t.Fatal(err)
	}
	ef := mustEncode(t, enc, testFrame(24, 24, frame.Gray8, 200), 0)
	var buf bytes.Buffer
	if _, err := ef.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), orig...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= byte(1 + rng.Intn(255))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d (byte %d): panic %v", trial, pos, r)
				}
			}()
			got, err := ReadEncodedFrame(bytes.NewReader(mut))
			if err != nil {
				return // rejected: fine
			}
			// Accepted: must still be internally consistent and decodable.
			if err := got.Validate(); err != nil {
				t.Fatalf("trial %d: accepted frame fails Validate: %v", trial, err)
			}
			dec := NewDecoder(got.W, got.H, frame.Gray8)
			if err := dec.Push(got); err != nil {
				return
			}
			if _, err := dec.DecodeFrame(); err != nil {
				return // decode error acceptable; panic is not
			}
		}()
	}
}

// Robustness: the PNM reader must not panic on arbitrary bytes.
func TestReadPNMGarbageRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		garbage := make([]byte, rng.Intn(300))
		rng.Read(garbage)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic %v", trial, r)
				}
			}()
			_, _ = frame.ReadPNM(bytes.NewReader(garbage))
		}()
	}
}
