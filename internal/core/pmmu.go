package core

import (
	"fmt"

	"repro/internal/bitpack"
)

// This file implements the Pixel Memory Management Unit (§4.2.1): the
// request-path half of the rhythmic pixel decoder. The PMMU receives pixel
// transactions addressed in the *decoded* frame address space and translates
// them into sub-requests against the packed *encoded* frames, using only the
// per-row offsets and EncMask metadata — never the region labels, which is
// what makes the decoder agnostic to the number of regions.

// SourceNone marks a sub-request that needs no memory fetch (hold or black).
const SourceNone = -1

// SubRequest is one translated unit of a pixel transaction: a run of
// consecutive decoded-space pixels that share a resolution strategy.
//
// Mirroring the paper, a sub-request is "characterized by a base address (of
// the encoded frame), offset (row and column), and a tag index of which
// frame hosts the desired pixels": here Source is the frame tag (0 = most
// recent, 1..depth-1 = older history), EncIndex the pixel offset into that
// frame's packed stream, and (X, Y, Count) the decoded-space run.
type SubRequest struct {
	// X, Y, Count identify the decoded-space pixel run [X, X+Count) in row Y.
	X, Y, Count int
	// Code is the EncMask classification that produced this sub-request:
	// CodeR and CodeSk runs carry a memory fetch; CodeSt runs are serviced
	// from the resampling buffer; CodeN runs emit black.
	Code bitpack.Code
	// Source is the history tag of the encoded frame to fetch from, or
	// SourceNone when no fetch is needed.
	Source int
	// EncIndex is the starting pixel index within the source frame's packed
	// stream; valid only when Source != SourceNone.
	EncIndex int
}

// PMMU translates decoded-space pixel transactions against a window of
// recent encoded frames. Frame tag 0 is the newest frame.
type PMMU struct {
	history []*EncodedFrame // newest first; the Metadata Scratchpad contents
	base    uint64          // decoded framebuffer base address (Out-of-Frame handler)

	stats PMMUStats
}

// PMMUStats counts translation work.
type PMMUStats struct {
	// Transactions is the number of pixel transactions translated.
	Transactions int
	// SubRequests is the number of generated sub-requests.
	SubRequests int
	// Bypassed counts transactions forwarded as standard memory accesses by
	// the Out-of-Frame handler.
	Bypassed int
	// MetadataBitsRead counts EncMask bits examined during translation:
	// 2 bits per classified pixel (8 per byte-aligned fast-path group, plus
	// 2 per history frame consulted while resolving an Sk pixel), and one
	// 2*x0-bit row-prefix scan per history frame the first time a fetch
	// consults that frame's R-count cursor for the run. Frames no pixel
	// resolves against charge nothing — matching what the hardware metadata
	// scratchpad actually reads.
	MetadataBitsRead int
}

// NewPMMU returns a PMMU over the given history window (newest first) with
// the decoded framebuffer mapped at base.
func NewPMMU(history []*EncodedFrame, base uint64) *PMMU {
	return &PMMU{history: history, base: base}
}

// Stats returns the accumulated counters.
func (p *PMMU) Stats() PMMUStats { return p.stats }

// newest returns the most recent encoded frame.
func (p *PMMU) newest() *EncodedFrame { return p.history[0] }

// InFrame implements the Out-of-Frame Handler check: it reports whether a
// byte address falls inside the decoded framebuffer address space.
//
// The check is written against the remaining capacity past addr rather than
// as addr+length <= end, which wraps around for adversarial addresses near
// the top of the 64-bit address space and would admit an out-of-frame
// transaction.
func (p *PMMU) InFrame(addr uint64, length int) bool {
	if len(p.history) == 0 || length < 0 {
		return false
	}
	f := p.newest()
	size := uint64(f.W) * uint64(f.H) * uint64(f.BytesPerPixel)
	if addr < p.base {
		return false
	}
	off := addr - p.base
	return off <= size && uint64(length) <= size-off
}

// TranslateAddr translates a byte-addressed transaction. Transactions
// outside the decoded framebuffer are bypassed (nil, false, nil). Pixel
// transactions must be pixel-aligned and must not cross a row boundary;
// higher-level code splits multi-row requests.
func (p *PMMU) TranslateAddr(addr uint64, length int) (subs []SubRequest, pixel bool, err error) {
	p.stats.Transactions++
	if !p.InFrame(addr, length) {
		p.stats.Bypassed++
		return nil, false, nil
	}
	f := p.newest()
	bpp := f.BytesPerPixel
	rel := int(addr - p.base)
	if rel%bpp != 0 || length%bpp != 0 {
		return nil, true, fmt.Errorf("core: misaligned pixel transaction addr=%d len=%d bpp=%d", addr, length, bpp)
	}
	pixIdx := rel / bpp
	x, y := pixIdx%f.W, pixIdx/f.W
	n := length / bpp
	if x+n > f.W {
		return nil, true, fmt.Errorf("core: pixel transaction crosses row boundary (x=%d n=%d w=%d)", x, n, f.W)
	}
	subs, err = p.TranslateRow(y, x, x+n)
	return subs, true, err
}

// TranslateRow translates the decoded-space pixel run [x0, x1) of row y into
// sub-requests. This is the Transaction Analyzer + translator: it reads the
// EncMask codes of the run, resolves each pixel's hosting frame, and merges
// consecutive pixels with the same resolution into a single sub-request.
func (p *PMMU) TranslateRow(y, x0, x1 int) ([]SubRequest, error) {
	f := p.newest()
	if y < 0 || y >= f.H || x0 < 0 || x1 > f.W || x0 >= x1 {
		return nil, fmt.Errorf("core: run [%d,%d) of row %d outside %dx%d frame", x0, x1, y, f.W, f.H)
	}
	base := y * f.W

	// Incremental R-count cursor per history frame, so that translating a
	// full row costs O(W) rather than O(W^2) popcounts. rCount[i] is the
	// number of R codes in frame i's row y strictly before column `at[i]`.
	//
	// Cursors initialize lazily, on the first fetch that consults a frame:
	// the hardware scratchpad only performs a frame's 2*x0-bit row-prefix
	// scan when some pixel actually resolves against that frame, so eager
	// initialization would over-charge MetadataBitsRead by 2*x0 bits for
	// every history frame no Sk pixel ever touches (and for the newest frame
	// on runs with no R pixels).
	nf := len(p.history)
	rCount := make([]int, nf)
	at := make([]int, nf)
	for i := range at {
		at[i] = -1 // cursor not yet initialized
	}
	advance := func(i, x int) int { // returns R-count before column x in frame i
		hf := p.history[i]
		if at[i] < 0 {
			rCount[i] = hf.Mask.CountRRange(base, base+x0)
			at[i] = x0
			p.stats.MetadataBitsRead += 2 * x0 // scratchpad row prefix scan
		}
		if x > at[i] {
			rCount[i] += hf.Mask.CountRRange(base+at[i], base+x)
			at[i] = x
		}
		return rCount[i]
	}

	var subs []SubRequest
	emit := func(s SubRequest) {
		// Merge with the previous sub-request when the run is contiguous in
		// both decoded and encoded space.
		if n := len(subs); n > 0 {
			prev := &subs[n-1]
			if prev.Code == s.Code && prev.Source == s.Source && prev.Y == s.Y &&
				prev.X+prev.Count == s.X &&
				(s.Source == SourceNone || prev.EncIndex+prev.Count == s.EncIndex) {
				prev.Count += s.Count
				return
			}
		}
		subs = append(subs, s)
		p.stats.SubRequests++
	}

	maskBytes := f.Mask.Bytes()
	for x := x0; x < x1; {
		// Fast path: a byte-aligned group of four identical N or R codes is
		// translated as one run without per-pixel work. Frames are mostly
		// uniform runs of non-regional or fully captured pixels, so this is
		// what makes software decode scale with the regional share.
		if (base+x)&3 == 0 && x+4 <= x1 {
			switch maskBytes[(base+x)>>2] {
			case 0x00: // N N N N
				p.stats.MetadataBitsRead += 8
				emit(SubRequest{X: x, Y: y, Count: 4, Code: bitpack.CodeN, Source: SourceNone})
				x += 4
				continue
			case 0xFF: // R R R R
				p.stats.MetadataBitsRead += 8
				enc := int(f.RowOffsets[y]) + advance(0, x)
				emit(SubRequest{X: x, Y: y, Count: 4, Code: bitpack.CodeR, Source: 0, EncIndex: enc})
				x += 4
				continue
			}
		}
		code := f.Mask.Get(base + x)
		p.stats.MetadataBitsRead += 2
		switch code {
		case bitpack.CodeR:
			enc := int(f.RowOffsets[y]) + advance(0, x)
			emit(SubRequest{X: x, Y: y, Count: 1, Code: bitpack.CodeR, Source: 0, EncIndex: enc})
		case bitpack.CodeSt:
			emit(SubRequest{X: x, Y: y, Count: 1, Code: bitpack.CodeSt, Source: SourceNone})
		case bitpack.CodeSk:
			// Resolve against history: the most recent older frame where
			// this pixel was captured (CodeR).
			resolved := false
			for i := 1; i < nf; i++ {
				hf := p.history[i]
				hcode := hf.Mask.Get(base + x)
				p.stats.MetadataBitsRead += 2
				if hcode == bitpack.CodeR {
					enc := int(hf.RowOffsets[y]) + advance(i, x)
					emit(SubRequest{X: x, Y: y, Count: 1, Code: bitpack.CodeSk, Source: i, EncIndex: enc})
					resolved = true
					break
				}
				if hcode == bitpack.CodeSt {
					// The hosting frame strided this pixel out; fall back to
					// the resampling buffer, as the hosting frame's own
					// decode would have.
					emit(SubRequest{X: x, Y: y, Count: 1, Code: bitpack.CodeSt, Source: SourceNone})
					resolved = true
					break
				}
			}
			if !resolved {
				// Not present in the metadata scratchpad window: black.
				emit(SubRequest{X: x, Y: y, Count: 1, Code: bitpack.CodeN, Source: SourceNone})
			}
		default: // CodeN
			emit(SubRequest{X: x, Y: y, Count: 1, Code: bitpack.CodeN, Source: SourceNone})
		}
		x++
	}
	return subs, nil
}
