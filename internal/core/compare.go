package core

import (
	"fmt"

	"repro/internal/bitpack"
	"repro/internal/region"
)

// Design selects a comparison-engine microarchitecture for the ablation
// study behind Table 5. All designs compute identical EncMask codes; they
// differ in how many region comparisons they perform per pixel and in the
// hardware resources they would occupy (modeled in internal/hwmodel).
type Design uint8

const (
	// DesignHybrid is the paper's design: an RoI Selector shortlists
	// regions once per row, the per-pixel engine compares only against the
	// sublist, and a run-length optimization reuses an in-region match for
	// the remaining width of the matched region.
	DesignHybrid Design = iota
	// DesignParallel compares every pixel against every region label with
	// one comparator per region (1 cycle, N comparators). Comparison count
	// equals pixels x regions.
	DesignParallel
	// DesignNaive sequentially compares each pixel against region labels
	// until the strongest possible code is established, with early exit on
	// a CodeR match.
	DesignNaive
)

// String names the design.
func (d Design) String() string {
	switch d {
	case DesignHybrid:
		return "hybrid"
	case DesignParallel:
		return "parallel"
	case DesignNaive:
		return "naive-sequential"
	}
	return fmt.Sprintf("Design(%d)", uint8(d))
}

// CompareStats reports the work a comparison engine performed on a frame.
type CompareStats struct {
	Design Design
	// RowSelectorCompares counts per-row y-range examinations (hybrid only).
	RowSelectorCompares int
	// PixelCompares counts per-pixel region comparisons.
	PixelCompares int
	// RunSkippedPixels counts pixels classified by run-length reuse without
	// any comparison (hybrid only).
	RunSkippedPixels int
}

// TotalCompares returns selector plus pixel comparisons.
func (s CompareStats) TotalCompares() int { return s.RowSelectorCompares + s.PixelCompares }

// ClassifyFrame computes the EncMask for a whole frame with the chosen
// design, returning the mask and exact work counters. It is the reference
// ("golden") classification the streaming Encoder is tested against.
//
// Labels must be validated against (w, h) and, for DesignHybrid, y-sorted.
func ClassifyFrame(w, h, frameIndex int, labels region.List, d Design) (*bitpack.Mask2, CompareStats) {
	mask := bitpack.NewMask2(w * h)
	stats := CompareStats{Design: d}
	switch d {
	case DesignParallel, DesignNaive:
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				code := bitpack.CodeN
				for _, l := range labels {
					stats.PixelCompares++
					c := classify(l, x, y, frameIndex)
					if c > code {
						code = c
					}
					if code == bitpack.CodeR && d == DesignNaive {
						break // sequential engine can stop at the strongest code
					}
				}
				if code != bitpack.CodeN {
					mask.Set(y*w+x, code)
				}
			}
		}
	case DesignHybrid:
		var sublist []region.Label
		for y := 0; y < h; y++ {
			sublist = sublist[:0]
			for _, l := range labels {
				stats.RowSelectorCompares++
				if l.Y > y {
					break
				}
				if l.RowInYRange(y) {
					sublist = append(sublist, l)
				}
			}
			if len(sublist) == 0 {
				continue
			}
			x := 0
			for x < w {
				code := bitpack.CodeN
				// runEnd is the furthest x (exclusive) through which the
				// in-region membership result can be reused: the min right
				// edge among matching regions, or the next region start
				// among non-matching ones.
				runEnd := w
				for _, l := range sublist {
					stats.PixelCompares++
					if l.Contains(x, y) {
						c := classify(l, x, y, frameIndex)
						if c > code {
							code = c
						}
						if e := l.X + l.W; e < runEnd {
							runEnd = e
						}
					} else if l.X > x && l.X < runEnd {
						runEnd = l.X
					}
				}
				if code == bitpack.CodeN {
					// No region covers [x, runEnd): skip the whole gap.
					stats.RunSkippedPixels += runEnd - x - 1
					x = runEnd
					continue
				}
				mask.Set(y*w+x, code)
				// Membership holds through runEnd; only the cheap stride
				// lattice check is redone per pixel. Recompute codes for
				// the run without counting comparisons.
				for rx := x + 1; rx < runEnd; rx++ {
					stats.RunSkippedPixels++
					rcode := bitpack.CodeN
					for _, l := range sublist {
						if l.Contains(rx, y) {
							c := classify(l, rx, y, frameIndex)
							if c > rcode {
								rcode = c
							}
						}
					}
					if rcode != bitpack.CodeN {
						mask.Set(y*w+rx, rcode)
					}
				}
				x = runEnd
			}
		}
	default:
		panic("core: unknown design")
	}
	return mask, stats
}

// classify returns the EncMask code region l assigns to pixel (x, y) at the
// given frame index, or CodeN when the pixel is outside l.
func classify(l region.Label, x, y, frameIndex int) bitpack.Code {
	if !l.Contains(x, y) {
		return bitpack.CodeN
	}
	if !l.ActiveAt(frameIndex) {
		return bitpack.CodeSk
	}
	if l.OnStride(x, y) {
		return bitpack.CodeR
	}
	return bitpack.CodeSt
}
