package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/frame"
)

// Multi-frame stream container (.rpxs): a header followed by concatenated
// encoded frames. The container keeps the decoder's history semantics
// explicit — frames must be read in capture order so temporal-skip
// resolution sees the same scratchpad contents the live pipeline did.

// streamMagic identifies the stream container.
const streamMagic = 0x52505853 // "RPXS"

// StreamWriter serializes a sequence of encoded frames.
type StreamWriter struct {
	w      io.Writer
	wrote  int
	w0, h0 int
	bpp0   int
	header bool
}

// NewStreamWriter returns a writer targeting w.
func NewStreamWriter(w io.Writer) *StreamWriter { return &StreamWriter{w: w} }

// WriteFrame appends one encoded frame. All frames in a stream must share
// geometry; the first frame fixes it.
func (sw *StreamWriter) WriteFrame(ef *EncodedFrame) error {
	if !sw.header {
		hdr := make([]byte, 0, 20)
		hdr = binary.LittleEndian.AppendUint32(hdr, streamMagic)
		hdr = binary.LittleEndian.AppendUint32(hdr, 1) // version
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(ef.W))
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(ef.H))
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(ef.BytesPerPixel))
		if _, err := sw.w.Write(hdr); err != nil {
			return err
		}
		sw.w0, sw.h0, sw.bpp0 = ef.W, ef.H, ef.BytesPerPixel
		sw.header = true
	}
	if ef.W != sw.w0 || ef.H != sw.h0 || ef.BytesPerPixel != sw.bpp0 {
		return fmt.Errorf("core: stream frame %dx%d bpp=%d does not match stream %dx%d bpp=%d",
			ef.W, ef.H, ef.BytesPerPixel, sw.w0, sw.h0, sw.bpp0)
	}
	if _, err := ef.WriteTo(sw.w); err != nil {
		return err
	}
	sw.wrote++
	return nil
}

// FramesWritten returns the number of frames appended.
func (sw *StreamWriter) FramesWritten() int { return sw.wrote }

// StreamReader deserializes a sequence of encoded frames.
type StreamReader struct {
	r       io.Reader
	W, H    int
	BPP     int
	read    int
	started bool
}

// NewStreamReader validates the stream header and returns a reader.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	hdr := make([]byte, 20)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("core: short stream header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr) != streamMagic {
		return nil, fmt.Errorf("core: bad stream magic %#x", binary.LittleEndian.Uint32(hdr))
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != 1 {
		return nil, fmt.Errorf("core: unsupported stream version %d", v)
	}
	sr := &StreamReader{
		r:   r,
		W:   int(binary.LittleEndian.Uint32(hdr[8:])),
		H:   int(binary.LittleEndian.Uint32(hdr[12:])),
		BPP: int(binary.LittleEndian.Uint32(hdr[16:])),
	}
	if sr.W <= 0 || sr.H <= 0 || sr.BPP <= 0 || sr.BPP > 4 || sr.W > MaxFrameDim || sr.H > MaxFrameDim {
		return nil, fmt.Errorf("core: unreasonable stream geometry %dx%d bpp=%d", sr.W, sr.H, sr.BPP)
	}
	return sr, nil
}

// ReadFrame returns the next encoded frame, or io.EOF at stream end.
func (sr *StreamReader) ReadFrame() (*EncodedFrame, error) {
	ef, err := ReadEncodedFrame(sr.r)
	if err != nil {
		if !sr.started && err == io.EOF {
			return nil, io.EOF
		}
		// Distinguish a clean end (EOF exactly at a frame boundary) from a
		// truncated frame.
		if isCleanEOF(err) {
			return nil, io.EOF
		}
		return nil, err
	}
	if ef.W != sr.W || ef.H != sr.H || ef.BytesPerPixel != sr.BPP {
		return nil, fmt.Errorf("core: stream frame geometry mismatch")
	}
	sr.started = true
	sr.read++
	return ef, nil
}

// FramesRead returns the number of frames consumed.
func (sr *StreamReader) FramesRead() int { return sr.read }

// isCleanEOF reports whether err is an EOF at a frame boundary (no header
// bytes were read).
func isCleanEOF(err error) bool {
	// ReadEncodedFrame wraps the header read error; an EOF before any
	// header byte surfaces as "short header: EOF".
	type unwrapper interface{ Unwrap() error }
	for e := err; e != nil; {
		if e == io.EOF {
			return true
		}
		u, ok := e.(unwrapper)
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// DecodeStream replays a stream through a decoder, invoking fn with each
// decoded frame in capture order. This is the offline analogue of the live
// pipeline: history accumulates exactly as it did during capture.
func DecodeStream(r io.Reader, format frame.Format, fn func(frameIndex int, decoded *frame.Frame) error) error {
	sr, err := NewStreamReader(r)
	if err != nil {
		return err
	}
	var dec *Decoder
	for {
		ef, err := sr.ReadFrame()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if dec == nil {
			dec = NewDecoder(sr.W, sr.H, format)
		}
		if err := dec.Push(ef); err != nil {
			return err
		}
		img, err := dec.DecodeFrame()
		if err != nil {
			return err
		}
		if err := fn(ef.FrameIndex, img); err != nil {
			return err
		}
	}
}
