package core

import (
	"repro/internal/bitpack"
	"repro/internal/region"
)

// CountCodes computes the EncMask code histogram for a frame without
// materializing the mask or touching pixel data. The throughput simulator
// uses it to derive per-frame traffic from region label specifications
// alone, exactly as the paper's evaluation methodology does (§5.3.1).
//
// The returned array is indexed by bitpack.Code: [N, St, Sk, R] counts.
// Labels must be y-sorted.
func CountCodes(w, h, frameIndex int, labels region.List) [4]int {
	var counts [4]int
	if len(labels) == 0 {
		counts[bitpack.CodeN] = w * h
		return counts
	}
	codes := make([]bitpack.Code, w)
	var sublist []region.Label
	for y := 0; y < h; y++ {
		sublist = sublist[:0]
		for _, l := range labels {
			if l.Y > y {
				break
			}
			if l.RowInYRange(y) {
				sublist = append(sublist, l)
			}
		}
		if len(sublist) == 0 {
			counts[bitpack.CodeN] += w
			continue
		}
		for i := range codes {
			codes[i] = bitpack.CodeN
		}
		for _, l := range sublist {
			x1 := l.X + l.W
			switch {
			case !l.ActiveAt(frameIndex):
				for x := l.X; x < x1; x++ {
					if codes[x] < bitpack.CodeSk {
						codes[x] = bitpack.CodeSk
					}
				}
			case l.Stride > 1 && (y-l.Y)%l.Stride != 0:
				for x := l.X; x < x1; x++ {
					if codes[x] < bitpack.CodeSt {
						codes[x] = bitpack.CodeSt
					}
				}
			default:
				for x := l.X; x < x1; x++ {
					if l.Stride <= 1 || (x-l.X)%l.Stride == 0 {
						codes[x] = bitpack.CodeR
					} else if codes[x] < bitpack.CodeSt {
						codes[x] = bitpack.CodeSt
					}
				}
			}
		}
		for _, c := range codes {
			counts[c]++
		}
	}
	return counts
}
