package core

import "repro/internal/bitpack"

// framePoolCap bounds how many recycled frames a pool retains; beyond it,
// Put drops the frame for the GC. A capture pipeline holds at most
// history-depth frames in flight, so a small stack covers steady state.
const framePoolCap = 16

// FramePool recycles EncodedFrame storage (pixel payload, row-offset table,
// EncMask) between captures so the steady-state encode path performs zero
// allocations.
//
// Ownership contract: a frame handed to Put must no longer be referenced by
// anyone — the next Get returns the same storage cleared for reuse. The
// pool is NOT safe for concurrent use; like the encoders it serves, it
// belongs to a single goroutine (in the service, the session worker). The
// zero value is ready to use, and a nil *FramePool is valid everywhere one
// is accepted, meaning "allocate fresh frames".
type FramePool struct {
	free []*EncodedFrame
}

// Get returns a frame cleared for encoding a w×h image at bpp bytes per
// pixel: Pix and RowOffsets are empty with retained capacity and every Mask
// element is CodeN (the encoders rely on that and only write non-N codes).
// Recycled frames with different geometry are discarded rather than resized.
func (p *FramePool) Get(w, h, bpp int) *EncodedFrame {
	if p != nil {
		for n := len(p.free); n > 0; n = len(p.free) {
			ef := p.free[n-1]
			p.free[n-1] = nil
			p.free = p.free[:n-1]
			if ef.W != w || ef.H != h || ef.BytesPerPixel != bpp {
				continue
			}
			ef.FrameIndex = 0
			ef.Pix = ef.Pix[:0]
			ef.RowOffsets = ef.RowOffsets[:0]
			ef.Mask.Reset()
			return ef
		}
	}
	return &EncodedFrame{
		W:             w,
		H:             h,
		BytesPerPixel: bpp,
		Pix:           nil,
		RowOffsets:    make([]uint32, 0, h+1),
		Mask:          bitpack.NewMask2(w * h),
	}
}

// Put hands a frame's storage back for reuse. ef must not be used (or
// reachable by any caller) afterwards. Nil frames and nil pools are no-ops.
func (p *FramePool) Put(ef *EncodedFrame) {
	if p == nil || ef == nil || ef.Mask == nil {
		return
	}
	if len(p.free) >= framePoolCap {
		return
	}
	p.free = append(p.free, ef)
}

// Len reports how many recycled frames the pool currently holds (testing
// and observability).
func (p *FramePool) Len() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}
