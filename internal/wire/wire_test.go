package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/frame"
	"repro/internal/region"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := WriteMessage(&buf, MsgCapture, payload, 0); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	if err := WriteMessage(&buf, MsgDecode, nil, 0); err != nil {
		t.Fatalf("WriteMessage empty: %v", err)
	}
	typ, got, err := ReadMessage(&buf, 0)
	if err != nil || typ != MsgCapture || !bytes.Equal(got, payload) {
		t.Fatalf("ReadMessage = %d %v %v, want %d %v", typ, got, err, MsgCapture, payload)
	}
	typ, got, err = ReadMessage(&buf, 0)
	if err != nil || typ != MsgDecode || got != nil {
		t.Fatalf("ReadMessage empty = %d %v %v", typ, got, err)
	}
	if _, _, err := ReadMessage(&buf, 0); err != io.EOF {
		t.Fatalf("ReadMessage at end = %v, want io.EOF", err)
	}
}

func TestMessageSizeLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, MsgCapture, make([]byte, 100), 64); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("WriteMessage over cap = %v, want ErrTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized write leaked %d bytes", buf.Len())
	}
	// A hostile length prefix must be rejected before allocation.
	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hdr, 1<<31)
	hdr[4] = MsgCapture
	if _, _, err := ReadMessage(bytes.NewReader(hdr), 1<<20); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("ReadMessage hostile length = %v, want ErrTooLarge", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{W: 640, H: 480, Format: frame.RGB24, HistoryDepth: 6, QueueDepth: 3, Block: true}
	got, err := UnmarshalHello(MarshalHello(h))
	if err != nil {
		t.Fatalf("UnmarshalHello: %v", err)
	}
	h.Version = ProtoVersion // zero Version marshals as the newest revision
	if got != h {
		t.Fatalf("hello round trip = %+v, want %+v", got, h)
	}
}

// TestHelloVersionNegotiation pins the compatibility contract: a v2 HELLO
// against a v3 decoder negotiates down cleanly (the old wire layout is
// version-identical), while versions outside [MinProtoVersion, ProtoVersion]
// — what a v3 HELLO hits on a server with the old strict `v != 2` check, and
// what a hypothetical v4 client hits on this server — fail with the typed
// *VersionError rather than a stringly error.
func TestHelloVersionNegotiation(t *testing.T) {
	h := Hello{W: 64, H: 48, Format: frame.Gray8, Version: MinProtoVersion}
	got, err := UnmarshalHello(MarshalHello(h))
	if err != nil {
		t.Fatalf("v2 HELLO rejected: %v", err)
	}
	if got.Version != MinProtoVersion {
		t.Fatalf("negotiated version = %d, want %d", got.Version, MinProtoVersion)
	}
	for _, v := range []uint32{MinProtoVersion - 1, ProtoVersion + 1, 0xffffffff} {
		b := MarshalHello(Hello{W: 64, H: 48, Format: frame.Gray8, Version: ProtoVersion})
		binary.LittleEndian.PutUint32(b[4:], v)
		_, err := UnmarshalHello(b)
		var ve *VersionError
		if !errors.As(err, &ve) {
			t.Fatalf("version %d: err = %v, want *VersionError", v, err)
		}
		if ve.Got != v || ve.Min != MinProtoVersion || ve.Max != ProtoVersion {
			t.Fatalf("version %d: VersionError = %+v", v, ve)
		}
	}
}

// TestHelloAckBothForms: the legacy 12-byte HELLO_ACK (what a v2 session
// receives, and all an old client can parse) implies version 2; the 16-byte
// v3 form carries the negotiated version explicitly.
func TestHelloAckBothForms(t *testing.T) {
	legacy := MarshalHelloAck(HelloAck{SessionID: 9, MaxPayload: 1 << 20, Version: 2})
	if len(legacy) != 12 {
		t.Fatalf("v2 HELLO_ACK is %d bytes, want 12 (old clients reject anything else)", len(legacy))
	}
	a, err := UnmarshalHelloAck(legacy)
	if err != nil || a.Version != 2 || a.SessionID != 9 {
		t.Fatalf("legacy ack = %+v %v", a, err)
	}
	ext := MarshalHelloAck(HelloAck{SessionID: 9, MaxPayload: 1 << 20, Version: 3})
	if len(ext) != 16 {
		t.Fatalf("v3 HELLO_ACK is %d bytes, want 16", len(ext))
	}
	a, err = UnmarshalHelloAck(ext)
	if err != nil || a.Version != 3 || a.SessionID != 9 || a.MaxPayload != 1<<20 {
		t.Fatalf("extended ack = %+v %v", a, err)
	}
	if _, err := UnmarshalHelloAck(ext[:14]); err == nil {
		t.Fatal("14-byte HELLO_ACK accepted")
	}
}

func TestHelloRejectsBadMagicAndVersion(t *testing.T) {
	b := MarshalHello(Hello{W: 64, H: 64, Format: frame.Gray8})
	bad := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(bad, 0xdeadbeef)
	if _, err := UnmarshalHello(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic err = %v", err)
	}
	bad = append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(bad[4:], ProtoVersion+7)
	if _, err := UnmarshalHello(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version err = %v", err)
	}
	bad = append([]byte(nil), b...)
	bad[16] = byte(frame.BayerRGGB)
	if _, err := UnmarshalHello(bad); err == nil || !strings.Contains(err.Error(), "format") {
		t.Fatalf("bad format err = %v", err)
	}
	if _, err := UnmarshalHello(b[:10]); err == nil {
		t.Fatal("short hello accepted")
	}
}

func TestLabelsRoundTrip(t *testing.T) {
	labels := region.List{
		{X: 10, Y: 20, W: 100, H: 80, Stride: 2, Skip: 3, Phase: 1},
		{X: 0, Y: 0, W: 640, H: 480, Stride: 1, Skip: 1},
	}
	got, err := UnmarshalLabels(MarshalLabels(labels))
	if err != nil {
		t.Fatalf("UnmarshalLabels: %v", err)
	}
	if len(got) != len(labels) {
		t.Fatalf("got %d labels, want %d", len(got), len(labels))
	}
	for i := range labels {
		if got[i] != labels[i] {
			t.Fatalf("label %d = %+v, want %+v", i, got[i], labels[i])
		}
	}
	if got, err := UnmarshalLabels(MarshalLabels(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty labels = %v %v", got, err)
	}
	// Count not matching payload size must fail, not over-read.
	b := MarshalLabels(labels)
	binary.LittleEndian.PutUint32(b, 99)
	if _, err := UnmarshalLabels(b); err == nil {
		t.Fatal("mismatched label count accepted")
	}
}

// TestLabelsCountOverflow is the regression test for the 32-bit length-check
// bypass: a crafted count chosen so that 4+n*labelSize wraps a 32-bit int
// back to the actual payload length would pass the framing check and reach
// the allocation with n in the hundreds of millions. The count must be
// bounded by what the payload can carry before any multiplication.
func TestLabelsCountOverflow(t *testing.T) {
	// 28*153391690+4 = 2^32+28, which truncates to 28 in a 32-bit int —
	// exactly the length of this one-label payload.
	b := MarshalLabels(region.List{{X: 1, Y: 2, W: 3, H: 4, Stride: 1, Skip: 1}})
	binary.LittleEndian.PutUint32(b, 153391690)
	if _, err := UnmarshalLabels(b); err == nil {
		t.Fatal("overflowing label count accepted")
	}
	// The same guard must catch every count the payload cannot carry, with
	// no allocation proportional to the claim.
	for _, n := range []uint32{2, 1 << 20, 0xffffffff} {
		binary.LittleEndian.PutUint32(b, n)
		if _, err := UnmarshalLabels(b); err == nil {
			t.Fatalf("count %d accepted for a one-label payload", n)
		}
	}
}

func TestFramePayloadSize(t *testing.T) {
	if got := FramePayloadSize(16, 8, frame.Gray8); got != 9+16*8 {
		t.Fatalf("FramePayloadSize(16,8,Gray8) = %d", got)
	}
	// The 32k×32k RGB24 worst case must not overflow: 3 GiB and change.
	if got := FramePayloadSize(1<<15, 1<<15, frame.RGB24); got != 9+3*(1<<30) {
		t.Fatalf("FramePayloadSize(32k,32k,RGB24) = %d", got)
	}
}

func TestCaptureAckRoundTrip(t *testing.T) {
	a := CaptureAck{FrameIndex: 41, EncodedPixels: 12345, EncodedBytes: 54321, PixelFraction: 0.375}
	got, err := UnmarshalCaptureAck(MarshalCaptureAck(a))
	if err != nil || got != a {
		t.Fatalf("capture ack round trip = %+v %v, want %+v", got, err, a)
	}
}

func TestWindowRoundTrip(t *testing.T) {
	w := Window{X: 3, Y: 7, W: 64, H: 32}
	got, err := UnmarshalWindow(MarshalWindow(w))
	if err != nil || got != w {
		t.Fatalf("window round trip = %+v %v, want %+v", got, err, w)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	fr := frame.New(16, 8, frame.RGB24)
	for i := range fr.Pix {
		fr.Pix[i] = byte(i * 7)
	}
	got, err := UnmarshalFrame(MarshalFrame(fr))
	if err != nil {
		t.Fatalf("UnmarshalFrame: %v", err)
	}
	if !got.Equal(fr) {
		t.Fatal("frame round trip mismatch")
	}
	// Pixel count must match header geometry.
	b := MarshalFrame(fr)
	if _, err := UnmarshalFrame(b[:len(b)-1]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	re, err := UnmarshalError(MarshalError(CodeBacklog, "queue full"))
	if err != nil {
		t.Fatalf("UnmarshalError: %v", err)
	}
	if re.Code != CodeBacklog || re.Message != "queue full" {
		t.Fatalf("remote error = %+v", re)
	}
	if !strings.Contains(re.Error(), "queue full") {
		t.Fatalf("Error() = %q", re.Error())
	}
	if _, err := UnmarshalError([]byte{1}); err == nil {
		t.Fatal("short error payload accepted")
	}
}
