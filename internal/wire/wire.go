// Package wire defines the rpxd wire protocol: a length-prefixed binary
// message framing over a byte stream (TCP in production, net.Pipe in tests)
// that carries rhythmic-pixel session traffic — label updates in, raw frames
// in, capture statistics and reconstructed pixels out.
//
// Every message is framed as
//
//	uint32 payload length (little endian) | uint8 message type | payload
//
// and the first message on a connection must be HELLO, which carries the
// protocol magic and version plus the session geometry the client wants to
// negotiate. Readers enforce a per-message payload cap so a malformed or
// hostile peer cannot make the receiver allocate unbounded memory; writers
// refuse to emit messages above the same cap. Encoded frames travel in the
// same RPXE container the .rpxs stream format uses (core.EncodedFrame.WriteTo
// / core.ReadEncodedFrame), so any encoded-frame transport — file, socket, or
// pipe — shares one framing.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"

	"repro/internal/frame"
	"repro/internal/region"
)

// ProtoMagic identifies the rpxd protocol in the HELLO message.
const ProtoMagic = 0x52505844 // "RPXD"

// ProtoVersion is the newest protocol revision this package speaks. HELLO
// carries the client's version; servers negotiate down to it when it is
// older but still supported, and reject anything outside
// [MinProtoVersion, ProtoVersion] with a typed *VersionError so framing
// changes fail loudly. Version 2 added the Parallelism field to HELLO.
// Version 3 added the streaming push mode: SUBSCRIBE / SUBSCRIBE_ACK /
// CREDIT / FRAME_PUSH / UNSUBSCRIBE and the extended HELLO_ACK that echoes
// the negotiated version. Version 4 added the codec capability byte to
// HELLO and HELLO_ACK: a v4 client may request CodecPackedMask and, when
// the server echoes it, FRAME/FRAME_PUSH payloads carry the RPXE v2
// packed-metadata container instead of raw offsets + mask. Version 5 added
// in-stream label feedback: a subscribed v5 connection may send
// STREAM_LABELS to install a region-label workload on the subscription's
// target session and receives LABELS_APPLIED with the first frame sequence
// number captured under the new labels. The v5 HELLO/HELLO_ACK byte layout
// is identical to v4 — only the version number and the two new message
// types differ.
const ProtoVersion = 5

// MinProtoVersion is the oldest protocol revision servers still accept. A
// v2 client negotiates a v2 session against a v3 server and sees identical
// behaviour to the old implementation: 12-byte HELLO_ACK, request/reply
// only, no push traffic.
const MinProtoVersion = 2

// DefaultMaxPayload caps a single message payload (32 MiB): comfortably
// above a 1080p RGB frame plus metadata, far below an OOM.
const DefaultMaxPayload = 32 << 20

// headerSize is the fixed message prefix: u32 payload length + u8 type.
const headerSize = 5

// Message types. Requests flow client to server, replies server to client.
const (
	// MsgHello opens a connection: protocol magic/version + session config.
	MsgHello byte = 1
	// MsgHelloAck confirms the session: session id + negotiated payload cap.
	MsgHelloAck byte = 2
	// MsgSetLabels installs a region-label workload.
	MsgSetLabels byte = 3
	// MsgAck is the empty success reply (SET_LABELS, CLOSE).
	MsgAck byte = 4
	// MsgCapture carries one raw raster-scan frame to encode.
	MsgCapture byte = 5
	// MsgCaptureAck returns the CaptureStats of an encode.
	MsgCaptureAck byte = 6
	// MsgDecode requests the full reconstructed newest frame.
	MsgDecode byte = 7
	// MsgDecodeWindow requests a sub-rectangle of the newest frame.
	MsgDecodeWindow byte = 8
	// MsgFrame returns reconstructed pixels.
	MsgFrame byte = 9
	// MsgStats requests a server statistics snapshot.
	MsgStats byte = 10
	// MsgStatsAck returns the snapshot as JSON.
	MsgStatsAck byte = 11
	// MsgGetEncoded requests the newest encoded frame.
	MsgGetEncoded byte = 12
	// MsgEncoded returns an encoded frame in the RPXE container framing.
	MsgEncoded byte = 13
	// MsgClose ends the session gracefully.
	MsgClose byte = 14
	// MsgError is the failure reply: code + human-readable message.
	MsgError byte = 15

	// Streaming push mode (protocol v3). A SUBSCRIBE switches the
	// connection from request/reply to push mode: the server sends
	// FRAME_PUSH messages as frames are produced — never beyond the credits
	// the client has granted — until the client UNSUBSCRIBEs (acknowledged
	// with ACK after the last push) or the stream ends with an ERROR.

	// MsgSubscribe attaches the connection to a session's encoded-frame
	// stream with an initial credit window and a batching bound.
	MsgSubscribe byte = 16
	// MsgSubscribeAck confirms a subscription: subscription id + next
	// sequence number the stream will observe.
	MsgSubscribeAck byte = 17
	// MsgCredit grants the server more push credits (client to server).
	MsgCredit byte = 18
	// MsgFramePush carries up to Batch encoded frames with their capture
	// statistics and sequence numbers (server to client, unsolicited).
	MsgFramePush byte = 19
	// MsgUnsubscribe ends the subscription; the server flushes frames
	// already accepted against credit, then replies ACK.
	MsgUnsubscribe byte = 20

	// Closed-loop label feedback (protocol v5). While subscribed, a v5
	// client may push a region-label workload back to the subscription's
	// target session; the reply rides the push stream as its own message
	// type (never ACK/ERROR, which gateways and clients treat as
	// stream-terminal).

	// MsgStreamLabels installs a region-label workload on the
	// subscription's target session (client to server, while streaming).
	MsgStreamLabels byte = 21
	// MsgLabelsApplied acknowledges STREAM_LABELS with the first frame
	// sequence number captured under the new labels, or a rejection code.
	MsgLabelsApplied byte = 22
)

// Error codes carried by MsgError.
const (
	// CodeProto is a protocol violation (bad magic, version, framing).
	CodeProto uint16 = 1
	// CodeBadRequest is a structurally valid but unsatisfiable request.
	CodeBadRequest uint16 = 2
	// CodeBacklog means the session's request queue is full.
	CodeBacklog uint16 = 3
	// CodeSessionLimit means the server is at its session cap.
	CodeSessionLimit uint16 = 4
	// CodeTooLarge means a message exceeded the payload cap.
	CodeTooLarge uint16 = 5
	// CodeInternal is an unexpected server-side failure.
	CodeInternal uint16 = 6
	// CodeGeometry means the HELLO geometry was rejected at handshake: a
	// session whose CAPTURE/FRAME payloads cannot fit the negotiated payload
	// cap would fail every frame after accepting the connection, so the
	// server refuses it up front.
	CodeGeometry uint16 = 7
	// CodeUnavailable means a gateway could not complete the request against
	// any backend: the routed rpxd died mid-request and either the request
	// was not safely retryable (CAPTURE) or no healthy survivor could take
	// the session. The session itself may still be healthy — rpxgw migrates
	// it before replying — so the client may simply continue.
	CodeUnavailable uint16 = 8
)

// ErrTooLarge is returned when a message payload exceeds the reader's or
// writer's cap.
var ErrTooLarge = errors.New("wire: message exceeds payload cap")

// VersionError is the typed rejection of a HELLO whose protocol version is
// outside the range a receiver supports. It is distinguishable from other
// handshake failures (errors.As) so clients and gateways can report "speak
// an older protocol" rather than a generic rejection.
type VersionError struct {
	// Got is the version the HELLO carried.
	Got uint32
	// Min, Max bound the versions the receiver accepts.
	Min, Max uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: unsupported protocol version %d (speak %d..%d)", e.Got, e.Min, e.Max)
}

// RemoteError is a server-reported failure decoded from MsgError.
type RemoteError struct {
	Code    uint16
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: remote error %d: %s", e.Code, e.Message)
}

// WriteMessage frames one message onto w. Payloads above maxPayload (0 means
// DefaultMaxPayload) fail with ErrTooLarge before any bytes are written.
// Header and payload are handed to the writer as one vectored write
// (net.Buffers), so on a *net.TCPConn the whole message leaves in a single
// writev syscall and a reader never observes a header without its payload.
//
// WriteMessage itself is not safe for concurrent writers on one conn — two
// goroutines can still interleave whole messages' bytes only if the writer
// below splits them (bufio does). Connections with concurrent writers (the
// v3 push publisher sharing a conn with a reply path) must funnel through a
// MessageWriter, which serializes messages under its own mutex.
func WriteMessage(w io.Writer, typ byte, payload []byte, maxPayload int) error {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), maxPayload)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	hdr[4] = typ
	if len(payload) == 0 {
		_, err := w.Write(hdr[:])
		return err
	}
	vec := net.Buffers{hdr[:], payload}
	_, err := vec.WriteTo(w)
	return err
}

// MessageWriter serializes framed messages onto a shared writer. It exists
// for connections with more than one writing goroutine — the server's v3
// FRAME_PUSH publisher and its reply path, the client's CREDIT grants racing
// round-trip requests — where per-message atomicity must hold: a message's
// header and payload always reach the wire contiguously, never interleaved
// with another goroutine's message.
//
// Each message is assembled into a reusable two-element vector (header,
// payload) and handed to the writer in one net.Buffers.WriteTo — a single
// writev syscall on a *net.TCPConn — so the steady-state write path
// performs zero allocations.
type MessageWriter struct {
	mu     sync.Mutex
	w      io.Writer
	hdr    [headerSize]byte
	vecbuf [2][]byte
	// vec is the reusable net.Buffers handed to WriteTo; it lives in the
	// struct (not a local) because WriteTo's pointer receiver would
	// otherwise force a per-message heap escape.
	vec net.Buffers
}

// NewMessageWriter returns a MessageWriter framing messages onto w.
func NewMessageWriter(w io.Writer) *MessageWriter {
	return &MessageWriter{w: w}
}

// WriteMessage frames one message, atomically with respect to other
// WriteMessage calls on the same MessageWriter. The payload is fully
// consumed before the call returns; the caller may reuse it immediately.
func (mw *MessageWriter) WriteMessage(typ byte, payload []byte, maxPayload int) error {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), maxPayload)
	}
	mw.mu.Lock()
	defer mw.mu.Unlock()
	binary.LittleEndian.PutUint32(mw.hdr[:], uint32(len(payload)))
	mw.hdr[4] = typ
	if len(payload) == 0 {
		_, err := mw.w.Write(mw.hdr[:])
		return err
	}
	mw.vecbuf[0] = mw.hdr[:]
	mw.vecbuf[1] = payload
	mw.vec = mw.vecbuf[:]
	_, err := mw.vec.WriteTo(mw.w)
	mw.vecbuf[1] = nil // do not pin the payload past the write
	mw.vec = nil
	return err
}

// readChunk bounds how far a payload read extends its buffer beyond the
// bytes that have actually arrived, mirroring the RPXE reader: a hostile
// length prefix on a truncated stream costs at most one spare chunk, not an
// up-front allocation of the claimed length.
const readChunk = 1 << 20

// ReadMessage reads one framed message from r into a freshly allocated
// payload buffer. The length prefix is validated against the cap (0 means
// DefaultMaxPayload) before any allocation, and the buffer grows in
// readChunk steps as bytes arrive. Use ReadMessageInto to amortize the
// payload buffer across a connection's messages.
func ReadMessage(r io.Reader, maxPayload int) (typ byte, payload []byte, err error) {
	var buf []byte
	return ReadMessageInto(r, &buf, maxPayload)
}

// ReadMessageInto reads one framed message from r, placing the payload in
// *buf (grown as needed, reused otherwise) and returning a slice of it.
// The returned payload is valid only until the next ReadMessageInto with
// the same buf; callers that retain it must copy.
//
// Reuse is what makes the server's steady-state read path allocation-free:
// each connection owns one buffer that every request payload lands in, and
// the request is fully consumed before the next read overwrites it.
func ReadMessageInto(r io.Reader, buf *[]byte, maxPayload int) (typ byte, payload []byte, err error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	b := *buf
	if cap(b) < headerSize {
		b = make([]byte, headerSize, 4096)
		*buf = b
	}
	b = b[:headerSize]
	if _, err := io.ReadFull(r, b); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(b))
	typ = b[4]
	if n > maxPayload {
		return typ, nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, n, maxPayload)
	}
	if n == 0 {
		return typ, nil, nil
	}
	// Fill [0, n) of the buffer, extending by at most readChunk beyond the
	// bytes actually read so far (the header bytes are overwritten — they
	// are already decoded).
	filled := 0
	b = b[:0]
	for filled < n {
		m := min(readChunk, n-filled)
		if cap(b) < filled+m {
			b = append(b[:filled], make([]byte, m)...)
		} else {
			b = b[:filled+m]
		}
		if _, err := io.ReadFull(r, b[filled:]); err != nil {
			*buf = b[:0]
			return typ, nil, fmt.Errorf("wire: short payload: %w", err)
		}
		filled += m
	}
	*buf = b
	return typ, b, nil
}

// Hello is the session-opening handshake payload.
type Hello struct {
	// Version is the protocol revision the client speaks. MarshalHello
	// writes ProtoVersion when it is zero; UnmarshalHello records what the
	// peer actually sent so servers can gate v3-only messages (SUBSCRIBE)
	// on the negotiated revision.
	Version int
	// W, H are the session frame dimensions.
	W, H int
	// Format is the pixel format (Gray8, RGB24, YUV444).
	Format frame.Format
	// HistoryDepth is the decoder scratchpad depth (0 = server default).
	HistoryDepth int
	// QueueDepth bounds the session's request queue (0 = server default).
	QueueDepth int
	// Block selects backpressure behaviour when the queue is full: block
	// (true) or fail fast with a BACKLOG error (false).
	Block bool
	// Parallelism is the number of row-band encode/decode workers the
	// session's pipeline fans out to (0 = server default, i.e. 1: the
	// sequential reference path).
	Parallelism int
	// Codec is the v4 capability bitmap of frame codecs the client can
	// decode (zero = raw only). Servers grant the intersection of what the
	// client offers and what they implement, echoed in the HELLO_ACK. The
	// byte exists on the wire only from v4 on; v2/v3 HELLOs imply zero.
	Codec uint8
}

// CodecPackedMask is the Hello.Codec capability bit for the RPXE v2
// packed-metadata container (varint row-offset deltas + RLE mask, see
// core/bitpack). Raw remains the byte-identity reference path when unset.
const CodecPackedMask uint8 = 1 << 0

// codecKnownMask is every capability bit this revision defines. Unknown
// bits are rejected rather than ignored: a future revision that defines
// more bits will also bump ProtoVersion, so nothing legitimate sends them.
const codecKnownMask = CodecPackedMask

// MaxParallelism caps the HELLO Parallelism field so a hostile handshake
// cannot request an absurd per-session worker count. Matches rpx's cap.
const MaxParallelism = 256

// helloSize is the v2/v3 HELLO length; v4 appends the codec byte.
const helloSize = 4 + 4 + 4 + 4 + 1 + 4 + 4 + 1 + 4
const helloSizeV4 = helloSize + 1

// AppendHello appends a HELLO payload to dst, prefixed with magic and
// version (h.Version, defaulting to ProtoVersion when zero). The codec
// capability byte rides only on v4 payloads, so a client pinning Version 3
// or 2 emits bytes identical to the previous protocol revisions.
func AppendHello(dst []byte, h Hello) []byte {
	v := uint32(h.Version)
	if v == 0 {
		v = ProtoVersion
	}
	dst = binary.LittleEndian.AppendUint32(dst, ProtoMagic)
	dst = binary.LittleEndian.AppendUint32(dst, v)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(h.W))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(h.H))
	dst = append(dst, byte(h.Format))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(h.HistoryDepth))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(h.QueueDepth))
	if h.Block {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(h.Parallelism))
	if v >= 4 {
		dst = append(dst, h.Codec)
	}
	return dst
}

// MarshalHello encodes a HELLO payload into a fresh buffer.
func MarshalHello(h Hello) []byte { return AppendHello(nil, h) }

// UnmarshalHello validates magic and version and decodes the handshake.
func UnmarshalHello(b []byte) (Hello, error) {
	if len(b) < 8 {
		return Hello{}, fmt.Errorf("wire: HELLO payload is %d bytes, want at least 8", len(b))
	}
	if m := binary.LittleEndian.Uint32(b); m != ProtoMagic {
		return Hello{}, fmt.Errorf("wire: bad protocol magic %#x", m)
	}
	v := binary.LittleEndian.Uint32(b[4:])
	if v < MinProtoVersion || v > ProtoVersion {
		return Hello{}, &VersionError{Got: v, Min: MinProtoVersion, Max: ProtoVersion}
	}
	want := helloSize
	if v >= 4 {
		want = helloSizeV4
	}
	if len(b) != want {
		return Hello{}, fmt.Errorf("wire: v%d HELLO payload is %d bytes, want %d", v, len(b), want)
	}
	h := Hello{
		Version:      int(v),
		W:            int(binary.LittleEndian.Uint32(b[8:])),
		H:            int(binary.LittleEndian.Uint32(b[12:])),
		Format:       frame.Format(b[16]),
		HistoryDepth: int(binary.LittleEndian.Uint32(b[17:])),
		QueueDepth:   int(binary.LittleEndian.Uint32(b[21:])),
		Block:        b[25] != 0,
		Parallelism:  int(binary.LittleEndian.Uint32(b[26:])),
	}
	switch h.Format {
	case frame.Gray8, frame.RGB24, frame.YUV444:
	default:
		return Hello{}, fmt.Errorf("wire: format %d not streamable", b[16])
	}
	if h.W <= 0 || h.H <= 0 || h.W > 1<<15 || h.H > 1<<15 {
		return Hello{}, fmt.Errorf("wire: unreasonable session geometry %dx%d", h.W, h.H)
	}
	if h.Parallelism < 0 || h.Parallelism > MaxParallelism {
		return Hello{}, fmt.Errorf("wire: parallelism %d outside [0,%d]", h.Parallelism, MaxParallelism)
	}
	if v >= 4 {
		h.Codec = b[26+4]
		if h.Codec&^codecKnownMask != 0 {
			return Hello{}, fmt.Errorf("wire: unknown codec capability bits %#x", h.Codec&^codecKnownMask)
		}
	}
	return h, nil
}

// HelloAck confirms a negotiated session.
type HelloAck struct {
	// SessionID identifies the session in server statistics.
	SessionID uint64
	// MaxPayload is the per-message payload cap both sides must honour.
	MaxPayload int
	// Version is the negotiated protocol revision. Sessions negotiated at
	// v2 receive the legacy 12-byte acknowledgment (which cannot carry a
	// version and implies 2), so old clients parse replies from new servers
	// unchanged; v3 sessions receive the 16-byte form, v4 sessions the
	// 17-byte form with the granted codec byte.
	Version int
	// Codec is the granted codec capability bitmap: the intersection of
	// what the client offered in HELLO and what the server implements.
	// Zero (and any pre-v4 acknowledgment) means raw frames.
	Codec uint8
}

// AppendHelloAck appends a HELLO acknowledgment to dst: the legacy 12-byte
// form for v2 (or unset) sessions, the extended 16-byte form for v3, and
// the 17-byte form carrying the granted codec byte from v4 on.
func AppendHelloAck(dst []byte, a HelloAck) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, a.SessionID)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.MaxPayload))
	if a.Version <= MinProtoVersion {
		return dst
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.Version))
	if a.Version >= 4 {
		dst = append(dst, a.Codec)
	}
	return dst
}

// MarshalHelloAck encodes a HELLO acknowledgment into a fresh buffer.
func MarshalHelloAck(a HelloAck) []byte { return AppendHelloAck(nil, a) }

// UnmarshalHelloAck decodes a HELLO acknowledgment in any of its forms.
func UnmarshalHelloAck(b []byte) (HelloAck, error) {
	if len(b) != 12 && len(b) != 16 && len(b) != 17 {
		return HelloAck{}, fmt.Errorf("wire: HELLO_ACK payload is %d bytes, want 12, 16 or 17", len(b))
	}
	a := HelloAck{
		SessionID:  binary.LittleEndian.Uint64(b),
		MaxPayload: int(binary.LittleEndian.Uint32(b[8:])),
		Version:    MinProtoVersion,
	}
	if len(b) >= 16 {
		a.Version = int(binary.LittleEndian.Uint32(b[12:]))
		if a.Version < MinProtoVersion || a.Version > ProtoVersion {
			return HelloAck{}, &VersionError{Got: uint32(a.Version), Min: MinProtoVersion, Max: ProtoVersion}
		}
	}
	if len(b) == 17 {
		if a.Version < 4 {
			return HelloAck{}, fmt.Errorf("wire: codec byte on a v%d HELLO_ACK", a.Version)
		}
		a.Codec = b[16]
		if a.Codec&^codecKnownMask != 0 {
			return HelloAck{}, fmt.Errorf("wire: unknown codec capability bits %#x", a.Codec&^codecKnownMask)
		}
	} else if a.Version >= 4 {
		return HelloAck{}, fmt.Errorf("wire: v%d HELLO_ACK missing codec byte", a.Version)
	}
	if a.MaxPayload <= 0 {
		return HelloAck{}, fmt.Errorf("wire: non-positive payload cap %d", a.MaxPayload)
	}
	return a, nil
}

// labelSize is the wire size of one region label: seven int32 fields.
const labelSize = 7 * 4

// AppendLabels appends a region-label list payload to dst.
func AppendLabels(dst []byte, labels region.List) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(labels)))
	for _, l := range labels {
		for _, v := range [7]int{l.X, l.Y, l.W, l.H, l.Stride, l.Skip, l.Phase} {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(v)))
		}
	}
	return dst
}

// MarshalLabels encodes a region-label list into a fresh buffer.
func MarshalLabels(labels region.List) []byte { return AppendLabels(nil, labels) }

// UnmarshalLabels decodes a region-label list. It checks only framing; the
// server's driver path validates the labels against session geometry.
func UnmarshalLabels(b []byte) (region.List, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: SET_LABELS payload is %d bytes, want >= 4", len(b))
	}
	// Bound the untrusted count by what the payload can actually carry
	// before any arithmetic: 4+n*labelSize overflows int on 32-bit hosts,
	// which would let a crafted count pass the length check below and reach
	// the allocation with a huge n.
	n64 := int64(binary.LittleEndian.Uint32(b))
	if max := int64(len(b)-4) / labelSize; n64 > max {
		return nil, fmt.Errorf("wire: SET_LABELS claims %d labels, payload fits %d", n64, max)
	}
	n := int(n64)
	if want := 4 + n*labelSize; len(b) != want {
		return nil, fmt.Errorf("wire: SET_LABELS payload is %d bytes for %d labels, want %d", len(b), n, want)
	}
	labels := make(region.List, n)
	off := 4
	next := func() int {
		v := int(int32(binary.LittleEndian.Uint32(b[off:])))
		off += 4
		return v
	}
	for i := range labels {
		labels[i] = region.Label{
			X: next(), Y: next(), W: next(), H: next(),
			Stride: next(), Skip: next(), Phase: next(),
		}
	}
	return labels, nil
}

// CaptureAck carries the capture statistics of one encoded frame.
type CaptureAck struct {
	FrameIndex    int
	EncodedPixels int
	EncodedBytes  int
	PixelFraction float64
}

// AppendCaptureAck appends capture statistics to dst.
func AppendCaptureAck(dst []byte, a CaptureAck) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.FrameIndex))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.EncodedPixels))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.EncodedBytes))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.PixelFraction))
}

// MarshalCaptureAck encodes capture statistics into a fresh buffer.
func MarshalCaptureAck(a CaptureAck) []byte { return AppendCaptureAck(nil, a) }

// UnmarshalCaptureAck decodes capture statistics.
func UnmarshalCaptureAck(b []byte) (CaptureAck, error) {
	if len(b) != 20 {
		return CaptureAck{}, fmt.Errorf("wire: CAPTURE_ACK payload is %d bytes, want 20", len(b))
	}
	return CaptureAck{
		FrameIndex:    int(binary.LittleEndian.Uint32(b)),
		EncodedPixels: int(binary.LittleEndian.Uint32(b[4:])),
		EncodedBytes:  int(binary.LittleEndian.Uint32(b[8:])),
		PixelFraction: math.Float64frombits(binary.LittleEndian.Uint64(b[12:])),
	}, nil
}

// Window is a DECODE_WINDOW request rectangle.
type Window struct {
	X, Y, W, H int
}

// AppendWindow appends a decode-window request to dst.
func AppendWindow(dst []byte, w Window) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(w.X)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(w.Y)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(w.W)))
	return binary.LittleEndian.AppendUint32(dst, uint32(int32(w.H)))
}

// MarshalWindow encodes a decode-window request into a fresh buffer.
func MarshalWindow(w Window) []byte { return AppendWindow(nil, w) }

// UnmarshalWindow decodes a decode-window request.
func UnmarshalWindow(b []byte) (Window, error) {
	if len(b) != 16 {
		return Window{}, fmt.Errorf("wire: DECODE_WINDOW payload is %d bytes, want 16", len(b))
	}
	return Window{
		X: int(int32(binary.LittleEndian.Uint32(b))),
		Y: int(int32(binary.LittleEndian.Uint32(b[4:]))),
		W: int(int32(binary.LittleEndian.Uint32(b[8:]))),
		H: int(int32(binary.LittleEndian.Uint32(b[12:]))),
	}, nil
}

// frameHeaderSize prefixes a FRAME payload: u32 w, u32 h, u8 format.
const frameHeaderSize = 9

// FramePayloadSize returns the size in bytes of the FRAME message payload
// for the given geometry — the largest message a session of that geometry is
// guaranteed to produce (a CAPTURE payload is 9 bytes smaller). Servers use
// it to reject HELLO geometries whose replies could never fit the payload
// cap. The result is int64 so 32k×32k RGB sessions cannot overflow 32-bit
// hosts.
func FramePayloadSize(w, h int, f frame.Format) int64 {
	return frameHeaderSize + int64(w)*int64(h)*int64(f.BytesPerPixel())
}

// AppendFrame appends a reconstructed frame (header + raster pixels) to dst.
func AppendFrame(dst []byte, fr *frame.Frame) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(fr.W))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(fr.H))
	dst = append(dst, byte(fr.Format))
	return append(dst, fr.Pix...)
}

// MarshalFrame encodes a reconstructed frame into a fresh buffer.
func MarshalFrame(fr *frame.Frame) []byte { return AppendFrame(nil, fr) }

// UnmarshalFrame decodes a FRAME payload, validating the pixel count
// against the header geometry.
func UnmarshalFrame(b []byte) (*frame.Frame, error) {
	if len(b) < frameHeaderSize {
		return nil, fmt.Errorf("wire: FRAME payload is %d bytes, want >= %d", len(b), frameHeaderSize)
	}
	w := int(binary.LittleEndian.Uint32(b))
	h := int(binary.LittleEndian.Uint32(b[4:]))
	f := frame.Format(b[8])
	switch f {
	case frame.Gray8, frame.RGB24, frame.YUV444:
	default:
		return nil, fmt.Errorf("wire: FRAME format %d not streamable", b[8])
	}
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, fmt.Errorf("wire: unreasonable FRAME geometry %dx%d", w, h)
	}
	pix := b[frameHeaderSize:]
	if want := w * h * f.BytesPerPixel(); len(pix) != want {
		return nil, fmt.Errorf("wire: FRAME carries %d pixel bytes for %dx%d %v, want %d", len(pix), w, h, f, want)
	}
	return frame.FromPix(w, h, f, pix)
}

// AppendError appends a failure reply to dst.
func AppendError(dst []byte, code uint16, msg string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, code)
	return append(dst, msg...)
}

// MarshalError encodes a failure reply into a fresh buffer.
func MarshalError(code uint16, msg string) []byte { return AppendError(nil, code, msg) }

// UnmarshalError decodes a failure reply into a RemoteError.
func UnmarshalError(b []byte) (*RemoteError, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("wire: ERROR payload is %d bytes, want >= 2", len(b))
	}
	return &RemoteError{Code: binary.LittleEndian.Uint16(b), Message: string(b[2:])}, nil
}
