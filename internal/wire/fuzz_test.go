package wire

import (
	"bytes"
	"testing"
)

// FuzzReadMessage drives arbitrary bytes through the framing layer and every
// payload unmarshaler a server or client would dispatch to. The protocol's
// untrusted-input guarantee: malformed input yields an error, never a panic,
// and allocation is bounded by the payload cap regardless of the length
// prefix's claim.
func FuzzReadMessage(f *testing.F) {
	// Structurally valid seeds for each message family.
	seed := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, typ, payload, DefaultMaxPayload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(MsgHello, MarshalHello(Hello{W: 64, H: 48, HistoryDepth: 4, Parallelism: 2})))
	f.Add(seed(MsgHelloAck, MarshalHelloAck(HelloAck{SessionID: 7, MaxPayload: DefaultMaxPayload})))
	f.Add(seed(MsgCaptureAck, MarshalCaptureAck(CaptureAck{FrameIndex: 3, EncodedPixels: 10, EncodedBytes: 10, PixelFraction: 0.5})))
	f.Add(seed(MsgDecodeWindow, MarshalWindow(Window{X: 1, Y: 2, W: 3, H: 4})))
	f.Add(seed(MsgError, MarshalError(CodeBadRequest, "nope")))
	f.Add(seed(MsgAck, nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1}) // hostile length prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxPayload = 1 << 16
		r := bytes.NewReader(data)
		for i := 0; i < 8; i++ {
			typ, payload, err := ReadMessage(r, maxPayload)
			if err != nil {
				return
			}
			if len(payload) > maxPayload {
				t.Fatalf("ReadMessage returned %d bytes above the %d cap", len(payload), maxPayload)
			}
			// Dispatch the payload to the unmarshaler its type selects,
			// mirroring both the server's and the client's read paths.
			switch typ {
			case MsgHello:
				UnmarshalHello(payload)
			case MsgHelloAck:
				UnmarshalHelloAck(payload)
			case MsgSetLabels:
				UnmarshalLabels(payload)
			case MsgCaptureAck:
				UnmarshalCaptureAck(payload)
			case MsgDecodeWindow:
				UnmarshalWindow(payload)
			case MsgFrame:
				UnmarshalFrame(payload)
			case MsgError:
				UnmarshalError(payload)
			}
		}
	})
}
