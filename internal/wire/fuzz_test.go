package wire

import (
	"bytes"
	"testing"

	"repro/internal/region"
)

// FuzzReadMessage drives arbitrary bytes through the framing layer and every
// payload unmarshaler a server or client would dispatch to. The protocol's
// untrusted-input guarantee: malformed input yields an error, never a panic,
// and allocation is bounded by the payload cap regardless of the length
// prefix's claim.
func FuzzReadMessage(f *testing.F) {
	// Structurally valid seeds for each message family.
	seed := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, typ, payload, DefaultMaxPayload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(MsgHello, MarshalHello(Hello{W: 64, H: 48, HistoryDepth: 4, Parallelism: 2})))
	f.Add(seed(MsgHelloAck, MarshalHelloAck(HelloAck{SessionID: 7, MaxPayload: DefaultMaxPayload})))
	f.Add(seed(MsgHelloAck, MarshalHelloAck(HelloAck{SessionID: 7, MaxPayload: DefaultMaxPayload, Version: ProtoVersion})))
	f.Add(seed(MsgSubscribe, MarshalSubscribe(Subscribe{Target: 3, Credit: 8, Batch: 4})))
	f.Add(seed(MsgFramePush, MarshalFramePush(FramePush{SubID: 1, Frames: []PushFrame{{Seq: 2, Enc: []byte{1, 2, 3}}}})))
	f.Add(seed(MsgCaptureAck, MarshalCaptureAck(CaptureAck{FrameIndex: 3, EncodedPixels: 10, EncodedBytes: 10, PixelFraction: 0.5})))
	f.Add(seed(MsgDecodeWindow, MarshalWindow(Window{X: 1, Y: 2, W: 3, H: 4})))
	f.Add(seed(MsgStreamLabels, MarshalStreamLabels(StreamLabels{SubID: 5, Labels: region.List{{X: 1, Y: 1, W: 8, H: 8, Stride: 1}}})))
	f.Add(seed(MsgLabelsApplied, MarshalLabelsApplied(LabelsApplied{SubID: 5, AppliedSeq: 11})))
	f.Add(seed(MsgError, MarshalError(CodeBadRequest, "nope")))
	f.Add(seed(MsgAck, nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1}) // hostile length prefix
	// Hostile length just under the cap with a tiny body: the chunked read
	// must fail on the truncation without allocating the claimed length.
	f.Add([]byte{0xff, 0xff, 0x00, 0x00, MsgCapture, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxPayload = 1 << 16
		r := bytes.NewReader(data)
		for i := 0; i < 8; i++ {
			typ, payload, err := ReadMessage(r, maxPayload)
			if err != nil {
				return
			}
			if len(payload) > maxPayload {
				t.Fatalf("ReadMessage returned %d bytes above the %d cap", len(payload), maxPayload)
			}
			// Dispatch the payload to the unmarshaler its type selects,
			// mirroring both the server's and the client's read paths.
			switch typ {
			case MsgHello:
				UnmarshalHello(payload)
			case MsgHelloAck:
				UnmarshalHelloAck(payload)
			case MsgSetLabels:
				UnmarshalLabels(payload)
			case MsgCaptureAck:
				UnmarshalCaptureAck(payload)
			case MsgDecodeWindow:
				UnmarshalWindow(payload)
			case MsgFrame:
				UnmarshalFrame(payload)
			case MsgError:
				UnmarshalError(payload)
			case MsgSubscribe:
				UnmarshalSubscribe(payload)
			case MsgSubscribeAck:
				UnmarshalSubscribeAck(payload)
			case MsgCredit:
				UnmarshalCredit(payload)
			case MsgFramePush:
				UnmarshalFramePush(payload)
			case MsgUnsubscribe:
				UnmarshalUnsubscribe(payload)
			case MsgStreamLabels:
				UnmarshalStreamLabels(payload)
			case MsgLabelsApplied:
				UnmarshalLabelsApplied(payload)
			}
		}
	})
}

// FuzzReadSubscribe exercises the small fixed-size v3 control payloads
// (SUBSCRIBE, SUBSCRIBE_ACK, CREDIT, UNSUBSCRIBE) with arbitrary bytes:
// errors, never panics, and any accepted SUBSCRIBE obeys the credit and
// batch caps — the bounds the server's per-subscription ledger relies on.
func FuzzReadSubscribe(f *testing.F) {
	f.Add(MarshalSubscribe(Subscribe{Target: 0, Credit: 1, Batch: 1}))
	f.Add(MarshalSubscribe(Subscribe{Target: 1 << 40, Credit: MaxCreditWindow, Batch: MaxBatch}))
	f.Add(MarshalCredit(Credit{SubID: 9, N: 1 << 30}))
	f.Add(MarshalUnsubscribe(Unsubscribe{SubID: ^uint64(0)}))
	hostile := MarshalSubscribe(Subscribe{})
	for i := 8; i < len(hostile); i++ {
		hostile[i] = 0xff // credit and batch fields at their uint32 max
	}
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := UnmarshalSubscribe(data); err == nil {
			if s.Credit > MaxCreditWindow || s.Batch > MaxBatch {
				t.Fatalf("accepted subscribe breaks caps: %+v", s)
			}
		}
		UnmarshalSubscribeAck(data)
		UnmarshalCredit(data)
		UnmarshalUnsubscribe(data)
	})
}

// FuzzReadFramePush drives arbitrary bytes through the batched push
// decoder. Hostile batch counts and per-record encoded lengths must fail
// before any allocation proportional to the claim, and every accepted
// payload must re-marshal byte-identically (the decoder neither invents
// nor drops bytes).
func FuzzReadFramePush(f *testing.F) {
	f.Add(MarshalFramePush(FramePush{SubID: 1}))
	f.Add(MarshalFramePush(FramePush{
		SubID:   2,
		Dropped: 5,
		Frames: []PushFrame{
			{Seq: 7, Stats: CaptureAck{FrameIndex: 7, EncodedPixels: 4, EncodedBytes: 12, PixelFraction: 0.5}, Enc: []byte{1, 2, 3, 4}},
			{Seq: 9, Stats: CaptureAck{FrameIndex: 9}, Enc: nil},
		},
	}))
	hostileCount := MarshalFramePush(FramePush{SubID: 3, Frames: []PushFrame{{Seq: 1, Enc: []byte{8}}}})
	hostileCount[16], hostileCount[17], hostileCount[18], hostileCount[19] = 0xff, 0xff, 0xff, 0xff
	f.Add(hostileCount)
	hostileLen := MarshalFramePush(FramePush{SubID: 4, Frames: []PushFrame{{Seq: 1, Enc: []byte{8, 9}}}})
	hostileLen[framePushHeaderSize+28] = 0xf0
	hostileLen[framePushHeaderSize+31] = 0xff
	f.Add(hostileLen)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalFramePush(data)
		if err != nil {
			return
		}
		if len(p.Frames) > MaxBatch {
			t.Fatalf("accepted push with %d frames above the %d batch cap", len(p.Frames), MaxBatch)
		}
		if got := MarshalFramePush(p); !bytes.Equal(got, data) {
			t.Fatalf("re-marshal differs: %d bytes in, %d out", len(data), len(got))
		}
	})
}
