package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/region"
)

// Closed-loop label feedback (protocol v5).
//
// A v5 subscriber may push region-label workloads *back* to the session its
// subscription is attached to without leaving push mode: STREAM_LABELS rides
// the connection's write side (like CREDIT) while FRAME_PUSH batches keep
// flowing the other way. The server applies the labels through the target
// session's request queue — serialized against in-flight captures exactly
// like a SET_LABELS from the producer itself — and answers with
// LABELS_APPLIED carrying the first frame sequence number that will observe
// the new workload. That boundary is deterministic: every pushed frame with
// Seq >= AppliedSeq was captured under the new labels, every earlier frame
// under the old ones, regardless of pipeline parallelism or codec.

// StreamLabels is the client-to-server feedback message: a region-label
// workload for the session the subscription targets.
type StreamLabels struct {
	// SubID names the subscription whose target session receives the
	// labels (must match the connection's open subscription).
	SubID uint64
	// Labels is the capture workload, encoded exactly as SET_LABELS.
	Labels region.List
}

// streamLabelsHeaderSize is the u64 subscription id before the labels body.
const streamLabelsHeaderSize = 8

// AppendStreamLabels appends a STREAM_LABELS payload to dst.
func AppendStreamLabels(dst []byte, sl StreamLabels) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, sl.SubID)
	return AppendLabels(dst, sl.Labels)
}

// MarshalStreamLabels encodes a STREAM_LABELS payload into a fresh buffer.
func MarshalStreamLabels(sl StreamLabels) []byte { return AppendStreamLabels(nil, sl) }

// UnmarshalStreamLabels decodes a STREAM_LABELS payload. The labels body is
// untrusted and goes through the same bounded decode as SET_LABELS.
func UnmarshalStreamLabels(b []byte) (StreamLabels, error) {
	if len(b) < streamLabelsHeaderSize {
		return StreamLabels{}, fmt.Errorf("wire: STREAM_LABELS payload is %d bytes, want >= %d", len(b), streamLabelsHeaderSize)
	}
	labels, err := UnmarshalLabels(b[streamLabelsHeaderSize:])
	if err != nil {
		return StreamLabels{}, fmt.Errorf("wire: STREAM_LABELS: %w", err)
	}
	return StreamLabels{
		SubID:  binary.LittleEndian.Uint64(b),
		Labels: labels,
	}, nil
}

// LabelsApplied is the server-to-client reply to STREAM_LABELS. It rides
// the push stream (interleaved with FRAME_PUSH batches, never tearing them:
// the MessageWriter serializes whole messages).
type LabelsApplied struct {
	// SubID echoes the subscription the feedback arrived on.
	SubID uint64
	// AppliedSeq is the first frame sequence number captured under the new
	// labels. Meaningful only when Code is zero.
	AppliedSeq uint64
	// Code is zero on success, otherwise a Code* value explaining the
	// rejection (e.g. CodeBadRequest for labels outside the session
	// geometry). A rejected workload leaves the previous labels in force.
	Code uint16
	// Msg is the human-readable rejection reason when Code is nonzero.
	Msg string
}

// labelsAppliedHeaderSize is u64 subID + u64 appliedSeq + u16 code.
const labelsAppliedHeaderSize = 8 + 8 + 2

// AppendLabelsApplied appends a LABELS_APPLIED payload to dst.
func AppendLabelsApplied(dst []byte, la LabelsApplied) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, la.SubID)
	dst = binary.LittleEndian.AppendUint64(dst, la.AppliedSeq)
	dst = binary.LittleEndian.AppendUint16(dst, la.Code)
	return append(dst, la.Msg...)
}

// MarshalLabelsApplied encodes a LABELS_APPLIED payload into a fresh buffer.
func MarshalLabelsApplied(la LabelsApplied) []byte { return AppendLabelsApplied(nil, la) }

// UnmarshalLabelsApplied decodes a LABELS_APPLIED payload. The trailing
// message bytes are length-bounded by the framing layer's payload cap, so no
// further validation is needed beyond the fixed header.
func UnmarshalLabelsApplied(b []byte) (LabelsApplied, error) {
	if len(b) < labelsAppliedHeaderSize {
		return LabelsApplied{}, fmt.Errorf("wire: LABELS_APPLIED payload is %d bytes, want >= %d", len(b), labelsAppliedHeaderSize)
	}
	return LabelsApplied{
		SubID:      binary.LittleEndian.Uint64(b),
		AppliedSeq: binary.LittleEndian.Uint64(b[8:]),
		Code:       binary.LittleEndian.Uint16(b[16:]),
		Msg:        string(b[labelsAppliedHeaderSize:]),
	}, nil
}
