package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestSubscribeRoundTrip(t *testing.T) {
	s := Subscribe{Target: 42, Credit: 16, Batch: 4}
	got, err := UnmarshalSubscribe(MarshalSubscribe(s))
	if err != nil || got != s {
		t.Fatalf("subscribe round trip = %+v %v, want %+v", got, err, s)
	}
	// Zero credit is legal (frames drop until the first grant).
	if _, err := UnmarshalSubscribe(MarshalSubscribe(Subscribe{})); err != nil {
		t.Fatalf("zero subscribe rejected: %v", err)
	}
	if _, err := UnmarshalSubscribe(MarshalSubscribe(Subscribe{Credit: MaxCreditWindow + 1})); err == nil {
		t.Fatal("credit above window cap accepted")
	}
	if _, err := UnmarshalSubscribe(MarshalSubscribe(Subscribe{Batch: MaxBatch + 1})); err == nil {
		t.Fatal("batch above cap accepted")
	}
	if _, err := UnmarshalSubscribe(make([]byte, subscribeSize-1)); err == nil {
		t.Fatal("short subscribe accepted")
	}
}

func TestSubscribeAckRoundTrip(t *testing.T) {
	a := SubscribeAck{SubID: 7, NextSeq: 120}
	got, err := UnmarshalSubscribeAck(MarshalSubscribeAck(a))
	if err != nil || got != a {
		t.Fatalf("subscribe ack round trip = %+v %v, want %+v", got, err, a)
	}
	if _, err := UnmarshalSubscribeAck(nil); err == nil {
		t.Fatal("empty subscribe ack accepted")
	}
}

func TestCreditRoundTrip(t *testing.T) {
	c := Credit{SubID: 3, N: 9}
	got, err := UnmarshalCredit(MarshalCredit(c))
	if err != nil || got != c {
		t.Fatalf("credit round trip = %+v %v, want %+v", got, err, c)
	}
	if _, err := UnmarshalCredit(MarshalCredit(Credit{SubID: 3})); err == nil {
		t.Fatal("zero-credit grant accepted")
	}
	if _, err := UnmarshalCredit(make([]byte, creditSize+1)); err == nil {
		t.Fatal("long credit accepted")
	}
}

func TestUnsubscribeRoundTrip(t *testing.T) {
	u := Unsubscribe{SubID: 11}
	got, err := UnmarshalUnsubscribe(MarshalUnsubscribe(u))
	if err != nil || got != u {
		t.Fatalf("unsubscribe round trip = %+v %v, want %+v", got, err, u)
	}
	if _, err := UnmarshalUnsubscribe(make([]byte, 7)); err == nil {
		t.Fatal("short unsubscribe accepted")
	}
}

func TestFramePushRoundTrip(t *testing.T) {
	p := FramePush{
		SubID:   5,
		Dropped: 2,
		Frames: []PushFrame{
			{Seq: 10, Stats: CaptureAck{FrameIndex: 10, EncodedPixels: 3, EncodedBytes: 8, PixelFraction: 0.25}, Enc: []byte{1, 2, 3}},
			{Seq: 12, Stats: CaptureAck{FrameIndex: 12, EncodedPixels: 4, EncodedBytes: 9, PixelFraction: 0.5}, Enc: nil},
			{Seq: 13, Stats: CaptureAck{FrameIndex: 13}, Enc: bytes.Repeat([]byte{0xAB}, 100)},
		},
	}
	got, err := UnmarshalFramePush(MarshalFramePush(p))
	if err != nil {
		t.Fatalf("UnmarshalFramePush: %v", err)
	}
	if got.SubID != p.SubID || got.Dropped != p.Dropped || len(got.Frames) != len(p.Frames) {
		t.Fatalf("push header = %+v", got)
	}
	for i, f := range p.Frames {
		g := got.Frames[i]
		if g.Seq != f.Seq || g.Stats != f.Stats || !bytes.Equal(g.Enc, f.Enc) {
			t.Fatalf("frame %d = %+v, want %+v", i, g, f)
		}
	}
	if got, err := UnmarshalFramePush(MarshalFramePush(FramePush{SubID: 1})); err != nil || len(got.Frames) != 0 {
		t.Fatalf("empty push = %+v %v", got, err)
	}
}

// TestFramePushHostileCounts pins the untrusted-input guarantees: batch
// counts and per-record encoded lengths the payload cannot carry must fail
// before any allocation proportional to the claim.
func TestFramePushHostileCounts(t *testing.T) {
	b := MarshalFramePush(FramePush{
		SubID:  1,
		Frames: []PushFrame{{Seq: 1, Enc: []byte{9, 9}}},
	})
	// Claimed count far beyond what the payload carries.
	for _, n := range []uint32{2, MaxBatch, 1 << 20, 0xffffffff} {
		bad := append([]byte(nil), b...)
		binary.LittleEndian.PutUint32(bad[16:], n)
		if _, err := UnmarshalFramePush(bad); err == nil {
			t.Fatalf("count %d accepted for a one-frame payload", n)
		}
	}
	// Hostile per-record encoded length overrunning the payload.
	bad := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(bad[framePushHeaderSize+28:], 0xfffffff0)
	if _, err := UnmarshalFramePush(bad); err == nil {
		t.Fatal("overrunning encoded length accepted")
	}
	// Truncated mid-record.
	if _, err := UnmarshalFramePush(b[:len(b)-1]); err == nil {
		t.Fatal("truncated push accepted")
	}
	// Trailing garbage after the declared batch.
	if _, err := UnmarshalFramePush(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
