package wire

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/region"
)

func TestStreamLabelsRoundTrip(t *testing.T) {
	for _, sl := range []StreamLabels{
		{SubID: 0, Labels: nil},
		{SubID: 7, Labels: region.List{{X: 1, Y: 2, W: 3, H: 4, Stride: 1, Skip: 0, Phase: 0}}},
		{SubID: ^uint64(0), Labels: region.List{
			{X: 0, Y: 0, W: 64, H: 48, Stride: 1, Skip: 3, Phase: 2},
			{X: 8, Y: 8, W: 16, H: 16, Stride: 4, Skip: 1, Phase: 1},
		}},
	} {
		got, err := UnmarshalStreamLabels(MarshalStreamLabels(sl))
		if err != nil {
			t.Fatalf("round trip %+v: %v", sl, err)
		}
		if got.SubID != sl.SubID || len(got.Labels) != len(sl.Labels) {
			t.Fatalf("round trip %+v: got %+v", sl, got)
		}
		for i := range sl.Labels {
			if got.Labels[i] != sl.Labels[i] {
				t.Fatalf("label %d: got %+v, want %+v", i, got.Labels[i], sl.Labels[i])
			}
		}
	}
}

func TestStreamLabelsHostile(t *testing.T) {
	// Truncated before the subscription id.
	if _, err := UnmarshalStreamLabels([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted 3-byte STREAM_LABELS")
	}
	// Valid header, labels body claiming more labels than the payload holds.
	b := MarshalStreamLabels(StreamLabels{SubID: 1, Labels: region.List{{W: 1, H: 1, Stride: 1}}})
	b[streamLabelsHeaderSize] = 0xff // count low byte
	if _, err := UnmarshalStreamLabels(b); err == nil {
		t.Fatal("accepted STREAM_LABELS with an inflated label count")
	}
	// Trailing garbage after the last label must be rejected, not ignored.
	b = append(MarshalStreamLabels(StreamLabels{SubID: 1, Labels: nil}), 0xee)
	if _, err := UnmarshalStreamLabels(b); err == nil {
		t.Fatal("accepted STREAM_LABELS with trailing bytes")
	}
}

func TestLabelsAppliedRoundTrip(t *testing.T) {
	for _, la := range []LabelsApplied{
		{SubID: 0, AppliedSeq: 0, Code: 0, Msg: ""},
		{SubID: 9, AppliedSeq: 1 << 40, Code: 0, Msg: ""},
		{SubID: ^uint64(0), AppliedSeq: 3, Code: CodeBadRequest, Msg: "label outside geometry"},
	} {
		got, err := UnmarshalLabelsApplied(MarshalLabelsApplied(la))
		if err != nil {
			t.Fatalf("round trip %+v: %v", la, err)
		}
		if got != la {
			t.Fatalf("round trip: got %+v, want %+v", got, la)
		}
	}
}

func TestLabelsAppliedHostile(t *testing.T) {
	full := MarshalLabelsApplied(LabelsApplied{SubID: 1, AppliedSeq: 2, Code: 0})
	for n := 0; n < labelsAppliedHeaderSize; n++ {
		if _, err := UnmarshalLabelsApplied(full[:n]); err == nil {
			t.Fatalf("accepted %d-byte LABELS_APPLIED", n)
		}
		if !strings.Contains(mustErr(t, full[:n]), "LABELS_APPLIED") {
			t.Fatalf("error for %d bytes does not name the message", n)
		}
	}
}

func mustErr(t *testing.T, b []byte) string {
	t.Helper()
	_, err := UnmarshalLabelsApplied(b)
	if err == nil {
		t.Fatal("expected error")
	}
	return err.Error()
}

// FuzzReadStreamLabels drives arbitrary bytes through both v5 feedback
// decoders: errors, never panics, and anything accepted re-marshals
// byte-identically (the decoders neither invent nor drop bytes).
func FuzzReadStreamLabels(f *testing.F) {
	f.Add(MarshalStreamLabels(StreamLabels{SubID: 1, Labels: region.List{{X: 1, Y: 2, W: 3, H: 4, Stride: 1}}}))
	f.Add(MarshalStreamLabels(StreamLabels{SubID: ^uint64(0)}))
	f.Add(MarshalLabelsApplied(LabelsApplied{SubID: 3, AppliedSeq: 17}))
	f.Add(MarshalLabelsApplied(LabelsApplied{SubID: 3, Code: CodeBadRequest, Msg: "no"}))
	hostile := MarshalStreamLabels(StreamLabels{SubID: 2, Labels: region.List{{W: 1, H: 1}}})
	for i := streamLabelsHeaderSize; i < streamLabelsHeaderSize+4; i++ {
		hostile[i] = 0xff // label count at its uint32 max
	}
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		if sl, err := UnmarshalStreamLabels(data); err == nil {
			if got := MarshalStreamLabels(sl); !bytes.Equal(got, data) {
				t.Fatalf("STREAM_LABELS re-marshal differs: %d bytes in, %d out", len(data), len(got))
			}
		}
		if la, err := UnmarshalLabelsApplied(data); err == nil {
			if got := MarshalLabelsApplied(la); !bytes.Equal(got, data) {
				t.Fatalf("LABELS_APPLIED re-marshal differs: %d bytes in, %d out", len(data), len(got))
			}
		}
	})
}
