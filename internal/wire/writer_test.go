package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
)

// TestMessageWriterFramingMatchesWriteMessage pins MessageWriter to the
// exact bytes the plain WriteMessage emits.
func TestMessageWriterFramingMatchesWriteMessage(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range payloads {
		var want, got bytes.Buffer
		if err := WriteMessage(&want, MsgCapture, p, 0); err != nil {
			t.Fatal(err)
		}
		mw := NewMessageWriter(&got)
		if err := mw.WriteMessage(MsgCapture, p, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("payload len %d: MessageWriter framing differs", len(p))
		}
	}
	mw := NewMessageWriter(io.Discard)
	if err := mw.WriteMessage(MsgCapture, make([]byte, 100), 10); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized payload: got %v, want ErrTooLarge", err)
	}
}

// TestMessageWriterConcurrentWritersNoTearing is the torn-write regression:
// it forces the interleaving the old two-Write framing allowed. Several
// goroutines write messages through one shared writer to a net.Pipe whose
// reader byte-checks every frame. Routing the same workload through bare
// WriteMessage calls on a shared conn interleaves header and payload bytes
// of different messages (that is exactly the v3 FRAME_PUSH publisher vs.
// reply writer hazard); the MessageWriter must deliver every message intact.
func TestMessageWriterConcurrentWritersNoTearing(t *testing.T) {
	const (
		writers    = 8
		perWriter  = 64
		totalMsgs  = writers * perWriter
		maxPayload = 1 << 16
	)
	cw, cr := net.Pipe()
	mw := NewMessageWriter(cw)

	type rxErr struct{ err error }
	done := make(chan rxErr, 1)
	counts := make([]int, writers)
	go func() {
		br := cr
		for i := 0; i < totalMsgs; i++ {
			typ, payload, err := ReadMessage(br, maxPayload)
			if err != nil {
				done <- rxErr{err}
				return
			}
			w := int(typ) - 100
			if w < 0 || w >= writers {
				done <- rxErr{errors.New("message type corrupted")}
				return
			}
			// Writer w sends payloads of length w*31+1 filled with byte w.
			if len(payload) != w*31+1 {
				done <- rxErr{errors.New("payload length torn across messages")}
				return
			}
			for _, b := range payload {
				if b != byte(w) {
					done <- rxErr{errors.New("payload bytes interleaved between writers")}
					return
				}
			}
			counts[w]++
		}
		done <- rxErr{nil}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w)}, w*31+1)
			for i := 0; i < perWriter; i++ {
				if err := mw.WriteMessage(byte(100+w), payload, maxPayload); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	res := <-done
	cw.Close()
	cr.Close()
	if res.err != nil {
		t.Fatalf("reader: %v", res.err)
	}
	for w, c := range counts {
		if c != perWriter {
			t.Fatalf("writer %d: reader saw %d of %d messages", w, c, perWriter)
		}
	}
}

// TestReadMessageHostileLength is the over-allocation regression: a header
// claiming a payload near the cap followed by a short body must fail after
// at most one readChunk of growth, never allocate the claimed length up
// front.
func TestReadMessageHostileLength(t *testing.T) {
	// Claim 30 MiB, deliver 3 bytes.
	hostile := []byte{0x00, 0x00, 0xE0, 0x01, MsgCapture, 1, 2, 3}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, _, err := ReadMessage(bytes.NewReader(hostile), DefaultMaxPayload)
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated hostile-length message did not error")
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 3*readChunk {
		t.Fatalf("hostile length prefix forced %d bytes of allocation, cap is one %d chunk", grew, readChunk)
	}
	// The reusable-buffer variant must behave identically and leave the
	// buffer usable.
	var buf []byte
	if _, _, err := ReadMessageInto(bytes.NewReader(hostile), &buf, DefaultMaxPayload); err == nil {
		t.Fatal("ReadMessageInto accepted truncated hostile-length message")
	}
	var good bytes.Buffer
	if err := WriteMessage(&good, MsgAck, []byte{9, 9}, 0); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadMessageInto(bytes.NewReader(good.Bytes()), &buf, 0)
	if err != nil || typ != MsgAck || !bytes.Equal(payload, []byte{9, 9}) {
		t.Fatalf("buffer unusable after hostile read: typ=%d payload=%v err=%v", typ, payload, err)
	}
}

// TestReadMessageIntoReuse proves consecutive reads land in the same
// backing array (the per-connection buffer contract).
func TestReadMessageIntoReuse(t *testing.T) {
	var stream bytes.Buffer
	for i := 0; i < 4; i++ {
		if err := WriteMessage(&stream, MsgCapture, bytes.Repeat([]byte{byte(i)}, 100), 0); err != nil {
			t.Fatal(err)
		}
	}
	var buf []byte
	r := bytes.NewReader(stream.Bytes())
	var first []byte
	for i := 0; i < 4; i++ {
		_, payload, err := ReadMessageInto(r, &buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = payload
			continue
		}
		if &payload[0] != &first[0] {
			t.Fatalf("read %d allocated a new buffer instead of reusing", i)
		}
		for _, b := range payload {
			if b != byte(i) {
				t.Fatalf("read %d returned stale bytes", i)
			}
		}
	}
}

// TestAllocsWirePath pins the pooled wire hot path at zero steady-state
// allocations: Append* marshaling into scratch, MessageWriter framing, and
// ReadMessageInto with a reused buffer.
func TestAllocsWirePath(t *testing.T) {
	payload := bytes.Repeat([]byte{7}, 2048)
	mw := NewMessageWriter(io.Discard)
	if allocs := testing.AllocsPerRun(200, func() {
		if err := mw.WriteMessage(MsgCapture, payload, 0); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("MessageWriter.WriteMessage allocates %v per message, want 0", allocs)
	}

	scratch := make([]byte, 0, 4096)
	ack := CaptureAck{FrameIndex: 9, EncodedPixels: 64, EncodedBytes: 64, PixelFraction: 0.25}
	push := FramePush{SubID: 3, Frames: []PushFrame{{Seq: 4, Stats: ack, Enc: payload[:512]}}}
	if allocs := testing.AllocsPerRun(200, func() {
		scratch = AppendCaptureAck(scratch[:0], ack)
		scratch = AppendError(scratch[:0], CodeBadRequest, "no")
		scratch = AppendFramePush(scratch[:0], push)
	}); allocs != 0 {
		t.Fatalf("Append marshalers allocate %v per run into sized scratch, want 0", allocs)
	}

	var framed bytes.Buffer
	if err := WriteMessage(&framed, MsgCapture, payload, 0); err != nil {
		t.Fatal(err)
	}
	msg := framed.Bytes()
	r := bytes.NewReader(msg)
	buf := make([]byte, 0, 4096)
	// Warm the buffer to steady state.
	if _, _, err := ReadMessageInto(r, &buf, 0); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		r.Reset(msg)
		if _, _, err := ReadMessageInto(r, &buf, 0); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("ReadMessageInto allocates %v per message at steady state, want 0", allocs)
	}
}
