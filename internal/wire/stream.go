package wire

import (
	"encoding/binary"
	"fmt"
)

// Streaming push mode (protocol v3) payloads.
//
// The flow-control contract: a subscription starts with Subscribe.Credit
// push credits; every frame the server accepts into the subscription
// consumes one credit, and CREDIT messages grant more. The server never
// holds more undelivered frames than the client has granted credit for, so
// a stalled client bounds server memory by construction; frames produced
// while a subscription has no credit are dropped for that subscriber and
// counted in FramePush.Dropped (sequence numbers expose the gap).

// Streaming bounds. They cap what a hostile SUBSCRIBE can ask the server
// to buffer (credits are accepted-but-undelivered frames held server-side)
// or assemble into one message (batch).
const (
	// MaxCreditWindow caps a subscription's outstanding credit: granted
	// but unconsumed credits plus accepted-but-undelivered frames.
	MaxCreditWindow = 4096
	// MaxBatch caps how many frames one FRAME_PUSH message may carry.
	MaxBatch = 64
)

// Subscribe opens a push subscription.
type Subscribe struct {
	// Target selects the session whose encoded-frame stream to attach to:
	// 0 means the connection's own session, otherwise a server-assigned
	// session id (from HELLO_ACK) of another live session — the
	// multi-subscriber fan-out path.
	Target uint64
	// Credit is the initial credit window in frames (may be 0: frames are
	// dropped until the first CREDIT grant).
	Credit uint32
	// Batch bounds how many frames the server packs into one FRAME_PUSH
	// (0 means 1, capped at MaxBatch).
	Batch uint32
}

const subscribeSize = 8 + 4 + 4

// AppendSubscribe appends a SUBSCRIBE payload to dst.
func AppendSubscribe(dst []byte, s Subscribe) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, s.Target)
	dst = binary.LittleEndian.AppendUint32(dst, s.Credit)
	return binary.LittleEndian.AppendUint32(dst, s.Batch)
}

// MarshalSubscribe encodes a SUBSCRIBE payload into a fresh buffer.
func MarshalSubscribe(s Subscribe) []byte { return AppendSubscribe(nil, s) }

// UnmarshalSubscribe decodes and validates a SUBSCRIBE payload.
func UnmarshalSubscribe(b []byte) (Subscribe, error) {
	if len(b) != subscribeSize {
		return Subscribe{}, fmt.Errorf("wire: SUBSCRIBE payload is %d bytes, want %d", len(b), subscribeSize)
	}
	s := Subscribe{
		Target: binary.LittleEndian.Uint64(b),
		Credit: binary.LittleEndian.Uint32(b[8:]),
		Batch:  binary.LittleEndian.Uint32(b[12:]),
	}
	if s.Credit > MaxCreditWindow {
		return Subscribe{}, fmt.Errorf("wire: SUBSCRIBE credit %d exceeds window cap %d", s.Credit, MaxCreditWindow)
	}
	if s.Batch > MaxBatch {
		return Subscribe{}, fmt.Errorf("wire: SUBSCRIBE batch %d exceeds cap %d", s.Batch, MaxBatch)
	}
	return s, nil
}

// SubscribeAck confirms a subscription.
type SubscribeAck struct {
	// SubID identifies the subscription in CREDIT, FRAME_PUSH and
	// UNSUBSCRIBE messages.
	SubID uint64
	// NextSeq is the sequence number (session frame index) of the first
	// frame the subscription can observe; frames captured before the
	// subscription attached are never replayed.
	NextSeq uint64
}

const subscribeAckSize = 8 + 8

// AppendSubscribeAck appends a SUBSCRIBE_ACK payload to dst.
func AppendSubscribeAck(dst []byte, a SubscribeAck) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, a.SubID)
	return binary.LittleEndian.AppendUint64(dst, a.NextSeq)
}

// MarshalSubscribeAck encodes a SUBSCRIBE_ACK payload into a fresh buffer.
func MarshalSubscribeAck(a SubscribeAck) []byte { return AppendSubscribeAck(nil, a) }

// UnmarshalSubscribeAck decodes a SUBSCRIBE_ACK payload.
func UnmarshalSubscribeAck(b []byte) (SubscribeAck, error) {
	if len(b) != subscribeAckSize {
		return SubscribeAck{}, fmt.Errorf("wire: SUBSCRIBE_ACK payload is %d bytes, want %d", len(b), subscribeAckSize)
	}
	return SubscribeAck{
		SubID:   binary.LittleEndian.Uint64(b),
		NextSeq: binary.LittleEndian.Uint64(b[8:]),
	}, nil
}

// Credit grants a subscription more push credits.
type Credit struct {
	SubID uint64
	// N is the number of additional frames the server may push (>= 1; the
	// server clamps the total outstanding window at MaxCreditWindow).
	N uint32
}

const creditSize = 8 + 4

// AppendCredit appends a CREDIT payload to dst.
func AppendCredit(dst []byte, c Credit) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, c.SubID)
	return binary.LittleEndian.AppendUint32(dst, c.N)
}

// MarshalCredit encodes a CREDIT payload into a fresh buffer.
func MarshalCredit(c Credit) []byte { return AppendCredit(nil, c) }

// UnmarshalCredit decodes and validates a CREDIT payload.
func UnmarshalCredit(b []byte) (Credit, error) {
	if len(b) != creditSize {
		return Credit{}, fmt.Errorf("wire: CREDIT payload is %d bytes, want %d", len(b), creditSize)
	}
	c := Credit{
		SubID: binary.LittleEndian.Uint64(b),
		N:     binary.LittleEndian.Uint32(b[8:]),
	}
	if c.N == 0 {
		return Credit{}, fmt.Errorf("wire: CREDIT grants zero credits")
	}
	return c, nil
}

// Unsubscribe ends a subscription.
type Unsubscribe struct {
	SubID uint64
}

const unsubscribeSize = 8

// AppendUnsubscribe appends an UNSUBSCRIBE payload to dst.
func AppendUnsubscribe(dst []byte, u Unsubscribe) []byte {
	return binary.LittleEndian.AppendUint64(dst, u.SubID)
}

// MarshalUnsubscribe encodes an UNSUBSCRIBE payload into a fresh buffer.
func MarshalUnsubscribe(u Unsubscribe) []byte { return AppendUnsubscribe(nil, u) }

// UnmarshalUnsubscribe decodes an UNSUBSCRIBE payload.
func UnmarshalUnsubscribe(b []byte) (Unsubscribe, error) {
	if len(b) != unsubscribeSize {
		return Unsubscribe{}, fmt.Errorf("wire: UNSUBSCRIBE payload is %d bytes, want %d", len(b), unsubscribeSize)
	}
	return Unsubscribe{SubID: binary.LittleEndian.Uint64(b)}, nil
}

// PushFrame is one encoded frame inside a FRAME_PUSH batch.
type PushFrame struct {
	// Seq is the frame's sequence number: the session frame index the
	// producer captured it at. Consecutive pushes with non-consecutive Seq
	// mean the subscription ran out of credit and frames were dropped.
	Seq uint64
	// Stats are the frame's capture statistics, identical to what a v2
	// CAPTURE_ACK for the same frame reported.
	Stats CaptureAck
	// Enc is the encoded frame in the RPXE container framing
	// (core.EncodedFrame.WriteTo) — byte-identical to a v2 GET_ENCODED
	// reply for the same frame.
	Enc []byte
}

// FramePush is the server-to-client push message: up to Batch frames.
type FramePush struct {
	SubID uint64
	// Dropped is the cumulative count of frames this subscription missed
	// because it had no credit when they were produced.
	Dropped uint64
	Frames  []PushFrame
}

// framePushHeaderSize is u64 subID + u64 dropped + u32 count.
const framePushHeaderSize = 8 + 8 + 4

// pushRecordHeaderSize prefixes each frame record: u64 seq + the 20-byte
// capture statistics + u32 encoded length.
const pushRecordHeaderSize = 8 + 20 + 4

// PushHeaderOverhead and PushRecordOverhead expose the FRAME_PUSH framing
// costs so a sender can split a batch across messages without exceeding
// the negotiated payload cap.
const (
	PushHeaderOverhead = framePushHeaderSize
	PushRecordOverhead = pushRecordHeaderSize
)

// AppendFramePush appends a FRAME_PUSH payload to dst. With a dst of
// sufficient capacity it performs no allocation, which is what lets the
// server's push writer reuse one scratch buffer per stream.
func AppendFramePush(dst []byte, p FramePush) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, p.SubID)
	dst = binary.LittleEndian.AppendUint64(dst, p.Dropped)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Frames)))
	for _, f := range p.Frames {
		dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
		dst = AppendCaptureAck(dst, f.Stats)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Enc)))
		dst = append(dst, f.Enc...)
	}
	return dst
}

// FramePushSize returns the exact payload length AppendFramePush produces
// for p, so a sender can size its scratch buffer up front.
func FramePushSize(p FramePush) int {
	n := framePushHeaderSize
	for _, f := range p.Frames {
		n += pushRecordHeaderSize + len(f.Enc)
	}
	return n
}

// MarshalFramePush encodes a FRAME_PUSH payload into a fresh buffer.
func MarshalFramePush(p FramePush) []byte {
	return AppendFramePush(make([]byte, 0, FramePushSize(p)), p)
}

// UnmarshalFramePush decodes a FRAME_PUSH payload. The input is untrusted:
// the claimed batch count is bounded by what the payload can actually carry
// before any allocation, and every record's encoded length is checked
// against the remaining bytes, so hostile counts or length prefixes yield
// an error, never a panic or an oversized allocation.
func UnmarshalFramePush(b []byte) (FramePush, error) {
	if len(b) < framePushHeaderSize {
		return FramePush{}, fmt.Errorf("wire: FRAME_PUSH payload is %d bytes, want >= %d", len(b), framePushHeaderSize)
	}
	p := FramePush{
		SubID:   binary.LittleEndian.Uint64(b),
		Dropped: binary.LittleEndian.Uint64(b[8:]),
	}
	count := int64(binary.LittleEndian.Uint32(b[16:]))
	if count > MaxBatch {
		return FramePush{}, fmt.Errorf("wire: FRAME_PUSH claims %d frames, batch cap is %d", count, MaxBatch)
	}
	if max := int64(len(b)-framePushHeaderSize) / pushRecordHeaderSize; count > max {
		return FramePush{}, fmt.Errorf("wire: FRAME_PUSH claims %d frames, payload fits %d", count, max)
	}
	p.Frames = make([]PushFrame, 0, count)
	off := framePushHeaderSize
	for i := int64(0); i < count; i++ {
		if len(b)-off < pushRecordHeaderSize {
			return FramePush{}, fmt.Errorf("wire: FRAME_PUSH record %d truncated at %d bytes", i, len(b)-off)
		}
		var f PushFrame
		f.Seq = binary.LittleEndian.Uint64(b[off:])
		stats, err := UnmarshalCaptureAck(b[off+8 : off+28])
		if err != nil {
			return FramePush{}, fmt.Errorf("wire: FRAME_PUSH record %d: %w", i, err)
		}
		f.Stats = stats
		encLen := int64(binary.LittleEndian.Uint32(b[off+28:]))
		off += pushRecordHeaderSize
		if encLen > int64(len(b)-off) {
			return FramePush{}, fmt.Errorf("wire: FRAME_PUSH record %d claims %d encoded bytes, %d remain", i, encLen, len(b)-off)
		}
		f.Enc = b[off : off+int(encLen)]
		off += int(encLen)
		p.Frames = append(p.Frames, f)
	}
	if off != len(b) {
		return FramePush{}, fmt.Errorf("wire: FRAME_PUSH carries %d trailing bytes", len(b)-off)
	}
	return p, nil
}
