package bitpack

import (
	"math/rand"
	"testing"
)

// naiveCountRRange is the per-element reference the word-at-a-time counters
// must match exactly.
func naiveCountRRange(m *Mask2, lo, hi int) int {
	total := 0
	for i := lo; i < hi; i++ {
		if m.Get(i) == CodeR {
			total++
		}
	}
	return total
}

// TestCountRWordEquivalence cross-checks the OnesCount64 fast path against a
// per-element scan over random masks at sizes chosen to exercise every
// head/word/tail split (sub-word masks, exact word multiples, ragged tails).
func TestCountRWordEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 3, 4, 31, 32, 33, 64, 100, 255, 256, 257, 1000, 4096 + 7} {
		m := NewMask2(n)
		for i := 0; i < n; i++ {
			m.Set(i, Code(rng.Intn(4)))
		}
		for trial := 0; trial < 200; trial++ {
			hi := rng.Intn(n + 1)
			if got, want := m.CountR(hi), naiveCountRRange(m, 0, hi); got != want {
				t.Fatalf("n=%d CountR(%d) = %d, want %d", n, hi, got, want)
			}
			lo := rng.Intn(hi + 1)
			if got, want := m.CountRRange(lo, hi), naiveCountRRange(m, lo, hi); got != want {
				t.Fatalf("n=%d CountRRange(%d,%d) = %d, want %d", n, lo, hi, got, want)
			}
		}
	}
}

// TestCountRAllR pins the saturated case: every element R, so counts must
// equal the range width at any alignment.
func TestCountRAllR(t *testing.T) {
	const n = 517
	m := NewMask2(n)
	m.Fill(0, n, CodeR)
	for hi := 0; hi <= n; hi++ {
		if got := m.CountR(hi); got != hi {
			t.Fatalf("CountR(%d) = %d on all-R mask", hi, got)
		}
	}
	for lo := 0; lo <= n; lo += 13 {
		for hi := lo; hi <= n; hi += 29 {
			if got := m.CountRRange(lo, hi); got != hi-lo {
				t.Fatalf("CountRRange(%d,%d) = %d on all-R mask", lo, hi, got)
			}
		}
	}
}

// TestAllocsCountR pins the PMMU translation primitives at zero allocations:
// they run per decoded pixel-address translation and must never touch the
// heap.
func TestAllocsCountR(t *testing.T) {
	const n = 4096
	m := NewMask2(n)
	for i := 0; i < n; i += 3 {
		m.Set(i, CodeR)
	}
	sink := 0
	if allocs := testing.AllocsPerRun(100, func() {
		sink += m.CountR(n - 5)
		sink += m.CountRRange(17, n-17)
	}); allocs != 0 {
		t.Fatalf("CountR/CountRRange allocate %v per run, want 0", allocs)
	}
	_ = sink
}
