package bitpack

import (
	"bytes"
	"math/rand"
	"testing"
)

// randMask builds a mask with region-like structure: runs of a single code
// with geometrically distributed lengths, occasionally a pure random stretch.
func randMask(rng *rand.Rand, n int) *Mask2 {
	m := NewMask2(n)
	i := 0
	for i < n {
		run := 1 + rng.Intn(64)
		if run > n-i {
			run = n - i
		}
		if rng.Intn(8) == 0 {
			for j := i; j < i+run; j++ {
				m.Set(j, Code(rng.Intn(4)))
			}
		} else {
			m.Fill(i, i+run, Code(rng.Intn(4)))
		}
		i += run
	}
	return m
}

func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 63, 64, 100, 1023, 4096} {
		for trial := 0; trial < 20; trial++ {
			m := randMask(rng, n)
			packed := AppendPacked(nil, m)
			if max := PackedMaxSize(n); len(packed) > max {
				t.Fatalf("n=%d: packed %d bytes exceeds PackedMaxSize %d", n, len(packed), max)
			}
			got, err := DecodePacked(packed, n)
			if err != nil {
				t.Fatalf("n=%d: DecodePacked: %v", n, err)
			}
			if !got.Equal(m) {
				t.Fatalf("n=%d: decoded mask differs", n)
			}
			if !bytes.Equal(got.Bytes(), m.Bytes()) {
				t.Fatalf("n=%d: decoded storage differs from canonical", n)
			}
		}
	}
}

func TestPackedPreservesPrefix(t *testing.T) {
	m := randMask(rand.New(rand.NewSource(3)), 200)
	prefix := []byte("hdr")
	out := AppendPacked(append([]byte(nil), prefix...), m)
	if !bytes.Equal(out[:3], prefix) {
		t.Fatalf("AppendPacked clobbered the dst prefix")
	}
	got, err := DecodePacked(out[3:], 200)
	if err != nil || !got.Equal(m) {
		t.Fatalf("round trip after prefix: err=%v", err)
	}
}

// TestPackedWorstCaseBound: an alternating-code mask is RLE's adversarial
// input; the codec must fall back to the raw body and stay within
// PackedMaxSize.
func TestPackedWorstCaseBound(t *testing.T) {
	const n = 1024
	m := NewMask2(n)
	for i := 0; i < n; i++ {
		m.Set(i, Code(i%4))
	}
	packed := AppendPacked(nil, m)
	if packed[0] != MaskCodecRaw {
		t.Fatalf("alternating mask packed with codec %d, want raw fallback", packed[0])
	}
	if want := 1 + m.SizeBytes(); len(packed) != want {
		t.Fatalf("raw fallback is %d bytes, want %d", len(packed), want)
	}
	got, err := DecodePacked(packed, n)
	if err != nil || !got.Equal(m) {
		t.Fatalf("raw fallback round trip: err=%v", err)
	}
}

// TestPackedCompressesRuns pins the codec's purpose: a region-structured
// mask must shrink well below raw (the BENCH_maskcodec acceptance bar is
// 3x on full workloads; a single rectangular region at QVGA does far
// better).
func TestPackedCompressesRuns(t *testing.T) {
	const w, h = 320, 240
	m := NewMask2(w * h)
	for y := 60; y < 180; y++ {
		m.Fill(y*w+80, y*w+240, CodeR)
	}
	packed := AppendPacked(nil, m)
	if raw := m.SizeBytes(); len(packed)*3 > raw {
		t.Fatalf("region mask packed to %d bytes, want <= raw/3 (%d/3=%d)", len(packed), raw, raw/3)
	}
	got, err := DecodePacked(packed, w*h)
	if err != nil || !got.Equal(m) {
		t.Fatalf("region round trip: err=%v", err)
	}
}

func TestDecodePackedHostile(t *testing.T) {
	cases := map[string][]byte{
		"empty":              {},
		"unknown codec":      {9, 1, 2},
		"raw short":          {MaskCodecRaw, 0xFF},
		"raw long":           {MaskCodecRaw, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		"rle truncated":      {MaskCodecRLE, 0x80},
		"rle overflow run":   {MaskCodecRLE, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		"rle run too long":   {MaskCodecRLE, byte(16<<2 | 3)},
		"rle undercoverage":  {MaskCodecRLE, byte(2<<2 | 1)},
		"rle trailing empty": {MaskCodecRLE, byte(11<<2 | 3), 0x80},
	}
	for name, data := range cases {
		if _, err := DecodePacked(data, 12); err == nil {
			t.Errorf("%s: DecodePacked accepted malformed input", name)
		}
	}
	if _, err := DecodePacked([]byte{MaskCodecRLE}, 0); err != nil {
		t.Errorf("empty RLE body for 0 elements should decode: %v", err)
	}
	if _, err := DecodePacked(nil, -1); err == nil {
		t.Errorf("negative length accepted")
	}
}

// TestDecodePackedRawCanonicalizes: a raw-codec body with garbage in the
// final byte's unused fields must decode to the canonical storage form.
func TestDecodePackedRawCanonicalizes(t *testing.T) {
	// n=6 -> 2 bytes, top field of byte 1 unused.
	body := []byte{MaskCodecRaw, 0xFF, 0xCF}
	m, err := DecodePacked(body, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Bytes()[1]; got != 0x0F {
		t.Fatalf("padding not cleared: final byte %#x, want 0x0f", got)
	}
	ref := NewMask2(6)
	ref.Fill(0, 6, CodeR)
	if !m.Equal(ref) {
		t.Fatal("decoded codes differ from all-R reference")
	}
}

// Regression (ISSUE 9 satellite): FromBytes must clear the unused
// high-order fields of the final byte. Before the fix a deserialized mask
// re-serialized to different bytes than an encoder-built one, breaking the
// differential suite's byte-identity oracle.
func TestFromBytesCanonicalizesPadding(t *testing.T) {
	buf := []byte{0xFF, 0xFF} // n=6: top field of byte 1 is padding
	m, err := FromBytes(buf, 6)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewMask2(6)
	ref.Fill(0, 6, CodeR)
	if !m.Equal(ref) {
		t.Fatal("mask with dirty padding not Equal to clean all-R mask")
	}
	if !bytes.Equal(m.Bytes(), ref.Bytes()) {
		t.Fatalf("Bytes() not canonical: got %x, want %x", m.Bytes(), ref.Bytes())
	}
}

// Regression (ISSUE 9 satellite): FromBytes must trim oversized buffers to
// exactly ceil(n/4) bytes so SizeBytes/MetadataBytes do not over-report and
// Bytes() round trips do not grow.
func TestFromBytesTrimsExcess(t *testing.T) {
	buf := []byte{0x1B, 0x03, 0xAA, 0xBB, 0xCC} // n=6 needs 2 bytes
	m, err := FromBytes(buf, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SizeBytes(); got != 2 {
		t.Fatalf("SizeBytes = %d, want 2", got)
	}
	if got := m.Bytes(); len(got) != 2 {
		t.Fatalf("Bytes() = %d bytes, want 2", len(got))
	}
	m2, err := FromBytes(m.Bytes(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Equal(m) || m2.SizeBytes() != 2 {
		t.Fatal("Bytes() round trip changed the mask")
	}
}

// TestAllocsMaskCodec gates the pooled packed-mask path: encoding into a
// reused scratch and decoding into a reused mask must not allocate.
func TestAllocsMaskCodec(t *testing.T) {
	m := randMask(rand.New(rand.NewSource(11)), 320*240)
	scratch := make([]byte, 0, PackedMaxSize(m.Len()))
	into := NewMask2(m.Len())
	if avg := testing.AllocsPerRun(200, func() {
		scratch = AppendPacked(scratch[:0], m)
	}); avg != 0 {
		t.Errorf("AppendPacked into pooled scratch: %.1f allocs/run, want 0", avg)
	}
	scratch = AppendPacked(scratch[:0], m)
	if avg := testing.AllocsPerRun(200, func() {
		if err := DecodePackedInto(into, scratch); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("DecodePackedInto pooled mask: %.1f allocs/run, want 0", avg)
	}
	if !into.Equal(m) {
		t.Fatal("pooled round trip lost data")
	}
}
