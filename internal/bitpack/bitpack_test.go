package bitpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodeString(t *testing.T) {
	cases := map[Code]string{CodeN: "N", CodeSt: "St", CodeSk: "Sk", CodeR: "R", Code(7): "Code(7)"}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Code(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestCodeValid(t *testing.T) {
	for c := Code(0); c <= 3; c++ {
		if !c.Valid() {
			t.Errorf("Code(%d).Valid() = false, want true", c)
		}
	}
	if Code(4).Valid() {
		t.Error("Code(4).Valid() = true, want false")
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	const n = 257 // deliberately not a multiple of 4
	m := NewMask2(n)
	codes := []Code{CodeN, CodeSt, CodeSk, CodeR}
	for i := 0; i < n; i++ {
		m.Set(i, codes[(i*7)%4])
	}
	for i := 0; i < n; i++ {
		if got, want := m.Get(i), codes[(i*7)%4]; got != want {
			t.Fatalf("Get(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestSetDoesNotClobberNeighbors(t *testing.T) {
	m := NewMask2(8)
	m.Fill(0, 8, CodeR)
	m.Set(3, CodeN)
	for i := 0; i < 8; i++ {
		want := CodeR
		if i == 3 {
			want = CodeN
		}
		if got := m.Get(i); got != want {
			t.Errorf("Get(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestNewMask2Zeroed(t *testing.T) {
	m := NewMask2(100)
	for i := 0; i < 100; i++ {
		if m.Get(i) != CodeN {
			t.Fatalf("element %d not CodeN after NewMask2", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := NewMask2(4)
	for name, fn := range map[string]func(){
		"Get(-1)":     func() { m.Get(-1) },
		"Get(4)":      func() { m.Get(4) },
		"Set(4)":      func() { m.Set(4, CodeR) },
		"SetInvalid":  func() { m.Set(0, Code(5)) },
		"CountR(5)":   func() { m.CountR(5) },
		"Fill(-1,2)":  func() { m.Fill(-1, 2, CodeR) },
		"Fill(3,2)":   func() { m.Fill(3, 2, CodeR) },
		"NegativeLen": func() { NewMask2(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFromBytes(t *testing.T) {
	if _, err := FromBytes(make([]byte, 1), 5); err == nil {
		t.Error("FromBytes with short buffer: want error, got nil")
	}
	buf := []byte{0xFF, 0x03} // 4 R codes, then 1 R code
	m, err := FromBytes(buf, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CountR(6); got != 5 {
		t.Errorf("CountR(6) = %d, want 5", got)
	}
}

func TestCountRMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		m := NewMask2(n)
		for i := 0; i < n; i++ {
			m.Set(i, Code(rng.Intn(4)))
		}
		for hi := 0; hi <= n; hi++ {
			naive := 0
			for i := 0; i < hi; i++ {
				if m.Get(i) == CodeR {
					naive++
				}
			}
			if got := m.CountR(hi); got != naive {
				t.Fatalf("trial %d: CountR(%d) = %d, want %d", trial, hi, got, naive)
			}
		}
	}
}

func TestCountRRange(t *testing.T) {
	m := NewMask2(20)
	m.Fill(5, 15, CodeR)
	if got := m.CountRRange(0, 20); got != 10 {
		t.Errorf("CountRRange(0,20) = %d, want 10", got)
	}
	if got := m.CountRRange(5, 15); got != 10 {
		t.Errorf("CountRRange(5,15) = %d, want 10", got)
	}
	if got := m.CountRRange(7, 7); got != 0 {
		t.Errorf("CountRRange(7,7) = %d, want 0", got)
	}
}

// Property: CountRRange equals the prefix-count difference for all ranges.
func TestCountRRangeMatchesPrefixDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(200)
		m := NewMask2(n)
		for i := 0; i < n; i++ {
			m.Set(i, Code(rng.Intn(4)))
		}
		for k := 0; k < 60; k++ {
			lo := rng.Intn(n + 1)
			hi := lo + rng.Intn(n+1-lo)
			if got, want := m.CountRRange(lo, hi), m.CountR(hi)-m.CountR(lo); got != want {
				t.Fatalf("CountRRange(%d,%d) = %d, want %d", lo, hi, got, want)
			}
		}
	}
}

func TestFillAndHistogram(t *testing.T) {
	m := NewMask2(103)
	m.Fill(1, 50, CodeSt)
	m.Fill(50, 100, CodeR)
	h := m.Histogram()
	if h[CodeN] != 4 || h[CodeSt] != 49 || h[CodeSk] != 0 || h[CodeR] != 50 {
		t.Errorf("Histogram = %v, want [4 49 0 50]", h)
	}
}

func TestReset(t *testing.T) {
	m := NewMask2(10)
	m.Fill(0, 10, CodeR)
	m.Reset()
	if h := m.Histogram(); h[CodeN] != 10 {
		t.Errorf("after Reset, histogram = %v, want all N", h)
	}
}

func TestCloneEqual(t *testing.T) {
	m := NewMask2(33)
	m.Fill(3, 30, CodeSk)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Set(4, CodeR)
	if m.Equal(c) {
		t.Fatal("mutated clone still equal to original")
	}
	if m.Equal(NewMask2(32)) {
		t.Fatal("masks of different length reported equal")
	}
}

func TestSizeBytes(t *testing.T) {
	// 2 bits per pixel = 1/4 byte per pixel: a 1920x1080 mask is ~518 KB,
	// matching the paper's "500 KB for a 1080p frame" metadata estimate.
	m := NewMask2(1920 * 1080)
	if got := m.SizeBytes(); got != 1920*1080/4 {
		t.Errorf("SizeBytes = %d, want %d", got, 1920*1080/4)
	}
}

func TestCursorSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	m := NewMask2(n)
	for i := 0; i < n; i++ {
		m.Set(i, Code(rng.Intn(4)))
	}
	cur := NewCursor(m)
	for i := 0; i < n; i++ {
		if got, want := cur.RBefore(), m.CountR(i); got != want {
			t.Fatalf("at %d: RBefore = %d, want %d", i, got, want)
		}
		if got, want := cur.Next(), m.Get(i); got != want {
			t.Fatalf("at %d: Next = %v, want %v", i, got, want)
		}
	}
	if !cur.Done() {
		t.Error("cursor not Done after consuming all elements")
	}
}

func TestCursorSeek(t *testing.T) {
	m := NewMask2(100)
	m.Fill(0, 100, CodeR)
	cur := NewCursor(m)
	cur.Seek(40)
	if cur.RBefore() != 40 {
		t.Errorf("after Seek(40): RBefore = %d, want 40", cur.RBefore())
	}
	cur.Seek(10) // backward
	if cur.RBefore() != 10 {
		t.Errorf("after Seek(10): RBefore = %d, want 10", cur.RBefore())
	}
	cur.Seek(10) // no-op
	if cur.Pos() != 10 {
		t.Errorf("Pos = %d, want 10", cur.Pos())
	}
}

// Property: CountR is monotone non-decreasing and bounded by the prefix length.
func TestCountRMonotoneProperty(t *testing.T) {
	f := func(raw []byte, hiSeed uint16) bool {
		if len(raw) == 0 {
			return true
		}
		n := len(raw) * 4
		m, err := FromBytes(raw, n)
		if err != nil {
			return false
		}
		hi := int(hiSeed) % n
		a, b := m.CountR(hi), m.CountR(n)
		return a >= 0 && a <= hi && b >= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Fill(lo,hi,R) then CountRRange(lo,hi) == hi-lo.
func TestFillCountProperty(t *testing.T) {
	f := func(nSeed, loSeed, hiSeed uint16) bool {
		n := int(nSeed)%1000 + 1
		lo := int(loSeed) % (n + 1)
		hi := int(hiSeed) % (n + 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		m := NewMask2(n)
		m.Fill(lo, hi, CodeR)
		return m.CountRRange(lo, hi) == hi-lo && m.CountR(n) == hi-lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCountR1080pRow(b *testing.B) {
	m := NewMask2(1920)
	m.Fill(300, 1500, CodeR)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.CountR(1900)
	}
}

func BenchmarkCursorFullRow(b *testing.B) {
	m := NewMask2(1920)
	m.Fill(300, 1500, CodeR)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cur := NewCursor(m)
		for !cur.Done() {
			cur.Next()
		}
	}
}
