// Package bitpack provides compact two-bit-per-element arrays used to store
// the rhythmic pixel encoding mask (EncMask).
//
// The EncMask assigns every pixel of the original (pre-encoding) frame one of
// four codes describing how the pixel was sampled in space and time:
//
//	N  (00) — non-regional pixel
//	St (01) — regional pixel, but removed by spatial stride
//	Sk (10) — regional pixel, but temporally skipped this frame
//	R  (11) — regional pixel, present in the encoded frame
//
// The decoder's pixel address translation needs fast "how many R codes occur
// before element i" queries, so the package maintains byte-granularity
// popcount tables for the R code.
package bitpack

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Code is a two-bit EncMask entry.
type Code uint8

// The four EncMask codes, as defined by the paper (§3.3).
const (
	CodeN  Code = 0 // 00: non-regional pixel
	CodeSt Code = 1 // 01: regional but spatially strided out
	CodeSk Code = 2 // 10: regional but temporally skipped
	CodeR  Code = 3 // 11: regional pixel, stored in the encoded frame
)

// String returns the paper's mnemonic for the code.
func (c Code) String() string {
	switch c {
	case CodeN:
		return "N"
	case CodeSt:
		return "St"
	case CodeSk:
		return "Sk"
	case CodeR:
		return "R"
	}
	return fmt.Sprintf("Code(%d)", uint8(c))
}

// Valid reports whether c is one of the four defined codes.
func (c Code) Valid() bool { return c <= CodeR }

// rCountTable[b] is the number of "11" two-bit fields in byte b.
var rCountTable [256]uint8

// rPrefixTable[b][k] is the number of "11" fields among the first k (0..4)
// two-bit fields of byte b, where field 0 occupies the low-order bits.
var rPrefixTable [256][5]uint8

func init() {
	for b := 0; b < 256; b++ {
		var total uint8
		for f := 0; f < 4; f++ {
			code := (b >> (2 * f)) & 0x3
			rPrefixTable[b][f] = total
			if code == 3 {
				total++
			}
		}
		rPrefixTable[b][4] = total
		rCountTable[b] = total
	}
}

// Mask2 is a fixed-length array of two-bit codes. Element 0 occupies the two
// low-order bits of byte 0, matching the raster-scan packing order the
// hardware EncMask uses.
type Mask2 struct {
	n    int
	data []byte
}

// NewMask2 returns a Mask2 with n elements, all initialized to CodeN.
func NewMask2(n int) *Mask2 {
	if n < 0 {
		panic("bitpack: negative length")
	}
	return &Mask2{n: n, data: make([]byte, (n+3)/4)}
}

// FromBytes wraps an existing packed buffer holding n two-bit elements.
// The buffer must be at least ceil(n/4) bytes; it is used without copying.
//
// The mask is canonicalized in place: the buffer is trimmed to exactly
// ceil(n/4) bytes (so SizeBytes never over-reports) and the unused
// high-order fields of the final byte are cleared (so a deserialized mask
// re-serializes to the same bytes an encoder-built one produces, and Equal
// compares codes rather than padding garbage). Callers keeping a reference
// to data should expect that final byte to be rewritten.
func FromBytes(data []byte, n int) (*Mask2, error) {
	need := (n + 3) / 4
	if len(data) < need {
		return nil, fmt.Errorf("bitpack: buffer holds %d bytes, need %d for %d elements", len(data), need, n)
	}
	data = data[:need]
	if rem := n & 3; rem != 0 {
		data[need-1] &= byte(1)<<(uint(rem)*2) - 1
	}
	return &Mask2{n: n, data: data}, nil
}

// Len returns the number of two-bit elements.
func (m *Mask2) Len() int { return m.n }

// Bytes returns the underlying packed storage. The final byte may contain
// unused high-order fields, which are kept at zero by Set.
func (m *Mask2) Bytes() []byte { return m.data }

// SizeBytes returns the storage footprint in bytes (the paper's "8% of the
// original frame data" metadata overhead comes from this: 2 bits per pixel
// of an 8-bit frame is 1/4 of the pixel data).
func (m *Mask2) SizeBytes() int { return len(m.data) }

// Get returns element i.
func (m *Mask2) Get(i int) Code {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("bitpack: index %d out of range [0,%d)", i, m.n))
	}
	return Code((m.data[i>>2] >> uint((i&3)*2)) & 0x3)
}

// Set stores code c at element i.
func (m *Mask2) Set(i int, c Code) {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("bitpack: index %d out of range [0,%d)", i, m.n))
	}
	if !c.Valid() {
		panic("bitpack: invalid code")
	}
	shift := uint((i & 3) * 2)
	b := m.data[i>>2]
	b &^= 0x3 << shift
	b |= byte(c) << shift
	m.data[i>>2] = b
}

// Fill sets elements [lo, hi) to code c.
func (m *Mask2) Fill(lo, hi int, c Code) {
	if lo < 0 || hi > m.n || lo > hi {
		panic(fmt.Sprintf("bitpack: fill range [%d,%d) out of range [0,%d]", lo, hi, m.n))
	}
	// Head: align lo up to a byte boundary.
	for lo < hi && lo&3 != 0 {
		m.Set(lo, c)
		lo++
	}
	// Middle: whole bytes.
	pattern := byte(c) | byte(c)<<2 | byte(c)<<4 | byte(c)<<6
	for ; hi-lo >= 4; lo += 4 {
		m.data[lo>>2] = pattern
	}
	// Tail.
	for ; lo < hi; lo++ {
		m.Set(lo, c)
	}
}

// Reset sets every element to CodeN.
func (m *Mask2) Reset() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// countRBytes counts the "11" two-bit fields across whole packed bytes,
// eight bytes (32 mask elements) per step. A field is R exactly when both of
// its bits are set, so `w & (w>>1)` puts a marker on each field's low bit and
// masking with 0x55… isolates those markers for a single OnesCount64.
// Two-bit fields never straddle byte boundaries (4 fields per byte), so the
// little-endian uint64 load preserves field alignment.
func countRBytes(data []byte) int {
	total := 0
	for len(data) >= 8 {
		w := binary.LittleEndian.Uint64(data)
		total += bits.OnesCount64(w & (w >> 1) & 0x5555555555555555)
		data = data[8:]
	}
	for _, b := range data {
		total += int(rCountTable[b])
	}
	return total
}

// CountR returns the number of CodeR elements in [0, hi).
//
// This is the decoder's column-offset primitive: "the count of the number of
// full regional pixels from the start of the row until that pixel (the number
// of 11 entries in the EncMask)" (§4.2.1). Whole bytes are counted 32
// elements at a time via a masked popcount; only the trailing partial byte
// consults the prefix table.
func (m *Mask2) CountR(hi int) int {
	if hi < 0 || hi > m.n {
		panic(fmt.Sprintf("bitpack: CountR bound %d out of range [0,%d]", hi, m.n))
	}
	total := countRBytes(m.data[:hi>>2])
	if rem := hi & 3; rem != 0 {
		total += int(rPrefixTable[m.data[hi>>2]][rem])
	}
	return total
}

// CountRRange returns the number of CodeR elements in [lo, hi). It scans
// only the covered bytes, so the cost is O((hi-lo)/4) regardless of where
// the range sits in the mask.
func (m *Mask2) CountRRange(lo, hi int) int {
	if lo < 0 || hi > m.n || lo > hi {
		panic(fmt.Sprintf("bitpack: range [%d,%d) out of range [0,%d]", lo, hi, m.n))
	}
	if lo == hi {
		return 0
	}
	loByte, hiByte := lo>>2, hi>>2
	if loByte == hiByte {
		// Within one byte: prefix difference.
		b := m.data[loByte]
		return int(rPrefixTable[b][hi&3]) - int(rPrefixTable[b][lo&3])
	}
	total := 0
	// Head: elements [lo, end of its byte).
	if rem := lo & 3; rem != 0 {
		total += int(rPrefixTable[m.data[loByte]][4]) - int(rPrefixTable[m.data[loByte]][rem])
		loByte++
	}
	// Middle: whole bytes, word at a time.
	total += countRBytes(m.data[loByte:hiByte])
	// Tail: elements [start of hi's byte, hi).
	if rem := hi & 3; rem != 0 {
		total += int(rPrefixTable[m.data[hiByte]][rem])
	}
	return total
}

// Histogram returns the number of elements holding each of the four codes.
func (m *Mask2) Histogram() [4]int {
	var h [4]int
	for i := 0; i < m.n; i++ {
		h[m.Get(i)]++
	}
	return h
}

// Clone returns a deep copy of m.
func (m *Mask2) Clone() *Mask2 {
	c := &Mask2{n: m.n, data: make([]byte, len(m.data))}
	copy(c.data, m.data)
	return c
}

// Equal reports whether m and o hold identical elements.
func (m *Mask2) Equal(o *Mask2) bool {
	if m.n != o.n {
		return false
	}
	for i, b := range m.data {
		if b != o.data[i] {
			return false
		}
	}
	return true
}
