package bitpack

// Cursor walks a Mask2 sequentially while tracking the running count of
// CodeR elements seen so far. The decoder's FIFO sampling unit uses a cursor
// per row so that translating consecutive pixel requests is O(1) each instead
// of O(x) popcounts.
type Cursor struct {
	m    *Mask2
	pos  int
	rSum int
}

// NewCursor returns a cursor at element 0 of m.
func NewCursor(m *Mask2) *Cursor { return &Cursor{m: m} }

// Pos returns the current element index.
func (c *Cursor) Pos() int { return c.pos }

// RBefore returns the number of CodeR elements strictly before the current
// position.
func (c *Cursor) RBefore() int { return c.rSum }

// Next returns the code at the current position and advances by one.
// It panics when advanced past the end of the mask.
func (c *Cursor) Next() Code {
	code := c.m.Get(c.pos)
	c.pos++
	if code == CodeR {
		c.rSum++
	}
	return code
}

// Seek repositions the cursor to element i, recomputing the running R count.
// Seeking forward from the current position costs O(delta/4); seeking
// backward costs O(i/4).
func (c *Cursor) Seek(i int) {
	switch {
	case i == c.pos:
		return
	case i > c.pos:
		c.rSum += c.m.CountRRange(c.pos, i)
	default:
		c.rSum = c.m.CountR(i)
	}
	c.pos = i
}

// Done reports whether the cursor has consumed every element.
func (c *Cursor) Done() bool { return c.pos >= c.m.Len() }
