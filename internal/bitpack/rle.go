package bitpack

import (
	"encoding/binary"
	"fmt"
)

// Packed mask codec.
//
// EncMask rows are long runs of identical 2-bit codes — whole rows of N
// outside the labeled regions, R/St alternating only inside them — so the
// raw 2 bpp packing (the paper's ~8% metadata overhead, §3) compresses
// heavily under run-length coding. The packed form is one codec-id byte
// followed by the codec's body:
//
//	codec 0 (raw):  the canonical ceil(n/4)-byte 2 bpp packing, verbatim.
//	codec 1 (RLE):  a sequence of uvarint tokens, token = (runLen-1)<<2 | code,
//	                whose run lengths must sum to exactly n.
//
// The encoder always picks the smaller form, so the packed size is bounded
// by the raw size + 1 byte even on adversarial (alternating-code) masks.
// The decoder treats its input as untrusted wire data: allocation is
// bounded by the caller-declared element count, never by the input bytes.

// Mask codec identifiers, the first byte of a packed mask.
const (
	// MaskCodecRaw marks a verbatim canonical 2 bpp body.
	MaskCodecRaw byte = 0
	// MaskCodecRLE marks a run-length body of uvarint (runLen-1)<<2|code
	// tokens.
	MaskCodecRLE byte = 1
)

// PackedMaxSize bounds the packed form of an n-element mask: the codec-id
// byte plus the raw body the encoder falls back to when RLE does not win.
func PackedMaxSize(n int) int { return 1 + (n+3)/4 }

// AppendPacked appends the packed form of m to dst and returns the extended
// slice. It emits the RLE body when that is strictly smaller than raw, and
// the raw body otherwise, so len(appended) <= PackedMaxSize(m.Len()).
func AppendPacked(dst []byte, m *Mask2) []byte {
	start := len(dst)
	dst = append(dst, MaskCodecRLE)
	rawSize := len(m.data)
	n := m.n
	var tmp [binary.MaxVarintLen64]byte
	for i := 0; i < n; {
		c := m.Get(i)
		j := i + 1
		// Extend the run a whole byte (4 elements) at a time while the
		// next byte is the run code's fill pattern.
		pattern := byte(c) * 0x55
		for j&3 == 0 && n-j >= 4 && m.data[j>>2] == pattern {
			j += 4
		}
		for j < n && m.Get(j) == c {
			j++
		}
		k := binary.PutUvarint(tmp[:], uint64(j-i-1)<<2|uint64(c))
		if len(dst)-start-1+k >= rawSize {
			// RLE cannot win; fall back to the raw body. Checked before
			// the append so dst never outgrows PackedMaxSize even
			// transiently — pooled callers size their scratch by it.
			dst = dst[:start]
			dst = append(dst, MaskCodecRaw)
			return append(dst, m.data...)
		}
		dst = append(dst, tmp[:k]...)
		i = j
	}
	return dst
}

// DecodePacked decodes a packed mask declared to hold n elements. The
// allocation is NewMask2(n) regardless of the input bytes.
func DecodePacked(data []byte, n int) (*Mask2, error) {
	if n < 0 {
		return nil, fmt.Errorf("bitpack: packed mask: negative length %d", n)
	}
	m := NewMask2(n)
	if err := DecodePackedInto(m, data); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodePackedInto decodes a packed mask into m, which supplies the element
// count. Every element of m is overwritten on success; on error m's
// contents are unspecified. It allocates nothing, so pooled decode paths
// can reuse one mask across frames.
func DecodePackedInto(m *Mask2, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("bitpack: packed mask: empty buffer")
	}
	codec, body := data[0], data[1:]
	n := m.n
	switch codec {
	case MaskCodecRaw:
		need := (n + 3) / 4
		if len(body) != need {
			return fmt.Errorf("bitpack: raw mask body is %d bytes, want %d for %d elements", len(body), need, n)
		}
		copy(m.data, body)
		// Canonicalize padding, mirroring FromBytes: wire peers must not
		// be able to smuggle bits the element space cannot express.
		if rem := n & 3; rem != 0 {
			m.data[need-1] &= byte(1)<<(uint(rem)*2) - 1
		}
	case MaskCodecRLE:
		i := 0
		for len(body) > 0 {
			v, k := binary.Uvarint(body)
			if k <= 0 {
				return fmt.Errorf("bitpack: packed mask: malformed varint token at element %d", i)
			}
			body = body[k:]
			run := v>>2 + 1
			if run > uint64(n-i) {
				return fmt.Errorf("bitpack: packed mask: run of %d exceeds %d remaining elements", run, n-i)
			}
			m.Fill(i, i+int(run), Code(v&3))
			i += int(run)
		}
		if i != n {
			return fmt.Errorf("bitpack: packed mask: runs cover %d of %d elements", i, n)
		}
	default:
		return fmt.Errorf("bitpack: unknown mask codec %d", codec)
	}
	return nil
}
