package bitpack

import (
	"bytes"
	"testing"
)

// FuzzMaskCodec drives the packed-mask codec from both sides:
//
//  1. data as a hostile packed buffer: DecodePacked must never panic, and
//     what it accepts must re-encode and re-decode to the same mask
//     (decode -> encode -> decode is a fixpoint).
//  2. data as raw mask elements: encode -> decode must be the identity,
//     within the PackedMaxSize bound.
//
// Allocation is bounded by the declared element count (capped here), never
// by the input bytes — DecodePacked's only allocation is NewMask2(n).
func FuzzMaskCodec(f *testing.F) {
	region := NewMask2(256)
	region.Fill(64, 192, CodeR)
	region.Fill(192, 224, CodeSk)
	f.Add(AppendPacked(nil, region), uint16(256))
	f.Add([]byte{MaskCodecRaw, 0xFF, 0xCF}, uint16(6))
	f.Add([]byte{MaskCodecRLE, byte(11<<2 | 3)}, uint16(12))
	f.Add([]byte{MaskCodecRLE, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, uint16(12))
	f.Add([]byte{MaskCodecRLE, 0x80}, uint16(4))
	f.Add([]byte{0x07, 0x01}, uint16(8))

	f.Fuzz(func(t *testing.T, data []byte, n uint16) {
		nn := int(n) & 0xFFF

		// Side 1: hostile packed input.
		if m, err := DecodePacked(data, nn); err == nil {
			enc := AppendPacked(nil, m)
			if len(enc) > PackedMaxSize(nn) {
				t.Fatalf("re-encode of accepted input: %d bytes > PackedMaxSize %d", len(enc), PackedMaxSize(nn))
			}
			m2, err := DecodePacked(enc, nn)
			if err != nil {
				t.Fatalf("re-decode of re-encoded mask failed: %v", err)
			}
			if !m2.Equal(m) || !bytes.Equal(m2.Bytes(), m.Bytes()) {
				t.Fatal("decode -> encode -> decode is not a fixpoint")
			}
		}

		// Side 2: data as mask elements; round trip must be the identity.
		mask := NewMask2(nn)
		for i := 0; i < nn && i/4 < len(data); i++ {
			mask.Set(i, Code((data[i/4]>>uint((i&3)*2))&0x3))
		}
		want := mask.Clone()
		enc := AppendPacked(nil, mask)
		if len(enc) > PackedMaxSize(nn) {
			t.Fatalf("packed %d bytes > PackedMaxSize %d", len(enc), PackedMaxSize(nn))
		}
		got, err := DecodePacked(enc, nn)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if !got.Equal(want) || !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatal("encode -> decode is not the identity")
		}
	})
}
