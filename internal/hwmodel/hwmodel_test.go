package hwmodel

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestParallelEncoderScalesLinearly(t *testing.T) {
	// Table 5 shape: parallel LUT/FF cost grows ~linearly with regions.
	r100 := EncoderResources(core.DesignParallel, 100)
	r200 := EncoderResources(core.DesignParallel, 200)
	r400 := EncoderResources(core.DesignParallel, 400)
	if !r100.Synthesizable || !r200.Synthesizable || !r400.Synthesizable {
		t.Fatal("parallel <= 400 regions must synthesize")
	}
	// Calibration within ~10% of the published rows.
	within := func(got, want int) bool {
		return math.Abs(float64(got-want))/float64(want) < 0.10
	}
	if !within(r100.LUTs, 4644) || !within(r200.LUTs, 8635) || !within(r400.LUTs, 16251) {
		t.Errorf("parallel LUTs = %d/%d/%d, want ~4644/8635/16251", r100.LUTs, r200.LUTs, r400.LUTs)
	}
	if !within(r100.FFs, 5935) || !within(r400.FFs, 20685) {
		t.Errorf("parallel FFs = %d/%d, want ~5935/20685", r100.FFs, r400.FFs)
	}
	if r100.BRAMs != 6 || r400.BRAMs != 6 {
		t.Errorf("parallel BRAMs = %d/%d, want 6", r100.BRAMs, r400.BRAMs)
	}
}

func TestParallelEncoderFailsSynthesisAt1600(t *testing.T) {
	r := EncoderResources(core.DesignParallel, 1600)
	if r.Synthesizable {
		t.Error("parallel at 1600 regions must fail synthesis (Table 5: No Synth)")
	}
	if r.String() != "No Synth" {
		t.Errorf("String = %q, want \"No Synth\"", r.String())
	}
}

func TestHybridEncoderFlat(t *testing.T) {
	// Table 5 shape: hybrid resources are constant from 100 to 1600 regions.
	r100 := EncoderResources(core.DesignHybrid, 100)
	r1600 := EncoderResources(core.DesignHybrid, 1600)
	if r100.LUTs != r1600.LUTs || r100.FFs != r1600.FFs || r100.BRAMs != r1600.BRAMs {
		t.Errorf("hybrid not flat: %v vs %v", r100, r1600)
	}
	if !r1600.Synthesizable {
		t.Error("hybrid at 1600 regions must synthesize")
	}
	if r100.LUTs < 900 || r100.LUTs > 1000 || r100.BRAMs != 11 {
		t.Errorf("hybrid calibration: %v, want ~945 LUTs / 11 BRAMs", r100)
	}
	// Hybrid uses far fewer LUTs than parallel even at 100 regions.
	if p := EncoderResources(core.DesignParallel, 100); r100.LUTs*3 > p.LUTs {
		t.Error("hybrid should use well under 1/3 the LUTs of parallel at 100 regions")
	}
}

func TestHybridBRAMGrowsBeyondCapacity(t *testing.T) {
	r := EncoderResources(core.DesignHybrid, 10000)
	if r.BRAMs <= 11 {
		t.Errorf("BRAMs = %d at 10k regions, want growth beyond 11", r.BRAMs)
	}
	if !r.Synthesizable {
		t.Error("hybrid should still synthesize with more BRAM")
	}
}

func TestNaiveTracksParallelModel(t *testing.T) {
	if EncoderResources(core.DesignNaive, 200) != EncoderResources(core.DesignParallel, 200) {
		t.Error("naive design should share the per-region comparator model")
	}
}

func TestEncoderResourcesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative regions did not panic")
		}
	}()
	EncoderResources(core.DesignHybrid, -1)
}

func TestDecoderAgnosticToRegions(t *testing.T) {
	// §6.3: "it needs 699 LUTs, 1082 FFs, and 2 BRAMs (18Kb) for 1080p
	// decoding, regardless of the number of supported regions."
	r := DecoderResources(1920)
	if r.LUTs != 699 || r.FFs != 1082 || r.BRAMs != 2 || !r.Synthesizable {
		t.Errorf("decoder 1080p = %v, want 699/1082/2", r)
	}
	r4k := DecoderResources(3840)
	if r4k.LUTs != 699 || r4k.BRAMs <= 2 {
		t.Errorf("decoder 4K = %v, want same logic with more line-buffer BRAM", r4k)
	}
}

func TestPowerModel(t *testing.T) {
	// §6.3: encoder consumes 45 mW at 1600 regions, < 7% of a 650 mW ISP.
	p := EncoderPowerMW(1600)
	if math.Abs(p-45) > 0.5 {
		t.Errorf("EncoderPowerMW(1600) = %v, want ~45", p)
	}
	if p/ISPChipPowerMW >= 0.07 {
		t.Errorf("encoder power fraction = %.3f, want < 0.07", p/ISPChipPowerMW)
	}
	if DecoderPowerMW() >= 1 {
		t.Errorf("DecoderPowerMW = %v, want < 1", DecoderPowerMW())
	}
	if EncoderPowerMW(100) >= EncoderPowerMW(1600) {
		t.Error("power should grow with regions")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative regions did not panic")
		}
	}()
	EncoderPowerMW(-1)
}

func TestPipelineTiming(t *testing.T) {
	// §5.1: the pipeline delivers 4K @ 60 fps pass-through.
	if !MeetsRealTime(3840, 2160, 60) {
		t.Error("4K60 must meet real time at 2 px/clock")
	}
	if MeetsRealTime(7680, 4320, 60) {
		t.Error("8K60 should exceed the pipeline rate")
	}
	if SustainedPixelRate() != 600e6 {
		t.Errorf("SustainedPixelRate = %v", SustainedPixelRate())
	}
	if EncoderFIFODepth != 16 {
		t.Error("FIFO depth should match §5.1")
	}
}

func TestDecoderLatencyNegligible(t *testing.T) {
	// §6.3: "this delay is the order of a few 10s of ns".
	ns := DecoderLatencyNS(16)
	if ns < 10 || ns > 200 {
		t.Errorf("DecoderLatencyNS(16) = %v, want tens of ns", ns)
	}
	// Negligible against 10 ms frame compute.
	if ns/1e7 > 0.001 {
		t.Error("latency should be negligible vs frame compute")
	}
}

func TestResourcesString(t *testing.T) {
	r := Resources{LUTs: 1, FFs: 2, BRAMs: 3, Synthesizable: true}
	if r.String() != "1 LUTs, 2 FFs, 3 BRAMs" {
		t.Errorf("String = %q", r.String())
	}
}
