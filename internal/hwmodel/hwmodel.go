// Package hwmodel estimates FPGA resource utilization and power for the
// rhythmic pixel encoder and decoder IP blocks, reproducing the scaling
// behaviour of the paper's Table 5 and §6.3.
//
// The model is analytic with constants calibrated to the published numbers:
//
//   - the parallel encoder instantiates one comparator per region, so its
//     LUT/FF cost grows linearly with the region count and the design stops
//     synthesizing (routing congestion / timing closure) beyond a few
//     hundred comparators;
//   - the hybrid encoder keeps a fixed number of comparison lanes and holds
//     the y-sorted region list in BRAM, so its logic cost is flat in the
//     region count;
//   - the decoder operates on EncMask metadata only and is agnostic to the
//     number of regions.
package hwmodel

import (
	"fmt"

	"repro/internal/core"
)

// Resources is an FPGA utilization estimate.
type Resources struct {
	LUTs  int
	FFs   int
	BRAMs int // 18 Kb blocks
	// Synthesizable reports whether the design closes synthesis/timing.
	Synthesizable bool
}

// String renders the estimate like the paper's Table 5 rows.
func (r Resources) String() string {
	if !r.Synthesizable {
		return "No Synth"
	}
	return fmt.Sprintf("%d LUTs, %d FFs, %d BRAMs", r.LUTs, r.FFs, r.BRAMs)
}

// Calibration constants (least-squares over Table 5's parallel rows, fixed
// points for the hybrid rows and §6.3's decoder numbers).
const (
	parallelLUTPerRegion = 39 // (16251-4644)/300 ≈ 38.7
	parallelLUTBase      = 775
	parallelFFPerRegion  = 49 // (20685-5935)/300 ≈ 49.2
	parallelFFBase       = 1018
	parallelBRAMs        = 6
	// maxParallelComparators is where parallel synthesis stops closing;
	// Table 5 reports "No Synth" at 1600 regions.
	maxParallelComparators = 512

	hybridLUTs  = 945
	hybridFFs   = 1189
	hybridBRAMs = 11
	// labelBits is the BRAM storage per region label: six 16-bit fields.
	labelBits = 96
	// bramBits is the usable capacity of one 18 Kb block.
	bramBits = 18 * 1024

	decoderLUTs  = 699
	decoderFFs   = 1082
	decoderBRAMs = 2
)

// EncoderResources estimates the encoder IP for a comparison-engine design
// supporting the given number of regions.
func EncoderResources(d core.Design, regions int) Resources {
	if regions < 0 {
		panic("hwmodel: negative region count")
	}
	switch d {
	case core.DesignParallel, core.DesignNaive:
		r := Resources{
			LUTs:          parallelLUTBase + parallelLUTPerRegion*regions,
			FFs:           parallelFFBase + parallelFFPerRegion*regions,
			BRAMs:         parallelBRAMs,
			Synthesizable: regions <= maxParallelComparators,
		}
		if !r.Synthesizable {
			return Resources{Synthesizable: false}
		}
		return r
	case core.DesignHybrid:
		// The region list lives in BRAM; the fixed 11 blocks hold up to
		// ~2100 labels, growing only beyond that.
		brams := hybridBRAMs
		if need := (regions*labelBits + bramBits - 1) / bramBits; need > hybridBRAMs {
			brams = need
		}
		return Resources{LUTs: hybridLUTs, FFs: hybridFFs, BRAMs: brams, Synthesizable: true}
	}
	panic("hwmodel: unknown design")
}

// DecoderResources estimates the decoder IP for a frame of the given width.
// The decoder is agnostic to the number of regions (§6.3); its BRAM budget
// holds the metadata scratchpad and the one-row line buffer, so it grows
// only with frame width beyond 1080p.
func DecoderResources(frameWidth int) Resources {
	brams := decoderBRAMs
	if frameWidth > 1920 {
		// One extra 18 Kb block per additional 2K pixels of line buffer.
		brams += (frameWidth - 1920 + 2047) / 2048
	}
	return Resources{LUTs: decoderLUTs, FFs: decoderFFs, BRAMs: brams, Synthesizable: true}
}

// Power model constants (§6.3): the encoder consumes 45 mW supporting 1600
// regions — under 7% of a 650 mW mobile ISP — and the decoder < 1 mW.
const (
	encoderBasePowerMW      = 20.0
	encoderPerRegionPowerMW = 25.0 / 1600.0
	decoderPowerMW          = 0.8
	// ISPChipPowerMW is the reference mobile ISP power the paper compares
	// against.
	ISPChipPowerMW = 650.0
)

// EncoderPowerMW estimates hybrid-encoder power at a region count.
func EncoderPowerMW(regions int) float64 {
	if regions < 0 {
		panic("hwmodel: negative region count")
	}
	return encoderBasePowerMW + encoderPerRegionPowerMW*float64(regions)
}

// DecoderPowerMW returns the decoder power estimate.
func DecoderPowerMW() float64 { return decoderPowerMW }

// Pipeline timing model (§5.1): the ISP and encoder sustain 2 pixels per
// clock; the video pipeline passes post-layout timing at this rate.
const (
	PixelsPerClock = 2
	// PipelineClockHz is the streaming clock of the reVISION video pipeline.
	PipelineClockHz = 300e6
	// EncoderFIFODepth is the input/output FIFO depth that suffices to
	// avoid pipeline stalls at 2 px/clock.
	EncoderFIFODepth = 16
)

// SustainedPixelRate returns the pipeline's pixel throughput in pixels/s.
func SustainedPixelRate() float64 { return PixelsPerClock * PipelineClockHz }

// MeetsRealTime reports whether a w x h stream at fps fits the pipeline's
// sustained pixel rate.
func MeetsRealTime(w, h int, fps float64) bool {
	return float64(w)*float64(h)*fps <= SustainedPixelRate()
}

// DecoderLatencyNS estimates the added response latency of the decoder on a
// pixel transaction: a few cycles of address translation plus one cycle per
// burst beat — "a few 10s of ns", negligible against ~10 ms frame compute
// (§6.3).
func DecoderLatencyNS(burstBeats int) float64 {
	const translateCycles = 6
	cycles := translateCycles + burstBeats
	return float64(cycles) / PipelineClockHz * 1e9
}
