package trace

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/region"
)

// FrameSample is one frame's traffic in a per-frame series.
type FrameSample struct {
	Frame          int
	WriteBytes     int64
	ReadBytes      int64
	FootprintBytes int64
	PixelFraction  float64
}

// RunSeries is Run with full per-frame sampling: it returns the aggregate
// Result plus one FrameSample per frame, for plotting traffic and footprint
// over time (the timeline view behind Fig. 8's averages).
func RunSeries(cfg Config, model baseline.Model, frames []region.List) (Result, []FrameSample, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, nil, err
	}
	if len(frames) == 0 {
		return Result{}, nil, fmt.Errorf("trace: no frames to simulate")
	}
	res := Result{Model: model.Name(), Frames: len(frames)}
	samples := make([]FrameSample, 0, len(frames))
	total := float64(cfg.W * cfg.H)
	var meanFoot, peakFoot int64
	for i, labels := range frames {
		if err := labels.Validate(cfg.W, cfg.H); err != nil {
			return Result{}, nil, fmt.Errorf("trace: frame %d: %w", i, err)
		}
		t := model.FrameTraffic(labels, i)
		res.WriteBytes += t.WriteBytes
		res.ReadBytes += t.ReadBytes
		frac := float64(t.PixelsStored) / total
		res.PixelFractions = append(res.PixelFractions, frac)
		samples = append(samples, FrameSample{
			Frame:          i,
			WriteBytes:     t.WriteBytes,
			ReadBytes:      t.ReadBytes,
			FootprintBytes: t.FootprintBytes,
			PixelFraction:  frac,
		})
		meanFoot += t.FootprintBytes
		if t.FootprintBytes > peakFoot {
			peakFoot = t.FootprintBytes
		}
	}
	n := int64(len(frames))
	res.WriteMBps = float64(res.WriteBytes) / float64(n) * cfg.FPS / 1e6
	res.ReadMBps = float64(res.ReadBytes) / float64(n) * cfg.FPS / 1e6
	res.TotalMBps = res.WriteMBps + res.ReadMBps
	res.MeanFootprintMB = float64(meanFoot/n) / 1e6
	res.PeakFootprintMB = float64(peakFoot) / 1e6
	return res, samples, nil
}

// WriteSeriesCSV emits a per-frame series as CSV for plotting.
func WriteSeriesCSV(w io.Writer, model string, samples []FrameSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"model", "frame", "write_bytes", "read_bytes", "footprint_bytes", "pixel_fraction"}); err != nil {
		return err
	}
	for _, s := range samples {
		rec := []string{
			model,
			fmt.Sprint(s.Frame),
			fmt.Sprint(s.WriteBytes),
			fmt.Sprint(s.ReadBytes),
			fmt.Sprint(s.FootprintBytes),
			fmt.Sprintf("%.4f", s.PixelFraction),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
