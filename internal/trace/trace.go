// Package trace is the paper's throughput simulator (§5.3.1): it takes the
// per-frame region label specification from the application, drives a
// baseline traffic model with it, and reports read/write pixel throughput
// in bytes per second along with the framebuffer footprint over time.
package trace

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/memsim"
	"repro/internal/region"
)

// Config describes the simulated stream.
type Config struct {
	W, H          int
	BytesPerPixel int
	FPS           float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.W <= 0 || c.H <= 0 || c.BytesPerPixel <= 0 || c.FPS <= 0 {
		return fmt.Errorf("trace: invalid config %+v", c)
	}
	return nil
}

// Result summarizes a simulated run.
type Result struct {
	Model  string
	Frames int

	WriteBytes int64
	ReadBytes  int64

	// WriteMBps/ReadMBps/TotalMBps are sustained throughputs at Config.FPS.
	WriteMBps float64
	ReadMBps  float64
	TotalMBps float64

	// MeanFootprintMB and PeakFootprintMB track the framebuffer memory.
	MeanFootprintMB float64
	PeakFootprintMB float64

	// PixelFractions is, per frame, stored pixels / (W*H) — the series the
	// paper's appendix figures (Figs. 10-15) report.
	PixelFractions []float64
}

// Run drives the model with one label list per frame and accumulates the
// traffic into a fresh DRAM model.
func Run(cfg Config, model baseline.Model, frames []region.List) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(frames) == 0 {
		return Result{}, fmt.Errorf("trace: no frames to simulate")
	}
	dram := memsim.NewDRAM()
	res := Result{Model: model.Name(), Frames: len(frames)}
	total := float64(cfg.W * cfg.H)
	for i, labels := range frames {
		if err := labels.Validate(cfg.W, cfg.H); err != nil {
			return Result{}, fmt.Errorf("trace: frame %d: %w", i, err)
		}
		t := model.FrameTraffic(labels, i)
		dram.Write(int(t.WriteBytes))
		dram.Read(int(t.ReadBytes))
		dram.Alloc("framebuffers", t.FootprintBytes)
		dram.Tick()
		res.PixelFractions = append(res.PixelFractions, float64(t.PixelsStored)/total)
	}
	c := dram.Counters()
	res.WriteBytes, res.ReadBytes = c.WriteBytes, c.ReadBytes
	res.WriteMBps = memsim.Throughput(c.WriteBytes, len(frames), cfg.FPS) / 1e6
	res.ReadMBps = memsim.Throughput(c.ReadBytes, len(frames), cfg.FPS) / 1e6
	res.TotalMBps = res.WriteMBps + res.ReadMBps
	res.MeanFootprintMB = float64(dram.MeanFootprint()) / 1e6
	res.PeakFootprintMB = float64(dram.PeakFootprint()) / 1e6
	return res, nil
}

// MeanPixelFraction returns the average stored-pixel fraction across frames.
func (r Result) MeanPixelFraction() float64 {
	if len(r.PixelFractions) == 0 {
		return 0
	}
	var sum float64
	for _, f := range r.PixelFractions {
		sum += f
	}
	return sum / float64(len(r.PixelFractions))
}

// Reduction returns the fractional traffic reduction of r against a
// reference result (e.g. FCH): 0.43 means 43% less total traffic.
func (r Result) Reduction(ref Result) float64 {
	refTotal := float64(ref.WriteBytes + ref.ReadBytes)
	if refTotal == 0 {
		return 0
	}
	return 1 - float64(r.WriteBytes+r.ReadBytes)/refTotal
}
