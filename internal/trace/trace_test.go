package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/region"
)

func TestRunFrameBased(t *testing.T) {
	cfg := Config{W: 640, H: 480, BytesPerPixel: 1, FPS: 30}
	frames := make([]region.List, 30)
	res, err := Run(cfg, baseline.NewFCH(640, 480, 1), frames)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(640 * 480)
	if res.WriteBytes != 30*size || res.ReadBytes != 30*size {
		t.Errorf("bytes = %d/%d", res.WriteBytes, res.ReadBytes)
	}
	// 30 frames over 1 second: write throughput = 640*480*30 B/s ≈ 9.2 MB/s.
	if math.Abs(res.WriteMBps-9.216) > 0.01 {
		t.Errorf("WriteMBps = %v, want ~9.216", res.WriteMBps)
	}
	if math.Abs(res.TotalMBps-res.WriteMBps-res.ReadMBps) > 1e-9 {
		t.Error("TotalMBps inconsistent")
	}
	if res.MeanFootprintMB <= 0 || res.PeakFootprintMB < res.MeanFootprintMB {
		t.Errorf("footprint stats: mean=%v peak=%v", res.MeanFootprintMB, res.PeakFootprintMB)
	}
	if len(res.PixelFractions) != 30 || res.PixelFractions[0] != 1.0 {
		t.Errorf("pixel fractions = %v...", res.PixelFractions[:3])
	}
	if res.MeanPixelFraction() != 1.0 {
		t.Errorf("MeanPixelFraction = %v", res.MeanPixelFraction())
	}
}

func TestRunRhythmicCycle(t *testing.T) {
	const w, h = 320, 240
	cfg := Config{W: w, H: h, BytesPerPixel: 1, FPS: 30}
	// Cycle length 5: full frame on frames 0 and 5, regions between.
	regionsOnly := region.List{{X: 40, Y: 40, W: 80, H: 60, Stride: 2, Skip: 1}}
	var frames []region.List
	for i := 0; i < 10; i++ {
		if i%5 == 0 {
			frames = append(frames, region.List{region.FullFrame(w, h)})
		} else {
			frames = append(frames, regionsOnly.Clone())
		}
	}
	rp, err := Run(cfg, baseline.NewRhythmic(5, w, h, 1), frames)
	if err != nil {
		t.Fatal(err)
	}
	fch, err := Run(cfg, baseline.NewFCH(w, h, 1), frames)
	if err != nil {
		t.Fatal(err)
	}
	if rp.WriteBytes >= fch.WriteBytes {
		t.Errorf("rhythmic write %d >= FCH %d", rp.WriteBytes, fch.WriteBytes)
	}
	red := rp.Reduction(fch)
	if red < 0.3 || red > 0.95 {
		t.Errorf("reduction = %v, want substantial", red)
	}
	// Full-capture frames have fraction 1, region frames ~0.026 (40x30 lattice).
	if rp.PixelFractions[0] != 1.0 || rp.PixelFractions[1] > 0.05 {
		t.Errorf("fractions = %v", rp.PixelFractions[:3])
	}
}

func TestRunErrors(t *testing.T) {
	good := Config{W: 10, H: 10, BytesPerPixel: 1, FPS: 30}
	if _, err := Run(Config{}, baseline.NewFCH(10, 10, 1), make([]region.List, 1)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Run(good, baseline.NewFCH(10, 10, 1), nil); err == nil {
		t.Error("empty frames accepted")
	}
	bad := []region.List{{{X: 0, Y: 0, W: 100, H: 100, Stride: 1, Skip: 1}}}
	if _, err := Run(good, baseline.NewFCH(10, 10, 1), bad); err == nil {
		t.Error("out-of-frame label accepted")
	}
}

func TestReductionEdgeCases(t *testing.T) {
	var zero Result
	if zero.Reduction(Result{}) != 0 {
		t.Error("zero reference should yield 0")
	}
	if (Result{}).MeanPixelFraction() != 0 {
		t.Error("empty fractions should yield 0")
	}
}

func TestHigherCycleLengthReducesTraffic(t *testing.T) {
	// §6.2: "memory traffic decreases by 5-10% with every 5 step increase
	// in cycle length". Verify monotonicity CL5 > CL10 > CL15 in traffic.
	const w, h = 320, 240
	cfg := Config{W: w, H: h, BytesPerPixel: 1, FPS: 30}
	regionsOnly := region.List{{X: 40, Y: 40, W: 120, H: 100, Stride: 2, Skip: 1}}
	mkFrames := func(cl, n int) []region.List {
		var out []region.List
		for i := 0; i < n; i++ {
			if i%cl == 0 {
				out = append(out, region.List{region.FullFrame(w, h)})
			} else {
				out = append(out, regionsOnly.Clone())
			}
		}
		return out
	}
	var prev int64 = math.MaxInt64
	for _, cl := range []int{5, 10, 15} {
		res, err := Run(cfg, baseline.NewRhythmic(cl, w, h, 1), mkFrames(cl, 60))
		if err != nil {
			t.Fatal(err)
		}
		total := res.WriteBytes + res.ReadBytes
		if total >= prev {
			t.Errorf("CL=%d total %d not below previous %d", cl, total, prev)
		}
		prev = total
	}
}

func TestRunSeriesMatchesRun(t *testing.T) {
	const w, h = 160, 120
	cfg := Config{W: w, H: h, BytesPerPixel: 1, FPS: 30}
	var frames []region.List
	for i := 0; i < 12; i++ {
		if i%4 == 0 {
			frames = append(frames, region.List{region.FullFrame(w, h)})
		} else {
			frames = append(frames, region.List{{X: 20, Y: 20, W: 40, H: 30, Stride: 2, Skip: 1}})
		}
	}
	agg, err := Run(cfg, baseline.NewRhythmic(4, w, h, 1), frames)
	if err != nil {
		t.Fatal(err)
	}
	res, samples, err := RunSeries(cfg, baseline.NewRhythmic(4, w, h, 1), frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 12 {
		t.Fatalf("got %d samples", len(samples))
	}
	if res.WriteBytes != agg.WriteBytes || res.ReadBytes != agg.ReadBytes {
		t.Errorf("aggregate mismatch: series %d/%d vs run %d/%d",
			res.WriteBytes, res.ReadBytes, agg.WriteBytes, agg.ReadBytes)
	}
	// Per-frame sums equal the aggregate.
	var sumW int64
	for _, s := range samples {
		sumW += s.WriteBytes
	}
	if sumW != res.WriteBytes {
		t.Errorf("sample write sum %d != aggregate %d", sumW, res.WriteBytes)
	}
	// Full-capture frames carry fraction 1.
	if samples[0].PixelFraction != 1 || samples[1].PixelFraction >= 1 {
		t.Errorf("fractions: %v %v", samples[0].PixelFraction, samples[1].PixelFraction)
	}
}

func TestRunSeriesErrors(t *testing.T) {
	good := Config{W: 10, H: 10, BytesPerPixel: 1, FPS: 30}
	if _, _, err := RunSeries(Config{}, baseline.NewFCH(10, 10, 1), make([]region.List, 1)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, _, err := RunSeries(good, baseline.NewFCH(10, 10, 1), nil); err == nil {
		t.Error("empty frames accepted")
	}
	bad := []region.List{{{X: 0, Y: 0, W: 100, H: 100, Stride: 1, Skip: 1}}}
	if _, _, err := RunSeries(good, baseline.NewFCH(10, 10, 1), bad); err == nil {
		t.Error("invalid labels accepted")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	samples := []FrameSample{{Frame: 0, WriteBytes: 100, ReadBytes: 50, FootprintBytes: 400, PixelFraction: 0.5}}
	if err := WriteSeriesCSV(&buf, "RP10", samples); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "model,frame") || !strings.Contains(got, "RP10,0,100,50,400,0.5000") {
		t.Errorf("csv:\n%s", got)
	}
}
