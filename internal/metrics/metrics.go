// Package metrics implements the task accuracy metrics of the paper's
// evaluation (§5.3.1): absolute trajectory error and relative pose error for
// visual SLAM, and IoU-thresholded mean average precision for detection
// tasks.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Pose2D is a planar pose (position plus heading), the trajectory element
// of the simulated SLAM workload.
type Pose2D struct {
	X, Y  float64
	Theta float64
}

// ATE returns the absolute trajectory error — the RMSE of positional error
// between estimated and ground-truth trajectories of equal length — plus
// the standard deviation of the per-frame errors (the paper reports
// "43 ± 1.5 mm" style figures).
func ATE(est, gt []Pose2D) (rmse, stddev float64, err error) {
	if len(est) != len(gt) {
		return 0, 0, fmt.Errorf("metrics: trajectory lengths differ: %d vs %d", len(est), len(gt))
	}
	if len(est) == 0 {
		return 0, 0, fmt.Errorf("metrics: empty trajectories")
	}
	errs := make([]float64, len(est))
	var sumSq float64
	for i := range est {
		e := math.Hypot(est[i].X-gt[i].X, est[i].Y-gt[i].Y)
		errs[i] = e
		sumSq += e * e
	}
	rmse = math.Sqrt(sumSq / float64(len(est)))
	var mean float64
	for _, e := range errs {
		mean += e
	}
	mean /= float64(len(errs))
	var varSum float64
	for _, e := range errs {
		varSum += (e - mean) * (e - mean)
	}
	stddev = math.Sqrt(varSum / float64(len(errs)))
	return rmse, stddev, nil
}

// RPE returns the relative pose error over a fixed frame delta: the RMSE of
// per-step translational error and the RMSE of per-step rotational error in
// radians.
func RPE(est, gt []Pose2D, delta int) (trans, rot float64, err error) {
	if len(est) != len(gt) {
		return 0, 0, fmt.Errorf("metrics: trajectory lengths differ: %d vs %d", len(est), len(gt))
	}
	if delta <= 0 || len(est) <= delta {
		return 0, 0, fmt.Errorf("metrics: invalid delta %d for %d poses", delta, len(est))
	}
	var sumT, sumR float64
	n := 0
	for i := 0; i+delta < len(est); i++ {
		dxE := est[i+delta].X - est[i].X
		dyE := est[i+delta].Y - est[i].Y
		dxG := gt[i+delta].X - gt[i].X
		dyG := gt[i+delta].Y - gt[i].Y
		te := math.Hypot(dxE-dxG, dyE-dyG)
		re := angleDiff(est[i+delta].Theta-est[i].Theta, gt[i+delta].Theta-gt[i].Theta)
		sumT += te * te
		sumR += re * re
		n++
	}
	return math.Sqrt(sumT / float64(n)), math.Sqrt(sumR / float64(n)), nil
}

// angleDiff returns the magnitude of the wrapped difference of two angles.
func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	} else if d < -math.Pi {
		d += 2 * math.Pi
	}
	return math.Abs(d)
}

// Detection is a scored bounding box prediction.
type Detection struct {
	X, Y, W, H int
	Score      float64
}

// GroundTruth is an unscored bounding box.
type GroundTruth struct {
	X, Y, W, H int
}

// IoU returns the intersection-over-union of a detection and a ground
// truth box.
func IoU(d Detection, g GroundTruth) float64 {
	x0 := max(d.X, g.X)
	y0 := max(d.Y, g.Y)
	x1 := min(d.X+d.W, g.X+g.W)
	y1 := min(d.Y+d.H, g.Y+g.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	inter := float64((x1 - x0) * (y1 - y0))
	union := float64(d.W*d.H+g.W*g.H) - inter
	return inter / union
}

// FrameResult pairs one frame's detections with its ground truths.
type FrameResult struct {
	Detections []Detection
	Truths     []GroundTruth
}

// MAP computes mean average precision over a sequence at an IoU threshold:
// detections across all frames are sorted by score; each is a true positive
// when it overlaps an unmatched ground truth of its frame above the
// threshold; AP is the area under the precision-recall curve (all-point
// interpolation).
func MAP(frames []FrameResult, iouThreshold float64) float64 {
	type det struct {
		frame int
		d     Detection
	}
	var all []det
	totalGT := 0
	for fi, fr := range frames {
		totalGT += len(fr.Truths)
		for _, d := range fr.Detections {
			all = append(all, det{fi, d})
		}
	}
	if totalGT == 0 {
		return 0
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].d.Score > all[j].d.Score })

	matched := make([]map[int]bool, len(frames))
	for i := range matched {
		matched[i] = make(map[int]bool)
	}
	tps := make([]bool, len(all))
	for i, a := range all {
		bestIoU, bestJ := 0.0, -1
		for j, g := range frames[a.frame].Truths {
			if matched[a.frame][j] {
				continue
			}
			if iou := IoU(a.d, g); iou > bestIoU {
				bestIoU, bestJ = iou, j
			}
		}
		if bestJ >= 0 && bestIoU >= iouThreshold {
			matched[a.frame][bestJ] = true
			tps[i] = true
		}
	}

	// Precision-recall sweep.
	var precisions, recalls []float64
	tp, fp := 0, 0
	for i := range all {
		if tps[i] {
			tp++
		} else {
			fp++
		}
		precisions = append(precisions, float64(tp)/float64(tp+fp))
		recalls = append(recalls, float64(tp)/float64(totalGT))
	}
	if len(precisions) == 0 {
		return 0
	}
	// Monotone precision envelope, then integrate over recall.
	for i := len(precisions) - 2; i >= 0; i-- {
		if precisions[i] < precisions[i+1] {
			precisions[i] = precisions[i+1]
		}
	}
	ap := 0.0
	prevR := 0.0
	for i := range recalls {
		ap += precisions[i] * (recalls[i] - prevR)
		prevR = recalls[i]
	}
	return ap
}

// DetectionAccuracy returns the paper's simpler TP/(TP+FP) detection
// accuracy at an IoU threshold, greedily matching per frame.
func DetectionAccuracy(frames []FrameResult, iouThreshold float64) float64 {
	tp, total := 0, 0
	for _, fr := range frames {
		used := make([]bool, len(fr.Truths))
		for _, d := range fr.Detections {
			total++
			for j, g := range fr.Truths {
				if !used[j] && IoU(d, g) >= iouThreshold {
					used[j] = true
					tp++
					break
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(tp) / float64(total)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}
