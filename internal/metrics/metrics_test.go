package metrics

import (
	"math"
	"testing"
)

func TestATE(t *testing.T) {
	gt := []Pose2D{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	// Perfect estimate.
	rmse, std, err := ATE(gt, gt)
	if err != nil || rmse != 0 || std != 0 {
		t.Errorf("perfect ATE = %v±%v, %v", rmse, std, err)
	}
	// Constant 3-4-5 offset: rmse 5, stddev 0.
	est := []Pose2D{{X: 3, Y: 4}, {X: 4, Y: 4}, {X: 5, Y: 4}}
	rmse, std, err = ATE(est, gt)
	if err != nil || math.Abs(rmse-5) > 1e-12 || std > 1e-12 {
		t.Errorf("offset ATE = %v±%v", rmse, std)
	}
	if _, _, err := ATE(est[:2], gt); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := ATE(nil, nil); err == nil {
		t.Error("empty trajectories accepted")
	}
}

func TestATEStddev(t *testing.T) {
	gt := []Pose2D{{}, {}, {}, {}}
	est := []Pose2D{{X: 0}, {X: 2}, {X: 0}, {X: 2}}
	_, std, err := ATE(est, gt)
	if err != nil || math.Abs(std-1) > 1e-12 {
		t.Errorf("stddev = %v, want 1", std)
	}
}

func TestRPE(t *testing.T) {
	gt := []Pose2D{{X: 0}, {X: 1}, {X: 2}, {X: 3}}
	// Estimate drifts: steps of 1.5 instead of 1.
	est := []Pose2D{{X: 0}, {X: 1.5}, {X: 3}, {X: 4.5}}
	trans, rot, err := RPE(est, gt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(trans-0.5) > 1e-12 {
		t.Errorf("trans RPE = %v, want 0.5", trans)
	}
	if rot != 0 {
		t.Errorf("rot RPE = %v, want 0", rot)
	}
	if _, _, err := RPE(est, gt, 0); err == nil {
		t.Error("delta 0 accepted")
	}
	if _, _, err := RPE(est, gt, 4); err == nil {
		t.Error("delta >= len accepted")
	}
	if _, _, err := RPE(est[:2], gt, 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRPERotationWrap(t *testing.T) {
	// Heading crossing the ±pi seam should not inflate the error.
	gt := []Pose2D{{Theta: math.Pi - 0.1}, {Theta: -math.Pi + 0.1}}
	est := []Pose2D{{Theta: math.Pi - 0.1}, {Theta: -math.Pi + 0.1}}
	_, rot, err := RPE(est, gt, 1)
	if err != nil || rot > 1e-12 {
		t.Errorf("wrapped rot RPE = %v, want 0", rot)
	}
	est2 := []Pose2D{{Theta: 0}, {Theta: 0.2}}
	gt2 := []Pose2D{{Theta: 0}, {Theta: 0}}
	_, rot2, _ := RPE(est2, gt2, 1)
	if math.Abs(rot2-0.2) > 1e-12 {
		t.Errorf("rot RPE = %v, want 0.2", rot2)
	}
}

func TestIoU(t *testing.T) {
	d := Detection{X: 0, Y: 0, W: 10, H: 10}
	if IoU(d, GroundTruth{X: 0, Y: 0, W: 10, H: 10}) != 1 {
		t.Error("identical IoU != 1")
	}
	if IoU(d, GroundTruth{X: 100, Y: 0, W: 10, H: 10}) != 0 {
		t.Error("disjoint IoU != 0")
	}
	got := IoU(d, GroundTruth{X: 0, Y: 5, W: 10, H: 10})
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("half-overlap IoU = %v, want 1/3", got)
	}
}

func TestMAPPerfect(t *testing.T) {
	frames := []FrameResult{
		{
			Detections: []Detection{{X: 0, Y: 0, W: 10, H: 10, Score: 0.9}},
			Truths:     []GroundTruth{{X: 0, Y: 0, W: 10, H: 10}},
		},
		{
			Detections: []Detection{{X: 5, Y: 5, W: 8, H: 8, Score: 0.8}},
			Truths:     []GroundTruth{{X: 5, Y: 5, W: 8, H: 8}},
		},
	}
	if got := MAP(frames, 0.5); got != 1 {
		t.Errorf("perfect mAP = %v", got)
	}
	if got := DetectionAccuracy(frames, 0.5); got != 1 {
		t.Errorf("perfect accuracy = %v", got)
	}
}

func TestMAPMisses(t *testing.T) {
	frames := []FrameResult{
		{
			Detections: []Detection{
				{X: 0, Y: 0, W: 10, H: 10, Score: 0.9},   // TP
				{X: 50, Y: 50, W: 10, H: 10, Score: 0.8}, // FP
			},
			Truths: []GroundTruth{
				{X: 0, Y: 0, W: 10, H: 10},
				{X: 80, Y: 80, W: 10, H: 10}, // missed
			},
		},
	}
	got := MAP(frames, 0.5)
	// One TP of two GT at precision 1 for the first detection: AP = 0.5.
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("mAP = %v, want 0.5", got)
	}
	acc := DetectionAccuracy(frames, 0.5)
	if math.Abs(acc-0.5) > 1e-12 {
		t.Errorf("accuracy = %v, want 0.5", acc)
	}
}

func TestMAPNoDoubleMatch(t *testing.T) {
	// Two detections on one ground truth: only one TP.
	frames := []FrameResult{
		{
			Detections: []Detection{
				{X: 0, Y: 0, W: 10, H: 10, Score: 0.9},
				{X: 1, Y: 1, W: 10, H: 10, Score: 0.8},
			},
			Truths: []GroundTruth{{X: 0, Y: 0, W: 10, H: 10}},
		},
	}
	got := MAP(frames, 0.5)
	if got != 1 { // recall reaches 1 with the first detection at precision 1
		t.Errorf("mAP = %v, want 1", got)
	}
	acc := DetectionAccuracy(frames, 0.5)
	if math.Abs(acc-0.5) > 1e-12 {
		t.Errorf("accuracy = %v, want 0.5 (second det is FP)", acc)
	}
}

func TestMAPEmpty(t *testing.T) {
	if MAP(nil, 0.5) != 0 {
		t.Error("empty mAP != 0")
	}
	if MAP([]FrameResult{{Truths: []GroundTruth{{W: 1, H: 1}}}}, 0.5) != 0 {
		t.Error("no detections mAP != 0")
	}
	if DetectionAccuracy(nil, 0.5) != 0 {
		t.Error("empty accuracy != 0")
	}
}

func TestMeanStddev(t *testing.T) {
	if Mean(nil) != 0 || Stddev(nil) != 0 || Stddev([]float64{5}) != 0 {
		t.Error("degenerate stats wrong")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if math.Abs(Stddev([]float64{1, 3})-1) > 1e-12 {
		t.Errorf("stddev = %v, want 1", Stddev([]float64{1, 3}))
	}
}
