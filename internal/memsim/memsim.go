// Package memsim is the transaction-level DRAM traffic model behind the
// paper's evaluation: a counter-based simulator of the framebuffer reads and
// writes the vision pipeline issues, plus a footprint tracker for the
// encoded frame buffers over time.
//
// The paper's own methodology (§5.3.1) is exactly this: "We build a
// throughput simulator which takes the region label specification per frame
// from the application and uses it to generate the memory access patterns of
// pixel traffic. The simulator counts the number of pixel transactions and
// directly reports the read/write pixel throughput in bytes/sec."
package memsim

import "fmt"

// BurstBytes is the DMA burst size of the line-buffered framebuffer writer.
// The encoder "collects a line of pixels before committing a burst DMA
// write" (§4.1.2); bursts model DDR transaction granularity.
const BurstBytes = 64

// Counters accumulates byte and transaction counts on one memory interface.
type Counters struct {
	ReadBytes  int64
	WriteBytes int64
	ReadTxns   int64
	WriteTxns  int64
}

// TotalBytes returns read plus write bytes.
func (c Counters) TotalBytes() int64 { return c.ReadBytes + c.WriteBytes }

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.ReadBytes += o.ReadBytes
	c.WriteBytes += o.WriteBytes
	c.ReadTxns += o.ReadTxns
	c.WriteTxns += o.WriteTxns
}

// DRAM is a transaction-counting DRAM model with a set of named regions
// (framebuffers, metadata buffers) whose live sizes form the footprint
// timeline.
type DRAM struct {
	counters Counters
	buffers  map[string]int64 // live allocation sizes in bytes
	peak     int64
	timeline []int64 // footprint snapshot after each Tick
}

// NewDRAM returns an empty DRAM model.
func NewDRAM() *DRAM {
	return &DRAM{buffers: make(map[string]int64)}
}

// Write records a write of n bytes, rounded up to whole bursts for the
// transaction count.
func (d *DRAM) Write(n int) {
	if n < 0 {
		panic("memsim: negative write")
	}
	d.counters.WriteBytes += int64(n)
	d.counters.WriteTxns += int64((n + BurstBytes - 1) / BurstBytes)
}

// Read records a read of n bytes.
func (d *DRAM) Read(n int) {
	if n < 0 {
		panic("memsim: negative read")
	}
	d.counters.ReadBytes += int64(n)
	d.counters.ReadTxns += int64((n + BurstBytes - 1) / BurstBytes)
}

// Counters returns the accumulated traffic counters.
func (d *DRAM) Counters() Counters { return d.counters }

// Alloc sets the live size of a named buffer (replacing any previous size;
// a framebuffer slot being rewritten each frame keeps one allocation).
func (d *DRAM) Alloc(name string, bytes int64) {
	if bytes < 0 {
		panic("memsim: negative allocation")
	}
	d.buffers[name] = bytes
	if f := d.Footprint(); f > d.peak {
		d.peak = f
	}
}

// Free removes a named buffer.
func (d *DRAM) Free(name string) { delete(d.buffers, name) }

// Footprint returns the current live byte total across buffers.
func (d *DRAM) Footprint() int64 {
	var total int64
	for _, b := range d.buffers {
		total += b
	}
	return total
}

// PeakFootprint returns the maximum footprint observed.
func (d *DRAM) PeakFootprint() int64 { return d.peak }

// Tick snapshots the current footprint into the timeline (call once per
// frame).
func (d *DRAM) Tick() { d.timeline = append(d.timeline, d.Footprint()) }

// Timeline returns the per-tick footprint history.
func (d *DRAM) Timeline() []int64 { return d.timeline }

// MeanFootprint returns the average footprint over the timeline, or 0 when
// no ticks were recorded.
func (d *DRAM) MeanFootprint() int64 {
	if len(d.timeline) == 0 {
		return 0
	}
	var sum int64
	for _, v := range d.timeline {
		sum += v
	}
	return sum / int64(len(d.timeline))
}

// Throughput converts a byte count over a frame span at the given frame
// rate into bytes per second.
func Throughput(bytes int64, frames int, fps float64) float64 {
	if frames <= 0 {
		return 0
	}
	return float64(bytes) / float64(frames) * fps
}

// FormatBytes renders a byte count with binary-ish units for reports,
// matching the MB figures in the paper (decimal megabytes).
func FormatBytes(b int64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.2f GB", float64(b)/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.2f MB", float64(b)/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.2f KB", float64(b)/1e3)
	}
	return fmt.Sprintf("%d B", b)
}
