package memsim

import (
	"testing"
	"testing/quick"
)

func TestCountersAdd(t *testing.T) {
	a := Counters{ReadBytes: 1, WriteBytes: 2, ReadTxns: 3, WriteTxns: 4}
	b := Counters{ReadBytes: 10, WriteBytes: 20, ReadTxns: 30, WriteTxns: 40}
	a.Add(b)
	if a.ReadBytes != 11 || a.WriteBytes != 22 || a.ReadTxns != 33 || a.WriteTxns != 44 {
		t.Errorf("Add = %+v", a)
	}
	if a.TotalBytes() != 33 {
		t.Errorf("TotalBytes = %d", a.TotalBytes())
	}
}

func TestDRAMReadWrite(t *testing.T) {
	d := NewDRAM()
	d.Write(100)
	d.Read(64)
	d.Read(65)
	c := d.Counters()
	if c.WriteBytes != 100 || c.ReadBytes != 129 {
		t.Errorf("bytes = %+v", c)
	}
	if c.WriteTxns != 2 { // ceil(100/64)
		t.Errorf("WriteTxns = %d, want 2", c.WriteTxns)
	}
	if c.ReadTxns != 3 { // 1 + ceil(65/64)=2
		t.Errorf("ReadTxns = %d, want 3", c.ReadTxns)
	}
}

func TestDRAMPanicsOnNegative(t *testing.T) {
	d := NewDRAM()
	for name, fn := range map[string]func(){
		"Write": func() { d.Write(-1) },
		"Read":  func() { d.Read(-1) },
		"Alloc": func() { d.Alloc("x", -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(-1) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFootprintTracking(t *testing.T) {
	d := NewDRAM()
	d.Alloc("fb0", 1000)
	d.Alloc("fb1", 500)
	if d.Footprint() != 1500 {
		t.Errorf("Footprint = %d", d.Footprint())
	}
	d.Tick()
	d.Alloc("fb0", 200) // replaces, not accumulates
	if d.Footprint() != 700 {
		t.Errorf("after realloc Footprint = %d", d.Footprint())
	}
	d.Tick()
	d.Free("fb1")
	d.Tick()
	if d.PeakFootprint() != 1500 {
		t.Errorf("PeakFootprint = %d, want 1500", d.PeakFootprint())
	}
	tl := d.Timeline()
	if len(tl) != 3 || tl[0] != 1500 || tl[1] != 700 || tl[2] != 200 {
		t.Errorf("Timeline = %v", tl)
	}
	if d.MeanFootprint() != (1500+700+200)/3 {
		t.Errorf("MeanFootprint = %d", d.MeanFootprint())
	}
}

func TestMeanFootprintEmpty(t *testing.T) {
	if NewDRAM().MeanFootprint() != 0 {
		t.Error("empty timeline mean should be 0")
	}
}

func TestThroughput(t *testing.T) {
	// 30 frames of 1 MB at 30 fps = 30 MB/s.
	if got := Throughput(30e6, 30, 30); got != 30e6 {
		t.Errorf("Throughput = %v, want 30e6", got)
	}
	if Throughput(100, 0, 30) != 0 {
		t.Error("zero frames should yield 0")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		5:             "5 B",
		1500:          "1.50 KB",
		2_500_000:     "2.50 MB",
		3_000_000_000: "3.00 GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

// Property: txns are always ceil(bytes/burst) per call and bytes accumulate.
func TestBurstRoundingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		d := NewDRAM()
		var bytes, txns int64
		for _, s := range sizes {
			d.Write(int(s))
			bytes += int64(s)
			txns += int64((int(s) + BurstBytes - 1) / BurstBytes)
		}
		c := d.Counters()
		return c.WriteBytes == bytes && c.WriteTxns == txns
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
