// Package gateway implements rpxgw's session proxy: a consistent-hash
// router that sits in front of a fleet of rpxd backends and speaks the rpxd
// wire protocol on both sides.
//
// Each client connection is pinned to one backend at HELLO time by hashing
// a per-connection session key onto the ring; from then on the gateway
// relays messages in lockstep (read request, forward, read reply, forward)
// without decoding frame payloads. The strict one-reply-per-request shape
// of the protocol is what makes migration safe: between round trips a
// session has no in-flight state on the wire, so the gateway can tear the
// backend connection down and rebuild it elsewhere — replaying the client's
// original HELLO and last SET_LABELS bytes via the same replay package the
// rpx client's reconnect path uses — at any message boundary.
//
// A health watcher polls every backend's /healthz. Draining or dead
// backends leave the ring (new sessions avoid them) and their live sessions
// are evacuated onto the least-loaded survivors. A backend that dies
// mid-request costs the client at most one typed error (CAPTURE, which is
// not safely retryable, returns CodeUnavailable); idempotent requests are
// retried once on the replacement and the client never notices.
package gateway

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
	"repro/rpx/client/replay"
)

// Backend identifies one rpxd: the wire address sessions are proxied to
// and an optional admin address the health watcher probes for /healthz.
type Backend struct {
	Addr  string
	Admin string
}

// ParseBackends parses the -backends flag syntax: comma-separated
// "addr[@admin]" entries, e.g.
// "10.0.0.1:7621@10.0.0.1:9621,10.0.0.2:7621".
func ParseBackends(s string) ([]Backend, error) {
	var out []Backend
	seen := make(map[string]struct{})
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		addr, admin, _ := strings.Cut(part, "@")
		if addr == "" {
			return nil, fmt.Errorf("gateway: backend entry %q has no wire address", part)
		}
		if _, dup := seen[addr]; dup {
			return nil, fmt.Errorf("gateway: duplicate backend %s", addr)
		}
		seen[addr] = struct{}{}
		out = append(out, Backend{Addr: addr, Admin: admin})
	}
	if len(out) == 0 {
		return nil, errors.New("gateway: no backends configured")
	}
	return out, nil
}

// Config tunes the gateway.
type Config struct {
	// Backends is the rpxd fleet (required, non-empty).
	Backends []Backend
	// VNodes is the ring's virtual-node count per backend (0 = DefaultVNodes).
	VNodes int
	// MaxPayload caps relayed message payloads (0 = wire.DefaultMaxPayload).
	MaxPayload int
	// DialTimeout bounds one backend dial (default 5s).
	DialTimeout time.Duration
	// ReadTimeout bounds each blocking client read (default 2 minutes,
	// matching rpxd).
	ReadTimeout time.Duration
	// WriteTimeout bounds each client reply write (default 30s).
	WriteTimeout time.Duration
	// BackendTimeout bounds one backend round trip (default 30s).
	BackendTimeout time.Duration
	// Health tunes the backend health watcher.
	Health WatcherConfig
	// Metrics, when non-nil, receives the rpxgw_* series.
	Metrics *obs.Registry
}

// Defaults for Config zero values.
const (
	DefaultDialTimeout    = 5 * time.Second
	DefaultBackendTimeout = 30 * time.Second
)

// Gateway is the session proxy. Create with New, run with Serve, stop with
// Shutdown.
//
// Lock order: a proxySession's mu may be held while acquiring g.mu (load
// accounting happens inside backend swaps), so nothing may acquire a
// session's mu while holding g.mu — evacuation and shutdown snapshot the
// session set under g.mu, release it, and only then touch sessions.
type Gateway struct {
	cfg     Config
	ring    *Ring
	watcher *Watcher

	mu         sync.Mutex
	ln         net.Listener
	draining   bool
	conns      map[net.Conn]struct{}
	sessions   map[*proxySession]struct{}
	localLoad  map[string]int    // gateway-local sessions pinned per backend
	remotePins map[uint64]string // backend-assigned session id -> backend addr
	nextKey    uint64
	wg         sync.WaitGroup

	sessionsOpen  obs.Gauge
	sessionsTotal obs.Counter
	rerouted      obs.Counter
	healthFlips   obs.Counter
	openFailures  obs.Counter
	opHist        [len(proxyOps)]obs.Histogram
}

// proxyOps enumerates the request types the gateway times; the order fixes
// the histogram index.
var proxyOps = [...]struct {
	typ  byte
	name string
}{
	{wire.MsgSetLabels, "set_labels"},
	{wire.MsgCapture, "capture"},
	{wire.MsgDecode, "decode"},
	{wire.MsgDecodeWindow, "decode_window"},
	{wire.MsgGetEncoded, "get_encoded"},
	{wire.MsgStats, "stats"},
	{wire.MsgClose, "close"},
	{wire.MsgSubscribe, "subscribe"},
}

func opIndex(typ byte) int {
	for i, op := range proxyOps {
		if op.typ == typ {
			return i
		}
	}
	return -1
}

// idempotent reports whether a request can be retried on a replacement
// backend after a mid-request transport failure. CAPTURE cannot: the dead
// backend may have encoded the frame before the reply was lost, and
// re-submitting would double-count it in capture statistics. CLOSE is
// answered locally on failure instead of retried.
func idempotent(typ byte) bool {
	switch typ {
	case wire.MsgSetLabels, wire.MsgDecode, wire.MsgDecodeWindow, wire.MsgGetEncoded, wire.MsgStats:
		return true
	}
	return false
}

// New builds a gateway over cfg.Backends. Every backend starts on the ring
// (StateUnknown routes optimistically — a dead one just fails over at dial
// time until the first probe round evicts it).
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gateway: no backends configured")
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = wire.DefaultMaxPayload
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 2 * time.Minute
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.BackendTimeout <= 0 {
		cfg.BackendTimeout = DefaultBackendTimeout
	}
	g := &Gateway{
		cfg:       cfg,
		ring:      NewRing(cfg.VNodes),
		conns:     make(map[net.Conn]struct{}),
		sessions:  make(map[*proxySession]struct{}),
		localLoad: make(map[string]int),
	}
	for _, b := range cfg.Backends {
		g.ring.Add(b.Addr)
	}
	hcfg := cfg.Health
	hcfg.OnChange = g.onHealthChange
	g.watcher = NewWatcher(cfg.Backends, hcfg)
	if cfg.Metrics != nil {
		g.registerMetrics(cfg.Metrics)
	}
	return g, nil
}

// Watcher returns the backend health watcher (for a deterministic Probe in
// tests and operator tooling).
func (g *Gateway) Watcher() *Watcher { return g.watcher }

// SessionsOpen returns the number of proxied sessions currently open; it is
// the gateway's own /healthz session count.
func (g *Gateway) SessionsOpen() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.sessions)
}

// onHealthChange is the watcher callback: ring membership tracks health,
// and leaving the ring triggers evacuation of the sessions pinned there.
func (g *Gateway) onHealthChange(addr string, from, to State) {
	g.healthFlips.Inc()
	switch to {
	case StateHealthy:
		g.ring.Add(addr)
	case StateDraining, StateDead:
		g.ring.Remove(addr)
		go g.evacuate(addr)
	}
}

// evacuate migrates every session pinned to addr onto a survivor. A session
// mid-round-trip holds its own lock, so evacuation naturally waits for the
// message boundary. Migration failures leave the session backend-less; its
// next request retries migration and, failing that, gets CodeUnavailable.
func (g *Gateway) evacuate(addr string) {
	for _, s := range g.snapshotSessions() {
		s.mu.Lock()
		if s.backendAddr == addr {
			s.migrateLocked(addr)
		}
		s.mu.Unlock()
	}
}

func (g *Gateway) snapshotSessions() []*proxySession {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*proxySession, 0, len(g.sessions))
	for s := range g.sessions {
		out = append(out, s)
	}
	return out
}

// noteLoad adjusts the gateway-local pin count of one backend.
func (g *Gateway) noteLoad(addr string, delta int) {
	g.mu.Lock()
	g.localLoad[addr] += delta
	if g.localLoad[addr] <= 0 {
		delete(g.localLoad, addr)
	}
	g.mu.Unlock()
}

// migrationTargets returns candidate backends for (re)placing a session:
// the ring-walk failover order from the session's key, minus the excluded
// and unhealthy members, stably sorted least-loaded first. Load is the
// backend's own healthz-reported session count when the watcher has one
// (the whole-fleet truth), else this gateway's local pin count.
func (g *Gateway) migrationTargets(key, exclude string) []string {
	seq := g.ring.Sequence(key)
	cands := make([]string, 0, len(seq))
	for _, addr := range seq {
		if addr == exclude {
			continue
		}
		if st := g.watcher.Status(addr); st.State == StateDraining || st.State == StateDead {
			continue
		}
		cands = append(cands, addr)
	}
	weight := func(addr string) int {
		if st := g.watcher.Status(addr); st.Sessions >= 0 {
			return st.Sessions
		}
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.localLoad[addr]
	}
	sort.SliceStable(cands, func(i, j int) bool { return weight(cands[i]) < weight(cands[j]) })
	return cands
}

// Serve accepts client connections until the listener closes via Shutdown.
// It starts the health watcher and returns nil on graceful shutdown.
func (g *Gateway) Serve(ln net.Listener) error {
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return errors.New("gateway: already shut down")
	}
	g.ln = ln
	g.mu.Unlock()
	g.watcher.Start()

	for {
		conn, err := ln.Accept()
		if err != nil {
			g.mu.Lock()
			draining := g.draining
			g.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		g.mu.Lock()
		if g.draining {
			g.mu.Unlock()
			conn.Close()
			continue
		}
		g.conns[conn] = struct{}{}
		g.wg.Add(1)
		g.mu.Unlock()
		go func() {
			defer g.wg.Done()
			g.handle(conn)
			g.mu.Lock()
			delete(g.conns, conn)
			g.mu.Unlock()
		}()
	}
}

// Shutdown stops accepting, wakes blocked client reads, waits for handlers
// to finish or ctx to expire (then force-closes), and stops the watcher.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	ln := g.ln
	for conn := range g.conns {
		conn.SetReadDeadline(time.Now())
	}
	g.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = errors.New("gateway: drain deadline exceeded")
		g.mu.Lock()
		for conn := range g.conns {
			conn.Close()
		}
		g.mu.Unlock()
		<-done
	}
	g.watcher.Stop()
	return err
}

// proxySession is one client connection pinned to one backend. hello and
// labels hold the raw payload bytes the client sent, replayed verbatim on
// migration so the replacement backend sees exactly the original workload.
type proxySession struct {
	gw     *Gateway
	key    string
	client net.Conn

	mu          sync.Mutex
	backendAddr string
	bconn       net.Conn
	bbr         *bufio.Reader
	hello       []byte
	labels      []byte
	remoteID    uint64 // session id the pinned backend assigned
}

// handle runs one client connection: validate HELLO, pin a backend, then
// relay request/reply pairs in lockstep.
func (g *Gateway) handle(conn net.Conn) {
	defer conn.Close()
	cbr := bufio.NewReader(conn)
	// One MessageWriter per client connection: each message leaves in a
	// single vectored write, and its internal lock keeps the streaming
	// relay's pump goroutine from tearing frames against this loop's writes.
	// Client reads stay fresh-alloc (no buffer reuse): HELLO and SET_LABELS
	// payloads are retained verbatim for migration replay.
	cmw := wire.NewMessageWriter(conn)
	writeClient := func(typ byte, payload []byte) error {
		conn.SetWriteDeadline(time.Now().Add(g.cfg.WriteTimeout))
		return cmw.WriteMessage(typ, payload, g.cfg.MaxPayload)
	}
	writeErr := func(code uint16, msg string) error {
		return writeClient(wire.MsgError, wire.MarshalError(code, msg))
	}

	conn.SetReadDeadline(time.Now().Add(g.cfg.ReadTimeout))
	typ, payload, err := wire.ReadMessage(cbr, g.cfg.MaxPayload)
	if err != nil {
		return
	}
	if typ != wire.MsgHello {
		writeErr(wire.CodeProto, fmt.Sprintf("first message must be HELLO, got %d", typ))
		return
	}
	// Validate before routing so a malformed handshake is rejected here and
	// never burns a backend dial.
	if _, err := wire.UnmarshalHello(payload); err != nil {
		writeErr(wire.CodeProto, err.Error())
		return
	}

	g.mu.Lock()
	g.nextKey++
	key := conn.RemoteAddr().String() + "#" + strconv.FormatUint(g.nextKey, 10)
	g.mu.Unlock()
	s := &proxySession{gw: g, key: key, client: conn, hello: payload}

	ack, reject, err := s.open()
	if reject != nil {
		// Deterministic backend rejection (bad geometry, bad request):
		// relayed verbatim, no failover — every backend would say the same.
		writeClient(wire.MsgError, wire.MarshalError(reject.Code, reject.Message))
		return
	}
	if err != nil {
		g.openFailures.Inc()
		writeErr(wire.CodeUnavailable, err.Error())
		return
	}
	g.mu.Lock()
	g.sessions[s] = struct{}{}
	g.mu.Unlock()
	g.sessionsTotal.Inc()
	g.sessionsOpen.Add(1)
	defer func() {
		g.mu.Lock()
		delete(g.sessions, s)
		g.mu.Unlock()
		g.sessionsOpen.Add(-1)
		s.mu.Lock()
		s.closeBackendLocked()
		s.mu.Unlock()
	}()
	if writeClient(wire.MsgHelloAck, ack) != nil {
		return
	}

	for {
		conn.SetReadDeadline(time.Now().Add(g.cfg.ReadTimeout))
		typ, payload, err := wire.ReadMessage(cbr, g.cfg.MaxPayload)
		if err != nil {
			if errors.Is(err, wire.ErrTooLarge) {
				writeErr(wire.CodeTooLarge, err.Error())
			}
			return
		}
		// SUBSCRIBE hands the connection to the streaming relay until the
		// stream ends; it may return a request that arrived after a
		// server-side stream end (possibly another SUBSCRIBE).
		for typ == wire.MsgSubscribe {
			start := time.Now()
			var ok bool
			typ, payload, ok = s.relayStream(conn, cbr, writeClient, payload)
			if i := opIndex(wire.MsgSubscribe); i >= 0 {
				g.opHist[i].Observe(time.Since(start))
			}
			if !ok {
				return
			}
		}
		if typ == 0 {
			continue // stream ended cleanly, nothing pending
		}
		start := time.Now()
		rtyp, rpayload := s.roundTrip(typ, payload)
		if i := opIndex(typ); i >= 0 {
			g.opHist[i].Observe(time.Since(start))
		}
		if writeClient(rtyp, rpayload) != nil {
			return
		}
		if typ == wire.MsgClose {
			return
		}
	}
}

// open pins the session to its first backend: the ring-walk order from the
// session key, skipping members the watcher has cordoned. A deterministic
// protocol rejection (any RemoteError but CodeSessionLimit) is returned as
// reject for verbatim relay; transport failures and full backends fail over
// to the next candidate. On success the raw HELLO_ACK payload is returned
// for relay.
func (s *proxySession) open() (ack []byte, reject *wire.RemoteError, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var lastErr error
	for _, addr := range s.gw.ring.Sequence(s.key) {
		if st := s.gw.watcher.Status(addr); st.State == StateDraining || st.State == StateDead {
			continue
		}
		ackPayload, oerr := s.adoptBackendLocked(addr)
		if oerr == nil {
			return ackPayload, nil, nil
		}
		var re *wire.RemoteError
		if errors.As(oerr, &re) && re.Code != wire.CodeSessionLimit {
			return nil, re, nil
		}
		lastErr = oerr
	}
	if lastErr == nil {
		lastErr = errors.New("no routable backend")
	}
	return nil, nil, lastErr
}

// adoptBackendLocked dials addr, replays the session's HELLO (and last
// SET_LABELS, if any), and on success pins the session there, returning the
// raw HELLO_ACK payload.
func (s *proxySession) adoptBackendLocked(addr string) ([]byte, error) {
	conn, err := net.DialTimeout("tcp", addr, s.gw.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	ack, ackPayload, err := replay.Handshake(conn, br, s.hello, s.gw.cfg.MaxPayload, s.gw.cfg.BackendTimeout)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if s.labels != nil {
		if err := replay.InstallLabels(conn, br, s.labels, s.gw.cfg.MaxPayload, s.gw.cfg.BackendTimeout); err != nil {
			conn.Close()
			return nil, err
		}
	}
	s.bconn, s.bbr, s.backendAddr = conn, br, addr
	// Remember which backend owns this remote session id so SUBSCRIBE
	// targets can be routed to the producer's backend.
	s.remoteID = ack.SessionID
	s.gw.setRemotePin(ack.SessionID, addr)
	s.gw.noteLoad(addr, +1)
	return ackPayload, nil
}

// closeBackendLocked tears down the backend side, releasing the load pin.
func (s *proxySession) closeBackendLocked() {
	if s.bconn != nil {
		s.bconn.Close()
	}
	s.bconn, s.bbr = nil, nil
	if s.backendAddr != "" {
		s.gw.dropRemotePin(s.remoteID, s.backendAddr)
		s.remoteID = 0
		s.gw.noteLoad(s.backendAddr, -1)
		s.backendAddr = ""
	}
}

// migrateLocked moves the session onto the least-loaded healthy survivor
// (excluding the backend it just left), replaying HELLO and labels. On
// failure the session is left backend-less; callers decide whether that is
// an error reply (round trip) or deferred (evacuation).
func (s *proxySession) migrateLocked(exclude string) error {
	s.closeBackendLocked()
	var lastErr error
	for _, addr := range s.gw.migrationTargets(s.key, exclude) {
		if _, err := s.adoptBackendLocked(addr); err != nil {
			lastErr = err
			continue
		}
		s.gw.rerouted.Inc()
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("no healthy backend")
	}
	return lastErr
}

// forwardLocked relays one request to the pinned backend and reads the one
// reply. Any transport failure closes the backend side — the framing is
// unrecoverable mid-message.
func (s *proxySession) forwardLocked(typ byte, payload []byte) (byte, []byte, error) {
	s.bconn.SetWriteDeadline(time.Now().Add(s.gw.cfg.BackendTimeout))
	if err := wire.WriteMessage(s.bconn, typ, payload, s.gw.cfg.MaxPayload); err != nil {
		s.closeBackendLocked()
		return 0, nil, err
	}
	s.bconn.SetReadDeadline(time.Now().Add(s.gw.cfg.BackendTimeout))
	rtyp, rpayload, err := wire.ReadMessage(s.bbr, s.gw.cfg.MaxPayload)
	if err != nil {
		s.closeBackendLocked()
		return 0, nil, err
	}
	return rtyp, rpayload, nil
}

// roundTrip serves one request, migrating across backend failure. It always
// returns exactly one reply so client framing stays in lockstep: relayed
// backend bytes, or a typed CodeUnavailable error when no backend could
// serve the request.
func (s *proxySession) roundTrip(typ byte, payload []byte) (byte, []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	unavailable := func(format string, a ...any) (byte, []byte) {
		return wire.MsgError, wire.MarshalError(wire.CodeUnavailable, fmt.Sprintf(format, a...))
	}

	// A failed evacuation can leave the session backend-less between
	// requests; retry placement before giving up on the op.
	if s.bconn == nil {
		if typ == wire.MsgClose {
			return wire.MsgAck, nil
		}
		if err := s.migrateLocked(""); err != nil {
			return unavailable("session unplaced: %v", err)
		}
	}

	rtyp, rpayload, err := s.forwardLocked(typ, payload)
	if err == nil {
		if typ == wire.MsgSetLabels && rtyp == wire.MsgAck {
			s.labels = payload
		}
		return rtyp, rpayload
	}

	// The routed backend died mid-request. CLOSE is acknowledged locally —
	// the session it would have closed is gone with the backend. Everything
	// else migrates first so the session survives, then the request is
	// retried only if that is safe.
	failed := s.backendAddr
	if failed == "" {
		failed = "backend"
	}
	if typ == wire.MsgClose {
		return wire.MsgAck, nil
	}
	if merr := s.migrateLocked(failed); merr != nil {
		return unavailable("%s failed mid-request (%v) and no replacement: %v", failed, err, merr)
	}
	if !idempotent(typ) {
		return unavailable("%s failed during non-retryable request; session migrated to %s", failed, s.backendAddr)
	}
	rtyp, rpayload, err = s.forwardLocked(typ, payload)
	if err != nil {
		return unavailable("retry on %s failed: %v", s.backendAddr, err)
	}
	if typ == wire.MsgSetLabels && rtyp == wire.MsgAck {
		s.labels = payload
	}
	return rtyp, rpayload
}

// registerMetrics publishes the rpxgw_* series.
func (g *Gateway) registerMetrics(reg *obs.Registry) {
	reg.GaugeFunc("rpxgw_sessions_open", "Currently proxied sessions.",
		func() float64 { return float64(g.sessionsOpen.Load()) })
	reg.CounterFunc("rpxgw_sessions_opened_total", "Proxied sessions opened over the process lifetime.",
		func() uint64 { return g.sessionsTotal.Load() })
	reg.CounterFunc("rpxgw_sessions_rerouted_total", "Session migrations onto a replacement backend.",
		func() uint64 { return g.rerouted.Load() })
	reg.CounterFunc("rpxgw_backend_health_flips_total", "Backend health state transitions observed by the watcher.",
		func() uint64 { return g.healthFlips.Load() })
	reg.CounterFunc("rpxgw_open_failures_total", "Client HELLOs that found no routable backend.",
		func() uint64 { return g.openFailures.Load() })
	for i := range proxyOps {
		reg.RegisterHistogram("rpxgw_proxy_op_latency_seconds",
			"Proxied operation latency (forward, backend execution, reply relay).",
			&g.opHist[i], obs.L("op", proxyOps[i].name))
	}
	reg.Collect(func(emit func(obs.Sample)) {
		for _, b := range g.cfg.Backends {
			st := g.watcher.Status(b.Addr)
			label := obs.L("backend", b.Addr)
			up := 0.0
			if st.State == StateHealthy || st.State == StateUnknown {
				up = 1.0
			}
			emit(obs.Sample{Name: "rpxgw_backend_up",
				Help: "1 while the backend is routable (healthy or not yet probed).",
				Kind: obs.KindGauge, Labels: []obs.Label{label}, Value: up})
			g.mu.Lock()
			local := g.localLoad[b.Addr]
			g.mu.Unlock()
			emit(obs.Sample{Name: "rpxgw_backend_sessions",
				Help: "Sessions this gateway currently pins to the backend.",
				Kind: obs.KindGauge, Labels: []obs.Label{label}, Value: float64(local)})
		}
	})
}

// BackendSnapshot is one backend's state in a Snapshot.
type BackendSnapshot struct {
	State            string `json:"state"`
	LocalSessions    int    `json:"local_sessions"`
	ReportedSessions int    `json:"reported_sessions"`
}

// Snapshot is the gateway's final-stats summary (logged on shutdown).
type Snapshot struct {
	SessionsOpen  int                        `json:"sessions_open"`
	SessionsTotal uint64                     `json:"sessions_total"`
	Rerouted      uint64                     `json:"sessions_rerouted"`
	HealthFlips   uint64                     `json:"backend_health_flips"`
	OpenFailures  uint64                     `json:"open_failures"`
	Backends      map[string]BackendSnapshot `json:"backends"`
}

// Snapshot captures current gateway statistics.
func (g *Gateway) Snapshot() Snapshot {
	snap := Snapshot{
		SessionsTotal: g.sessionsTotal.Load(),
		Rerouted:      g.rerouted.Load(),
		HealthFlips:   g.healthFlips.Load(),
		OpenFailures:  g.openFailures.Load(),
		Backends:      make(map[string]BackendSnapshot, len(g.cfg.Backends)),
	}
	g.mu.Lock()
	snap.SessionsOpen = len(g.sessions)
	local := make(map[string]int, len(g.localLoad))
	for a, n := range g.localLoad {
		local[a] = n
	}
	g.mu.Unlock()
	for _, b := range g.cfg.Backends {
		st := g.watcher.Status(b.Addr)
		snap.Backends[b.Addr] = BackendSnapshot{
			State:            st.State.String(),
			LocalSessions:    local[b.Addr],
			ReportedSessions: st.Sessions,
		}
	}
	return snap
}
