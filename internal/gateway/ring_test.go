package gateway

import (
	"fmt"
	"testing"
)

func ringBackends(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:7621", i+1)
	}
	return out
}

func ringKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("192.0.2.%d:%d#%d", i%250, 30000+i, i)
	}
	return out
}

// TestRingDistribution bounds the load skew of the default ring: 1k session
// keys over 3, 5, and 9 backends must land within a 2x max/min ratio. This
// is the satellite acceptance bound — it fails if the vnode count or hash
// is weakened enough to matter operationally.
func TestRingDistribution(t *testing.T) {
	keys := ringKeys(1000)
	for _, n := range []int{3, 5, 9} {
		r := NewRing(0)
		backends := ringBackends(n)
		for _, b := range backends {
			r.Add(b)
		}
		load := map[string]int{}
		for _, k := range keys {
			owner, ok := r.Lookup(k)
			if !ok {
				t.Fatalf("n=%d: lookup on populated ring failed", n)
			}
			load[owner]++
		}
		if len(load) != n {
			t.Fatalf("n=%d: only %d backends received keys: %v", n, len(load), load)
		}
		min, max := len(keys), 0
		for _, c := range load {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		ratio := float64(max) / float64(min)
		t.Logf("n=%d: min=%d max=%d ratio=%.2f", n, min, max, ratio)
		if ratio > 2.0 {
			t.Errorf("n=%d backends: max/min load = %d/%d = %.2f, want <= 2.0 (load %v)", n, max, min, ratio, load)
		}
	}
}

// TestRingMinimalDisruption is the consistent-hashing contract: removing or
// adding one of N backends moves fewer than 2/N of the keys, and on removal
// every key not owned by the removed backend stays exactly where it was.
func TestRingMinimalDisruption(t *testing.T) {
	keys := ringKeys(1000)
	for _, n := range []int{3, 5, 9} {
		backends := ringBackends(n)
		r := NewRing(0)
		for _, b := range backends {
			r.Add(b)
		}
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k], _ = r.Lookup(k)
		}

		// Removal: only the removed backend's keys may move.
		victim := backends[n/2]
		r.Remove(victim)
		moved := 0
		for _, k := range keys {
			after, _ := r.Lookup(k)
			if after == victim {
				t.Fatalf("n=%d: key still routed to removed backend %s", n, victim)
			}
			if after != before[k] {
				moved++
				if before[k] != victim {
					t.Errorf("n=%d: key %q moved from surviving backend %s to %s on unrelated removal", n, k, before[k], after)
				}
			}
		}
		if bound := 2 * len(keys) / n; moved >= bound {
			t.Errorf("n=%d: removal moved %d/%d keys, want < %d (2/N)", n, moved, len(keys), bound)
		}
		t.Logf("n=%d: removal moved %d/%d keys", n, moved, len(keys))

		// Addition back: only keys claimed by the re-added backend may move.
		middle := make(map[string]string, len(keys))
		for _, k := range keys {
			middle[k], _ = r.Lookup(k)
		}
		r.Add(victim)
		moved = 0
		for _, k := range keys {
			after, _ := r.Lookup(k)
			if after != middle[k] {
				moved++
				if after != victim {
					t.Errorf("n=%d: key %q moved to %s (not the added backend) on addition", n, k, after)
				}
			}
			// The ring must return to its exact pre-removal state.
			if after != before[k] {
				t.Errorf("n=%d: key %q owned by %s after remove+add, was %s before", n, k, after, before[k])
			}
		}
		if bound := 2 * len(keys) / n; moved >= bound {
			t.Errorf("n=%d: addition moved %d/%d keys, want < %d (2/N)", n, moved, len(keys), bound)
		}
	}
}

// TestRingSequence pins the failover-order contract Sequence provides to
// the gateway: the owner first, every member exactly once, and a stable
// answer for a fixed member set.
func TestRingSequence(t *testing.T) {
	r := NewRing(0)
	backends := ringBackends(5)
	for _, b := range backends {
		r.Add(b)
	}
	for _, k := range ringKeys(50) {
		owner, _ := r.Lookup(k)
		seq := r.Sequence(k)
		if len(seq) != len(backends) {
			t.Fatalf("Sequence(%q) has %d entries, want %d", k, len(seq), len(backends))
		}
		if seq[0] != owner {
			t.Fatalf("Sequence(%q)[0] = %s, Lookup owner = %s", k, seq[0], owner)
		}
		seen := map[string]bool{}
		for _, a := range seq {
			if seen[a] {
				t.Fatalf("Sequence(%q) repeats %s", k, a)
			}
			seen[a] = true
		}
	}
	if got := r.Sequence("any"); len(got) != 5 {
		t.Fatalf("Sequence on 5-member ring returned %d entries", len(got))
	}
	r2 := NewRing(0)
	if got := r2.Sequence("any"); got != nil {
		t.Fatalf("Sequence on empty ring = %v, want nil", got)
	}
	if _, ok := r2.Lookup("any"); ok {
		t.Fatal("Lookup on empty ring succeeded")
	}
}
