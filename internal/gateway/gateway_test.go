package gateway_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/gateway"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/rpx"
	"repro/rpx/client"
)

// testBackend is one live rpxd with handles the tests need: its manager
// (session counts), its health state (planned drain), and a hard kill.
type testBackend struct {
	addr   string
	admin  string // set only by startBackendWithAdmin
	mgr    *server.Manager
	health *server.Health
	kill   func()
}

// startBackend boots a real rpxd TCPServer on a loopback port. kill
// force-closes its connections (10ms drain budget), standing in for a
// crashed or partitioned backend.
func startBackend(tb testing.TB) *testBackend {
	tb.Helper()
	mgr := server.NewManager(server.Config{})
	srv := server.NewTCPServer(mgr, server.TCPConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go srv.Serve(ln)
	b := &testBackend{addr: ln.Addr().String(), mgr: mgr}
	var once sync.Once
	b.kill = func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			srv.Shutdown(ctx)
		})
	}
	tb.Cleanup(b.kill)
	return b
}

// startBackendWithAdmin adds the real /healthz admin endpoint (the same
// server.Health handler rpxd serves) so the gateway's watcher probes the
// genuine article.
func startBackendWithAdmin(tb testing.TB) *testBackend {
	tb.Helper()
	b := startBackend(tb)
	b.health = server.NewHealth(b.mgr.SessionsOpen)
	ts := httptest.NewServer(b.health)
	tb.Cleanup(ts.Close)
	b.admin = ts.Listener.Addr().String()
	return b
}

// startGateway boots a gateway over the given backends. The watcher's
// interval is an hour so only its startup probe and explicit Probe() calls
// run — state transitions in tests are deterministic.
func startGateway(tb testing.TB, backends []gateway.Backend, mut func(*gateway.Config)) (string, *gateway.Gateway) {
	tb.Helper()
	cfg := gateway.Config{
		Backends: backends,
		Health:   gateway.WatcherConfig{Interval: time.Hour, Timeout: 500 * time.Millisecond},
	}
	if mut != nil {
		mut(&cfg)
	}
	g, err := gateway.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go g.Serve(ln)
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		g.Shutdown(ctx)
	})
	return ln.Addr().String(), g
}

func fillFrame(fr *rpx.Frame, session, index int) {
	for i := range fr.Pix {
		fr.Pix[i] = byte(session*37 + index*11 + i)
	}
}

// expectedFaultErr mirrors the client fault-matrix contract: an error from
// an op on a faulty path must be typed — remote, transport, or poisoned
// session — never silence or a mangled success.
func expectedFaultErr(err error) bool {
	var re *wire.RemoteError
	var ne net.Error
	return errors.Is(err, client.ErrBrokenSession) ||
		errors.As(err, &re) ||
		errors.As(err, &ne) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// faultSeeds pins the injection matrix to FAULTNET_SEED when set (the CI
// smoke stage does), else runs a small fixed spread.
func faultSeeds(t *testing.T) []int64 {
	if v := os.Getenv("FAULTNET_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("FAULTNET_SEED=%q: %v", v, err)
		}
		return []int64{seed}
	}
	return []int64{1, 7, 1234}
}

func TestParseBackends(t *testing.T) {
	got, err := gateway.ParseBackends("10.0.0.1:7621@10.0.0.1:9621, 10.0.0.2:7621 ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []gateway.Backend{
		{Addr: "10.0.0.1:7621", Admin: "10.0.0.1:9621"},
		{Addr: "10.0.0.2:7621"},
	}
	if len(got) != len(want) {
		t.Fatalf("ParseBackends = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseBackends[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", " , ", "a:1,a:1", "@admin:1"} {
		if _, err := gateway.ParseBackends(bad); err == nil {
			t.Errorf("ParseBackends(%q) accepted, want error", bad)
		}
	}
}

// TestGatewayProxySingleBackend is the transparency check: every client op
// through the gateway must behave byte-identically to a direct rpxd
// session — same capture stats, same decoded pixels, same windows, same
// encoded container — because the gateway relays without re-encoding.
func TestGatewayProxySingleBackend(t *testing.T) {
	b := startBackend(t)
	gaddr, g := startGateway(t, []gateway.Backend{{Addr: b.addr}}, nil)

	const w, h = 48, 36
	labels := []rpx.RegionLabel{
		{X: 4, Y: 4, W: 32, H: 24, Stride: 2, Skip: 1},
		{X: 0, Y: 30, W: w, H: 6, Stride: 1, Skip: 1},
	}
	sess, err := client.Dial(gaddr, client.Config{W: w, H: h, Format: rpx.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ref, err := rpx.NewSystem(w, h, rpx.Gray8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	if err := ref.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	fr := rpx.NewFrame(w, h, rpx.Gray8)
	for i := 0; i < 5; i++ {
		fillFrame(fr, 3, i)
		got, err := sess.Capture(fr)
		if err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
		want, err := ref.Capture(fr)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("capture stats %d = %+v, want %+v", i, got, want)
		}
	}
	dGot, err := sess.Decoded()
	if err != nil {
		t.Fatal(err)
	}
	dWant, err := ref.Decoded()
	if err != nil {
		t.Fatal(err)
	}
	if !dGot.Equal(dWant) {
		t.Fatal("decoded frame through gateway differs from direct pipeline")
	}
	wGot, err := sess.DecodeWindow(8, 8, 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	wWant, err := ref.DecodeWindow(8, 8, 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !wGot.Equal(wWant) {
		t.Fatal("window decode through gateway differs from direct pipeline")
	}
	if _, err := sess.LastEncoded(); err != nil {
		t.Fatalf("get encoded through gateway: %v", err)
	}
	if _, err := sess.ServerStats(); err != nil {
		t.Fatalf("server stats through gateway: %v", err)
	}

	snap := g.Snapshot()
	if snap.SessionsOpen != 1 || snap.SessionsTotal != 1 {
		t.Fatalf("snapshot = %+v, want 1 open / 1 total", snap)
	}
	if bs := snap.Backends[b.addr]; bs.LocalSessions != 1 {
		t.Fatalf("backend snapshot = %+v, want 1 local session", bs)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("close through gateway: %v", err)
	}
	if n := g.SessionsOpen(); n != 0 {
		t.Fatalf("SessionsOpen after close = %d, want 0", n)
	}
}

// TestGatewayRelaysRejection pins the deterministic-rejection contract: a
// backend's handshake rejection (here CodeGeometry from a payload cap the
// session cannot fit) is relayed to the client verbatim, with no failover —
// every backend would answer the same.
func TestGatewayRelaysRejection(t *testing.T) {
	mgr := server.NewManager(server.Config{})
	srv := server.NewTCPServer(mgr, server.TCPConfig{MaxPayload: 4096})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	gaddr, _ := startGateway(t, []gateway.Backend{{Addr: ln.Addr().String()}}, nil)
	_, err = client.Dial(gaddr, client.Config{W: 128, H: 128, Format: rpx.Gray8})
	if err == nil {
		t.Fatal("oversized geometry accepted through gateway")
	}
	if !client.IsGeometryRejected(err) {
		t.Fatalf("dial error = %v, want the backend's geometry rejection relayed", err)
	}
}

// TestGatewaySessionLimitFailover: a full backend (MaxSessions 1) answers
// CodeSessionLimit, which is not deterministic across the fleet — the
// gateway fails over to the next ring candidate instead of relaying it.
func TestGatewaySessionLimitFailover(t *testing.T) {
	full := server.NewManager(server.Config{MaxSessions: 1})
	fullSrv := server.NewTCPServer(full, server.TCPConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fullSrv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		fullSrv.Shutdown(ctx)
	})
	roomy := startBackend(t)

	gaddr, g := startGateway(t, []gateway.Backend{{Addr: ln.Addr().String()}, {Addr: roomy.addr}}, nil)
	var sessions []*client.Session
	for i := 0; i < 4; i++ {
		sess, err := client.Dial(gaddr, client.Config{W: 16, H: 12, Format: rpx.Gray8})
		if err != nil {
			t.Fatalf("dial %d through gateway with one full backend: %v", i, err)
		}
		defer sess.Close()
		sessions = append(sessions, sess)
	}
	snap := g.Snapshot()
	if snap.SessionsOpen != len(sessions) {
		t.Fatalf("snapshot sessions open = %d, want %d", snap.SessionsOpen, len(sessions))
	}
	if bs := snap.Backends[ln.Addr().String()]; bs.LocalSessions > 1 {
		t.Fatalf("full backend holds %d sessions, cap is 1", bs.LocalSessions)
	}
}

// TestGatewayDrainMigration is the planned-drain path: a backend flips its
// real /healthz to draining, the watcher cordons it, and its live session
// migrates to the survivor with HELLO and the last SetRegionLabels replayed
// — proven by post-migration capture/decode being byte-identical to a fresh
// reference pipeline with those labels installed.
func TestGatewayDrainMigration(t *testing.T) {
	b1 := startBackendWithAdmin(t)
	b2 := startBackendWithAdmin(t)
	backends := []gateway.Backend{
		{Addr: b1.addr, Admin: b1.admin},
		{Addr: b2.addr, Admin: b2.admin},
	}
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2}
	gaddr, g := startGateway(t, backends, nil)
	g.Watcher().Probe() // both healthy

	const w, h = 40, 30
	labels := []rpx.RegionLabel{{X: 2, Y: 2, W: 30, H: 20, Stride: 2, Skip: 1}}
	sess, err := client.Dial(gaddr, client.Config{W: w, H: h, Format: rpx.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	fr := rpx.NewFrame(w, h, rpx.Gray8)
	fillFrame(fr, 9, 0)
	if _, err := sess.Capture(fr); err != nil {
		t.Fatal(err)
	}

	// Find the pinned backend and start its planned drain.
	var pinned string
	for addr, bs := range g.Snapshot().Backends {
		if bs.LocalSessions == 1 {
			pinned = addr
		}
	}
	if pinned == "" {
		t.Fatal("no backend reports the session")
	}
	byAddr[pinned].health.SetDraining()
	g.Watcher().Probe()

	// Evacuation runs asynchronously; wait for the session to land on the
	// survivor.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := g.Snapshot()
		if snap.Backends[pinned].LocalSessions == 0 && snap.Rerouted == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never migrated off draining backend: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := g.Snapshot().Backends[pinned]; st.State != "draining" {
		t.Fatalf("drained backend state = %q, want draining", st.State)
	}

	// The replacement pipeline is fresh but must carry the replayed labels:
	// capture/decode byte-identical to a fresh reference with those labels.
	ref, err := rpx.NewSystem(w, h, rpx.Gray8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		fillFrame(fr, 9, i)
		got, err := sess.Capture(fr)
		if err != nil {
			t.Fatalf("post-drain capture %d: %v", i, err)
		}
		want, err := ref.Capture(fr)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("post-drain capture stats %d = %+v, want %+v (labels not replayed?)", i, got, want)
		}
		dGot, err := sess.Decoded()
		if err != nil {
			t.Fatalf("post-drain decode %d: %v", i, err)
		}
		dWant, err := ref.Decoded()
		if err != nil {
			t.Fatal(err)
		}
		if !dGot.Equal(dWant) {
			t.Fatalf("post-drain decode %d differs — labels not replayed onto replacement", i)
		}
	}
	if sess.Reconnects() != 0 {
		t.Fatalf("client reconnected %d times; migration must be invisible to the client", sess.Reconnects())
	}
}

// TestGatewayKillBackendMidMatrix is the acceptance e2e: a session matrix
// runs through the gateway over three backends while the most-loaded
// backend is hard-killed mid-matrix. The candidate-set oracle from the
// client fault tests applies end to end: every op returns either bytes
// matching a legitimately-captured frame or a typed error — never a
// mismatched frame — and the killed backend's sessions recover onto
// survivors via HELLO replay.
func TestGatewayKillBackendMidMatrix(t *testing.T) {
	backends := []*testBackend{startBackend(t), startBackend(t), startBackend(t)}
	var cfgBackends []gateway.Backend
	byAddr := map[string]*testBackend{}
	for _, b := range backends {
		cfgBackends = append(cfgBackends, gateway.Backend{Addr: b.addr})
		byAddr[b.addr] = b
	}
	gaddr, g := startGateway(t, cfgBackends, func(cfg *gateway.Config) {
		cfg.BackendTimeout = 2 * time.Second
	})

	const w, h, frames, sessions = 24, 16, 30, 8
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			// With 8 sessions on 3 backends the most-loaded one holds >= 3;
			// killing it guarantees migrations happen.
			var victim string
			max := -1
			for addr, bs := range g.Snapshot().Backends {
				if bs.LocalSessions > max {
					victim, max = addr, bs.LocalSessions
				}
			}
			t.Logf("killing backend %s (%d sessions)", victim, max)
			byAddr[victim].kill()
		})
	}

	var wg sync.WaitGroup
	for si := 0; si < sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				t.Errorf("session %d: %s", si, fmt.Sprintf(format, args...))
			}
			sess, err := client.Dial(gaddr, client.Config{
				W: w, H: h, Format: rpx.Gray8, Block: true,
				RequestTimeout: 5 * time.Second,
				Reconnect:      true, MaxRetries: 6, Backoff: 2 * time.Millisecond,
			})
			if err != nil {
				fail("dial: %v", err)
				return
			}
			defer sess.Close()
			if err := sess.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(w, h)}); err != nil {
				fail("set labels: %v", err)
				return
			}
			mkFrame := func(i int) *rpx.Frame {
				fr := rpx.NewFrame(w, h, rpx.Gray8)
				fillFrame(fr, si*1000, i)
				return fr
			}
			var candidates []int
			for i := 0; i < frames; i++ {
				if i == frames/2 {
					kill()
				}
				if _, err := sess.Capture(mkFrame(i)); err != nil {
					if !expectedFaultErr(err) {
						fail("capture %d: unexpected error class: %v", i, err)
						return
					}
					candidates = append(candidates, i)
				} else {
					candidates = []int{i}
				}
				dec, err := sess.Decoded()
				if err != nil {
					if !expectedFaultErr(err) {
						fail("decode %d: unexpected error class: %v", i, err)
						return
					}
					continue
				}
				matched := false
				for _, c := range candidates {
					if dec.Equal(mkFrame(c)) {
						matched = true
						break
					}
				}
				if !matched {
					fail("decode %d matches none of the possibly-captured frames %v — a mismatched reply through the gateway", i, candidates)
					return
				}
			}
		}(si)
	}
	wg.Wait()

	snap := g.Snapshot()
	if snap.Rerouted == 0 {
		t.Errorf("no sessions rerouted after killing the most-loaded backend: %+v", snap)
	}
}

// TestGatewayFaultMatrix layers faultnet between the gateway and one
// backend: random latency, partial writes, resets, and truncations on that
// path force mid-request migrations under -race, and the candidate-set
// oracle must still hold for every session.
func TestGatewayFaultMatrix(t *testing.T) {
	for _, seed := range faultSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			clean := startBackend(t)
			faulty := startBackend(t)
			proxy, err := faultnet.NewProxy(faulty.addr, faultnet.ProxyConfig{
				ClientFaults: faultnet.Faults{
					Seed:             seed,
					LatencyProb:      0.05,
					LatencyMin:       time.Millisecond,
					LatencyMax:       20 * time.Millisecond,
					PartialWriteProb: 0.10,
					ResetProb:        0.03,
					TruncateProb:     0.03,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer proxy.Close()

			gaddr, _ := startGateway(t, []gateway.Backend{
				{Addr: clean.addr}, {Addr: proxy.Addr()},
			}, func(cfg *gateway.Config) {
				cfg.BackendTimeout = time.Second
			})

			const w, h, frames, sessions = 24, 16, 25, 4
			var wg sync.WaitGroup
			for si := 0; si < sessions; si++ {
				wg.Add(1)
				go func(si int) {
					defer wg.Done()
					fail := func(format string, args ...any) {
						t.Errorf("seed %d session %d: %s", seed, si, fmt.Sprintf(format, args...))
					}
					sess, err := client.Dial(gaddr, client.Config{
						W: w, H: h, Format: rpx.Gray8, Block: true,
						RequestTimeout: 5 * time.Second,
						Reconnect:      true, MaxRetries: 6, Backoff: 2 * time.Millisecond,
					})
					if err != nil {
						if !expectedFaultErr(err) {
							fail("dial: unexpected error class: %v", err)
						}
						return
					}
					defer sess.Close()
					installed := false
					for attempt := 0; attempt < 50; attempt++ {
						err := sess.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(w, h)})
						if err == nil {
							installed = true
							break
						}
						if !expectedFaultErr(err) {
							fail("set labels: unexpected error class: %v", err)
							return
						}
					}
					if !installed {
						fail("labels never installed in 50 attempts")
						return
					}
					mkFrame := func(i int) *rpx.Frame {
						fr := rpx.NewFrame(w, h, rpx.Gray8)
						fillFrame(fr, si*1000, i)
						return fr
					}
					var candidates []int
					for i := 0; i < frames; i++ {
						if _, err := sess.Capture(mkFrame(i)); err != nil {
							if !expectedFaultErr(err) {
								fail("capture %d: unexpected error class: %v", i, err)
								return
							}
							candidates = append(candidates, i)
						} else {
							candidates = []int{i}
						}
						dec, err := sess.Decoded()
						if err != nil {
							if !expectedFaultErr(err) {
								fail("decode %d: unexpected error class: %v", i, err)
								return
							}
							continue
						}
						matched := false
						for _, c := range candidates {
							if dec.Equal(mkFrame(c)) {
								matched = true
								break
							}
						}
						if !matched {
							fail("decode %d matches none of the possibly-captured frames %v", i, candidates)
							return
						}
					}
				}(si)
			}
			wg.Wait()
		})
	}
}

// TestGatewayShutdownDrains: Shutdown must refuse new connections, wake
// idle sessions, and return within the drain budget.
func TestGatewayShutdownDrains(t *testing.T) {
	b := startBackend(t)
	cfg := gateway.Config{
		Backends: []gateway.Backend{{Addr: b.addr}},
		Health:   gateway.WatcherConfig{Interval: time.Hour},
	}
	g, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- g.Serve(ln) }()

	sess, err := client.Dial(ln.Addr().String(), client.Config{W: 16, H: 12, Format: rpx.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown", err)
	}
	if _, err := client.Dial(ln.Addr().String(), client.Config{W: 16, H: 12, Format: rpx.Gray8}); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}
