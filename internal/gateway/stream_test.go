package gateway_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/wire"
	"repro/rpx"
	"repro/rpx/client"
)

// dialVia opens a client session through the gateway.
func dialVia(t *testing.T, addr string, w, h int) *client.Session {
	t.Helper()
	sess, err := client.Dial(addr, client.Config{W: w, H: h, Format: rpx.Gray8, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return sess
}

// TestGatewayStreamRelay: a push subscription through the gateway delivers
// the producer's frames in lockstep — whole messages, correct order — and
// a clean unsubscribe returns the proxied connection to request/reply.
func TestGatewayStreamRelay(t *testing.T) {
	b := startBackend(t)
	addr, _ := startGateway(t, []gateway.Backend{{Addr: b.addr}}, nil)

	producer := dialVia(t, addr, 64, 48)
	if err := producer.SetRegionLabels([]rpx.RegionLabel{{X: 8, Y: 8, W: 32, H: 24, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
	subscriber := dialVia(t, addr, 8, 8)
	st, err := subscriber.Subscribe(client.SubscribeOptions{Target: producer.ID(), Credit: 32, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}

	const frames = 10
	fr := rpx.NewFrame(64, 48, rpx.Gray8)
	for i := 0; i < frames; i++ {
		fillFrame(fr, 1, i)
		if _, err := producer.Capture(fr); err != nil {
			t.Fatal(err)
		}
	}
	var lastRaw []byte
	for i := 0; i < frames; i++ {
		f, err := st.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if f.Seq != uint64(i) {
			t.Fatalf("frame %d seq = %d — gap or reorder through the relay", i, f.Seq)
		}
		lastRaw = f.Raw
	}
	// The relayed bytes match the request/reply view of the same frame.
	want, err := producer.LastEncoded()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := want.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lastRaw, buf.Bytes()) {
		t.Fatal("relayed frame bytes differ from LastEncoded")
	}

	if err := st.Close(); err != nil {
		t.Fatalf("unsubscribe through gateway: %v", err)
	}
	if _, err := st.Recv(); err != io.EOF {
		t.Fatalf("Recv after close = %v, want io.EOF", err)
	}
	if _, err := subscriber.ServerStats(); err != nil {
		t.Fatalf("request/reply after unsubscribe: %v", err)
	}
}

// padSessionIDs burns n session ids on a backend by dialing it directly.
// Session ids are per-backend counters, so without this a producer on one
// backend and a subscriber on the other can both be "session 1" and the
// gateway cannot tell them apart (the documented id-collision limitation).
func padSessionIDs(t *testing.T, addr string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		s, err := client.Dial(addr, client.Config{W: 8, H: 8, Format: rpx.Gray8})
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
}

// backendOf returns which test backend holds n open sessions.
func sessionsAcross(backends []*testBackend) []int {
	out := make([]int, len(backends))
	for i, b := range backends {
		out[i] = b.mgr.SessionsOpen()
	}
	return out
}

// TestGatewayStreamCrossBackendTarget: when the SUBSCRIBE target lives on a
// different backend than the subscriber, the gateway migrates the
// subscriber onto the producer's backend (replaying its handshake) and the
// stream flows.
func TestGatewayStreamCrossBackendTarget(t *testing.T) {
	backends := []*testBackend{startBackend(t), startBackend(t)}
	addr, _ := startGateway(t, []gateway.Backend{{Addr: backends[0].addr}, {Addr: backends[1].addr}}, nil)

	producer := dialVia(t, addr, 32, 32)
	if err := producer.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(32, 32)}); err != nil {
		t.Fatal(err)
	}
	prodBackend := -1
	for i, n := range sessionsAcross(backends) {
		if n == 1 {
			prodBackend = i
		}
	}
	if prodBackend < 0 {
		t.Fatal("cannot locate the producer's backend")
	}
	padSessionIDs(t, backends[1-prodBackend].addr, 4)

	// Dial subscribers until one lands on the other backend (consistent
	// hashing keys on the connection, so a handful of dials suffices).
	var subscriber *client.Session
	for attempt := 0; attempt < 32 && subscriber == nil; attempt++ {
		s := dialVia(t, addr, 8, 8)
		if backends[1-prodBackend].mgr.SessionsOpen() > 0 {
			subscriber = s
		} else {
			s.Close()
		}
	}
	if subscriber == nil {
		t.Fatal("no subscriber landed on the other backend")
	}

	st, err := subscriber.Subscribe(client.SubscribeOptions{Target: producer.ID(), Credit: 16})
	if err != nil {
		t.Fatalf("cross-backend subscribe: %v", err)
	}
	// The subscriber's session must now be co-located with the producer.
	if n := backends[prodBackend].mgr.SessionsOpen(); n < 2 {
		t.Fatalf("producer backend has %d sessions, want the migrated subscriber too", n)
	}

	fr := rpx.NewFrame(32, 32, rpx.Gray8)
	for i := 0; i < 3; i++ {
		fillFrame(fr, 2, i)
		if _, err := producer.Capture(fr); err != nil {
			t.Fatal(err)
		}
		f, err := st.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if f.Seq != uint64(i) {
			t.Fatalf("frame %d seq = %d", i, f.Seq)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayStreamBackendKill: killing the backend mid-subscription ends
// the stream with a typed UNAVAILABLE error — never a torn message — and
// the same client connection can re-subscribe to a producer on a survivor.
func TestGatewayStreamBackendKill(t *testing.T) {
	backends := []*testBackend{startBackend(t), startBackend(t)}
	addr, _ := startGateway(t, []gateway.Backend{{Addr: backends[0].addr}, {Addr: backends[1].addr}}, nil)

	producer := dialVia(t, addr, 32, 32)
	if err := producer.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(32, 32)}); err != nil {
		t.Fatal(err)
	}
	prodBackend := -1
	for i, n := range sessionsAcross(backends) {
		if n == 1 {
			prodBackend = i
		}
	}
	if prodBackend < 0 {
		t.Fatal("cannot locate the producer's backend")
	}
	padSessionIDs(t, backends[1-prodBackend].addr, 4)

	subscriber := dialVia(t, addr, 8, 8)
	st, err := subscriber.Subscribe(client.SubscribeOptions{Target: producer.ID(), Credit: 32})
	if err != nil {
		t.Fatal(err)
	}
	fr := rpx.NewFrame(32, 32, rpx.Gray8)
	for i := 0; i < 4; i++ {
		fillFrame(fr, 3, i)
		if _, err := producer.Capture(fr); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		f, err := st.Recv()
		if err != nil {
			t.Fatalf("Recv %d before kill: %v", i, err)
		}
		if f.Seq != uint64(i) {
			t.Fatalf("frame %d seq = %d before kill", i, f.Seq)
		}
	}

	backends[prodBackend].kill()

	// The stream must end with the typed error, not torn bytes.
	_, err = st.Recv()
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeUnavailable {
		t.Fatalf("Recv after kill = %v, want UNAVAILABLE", err)
	}

	// A fresh producer lands on the survivor; the same subscriber
	// connection re-subscribes and receives its pushes.
	producer2 := dialVia(t, addr, 32, 32)
	if err := producer2.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(32, 32)}); err != nil {
		t.Fatal(err)
	}
	st2, err := subscriber.Subscribe(client.SubscribeOptions{Target: producer2.ID(), Credit: 32})
	if err != nil {
		t.Fatalf("re-subscribe after kill: %v", err)
	}
	for i := 0; i < 3; i++ {
		fillFrame(fr, 4, i)
		if _, err := producer2.Capture(fr); err != nil {
			t.Fatal(err)
		}
		f, err := st2.Recv()
		if err != nil {
			t.Fatalf("Recv %d from survivor: %v", i, err)
		}
		if f.Seq != uint64(i) {
			t.Fatalf("survivor frame %d seq = %d", i, f.Seq)
		}
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayPackedCodecRelay: the packed-metadata codec negotiated at
// HELLO survives the gateway, which relays handshake payloads verbatim and
// never decodes frame containers. A packed client's GET_ENCODED replies and
// FRAME_PUSH records arrive as v2 containers whose content matches a raw
// client's view of the same session byte-for-byte after v1 re-serialization.
func TestGatewayPackedCodecRelay(t *testing.T) {
	b := startBackend(t)
	addr, _ := startGateway(t, []gateway.Backend{{Addr: b.addr}}, nil)

	producer, err := client.Dial(addr, client.Config{
		W: 64, H: 48, Format: rpx.Gray8, Block: true, PackedMask: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if !producer.PackedMask() {
		t.Fatal("packed codec not granted through the gateway")
	}
	// PackedMask-only clients pin v4 (the codec revision) so their
	// handshake bytes never drift as ProtoVersion advances.
	if v := producer.ProtoVersion(); v != 4 {
		t.Fatalf("negotiated version %d through gateway, want 4", v)
	}
	if err := producer.SetRegionLabels([]rpx.RegionLabel{{X: 8, Y: 8, W: 32, H: 24, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}

	subscriber, err := client.Dial(addr, client.Config{W: 8, H: 8, Format: rpx.Gray8, PackedMask: true})
	if err != nil {
		t.Fatal(err)
	}
	defer subscriber.Close()
	st, err := subscriber.Subscribe(client.SubscribeOptions{Target: producer.ID(), Credit: 16, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}

	const frames = 5
	fr := rpx.NewFrame(64, 48, rpx.Gray8)
	for i := 0; i < frames; i++ {
		fillFrame(fr, 3, i)
		if _, err := producer.Capture(fr); err != nil {
			t.Fatal(err)
		}
	}
	var last []byte
	for i := 0; i < frames; i++ {
		f, err := st.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if f.Seq != uint64(i) {
			t.Fatalf("frame %d seq = %d — gap or reorder through the relay", i, f.Seq)
		}
		last = f.Raw
	}

	// The producer's own GET_ENCODED view also arrives packed and decodes
	// transparently; both views must re-serialize to the same v1 bytes.
	want, err := producer.LastEncoded()
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.ReadEncodedFrame(bytes.NewReader(last))
	if err != nil {
		t.Fatalf("relayed packed record does not parse: %v", err)
	}
	if !bytes.Equal(got.AppendTo(nil), want.AppendTo(nil)) {
		t.Fatal("relayed packed record diverges from GET_ENCODED view")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("unsubscribe through gateway: %v", err)
	}
}
