package gateway

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// scriptedHealth is a fake backend admin endpoint whose /healthz answer the
// test flips at will: a JSON health body, a plain-text legacy body, or a
// hard failure (connection refused is simulated by 500).
type scriptedHealth struct {
	mu       sync.Mutex
	code     int
	body     string
	sessions int
}

func (s *scriptedHealth) set(code int, body string) {
	s.mu.Lock()
	s.code, s.body = code, body
	s.mu.Unlock()
}

func (s *scriptedHealth) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch r.URL.Path {
	case "/healthz":
		w.WriteHeader(s.code)
		fmt.Fprint(w, s.body)
	case "/metrics":
		fmt.Fprintf(w, "# HELP rpxd_sessions_open Currently open sessions.\n# TYPE rpxd_sessions_open gauge\nrpxd_sessions_open %d\n", s.sessions)
	default:
		http.NotFound(w, r)
	}
}

// TestWatcherTransitions walks one backend through the full state machine —
// unknown → healthy → draining → dead → healthy — with deterministic Probe
// calls, checking OnChange fires exactly on the transitions and the JSON
// session count rides along.
func TestWatcherTransitions(t *testing.T) {
	sh := &scriptedHealth{code: 200, body: `{"state":"ok","sessions":3}`}
	ts := httptest.NewServer(sh)
	defer ts.Close()
	admin := ts.Listener.Addr().String()

	var mu sync.Mutex
	var flips []string
	b := Backend{Addr: "198.51.100.1:7621", Admin: admin}
	w := NewWatcher([]Backend{b}, WatcherConfig{
		Strikes: 2,
		OnChange: func(addr string, from, to State) {
			mu.Lock()
			flips = append(flips, fmt.Sprintf("%s:%s->%s", addr, from, to))
			mu.Unlock()
		},
	})

	if st := w.Status(b.Addr); st.State != StateUnknown || st.Sessions != -1 {
		t.Fatalf("pre-probe status = %+v, want unknown/-1", st)
	}

	w.Probe()
	if st := w.Status(b.Addr); st.State != StateHealthy || st.Sessions != 3 {
		t.Fatalf("after healthy probe: %+v, want healthy/3", st)
	}

	sh.set(503, `{"state":"draining","sessions":2}`)
	w.Probe()
	if st := w.Status(b.Addr); st.State != StateDraining || st.Sessions != 2 {
		t.Fatalf("after draining probe: %+v, want draining/2", st)
	}

	// Hard failures: the first strike keeps the last authoritative state,
	// the second kills the backend.
	sh.set(500, "boom")
	w.Probe()
	if st := w.Status(b.Addr); st.State != StateDraining {
		t.Fatalf("after one strike: %v, want draining still", st.State)
	}
	w.Probe()
	if st := w.Status(b.Addr); st.State != StateDead || st.Err == nil {
		t.Fatalf("after two strikes: %+v, want dead with error", st)
	}

	sh.set(200, `{"state":"ok","sessions":0}`)
	w.Probe()
	if st := w.Status(b.Addr); st.State != StateHealthy || st.Sessions != 0 {
		t.Fatalf("after recovery: %+v, want healthy/0", st)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []string{
		b.Addr + ":unknown->healthy",
		b.Addr + ":healthy->draining",
		b.Addr + ":draining->dead",
		b.Addr + ":dead->healthy",
	}
	if len(flips) != len(want) {
		t.Fatalf("flips = %v, want %v", flips, want)
	}
	for i := range want {
		if flips[i] != want[i] {
			t.Fatalf("flip %d = %q, want %q", i, flips[i], want[i])
		}
	}
}

// TestWatcherPlainTextFallback covers pre-JSON backends: a bare "ok" body is
// healthy with the session weight scraped from /metrics, and a bare
// "draining" body cordons.
func TestWatcherPlainTextFallback(t *testing.T) {
	sh := &scriptedHealth{code: 200, body: "ok\n", sessions: 7}
	ts := httptest.NewServer(sh)
	defer ts.Close()
	b := Backend{Addr: "198.51.100.2:7621", Admin: ts.Listener.Addr().String()}
	w := NewWatcher([]Backend{b}, WatcherConfig{})

	w.Probe()
	if st := w.Status(b.Addr); st.State != StateHealthy || st.Sessions != 7 {
		t.Fatalf("plain-text healthy: %+v, want healthy/7 (scraped)", st)
	}
	sh.set(503, "draining\n")
	w.Probe()
	if st := w.Status(b.Addr); st.State != StateDraining {
		t.Fatalf("plain-text draining: %v, want draining", st.State)
	}
}

// TestWatcherDialFallback covers admin-less backends: a TCP dial of the
// wire address is the whole probe.
func TestWatcherDialFallback(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler()) // any listener will do
	addr := srv.Listener.Addr().String()
	b := Backend{Addr: addr}
	w := NewWatcher([]Backend{b}, WatcherConfig{Strikes: 1, Timeout: 200 * time.Millisecond})
	w.Probe()
	if st := w.Status(b.Addr); st.State != StateHealthy {
		t.Fatalf("dialable backend: %v, want healthy", st.State)
	}
	if st := w.Status(b.Addr); st.Sessions != -1 {
		t.Fatalf("dial probe reported sessions %d, want -1 (unknown)", st.Sessions)
	}
	srv.Close()
	w.Probe()
	if st := w.Status(b.Addr); st.State != StateDead {
		t.Fatalf("closed backend: %v, want dead after 1 strike", st.State)
	}
}

// TestWatcherStopWithoutStart pins the lifecycle edge cases: Stop before
// Start returns immediately; Start then Stop terminates the loop.
func TestWatcherStopWithoutStart(t *testing.T) {
	w := NewWatcher([]Backend{{Addr: "203.0.113.9:1"}}, WatcherConfig{Timeout: 50 * time.Millisecond})
	done := make(chan struct{})
	go func() { w.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop without Start hung")
	}

	w2 := NewWatcher([]Backend{}, WatcherConfig{Interval: 10 * time.Millisecond})
	w2.Start()
	w2.Stop()
}

// TestParsePromGauge pins the metrics-scrape fallback parser.
func TestParsePromGauge(t *testing.T) {
	body := "# HELP rpxd_sessions_open x\nrpxd_sessions_opened_total 99\nrpxd_sessions_open 4\nrpxd_sessions_open_extra 7\n"
	if got := parsePromGauge(body, "rpxd_sessions_open"); got != 4 {
		t.Fatalf("parsePromGauge = %d, want 4", got)
	}
	if got := parsePromGauge("nothing here", "rpxd_sessions_open"); got != -1 {
		t.Fatalf("parsePromGauge on absent series = %d, want -1", got)
	}
}

// TestWatcherUsesSharedHealthHandler closes the loop with the real
// server.Health handler rpxd serves: the watcher must classify its actual
// 200 and 503 bodies, not a hand-written imitation.
func TestWatcherUsesSharedHealthHandler(t *testing.T) {
	n := 5
	h := server.NewHealth(func() int { return n })
	ts := httptest.NewServer(h)
	defer ts.Close()
	b := Backend{Addr: "198.51.100.3:7621", Admin: ts.Listener.Addr().String()}
	w := NewWatcher([]Backend{b}, WatcherConfig{})

	w.Probe()
	if st := w.Status(b.Addr); st.State != StateHealthy || st.Sessions != 5 {
		t.Fatalf("against real handler: %+v, want healthy/5", st)
	}
	h.SetDraining()
	n = 2
	w.Probe()
	if st := w.Status(b.Addr); st.State != StateDraining || st.Sessions != 2 {
		t.Fatalf("against real draining handler: %+v, want draining/2", st)
	}
}
