package gateway

import (
	"sort"
	"strconv"
	"sync"
)

// DefaultVNodes is the virtual-node count per backend when Config.VNodes is
// zero. 128 points per member keeps the max/min key-load ratio under ~2 for
// small fleets while Add/Remove stay microsecond-cheap.
const DefaultVNodes = 128

// Ring is a consistent-hash ring over backend addresses. Each member
// contributes VNodes points (hashes of "addr#i") on a 64-bit circle; a key
// is owned by the first point clockwise of its own hash. Adding or removing
// one member therefore moves only the keys adjacent to that member's
// points — about 1/N of them — which is exactly the property a session
// gateway wants: a backend dying reshuffles almost nothing.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []ringPoint // sorted by hash, ties broken by addr for determinism
	members map[string]struct{}
}

type ringPoint struct {
	hash uint64
	addr string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (0 means DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// fnv64 hashes a string for ring placement: FNV-1a followed by a
// splitmix64 finalizer. FNV alone disperses the near-identical vnode
// strings ("addr#0", "addr#1", …) poorly — measured max/min key-load
// ratios past 3x — and the finalizer's avalanche fixes that. Inlined so
// placement is a stable function of the address bytes alone (no seed, no
// process state).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add inserts a member (idempotent).
func (r *Ring) Add(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[addr]; ok {
		return
	}
	r.members[addr] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: fnv64(addr + "#" + strconv.Itoa(i)), addr: addr})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].addr < r.points[j].addr
	})
}

// Remove deletes a member (idempotent).
func (r *Ring) Remove(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[addr]; !ok {
		return
	}
	delete(r.members, addr)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.addr != addr {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the member set in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for a := range r.members {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Lookup returns the member owning key, or "" when the ring is empty.
func (r *Ring) Lookup(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.searchLocked(key)].addr, true
}

// Sequence returns every member in ring-walk order starting at key's owner:
// the owner first, then each distinct member encountered walking clockwise.
// It is the failover order a session tries backends in — consistent, so two
// gateways with the same member set agree on it.
func (r *Ring) Sequence(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make(map[string]struct{}, len(r.members))
	start := r.searchLocked(key)
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.addr]; dup {
			continue
		}
		seen[p.addr] = struct{}{}
		out = append(out, p.addr)
	}
	return out
}

// searchLocked returns the index of the first point at or clockwise of
// key's hash, wrapping at the top of the circle.
func (r *Ring) searchLocked(key string) int {
	kh := fnv64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if i == len(r.points) {
		return 0
	}
	return i
}
