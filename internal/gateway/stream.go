package gateway

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/wire"
)

// Streaming relay (protocol v3).
//
// A SUBSCRIBE switches the proxied connection into push mode: the gateway
// forwards the subscribe, relays the SUBSCRIBE_ACK, and then runs two pumps
// — backend→client for FRAME_PUSH batches and the stream's terminal
// message, client→backend for CREDIT grants and UNSUBSCRIBE. Both pumps
// move whole messages (one ReadMessage, one WriteMessage), so a relayed
// frame is never torn even when the gateway dies mid-stream: the client
// sees complete messages or a closed connection, nothing in between.
//
// Cross-backend fan-out: SUBSCRIBE targets name server-assigned session
// ids, which only mean something on the backend that assigned them. The
// gateway remembers which backend each proxied session's remote id lives on
// and migrates the subscriber onto the producer's backend (replaying HELLO
// and labels, the normal migration path) before forwarding the subscribe.
// Ids are per-backend counters, so two backends can assign the same id;
// the newest pin wins the lookup — a known limitation of id-based
// targeting across a fleet.
//
// Streams do not migrate: if the backend dies mid-stream the gateway ends
// the stream with a typed UNAVAILABLE error — never a torn or reordered
// frame — and the session migrates on its next request; the client may
// simply re-subscribe.

// setRemotePin records which backend assigned a remote session id.
func (g *Gateway) setRemotePin(id uint64, addr string) {
	if id == 0 {
		return
	}
	g.mu.Lock()
	if g.remotePins == nil {
		g.remotePins = make(map[uint64]string)
	}
	g.remotePins[id] = addr
	g.mu.Unlock()
}

// dropRemotePin forgets a remote session id pin, unless a newer session on
// another backend has already overwritten it.
func (g *Gateway) dropRemotePin(id uint64, addr string) {
	if id == 0 {
		return
	}
	g.mu.Lock()
	if g.remotePins[id] == addr {
		delete(g.remotePins, id)
	}
	g.mu.Unlock()
}

// remotePinBackend resolves a remote session id to the backend that
// assigned it.
func (g *Gateway) remotePinBackend(id uint64) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	addr, ok := g.remotePins[id]
	return addr, ok
}

// relayStream serves one SUBSCRIBE and, on success, the whole push stream.
// It returns the connection's next state: ok=false ends the connection;
// otherwise pendingTyp/pendingPayload, when non-zero, carry a request that
// arrived after the stream ended server-side and must be served normally.
func (s *proxySession) relayStream(conn net.Conn, cbr *bufio.Reader, writeClient func(typ byte, payload []byte) error, payload []byte) (pendingTyp byte, pendingPayload []byte, ok bool) {
	g := s.gw
	writeErr := func(code uint16, msg string) bool {
		return writeClient(wire.MsgError, wire.MarshalError(code, msg)) == nil
	}

	req, err := wire.UnmarshalSubscribe(payload)
	if err != nil {
		return 0, nil, writeErr(wire.CodeProto, err.Error())
	}

	s.mu.Lock()
	// Place the session if evacuation left it backend-less.
	if s.bconn == nil {
		if merr := s.migrateLocked(""); merr != nil {
			s.mu.Unlock()
			return 0, nil, writeErr(wire.CodeUnavailable, fmt.Sprintf("session unplaced: %v", merr))
		}
	}
	// Cross-backend target: follow the producer. The subscriber's own
	// remote session is rebuilt on the producer's backend (HELLO and labels
	// replayed), exactly like a health-driven migration.
	if req.Target != 0 && req.Target != s.remoteID {
		if addr, found := g.remotePinBackend(req.Target); found && addr != s.backendAddr {
			s.closeBackendLocked()
			if _, aerr := s.adoptBackendLocked(addr); aerr != nil {
				s.mu.Unlock()
				return 0, nil, writeErr(wire.CodeUnavailable, fmt.Sprintf(
					"target session %d is on %s, migration failed: %v", req.Target, addr, aerr))
			}
			g.rerouted.Inc()
		}
		// Unknown targets forward as-is: the backend answers BAD_REQUEST,
		// relayed verbatim.
	}
	// Forward the SUBSCRIBE and read its one reply in lockstep. A backend
	// failure here is not retried elsewhere — the target id would mean a
	// different session on a different backend — but the session migrates
	// for subsequent requests.
	rtyp, rpayload, ferr := s.forwardLocked(wire.MsgSubscribe, payload)
	if ferr != nil {
		failed := s.backendAddr
		s.migrateLocked(failed)
		s.mu.Unlock()
		return 0, nil, writeErr(wire.CodeUnavailable, fmt.Sprintf("backend failed during subscribe: %v", ferr))
	}
	bconn, bbr := s.bconn, s.bbr
	s.mu.Unlock()

	if writeClient(rtyp, rpayload) != nil {
		return 0, nil, false
	}
	if rtyp != wire.MsgSubscribeAck {
		// Deterministic rejection (bad target, v2 session): relayed, the
		// connection stays in request/reply mode.
		return 0, nil, true
	}

	// Downstream pump: backend→client until the stream's terminal message
	// (final ACK or ERROR) or a transport failure on either side. It owns
	// the client's write side until pumpDone closes.
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		for {
			bconn.SetReadDeadline(time.Now().Add(g.cfg.ReadTimeout))
			typ, payload, err := wire.ReadMessage(bbr, g.cfg.MaxPayload)
			if err != nil {
				// Backend died mid-stream (possibly mid-batch): the client
				// gets the typed error, never a torn FRAME_PUSH — this
				// pump only ever forwards whole messages.
				s.mu.Lock()
				s.closeBackendLocked()
				s.mu.Unlock()
				writeClient(wire.MsgError, wire.MarshalError(wire.CodeUnavailable,
					fmt.Sprintf("backend failed mid-stream: %v", err)))
				return
			}
			if writeClient(typ, payload) != nil {
				// Client gone; the upstream loop will notice on its read.
				bconn.Close()
				return
			}
			if typ == wire.MsgAck || typ == wire.MsgError {
				return // stream finished cleanly (or with a relayed error)
			}
		}
	}()

	// Upstream loop: client→backend for CREDIT and UNSUBSCRIBE. Any client
	// message that arrives after the stream ended server-side is handed
	// back to the request/reply loop.
	for {
		conn.SetReadDeadline(time.Now().Add(g.cfg.ReadTimeout))
		typ, payload, err := wire.ReadMessage(cbr, g.cfg.MaxPayload)
		if err != nil {
			s.mu.Lock()
			s.closeBackendLocked()
			s.mu.Unlock()
			<-pumpDone
			return 0, nil, false
		}
		select {
		case <-pumpDone:
			// The stream already ended (terminal error relayed); this is
			// the session's next normal request.
			return typ, payload, true
		default:
		}
		s.mu.Lock()
		bc := s.bconn
		if bc == nil {
			// Backend vanished between the pump's teardown and our check.
			s.mu.Unlock()
			<-pumpDone
			return typ, payload, true
		}
		bc.SetWriteDeadline(time.Now().Add(g.cfg.BackendTimeout))
		werr := wire.WriteMessage(bc, typ, payload, g.cfg.MaxPayload)
		s.mu.Unlock()
		if werr != nil {
			// The pump sees the same failure and reports it downstream.
			<-pumpDone
			continue
		}
		if typ == wire.MsgUnsubscribe {
			// The backend drains and acks; the pump relays and finishes.
			<-pumpDone
			return 0, nil, true
		}
	}
}
