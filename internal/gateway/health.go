package gateway

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
)

// State is a backend's health as the watcher sees it.
type State int

const (
	// StateUnknown is the pre-first-probe state: the backend is routed to
	// optimistically (a dial failure just advances to the next candidate).
	StateUnknown State = iota
	// StateHealthy backends accept new and migrated sessions.
	StateHealthy
	// StateDraining backends answered 503 with a "draining" body: cordoned —
	// no new sessions, and existing ones are migrated off in an orderly way
	// before the backend finishes shutting down.
	StateDraining
	// StateDead backends failed Strikes consecutive probes: evicted from the
	// ring; their sessions recover onto survivors.
	StateDead
)

// String returns the state's metrics/log name.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDraining:
		return "draining"
	case StateDead:
		return "dead"
	}
	return "unknown"
}

// Status is one backend's latest probe result.
type Status struct {
	State State
	// Sessions is the backend's own open-session count as reported by its
	// /healthz body (or its rpxd_sessions_open metric), -1 when unknown.
	// It is the load weight session migration uses to pick a survivor.
	Sessions int
	// Err is the most recent probe error (nil while the backend answers).
	Err error
}

// WatcherConfig tunes the backend health watcher.
type WatcherConfig struct {
	// Interval is the probe period (default 2s).
	Interval time.Duration
	// Timeout bounds one probe (default 1s, capped at Interval).
	Timeout time.Duration
	// Strikes is how many consecutive probe failures mark a backend dead
	// (default 2 — one failure can be a blip; a draining answer is
	// authoritative immediately).
	Strikes int
	// OnChange, when non-nil, fires (outside the watcher lock) on every
	// state transition.
	OnChange func(addr string, from, to State)
}

// Watcher polls every backend's /healthz (falling back to a TCP dial probe
// of the wire address when no admin endpoint is configured) and classifies
// each as healthy, draining, or dead. The JSON healthz body carries the
// backend's open-session count, which doubles as the migration weight; for
// backends that answer plain-text healthz, the watcher scrapes
// rpxd_sessions_open from /metrics instead.
type Watcher struct {
	backends []Backend
	cfg      WatcherConfig
	client   *http.Client

	mu     sync.Mutex
	status map[string]*probeState

	quit    chan struct{}
	done    chan struct{}
	once    sync.Once
	started bool // guarded by mu
}

type probeState struct {
	Status
	strikes int
}

// NewWatcher returns a watcher over the given backends; Start launches it.
func NewWatcher(backends []Backend, cfg WatcherConfig) *Watcher {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if cfg.Timeout > cfg.Interval {
		cfg.Timeout = cfg.Interval
	}
	if cfg.Strikes <= 0 {
		cfg.Strikes = 2
	}
	w := &Watcher{
		backends: append([]Backend(nil), backends...),
		cfg:      cfg,
		client:   &http.Client{Timeout: cfg.Timeout},
		status:   make(map[string]*probeState, len(backends)),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, b := range backends {
		w.status[b.Addr] = &probeState{Status: Status{State: StateUnknown, Sessions: -1}}
	}
	return w
}

// Start launches the probe loop (idempotent).
func (w *Watcher) Start() {
	w.once.Do(func() {
		w.mu.Lock()
		w.started = true
		w.mu.Unlock()
		go func() {
			defer close(w.done)
			t := time.NewTicker(w.cfg.Interval)
			defer t.Stop()
			for {
				w.Probe()
				select {
				case <-w.quit:
					return
				case <-t.C:
				}
			}
		}()
	})
}

// Stop ends the probe loop and waits for it to exit. Safe to call even if
// Start never ran.
func (w *Watcher) Stop() {
	select {
	case <-w.quit:
	default:
		close(w.quit)
	}
	w.mu.Lock()
	started := w.started
	w.mu.Unlock()
	if started {
		<-w.done
	}
}

// Status returns the latest probe result for addr (StateUnknown/-1 for an
// address the watcher does not track).
func (w *Watcher) Status(addr string) Status {
	w.mu.Lock()
	defer w.mu.Unlock()
	if ps, ok := w.status[addr]; ok {
		return ps.Status
	}
	return Status{State: StateUnknown, Sessions: -1}
}

// Probe runs one synchronous probe round over all backends, firing
// OnChange for every transition. The run loop calls it on each tick; tests
// and operators can call it directly for a deterministic refresh.
func (w *Watcher) Probe() {
	type flip struct {
		addr     string
		from, to State
	}
	var (
		flips []flip
		fmu   sync.Mutex
		wg    sync.WaitGroup
	)
	for _, b := range w.backends {
		wg.Add(1)
		go func(b Backend) {
			defer wg.Done()
			st := w.probeOne(b)
			w.mu.Lock()
			ps := w.status[b.Addr]
			from := ps.State
			switch {
			case st.Err == nil:
				// An answer is authoritative: healthy or draining, strikes reset.
				ps.strikes = 0
				ps.Status = st
			default:
				ps.strikes++
				ps.Err = st.Err
				if ps.strikes >= w.cfg.Strikes {
					ps.State = StateDead
					ps.Sessions = -1
				}
			}
			to := ps.State
			w.mu.Unlock()
			if from != to {
				fmu.Lock()
				flips = append(flips, flip{b.Addr, from, to})
				fmu.Unlock()
			}
		}(b)
	}
	wg.Wait()
	if w.cfg.OnChange != nil {
		for _, f := range flips {
			w.cfg.OnChange(f.addr, f.from, f.to)
		}
	}
}

// probeOne performs a single backend probe and classifies the answer.
func (w *Watcher) probeOne(b Backend) Status {
	if b.Admin == "" {
		// No admin endpoint: a TCP dial of the wire address distinguishes
		// alive from dead, nothing more.
		conn, err := net.DialTimeout("tcp", b.Addr, w.cfg.Timeout)
		if err != nil {
			return Status{State: StateDead, Sessions: -1, Err: err}
		}
		conn.Close()
		return Status{State: StateHealthy, Sessions: -1}
	}
	resp, err := w.client.Get("http://" + b.Admin + "/healthz")
	if err != nil {
		return Status{State: StateDead, Sessions: -1, Err: err}
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if rerr != nil {
		return Status{State: StateDead, Sessions: -1, Err: rerr}
	}
	switch resp.StatusCode {
	case http.StatusOK:
		if hs, err := server.ParseHealth(body); err == nil {
			return Status{State: StateHealthy, Sessions: hs.Sessions}
		}
		// Pre-JSON backends answer plain "ok"; weight comes from /metrics.
		if strings.Contains(string(body), server.HealthOK) {
			return Status{State: StateHealthy, Sessions: w.scrapeSessions(b)}
		}
		return Status{State: StateDead, Sessions: -1,
			Err: fmt.Errorf("gateway: %s healthz answered 200 with unrecognized body %q", b.Admin, body)}
	case http.StatusServiceUnavailable:
		// 503 with a draining body is the planned-shutdown signal; any
		// other 503 counts as a probe failure (it may be an intermediary).
		if hs, err := server.ParseHealth(body); err == nil && hs.State == server.HealthDraining {
			return Status{State: StateDraining, Sessions: hs.Sessions}
		}
		if strings.Contains(string(body), server.HealthDraining) {
			return Status{State: StateDraining, Sessions: -1}
		}
		return Status{State: StateDead, Sessions: -1,
			Err: fmt.Errorf("gateway: %s healthz answered 503 with unrecognized body %q", b.Admin, body)}
	default:
		return Status{State: StateDead, Sessions: -1,
			Err: fmt.Errorf("gateway: %s healthz answered %d", b.Admin, resp.StatusCode)}
	}
}

// scrapeSessions fetches rpxd_sessions_open from the backend's Prometheus
// /metrics as the weight fallback for non-JSON healthz bodies (-1 when
// unavailable).
func (w *Watcher) scrapeSessions(b Backend) int {
	resp, err := w.client.Get("http://" + b.Admin + "/metrics")
	if err != nil {
		return -1
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if rerr != nil || resp.StatusCode != http.StatusOK {
		return -1
	}
	return parsePromGauge(string(body), "rpxd_sessions_open")
}

// parsePromGauge pulls one unlabelled gauge value out of a Prometheus text
// exposition (-1 when absent or malformed).
func parsePromGauge(body, name string) int {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") {
			continue // a labelled series or a longer name
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return -1
		}
		return int(v)
	}
	return -1
}
