package driver

import (
	"testing"

	"repro/internal/region"
)

func TestRegisterFileRoundTrip(t *testing.T) {
	rf := NewRegisterFile(8)
	ls := region.List{
		{X: 10, Y: 20, W: 30, H: 40, Stride: 2, Skip: 3, Phase: 1},
		{X: 5, Y: 60, W: 7, H: 8, Stride: 1, Skip: 1},
	}
	if err := rf.Load(ls); err != nil {
		t.Fatal(err)
	}
	// Before Commit the active bank is untouched (no mid-frame tearing).
	if len(rf.Read()) != 0 {
		t.Error("Load visible before Commit")
	}
	if !rf.Pending() {
		t.Error("Pending = false after Load")
	}
	rf.Commit()
	got := rf.Read()
	if len(got) != 2 {
		t.Fatalf("read %d labels", len(got))
	}
	for i := range ls {
		if got[i] != ls[i] {
			t.Errorf("label %d: %v != %v", i, got[i], ls[i])
		}
	}
	// 2 labels x 6 regs + 1 count reg.
	if rf.AXIWrites() != 13 {
		t.Errorf("AXIWrites = %d, want 13", rf.AXIWrites())
	}
	if rf.Commits() != 1 {
		t.Errorf("Commits = %d, want 1", rf.Commits())
	}
	// Idempotent commit.
	rf.Commit()
	if rf.Commits() != 1 {
		t.Error("no-op Commit counted")
	}
}

func TestRegisterFileCapacity(t *testing.T) {
	rf := NewRegisterFile(1)
	ls := region.List{
		{X: 0, Y: 0, W: 1, H: 1, Stride: 1, Skip: 1},
		{X: 0, Y: 2, W: 1, H: 1, Stride: 1, Skip: 1},
	}
	if err := rf.Load(ls); err == nil {
		t.Error("over-capacity load accepted")
	}
	if rf.Capacity() != 1 {
		t.Errorf("Capacity = %d", rf.Capacity())
	}
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewRegisterFile(0)
}

type sinkSpy struct {
	got region.List
	err error
}

func (s *sinkSpy) SetRegionLabels(ls region.List) error {
	s.got = ls
	return s.err
}

func TestRuntimeSetRegionLabels(t *testing.T) {
	spy := &sinkSpy{}
	rt := NewRuntime(640, 480, nil, spy)
	if rt.RegisterFile().Capacity() != DefaultMaxRegions {
		t.Errorf("default capacity = %d", rt.RegisterFile().Capacity())
	}
	// Unsorted input arrives sorted at the sink after the frame boundary.
	ls := region.List{
		{X: 0, Y: 100, W: 10, H: 10, Stride: 1, Skip: 1},
		{X: 0, Y: 10, W: 10, H: 10, Stride: 1, Skip: 1},
	}
	if err := rt.SetRegionLabels(ls); err != nil {
		t.Fatal(err)
	}
	if spy.got != nil {
		t.Error("sink updated before frame boundary")
	}
	if err := rt.FrameBoundary(); err != nil {
		t.Fatal(err)
	}
	if !spy.got.IsSortedByY() || spy.got[0].Y != 10 {
		t.Errorf("sink received unsorted labels: %v", spy.got)
	}
	// A second boundary with no pending writes must not re-push.
	spy.got = nil
	if err := rt.FrameBoundary(); err != nil {
		t.Fatal(err)
	}
	if spy.got != nil {
		t.Error("sink re-pushed without pending writes")
	}
	if rt.SetCalls() != 1 {
		t.Errorf("SetCalls = %d", rt.SetCalls())
	}
	// Caller's list untouched.
	if ls[0].Y != 100 {
		t.Error("caller list mutated")
	}
}

func TestRuntimeValidates(t *testing.T) {
	rt := NewRuntime(100, 100, nil, &sinkSpy{})
	bad := region.List{{X: 0, Y: 0, W: 500, H: 10, Stride: 1, Skip: 1}}
	if err := rt.SetRegionLabels(bad); err == nil {
		t.Error("invalid labels accepted")
	}
	over := make(region.List, DefaultMaxRegions+1)
	for i := range over {
		over[i] = region.Label{X: 0, Y: 0, W: 1, H: 1, Stride: 1, Skip: 1}
	}
	if err := rt.SetRegionLabels(over); err == nil {
		t.Error("over-capacity list accepted")
	}
}

func TestRuntimeNilSink(t *testing.T) {
	rt := NewRuntime(100, 100, NewRegisterFile(4), nil)
	if err := rt.SetRegionLabels(region.List{{X: 0, Y: 0, W: 5, H: 5, Stride: 1, Skip: 1}}); err != nil {
		t.Fatal(err)
	}
}
