// Package driver models the paper's runtime software stack (§5.2): "a
// user-space API, a kernel-space driver, and a set of low-level physical
// registers. We implement region parameters as registers in the
// encoder/decoder modules inside the SoC. Upon invoking any setter function
// from the application, the user-space API passes parameters to the
// kernel-space driver. The driver then writes these parameters to the
// appropriate registers in the hardware units over an AXI-lite interface."
//
// The register file is modeled explicitly so the experiments can count
// configuration traffic and enforce hardware capacity limits.
package driver

import (
	"fmt"

	"repro/internal/region"
)

// RegsPerLabel is the number of 32-bit registers one region label occupies:
// x, y, w, h, stride, skip|phase.
const RegsPerLabel = 6

// DefaultMaxRegions is the register-file capacity of the hybrid encoder
// configuration evaluated in the paper (it synthesizes 1600-region support).
const DefaultMaxRegions = 1600

// RegisterFile models the encoder's memory-mapped configuration registers.
// Like real streaming IP, the file is double-banked: driver writes land in
// a shadow bank and take effect atomically at the next frame boundary
// (Commit), so a label list can never be torn mid-frame.
type RegisterFile struct {
	maxRegions int

	shadowCount uint32
	shadow      []uint32
	count       uint32
	regs        []uint32
	pending     bool

	axiWrites int64
	commits   int64
}

// NewRegisterFile returns a register file holding up to maxRegions labels.
func NewRegisterFile(maxRegions int) *RegisterFile {
	if maxRegions <= 0 {
		panic("driver: register file capacity must be positive")
	}
	return &RegisterFile{
		maxRegions: maxRegions,
		shadow:     make([]uint32, maxRegions*RegsPerLabel),
		regs:       make([]uint32, maxRegions*RegsPerLabel),
	}
}

// Capacity returns the maximum label count.
func (rf *RegisterFile) Capacity() int { return rf.maxRegions }

// AXIWrites returns the cumulative number of 32-bit AXI-lite writes.
func (rf *RegisterFile) AXIWrites() int64 { return rf.axiWrites }

// Commits returns the number of frame-boundary bank swaps performed.
func (rf *RegisterFile) Commits() int64 { return rf.commits }

// Pending reports whether shadow writes await a Commit.
func (rf *RegisterFile) Pending() bool { return rf.pending }

// write models one AXI-lite register write into the shadow bank.
func (rf *RegisterFile) write(idx int, v uint32) {
	rf.shadow[idx] = v
	rf.axiWrites++
}

// Load serializes a label list into the shadow bank.
func (rf *RegisterFile) Load(ls region.List) error {
	if len(ls) > rf.maxRegions {
		return fmt.Errorf("driver: %d labels exceed register capacity %d", len(ls), rf.maxRegions)
	}
	for i, l := range ls {
		base := i * RegsPerLabel
		rf.write(base+0, uint32(l.X))
		rf.write(base+1, uint32(l.Y))
		rf.write(base+2, uint32(l.W))
		rf.write(base+3, uint32(l.H))
		rf.write(base+4, uint32(l.Stride))
		rf.write(base+5, uint32(l.Skip)<<16|uint32(l.Phase))
	}
	rf.shadowCount = uint32(len(ls))
	rf.axiWrites++ // count register
	rf.pending = true
	return nil
}

// Commit swaps the shadow bank into the active bank at a frame boundary.
// A no-op when no writes are pending.
func (rf *RegisterFile) Commit() {
	if !rf.pending {
		return
	}
	copy(rf.regs, rf.shadow[:rf.shadowCount*RegsPerLabel])
	rf.count = rf.shadowCount
	rf.pending = false
	rf.commits++
}

// Read deserializes the *active* register contents back into labels — what
// the encoder hardware actually consumes.
func (rf *RegisterFile) Read() region.List {
	out := make(region.List, rf.count)
	for i := range out {
		base := i * RegsPerLabel
		out[i] = region.Label{
			X:      int(rf.regs[base+0]),
			Y:      int(rf.regs[base+1]),
			W:      int(rf.regs[base+2]),
			H:      int(rf.regs[base+3]),
			Stride: int(rf.regs[base+4]),
			Skip:   int(rf.regs[base+5] >> 16),
			Phase:  int(rf.regs[base+5] & 0xFFFF),
		}
	}
	return out
}

// LabelSink receives validated, y-sorted label lists — the encoder side of
// the runtime service.
type LabelSink interface {
	SetRegionLabels(ls region.List) error
}

// Runtime is the user-space API endpoint: it validates and pre-sorts label
// lists (the paper has the app runtime sort by y-index so the hardware RoI
// selector stays cheap), pushes them through the driver's register file,
// and forwards them to the encoder.
type Runtime struct {
	frameW, frameH int
	rf             *RegisterFile
	sink           LabelSink

	setCalls int64
}

// NewRuntime returns a runtime for a w x h pipeline, writing through rf to
// sink. A nil rf gets the default capacity.
func NewRuntime(frameW, frameH int, rf *RegisterFile, sink LabelSink) *Runtime {
	if rf == nil {
		rf = NewRegisterFile(DefaultMaxRegions)
	}
	return &Runtime{frameW: frameW, frameH: frameH, rf: rf, sink: sink}
}

// SetRegionLabels is the developer-facing setter: the paper's
// SetRegionLabels(list<RegionLabel>). The list lands in the shadow register
// bank and takes effect at the next FrameBoundary; labels persist across
// frames until replaced.
func (rt *Runtime) SetRegionLabels(ls region.List) error {
	rt.setCalls++
	if err := ls.Validate(rt.frameW, rt.frameH); err != nil {
		return fmt.Errorf("driver: rejected label list: %w", err)
	}
	return rt.rf.Load(ls.Clone().SortByY())
}

// FrameBoundary commits pending register writes and pushes the active
// configuration to the encoder. The capture pipeline calls this at the
// start of every frame.
func (rt *Runtime) FrameBoundary() error {
	committed := rt.rf.Pending()
	rt.rf.Commit()
	if committed && rt.sink != nil {
		// The hardware consumes what is actually in the registers.
		return rt.sink.SetRegionLabels(rt.rf.Read())
	}
	return nil
}

// SetCalls returns the number of SetRegionLabels invocations.
func (rt *Runtime) SetCalls() int64 { return rt.setCalls }

// RegisterFile exposes the underlying register file for overhead reporting.
func (rt *Runtime) RegisterFile() *RegisterFile { return rt.rf }
