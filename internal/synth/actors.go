package synth

import (
	"math"
	"math/rand"

	"repro/internal/frame"
)

// Box is an axis-aligned ground-truth bounding box.
type Box struct {
	X, Y, W, H int
}

// Center returns the box center.
func (b Box) Center() (float64, float64) {
	return float64(b.X) + float64(b.W)/2, float64(b.Y) + float64(b.H)/2
}

// IoU returns the intersection-over-union of two boxes.
func (b Box) IoU(o Box) float64 {
	x0 := max(b.X, o.X)
	y0 := max(b.Y, o.Y)
	x1 := min(b.X+b.W, o.X+o.W)
	y1 := min(b.Y+b.H, o.Y+o.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	inter := float64((x1 - x0) * (y1 - y0))
	union := float64(b.W*b.H+o.W*o.H) - inter
	return inter / union
}

// drawFace renders a procedural face-like pattern (oval, eyes, mouth) that
// is visually distinctive and carries strong gradients for the tracker.
func drawFace(fr *frame.Frame, b Box, shade uint8) {
	cx, cy := b.X+b.W/2, b.Y+b.H/2
	rx, ry := b.W/2, b.H/2
	// Head oval.
	for dy := -ry; dy <= ry; dy++ {
		for dx := -rx; dx <= rx; dx++ {
			nx := float64(dx) / float64(rx)
			ny := float64(dy) / float64(ry)
			if nx*nx+ny*ny <= 1 && fr.InBounds(cx+dx, cy+dy) {
				fr.SetGray(cx+dx, cy+dy, shade)
			}
		}
	}
	// Eyes and mouth in contrasting tone.
	dark := uint8(30)
	if shade < 128 {
		dark = 220
	}
	eyeR := max(b.W/10, 1)
	fr.FillCircle(cx-rx/2, cy-ry/3, eyeR, dark)
	fr.FillCircle(cx+rx/2, cy-ry/3, eyeR, dark)
	fr.FillRect(cx-rx/3, cy+ry/3, 2*rx/3, max(ry/8, 1), dark)
}

// FaceSequence is a synthetic face-detection benchmark: faces traverse a
// textured "portal" scene (the ChokePoint setting), entering and leaving.
type FaceSequence struct {
	W, H   int
	Frames int
	// Truth[t] lists the visible ground-truth face boxes at frame t.
	Truth [][]Box

	background *frame.Frame
	tracks     []faceTrack
}

type faceTrack struct {
	startFrame int
	x0, y0     float64
	vx, vy     float64
	w, h       int
	shade      uint8
	duration   int
}

// NewFaceSequence generates a sequence with nFaces crossing the scene over
// the given frame count.
func NewFaceSequence(w, h, frames, nFaces int, seed int64) *FaceSequence {
	rng := rand.New(rand.NewSource(seed))
	world := NewWorld(w, h, seed+1000)
	s := &FaceSequence{W: w, H: h, Frames: frames, background: world.Canvas}
	for i := 0; i < nFaces; i++ {
		fw := 40 + rng.Intn(60)
		fh := fw + fw/4
		dur := frames/2 + rng.Intn(frames/2)
		start := rng.Intn(max(frames-dur, 1))
		// Walk across the portal: left-to-right or right-to-left.
		var x0, vx float64
		if rng.Intn(2) == 0 {
			x0 = -float64(fw)
			vx = float64(w+2*fw) / float64(dur)
		} else {
			x0 = float64(w)
			vx = -float64(w+2*fw) / float64(dur)
		}
		s.tracks = append(s.tracks, faceTrack{
			startFrame: start,
			x0:         x0,
			y0:         float64(h/4 + rng.Intn(h/2)),
			vx:         vx,
			vy:         rng.Float64()*0.6 - 0.3,
			w:          fw,
			h:          fh,
			shade:      uint8(150 + rng.Intn(90)),
			duration:   dur,
		})
	}
	s.Truth = make([][]Box, frames)
	for t := 0; t < frames; t++ {
		for _, tr := range s.tracks {
			if b, ok := tr.boxAt(t, w, h); ok {
				s.Truth[t] = append(s.Truth[t], b)
			}
		}
	}
	return s
}

// boxAt returns the face box at frame t, and whether it is mostly visible.
func (tr faceTrack) boxAt(t, w, h int) (Box, bool) {
	if t < tr.startFrame || t >= tr.startFrame+tr.duration {
		return Box{}, false
	}
	dt := float64(t - tr.startFrame)
	x := tr.x0 + tr.vx*dt
	y := tr.y0 + tr.vy*dt + 5*math.Sin(dt/15)
	b := Box{X: int(x), Y: int(y), W: tr.w, H: tr.h}
	// Visible when at least half the box is inside the frame.
	visX := min(b.X+b.W, w) - max(b.X, 0)
	visY := min(b.Y+b.H, h) - max(b.Y, 0)
	if visX < b.W/2 || visY < b.H/2 {
		return Box{}, false
	}
	return b, true
}

// RenderFrame draws frame t: background plus visible faces.
func (s *FaceSequence) RenderFrame(t int) *frame.Frame {
	fr := s.background.Clone()
	for _, tr := range s.tracks {
		if b, ok := tr.boxAt(t, s.W, s.H); ok {
			drawFace(fr, b, tr.shade)
		}
	}
	return fr
}

// Joint names the skeleton joints of the pose benchmark.
var Joints = []string{
	"head", "neck",
	"l-shoulder", "r-shoulder", "l-elbow", "r-elbow", "l-hand", "r-hand",
	"hip", "l-knee", "r-knee", "l-foot", "r-foot",
}

// walker is one articulated figure in a pose sequence.
type walker struct {
	cx0       float64
	cy        float64
	vx        float64
	scale     float64
	gaitPhase float64
}

// PoseSequence is a synthetic human-pose benchmark: one or more articulated
// stick figures walk through a textured scene; ground truth is a box per
// joint per figure (PoseTrack scenes contain multiple people).
type PoseSequence struct {
	W, H   int
	Frames int
	// Truth[t] has one box per joint per walker
	// (len(Joints) * NumWalkers entries, walker-major).
	Truth [][]Box

	background *frame.Frame
	walkers    []walker
}

// NumWalkers returns the number of figures in the sequence.
func (s *PoseSequence) NumWalkers() int { return len(s.walkers) }

// NewPoseSequence generates a single walking-figure sequence.
func NewPoseSequence(w, h, frames int, seed int64) *PoseSequence {
	return NewMultiPoseSequence(w, h, frames, 1, seed)
}

// NewMultiPoseSequence generates a sequence with nPeople figures walking at
// different depths (scales), speeds, and gait phases.
func NewMultiPoseSequence(w, h, frames, nPeople int, seed int64) *PoseSequence {
	if nPeople < 1 {
		panic("synth: need at least one walker")
	}
	rng := rand.New(rand.NewSource(seed))
	world := NewWorld(w, h, seed+2000)
	s := &PoseSequence{W: w, H: h, Frames: frames, background: world.Canvas}
	for i := 0; i < nPeople; i++ {
		// Spread walkers over depth layers (scale) and stagger their starts.
		depth := float64(i) / float64(max(nPeople-1, 1)) // 0 = nearest
		s.walkers = append(s.walkers, walker{
			cx0:       float64(w) * (0.10 + 0.15*rng.Float64()),
			cy:        float64(h) * (0.50 - 0.12*depth + 0.05*(rng.Float64()-0.5)),
			vx:        float64(w) * (0.5 + 0.4*rng.Float64()) / float64(frames),
			scale:     float64(h) * (0.42 - 0.14*depth),
			gaitPhase: rng.Float64() * 2 * math.Pi,
		})
	}
	s.Truth = make([][]Box, frames)
	for t := 0; t < frames; t++ {
		var boxes []Box
		for wi := range s.walkers {
			joints := s.jointsAt(wi, t)
			side := int(s.walkers[wi].scale * 0.22)
			for _, p := range joints {
				boxes = append(boxes, Box{X: int(p[0]) - side/2, Y: int(p[1]) - side/2, W: side, H: side})
			}
		}
		s.Truth[t] = boxes
	}
	return s
}

// jointsAt returns walker wi's joint centers at frame t using a simple
// walking gait.
func (s *PoseSequence) jointsAt(wi, t int) [][2]float64 {
	wk := s.walkers[wi]
	cx := wk.cx0 + wk.vx*float64(t)
	cy := wk.cy
	sc := wk.scale
	phase := wk.gaitPhase + float64(t)*0.25
	swing := math.Sin(phase) * 0.3
	counter := -swing
	pts := make([][2]float64, len(Joints))
	set := func(name string, x, y float64) {
		for i, n := range Joints {
			if n == name {
				pts[i] = [2]float64{x, y}
				return
			}
		}
	}
	set("head", cx, cy-0.45*sc)
	set("neck", cx, cy-0.3*sc)
	set("l-shoulder", cx-0.15*sc, cy-0.28*sc)
	set("r-shoulder", cx+0.15*sc, cy-0.28*sc)
	set("l-elbow", cx-0.18*sc+0.1*sc*swing, cy-0.1*sc)
	set("r-elbow", cx+0.18*sc+0.1*sc*counter, cy-0.1*sc)
	set("l-hand", cx-0.2*sc+0.18*sc*swing, cy+0.05*sc)
	set("r-hand", cx+0.2*sc+0.18*sc*counter, cy+0.05*sc)
	set("hip", cx, cy+0.05*sc)
	set("l-knee", cx-0.08*sc+0.12*sc*swing, cy+0.25*sc)
	set("r-knee", cx+0.08*sc+0.12*sc*counter, cy+0.25*sc)
	set("l-foot", cx-0.1*sc+0.2*sc*swing, cy+0.45*sc)
	set("r-foot", cx+0.1*sc+0.2*sc*counter, cy+0.45*sc)
	return pts
}

// RenderFrame draws frame t: background plus every stick figure, far
// (small) walkers first so near ones occlude them.
func (s *PoseSequence) RenderFrame(t int) *frame.Frame {
	fr := s.background.Clone()
	order := make([]int, len(s.walkers))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if s.walkers[order[j]].scale < s.walkers[order[i]].scale {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, wi := range order {
		s.renderWalker(fr, wi, t)
	}
	return fr
}

// renderWalker draws one figure onto fr.
func (s *PoseSequence) renderWalker(fr *frame.Frame, wi, t int) {
	pts := s.jointsAt(wi, t)
	at := func(name string) (int, int) {
		for i, n := range Joints {
			if n == name {
				return int(pts[i][0]), int(pts[i][1])
			}
		}
		return 0, 0
	}
	bone := func(a, b string) {
		x0, y0 := at(a)
		x1, y1 := at(b)
		for d := -1; d <= 1; d++ {
			fr.DrawLine(x0+d, y0, x1+d, y1, 240)
		}
	}
	bone("head", "neck")
	bone("neck", "l-shoulder")
	bone("neck", "r-shoulder")
	bone("l-shoulder", "l-elbow")
	bone("r-shoulder", "r-elbow")
	bone("l-elbow", "l-hand")
	bone("r-elbow", "r-hand")
	bone("neck", "hip")
	bone("hip", "l-knee")
	bone("hip", "r-knee")
	bone("l-knee", "l-foot")
	bone("r-knee", "r-foot")
	hx, hy := at("head")
	fr.FillCircle(hx, hy, int(s.walkers[wi].scale*0.08), 240)
	// Dark joint markers give the tracker texture.
	for _, p := range pts {
		fr.FillCircle(int(p[0]), int(p[1]), 3, 20)
	}
}
