package synth

import (
	"math"
	"testing"
)

func TestNewWorldTextured(t *testing.T) {
	w := NewWorld(256, 256, 1)
	// Texture must have real variance: count distinct values.
	hist := map[uint8]int{}
	for _, v := range w.Canvas.Pix {
		hist[v]++
	}
	if len(hist) < 50 {
		t.Errorf("only %d distinct gray levels; world too flat", len(hist))
	}
	// Deterministic by seed.
	w2 := NewWorld(256, 256, 1)
	if !w.Canvas.Equal(w2.Canvas) {
		t.Error("same seed produced different worlds")
	}
	w3 := NewWorld(256, 256, 2)
	if w.Canvas.Equal(w3.Canvas) {
		t.Error("different seeds produced identical worlds")
	}
	defer func() {
		if recover() == nil {
			t.Error("tiny world did not panic")
		}
	}()
	NewWorld(10, 10, 1)
}

func TestRenderTranslationShiftsContent(t *testing.T) {
	w := NewWorld(512, 512, 2)
	a := w.Render(Pose{X: 256, Y: 256}, 64, 64)
	b := w.Render(Pose{X: 266, Y: 256}, 64, 64)
	// b shifted left by 10 should equal a's right portion.
	for y := 0; y < 64; y++ {
		for x := 0; x < 54; x++ {
			if a.Gray(x+10, y) != b.Gray(x, y) {
				t.Fatalf("translation inconsistency at (%d,%d)", x, y)
			}
		}
	}
}

func TestRenderRotationPreservesCenter(t *testing.T) {
	w := NewWorld(512, 512, 3)
	a := w.Render(Pose{X: 256, Y: 256, Theta: 0}, 65, 65)
	b := w.Render(Pose{X: 256, Y: 256, Theta: 0.3}, 65, 65)
	// The rotation center sits between pixel centers, so bilinear
	// resampling perturbs the nearest pixels slightly; the 2x2 average
	// around the center must stay close.
	avg := func(fr interface{ Gray(x, y int) uint8 }) float64 {
		return (float64(fr.Gray(31, 31)) + float64(fr.Gray(32, 31)) +
			float64(fr.Gray(31, 32)) + float64(fr.Gray(32, 32))) / 4
	}
	if diff := avg(a) - avg(b); diff < -12 || diff > 12 {
		t.Errorf("center neighborhood changed by %.1f under pure rotation", diff)
	}
	if a.Equal(b) {
		t.Error("rotation had no effect")
	}
}

func TestTrajectoryStaysInBounds(t *testing.T) {
	w := NewWorld(800, 800, 4)
	for _, prof := range []MotionProfile{ProfileStatic, ProfileSlow, ProfileMedium, ProfileFast} {
		poses := w.Trajectory(200, 320, 240, prof, 7)
		if len(poses) != 200 {
			t.Fatalf("got %d poses", len(poses))
		}
		margin := math.Hypot(320, 240)/2 + 4
		for i, p := range poses {
			if p.X < margin-1 || p.X > 800-margin+1 || p.Y < margin-1 || p.Y > 800-margin+1 {
				t.Fatalf("pose %d out of bounds: %+v (profile %+v)", i, p, prof)
			}
		}
	}
}

func TestTrajectorySpeedMatchesProfile(t *testing.T) {
	w := NewWorld(2000, 2000, 5)
	slow := w.Trajectory(300, 320, 240, ProfileSlow, 8)
	fast := w.Trajectory(300, 320, 240, ProfileFast, 8)
	meanSpeed := func(poses []Pose) float64 {
		var sum float64
		for i := 1; i < len(poses); i++ {
			sum += math.Hypot(poses[i].X-poses[i-1].X, poses[i].Y-poses[i-1].Y)
		}
		return sum / float64(len(poses)-1)
	}
	ms, mf := meanSpeed(slow), meanSpeed(fast)
	if ms >= mf {
		t.Errorf("slow speed %.2f >= fast speed %.2f", ms, mf)
	}
	if mf < 3 {
		t.Errorf("fast profile mean speed %.2f too low", mf)
	}
}

func TestBoxIoU(t *testing.T) {
	a := Box{X: 0, Y: 0, W: 10, H: 10}
	if got := a.IoU(a); got != 1 {
		t.Errorf("self IoU = %v", got)
	}
	if got := a.IoU(Box{X: 20, Y: 20, W: 5, H: 5}); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
	half := a.IoU(Box{X: 5, Y: 0, W: 10, H: 10}) // overlap 50, union 150
	if math.Abs(half-1.0/3) > 1e-9 {
		t.Errorf("partial IoU = %v, want 1/3", half)
	}
	cx, cy := a.Center()
	if cx != 5 || cy != 5 {
		t.Errorf("Center = (%v,%v)", cx, cy)
	}
}

func TestFaceSequence(t *testing.T) {
	s := NewFaceSequence(320, 240, 60, 3, 9)
	if s.Frames != 60 || len(s.Truth) != 60 {
		t.Fatalf("bad sequence shape")
	}
	// Some frame must contain at least one visible face.
	total := 0
	for t2 := 0; t2 < 60; t2++ {
		total += len(s.Truth[t2])
	}
	if total == 0 {
		t.Fatal("no ground-truth faces in whole sequence")
	}
	// Rendering a frame with faces differs from the bare background.
	for t2 := 0; t2 < 60; t2++ {
		if len(s.Truth[t2]) > 0 {
			fr := s.RenderFrame(t2)
			if fr.Equal(s.background) {
				t.Error("face frame identical to background")
			}
			b := s.Truth[t2][0]
			cx, cy := b.Center()
			if !fr.InBounds(int(cx), int(cy)) {
				t.Errorf("truth box center (%v,%v) outside frame", cx, cy)
			}
			break
		}
	}
	// Deterministic.
	s2 := NewFaceSequence(320, 240, 60, 3, 9)
	if !s.RenderFrame(30).Equal(s2.RenderFrame(30)) {
		t.Error("face sequence not deterministic")
	}
}

func TestFaceVisibilityRespectsBorders(t *testing.T) {
	s := NewFaceSequence(320, 240, 100, 4, 10)
	for t2, boxes := range s.Truth {
		for _, b := range boxes {
			// At least half the box must be visible per the generator contract.
			visX := min(b.X+b.W, 320) - max(b.X, 0)
			if visX < b.W/2 {
				t.Fatalf("frame %d: box %+v under half visible", t2, b)
			}
		}
	}
}

func TestPoseSequence(t *testing.T) {
	s := NewPoseSequence(320, 240, 50, 11)
	if len(s.Truth) != 50 {
		t.Fatalf("bad truth length %d", len(s.Truth))
	}
	for t2 := 0; t2 < 50; t2++ {
		if len(s.Truth[t2]) != len(Joints) {
			t.Fatalf("frame %d has %d joints, want %d", t2, len(s.Truth[t2]), len(Joints))
		}
	}
	// The figure walks: head moves right over time.
	h0 := s.Truth[0][0]
	h49 := s.Truth[49][0]
	if h49.X <= h0.X {
		t.Error("figure did not advance")
	}
	// Head stays above hip.
	for t2 := 0; t2 < 50; t2 += 10 {
		var head, hip Box
		for j, n := range Joints {
			if n == "head" {
				head = s.Truth[t2][j]
			}
			if n == "hip" {
				hip = s.Truth[t2][j]
			}
		}
		if head.Y >= hip.Y {
			t.Fatalf("frame %d: head below hip", t2)
		}
	}
	fr := s.RenderFrame(25)
	if fr.Equal(s.background) {
		t.Error("pose frame identical to background")
	}
}

func TestMultiPoseSequence(t *testing.T) {
	s := NewMultiPoseSequence(400, 300, 40, 3, 5)
	if s.NumWalkers() != 3 {
		t.Fatalf("NumWalkers = %d", s.NumWalkers())
	}
	if len(s.Truth[0]) != 3*len(Joints) {
		t.Fatalf("truth has %d boxes, want %d", len(s.Truth[0]), 3*len(Joints))
	}
	// Walkers occupy distinct positions: the three head boxes differ.
	h0 := s.Truth[10][0]
	h1 := s.Truth[10][len(Joints)]
	h2 := s.Truth[10][2*len(Joints)]
	if h0 == h1 || h1 == h2 {
		t.Error("walkers overlap exactly; parameters not varied")
	}
	// Rendering is deterministic and differs from background.
	a := s.RenderFrame(10)
	b := NewMultiPoseSequence(400, 300, 40, 3, 5).RenderFrame(10)
	if !a.Equal(b) {
		t.Error("multi-pose render not deterministic")
	}
	defer func() {
		if recover() == nil {
			t.Error("zero walkers did not panic")
		}
	}()
	NewMultiPoseSequence(100, 100, 10, 0, 1)
}

func TestSinglePoseBackCompat(t *testing.T) {
	s := NewPoseSequence(320, 240, 20, 11)
	if s.NumWalkers() != 1 || len(s.Truth[0]) != len(Joints) {
		t.Error("single-walker shape changed")
	}
}
