// Package synth procedurally generates the video datasets the evaluation
// needs, with exact ground truth. It stands in for the paper's benchmarks —
// the TUM RGB-D sequences and in-house 4K set for V-SLAM, PoseTrack 2017
// for human pose estimation, and ChokePoint for face detection — which are
// external data this reproduction cannot ship. The generated scenes carry
// dense corner texture (so the FAST/BRIEF frontend behaves like it does on
// natural images), moving foreground objects, and per-frame ground truth:
// camera pose for SLAM, joint boxes for pose, face boxes for detection.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/frame"
)

// World is a large textured canvas a virtual camera pans across.
type World struct {
	Canvas *frame.Frame
}

// NewWorld generates a naturalistic canvas: smooth low-gradient background
// (walls, floors, sky — areas with few corners) with clustered texture-rich
// patches (furniture, posters, clutter) covering roughly 40% of the area.
// The clustering matters for the evaluation: features — and therefore
// rhythmic pixel regions — concentrate where the texture is, which is
// exactly the property of natural scenes the paper's savings rely on
// ("Most natural scenes do not have the same resolution needs across the
// entire image frame").
func NewWorld(w, h int, seed int64) *World {
	if w < 64 || h < 64 {
		panic(fmt.Sprintf("synth: world %dx%d too small", w, h))
	}
	rng := rand.New(rand.NewSource(seed))
	canvas := frame.New(w, h, frame.Gray8)

	// Background: smooth value noise at a coarse grid (too smooth for FAST
	// corners at typical thresholds).
	const grid = 64
	gw, gh := w/grid+2, h/grid+2
	noise := make([]float64, gw*gh)
	for i := range noise {
		noise[i] = 80 + rng.Float64()*80
	}
	for y := 0; y < h; y++ {
		gy := y / grid
		ty := float64(y%grid) / grid
		for x := 0; x < w; x++ {
			gx := x / grid
			tx := float64(x%grid) / grid
			v00 := noise[gy*gw+gx]
			v01 := noise[gy*gw+gx+1]
			v10 := noise[(gy+1)*gw+gx]
			v11 := noise[(gy+1)*gw+gx+1]
			v := v00*(1-tx)*(1-ty) + v01*tx*(1-ty) + v10*(1-tx)*ty + v11*tx*ty
			canvas.Pix[y*w+x] = uint8(v)
		}
	}

	// Texture clusters: detail-dense patches covering ~40% of the canvas.
	targetArea := w * h * 40 / 100
	covered := 0
	for covered < targetArea {
		cw := 80 + rng.Intn(w/4)
		ch := 80 + rng.Intn(h/4)
		cx := rng.Intn(max(w-cw, 1))
		cy := rng.Intn(max(h-ch, 1))
		nShapes := cw * ch / 450
		for i := 0; i < nShapes; i++ {
			x, y := cx+rng.Intn(cw), cy+rng.Intn(ch)
			val := uint8(30 + rng.Intn(200))
			switch rng.Intn(3) {
			case 0:
				sw, sh := 6+rng.Intn(28), 6+rng.Intn(28)
				canvas.FillRect(x, y, sw, sh, val)
				canvas.DrawRect(x, y, sw, sh, 255-val)
			case 1:
				canvas.FillCircle(x, y, 3+rng.Intn(10), val)
			default:
				canvas.DrawLine(x, y, x+rng.Intn(60)-30, y+rng.Intn(60)-30, val)
			}
		}
		covered += cw * ch
	}
	return &World{Canvas: canvas}
}

// Pose is a 2D camera pose: viewport center in world pixels plus rotation.
type Pose struct {
	X, Y  float64
	Theta float64 // radians
}

// Render samples a w x h viewport centered at the pose with bilinear
// interpolation; pixels falling outside the canvas clamp to the border.
func (wd *World) Render(p Pose, w, h int) *frame.Frame {
	out := frame.New(w, h, frame.Gray8)
	sin, cos := math.Sincos(p.Theta)
	cx, cy := float64(w)/2, float64(h)/2
	cw, ch := wd.Canvas.W, wd.Canvas.H
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			wx := p.X + cos*dx - sin*dy
			wy := p.Y + sin*dx + cos*dy
			out.Pix[y*w+x] = bilinear(wd.Canvas, wx, wy, cw, ch)
		}
	}
	return out
}

func bilinear(c *frame.Frame, fx, fy float64, w, h int) uint8 {
	if fx < 0 {
		fx = 0
	} else if fx > float64(w-1) {
		fx = float64(w - 1)
	}
	if fy < 0 {
		fy = 0
	} else if fy > float64(h-1) {
		fy = float64(h - 1)
	}
	x0, y0 := int(fx), int(fy)
	x1, y1 := x0+1, y0+1
	if x1 >= w {
		x1 = w - 1
	}
	if y1 >= h {
		y1 = h - 1
	}
	tx, ty := fx-float64(x0), fy-float64(y0)
	p00 := float64(c.Pix[y0*w+x0])
	p01 := float64(c.Pix[y0*w+x1])
	p10 := float64(c.Pix[y1*w+x0])
	p11 := float64(c.Pix[y1*w+x1])
	top := p00 + (p01-p00)*tx
	bot := p10 + (p11-p10)*tx
	return uint8(top + (bot-top)*ty + 0.5)
}

// MotionProfile shapes a generated camera trajectory.
type MotionProfile struct {
	// SpeedPxPerFrame is the mean translational speed.
	SpeedPxPerFrame float64
	// RotationRadPerFrame is the mean absolute rotational rate.
	RotationRadPerFrame float64
	// Jerk adds per-frame random acceleration (0 = perfectly smooth).
	Jerk float64
}

// Profiles matching the paper's observation that its benchmark scenes span
// "fairly static" through "rapid scene motion" (§6.1).
var (
	ProfileStatic = MotionProfile{SpeedPxPerFrame: 0.3, RotationRadPerFrame: 0.0005, Jerk: 0.02}
	ProfileSlow   = MotionProfile{SpeedPxPerFrame: 1.5, RotationRadPerFrame: 0.002, Jerk: 0.1}
	ProfileMedium = MotionProfile{SpeedPxPerFrame: 3.5, RotationRadPerFrame: 0.004, Jerk: 0.25}
	ProfileFast   = MotionProfile{SpeedPxPerFrame: 7, RotationRadPerFrame: 0.008, Jerk: 0.6}
)

// Trajectory generates n poses of a smooth random walk inside the world,
// keeping the w x h viewport (with rotation slack) inside the canvas.
func (wd *World) Trajectory(n, w, h int, prof MotionProfile, seed int64) []Pose {
	rng := rand.New(rand.NewSource(seed))
	// Keep the rotated viewport inside the canvas.
	margin := math.Hypot(float64(w), float64(h))/2 + 4
	minX, maxX := margin, float64(wd.Canvas.W)-margin
	minY, maxY := margin, float64(wd.Canvas.H)-margin
	if minX >= maxX || minY >= maxY {
		panic("synth: viewport too large for world")
	}

	poses := make([]Pose, n)
	x := minX + rng.Float64()*(maxX-minX)
	y := minY + rng.Float64()*(maxY-minY)
	theta := 0.0
	dir := rng.Float64() * 2 * math.Pi
	vx, vy := math.Cos(dir)*prof.SpeedPxPerFrame, math.Sin(dir)*prof.SpeedPxPerFrame
	omega := prof.RotationRadPerFrame
	for i := range poses {
		poses[i] = Pose{X: x, Y: y, Theta: theta}
		vx += rng.NormFloat64() * prof.Jerk
		vy += rng.NormFloat64() * prof.Jerk
		// Re-normalize speed softly toward the profile speed.
		sp := math.Hypot(vx, vy)
		if sp > 0 {
			target := prof.SpeedPxPerFrame
			scale := 1 + 0.1*(target-sp)/math.Max(sp, 1e-9)
			vx *= scale
			vy *= scale
		}
		x += vx
		y += vy
		theta += omega + rng.NormFloat64()*prof.RotationRadPerFrame*0.3
		// Reflect off the borders.
		if x < minX {
			x, vx = 2*minX-x, -vx
		} else if x > maxX {
			x, vx = 2*maxX-x, -vx
		}
		if y < minY {
			y, vy = 2*minY-y, -vy
		} else if y > maxY {
			y, vy = 2*maxY-y, -vy
		}
	}
	return poses
}
