package track

import (
	"math"

	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/synth"
)

// FaceDetector is a multi-scale NCC template detector for the synthetic
// face pattern: the stand-in for the RetinaNet face detector. It matches an
// *inner-face* template (the eyes-and-mouth region, which lies entirely
// inside the face oval, so no mismatched background dilutes the
// correlation) on a half-resolution copy of the frame for throughput,
// mirroring mobile detector practice.
type FaceDetector struct {
	// templates are inner-face crops at several scales (half-res).
	templates []*frame.Frame
	// geom maps each template back to a full-resolution face box:
	// [fullW, fullH, innerOffX, innerOffY].
	geom [][4]int
	// Threshold is the minimum NCC acceptance score.
	Threshold float64
	// Step is the half-res scan stride.
	Step int
}

// NewFaceDetector builds the template bank covering the synthetic
// sequences' face sizes (40-100 px wide).
func NewFaceDetector() *FaceDetector {
	d := &FaceDetector{Threshold: 0.62, Step: 2}
	for _, w := range []int{40, 54, 72, 96} {
		h := w + w/4
		canvas := frame.New(w, h, frame.Gray8)
		canvas.Fill(100)
		synthDrawFace(canvas, 0, 0, w, h)
		// Inner region holding both eyes and the mouth, fully inside the
		// oval (see synthDrawFace geometry).
		ix, iy := w*15/100, h*25/100
		iw, ih := w*70/100, h*50/100
		inner := canvas.Crop(ix, iy, iw, ih)
		d.templates = append(d.templates, inner.Downscale(2))
		d.geom = append(d.geom, [4]int{w, h, ix, iy})
	}
	return d
}

// synthDrawFace renders the canonical face pattern matching synth's
// generator: bright oval, dark eyes and mouth.
func synthDrawFace(fr *frame.Frame, x, y, w, h int) {
	cx, cy := x+w/2, y+h/2
	rx, ry := w/2, h/2
	for dy := -ry; dy <= ry; dy++ {
		for dx := -rx; dx <= rx; dx++ {
			nx := float64(dx) / float64(rx)
			ny := float64(dy) / float64(ry)
			if nx*nx+ny*ny <= 1 && fr.InBounds(cx+dx, cy+dy) {
				fr.SetGray(cx+dx, cy+dy, 195)
			}
		}
	}
	eyeR := w / 10
	if eyeR < 1 {
		eyeR = 1
	}
	fr.FillCircle(cx-rx/2, cy-ry/3, eyeR, 30)
	fr.FillCircle(cx+rx/2, cy-ry/3, eyeR, 30)
	mh := ry / 8
	if mh < 1 {
		mh = 1
	}
	fr.FillRect(cx-rx/3, cy+ry/3, 2*rx/3, mh, 30)
}

// Detect scans the frame and returns face detections in full-resolution
// coordinates, non-maximum suppressed.
func (d *FaceDetector) Detect(img *frame.Frame) []metrics.Detection {
	half := img.ToGray().Downscale(2)
	var raw []metrics.Detection
	for si, tmpl := range d.templates {
		g := d.geom[si]
		for y := 0; y+tmpl.H <= half.H; y += d.Step {
			for x := 0; x+tmpl.W <= half.W; x += d.Step {
				if s := NCC(half, tmpl, x, y); s >= d.Threshold {
					raw = append(raw, metrics.Detection{
						X: x*2 - g[2], Y: y*2 - g[3],
						W: g[0], H: g[1],
						Score: s,
					})
				}
			}
		}
	}
	return nmsDetections(raw, 0.3)
}

// nmsDetections greedily keeps the highest-scoring detections, suppressing
// others that overlap a kept one above the IoU threshold.
func nmsDetections(dets []metrics.Detection, iou float64) []metrics.Detection {
	var out []metrics.Detection
	used := make([]bool, len(dets))
	for {
		best, bestScore := -1, -math.MaxFloat64
		for i, d := range dets {
			if !used[i] && d.Score > bestScore {
				best, bestScore = i, d.Score
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		out = append(out, dets[best])
		for i, d := range dets {
			if used[i] {
				continue
			}
			g := metrics.GroundTruth{X: dets[best].X, Y: dets[best].Y, W: dets[best].W, H: dets[best].H}
			if metrics.IoU(d, g) > iou {
				used[i] = true
			}
		}
	}
	return out
}

// FaceWorkload runs the face-detection task: periodic full detection for
// discovery plus per-frame NCC tracking, the detector-plus-tracker pattern
// mobile vision pipelines use. Frame quality affects both stages.
type FaceWorkload struct {
	Detector *FaceDetector
	// DetectEvery runs the full detector on every Nth frame.
	DetectEvery int
	// MaxLostFrames drops a track after this many consecutive misses.
	MaxLostFrames int

	tracks []*faceTrackState
}

type faceTrackState struct {
	tracker *Tracker
	lost    int
	// missedConfirms counts consecutive detection passes that failed to
	// re-confirm this track; stale tracks (background lock-ons, faces that
	// left the scene) are culled after MaxMissedConfirms.
	missedConfirms int
}

// MaxMissedConfirms is the number of detection passes a track may go
// unconfirmed before it is dropped.
const MaxMissedConfirms = 2

// NewFaceWorkload returns a workload with a fresh detector.
func NewFaceWorkload(detectEvery int) *FaceWorkload {
	if detectEvery < 1 {
		detectEvery = 10
	}
	return &FaceWorkload{Detector: NewFaceDetector(), DetectEvery: detectEvery, MaxLostFrames: 8}
}

// Boxes returns the live track rectangles (policy input).
func (w *FaceWorkload) Boxes() []synth.Box {
	var out []synth.Box
	for _, t := range w.tracks {
		x, y, bw, bh := t.tracker.Box()
		out = append(out, synth.Box{X: x, Y: y, W: bw, H: bh})
	}
	return out
}

// Step processes frame t and returns the frame's face detections.
func (w *FaceWorkload) Step(img *frame.Frame, t int) []metrics.Detection {
	gray := img
	if img.Format != frame.Gray8 {
		gray = img.ToGray()
	}
	// Track existing faces.
	for _, tr := range w.tracks {
		if tr.tracker.Track(gray) {
			tr.lost = 0
		} else {
			tr.lost++
		}
	}
	// Periodic detection: re-confirm matched tracks, spawn new ones.
	if t%w.DetectEvery == 0 {
		dets := w.Detector.Detect(gray)
		confirmed := make([]bool, len(w.tracks))
		for _, d := range dets {
			matched := false
			for i, tr := range w.tracks {
				x, y, bw, bh := tr.tracker.Box()
				if metrics.IoU(d, metrics.GroundTruth{X: x, Y: y, W: bw, H: bh}) > 0.25 {
					matched = true
					confirmed[i] = true
					tr.lost = 0
					break
				}
			}
			if !matched && d.X >= 0 && d.Y >= 0 && d.X+d.W <= gray.W && d.Y+d.H <= gray.H {
				w.tracks = append(w.tracks, &faceTrackState{
					tracker: NewTracker(gray, d.X, d.Y, d.W, d.H),
				})
				confirmed = append(confirmed, true)
			}
		}
		for i, tr := range w.tracks {
			if confirmed[i] {
				tr.missedConfirms = 0
			} else {
				tr.missedConfirms++
			}
		}
	}
	// Cull dead or stale tracks.
	live := w.tracks[:0]
	for _, tr := range w.tracks {
		if tr.lost <= w.MaxLostFrames && tr.missedConfirms <= MaxMissedConfirms {
			live = append(live, tr)
		}
	}
	w.tracks = live

	// Emit detections from live tracks.
	var out []metrics.Detection
	for _, tr := range w.tracks {
		x, y, bw, bh := tr.tracker.Box()
		score := tr.tracker.LastScore()
		if tr.lost > 0 {
			score *= 0.5 // coasting tracks are less confident
		}
		out = append(out, metrics.Detection{X: x, Y: y, W: bw, H: bh, Score: score})
	}
	return out
}
