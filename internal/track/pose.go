package track

import (
	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/synth"
)

// PoseWorkload runs the human-pose-estimation task: one NCC tracker per
// skeletal joint, initialized from the first frame's joint boxes (the
// standard pose-tracking protocol initializes from a detection on the first
// frame) and tracked through the decoded stream thereafter.
type PoseWorkload struct {
	trackers []*Tracker
}

// NewPoseWorkload initializes joint trackers from the first (decoded) frame
// and its ground-truth joint boxes.
func NewPoseWorkload(first *frame.Frame, joints []synth.Box) *PoseWorkload {
	gray := first
	if first.Format != frame.Gray8 {
		gray = first.ToGray()
	}
	w := &PoseWorkload{}
	for _, b := range joints {
		x := clampI(b.X, 0, gray.W-b.W)
		y := clampI(b.Y, 0, gray.H-b.H)
		bw := min(b.W, gray.W)
		bh := min(b.H, gray.H)
		tr := NewTracker(gray, x, y, bw, bh)
		tr.SearchRadius = 16 // joints move a few px/frame
		tr.MinScore = 0.25   // joints are small, low-texture patches
		w.trackers = append(w.trackers, tr)
	}
	return w
}

// Boxes returns the current joint rectangles (policy input).
func (w *PoseWorkload) Boxes() []synth.Box {
	out := make([]synth.Box, len(w.trackers))
	for i, tr := range w.trackers {
		x, y, bw, bh := tr.Box()
		out[i] = synth.Box{X: x, Y: y, W: bw, H: bh}
	}
	return out
}

// Step tracks every joint in the next frame and returns per-joint
// detections.
func (w *PoseWorkload) Step(img *frame.Frame) []metrics.Detection {
	gray := img
	if img.Format != frame.Gray8 {
		gray = img.ToGray()
	}
	out := make([]metrics.Detection, len(w.trackers))
	for i, tr := range w.trackers {
		ok := tr.Track(gray)
		x, y, bw, bh := tr.Box()
		score := tr.LastScore()
		if !ok {
			score *= 0.5
		}
		out[i] = metrics.Detection{X: x, Y: y, W: bw, H: bh, Score: score}
	}
	return out
}
