package track

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func TestNCCIdentity(t *testing.T) {
	world := synth.NewWorld(128, 128, 1)
	tmpl := world.Canvas.Crop(30, 30, 20, 20)
	if s := NCC(world.Canvas, tmpl, 30, 30); s < 0.999 {
		t.Errorf("self NCC = %v, want ~1", s)
	}
	if s := NCC(world.Canvas, tmpl, 60, 60); s >= 0.95 {
		t.Errorf("off-position NCC = %v, want < 0.95", s)
	}
}

func TestNCCEdgeCases(t *testing.T) {
	img := frame.New(10, 10, frame.Gray8)
	tmpl := frame.New(4, 4, frame.Gray8)
	if NCC(img, tmpl, -1, 0) != -1 || NCC(img, tmpl, 7, 0) != -1 {
		t.Error("out-of-bounds NCC should return -1")
	}
	// Flat image and template: zero variance → 0.
	if NCC(img, tmpl, 0, 0) != 0 {
		t.Error("flat NCC should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-gray NCC did not panic")
		}
	}()
	NCC(frame.New(8, 8, frame.RGB24), tmpl, 0, 0)
}

func TestNCCInvariantToGainOffset(t *testing.T) {
	world := synth.NewWorld(128, 128, 2)
	tmpl := world.Canvas.Crop(40, 40, 16, 16)
	// Scale/offset the image: NCC at the true position stays ~1.
	mod := world.Canvas.Clone()
	for i, v := range mod.Pix {
		mod.Pix[i] = uint8(min(int(float64(v)*0.7)+40, 255))
	}
	if s := NCC(mod, tmpl, 40, 40); s < 0.98 {
		t.Errorf("gain/offset NCC = %v, want ~1", s)
	}
}

func TestSearchNCCFindsPeak(t *testing.T) {
	world := synth.NewWorld(200, 200, 3)
	tmpl := world.Canvas.Crop(77, 91, 24, 24)
	x, y, s := SearchNCC(world.Canvas, tmpl, 50, 60, 110, 120, 1)
	if x != 77 || y != 91 || s < 0.999 {
		t.Errorf("peak at (%d,%d) score %v, want (77,91) ~1", x, y, s)
	}
}

func TestTrackerFollowsMovingPatch(t *testing.T) {
	world := synth.NewWorld(600, 600, 4)
	// Camera pans; a fixed world patch moves in image space.
	mk := func(ox float64) *frame.Frame {
		return world.Render(synth.Pose{X: 300 + ox, Y: 300}, 200, 200)
	}
	first := mk(0)
	tr := NewTracker(first, 80, 80, 30, 30)
	for i := 1; i <= 10; i++ {
		img := mk(float64(2 * i)) // content shifts left 2 px/frame
		if !tr.Track(img) {
			t.Fatalf("lost at frame %d (score %v)", i, tr.LastScore())
		}
	}
	x, _, _, _ := tr.Box()
	if x < 80-24 || x > 80-16 {
		t.Errorf("tracked x = %d, want ~60 after 20 px content shift", x)
	}
}

func TestTrackerReportsLossOnVanishedPattern(t *testing.T) {
	world := synth.NewWorld(300, 300, 5)
	img := world.Render(synth.Pose{X: 150, Y: 150}, 128, 128)
	tr := NewTracker(img, 40, 40, 24, 24)
	blank := frame.New(128, 128, frame.Gray8)
	blank.Fill(128)
	if tr.Track(blank) {
		t.Error("tracker matched a blank frame")
	}
	// Position coasts on failure.
	x, y, _, _ := tr.Box()
	if x != 40 || y != 40 {
		t.Error("position moved despite miss")
	}
}

func TestFaceDetectorFindsFaces(t *testing.T) {
	seq := synth.NewFaceSequence(320, 240, 40, 2, 6)
	det := NewFaceDetector()
	found := false
	for fi := 0; fi < 40; fi += 5 {
		truths := seq.Truth[fi]
		if len(truths) == 0 {
			continue
		}
		dets := det.Detect(seq.RenderFrame(fi))
		for _, d := range dets {
			for _, g := range truths {
				if metrics.IoU(d, metrics.GroundTruth{X: g.X, Y: g.Y, W: g.W, H: g.H}) > 0.4 {
					found = true
				}
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("detector never located a ground-truth face")
	}
}

func TestFaceWorkloadEndToEnd(t *testing.T) {
	seq := synth.NewFaceSequence(320, 240, 50, 2, 7)
	w := NewFaceWorkload(5)
	var results []metrics.FrameResult
	hadLiveTracks := false
	for fi := 0; fi < 50; fi++ {
		img := seq.RenderFrame(fi)
		dets := w.Step(img, fi)
		if len(w.Boxes()) > 0 {
			hadLiveTracks = true
		}
		var gts []metrics.GroundTruth
		for _, b := range seq.Truth[fi] {
			gts = append(gts, metrics.GroundTruth{X: b.X, Y: b.Y, W: b.W, H: b.H})
		}
		results = append(results, metrics.FrameResult{Detections: dets, Truths: gts})
	}
	mAP := metrics.MAP(results, 0.4)
	if mAP < 0.3 {
		t.Errorf("clean-frame face mAP = %.2f, want >= 0.3", mAP)
	}
	if !hadLiveTracks {
		t.Error("workload never held a live track")
	}
}

func TestFaceWorkloadDefaults(t *testing.T) {
	w := NewFaceWorkload(0)
	if w.DetectEvery != 10 {
		t.Errorf("DetectEvery = %d, want default 10", w.DetectEvery)
	}
}

func TestPoseWorkloadTracksJoints(t *testing.T) {
	seq := synth.NewPoseSequence(320, 240, 40, 8)
	first := seq.RenderFrame(0)
	w := NewPoseWorkload(first, seq.Truth[0])
	if len(w.Boxes()) != len(synth.Joints) {
		t.Fatalf("%d trackers, want %d", len(w.Boxes()), len(synth.Joints))
	}
	var results []metrics.FrameResult
	for fi := 1; fi < 40; fi++ {
		dets := w.Step(seq.RenderFrame(fi))
		var gts []metrics.GroundTruth
		for _, b := range seq.Truth[fi] {
			gts = append(gts, metrics.GroundTruth{X: b.X, Y: b.Y, W: b.W, H: b.H})
		}
		results = append(results, metrics.FrameResult{Detections: dets, Truths: gts})
	}
	acc := metrics.DetectionAccuracy(results, 0.3)
	if acc < 0.25 {
		t.Errorf("clean-frame pose accuracy = %.2f, want >= 0.25", acc)
	}
}

func TestNMS(t *testing.T) {
	dets := []metrics.Detection{
		{X: 0, Y: 0, W: 10, H: 10, Score: 0.9},
		{X: 1, Y: 1, W: 10, H: 10, Score: 0.8}, // overlaps first
		{X: 50, Y: 50, W: 10, H: 10, Score: 0.7},
	}
	out := nmsDetections(dets, 0.3)
	if len(out) != 2 {
		t.Fatalf("NMS kept %d, want 2", len(out))
	}
	if out[0].Score != 0.9 || out[1].Score != 0.7 {
		t.Errorf("NMS order wrong: %+v", out)
	}
	if nmsDetections(nil, 0.3) != nil {
		t.Error("empty NMS should return nil")
	}
}
