// Package track implements the face-detection and human-pose-estimation
// workloads of the paper's evaluation: template trackers over decoded
// frames, producing bounding boxes scored against ground truth with
// IoU/mAP. They substitute for RetinaNet on ChokePoint and PoseNet on
// PoseTrack; the substitution preserves the property the experiments
// measure — detection quality degrades as decoded frames lose spatial or
// temporal resolution.
package track

import (
	"math"

	"repro/internal/frame"
)

// NCC computes the normalized cross-correlation between a template and the
// same-size window of img at (x, y). Returns -1..1; flat windows yield 0.
func NCC(img, tmpl *frame.Frame, x, y int) float64 {
	if img.Format != frame.Gray8 || tmpl.Format != frame.Gray8 {
		panic("track: NCC requires Gray8")
	}
	tw, th := tmpl.W, tmpl.H
	if x < 0 || y < 0 || x+tw > img.W || y+th > img.H {
		return -1
	}
	n := float64(tw * th)
	var sumI, sumT, sumII, sumTT, sumIT float64
	for ty := 0; ty < th; ty++ {
		irow := (y + ty) * img.W
		trow := ty * tw
		for tx := 0; tx < tw; tx++ {
			iv := float64(img.Pix[irow+x+tx])
			tv := float64(tmpl.Pix[trow+tx])
			sumI += iv
			sumT += tv
			sumII += iv * iv
			sumTT += tv * tv
			sumIT += iv * tv
		}
	}
	varI := sumII - sumI*sumI/n
	varT := sumTT - sumT*sumT/n
	if varI <= 1e-9 || varT <= 1e-9 {
		return 0
	}
	cov := sumIT - sumI*sumT/n
	return cov / math.Sqrt(varI*varT)
}

// SearchNCC scans the window [x0, x1] x [y0, y1] of top-left positions with
// the given step and returns the best-scoring position.
func SearchNCC(img, tmpl *frame.Frame, x0, y0, x1, y1, step int) (bestX, bestY int, bestScore float64) {
	if step < 1 {
		step = 1
	}
	bestScore = -2
	for y := y0; y <= y1; y += step {
		for x := x0; x <= x1; x += step {
			if s := NCC(img, tmpl, x, y); s > bestScore {
				bestX, bestY, bestScore = x, y, s
			}
		}
	}
	return bestX, bestY, bestScore
}

// Tracker follows one object with NCC template matching: coarse-to-fine
// search in a window around the last known position.
type Tracker struct {
	tmpl *frame.Frame
	x, y int // current top-left
	// SearchRadius bounds the displacement searched per frame.
	SearchRadius int
	// MinScore below which the track is reported lost for the frame.
	MinScore float64
	// Adapt blends the matched window into the template (0 disables,
	// 0.1 is a typical drift-resistant rate).
	Adapt float64

	lastScore float64
}

// NewTracker initializes a tracker from the template cropped at (x, y) in
// the first frame.
func NewTracker(first *frame.Frame, x, y, w, h int) *Tracker {
	return &Tracker{
		tmpl:         first.Crop(x, y, w, h).ToGray(),
		x:            x,
		y:            y,
		SearchRadius: 24,
		MinScore:     0.35,
		Adapt:        0.08,
	}
}

// Box returns the current track rectangle.
func (t *Tracker) Box() (x, y, w, h int) { return t.x, t.y, t.tmpl.W, t.tmpl.H }

// LastScore returns the NCC score of the most recent Track call.
func (t *Tracker) LastScore() float64 { return t.lastScore }

// Track searches for the object in the next frame. It reports whether the
// match cleared MinScore; on failure the position is left unchanged
// (coasting).
func (t *Tracker) Track(img *frame.Frame) bool {
	r := t.SearchRadius
	x0 := clampI(t.x-r, 0, img.W-t.tmpl.W)
	y0 := clampI(t.y-r, 0, img.H-t.tmpl.H)
	x1 := clampI(t.x+r, 0, img.W-t.tmpl.W)
	y1 := clampI(t.y+r, 0, img.H-t.tmpl.H)
	// Coarse pass.
	cx, cy, _ := SearchNCC(img, t.tmpl, x0, y0, x1, y1, 3)
	// Fine pass around the coarse peak.
	fx0 := clampI(cx-3, 0, img.W-t.tmpl.W)
	fy0 := clampI(cy-3, 0, img.H-t.tmpl.H)
	fx1 := clampI(cx+3, 0, img.W-t.tmpl.W)
	fy1 := clampI(cy+3, 0, img.H-t.tmpl.H)
	bx, by, score := SearchNCC(img, t.tmpl, fx0, fy0, fx1, fy1, 1)
	t.lastScore = score
	if score < t.MinScore {
		return false
	}
	t.x, t.y = bx, by
	if t.Adapt > 0 {
		window := img.Crop(bx, by, t.tmpl.W, t.tmpl.H)
		for i := range t.tmpl.Pix {
			t.tmpl.Pix[i] = uint8(float64(t.tmpl.Pix[i])*(1-t.Adapt) + float64(window.Pix[i])*t.Adapt + 0.5)
		}
	}
	return true
}

func clampI(v, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
