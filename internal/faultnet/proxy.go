package faultnet

import (
	"bufio"
	"encoding/binary"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// Rule scripts one deterministic fault against the Nth wire message in a
// direction. Ordinals are 1-based and counted per proxied connection, so a
// sequential client addresses "the reply to my 4th request" exactly.
type Rule struct {
	// Dir selects which traffic stream the rule watches.
	Dir Dir
	// Nth is the 1-based ordinal of the wire message the rule fires on.
	Nth int
	// Delay sleeps before forwarding the message — combined with a client
	// RequestTimeout below it, this is the late-reply desync scenario.
	Delay time.Duration
	// TruncateTo, when > 0, forwards the frame header claiming the full
	// payload length but only the first TruncateTo payload bytes, then cuts
	// the connection: the receiver sees a short read mid-message.
	TruncateTo int
	// Drop cuts the connection instead of forwarding the message.
	Drop bool
	// Once consumes the rule after its first firing, so it cannot re-fire
	// on the same ordinal of a later (e.g. reconnected) connection.
	Once bool
}

// ProxyConfig tunes a Proxy.
type ProxyConfig struct {
	// Rules are the scripted per-message faults (evaluated in order; the
	// first match wins).
	Rules []Rule
	// ClientFaults, when non-zero, wraps the client-facing side of every
	// proxied connection with random byte-level faults.
	ClientFaults Faults
	// MaxPayload caps forwarded message payloads (default
	// wire.DefaultMaxPayload).
	MaxPayload int
}

// Proxy is a loopback listener that relays rpxd wire messages to a backend
// through fault injection. One accepted connection maps to one backend
// connection; cutting one side cuts both.
type Proxy struct {
	ln      net.Listener
	backend string
	cfg     ProxyConfig

	mu     sync.Mutex
	rules  []Rule
	conns  map[net.Conn]struct{}
	nconns int
	closed bool
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on a fresh loopback port in front of backend.
func NewProxy(backend string, cfg ProxyConfig) (*Proxy, error) {
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = wire.DefaultMaxPayload
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:      ln,
		backend: backend,
		cfg:     cfg,
		rules:   append([]Rule(nil), cfg.Rules...),
		conns:   make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's dialable address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// AddRule appends a scripted rule; it applies to connections accepted from
// now on and to not-yet-reached ordinals of live ones.
func (p *Proxy) AddRule(r Rule) {
	p.mu.Lock()
	p.rules = append(p.rules, r)
	p.mu.Unlock()
}

// Close stops the listener and cuts every proxied connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			return
		}
		seed := p.cfg.ClientFaults.Seed + int64(p.nconns)
		p.nconns++
		p.conns[client] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.relay(client, seed)
	}
}

// track registers a backend conn for Close teardown.
func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// relay proxies one client connection to one backend connection, applying
// scripted rules message by message and, when configured, random byte-level
// faults on the client-facing side.
func (p *Proxy) relay(client net.Conn, seed int64) {
	defer p.wg.Done()
	defer p.untrack(client)
	defer client.Close()

	backend, err := net.DialTimeout("tcp", p.backend, 10*time.Second)
	if err != nil {
		return
	}
	p.track(backend)
	defer p.untrack(backend)
	defer backend.Close()

	var cface net.Conn = client
	if !p.cfg.ClientFaults.zero() {
		f := p.cfg.ClientFaults
		f.Seed = seed
		cface = Wrap(client, f)
	}

	// Cutting either side must unblock the other direction's reader.
	cut := func() {
		client.Close()
		backend.Close()
	}
	var once sync.Once
	done := func() { once.Do(cut) }

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer done()
		p.pump(ClientToServer, cface, backend)
	}()
	go func() {
		defer wg.Done()
		defer done()
		p.pump(ServerToClient, backend, cface)
	}()
	wg.Wait()
}

// match pops the first rule firing on the nth message in dir, consuming it
// when it is marked Once.
func (p *Proxy) match(dir Dir, nth int) (Rule, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, r := range p.rules {
		if r.Dir == dir && r.Nth == nth {
			if r.Once {
				p.rules = append(p.rules[:i], p.rules[i+1:]...)
			}
			return r, true
		}
	}
	return Rule{}, false
}

// pump forwards framed wire messages from src to dst until either side
// fails, applying the first matching scripted rule to each message.
func (p *Proxy) pump(dir Dir, src, dst net.Conn) {
	br := bufio.NewReader(src)
	for nth := 1; ; nth++ {
		typ, payload, err := wire.ReadMessage(br, p.cfg.MaxPayload)
		if err != nil {
			return
		}
		if r, ok := p.match(dir, nth); ok {
			if r.Delay > 0 {
				time.Sleep(r.Delay)
			}
			if r.Drop {
				return
			}
			if r.TruncateTo > 0 && r.TruncateTo < len(payload) {
				// Claim the full length, deliver a prefix, cut the stream:
				// the receiver's framing is left mid-message.
				hdr := make([]byte, 5)
				binary.LittleEndian.PutUint32(hdr, uint32(len(payload)))
				hdr[4] = typ
				if _, err := dst.Write(hdr); err == nil {
					dst.Write(payload[:r.TruncateTo])
				}
				return
			}
		}
		if err := wire.WriteMessage(dst, typ, payload, p.cfg.MaxPayload); err != nil {
			// Injected faults on the client-facing conn surface here too.
			return
		}
	}
}
