package faultnet

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// echoBackend accepts wire-framed messages and echoes each back with its
// type incremented — enough structure to verify framing survives the proxy.
func echoBackend(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					typ, payload, err := wire.ReadMessage(br, 0)
					if err != nil {
						return
					}
					if err := wire.WriteMessage(conn, typ+1, payload, 0); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func roundTrip(t *testing.T, conn net.Conn, br *bufio.Reader, typ byte, payload []byte, timeout time.Duration) (byte, []byte, error) {
	t.Helper()
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if err := wire.WriteMessage(conn, typ, payload, 0); err != nil {
		return 0, nil, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	return wire.ReadMessage(br, 0)
}

func TestProxyPassthrough(t *testing.T) {
	p, err := NewProxy(echoBackend(t), ProxyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	for i := 0; i < 10; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 100+i)
		typ, got, err := roundTrip(t, conn, br, byte(i), payload, 5*time.Second)
		if err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
		if typ != byte(i)+1 || !bytes.Equal(got, payload) {
			t.Fatalf("round trip %d corrupted: type %d len %d", i, typ, len(got))
		}
	}
}

func TestProxyDelayRule(t *testing.T) {
	const delay = 300 * time.Millisecond
	p, err := NewProxy(echoBackend(t), ProxyConfig{
		Rules: []Rule{{Dir: ServerToClient, Nth: 2, Delay: delay}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	if _, _, err := roundTrip(t, conn, br, 1, []byte("a"), 5*time.Second); err != nil {
		t.Fatalf("reply 1: %v", err)
	}
	// Reply 2 is delayed past a 50ms deadline: the read must time out.
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	if err := wire.WriteMessage(conn, 2, []byte("b"), 0); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := wire.ReadMessage(br, 0); err == nil {
		t.Fatal("delayed reply arrived before the deadline")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("want timeout, got %v", err)
	}
	// After the delay elapses the reply is still delivered — late, intact.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := wire.ReadMessage(br, 0)
	if err != nil || typ != 3 || string(payload) != "b" {
		t.Fatalf("late reply = %d %q %v", typ, payload, err)
	}
}

func TestProxyTruncateRule(t *testing.T) {
	p, err := NewProxy(echoBackend(t), ProxyConfig{
		Rules: []Rule{{Dir: ServerToClient, Nth: 1, TruncateTo: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	_, _, err = roundTrip(t, conn, br, 1, bytes.Repeat([]byte{7}, 64), 5*time.Second)
	if err == nil {
		t.Fatal("truncated reply read as complete")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want short-payload error, got %v", err)
	}
}

func TestProxyDropRule(t *testing.T) {
	p, err := NewProxy(echoBackend(t), ProxyConfig{
		Rules: []Rule{{Dir: ClientToServer, Nth: 1, Drop: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, _, err := roundTrip(t, conn, br, 1, []byte("x"), 2*time.Second); err == nil {
		t.Fatal("dropped request produced a reply")
	}
}

// TestConnFaultsDeterministic replays the same seed against the same I/O
// sequence twice and requires identical fault outcomes.
func TestConnFaultsDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		var outcomes []string
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // drain whatever arrives
			defer wg.Done()
			io.Copy(io.Discard, b)
		}()
		c := Wrap(a, Faults{Seed: seed, ResetProb: 0.3, TruncateProb: 0.3, PartialWriteProb: 0.3})
		for i := 0; i < 20; i++ {
			_, err := c.Write(bytes.Repeat([]byte{byte(i)}, 32))
			if err != nil {
				outcomes = append(outcomes, err.Error())
				break
			}
			outcomes = append(outcomes, "ok")
		}
		a.Close()
		wg.Wait()
		return outcomes
	}
	first, second := run(42), run(42)
	if len(first) != len(second) {
		t.Fatalf("runs diverged: %d vs %d ops", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("op %d: %q vs %q", i, first[i], second[i])
		}
	}
	if len(first) == 20 && first[19] == "ok" {
		t.Log("seed 42 injected no terminal fault in 20 ops (allowed, but unusual)")
	}
}

// TestProxyRandomFaultsEventuallyCut drives traffic through a proxy with
// byte-level client-side faults until the connection dies, proving the
// random profile reaches its reset/truncate paths.
func TestProxyRandomFaultsEventuallyCut(t *testing.T) {
	p, err := NewProxy(echoBackend(t), ProxyConfig{
		ClientFaults: Faults{Seed: 7, ResetProb: 0.05, TruncateProb: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	for i := 0; i < 500; i++ {
		if _, _, err := roundTrip(t, conn, br, 1, bytes.Repeat([]byte{byte(i)}, 200), 2*time.Second); err != nil {
			return // fault landed, test proven
		}
	}
	t.Fatal("500 round trips survived 5% reset + 5% truncate faults")
}
