// Package faultnet injects transport faults — latency, partial writes,
// mid-message connection resets, and byte truncation — into net.Conn
// traffic, driven by a seeded RNG so every failure a test finds reproduces
// from its seed.
//
// Two layers compose:
//
//   - Conn wraps any net.Conn with a random byte-level fault profile
//     (Faults): each Read/Write may sleep, split, truncate, or reset.
//   - Proxy is a loopback listener that forwards rpxd wire messages between
//     a client and a backend through fault-injecting conns, plus scripted
//     per-message Rules (delay the Nth reply, truncate it mid-frame, drop
//     the connection) for deterministic regression tests.
//
// The package is test infrastructure: the rpxd client/server e2e matrix
// uses it to prove that a slow, flaky, or hostile network can slow calls
// down or fail them with typed errors, but never make a completed call
// return the wrong bytes.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Dir labels a proxied traffic direction.
type Dir int

// Traffic directions through a Proxy.
const (
	// ClientToServer is request traffic (the dialing side to the backend).
	ClientToServer Dir = iota
	// ServerToClient is reply traffic (the backend to the dialing side).
	ServerToClient
)

// String names the direction in test output.
func (d Dir) String() string {
	if d == ClientToServer {
		return "client→server"
	}
	return "server→client"
}

// Faults is a random byte-level fault profile. All probabilities are per
// I/O operation in [0, 1]; zero values disable that fault.
type Faults struct {
	// Seed seeds the RNG; the same seed replays the same fault sequence
	// against the same I/O sequence.
	Seed int64
	// LatencyProb is the chance an operation first sleeps a random duration
	// drawn uniformly from [LatencyMin, LatencyMax].
	LatencyProb float64
	// LatencyMin and LatencyMax bound the injected sleep.
	LatencyMin, LatencyMax time.Duration
	// PartialWriteProb is the chance a Write is split into two chunks with a
	// pause between them. The bytes still all arrive — this exercises
	// short-write and mid-message-deadline handling, not data loss.
	PartialWriteProb float64
	// ResetProb is the chance an operation closes the connection and fails
	// instead of transferring anything.
	ResetProb float64
	// TruncateProb is the chance a Write delivers only a prefix of its
	// buffer and then closes the connection — a mid-message cut.
	TruncateProb float64
}

// zero reports whether the profile injects nothing.
func (f Faults) zero() bool {
	return f.LatencyProb == 0 && f.PartialWriteProb == 0 && f.ResetProb == 0 && f.TruncateProb == 0
}

// Conn wraps a net.Conn with the Faults profile. Safe for one reader and
// one writer goroutine, like net.Conn itself.
type Conn struct {
	net.Conn

	mu  sync.Mutex // guards rng
	rng *rand.Rand
	f   Faults
}

// Wrap applies a fault profile to an existing connection.
func Wrap(c net.Conn, f Faults) *Conn {
	return &Conn{Conn: c, rng: rand.New(rand.NewSource(f.Seed)), f: f}
}

// roll draws the fault decisions for one operation under the RNG lock, so
// concurrent reader and writer goroutines stay race-free and the sleep
// itself happens outside the lock.
type decision struct {
	sleep    time.Duration
	reset    bool
	truncate bool // writes only: deliver a prefix, then close
	split    bool // writes only: two chunks with a pause
}

func (c *Conn) roll(write bool) decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	var d decision
	if c.f.LatencyProb > 0 && c.rng.Float64() < c.f.LatencyProb {
		span := c.f.LatencyMax - c.f.LatencyMin
		d.sleep = c.f.LatencyMin
		if span > 0 {
			d.sleep += time.Duration(c.rng.Int63n(int64(span)))
		}
	}
	switch {
	case c.f.ResetProb > 0 && c.rng.Float64() < c.f.ResetProb:
		d.reset = true
	case write && c.f.TruncateProb > 0 && c.rng.Float64() < c.f.TruncateProb:
		d.truncate = true
	case write && c.f.PartialWriteProb > 0 && c.rng.Float64() < c.f.PartialWriteProb:
		d.split = true
	}
	return d
}

// Read injects latency and resets in front of the wrapped Read.
func (c *Conn) Read(p []byte) (int, error) {
	d := c.roll(false)
	if d.sleep > 0 {
		time.Sleep(d.sleep)
	}
	if d.reset {
		c.Conn.Close()
		return 0, fmt.Errorf("faultnet: injected read reset: %w", net.ErrClosed)
	}
	return c.Conn.Read(p)
}

// Write injects latency, resets, truncation, and partial writes in front of
// the wrapped Write.
func (c *Conn) Write(p []byte) (int, error) {
	d := c.roll(true)
	if d.sleep > 0 {
		time.Sleep(d.sleep)
	}
	switch {
	case d.reset:
		c.Conn.Close()
		return 0, fmt.Errorf("faultnet: injected write reset: %w", net.ErrClosed)
	case d.truncate && len(p) > 1:
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.Conn.Close()
		return n, fmt.Errorf("faultnet: injected truncation after %d/%d bytes: %w", n, len(p), net.ErrClosed)
	case d.split && len(p) > 1:
		n, err := c.Conn.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		time.Sleep(time.Millisecond)
		m, err := c.Conn.Write(p[len(p)/2:])
		return n + m, err
	}
	return c.Conn.Write(p)
}
