package features

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/frame"
)

// Detector extracts oriented BRIEF keypoints over an image pyramid — the
// ORB-style frontend the paper's V-SLAM workload uses.
type Detector struct {
	// NumLevels is the pyramid depth (ORB default 8).
	NumLevels int
	// ScaleFactor is the per-level downscale (ORB default 1.2).
	ScaleFactor float64
	// Threshold is the FAST intensity threshold.
	Threshold int
	// MaxFeatures caps the returned keypoints, keeping the strongest
	// responses (ORB-SLAM uses ~1000-1500 per frame).
	MaxFeatures int
	// PatchSize is the descriptor patch diameter at level scale.
	PatchSize int
	// BlurSigma smooths each level before description (0 disables).
	BlurSigma float64
	// GridCell, when positive, selects the MaxFeatures keypoints with an
	// even spatial distribution over GridCell-sized buckets
	// (DistributeGrid) instead of globally by response.
	GridCell int
	// HarrisRank re-scores FAST candidates with the Harris corner measure
	// before selection, as ORB does; FAST scores saturate with contrast
	// and rank unstably.
	HarrisRank bool
}

// NewDetector returns a detector with ORB-like defaults.
func NewDetector() *Detector {
	return &Detector{
		NumLevels:   6,
		ScaleFactor: 1.2,
		Threshold:   20,
		MaxFeatures: 1000,
		PatchSize:   31,
		BlurSigma:   1.0,
	}
}

// briefPattern is the fixed set of 256 pixel-pair tests, drawn once from an
// isotropic Gaussian over the patch, as in the original BRIEF/ORB papers.
// A fixed seed keeps descriptors comparable across runs and processes.
var briefPattern [256][4]float64

func init() {
	rng := rand.New(rand.NewSource(0x0B5E55ED))
	sigma := 31.0 / 5
	clampP := func(v float64) float64 {
		if v < -15 {
			return -15
		}
		if v > 15 {
			return 15
		}
		return v
	}
	for i := range briefPattern {
		briefPattern[i] = [4]float64{
			clampP(rng.NormFloat64() * sigma),
			clampP(rng.NormFloat64() * sigma),
			clampP(rng.NormFloat64() * sigma),
			clampP(rng.NormFloat64() * sigma),
		}
	}
}

// Detect extracts keypoints with descriptors from a Gray8 frame.
func (d *Detector) Detect(img *frame.Frame) []KeyPoint {
	if img.Format != frame.Gray8 {
		panic("features: Detect requires Gray8")
	}
	margin := d.PatchSize/2 + 2

	var kps []KeyPoint
	level := img
	scale := 1.0
	for lvl := 0; lvl < d.NumLevels; lvl++ {
		if lvl > 0 {
			nw := int(float64(img.W)/math.Pow(d.ScaleFactor, float64(lvl)) + 0.5)
			nh := int(float64(img.H)/math.Pow(d.ScaleFactor, float64(lvl)) + 0.5)
			if nw < 2*margin+8 || nh < 2*margin+8 {
				break
			}
			level = img.ResizeBilinear(nw, nh)
			scale = float64(img.W) / float64(nw)
		}
		work := level
		if d.BlurSigma > 0 {
			work = level.GaussianBlur(d.BlurSigma)
		}
		cands := detectFASTLevel(work, d.Threshold, margin)
		if d.HarrisRank {
			rescoreHarris(work, cands, 3)
		}
		for _, c := range cands {
			x, y := int(c[0]), int(c[1])
			angle := orientation(work, x, y, d.PatchSize/2)
			kp := KeyPoint{
				X:        c[0] * scale,
				Y:        c[1] * scale,
				Octave:   lvl,
				Size:     float64(d.PatchSize) * scale,
				Angle:    angle,
				Response: c[2],
			}
			describe(work, x, y, angle, &kp.Desc)
			kps = append(kps, kp)
		}
	}

	if d.MaxFeatures > 0 && len(kps) > d.MaxFeatures {
		if d.GridCell > 0 {
			return DistributeGrid(kps, img.W, img.H, d.GridCell, d.MaxFeatures)
		}
		sort.Slice(kps, func(i, j int) bool { return kps[i].Response > kps[j].Response })
		kps = kps[:d.MaxFeatures]
	}
	// Deterministic output order: raster position.
	sort.Slice(kps, func(i, j int) bool {
		if kps[i].Y != kps[j].Y {
			return kps[i].Y < kps[j].Y
		}
		return kps[i].X < kps[j].X
	})
	return kps
}

// orientation computes the intensity-centroid angle of the patch around
// (x, y), the ORB orientation measure.
func orientation(img *frame.Frame, x, y, radius int) float64 {
	var m01, m10 float64
	for dy := -radius; dy <= radius; dy++ {
		yy := y + dy
		if yy < 0 || yy >= img.H {
			continue
		}
		for dx := -radius; dx <= radius; dx++ {
			xx := x + dx
			if xx < 0 || xx >= img.W {
				continue
			}
			if dx*dx+dy*dy > radius*radius {
				continue
			}
			v := float64(img.Pix[yy*img.W+xx])
			m10 += float64(dx) * v
			m01 += float64(dy) * v
		}
	}
	return math.Atan2(m01, m10)
}

// describe fills a steered BRIEF-256 descriptor for the patch at (x, y)
// rotated by angle.
func describe(img *frame.Frame, x, y int, angle float64, desc *[DescriptorBytes]byte) {
	sin, cos := math.Sincos(angle)
	sample := func(dx, dy float64) uint8 {
		rx := cos*dx - sin*dy
		ry := sin*dx + cos*dy
		return img.GrayAtClamped(x+int(rx+0.5), y+int(ry+0.5))
	}
	for i := range desc {
		desc[i] = 0
	}
	for i, p := range briefPattern {
		if sample(p[0], p[1]) < sample(p[2], p[3]) {
			desc[i/8] |= 1 << uint(i%8)
		}
	}
}
