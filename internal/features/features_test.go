package features

import (
	"math"
	"testing"

	"repro/internal/frame"
	"repro/internal/synth"
)

func TestHammingDist(t *testing.T) {
	var a, b [DescriptorBytes]byte
	if HammingDist(&a, &b) != 0 {
		t.Error("identical descriptors should have distance 0")
	}
	b[0] = 0xFF
	if HammingDist(&a, &b) != 8 {
		t.Errorf("distance = %d, want 8", HammingDist(&a, &b))
	}
	for i := range b {
		a[i], b[i] = 0x00, 0xFF
	}
	if HammingDist(&a, &b) != 256 {
		t.Errorf("distance = %d, want 256", HammingDist(&a, &b))
	}
}

func TestFASTDetectsCorner(t *testing.T) {
	// A bright square on dark background: its corners are FAST corners,
	// the flat interior and edges are not.
	img := frame.New(40, 40, frame.Gray8)
	img.FillRect(10, 10, 20, 20, 220)
	pts := detectFASTLevel(img, 20, 3)
	if len(pts) == 0 {
		t.Fatal("no corners on a high-contrast square")
	}
	nearCorner := func(x, y float64) bool {
		for _, c := range [][2]float64{{10, 10}, {29, 10}, {10, 29}, {29, 29}} {
			if math.Hypot(x-c[0], y-c[1]) <= 3 {
				return true
			}
		}
		return false
	}
	for _, p := range pts {
		if !nearCorner(p[0], p[1]) {
			t.Errorf("spurious corner at (%.0f,%.0f)", p[0], p[1])
		}
	}
}

func TestFASTRejectsFlatAndEdge(t *testing.T) {
	flat := frame.New(32, 32, frame.Gray8)
	flat.Fill(128)
	if pts := detectFASTLevel(flat, 20, 3); len(pts) != 0 {
		t.Errorf("corners on flat image: %v", pts)
	}
	// A long straight vertical edge has no FAST-9 corners away from ends.
	edge := frame.New(32, 32, frame.Gray8)
	edge.FillRect(16, 0, 16, 32, 220)
	for _, p := range detectFASTLevel(edge, 20, 3) {
		if p[1] > 6 && p[1] < 26 {
			t.Errorf("corner on straight edge at (%.0f,%.0f)", p[0], p[1])
		}
	}
}

func TestDetectOnSyntheticWorld(t *testing.T) {
	world := synth.NewWorld(512, 512, 1)
	img := world.Render(synth.Pose{X: 256, Y: 256}, 320, 240)
	det := NewDetector()
	kps := det.Detect(img)
	if len(kps) < 100 {
		t.Fatalf("only %d keypoints on textured scene, want >= 100", len(kps))
	}
	if len(kps) > det.MaxFeatures {
		t.Fatalf("%d keypoints exceeds cap %d", len(kps), det.MaxFeatures)
	}
	octaves := map[int]int{}
	for _, kp := range kps {
		if kp.X < 0 || kp.X >= 320 || kp.Y < 0 || kp.Y >= 240 {
			t.Fatalf("keypoint outside frame: %v", kp)
		}
		if kp.Size <= 0 {
			t.Fatalf("non-positive size: %v", kp)
		}
		octaves[kp.Octave]++
	}
	if len(octaves) < 2 {
		t.Errorf("keypoints from only %d octave(s); pyramid not engaged", len(octaves))
	}
}

func TestDetectRequiresGray(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RGB input did not panic")
		}
	}()
	NewDetector().Detect(frame.New(64, 64, frame.RGB24))
}

func TestDescriptorsMatchAcrossTranslation(t *testing.T) {
	// The same scene content shifted by a few pixels must match: detect in
	// two overlapping viewports and check displacement consistency.
	world := synth.NewWorld(600, 600, 2)
	a := world.Render(synth.Pose{X: 300, Y: 300}, 256, 256)
	b := world.Render(synth.Pose{X: 305, Y: 303}, 256, 256)
	det := NewDetector()
	ka, kb := det.Detect(a), det.Detect(b)
	matches := MatchBrute(ka, kb, MatchOptions{MaxDist: 40, CrossCheck: true, MaxSpatialDist: 30})
	if len(matches) < 20 {
		t.Fatalf("only %d matches between shifted views", len(matches))
	}
	// The dominant displacement should be ~(-5, -3) (world moved +5,+3).
	var dx, dy float64
	for _, m := range matches {
		dx += kb[m.B].X - ka[m.A].X
		dy += kb[m.B].Y - ka[m.A].Y
	}
	dx /= float64(len(matches))
	dy /= float64(len(matches))
	if math.Abs(dx+5) > 1.5 || math.Abs(dy+3) > 1.5 {
		t.Errorf("mean displacement (%.2f, %.2f), want ~(-5, -3)", dx, dy)
	}
}

func TestMatchCrossCheckSymmetric(t *testing.T) {
	world := synth.NewWorld(400, 400, 3)
	img := world.Render(synth.Pose{X: 200, Y: 200}, 200, 200)
	det := NewDetector()
	kps := det.Detect(img)
	// Self-match with cross-check: every keypoint matches itself at distance 0.
	matches := MatchBrute(kps, kps, MatchOptions{CrossCheck: true})
	if len(matches) != len(kps) {
		t.Fatalf("%d self-matches for %d keypoints", len(matches), len(kps))
	}
	for _, m := range matches {
		if m.A != m.B || m.Dist != 0 {
			t.Fatalf("bad self-match %+v", m)
		}
	}
}

func TestMatchMaxDistFilters(t *testing.T) {
	a := []KeyPoint{{}}
	b := []KeyPoint{{}}
	b[0].Desc[0] = 0xFF // distance 8
	if got := MatchBrute(a, b, MatchOptions{MaxDist: 4}); len(got) != 0 {
		t.Errorf("match beyond MaxDist returned: %v", got)
	}
	if got := MatchBrute(a, b, MatchOptions{MaxDist: 8}); len(got) != 1 {
		t.Errorf("match within MaxDist dropped")
	}
}

func TestMatchSpatialGate(t *testing.T) {
	a := []KeyPoint{{X: 0, Y: 0}}
	b := []KeyPoint{{X: 100, Y: 100}}
	if got := MatchBrute(a, b, MatchOptions{MaxSpatialDist: 10}); len(got) != 0 {
		t.Error("spatially distant match not gated")
	}
	if got := MatchBrute(a, b, MatchOptions{MaxSpatialDist: 200}); len(got) != 1 {
		t.Error("spatially near match dropped")
	}
}

func TestOrientationPointsAtBrightSide(t *testing.T) {
	img := frame.New(31, 31, frame.Gray8)
	// Bright on the right half: centroid points along +x.
	img.FillRect(16, 0, 15, 31, 255)
	ang := orientation(img, 15, 15, 10)
	if math.Abs(ang) > 0.3 {
		t.Errorf("angle = %.2f rad, want ~0 (pointing +x)", ang)
	}
	// Bright on the bottom: +y.
	img2 := frame.New(31, 31, frame.Gray8)
	img2.FillRect(0, 16, 31, 15, 255)
	ang2 := orientation(img2, 15, 15, 10)
	if math.Abs(ang2-math.Pi/2) > 0.3 {
		t.Errorf("angle = %.2f rad, want ~pi/2", ang2)
	}
}

func TestKeyPointString(t *testing.T) {
	kp := KeyPoint{X: 1.5, Y: 2.5, Octave: 3, Size: 37.2, Response: 80}
	if kp.String() == "" {
		t.Error("empty String()")
	}
}

func BenchmarkDetectVGA(b *testing.B) {
	world := synth.NewWorld(1024, 1024, 4)
	img := world.Render(synth.Pose{X: 512, Y: 512}, 640, 480)
	det := NewDetector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = det.Detect(img)
	}
}

func BenchmarkMatch500x500(b *testing.B) {
	world := synth.NewWorld(1024, 1024, 5)
	det := NewDetector()
	det.MaxFeatures = 500
	ka := det.Detect(world.Render(synth.Pose{X: 500, Y: 500}, 640, 480))
	kb := det.Detect(world.Render(synth.Pose{X: 505, Y: 502}, 640, 480))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatchBrute(ka, kb, MatchOptions{CrossCheck: true, MaxSpatialDist: 40})
	}
}

func TestDistributeGridEvenness(t *testing.T) {
	// 90 keypoints piled in one corner, 10 spread elsewhere: plain top-N
	// by response keeps the pile; grid distribution keeps the spread.
	var kps []KeyPoint
	for i := 0; i < 90; i++ {
		kps = append(kps, KeyPoint{X: float64(i % 10), Y: float64(i / 10), Response: 1000})
	}
	for i := 0; i < 10; i++ {
		kps = append(kps, KeyPoint{X: float64(50 + i*20), Y: 200, Response: 10})
	}
	out := DistributeGrid(kps, 320, 240, 32, 20)
	if len(out) != 20 {
		t.Fatalf("got %d keypoints", len(out))
	}
	spread := 0
	for _, kp := range out {
		if kp.Y == 200 {
			spread++
		}
	}
	if spread < 8 {
		t.Errorf("only %d of 10 spread keypoints survived; distribution not even", spread)
	}
}

func TestDistributeGridNoOpUnderBudget(t *testing.T) {
	kps := []KeyPoint{{X: 1, Y: 1}, {X: 2, Y: 2}}
	if got := DistributeGrid(kps, 100, 100, 16, 10); len(got) != 2 {
		t.Errorf("under-budget input truncated to %d", len(got))
	}
	if got := DistributeGrid(kps, 100, 100, 16, 0); len(got) != 2 {
		t.Errorf("zero budget should be no-op, got %d", len(got))
	}
}

func TestDistributeGridTinyCells(t *testing.T) {
	var kps []KeyPoint
	for i := 0; i < 50; i++ {
		kps = append(kps, KeyPoint{X: float64(i * 6), Y: float64(i * 4), Response: float64(i)})
	}
	out := DistributeGrid(kps, 320, 240, 1 /* clamps to 8 */, 25)
	if len(out) != 25 {
		t.Fatalf("got %d", len(out))
	}
	// Output sorted by raster position.
	for i := 1; i < len(out); i++ {
		if out[i].Y < out[i-1].Y {
			t.Fatal("output not raster-sorted")
		}
	}
}

func TestDetectorGridCellOption(t *testing.T) {
	world := synth.NewWorld(512, 512, 9)
	img := world.Render(synth.Pose{X: 256, Y: 256}, 320, 240)
	det := NewDetector()
	det.MaxFeatures = 40
	plain := det.Detect(img)
	det.GridCell = 32
	grid := det.Detect(img)
	if len(grid) == 0 || len(grid) > 40 {
		t.Fatalf("grid selection returned %d", len(grid))
	}
	// Grid selection must cover at least as many 32px cells as plain top-N.
	cells := func(kps []KeyPoint) int {
		seen := map[[2]int]bool{}
		for _, kp := range kps {
			seen[[2]int{int(kp.X) / 32, int(kp.Y) / 32}] = true
		}
		return len(seen)
	}
	if cells(grid) < cells(plain) {
		t.Errorf("grid covers %d cells, plain %d — grid should not be worse", cells(grid), cells(plain))
	}
}

func TestHarrisResponseRanksCornerAboveEdge(t *testing.T) {
	img := frame.New(64, 64, frame.Gray8)
	img.FillRect(20, 20, 24, 24, 220) // square: corners + edges
	corner := harrisResponse(img, 20, 20, 3)
	edge := harrisResponse(img, 32, 20, 3) // middle of the top edge
	flat := harrisResponse(img, 8, 8, 3)
	if corner <= edge {
		t.Errorf("corner response %.0f <= edge %.0f", corner, edge)
	}
	if edge >= corner/2 {
		t.Errorf("edge response %.0f not well below corner %.0f", edge, corner)
	}
	if flat >= 1 {
		t.Errorf("flat response %.0f, want ~0", flat)
	}
}

func TestDetectorHarrisRank(t *testing.T) {
	world := synth.NewWorld(512, 512, 11)
	img := world.Render(synth.Pose{X: 256, Y: 256}, 320, 240)
	det := NewDetector()
	det.MaxFeatures = 80
	det.HarrisRank = true
	kps := det.Detect(img)
	if len(kps) == 0 || len(kps) > 80 {
		t.Fatalf("got %d keypoints", len(kps))
	}
	// Harris-ranked detection still matches across a small shift.
	img2 := world.Render(synth.Pose{X: 259, Y: 257}, 320, 240)
	kps2 := det.Detect(img2)
	matches := MatchBrute(kps, kps2, MatchOptions{CrossCheck: true, MaxSpatialDist: 20})
	if len(matches) < 15 {
		t.Errorf("only %d matches with Harris ranking", len(matches))
	}
}
