package features

import "repro/internal/frame"

// FAST-9/16 corner detection: a pixel is a corner when a contiguous arc of
// at least 9 of the 16 Bresenham-circle pixels (radius 3) is uniformly
// brighter or darker than the center by more than the threshold.

// circleOffsets are the 16 (dx, dy) offsets of the radius-3 Bresenham
// circle, in clockwise order starting at 12 o'clock.
var circleOffsets = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1},
	{3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1},
	{-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

const fastArc = 9

// fastCorner reports whether (x, y) is a FAST-9 corner and returns its
// score (sum of absolute differences over the qualifying arc pixels).
// The caller guarantees a 3-pixel margin.
func fastCorner(img *frame.Frame, x, y, threshold int) (bool, float64) {
	c := int(img.Pix[y*img.W+x])
	hi := c + threshold
	lo := c - threshold

	// Quick rejection: any contiguous arc of 9 covers at least 2 of the 4
	// compass points, so at least 2 must be brighter, or 2 darker.
	qb, qd := 0, 0
	for _, i := range [4]int{0, 4, 8, 12} {
		v := int(img.Pix[(y+circleOffsets[i][1])*img.W+x+circleOffsets[i][0]])
		if v > hi {
			qb++
		} else if v < lo {
			qd++
		}
	}
	if qb < 2 && qd < 2 {
		return false, 0
	}

	var bright, dark [16]bool
	var diffs [16]int
	for i, off := range circleOffsets {
		v := int(img.Pix[(y+off[1])*img.W+x+off[0]])
		diffs[i] = v - c
		bright[i] = v > hi
		dark[i] = v < lo
	}
	arc := func(flags *[16]bool) (bool, float64) {
		run, bestRun := 0, 0
		var score, runScore float64
		// Walk the circle twice to handle wrap-around arcs.
		for i := 0; i < 32; i++ {
			if flags[i%16] {
				run++
				d := diffs[i%16]
				if d < 0 {
					d = -d
				}
				runScore += float64(d)
				if run > bestRun {
					bestRun = run
					score = runScore
				}
				if run >= 16 {
					break
				}
			} else {
				run, runScore = 0, 0
			}
		}
		return bestRun >= fastArc, score
	}
	if ok, score := arc(&bright); ok {
		return true, score
	}
	if ok, score := arc(&dark); ok {
		return true, score
	}
	return false, 0
}

// detectFASTLevel runs FAST with 3x3 non-maximum suppression over one
// pyramid level, returning (x, y, score) triples in level coordinates.
func detectFASTLevel(img *frame.Frame, threshold, margin int) [][3]float64 {
	if margin < 3 {
		margin = 3
	}
	w, h := img.W, img.H
	scores := make([]float64, w*h)
	type cand struct{ x, y int }
	var cands []cand
	for y := margin; y < h-margin; y++ {
		for x := margin; x < w-margin; x++ {
			if ok, s := fastCorner(img, x, y, threshold); ok {
				scores[y*w+x] = s
				cands = append(cands, cand{x, y})
			}
		}
	}
	var out [][3]float64
	for _, c := range cands {
		s := scores[c.y*w+c.x]
		isMax := true
	nms:
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				n := scores[(c.y+dy)*w+c.x+dx]
				if n > s || (n == s && (dy < 0 || (dy == 0 && dx < 0))) {
					isMax = false
					break nms
				}
			}
		}
		if isMax {
			out = append(out, [3]float64{float64(c.x), float64(c.y), s})
		}
	}
	return out
}
