package features

import "sort"

// DistributeGrid selects up to maxFeatures keypoints with an even spatial
// distribution, the grid-bucketed selection ORB-SLAM applies so that pose
// estimation is not dominated by one texture-rich corner of the frame. The
// frame is divided into cellSize x cellSize buckets; the strongest
// keypoints are taken round-robin across non-empty buckets.
//
// Even distribution matters doubly for rhythmic pixel regions: the emitted
// regions then cover the scene rather than piling onto one cluster, which
// stabilizes both tracking and the traffic profile.
func DistributeGrid(kps []KeyPoint, frameW, frameH, cellSize, maxFeatures int) []KeyPoint {
	if maxFeatures <= 0 || len(kps) <= maxFeatures {
		return kps
	}
	if cellSize < 8 {
		cellSize = 8
	}
	cols := (frameW + cellSize - 1) / cellSize
	rows := (frameH + cellSize - 1) / cellSize
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	buckets := make([][]KeyPoint, cols*rows)
	for _, kp := range kps {
		cx := int(kp.X) / cellSize
		cy := int(kp.Y) / cellSize
		if cx < 0 {
			cx = 0
		} else if cx >= cols {
			cx = cols - 1
		}
		if cy < 0 {
			cy = 0
		} else if cy >= rows {
			cy = rows - 1
		}
		buckets[cy*cols+cx] = append(buckets[cy*cols+cx], kp)
	}
	// Strongest first within each bucket.
	var order []int
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		sort.Slice(b, func(x, y int) bool { return b[x].Response > b[y].Response })
		order = append(order, i)
	}
	// Round-robin across buckets until the budget is filled.
	out := make([]KeyPoint, 0, maxFeatures)
	for depth := 0; len(out) < maxFeatures; depth++ {
		took := false
		for _, bi := range order {
			if depth < len(buckets[bi]) {
				out = append(out, buckets[bi][depth])
				took = true
				if len(out) == maxFeatures {
					break
				}
			}
		}
		if !took {
			break
		}
	}
	// Deterministic output order: raster position.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].X < out[j].X
	})
	return out
}
