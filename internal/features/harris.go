package features

import "repro/internal/frame"

// Harris corner response, the measure ORB uses to rank FAST candidates:
// det(M) - k·trace(M)^2 over the local gradient structure tensor M. FAST
// scores order poorly across scales (they saturate with contrast); Harris
// ranking keeps the most stable corners when the budget truncates.

// harrisK is the standard Harris sensitivity constant.
const harrisK = 0.04

// harrisResponse computes the Harris measure at (x, y) over a
// (2r+1)x(2r+1) window of Sobel gradients. The caller guarantees the
// window plus the 1-pixel gradient support stays in bounds.
func harrisResponse(img *frame.Frame, x, y, r int) float64 {
	var sxx, syy, sxy float64
	w := img.W
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			px, py := x+dx, y+dy
			// Central-difference gradients scaled like Sobel's center row.
			gx := float64(img.Pix[py*w+px+1]) - float64(img.Pix[py*w+px-1])
			gy := float64(img.Pix[(py+1)*w+px]) - float64(img.Pix[(py-1)*w+px])
			sxx += gx * gx
			syy += gy * gy
			sxy += gx * gy
		}
	}
	det := sxx*syy - sxy*sxy
	tr := sxx + syy
	return det - harrisK*tr*tr
}

// rescoreHarris replaces FAST scores with Harris responses for candidates
// that have the needed margin, leaving border candidates on their FAST
// score (Harris needs r+1 pixels of support).
func rescoreHarris(img *frame.Frame, cands [][3]float64, r int) {
	for i := range cands {
		x, y := int(cands[i][0]), int(cands[i][1])
		if x < r+1 || y < r+1 || x >= img.W-r-1 || y >= img.H-r-1 {
			continue
		}
		cands[i][2] = harrisResponse(img, x, y, r)
	}
}
