// Package features is the visual feature substrate standing in for OpenCV's
// ORB in the paper's workloads: an image pyramid, FAST corner detection with
// non-maximum suppression, intensity-centroid orientation, rotation-steered
// BRIEF-256 descriptors, and brute-force Hamming matching.
//
// The rhythmic pixel policies consume exactly the keypoint attributes the
// paper names: "size" guides region width/height, "octave" guides stride,
// and matched-feature displacement guides the temporal skip rate (§3.4,
// §4.3.1).
package features

import "fmt"

// DescriptorBytes is the BRIEF descriptor length (256 bits).
const DescriptorBytes = 32

// KeyPoint is a detected visual feature, mirroring cv::KeyPoint's fields.
type KeyPoint struct {
	// X, Y are the feature coordinates in level-0 (full resolution) pixels.
	X, Y float64
	// Octave is the pyramid level the feature was detected on.
	Octave int
	// Size is the diameter of the meaningful neighborhood in level-0
	// pixels (patch size scaled by the level's scale factor).
	Size float64
	// Angle is the orientation in radians from the intensity centroid.
	Angle float64
	// Response is the FAST corner score used for ranking.
	Response float64
	// Desc is the steered BRIEF-256 descriptor.
	Desc [DescriptorBytes]byte
}

// String formats the keypoint without the descriptor.
func (k KeyPoint) String() string {
	return fmt.Sprintf("kp(%.1f,%.1f oct=%d size=%.1f resp=%.0f)", k.X, k.Y, k.Octave, k.Size, k.Response)
}

// HammingDist returns the number of differing bits between two descriptors.
func HammingDist(a, b *[DescriptorBytes]byte) int {
	d := 0
	for i := 0; i < DescriptorBytes; i++ {
		d += popcount8(a[i] ^ b[i])
	}
	return d
}

var popTable [256]uint8

func init() {
	for i := 1; i < 256; i++ {
		popTable[i] = popTable[i>>1] + uint8(i&1)
	}
}

func popcount8(b byte) int { return int(popTable[b]) }

// Match pairs a keypoint index in one set with its best match in another.
type Match struct {
	// A and B index the query and train keypoint slices.
	A, B int
	// Dist is the Hamming distance of the matched descriptors.
	Dist int
}

// MatchOptions tunes the brute-force matcher.
type MatchOptions struct {
	// MaxDist rejects matches with a Hamming distance above this (<= 0
	// means 64, a quarter of the descriptor bits).
	MaxDist int
	// CrossCheck keeps only mutual best matches.
	CrossCheck bool
	// MaxSpatialDist, when positive, rejects matches whose keypoints are
	// farther apart than this many pixels — the locality prior a tracking
	// frontend applies between consecutive video frames.
	MaxSpatialDist float64
}

// MatchBrute matches query descriptors against train descriptors by
// exhaustive Hamming search.
func MatchBrute(query, train []KeyPoint, opt MatchOptions) []Match {
	if opt.MaxDist <= 0 {
		opt.MaxDist = 64
	}
	best := func(from []KeyPoint, to []KeyPoint, i int) (int, int) {
		bi, bd := -1, opt.MaxDist+1
		for j := range to {
			if opt.MaxSpatialDist > 0 {
				dx, dy := from[i].X-to[j].X, from[i].Y-to[j].Y
				if dx*dx+dy*dy > opt.MaxSpatialDist*opt.MaxSpatialDist {
					continue
				}
			}
			d := HammingDist(&from[i].Desc, &to[j].Desc)
			if d < bd {
				bi, bd = j, d
			}
		}
		return bi, bd
	}
	var out []Match
	for i := range query {
		j, d := best(query, train, i)
		if j < 0 {
			continue
		}
		if opt.CrossCheck {
			back, _ := best(train, query, j)
			if back != i {
				continue
			}
		}
		out = append(out, Match{A: i, B: j, Dist: d})
	}
	return out
}
