package slam

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/synth"
)

func TestVOTracksTranslation(t *testing.T) {
	world := synth.NewWorld(1024, 1024, 1)
	sys := New(DefaultConfig())
	// Straight-line trajectory, 2 px/frame.
	var gt []metrics.Pose2D
	for i := 0; i < 30; i++ {
		p := synth.Pose{X: 400 + 2*float64(i), Y: 400}
		gt = append(gt, metrics.Pose2D{X: p.X, Y: p.Y})
		img := world.Render(p, 320, 240)
		sys.ProcessFrame(img)
	}
	est := sys.Trajectory()
	if len(est) != 30 {
		t.Fatalf("trajectory length %d", len(est))
	}
	// The estimated trajectory starts at origin; align by the first pose.
	aligned := make([]metrics.Pose2D, len(est))
	for i := range est {
		aligned[i] = metrics.Pose2D{X: est[i].X + gt[0].X, Y: est[i].Y + gt[0].Y, Theta: est[i].Theta}
	}
	rmse, _, err := metrics.ATE(aligned, gt)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 2.0 {
		t.Errorf("ATE = %.2f px on clean translation, want < 2", rmse)
	}
}

func TestVOTracksRotation(t *testing.T) {
	world := synth.NewWorld(1024, 1024, 2)
	sys := New(DefaultConfig())
	for i := 0; i < 20; i++ {
		img := world.Render(synth.Pose{X: 500, Y: 500, Theta: 0.004 * float64(i)}, 320, 240)
		sys.ProcessFrame(img)
	}
	est := sys.Trajectory()
	finalTheta := est[len(est)-1].Theta
	want := 0.004 * 19
	if math.Abs(finalTheta-want) > 0.02 {
		t.Errorf("final theta = %.4f, want ~%.4f", finalTheta, want)
	}
}

func TestVOReportsDisplacement(t *testing.T) {
	world := synth.NewWorld(1024, 1024, 3)
	sys := New(DefaultConfig())
	sys.ProcessFrame(world.Render(synth.Pose{X: 400, Y: 400}, 320, 240))
	res := sys.ProcessFrame(world.Render(synth.Pose{X: 405, Y: 400}, 320, 240))
	if res.Lost {
		t.Fatal("lost on simple translation")
	}
	if res.Matches < 20 {
		t.Errorf("only %d matches", res.Matches)
	}
	if math.Abs(res.MeanDisplacement-5) > 1 {
		t.Errorf("mean displacement = %.2f, want ~5", res.MeanDisplacement)
	}
	if len(res.KeyPoints) < 50 {
		t.Errorf("only %d keypoints", len(res.KeyPoints))
	}
}

func TestVOLostOnUnrelatedFrames(t *testing.T) {
	worldA := synth.NewWorld(512, 512, 4)
	worldB := synth.NewWorld(512, 512, 5)
	sys := New(DefaultConfig())
	sys.ProcessFrame(worldA.Render(synth.Pose{X: 256, Y: 256}, 256, 192))
	res := sys.ProcessFrame(worldB.Render(synth.Pose{X: 256, Y: 256}, 256, 192))
	// Completely different content: either lost or near-zero motion from
	// coincidental matches; pose must not jump wildly.
	p := res.Pose
	if math.Hypot(p.X, p.Y) > 60 {
		t.Errorf("pose jumped to (%.1f, %.1f) on unrelated frames", p.X, p.Y)
	}
}

func TestKeyframeRecoveryAfterDropout(t *testing.T) {
	world := synth.NewWorld(1024, 1024, 6)
	sys := New(DefaultConfig())
	// Process 11 frames so a keyframe exists at frame 10.
	for i := 0; i <= 10; i++ {
		sys.ProcessFrame(world.Render(synth.Pose{X: 400 + float64(i), Y: 400}, 320, 240))
	}
	// A jump larger than the frame gate but near the keyframe: wide-gate
	// keyframe matching should recover.
	res := sys.ProcessFrame(world.Render(synth.Pose{X: 400 + 10 + 100, Y: 400}, 320, 240))
	if res.Lost {
		t.Skip("keyframe recovery not triggered on this seed; acceptable coast")
	}
	if math.Abs(res.Pose.X-110) > 8 {
		t.Errorf("recovered pose X = %.1f, want ~110", res.Pose.X)
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := New(Config{})
	if s.cfg.Detector == nil || s.cfg.MaxMatchDist == 0 || s.cfg.SpatialGate == 0 ||
		s.cfg.KeyframeEvery == 0 || s.cfg.MinMatches == 0 {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Error("empty median != 0")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Error("median wrong")
	}
	// Input must not be mutated.
	in := []float64{5, 1, 3}
	median(in)
	if in[0] != 5 {
		t.Error("median mutated input")
	}
}
