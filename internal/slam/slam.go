// Package slam implements the visual SLAM workload of the paper's
// evaluation: an ORB-style feature-based visual odometry over the synthetic
// planar scenes, producing the camera trajectory plus the per-frame feature
// sets the rhythmic region policy consumes.
//
// It substitutes for ORB-SLAM2 on the TUM / in-house 4K benchmarks: the
// frontend (pyramid FAST + steered BRIEF + Hamming matching) matches the
// real system's; the backend solves frame-to-frame 2D rigid motion with
// robust re-weighting and anchors drift against periodic keyframes, which
// is the level of fidelity the accuracy-versus-encoding experiments need —
// degradation comes from feature quality on decoded frames, exactly the
// paper's mechanism.
package slam

import (
	"math"

	"repro/internal/features"
	"repro/internal/frame"
	"repro/internal/metrics"
)

// Config tunes the SLAM system.
type Config struct {
	// Detector extracts features; nil uses features.NewDetector defaults.
	Detector *features.Detector
	// MaxMatchDist is the Hamming matching threshold.
	MaxMatchDist int
	// SpatialGate is the maximum pixel displacement considered between
	// consecutive frames.
	SpatialGate float64
	// KeyframeEvery inserts a keyframe each N frames for re-anchoring.
	KeyframeEvery int
	// MinMatches below which the frame is declared lost (pose coasts).
	MinMatches int
}

// DefaultConfig returns the configuration used by the evaluation harness.
func DefaultConfig() Config {
	return Config{
		Detector:      features.NewDetector(),
		MaxMatchDist:  48,
		SpatialGate:   48,
		KeyframeEvery: 10,
		MinMatches:    8,
	}
}

// StepResult reports one processed frame.
type StepResult struct {
	// Pose is the accumulated camera pose estimate after this frame.
	Pose metrics.Pose2D
	// KeyPoints are the features detected on this frame (policy input).
	KeyPoints []features.KeyPoint
	// Matches is the number of inlier matches used for the pose solve.
	Matches int
	// MeanDisplacement is the average matched-feature motion in pixels
	// (policy input for temporal rate selection).
	MeanDisplacement float64
	// Displacements holds per-keypoint inlier motion in pixels, aligned
	// with KeyPoints; -1 marks keypoints without a match. Policies use it
	// to set per-region temporal rates (§4.3.1: "feature movement between
	// frames for temporal rate").
	Displacements []float64
	// Lost reports that tracking failed and the pose coasted.
	Lost bool
}

// System is the incremental SLAM estimator.
type System struct {
	cfg  Config
	pose metrics.Pose2D
	traj []metrics.Pose2D

	prevKPs []features.KeyPoint
	frameNo int

	keyKPs  []features.KeyPoint
	keyPose metrics.Pose2D
}

// New returns a system with the given configuration.
func New(cfg Config) *System {
	if cfg.Detector == nil {
		cfg.Detector = features.NewDetector()
	}
	if cfg.MaxMatchDist <= 0 {
		cfg.MaxMatchDist = 48
	}
	if cfg.SpatialGate <= 0 {
		cfg.SpatialGate = 48
	}
	if cfg.KeyframeEvery <= 0 {
		cfg.KeyframeEvery = 10
	}
	if cfg.MinMatches <= 0 {
		cfg.MinMatches = 8
	}
	return &System{cfg: cfg}
}

// Trajectory returns the accumulated pose estimates, one per processed
// frame.
func (s *System) Trajectory() []metrics.Pose2D { return s.traj }

// ProcessFrame ingests the next (decoded) frame.
func (s *System) ProcessFrame(img *frame.Frame) StepResult {
	kps := s.cfg.Detector.Detect(img)
	res := StepResult{KeyPoints: kps}

	if s.frameNo == 0 {
		s.prevKPs = kps
		s.keyKPs = kps
		s.keyPose = s.pose
		s.frameNo++
		s.traj = append(s.traj, s.pose)
		res.Pose = s.pose
		return res
	}

	// Frame-to-frame motion.
	sol, ok := s.solve(s.prevKPs, kps)
	if !ok {
		// Retry against the last keyframe with a wider gate.
		solK, okK := s.solveWide(s.keyKPs, kps)
		if okK {
			s.pose = composePose(s.keyPose, solK.rel)
			res.Matches, res.MeanDisplacement = solK.inliers, solK.meanDisp
			res.Displacements = solK.dispByB
		} else {
			res.Lost = true // coast on the previous pose
		}
	} else {
		s.pose = composePose(s.pose, sol.rel)
		res.Matches, res.MeanDisplacement = sol.inliers, sol.meanDisp
		res.Displacements = sol.dispByB
	}

	if s.frameNo%s.cfg.KeyframeEvery == 0 && len(kps) >= s.cfg.MinMatches {
		s.keyKPs = kps
		s.keyPose = s.pose
	}
	s.prevKPs = kps
	s.frameNo++
	s.traj = append(s.traj, s.pose)
	res.Pose = s.pose
	return res
}

// relPose is the estimated image-space rigid motion between two frames.
type relPose struct {
	phi    float64 // rotation of image points, = thetaA - thetaB
	tx, ty float64 // translation of image points, = R(-thetaB)(cA - cB)
}

// composePose applies the estimated image motion to a camera pose: with
// image transform b = R(phi) a + t, the camera update is
// thetaB = thetaA - phi and cB = cA - R(thetaB) t.
func composePose(p metrics.Pose2D, r relPose) metrics.Pose2D {
	thetaB := p.Theta - r.phi
	sin, cos := math.Sincos(thetaB)
	return metrics.Pose2D{
		X:     p.X - (cos*r.tx - sin*r.ty),
		Y:     p.Y - (sin*r.tx + cos*r.ty),
		Theta: thetaB,
	}
}

func (s *System) solve(a, b []features.KeyPoint) (solution, bool) {
	return solveRigid(a, b, s.cfg.MaxMatchDist, s.cfg.SpatialGate, s.cfg.MinMatches)
}

func (s *System) solveWide(a, b []features.KeyPoint) (solution, bool) {
	return solveRigid(a, b, s.cfg.MaxMatchDist, s.cfg.SpatialGate*4, s.cfg.MinMatches)
}

// solution is a successful rigid-motion estimate plus per-keypoint motion.
type solution struct {
	rel      relPose
	inliers  int
	meanDisp float64
	// dispByB holds the inlier displacement per index of the second (b)
	// keypoint set; -1 for keypoints that were not inlier-matched.
	dispByB []float64
}

// solveRigid matches two keypoint sets and fits b = R(phi) a + t with two
// rounds of median-based outlier rejection.
func solveRigid(a, b []features.KeyPoint, maxDist int, gate float64, minMatches int) (solution, bool) {
	matches := features.MatchBrute(a, b, features.MatchOptions{
		MaxDist:        maxDist,
		CrossCheck:     true,
		MaxSpatialDist: gate,
	})
	if len(matches) < minMatches {
		return solution{}, false
	}
	type pair struct {
		ax, ay, bx, by float64
		bIdx           int
	}
	pairs := make([]pair, 0, len(matches))
	for _, m := range matches {
		pairs = append(pairs, pair{a[m.A].X, a[m.A].Y, b[m.B].X, b[m.B].Y, m.B})
	}

	fit := func(ps []pair) relPose {
		var ca, cb [2]float64
		for _, p := range ps {
			ca[0] += p.ax
			ca[1] += p.ay
			cb[0] += p.bx
			cb[1] += p.by
		}
		n := float64(len(ps))
		ca[0] /= n
		ca[1] /= n
		cb[0] /= n
		cb[1] /= n
		var dot, cross float64
		for _, p := range ps {
			axc, ayc := p.ax-ca[0], p.ay-ca[1]
			bxc, byc := p.bx-cb[0], p.by-cb[1]
			dot += axc*bxc + ayc*byc
			cross += axc*byc - ayc*bxc
		}
		phi := math.Atan2(cross, dot)
		sin, cos := math.Sincos(phi)
		return relPose{
			phi: phi,
			tx:  cb[0] - (cos*ca[0] - sin*ca[1]),
			ty:  cb[1] - (sin*ca[0] + cos*ca[1]),
		}
	}
	residual := func(r relPose, p pair) float64 {
		sin, cos := math.Sincos(r.phi)
		px := cos*p.ax - sin*p.ay + r.tx
		py := sin*p.ax + cos*p.ay + r.ty
		return math.Hypot(px-p.bx, py-p.by)
	}

	cur := pairs
	var est relPose
	for round := 0; round < 2; round++ {
		est = fit(cur)
		res := make([]float64, len(cur))
		for i, p := range cur {
			res[i] = residual(est, p)
		}
		med := median(res)
		thresh := 3*med + 1.0
		kept := cur[:0:0]
		for i, p := range cur {
			if res[i] <= thresh {
				kept = append(kept, p)
			}
		}
		if len(kept) < minMatches {
			break
		}
		cur = kept
	}
	if len(cur) < minMatches {
		return solution{}, false
	}
	est = fit(cur)
	// Sanity gate: a genuine rigid motion leaves small residuals; sets of
	// coincidental descriptor matches (unrelated content) do not.
	const maxMeanResidual = 4.0
	var resSum float64
	for _, p := range cur {
		resSum += residual(est, p)
	}
	if resSum/float64(len(cur)) > maxMeanResidual {
		return solution{}, false
	}
	sol := solution{rel: est, inliers: len(cur), dispByB: make([]float64, len(b))}
	for i := range sol.dispByB {
		sol.dispByB[i] = -1
	}
	var dispSum float64
	for _, p := range cur {
		d := math.Hypot(p.bx-p.ax, p.by-p.ay)
		dispSum += d
		sol.dispByB[p.bIdx] = d
	}
	sol.meanDisp = dispSum / float64(len(cur))
	return sol, true
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	// Insertion sort is fine at these sizes.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
