package isp

import (
	"fmt"

	"repro/internal/frame"
)

// The 3A control loops of a real ISP that matter for the rhythmic pixel
// evaluation: auto-exposure keeps the luma level stable across frames so
// the encoder's downstream trackers don't see global brightness swings as
// motion, and gray-world white balance normalizes channel gains before YUV
// conversion.

// AutoExposure is a mean-luma AE loop: it measures each frame and adjusts a
// digital gain toward a target level, slewing gradually like a camera AE.
type AutoExposure struct {
	// TargetLuma is the desired mean luminance (default 110).
	TargetLuma float64
	// SlewRate bounds the per-frame relative gain change (default 0.15).
	SlewRate float64
	// MinGain and MaxGain clamp the digital gain.
	MinGain, MaxGain float64

	gain float64
}

// NewAutoExposure returns an AE loop with camera-typical defaults.
func NewAutoExposure() *AutoExposure {
	return &AutoExposure{TargetLuma: 110, SlewRate: 0.15, MinGain: 0.25, MaxGain: 8, gain: 1}
}

// Gain returns the current digital gain.
func (ae *AutoExposure) Gain() float64 { return ae.gain }

// Process measures the frame, updates the gain, and applies it in place.
func (ae *AutoExposure) Process(fr *frame.Frame) {
	var sum int64
	n := fr.W * fr.H
	for y := 0; y < fr.H; y += 4 { // 1/16 subsample, as AE statistics blocks do
		for x := 0; x < fr.W; x += 4 {
			sum += int64(fr.Gray(x, y))
		}
	}
	samples := ((fr.H + 3) / 4) * ((fr.W + 3) / 4)
	if samples == 0 || n == 0 {
		return
	}
	mean := float64(sum) / float64(samples) * ae.gain
	if mean < 1 {
		mean = 1
	}
	want := ae.TargetLuma / mean * ae.gain
	// Slew toward the wanted gain.
	maxStep := ae.gain * ae.SlewRate
	switch {
	case want > ae.gain+maxStep:
		ae.gain += maxStep
	case want < ae.gain-maxStep:
		ae.gain -= maxStep
	default:
		ae.gain = want
	}
	if ae.gain < ae.MinGain {
		ae.gain = ae.MinGain
	} else if ae.gain > ae.MaxGain {
		ae.gain = ae.MaxGain
	}
	applyGain(fr, ae.gain, ae.gain, ae.gain)
}

// GrayWorldAWB applies gray-world white balance to an RGB24 frame: channel
// gains equalize the channel means.
func GrayWorldAWB(fr *frame.Frame) error {
	if fr.Format != frame.RGB24 {
		return fmt.Errorf("isp: AWB requires RGB24, got %v", fr.Format)
	}
	var sr, sg, sb int64
	n := int64(fr.W * fr.H)
	for i := 0; i < len(fr.Pix); i += 3 {
		sr += int64(fr.Pix[i])
		sg += int64(fr.Pix[i+1])
		sb += int64(fr.Pix[i+2])
	}
	if sr == 0 || sg == 0 || sb == 0 {
		return nil // degenerate channel; leave untouched
	}
	mean := float64(sr+sg+sb) / float64(3*n)
	applyGain(fr,
		mean/(float64(sr)/float64(n)),
		mean/(float64(sg)/float64(n)),
		mean/(float64(sb)/float64(n)))
	return nil
}

// applyGain multiplies channels by per-channel gains with clamping. For
// single-channel formats only gr is used.
func applyGain(fr *frame.Frame, gr, gg, gb float64) {
	bpp := fr.BytesPerPixel()
	if bpp == 1 {
		for i, v := range fr.Pix {
			fr.Pix[i] = clampU8(float64(v) * gr)
		}
		return
	}
	for i := 0; i < len(fr.Pix); i += bpp {
		fr.Pix[i] = clampU8(float64(fr.Pix[i]) * gr)
		fr.Pix[i+1] = clampU8(float64(fr.Pix[i+1]) * gg)
		fr.Pix[i+2] = clampU8(float64(fr.Pix[i+2]) * gb)
	}
}

func clampU8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}
