package isp

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/sensor"
)

func TestGammaLUT(t *testing.T) {
	g := NewGamma(2.2)
	fr := frame.New(2, 1, frame.Gray8)
	fr.SetGray(0, 0, 0)
	fr.SetGray(1, 0, 255)
	g.Apply(fr)
	if fr.Gray(0, 0) != 0 || fr.Gray(1, 0) != 255 {
		t.Error("gamma must fix endpoints")
	}
	// Midtones brighten under 1/2.2 encoding.
	fr2 := frame.New(1, 1, frame.Gray8)
	fr2.SetGray(0, 0, 64)
	g.Apply(fr2)
	if fr2.Gray(0, 0) <= 64 {
		t.Errorf("gamma(64) = %d, want > 64", fr2.Gray(0, 0))
	}
	defer func() {
		if recover() == nil {
			t.Error("gamma 0 did not panic")
		}
	}()
	NewGamma(0)
}

func TestDemosaicUniformGray(t *testing.T) {
	// A uniform scene through the Bayer mosaic should demosaic back to the
	// same uniform value on every channel.
	s, err := sensor.New(sensor.Config{W: 8, H: 8, FPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	scene := frame.New(8, 8, frame.RGB24)
	scene.Fill(100)
	bayer, err := s.Capture(scene)
	if err != nil {
		t.Fatal(err)
	}
	rgb, err := Demosaic(bayer)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rgb.Pix {
		if v != 100 {
			t.Fatalf("byte %d = %d, want 100", i, v)
		}
	}
}

func TestDemosaicRecoversColor(t *testing.T) {
	s, _ := sensor.New(sensor.Config{W: 16, H: 16, FPS: 30})
	scene := frame.New(16, 16, frame.RGB24)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			scene.SetPixel(x, y, []byte{180, 90, 30})
		}
	}
	bayer, _ := s.Capture(scene)
	rgb, err := Demosaic(bayer)
	if err != nil {
		t.Fatal(err)
	}
	// Interior pixels should recover the constant color closely.
	p := rgb.Pixel(8, 8)
	for c, want := range []uint8{180, 90, 30} {
		diff := int(p[c]) - int(want)
		if diff < -3 || diff > 3 {
			t.Errorf("channel %d = %d, want ~%d", c, p[c], want)
		}
	}
}

func TestDemosaicRejectsNonBayer(t *testing.T) {
	if _, err := Demosaic(frame.New(4, 4, frame.Gray8)); err == nil {
		t.Error("non-Bayer input accepted")
	}
}

func TestRGBToYUVAndBack(t *testing.T) {
	rgb := frame.New(2, 1, frame.RGB24)
	rgb.SetPixel(0, 0, []byte{255, 255, 255})
	rgb.SetPixel(1, 0, []byte{0, 0, 0})
	yuv, err := RGBToYUV444(rgb)
	if err != nil {
		t.Fatal(err)
	}
	// White: Y=255, U,V ~128. Black: Y=0, U,V ~128.
	w := yuv.Pixel(0, 0)
	if w[0] < 254 || absDiff(w[1], 128) > 2 || absDiff(w[2], 128) > 2 {
		t.Errorf("white YUV = %v", w)
	}
	b := yuv.Pixel(1, 0)
	if b[0] != 0 || absDiff(b[1], 128) > 2 || absDiff(b[2], 128) > 2 {
		t.Errorf("black YUV = %v", b)
	}
	gray, err := YUVToGray(yuv)
	if err != nil {
		t.Fatal(err)
	}
	if gray.Gray(0, 0) < 254 || gray.Gray(1, 0) != 0 {
		t.Error("luma extraction wrong")
	}
	if _, err := RGBToYUV444(gray); err == nil {
		t.Error("wrong format accepted")
	}
	if _, err := YUVToGray(rgb); err == nil {
		t.Error("wrong format accepted")
	}
}

func absDiff(a uint8, b int) int {
	d := int(a) - b
	if d < 0 {
		return -d
	}
	return d
}

func TestPipelineEndToEnd(t *testing.T) {
	s, _ := sensor.New(sensor.Config{W: 16, H: 16, FPS: 30, Seed: 1})
	scene := frame.New(16, 16, frame.RGB24)
	scene.FillRect(4, 4, 8, 8, 200)
	bayer, _ := s.Capture(scene)
	p := NewPipeline()
	out, err := p.Process(bayer)
	if err != nil {
		t.Fatal(err)
	}
	if out.Format != frame.Gray8 || out.W != 16 {
		t.Fatalf("output %v %dx%d", out.Format, out.W, out.H)
	}
	// Bright box should stay brighter than background after the pipeline.
	if out.Gray(8, 8) <= out.Gray(0, 0) {
		t.Error("contrast lost through pipeline")
	}
	if p.PixelsProcessed() != 256 {
		t.Errorf("PixelsProcessed = %d", p.PixelsProcessed())
	}
	p.OutputGray = false
	out2, err := p.Process(bayer)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Format != frame.YUV444 {
		t.Errorf("YUV output format = %v", out2.Format)
	}
	if _, err := p.Process(scene); err == nil {
		t.Error("non-Bayer pipeline input accepted")
	}
}

func TestPipelineTiming(t *testing.T) {
	p := NewPipeline()
	// Table 2 platform: 2 px/clock meets 4K60.
	if !p.MeetsRate(3840, 2160, 60) {
		t.Error("pipeline should sustain 4K60")
	}
	if p.MeetsRate(3840, 2160, 100) {
		t.Error("pipeline should not sustain 4K100")
	}
	if ft := p.FrameTime(3840, 2160); ft <= 0 || ft > 1.0/60 {
		t.Errorf("FrameTime = %v", ft)
	}
}
