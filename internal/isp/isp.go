// Package isp simulates the image signal processor stages of the paper's
// video pipeline (Table 2: "Demosaic and Gamma correction, 2 Pixels Per
// Clock"): Bayer demosaicing, gamma correction, and color-space conversion,
// with line-buffer-based streaming operation and throughput accounting.
//
// The rhythmic pixel encoder integrates at the ISP output (§4.1.2), so the
// ISP's only contract with the rest of the system is that it emits
// frame-ordered raster-scan pixels — which this simulation preserves.
package isp

import (
	"fmt"
	"math"

	"repro/internal/frame"
)

// Gamma is a lookup-table gamma correction stage.
type Gamma struct {
	lut [256]uint8
}

// NewGamma builds a gamma stage with the given exponent (2.2 is the typical
// display-referred encode; values <= 0 panic).
func NewGamma(gamma float64) *Gamma {
	if gamma <= 0 {
		panic("isp: non-positive gamma")
	}
	g := &Gamma{}
	for i := 0; i < 256; i++ {
		g.lut[i] = uint8(math.Pow(float64(i)/255, 1/gamma)*255 + 0.5)
	}
	return g
}

// Apply runs the LUT over a frame in place.
func (g *Gamma) Apply(fr *frame.Frame) {
	for i, v := range fr.Pix {
		fr.Pix[i] = g.lut[v]
	}
}

// Demosaic converts a BayerRGGB mosaic to RGB24 with bilinear interpolation
// using a 3-line neighborhood — the classic line-buffered hardware approach.
func Demosaic(bayer *frame.Frame) (*frame.Frame, error) {
	if bayer.Format != frame.BayerRGGB {
		return nil, fmt.Errorf("isp: demosaic input is %v, want BayerRGGB", bayer.Format)
	}
	w, h := bayer.W, bayer.H
	out := frame.New(w, h, frame.RGB24)
	at := func(x, y int) int {
		if x < 0 {
			x = 0
		} else if x >= w {
			x = w - 1
		}
		if y < 0 {
			y = 0
		} else if y >= h {
			y = h - 1
		}
		return int(bayer.Pix[y*w+x])
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var r, g, b int
			evenRow, evenCol := y%2 == 0, x%2 == 0
			switch {
			case evenRow && evenCol: // R site
				r = at(x, y)
				g = (at(x-1, y) + at(x+1, y) + at(x, y-1) + at(x, y+1)) / 4
				b = (at(x-1, y-1) + at(x+1, y-1) + at(x-1, y+1) + at(x+1, y+1)) / 4
			case !evenRow && !evenCol: // B site
				b = at(x, y)
				g = (at(x-1, y) + at(x+1, y) + at(x, y-1) + at(x, y+1)) / 4
				r = (at(x-1, y-1) + at(x+1, y-1) + at(x-1, y+1) + at(x+1, y+1)) / 4
			case evenRow: // G site on R row: R horizontal, B vertical
				g = at(x, y)
				r = (at(x-1, y) + at(x+1, y)) / 2
				b = (at(x, y-1) + at(x, y+1)) / 2
			default: // G site on B row: B horizontal, R vertical
				g = at(x, y)
				b = (at(x-1, y) + at(x+1, y)) / 2
				r = (at(x, y-1) + at(x, y+1)) / 2
			}
			p := out.Pixel(x, y)
			p[0], p[1], p[2] = uint8(r), uint8(g), uint8(b)
		}
	}
	return out, nil
}

// RGBToYUV444 converts RGB24 to YUV444 with BT.601 full-range coefficients.
func RGBToYUV444(rgb *frame.Frame) (*frame.Frame, error) {
	if rgb.Format != frame.RGB24 {
		return nil, fmt.Errorf("isp: YUV conversion input is %v, want RGB24", rgb.Format)
	}
	out := frame.New(rgb.W, rgb.H, frame.YUV444)
	for i := 0; i < len(rgb.Pix); i += 3 {
		r, g, b := int(rgb.Pix[i]), int(rgb.Pix[i+1]), int(rgb.Pix[i+2])
		y := (299*r + 587*g + 114*b + 500) / 1000
		u := (-169*r - 331*g + 500*b + 500) / 1000 // (500 rounds toward zero-ish)
		v := (500*r - 419*g - 81*b + 500) / 1000
		out.Pix[i] = uint8(clampInt(y, 0, 255))
		out.Pix[i+1] = uint8(clampInt(u+128, 0, 255))
		out.Pix[i+2] = uint8(clampInt(v+128, 0, 255))
	}
	return out, nil
}

// YUVToGray extracts the luma plane of a YUV444 frame.
func YUVToGray(yuv *frame.Frame) (*frame.Frame, error) {
	if yuv.Format != frame.YUV444 {
		return nil, fmt.Errorf("isp: luma extraction input is %v, want YUV444", yuv.Format)
	}
	out := frame.New(yuv.W, yuv.H, frame.Gray8)
	for i := 0; i < yuv.W*yuv.H; i++ {
		out.Pix[i] = yuv.Pix[i*3]
	}
	return out, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Pipeline chains the ISP stages the paper's platform uses and accounts for
// processing throughput at the configured pixels-per-clock rate.
type Pipeline struct {
	// AE, when non-nil, runs mean-luma auto-exposure on the demosaiced
	// frame (before gamma, as hardware AE operates on linear data).
	AE *AutoExposure
	// AWB enables gray-world white balance after demosaicing.
	AWB bool
	// GammaStage is applied after demosaicing; nil disables it.
	GammaStage *Gamma
	// OutputGray selects luma-only output (what the vision workloads
	// consume); otherwise the pipeline emits YUV444.
	OutputGray bool
	// PixelsPerClock and ClockHz model stage throughput.
	PixelsPerClock int
	ClockHz        float64

	pixelsProcessed int64
}

// NewPipeline returns the default pipeline: demosaic, gamma 2.2, gray
// output, 2 px/clock at 300 MHz. AE/AWB are off by default so frames stay
// deterministic functions of the scene; enable them for closed-loop
// illumination experiments.
func NewPipeline() *Pipeline {
	return &Pipeline{GammaStage: NewGamma(2.2), OutputGray: true, PixelsPerClock: 2, ClockHz: 300e6}
}

// Process runs a Bayer frame through the pipeline.
func (p *Pipeline) Process(bayer *frame.Frame) (*frame.Frame, error) {
	rgb, err := Demosaic(bayer)
	if err != nil {
		return nil, err
	}
	if p.AWB {
		if err := GrayWorldAWB(rgb); err != nil {
			return nil, err
		}
	}
	if p.AE != nil {
		p.AE.Process(rgb)
	}
	if p.GammaStage != nil {
		p.GammaStage.Apply(rgb)
	}
	p.pixelsProcessed += int64(bayer.W * bayer.H)
	yuv, err := RGBToYUV444(rgb)
	if err != nil {
		return nil, err
	}
	if p.OutputGray {
		return YUVToGray(yuv)
	}
	return yuv, nil
}

// PixelsProcessed returns the cumulative pixel count.
func (p *Pipeline) PixelsProcessed() int64 { return p.pixelsProcessed }

// FrameTime returns the streaming time for one w x h frame in seconds at
// the pipeline's pixel rate.
func (p *Pipeline) FrameTime(w, h int) float64 {
	return float64(w) * float64(h) / (float64(p.PixelsPerClock) * p.ClockHz)
}

// MeetsRate reports whether the pipeline sustains w x h at fps.
func (p *Pipeline) MeetsRate(w, h int, fps float64) bool {
	return p.FrameTime(w, h) <= 1/fps
}
