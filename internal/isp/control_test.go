package isp

import (
	"math"
	"testing"

	"repro/internal/frame"
)

func TestAutoExposureConverges(t *testing.T) {
	ae := NewAutoExposure()
	// A dark scene: repeated frames at luma ~40 should be pulled up toward
	// the target as the gain slews.
	var lastMean float64
	for i := 0; i < 30; i++ {
		fr := frame.New(64, 64, frame.Gray8)
		fr.Fill(40)
		ae.Process(fr)
		var sum int
		for _, v := range fr.Pix {
			sum += int(v)
		}
		lastMean = float64(sum) / float64(len(fr.Pix))
	}
	if math.Abs(lastMean-ae.TargetLuma) > 8 {
		t.Errorf("converged mean = %.1f, want ~%.0f", lastMean, ae.TargetLuma)
	}
	if ae.Gain() <= 1 {
		t.Errorf("gain = %v, want > 1 for a dark scene", ae.Gain())
	}
}

func TestAutoExposureSlewLimited(t *testing.T) {
	ae := NewAutoExposure()
	fr := frame.New(32, 32, frame.Gray8)
	fr.Fill(10) // needs gain 11; one step must be bounded by SlewRate
	ae.Process(fr)
	if ae.Gain() > 1+ae.SlewRate+1e-9 {
		t.Errorf("gain jumped to %v in one frame; slew not enforced", ae.Gain())
	}
}

func TestAutoExposureGainClamped(t *testing.T) {
	ae := NewAutoExposure()
	black := frame.New(16, 16, frame.Gray8)
	for i := 0; i < 200; i++ {
		b := black.Clone()
		ae.Process(b)
	}
	if ae.Gain() > ae.MaxGain {
		t.Errorf("gain %v exceeds MaxGain", ae.Gain())
	}
	bright := frame.New(16, 16, frame.Gray8)
	bright.Fill(255)
	for i := 0; i < 200; i++ {
		b := bright.Clone()
		ae.Process(b)
	}
	if ae.Gain() < ae.MinGain {
		t.Errorf("gain %v under MinGain", ae.Gain())
	}
}

func TestGrayWorldAWB(t *testing.T) {
	fr := frame.New(16, 16, frame.RGB24)
	// A red-tinted uniform frame.
	for i := 0; i < len(fr.Pix); i += 3 {
		fr.Pix[i], fr.Pix[i+1], fr.Pix[i+2] = 180, 90, 60
	}
	if err := GrayWorldAWB(fr); err != nil {
		t.Fatal(err)
	}
	p := fr.Pixel(8, 8)
	// Channels should be near-equal after gray-world.
	if absInt(int(p[0])-int(p[1])) > 3 || absInt(int(p[1])-int(p[2])) > 3 {
		t.Errorf("post-AWB pixel = %v, want balanced", p)
	}
	if err := GrayWorldAWB(frame.New(4, 4, frame.Gray8)); err == nil {
		t.Error("gray input accepted")
	}
	// All-black frame: no division by zero, untouched.
	black := frame.New(4, 4, frame.RGB24)
	if err := GrayWorldAWB(black); err != nil {
		t.Fatal(err)
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestPipelineWithAEAndAWB(t *testing.T) {
	p := NewPipeline()
	p.AE = NewAutoExposure()
	p.AWB = true
	bayer := frame.New(32, 32, frame.BayerRGGB)
	bayer.Fill(40) // dark, neutral mosaic
	var last *frame.Frame
	for i := 0; i < 25; i++ {
		out, err := p.Process(bayer.Clone())
		if err != nil {
			t.Fatal(err)
		}
		last = out
	}
	var sum int
	for _, v := range last.Pix {
		sum += int(v)
	}
	mean := float64(sum) / float64(len(last.Pix))
	// AE lifts a dark scene; gamma lifts it further.
	if mean < 100 {
		t.Errorf("AE+gamma mean = %.0f, want brightened above 100", mean)
	}
}
