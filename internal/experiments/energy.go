package experiments

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/hwmodel"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// EnergyResult reproduces the §6.2 energy analysis: per-frame energy for
// frame-based versus rhythmic capture of the V-SLAM workload, from the
// Table 6 first-order model applied to simulated traffic.
type EnergyResult struct {
	// W, H, FPS describe the evaluated stream.
	W, H int
	FPS  float64
	// FrameBasedMJPerFrame and RhythmicMJPerFrame are total pixel-path
	// energies (sense + interfaces + storage).
	FrameBasedMJPerFrame float64
	RhythmicMJPerFrame   float64
	// SavingsMJPerFrame and SavingsMW are the headline §6.2 numbers
	// (paper: ~18 mJ/frame, ~550 mW for RP10 on 4K30 V-SLAM).
	SavingsMJPerFrame float64
	SavingsMW         float64
	// EncoderOverheadMW and DecoderOverheadMW are the hardware additions.
	EncoderOverheadMW float64
	DecoderOverheadMW float64
}

// Energy regenerates the §6.2 analysis for the V-SLAM workload at 4K 30fps
// (Quick keeps 4K for the model — only the trace generation shrinks).
func Energy(s Scale) (EnergyResult, error) {
	cfg := slamConfig(s)
	rp, err := workloads.NewRP(cfg.CycleLength, cfg.W, cfg.H)
	if err != nil {
		return EnergyResult{}, err
	}
	res, err := workloads.RunSLAM(cfg, rp)
	if err != nil {
		return EnergyResult{}, err
	}

	const w, h = 3840, 2160
	const fps = 30.0
	scaled := ScaleTrace(res.LabelTrace, cfg.W, cfg.H, w, h)
	tcfg := trace.Config{W: w, H: h, BytesPerPixel: fig8BPP, FPS: fps}

	rpTraffic, err := trace.Run(tcfg, trafficModel("RP10", fig8Target{w: w, h: h, fps: fps}), scaled)
	if err != nil {
		return EnergyResult{}, err
	}
	fchTraffic, err := trace.Run(tcfg, trafficModel("FCH", fig8Target{w: w, h: h, fps: fps}), scaled)
	if err != nil {
		return EnergyResult{}, err
	}

	// §6.2's stated method: "with an assumption of 300 pJ to read a pixel
	// and 400 pJ to write a pixel, the reduced interface traffic ...
	// reduces energy consumption by 18 mJ per frame". Apply the same
	// per-byte storage energies to the framebuffer traffic.
	frames := len(scaled)
	model := energy.Default
	storageMJPerFrame := func(t trace.Result) float64 {
		e := model.Energy(energy.Activity{
			PixelsWritten: t.WriteBytes,
			PixelsRead:    t.ReadBytes,
		})
		return e.StorageMJ / float64(frames)
	}
	fchE := storageMJPerFrame(fchTraffic)
	rpE := storageMJPerFrame(rpTraffic)

	out := EnergyResult{
		W: w, H: h, FPS: fps,
		FrameBasedMJPerFrame: fchE,
		RhythmicMJPerFrame:   rpE,
		SavingsMJPerFrame:    fchE - rpE,
		SavingsMW:            energy.PowerMW(fchE-rpE, fps),
		EncoderOverheadMW:    hwmodel.EncoderPowerMW(1600),
		DecoderOverheadMW:    hwmodel.DecoderPowerMW(),
	}
	return out, nil
}

// Report renders the energy analysis.
func (r EnergyResult) Report() string {
	return table(
		[]string{"Energy model (V-SLAM, 4K @ 30 fps)", "Value"},
		[][]string{
			{"Frame-based energy (mJ/frame)", fmt.Sprintf("%.1f", r.FrameBasedMJPerFrame)},
			{"Rhythmic RP10 energy (mJ/frame)", fmt.Sprintf("%.1f", r.RhythmicMJPerFrame)},
			{"Savings (mJ/frame)", fmt.Sprintf("%.1f", r.SavingsMJPerFrame)},
			{"Savings (mW)", fmt.Sprintf("%.0f", r.SavingsMW)},
			{"Encoder overhead (mW, 1600 regions)", fmt.Sprintf("%.1f", r.EncoderOverheadMW)},
			{"Decoder overhead (mW)", fmt.Sprintf("%.1f", r.DecoderOverheadMW)},
		},
	)
}
