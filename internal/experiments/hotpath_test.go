package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestHotpathShape runs the allocation-pricing bench at Quick scale and
// asserts structural soundness plus the one property that is
// scheduling-independent: the pooled path allocates strictly less per
// frame than the baseline (absolute throughput is not asserted).
func TestHotpathShape(t *testing.T) {
	rows, err := Hotpath(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 at Quick scale", len(rows))
	}
	last := 0
	for _, r := range rows {
		if r.Sessions <= last {
			t.Errorf("session counts not increasing: %+v", rows)
		}
		last = r.Sessions
		if r.BaselineFPS <= 0 || r.PooledFPS <= 0 || r.SpeedupX <= 0 {
			t.Errorf("non-positive measurement: %+v", r)
		}
		if r.PooledAllocs >= r.BaselineAllocs {
			t.Errorf("pooled path allocates %.1f/frame, baseline %.1f — pooling regressed", r.PooledAllocs, r.BaselineAllocs)
		}
		// The pooled pipeline's steady state is allocation-free; allow only
		// runtime background noise.
		if r.PooledAllocs > 1 {
			t.Errorf("pooled path allocates %.2f/frame, want < 1", r.PooledAllocs)
		}
	}

	if rep := HotpathReport(rows); !strings.Contains(rep, "Hot path") {
		t.Error("report missing header")
	}

	var csvBuf bytes.Buffer
	if err := HotpathCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csvBuf.String(), "\n"); lines != len(rows)+1 {
		t.Errorf("CSV has %d lines, want %d", lines, len(rows)+1)
	}

	var jsonBuf bytes.Buffer
	if err := HotpathJSON(&jsonBuf, rows); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string       `json:"experiment"`
		Rows       []HotpathRow `json:"rows"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Experiment != "hotpath_pooled_vs_baseline" || len(doc.Rows) != len(rows) {
		t.Errorf("JSON document malformed: %+v", doc)
	}
}
