package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/synth"
	"repro/internal/workloads"
)

// Fig9SLAMRow is one bar group of Fig. 9a: V-SLAM error metrics for one
// capture system, aggregated over sequences.
type Fig9SLAMRow struct {
	System   string
	ATE      float64 // mean over sequences (px)
	ATEStd   float64 // stddev over sequences
	RPETrans float64 // px/frame
	RPERot   float64 // rad/frame
}

// Fig9SLAM regenerates Fig. 9a: trajectory/translational/rotational error
// across capture systems, over several sequences with varying motion.
func Fig9SLAM(s Scale) ([]Fig9SLAMRow, error) {
	profiles := []synth.MotionProfile{synth.ProfileStatic, synth.ProfileSlow, synth.ProfileMedium}
	seeds := []int64{1, 2, 3}
	if s == Full {
		profiles = append(profiles, synth.ProfileFast)
		seeds = append(seeds, 4)
	}
	var rows []Fig9SLAMRow
	for _, sysName := range Fig9Baselines {
		var ates, rpts, rprs []float64
		for i, prof := range profiles {
			cfg := slamConfig(s)
			cfg.Profile = prof
			cfg.Seed = seeds[i%len(seeds)]
			cfg.CycleLength = cycleLengthFor(sysName)
			cap, err := captureFor(sysName, cfg.W, cfg.H)
			if err != nil {
				return nil, err
			}
			res, err := workloads.RunSLAM(cfg, cap)
			if err != nil {
				return nil, err
			}
			ates = append(ates, res.ATE)
			rpts = append(rpts, res.RPETrans)
			rprs = append(rprs, res.RPERot)
		}
		rows = append(rows, Fig9SLAMRow{
			System:   sysName,
			ATE:      metrics.Mean(ates),
			ATEStd:   metrics.Stddev(ates),
			RPETrans: metrics.Mean(rpts),
			RPERot:   metrics.Mean(rprs),
		})
	}
	return rows, nil
}

// Fig9Baselines lists the capture systems compared in Fig. 9.
var Fig9Baselines = []string{"FCH", "FCL", "RP5", "RP10", "RP15", "Multi-ROI", "H.264"}

// Fig9DetectionRow is one bar of Fig. 9b/9c: mAP for one capture system.
type Fig9DetectionRow struct {
	System   string
	MAP      float64
	Accuracy float64
}

// Fig9Pose regenerates Fig. 9b: human pose estimation mAP across systems.
func Fig9Pose(s Scale) ([]Fig9DetectionRow, error) {
	var rows []Fig9DetectionRow
	for _, sysName := range Fig9Baselines {
		cfg := poseConfig(s)
		cfg.CycleLength = cycleLengthFor(sysName)
		cap, err := captureFor(sysName, cfg.W, cfg.H)
		if err != nil {
			return nil, err
		}
		res, err := workloads.RunPose(cfg, cap)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9DetectionRow{System: sysName, MAP: res.MAP, Accuracy: res.Accuracy})
	}
	return rows, nil
}

// Fig9Face regenerates Fig. 9c: face detection mAP across systems.
func Fig9Face(s Scale) ([]Fig9DetectionRow, error) {
	var rows []Fig9DetectionRow
	for _, sysName := range Fig9Baselines {
		cfg := faceConfig(s)
		cfg.CycleLength = cycleLengthFor(sysName)
		cap, err := captureFor(sysName, cfg.W, cfg.H)
		if err != nil {
			return nil, err
		}
		res, err := workloads.RunFace(cfg, cap)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9DetectionRow{System: sysName, MAP: res.MAP, Accuracy: res.Accuracy})
	}
	return rows, nil
}

// Fig9SLAMReport renders Fig. 9a.
func Fig9SLAMReport(rows []Fig9SLAMRow) string {
	var tbl [][]string
	for _, r := range rows {
		tbl = append(tbl, []string{
			r.System,
			fmt.Sprintf("%.2f ± %.2f", r.ATE, r.ATEStd),
			fmt.Sprintf("%.3f", r.RPETrans),
			fmt.Sprintf("%.4f", r.RPERot),
		})
	}
	return table([]string{"System", "ATE (px)", "RPE trans (px/frame)", "RPE rot (rad/frame)"}, tbl)
}

// Fig9DetectionReport renders Fig. 9b or 9c.
func Fig9DetectionReport(title string, rows []Fig9DetectionRow) string {
	var tbl [][]string
	for _, r := range rows {
		tbl = append(tbl, []string{r.System, fmt.Sprintf("%.1f%%", r.MAP*100), fmt.Sprintf("%.1f%%", r.Accuracy*100)})
	}
	return title + "\n" + table([]string{"System", "mAP", "Accuracy"}, tbl)
}
