package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/region"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Fig8Baselines lists the capture systems of Fig. 8 in presentation order.
var Fig8Baselines = []string{"FCH", "FCL", "RP5", "RP10", "RP15", "Multi-ROI", "H.264"}

// Fig8Row is one bar of Fig. 8: a workload/baseline pair's pixel memory
// throughput and footprint.
type Fig8Row struct {
	Workload string
	System   string
	// ThroughputMBps is read+write pixel traffic per second.
	ThroughputMBps float64
	// WriteMBps and ReadMBps split the traffic.
	WriteMBps, ReadMBps float64
	// MeanFootprintMB is the average live framebuffer memory.
	MeanFootprintMB float64
}

// fig8BPP is the traffic-evaluation pixel depth: the paper's pipeline
// stores YUV444 frames (its "EncMask is 8% of frame data" figure implies
// 3 bytes per pixel).
const fig8BPP = 3

// fig8Target describes one workload's traffic-evaluation resolution (the
// paper's Table 3) and frame rate.
type fig8Target struct {
	name   string
	w, h   int
	fps    float64
	factor int // FCL downscale factor
}

// fig8Targets at a given scale: the paper evaluates SLAM at 4K, pose at
// 720p, face at SVGA, all at 30 fps. Quick mode shrinks SLAM to 1080p.
func fig8Targets(s Scale) []fig8Target {
	slam := fig8Target{name: "Visual SLAM", w: 3840, h: 2160, fps: 30, factor: 8}
	if s == Quick {
		slam.w, slam.h = 1920, 1080
	}
	return []fig8Target{
		slam,
		{name: "Human pose estimation", w: 1280, h: 720, fps: 30, factor: 3},
		{name: "Face detection", w: 800, h: 600, fps: 30, factor: 3},
	}
}

// Fig8 regenerates the memory traffic and footprint comparison. The
// workload label traces come from real policy-in-the-loop runs at
// simulation resolution and are scaled to the paper's evaluation
// resolutions, mirroring the paper's own offline trace methodology.
func Fig8(s Scale) ([]Fig8Row, error) {
	traces, err := labelTraces(s)
	if err != nil {
		return nil, err
	}
	targets := fig8Targets(s)
	var rows []Fig8Row
	for wi, tgt := range targets {
		for _, sysName := range Fig8Baselines {
			tr := traces[wi][cycleLengthFor(sysName)]
			scaled := ScaleTrace(tr.labels, tr.w, tr.h, tgt.w, tgt.h)
			model := trafficModel(sysName, tgt)
			cfg := trace.Config{W: tgt.w, H: tgt.h, BytesPerPixel: fig8BPP, FPS: tgt.fps}
			res, err := trace.Run(cfg, model, scaled)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s/%s: %w", tgt.name, sysName, err)
			}
			rows = append(rows, Fig8Row{
				Workload:        tgt.name,
				System:          sysName,
				ThroughputMBps:  res.TotalMBps,
				WriteMBps:       res.WriteMBps,
				ReadMBps:        res.ReadMBps,
				MeanFootprintMB: res.MeanFootprintMB,
			})
		}
	}
	return rows, nil
}

// trafficModel builds the baseline traffic model for a target.
func trafficModel(name string, tgt fig8Target) baseline.Model {
	switch name {
	case "FCH":
		return baseline.NewFCH(tgt.w, tgt.h, fig8BPP)
	case "FCL":
		return baseline.NewFCL(tgt.w, tgt.h, fig8BPP, tgt.factor)
	case "RP5":
		return baseline.NewRhythmic(5, tgt.w, tgt.h, fig8BPP)
	case "RP10":
		return baseline.NewRhythmic(10, tgt.w, tgt.h, fig8BPP)
	case "RP15":
		return baseline.NewRhythmic(15, tgt.w, tgt.h, fig8BPP)
	case "Multi-ROI":
		return baseline.NewMultiROI(tgt.w, tgt.h, fig8BPP)
	case "H.264":
		return baseline.NewH264(tgt.w, tgt.h, fig8BPP)
	}
	panic("experiments: unknown baseline " + name)
}

// workloadTrace carries a label trace with its source resolution.
type workloadTrace struct {
	w, h   int
	labels []region.List
}

// labelTraces runs each workload once per needed cycle length and returns
// traces[workload][cycleLength].
func labelTraces(s Scale) ([3]map[int]workloadTrace, error) {
	var out [3]map[int]workloadTrace
	cls := []int{5, 10, 15}

	out[0] = map[int]workloadTrace{}
	slamCfg := slamConfig(s)
	for _, cl := range cls {
		cfg := slamCfg
		cfg.CycleLength = cl
		rp, err := workloads.NewRP(cl, cfg.W, cfg.H)
		if err != nil {
			return out, err
		}
		res, err := workloads.RunSLAM(cfg, rp)
		if err != nil {
			return out, err
		}
		out[0][cl] = workloadTrace{w: cfg.W, h: cfg.H, labels: res.LabelTrace}
	}

	out[1] = map[int]workloadTrace{}
	poseCfg := poseConfig(s)
	for _, cl := range cls {
		cfg := poseCfg
		cfg.CycleLength = cl
		rp, err := workloads.NewRP(cl, cfg.W, cfg.H)
		if err != nil {
			return out, err
		}
		res, err := workloads.RunPose(cfg, rp)
		if err != nil {
			return out, err
		}
		out[1][cl] = workloadTrace{w: cfg.W, h: cfg.H, labels: res.LabelTrace}
	}

	out[2] = map[int]workloadTrace{}
	faceCfg := faceConfig(s)
	for _, cl := range cls {
		cfg := faceCfg
		cfg.CycleLength = cl
		rp, err := workloads.NewRP(cl, cfg.W, cfg.H)
		if err != nil {
			return out, err
		}
		res, err := workloads.RunFace(cfg, rp)
		if err != nil {
			return out, err
		}
		out[2][cl] = workloadTrace{w: cfg.W, h: cfg.H, labels: res.LabelTrace}
	}
	return out, nil
}

// Fig8Report renders the rows grouped by workload.
func Fig8Report(rows []Fig8Row) string {
	var tbl [][]string
	for _, r := range rows {
		tbl = append(tbl, []string{
			r.Workload, r.System,
			fmt.Sprintf("%.1f", r.ThroughputMBps),
			fmt.Sprintf("%.1f", r.WriteMBps),
			fmt.Sprintf("%.1f", r.ReadMBps),
			fmt.Sprintf("%.1f", r.MeanFootprintMB),
		})
	}
	return table(
		[]string{"Workload", "System", "Total MB/s", "Write MB/s", "Read MB/s", "Mean footprint MB"},
		tbl,
	)
}
