package experiments

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/internal/server"
	"repro/rpx"
	"repro/rpx/client"
)

// Gateway overhead: frames/sec through rpxgw versus direct rpxd dial, at
// increasing session counts. Not a paper artifact — the paper's system is a
// single sensor pipeline — but it prices the scale-out hop the software
// reproduction adds: one extra relay (read request, forward, read reply,
// forward) per operation, amortized across concurrent sessions.

// GatewayRow is one session-count measurement.
type GatewayRow struct {
	// Sessions is the concurrent session count.
	Sessions int `json:"sessions"`
	// DirectFPS is capture throughput with sessions dialing the backends
	// round-robin, no gateway.
	DirectFPS float64 `json:"direct_fps"`
	// GatewayFPS is capture throughput with every session dialed through
	// one rpxgw in front of the same backends.
	GatewayFPS float64 `json:"gateway_fps"`
	// OverheadPct is (DirectFPS-GatewayFPS)/DirectFPS in percent; negative
	// means the gateway run was faster (scheduling noise).
	OverheadPct float64 `json:"overhead_pct"`
}

// gatewayGeometry is the bench workload: ~160x120 Gray8 frames with a
// full-frame label, small enough that the wire hop (not the encoder)
// dominates.
const (
	gatewayW = 160
	gatewayH = 120
)

// GatewayOverhead measures direct-versus-gateway throughput over two
// in-process rpxd backends.
func GatewayOverhead(s Scale) ([]GatewayRow, error) {
	counts := []int{1, 8}
	frames := 12
	if s == Full {
		counts = []int{1, 8, 64}
		frames = 40
	}

	backends, stop, err := startGatewayBenchBackends(2)
	if err != nil {
		return nil, err
	}
	defer stop()

	gw, err := gateway.New(gateway.Config{
		Backends: []gateway.Backend{{Addr: backends[0]}, {Addr: backends[1]}},
		Health:   gateway.WatcherConfig{Interval: time.Hour},
	})
	if err != nil {
		return nil, err
	}
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go gw.Serve(gln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		gw.Shutdown(ctx)
	}()

	rows := make([]GatewayRow, 0, len(counts))
	for _, n := range counts {
		direct, err := gatewayBenchRun(backends, n, frames)
		if err != nil {
			return nil, fmt.Errorf("experiments: direct run %d sessions: %w", n, err)
		}
		viaGW, err := gatewayBenchRun([]string{gln.Addr().String()}, n, frames)
		if err != nil {
			return nil, fmt.Errorf("experiments: gateway run %d sessions: %w", n, err)
		}
		rows = append(rows, GatewayRow{
			Sessions:    n,
			DirectFPS:   direct,
			GatewayFPS:  viaGW,
			OverheadPct: (direct - viaGW) / direct * 100,
		})
	}
	return rows, nil
}

// startGatewayBenchBackends boots n rpxd TCP servers; stop shuts them down.
func startGatewayBenchBackends(n int) (addrs []string, stop func(), err error) {
	var srvs []*server.TCPServer
	stop = func() {
		for _, srv := range srvs {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			srv.Shutdown(ctx)
			cancel()
		}
	}
	for i := 0; i < n; i++ {
		srv := server.NewTCPServer(server.NewManager(server.Config{MaxSessions: 256}), server.TCPConfig{})
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			stop()
			return nil, nil, lerr
		}
		go srv.Serve(ln)
		srvs = append(srvs, srv)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, stop, nil
}

// gatewayBenchRun opens sessions (round-robin over addrs), installs a
// full-frame label on each, then times sessions*frames capture round trips
// started on a shared barrier. Each session verifies its last decode
// byte-equals its last captured frame before the run counts.
func gatewayBenchRun(addrs []string, sessions, frames int) (fps float64, err error) {
	open := make([]*client.Session, 0, sessions)
	defer func() {
		for _, s := range open {
			s.Close()
		}
	}()
	for i := 0; i < sessions; i++ {
		sess, derr := client.Dial(addrs[i%len(addrs)], client.Config{
			W: gatewayW, H: gatewayH, Format: rpx.Gray8, Block: true,
		})
		if derr != nil {
			return 0, derr
		}
		open = append(open, sess)
		if lerr := sess.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(gatewayW, gatewayH)}); lerr != nil {
			return 0, lerr
		}
	}

	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		mu    sync.Mutex
	)
	fail := func(e error) {
		mu.Lock()
		if err == nil {
			err = e
		}
		mu.Unlock()
	}
	for si, sess := range open {
		wg.Add(1)
		go func(si int, sess *client.Session) {
			defer wg.Done()
			fr := rpx.NewFrame(gatewayW, gatewayH, rpx.Gray8)
			<-start
			for i := 0; i < frames; i++ {
				for p := range fr.Pix {
					fr.Pix[p] = byte(si*37 + i*11 + p)
				}
				if _, cerr := sess.Capture(fr); cerr != nil {
					fail(fmt.Errorf("session %d capture %d: %w", si, i, cerr))
					return
				}
			}
			dec, derr := sess.Decoded()
			if derr != nil {
				fail(fmt.Errorf("session %d decode: %w", si, derr))
				return
			}
			if !dec.Equal(fr) {
				fail(fmt.Errorf("session %d: decoded frame differs from last capture", si))
			}
		}(si, sess)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	if err != nil {
		return 0, err
	}
	return float64(sessions*frames) / elapsed, nil
}

// GatewayReport renders the overhead table.
func GatewayReport(rows []GatewayRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Gateway overhead: %dx%d Gray8 capture throughput, 2 rpxd backends\n", gatewayW, gatewayH)
	fmt.Fprintf(&b, "%10s %14s %14s %12s\n", "sessions", "direct f/s", "gateway f/s", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %14.0f %14.0f %11.1f%%\n", r.Sessions, r.DirectFPS, r.GatewayFPS, r.OverheadPct)
	}
	return b.String()
}

// GatewayCSV writes the overhead rows as CSV.
func GatewayCSV(w io.Writer, rows []GatewayRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sessions", "direct_fps", "gateway_fps", "overhead_pct"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			fmt.Sprintf("%d", r.Sessions),
			fmt.Sprintf("%.1f", r.DirectFPS),
			fmt.Sprintf("%.1f", r.GatewayFPS),
			fmt.Sprintf("%.2f", r.OverheadPct),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// GatewayJSON writes the overhead rows as the BENCH_gateway.json document.
func GatewayJSON(w io.Writer, rows []GatewayRow) error {
	doc := struct {
		Experiment string       `json:"experiment"`
		Workload   string       `json:"workload"`
		Backends   int          `json:"backends"`
		Rows       []GatewayRow `json:"rows"`
	}{
		Experiment: "gateway_overhead",
		Workload:   fmt.Sprintf("%dx%d gray8 capture, full-frame labels", gatewayW, gatewayH),
		Backends:   2,
		Rows:       rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
