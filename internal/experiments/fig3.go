package experiments

import (
	"fmt"

	"repro/internal/workloads"
)

// Fig3Result reproduces the Fig. 3 ORB-SLAM case study: pixels captured and
// absolute trajectory error, frame-based computing versus rhythmic pixels.
type Fig3Result struct {
	FrameBasedPixelFraction float64
	RhythmicPixelFraction   float64
	FrameBasedATE           float64
	FrameBasedATEStd        float64
	RhythmicATE             float64
	RhythmicATEStd          float64
}

// Fig3 runs the case study: V-SLAM with full frames every 10 frames and
// feature-based regions in between (§3.4).
func Fig3(s Scale) (Fig3Result, error) {
	cfg := slamConfig(s)
	cfg.CycleLength = 10

	fb, err := workloads.RunSLAM(cfg, workloads.FCH{})
	if err != nil {
		return Fig3Result{}, err
	}
	rp, err := workloads.NewRP(cfg.CycleLength, cfg.W, cfg.H)
	if err != nil {
		return Fig3Result{}, err
	}
	rpRes, err := workloads.RunSLAM(cfg, rp)
	if err != nil {
		return Fig3Result{}, err
	}
	res := Fig3Result{
		FrameBasedPixelFraction: 1.0,
		FrameBasedATE:           fb.ATE,
		FrameBasedATEStd:        fb.ATEStd,
		RhythmicATE:             rpRes.ATE,
		RhythmicATEStd:          rpRes.ATEStd,
	}
	st := rp.Sys.Stats()
	if st.PixelsIn > 0 {
		res.RhythmicPixelFraction = float64(st.PixelsStored) / float64(st.PixelsIn)
	}
	return res, nil
}

// Report renders the case-study comparison.
func (r Fig3Result) Report() string {
	return table(
		[]string{"Fig. 3 (ORB-SLAM case study)", "Frame-based", "Rhythmic Pixels"},
		[][]string{
			{"Fraction of pixels captured", fmt.Sprintf("%.2f", r.FrameBasedPixelFraction), fmt.Sprintf("%.2f", r.RhythmicPixelFraction)},
			{"Absolute trajectory error (px)", fmt.Sprintf("%.2f ± %.2f", r.FrameBasedATE, r.FrameBasedATEStd), fmt.Sprintf("%.2f ± %.2f", r.RhythmicATE, r.RhythmicATEStd)},
		},
	)
}
