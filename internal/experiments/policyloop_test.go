package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestPolicyLoopShape: the quick sweep covers 3 policies x 2 workloads x 2
// cycle lengths, every value is finite, and the closed loop actually trades
// — for each (workload, policy), longer cycles store fewer pixels and lose
// fidelity.
func TestPolicyLoopShape(t *testing.T) {
	rows, err := PolicyLoop(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("quick sweep has %d rows, want 12 (3 policies x 2 workloads x 2 CLs)", len(rows))
	}
	type key struct{ workload, policy string }
	byKey := map[key][]PolicyLoopRow{}
	for _, r := range rows {
		if math.IsNaN(r.MAE) || math.IsInf(r.MAE, 0) || math.IsNaN(r.PSNRdB) || math.IsInf(r.PSNRdB, 0) {
			t.Fatalf("non-finite accuracy in %+v", r)
		}
		if r.PixelFraction <= 0 || r.PixelFraction > 1 {
			t.Fatalf("pixel fraction %v out of (0,1] in %+v", r.PixelFraction, r)
		}
		if r.BytesPerFrame <= 0 {
			t.Fatalf("no traffic measured in %+v", r)
		}
		k := key{r.Workload, r.Policy}
		byKey[k] = append(byKey[k], r)
	}
	if len(byKey) != 6 {
		t.Fatalf("saw %d (workload, policy) curves, want 6", len(byKey))
	}
	for k, curve := range byKey {
		if len(curve) != 2 {
			t.Fatalf("%v has %d points, want 2", k, len(curve))
		}
		lo, hi := curve[0], curve[1]
		if lo.CycleLength >= hi.CycleLength {
			t.Fatalf("%v rows out of CL order", k)
		}
		if hi.PixelFraction >= lo.PixelFraction {
			t.Errorf("%v: CL %d stores %.3f of pixels, CL %d stores %.3f — longer cycle should cost less traffic",
				k, hi.CycleLength, hi.PixelFraction, lo.CycleLength, lo.PixelFraction)
		}
		if hi.PSNRdB >= lo.PSNRdB {
			t.Errorf("%v: fidelity improved with a longer cycle (%.1f dB -> %.1f dB)", k, lo.PSNRdB, hi.PSNRdB)
		}
	}

	// The emitters agree with the rows.
	var jsonBuf bytes.Buffer
	if err := PolicyLoopJSON(&jsonBuf, rows); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string          `json:"experiment"`
		Rows       []PolicyLoopRow `json:"rows"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Experiment != "policyloop_accuracy_vs_traffic" || len(doc.Rows) != len(rows) {
		t.Fatalf("JSON document %q with %d rows", doc.Experiment, len(doc.Rows))
	}
	var csvBuf bytes.Buffer
	if err := PolicyLoopCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csvBuf.String(), "\n"); lines != len(rows)+1 {
		t.Fatalf("CSV has %d lines, want %d", lines, len(rows)+1)
	}
	if rep := PolicyLoopReport(rows); !strings.Contains(rep, "motion-skip") || !strings.Contains(rep, "pan-world") {
		t.Fatalf("report lacks expected cells:\n%s", rep)
	}
}
