package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestStreamDeliveryShape runs the push-vs-pull bench at Quick scale and
// asserts structural soundness only — absolute throughput is
// scheduling-dependent, so the shape test checks that every row measured
// something and that the emitters agree with the rows.
func TestStreamDeliveryShape(t *testing.T) {
	rows, err := StreamDelivery(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 at Quick scale", len(rows))
	}
	last := 0
	for _, r := range rows {
		if r.Sessions <= last {
			t.Errorf("consumer counts not increasing: %+v", rows)
		}
		last = r.Sessions
		if r.RPCFPS <= 0 || r.PushFPS <= 0 || r.SpeedupX <= 0 {
			t.Errorf("non-positive measurement: %+v", r)
		}
	}

	if rep := StreamReport(rows); !strings.Contains(rep, "Frame fan-out") {
		t.Error("report missing header")
	}

	var csvBuf bytes.Buffer
	if err := StreamCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(csvBuf.String()), "\n"); lines != len(rows) {
		t.Errorf("CSV rows = %d, want %d", lines, len(rows))
	}

	var jsonBuf bytes.Buffer
	if err := StreamJSON(&jsonBuf, rows); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string      `json:"experiment"`
		Rows       []StreamRow `json:"rows"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON emitter output invalid: %v", err)
	}
	if doc.Experiment != "stream_push_vs_rpc" || len(doc.Rows) != len(rows) {
		t.Errorf("JSON doc = %q with %d rows", doc.Experiment, len(doc.Rows))
	}
}
