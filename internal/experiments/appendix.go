package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bitpack"
	"repro/internal/core"
	"repro/internal/region"
	"repro/internal/workloads"
)

// AppendixSeries is one of the Figs. 10-15 frame progressions: the fraction
// of pixels stored on each frame across one policy cycle (full captures at
// 100%, feature/box frames at the policy's discard rate).
type AppendixSeries struct {
	Task      string
	Benchmark string
	// Fractions holds per-frame stored-pixel fractions for the frames of
	// one cycle (cycle boundary to cycle boundary inclusive).
	Fractions []float64
}

// Appendix regenerates the frame-progression figures: two SLAM sequences,
// two pose sequences (Quick: one each), and one face sequence, each showing
// one full cycle at CL matching the appendix (full captures ~6 frames
// apart).
func Appendix(s Scale) ([]AppendixSeries, error) {
	const cl = 6 // the appendix shows full frames at positions 1 and 7
	var out []AppendixSeries

	slamSeeds := []int64{1, 2}
	if s == Quick {
		slamSeeds = slamSeeds[:1]
	}
	for i, seed := range slamSeeds {
		cfg := slamConfig(s)
		cfg.CycleLength = cl
		cfg.Seed = seed
		cfg.Frames = 2*cl + 2
		rp, err := workloads.NewRP(cl, cfg.W, cfg.H)
		if err != nil {
			return nil, err
		}
		res, err := workloads.RunSLAM(cfg, rp)
		if err != nil {
			return nil, err
		}
		out = append(out, AppendixSeries{
			Task:      "Visual SLAM",
			Benchmark: fmt.Sprintf("synthetic world seq-%d", i+1),
			Fractions: cycleFractions(res.LabelTrace, cfg.W, cfg.H, cl),
		})
	}

	poseSeeds := []int64{1, 2}
	if s == Quick {
		poseSeeds = poseSeeds[:1]
	}
	for i, seed := range poseSeeds {
		cfg := poseConfig(s)
		cfg.CycleLength = cl
		cfg.Seed = seed
		cfg.Frames = 2*cl + 2
		rp, err := workloads.NewRP(cl, cfg.W, cfg.H)
		if err != nil {
			return nil, err
		}
		res, err := workloads.RunPose(cfg, rp)
		if err != nil {
			return nil, err
		}
		out = append(out, AppendixSeries{
			Task:      "Human pose estimation",
			Benchmark: fmt.Sprintf("synthetic walker seq-%d", i+1),
			Fractions: cycleFractions(res.LabelTrace, cfg.W, cfg.H, cl),
		})
	}

	faceCfg := faceConfig(s)
	faceCfg.CycleLength = cl
	faceCfg.Frames = 4 * cl
	rp, err := workloads.NewRP(cl, faceCfg.W, faceCfg.H)
	if err != nil {
		return nil, err
	}
	faceRes, err := workloads.RunFace(faceCfg, rp)
	if err != nil {
		return nil, err
	}
	// Pick the cycle with the most face activity (faces need a detection
	// pass to exist, so skip the first cycle).
	fr := cycleFractionsAt(faceRes.LabelTrace, faceCfg.W, faceCfg.H, cl, 2*cl)
	out = append(out, AppendixSeries{
		Task:      "Face detection",
		Benchmark: "synthetic portal",
		Fractions: fr,
	})
	return out, nil
}

// cycleFractions returns stored-pixel fractions for frames [0, cl] of the
// trace (one full cycle, inclusive of both boundary full captures).
func cycleFractions(trace []region.List, w, h, cl int) []float64 {
	return cycleFractionsAt(trace, w, h, cl, 0)
}

// cycleFractionsAt returns stored-pixel fractions for frames
// [start, start+cl] of the trace.
func cycleFractionsAt(trace []region.List, w, h, cl, start int) []float64 {
	end := start + cl
	if end >= len(trace) {
		end = len(trace) - 1
	}
	if start < 0 || start > end {
		return nil
	}
	total := float64(w * h)
	var out []float64
	for t := start; t <= end; t++ {
		counts := core.CountCodes(w, h, t, trace[t])
		out = append(out, float64(counts[bitpack.CodeR])/total)
	}
	return out
}

// AppendixReport renders the frame progressions like the appendix captions:
// "Frame 1 (100%) Frame 2 (37%) ...".
func AppendixReport(series []AppendixSeries) string {
	var b strings.Builder
	for _, s := range series {
		fmt.Fprintf(&b, "%s — %s:\n  ", s.Task, s.Benchmark)
		for i, f := range s.Fractions {
			fmt.Fprintf(&b, "Frame %d (%.0f%%)  ", i+1, f*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}
