package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hwmodel"
	"repro/internal/region"
	"repro/internal/workloads"
)

// Table4Row summarizes one task's observed region statistics (Table 4).
type Table4Row struct {
	Task       string
	AvgRegions float64
	MinW, MinH int
	MaxW, MaxH int
	MinStride  int
	MaxStride  int
	// MinRateMS and MaxRateMS are the sampling intervals in milliseconds
	// at 30 fps implied by the observed skip range (skip 1 = 33 ms).
	MinRateMS, MaxRateMS float64
}

// Table4 regenerates the observed statistics of task and benchmark by
// running each workload with its RP10 policy and aggregating the emitted
// labels on intermediate frames.
func Table4(s Scale) ([]Table4Row, error) {
	const frameMS = 1000.0 / 30

	rowFrom := func(task string, trace []region.List, w, h int, cl int, avg float64) Table4Row {
		// Aggregate stats over intermediate (non-full-capture) frames.
		var all region.List
		for i, ls := range trace {
			if i%cl == 0 {
				continue
			}
			all = append(all, ls...)
		}
		st := all.Stats(w, h)
		row := Table4Row{
			Task:       task,
			AvgRegions: avg,
			MinW:       st.MinW, MinH: st.MinH,
			MaxW: st.MaxW, MaxH: st.MaxH,
			MinStride: st.MinStride, MaxStride: st.MaxStride,
		}
		row.MinRateMS = frameMS * float64(st.MinSkip)
		row.MaxRateMS = frameMS * float64(st.MaxSkip)
		return row
	}

	var rows []Table4Row

	slamCfg := slamConfig(s)
	rpS, err := workloads.NewRP(slamCfg.CycleLength, slamCfg.W, slamCfg.H)
	if err != nil {
		return nil, err
	}
	slamRes, err := workloads.RunSLAM(slamCfg, rpS)
	if err != nil {
		return nil, err
	}
	rows = append(rows, rowFrom("Visual SLAM", slamRes.LabelTrace, slamCfg.W, slamCfg.H, slamCfg.CycleLength, slamRes.AvgRegions))

	faceCfg := faceConfig(s)
	rpF, err := workloads.NewRP(faceCfg.CycleLength, faceCfg.W, faceCfg.H)
	if err != nil {
		return nil, err
	}
	faceRes, err := workloads.RunFace(faceCfg, rpF)
	if err != nil {
		return nil, err
	}
	rows = append(rows, rowFrom("Face detection", faceRes.LabelTrace, faceCfg.W, faceCfg.H, faceCfg.CycleLength, faceRes.AvgRegions))

	poseCfg := poseConfig(s)
	rpP, err := workloads.NewRP(poseCfg.CycleLength, poseCfg.W, poseCfg.H)
	if err != nil {
		return nil, err
	}
	poseRes, err := workloads.RunPose(poseCfg, rpP)
	if err != nil {
		return nil, err
	}
	rows = append(rows, rowFrom("Human pose estimation", poseRes.LabelTrace, poseCfg.W, poseCfg.H, poseCfg.CycleLength, poseRes.AvgRegions))

	return rows, nil
}

// Table4Report renders the observed statistics table.
func Table4Report(rows []Table4Row) string {
	var tbl [][]string
	for _, r := range rows {
		tbl = append(tbl, []string{
			r.Task,
			fmt.Sprintf("%.0f", r.AvgRegions),
			fmt.Sprintf("%dx%d / %dx%d", r.MinW, r.MinH, r.MaxW, r.MaxH),
			fmt.Sprintf("%d / %d", r.MinStride, r.MaxStride),
			fmt.Sprintf("%.0f / %.0f ms", frameRate(r.MinRateMS), frameRate(r.MaxRateMS)),
		})
	}
	return table([]string{"Task", "Avg regions", "Region size min/max", "Stride min/max", "Rate fast/slow"}, tbl)
}

func frameRate(ms float64) float64 { return ms }

// Table5Row is one row of the encoder resource scaling table.
type Table5Row struct {
	Design  string
	Regions int
	hwmodel.Resources
}

// Table5 regenerates the encoder resource utilization comparison.
func Table5() []Table5Row {
	var rows []Table5Row
	for _, d := range []core.Design{core.DesignParallel, core.DesignHybrid} {
		for _, n := range []int{100, 200, 400, 1600} {
			rows = append(rows, Table5Row{
				Design:    d.String(),
				Regions:   n,
				Resources: hwmodel.EncoderResources(d, n),
			})
		}
	}
	return rows
}

// Table5Report renders the resource table.
func Table5Report(rows []Table5Row) string {
	var tbl [][]string
	for _, r := range rows {
		if !r.Synthesizable {
			tbl = append(tbl, []string{r.Design, fmt.Sprint(r.Regions), "No Synth", "No Synth", "No Synth"})
			continue
		}
		tbl = append(tbl, []string{
			r.Design, fmt.Sprint(r.Regions),
			fmt.Sprint(r.LUTs), fmt.Sprint(r.FFs), fmt.Sprint(r.BRAMs),
		})
	}
	return table([]string{"Type", "#Regions", "#LUTs", "#FFs", "#BRAMs"}, tbl)
}
