// Package experiments regenerates every table and figure of the paper's
// evaluation (§6 plus the Fig. 3 case study and the appendix frame
// progressions). Each experiment has a Quick variant (seconds, used by
// tests and benchmarks) and a Full variant (minutes, used by cmd/rpxbench);
// both produce the same report shape.
//
// Absolute numbers differ from the paper — the substrate is a software
// simulation and the datasets are synthetic — but each experiment asserts
// the paper's qualitative shape: who wins, roughly by how much, and where
// the trends point. EXPERIMENTS.md records paper-versus-measured values.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/region"
	"repro/internal/synth"
	"repro/internal/workloads"
)

// Scale identifies the experiment fidelity.
type Scale int

// Experiment scales.
const (
	// Quick runs in seconds with reduced frames/resolutions.
	Quick Scale = iota
	// Full approximates the paper's configuration.
	Full
)

// slamConfig returns the V-SLAM workload configuration at a scale.
func slamConfig(s Scale) workloads.SLAMConfig {
	cfg := workloads.DefaultSLAMConfig()
	if s == Quick {
		cfg.W, cfg.H = 320, 240
		cfg.Frames = 40
		cfg.WorldSize = 1024
		cfg.Profile = synth.ProfileSlow
	}
	return cfg
}

// faceConfig returns the face workload configuration at a scale.
func faceConfig(s Scale) workloads.FaceConfig {
	cfg := workloads.DefaultFaceConfig()
	if s == Quick {
		cfg.Frames = 60
	}
	return cfg
}

// poseConfig returns the pose workload configuration at a scale. Full scale
// uses a multi-person scene, as PoseTrack sequences do.
func poseConfig(s Scale) workloads.PoseConfig {
	cfg := workloads.DefaultPoseConfig()
	if s == Quick {
		cfg.W, cfg.H = 320, 240
		cfg.Frames = 50
	} else {
		cfg.People = 3
	}
	return cfg
}

// captureFor builds a capture model by name for a w x h pipeline.
func captureFor(name string, w, h int) (workloads.Capture, error) {
	switch name {
	case "FCH":
		return workloads.FCH{}, nil
	case "FCL":
		return workloads.FCL{Factor: 4}, nil
	case "RP5":
		return workloads.NewRP(5, w, h)
	case "RP10":
		return workloads.NewRP(10, w, h)
	case "RP15":
		return workloads.NewRP(15, w, h)
	case "Multi-ROI":
		return workloads.NewMultiROI(w, h)
	case "H.264":
		return workloads.H264{}, nil
	}
	return nil, fmt.Errorf("experiments: unknown capture %q", name)
}

// cycleLengthFor maps a capture name to the policy cycle length that
// produced it: rhythmic systems use their own CL; other systems are traced
// with the RP10 label stream (the paper compares baselines on the same
// workload request stream).
func cycleLengthFor(name string) int {
	switch name {
	case "RP5":
		return 5
	case "RP15":
		return 15
	default:
		return 10
	}
}

// ScaleTrace maps a per-frame label trace from simulation resolution to a
// target resolution (the paper evaluates SLAM at 4K, pose at 720p, face at
// SVGA; the vision loop runs at simulation scale, as the paper itself ran
// V-SLAM offline on a desktop and fed the labels to the encoder).
func ScaleTrace(trace []region.List, fromW, fromH, toW, toH int) []region.List {
	sx := float64(toW) / float64(fromW)
	sy := float64(toH) / float64(fromH)
	out := make([]region.List, len(trace))
	for i, ls := range trace {
		for _, l := range ls {
			scaled, ok := region.Clip(region.Label{
				X:      int(float64(l.X) * sx),
				Y:      int(float64(l.Y) * sy),
				W:      int(float64(l.W)*sx + 0.5),
				H:      int(float64(l.H)*sy + 0.5),
				Stride: l.Stride,
				Skip:   l.Skip,
				Phase:  l.Phase,
			}, toW, toH)
			if ok {
				out[i] = append(out[i], scaled)
			}
		}
		out[i] = out[i].SortByY()
	}
	return out
}

// table renders rows as a fixed-width text table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for i, w := range widths {
		b.WriteString(strings.Repeat("-", w))
		if i < len(widths)-1 {
			b.WriteString("  ")
		}
	}
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
