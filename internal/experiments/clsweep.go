package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// CLSweepRow captures the cycle-length trend of §6.1/6.2: traffic falls
// and error rises as the cycle length grows.
type CLSweepRow struct {
	CycleLength    int
	ThroughputMBps float64
	ATE            float64
	PixelFraction  float64
}

// CLSweep sweeps cycle lengths over the V-SLAM workload and reports the
// traffic/accuracy tradeoff ("memory traffic decreases by 5-10% with every
// 5 step increase in cycle length"; "higher cycle lengths ... take a toll
// on the task accuracy").
func CLSweep(s Scale, cycleLengths []int) ([]CLSweepRow, error) {
	if len(cycleLengths) == 0 {
		cycleLengths = []int{5, 10, 15}
	}
	var rows []CLSweepRow
	for _, cl := range cycleLengths {
		cfg := slamConfig(s)
		cfg.CycleLength = cl
		rp, err := workloads.NewRP(cl, cfg.W, cfg.H)
		if err != nil {
			return nil, err
		}
		res, err := workloads.RunSLAM(cfg, rp)
		if err != nil {
			return nil, err
		}
		tcfg := trace.Config{W: cfg.W, H: cfg.H, BytesPerPixel: 1, FPS: 30}
		tr, err := trace.Run(tcfg, baseline.NewRhythmic(cl, cfg.W, cfg.H, 1), res.LabelTrace)
		if err != nil {
			return nil, err
		}
		st := rp.Sys.Stats()
		frac := 0.0
		if st.PixelsIn > 0 {
			frac = float64(st.PixelsStored) / float64(st.PixelsIn)
		}
		rows = append(rows, CLSweepRow{
			CycleLength:    cl,
			ThroughputMBps: tr.TotalMBps,
			ATE:            res.ATE,
			PixelFraction:  frac,
		})
	}
	return rows, nil
}

// CLSweepReport renders the sweep.
func CLSweepReport(rows []CLSweepRow) string {
	var tbl [][]string
	for _, r := range rows {
		tbl = append(tbl, []string{
			fmt.Sprint(r.CycleLength),
			fmt.Sprintf("%.1f", r.ThroughputMBps),
			fmt.Sprintf("%.2f", r.ATE),
			fmt.Sprintf("%.1f%%", r.PixelFraction*100),
		})
	}
	return table([]string{"Cycle length", "Traffic MB/s", "ATE (px)", "Pixels stored"}, tbl)
}
