package experiments

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/region"
)

// Row-band parallelism scaling: encode and decode throughput versus worker
// count on the paper's 1080p reference workload. This is not a paper
// artifact — the paper's encoder is a 2 px/clock hardware pipeline — but it
// characterizes the software reproduction's multi-core headroom, and the
// run double-checks that every degree's output is byte-identical to the
// sequential reference before timing it.

// ParallelRow is one worker-count measurement.
type ParallelRow struct {
	// N is the row-band worker count.
	N int
	// Bands is the number of bands the frame actually splits into.
	Bands int
	// EncodeMBps and DecodeMBps are raw-frame throughput.
	EncodeMBps float64
	DecodeMBps float64
	// EncodeSpeedup and DecodeSpeedup are relative to the N=1 row.
	EncodeSpeedup float64
	DecodeSpeedup float64
}

// parallelDegrees are the worker counts the scaling experiment measures.
var parallelDegrees = []int{1, 2, 4, 8}

// parallelLabels builds the measurement workload: scattered rhythmic
// regions covering roughly the paper's 30% regional-pixel reference point.
func parallelLabels(w, h int) region.List {
	var ls region.List
	for i := 0; i < 200; i++ {
		l, ok := region.Clip(region.Label{
			X: (i * 131) % (w - 80), Y: (i * 197) % (h - 80),
			W: 60 + i%80, H: 60 + (i*3)%80,
			Stride: 1 + i%3, Skip: 1 + i%3,
		}, w, h)
		if ok {
			ls = append(ls, l)
		}
	}
	return ls.SortByY()
}

// ParallelScaling measures encode and decode throughput per worker count.
func ParallelScaling(s Scale) ([]ParallelRow, error) {
	w, h, frames := 1920, 1080, 8
	if s == Quick {
		w, h, frames = 960, 540, 4
	}
	labels := parallelLabels(w, h)
	fr := frame.New(w, h, frame.Gray8)
	for i := range fr.Pix {
		fr.Pix[i] = byte(i * 13)
	}

	// Sequential reference output for the byte-equality check.
	refEnc := core.NewEncoder(w, h, frame.Gray8)
	if err := refEnc.SetRegionLabels(labels); err != nil {
		return nil, err
	}
	refEF, err := refEnc.EncodeFrame(fr, 0)
	if err != nil {
		return nil, err
	}
	refDec := core.NewDecoder(w, h, frame.Gray8)
	if err := refDec.Push(refEF); err != nil {
		return nil, err
	}
	refOut, err := refDec.DecodeFrame()
	if err != nil {
		return nil, err
	}

	rows := make([]ParallelRow, 0, len(parallelDegrees))
	frameMB := float64(w*h) / 1e6
	for _, n := range parallelDegrees {
		enc := core.NewParallelEncoder(w, h, frame.Gray8, n)
		if err := enc.SetRegionLabels(labels); err != nil {
			return nil, err
		}
		ef, err := enc.EncodeFrame(fr, 0)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(ef.Pix, refEF.Pix) || !ef.Mask.Equal(refEF.Mask) {
			return nil, fmt.Errorf("experiments: parallel encode n=%d diverges from sequential", n)
		}
		dec := core.NewDecoder(w, h, frame.Gray8, core.WithParallelism(n))
		if err := dec.Push(ef); err != nil {
			return nil, err
		}
		out, err := dec.DecodeFrame()
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(out.Pix, refOut.Pix) {
			return nil, fmt.Errorf("experiments: parallel decode n=%d diverges from sequential", n)
		}

		start := time.Now()
		for i := 0; i < frames; i++ {
			if _, err := enc.EncodeFrame(fr, i); err != nil {
				return nil, err
			}
		}
		encSec := time.Since(start).Seconds()

		start = time.Now()
		for i := 0; i < frames; i++ {
			if _, err := dec.DecodeFrame(); err != nil {
				return nil, err
			}
		}
		decSec := time.Since(start).Seconds()

		rows = append(rows, ParallelRow{
			N:          n,
			Bands:      enc.Bands(),
			EncodeMBps: frameMB * float64(frames) / encSec,
			DecodeMBps: frameMB * float64(frames) / decSec,
		})
	}
	for i := range rows {
		rows[i].EncodeSpeedup = rows[i].EncodeMBps / rows[0].EncodeMBps
		rows[i].DecodeSpeedup = rows[i].DecodeMBps / rows[0].DecodeMBps
	}
	return rows, nil
}

// ParallelReport renders the scaling table.
func ParallelReport(rows []ParallelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Row-band parallel scaling (byte-identical to sequential at every degree)\n")
	fmt.Fprintf(&b, "%8s %8s %14s %14s %10s %10s\n", "workers", "bands", "encode MB/s", "decode MB/s", "enc x", "dec x")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %8d %14.1f %14.1f %9.2fx %9.2fx\n",
			r.N, r.Bands, r.EncodeMBps, r.DecodeMBps, r.EncodeSpeedup, r.DecodeSpeedup)
	}
	return b.String()
}

// ParallelCSV writes the scaling rows as CSV.
func ParallelCSV(w io.Writer, rows []ParallelRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workers", "bands", "encode_mbps", "decode_mbps", "encode_speedup", "decode_speedup"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			fmt.Sprintf("%d", r.N),
			fmt.Sprintf("%d", r.Bands),
			fmt.Sprintf("%.2f", r.EncodeMBps),
			fmt.Sprintf("%.2f", r.DecodeMBps),
			fmt.Sprintf("%.3f", r.EncodeSpeedup),
			fmt.Sprintf("%.3f", r.DecodeSpeedup),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
