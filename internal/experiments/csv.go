package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSV emitters so the regenerated figures can be plotted directly; one
// writer per multi-series artifact.

// Fig8CSV writes the Fig. 8 rows as CSV.
func Fig8CSV(w io.Writer, rows []Fig8Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "system", "total_mbps", "write_mbps", "read_mbps", "mean_footprint_mb"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Workload, r.System,
			fmt.Sprintf("%.3f", r.ThroughputMBps),
			fmt.Sprintf("%.3f", r.WriteMBps),
			fmt.Sprintf("%.3f", r.ReadMBps),
			fmt.Sprintf("%.3f", r.MeanFootprintMB),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig9SLAMCSV writes the Fig. 9a rows as CSV.
func Fig9SLAMCSV(w io.Writer, rows []Fig9SLAMRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"system", "ate_px", "ate_std", "rpe_trans_px", "rpe_rot_rad"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.System,
			fmt.Sprintf("%.4f", r.ATE),
			fmt.Sprintf("%.4f", r.ATEStd),
			fmt.Sprintf("%.4f", r.RPETrans),
			fmt.Sprintf("%.6f", r.RPERot),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig9DetectionCSV writes Fig. 9b/9c rows as CSV.
func Fig9DetectionCSV(w io.Writer, task string, rows []Fig9DetectionRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"task", "system", "map", "accuracy"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{task, r.System, fmt.Sprintf("%.4f", r.MAP), fmt.Sprintf("%.4f", r.Accuracy)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// AppendixCSV writes the frame-progression series as CSV (one row per
// task/frame pair).
func AppendixCSV(w io.Writer, series []AppendixSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"task", "benchmark", "frame", "pixel_fraction"}); err != nil {
		return err
	}
	for _, s := range series {
		for i, f := range s.Fractions {
			rec := []string{s.Task, s.Benchmark, fmt.Sprint(i + 1), fmt.Sprintf("%.4f", f)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// CLSweepCSV writes the cycle-length sweep as CSV.
func CLSweepCSV(w io.Writer, rows []CLSweepRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cycle_length", "traffic_mbps", "ate_px", "pixel_fraction"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			fmt.Sprint(r.CycleLength),
			fmt.Sprintf("%.3f", r.ThroughputMBps),
			fmt.Sprintf("%.4f", r.ATE),
			fmt.Sprintf("%.4f", r.PixelFraction),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
