package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/frame"
	"repro/internal/policy"
	"repro/internal/synth"
	"repro/rpx"
)

// Closed-loop policy pricing: the rpxpolicy worker's observe→label cycle
// run in-process against synthetic scenes, sweeping the cycle length to
// trace each policy's accuracy-vs-traffic curve. The loop here is the same
// control flow internal/policyloop drives over the wire — capture, decode,
// difference the two most recent decoded frames into a motion grid, let the
// policy classify, install the resulting workload for the next CL frames —
// with the transport removed so the numbers isolate the policy's effect on
// the pixel stream from network costs. Accuracy is measured against the
// pristine input (what an always-full-frame capture would store), so a
// policy's curve shows exactly what precision it trades for the traffic it
// saves.

// PolicyLoopRow is one (workload, policy, cycle length) measurement.
type PolicyLoopRow struct {
	// Workload names the synthetic scene.
	Workload string `json:"workload"`
	// Policy is the registry name driving the loop.
	Policy string `json:"policy"`
	// CycleLength is the loop cadence in frames.
	CycleLength int `json:"cycle_length"`
	// MAE is the mean absolute per-pixel error of the decoded stream
	// against the pristine input, over all frames.
	MAE float64 `json:"mae"`
	// PSNRdB is the mean per-frame PSNR in dB (lossless frames counted at
	// the 99 dB cap so the mean stays finite).
	PSNRdB float64 `json:"psnr_db"`
	// PixelFraction is stored pixels / sensor pixels — the paper's traffic
	// proxy.
	PixelFraction float64 `json:"pixel_fraction"`
	// BytesPerFrame is mean encoded bytes (payload + metadata) per frame.
	BytesPerFrame float64 `json:"bytes_per_frame"`
}

// psnrCap keeps lossless frames from dragging the mean to +Inf.
const psnrCap = 99.0

// policyLoopScene produces the t-th input frame of a workload.
type policyLoopScene struct {
	name   string
	render func(t int) *frame.Frame
}

// policyLoopScenes builds the two synthetic workloads at the given
// geometry: a bouncing bright box over a fixed textured background (compact
// motion, most of the scene static — the regime the scenario policies are
// built for), and a slow camera pan over a textured world (global motion,
// every tile changing a little).
func policyLoopScenes(w, h, frames int) []policyLoopScene {
	boxBG := frame.New(w, h, frame.Gray8)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			boxBG.Pix[y*w+x] = byte(24 + 13*((x/8+y/8)%2) + (x*7+y*3)%9)
		}
	}
	world := synth.NewWorld(4*w, 4*h, 11)
	gt := world.Trajectory(frames, w, h, synth.ProfileSlow, 17)
	return []policyLoopScene{
		{name: "moving-box", render: func(t int) *frame.Frame {
			fr := boxBG.Clone()
			bx := (t * 5) % (w - 16)
			by := (t * 3) % (h - 16)
			for y := by; y < by+16; y++ {
				for x := bx; x < bx+16; x++ {
					fr.Pix[y*w+x] = 230
				}
			}
			return fr
		}},
		{name: "pan-world", render: func(t int) *frame.Frame {
			return world.Render(gt[t], w, h)
		}},
	}
}

// PolicyLoop sweeps the three scenario policies over cycle lengths on both
// workloads.
func PolicyLoop(s Scale) ([]PolicyLoopRow, error) {
	w, h, frames := 96, 72, 64
	cls := []int{2, 8}
	if s == Full {
		w, h, frames = 160, 120, 240
		cls = []int{2, 4, 8, 16}
	}
	policies := []string{"motion-skip", "saliency-stride", "event-change"}
	var rows []PolicyLoopRow
	for _, scene := range policyLoopScenes(w, h, frames) {
		for _, pol := range policies {
			for _, cl := range cls {
				row, err := policyLoopRun(scene, pol, w, h, cl, frames)
				if err != nil {
					return nil, fmt.Errorf("experiments: policyloop %s/%s CL %d: %w", scene.name, pol, cl, err)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// policyLoopRun drives one closed loop to completion.
func policyLoopRun(scene policyLoopScene, polName string, w, h, cl, frames int) (PolicyLoopRow, error) {
	pol, err := policy.Build(polName, w, h, cl)
	if err != nil {
		return PolicyLoopRow{}, err
	}
	sys, err := rpx.NewSystem(w, h, rpx.Gray8)
	if err != nil {
		return PolicyLoopRow{}, err
	}
	if err := sys.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(w, h)}); err != nil {
		return PolicyLoopRow{}, err
	}
	motion := policy.NewMotionMap(w, h, 0)
	var prev, cur *frame.Frame
	var maeSum, psnrSum float64
	var bytesSum int64
	sinceCycle, pushes := 0, 0
	for t := 0; t < frames; t++ {
		in := scene.render(t)
		cs, err := sys.Capture(in)
		if err != nil {
			return PolicyLoopRow{}, err
		}
		bytesSum += int64(cs.EncodedBytes)
		out, err := sys.Decoded()
		if err != nil {
			return PolicyLoopRow{}, err
		}
		mae, err := frame.MAE(in, out)
		if err != nil {
			return PolicyLoopRow{}, err
		}
		maeSum += mae
		psnr, err := frame.PSNR(in, out)
		if err != nil {
			return PolicyLoopRow{}, err
		}
		psnrSum += math.Min(psnr, psnrCap)
		prev, cur = cur, out.Clone()

		// The worker's cadence: once per CL frames, difference the two most
		// recent decoded frames and install the policy's next workload.
		if sinceCycle++; sinceCycle < cl || prev == nil {
			continue
		}
		sinceCycle = 0
		if err := motion.Update(prev, cur); err != nil {
			return PolicyLoopRow{}, err
		}
		pol.Observe(policy.Feedback{Motion: motion})
		if err := sys.SetRegionLabels(pol.Labels(pushes)); err != nil {
			return PolicyLoopRow{}, err
		}
		pushes++
	}
	st := sys.Stats()
	frac := 0.0
	if st.PixelsIn > 0 {
		frac = float64(st.PixelsStored) / float64(st.PixelsIn)
	}
	return PolicyLoopRow{
		Workload:      scene.name,
		Policy:        polName,
		CycleLength:   cl,
		MAE:           maeSum / float64(frames),
		PSNRdB:        psnrSum / float64(frames),
		PixelFraction: frac,
		BytesPerFrame: float64(bytesSum) / float64(frames),
	}, nil
}

// PolicyLoopReport renders the curves, one block per workload.
func PolicyLoopReport(rows []PolicyLoopRow) string {
	var tbl [][]string
	for _, r := range rows {
		tbl = append(tbl, []string{
			r.Workload,
			r.Policy,
			fmt.Sprint(r.CycleLength),
			fmt.Sprintf("%.3f", r.MAE),
			fmt.Sprintf("%.1f", r.PSNRdB),
			fmt.Sprintf("%.1f%%", r.PixelFraction*100),
			fmt.Sprintf("%.0f", r.BytesPerFrame),
		})
	}
	return table([]string{"Workload", "Policy", "CL", "MAE", "PSNR dB", "Pixels stored", "Bytes/frame"}, tbl)
}

// PolicyLoopCSV writes one row per measurement for plotting.
func PolicyLoopCSV(w io.Writer, rows []PolicyLoopRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "policy", "cycle_length", "mae", "psnr_db", "pixel_fraction", "bytes_per_frame"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Workload,
			r.Policy,
			fmt.Sprintf("%d", r.CycleLength),
			fmt.Sprintf("%.4f", r.MAE),
			fmt.Sprintf("%.2f", r.PSNRdB),
			fmt.Sprintf("%.4f", r.PixelFraction),
			fmt.Sprintf("%.1f", r.BytesPerFrame),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// PolicyLoopJSON writes the rows as the BENCH_policyloop.json document.
func PolicyLoopJSON(w io.Writer, rows []PolicyLoopRow) error {
	doc := struct {
		Experiment string          `json:"experiment"`
		Workload   string          `json:"workload"`
		Rows       []PolicyLoopRow `json:"rows"`
	}{
		Experiment: "policyloop_accuracy_vs_traffic",
		Workload:   "closed-loop scenario policies over moving-box and pan-world gray8 scenes, CL sweep",
		Rows:       rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
