package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/region"
)

// Metadata-tax pricing for the packed (v2) RPXE container. The paper notes
// the EncMask costs 2 bits per pixel against 24-bit pixels — a fixed ~8.3%
// of frame data regardless of how sparse the captured regions are. The v2
// container run-length encodes the mask and delta-varints the row offsets,
// so the metadata bill tracks region-boundary complexity instead of frame
// area. This experiment prices both container forms over the exact same
// encoded frames: synthetic region workloads at QVGA, an adversarial
// alternating-stride workload that forces the encoder's raw fallback, and
// the three dataset-driven label traces (SLAM, pose, face) the figure-8
// pipeline produces at simulation resolution.

// MaskCodecRow is one workload's raw-vs-packed measurement. Byte figures
// are per-frame averages across the workload's label trace.
type MaskCodecRow struct {
	// Workload names the label source.
	Workload string `json:"workload"`
	// W, H is the frame geometry; Frames is the trace length measured.
	W      int `json:"w"`
	H      int `json:"h"`
	Frames int `json:"frames"`
	// RawMetaBytes / PackedMetaBytes are the container's metadata tail
	// (row offsets + mask) per frame, excluding the fixed header and the
	// pixel payload, in v1 and v2 form.
	RawMetaBytes    float64 `json:"raw_meta_bytes_per_frame"`
	PackedMetaBytes float64 `json:"packed_meta_bytes_per_frame"`
	// MetaRatioX is RawMetaBytes/PackedMetaBytes — the metadata shrink.
	MetaRatioX float64 `json:"meta_ratio_x"`
	// RawWireMBps / PackedWireMBps are whole-container wire datarates at
	// the evaluation frame rate (header + payload + metadata).
	RawWireMBps    float64 `json:"raw_wire_mbps"`
	PackedWireMBps float64 `json:"packed_wire_mbps"`
	// RawMetaFracPct / PackedMetaFracPct are the metadata tail as a
	// percentage of the whole container, comparable to the paper's ~8.3%
	// EncMask-over-frame-data figure.
	RawMetaFracPct    float64 `json:"raw_meta_frac_pct"`
	PackedMetaFracPct float64 `json:"packed_meta_frac_pct"`
}

const (
	// maskCodecFPS is the evaluation frame rate (the paper's 30 fps).
	maskCodecFPS = 30
	// maskCodecW, maskCodecH is the synthetic workloads' geometry.
	maskCodecW = 320
	maskCodecH = 240
	// PaperMaskOverheadPct is the paper's fixed EncMask tax: 2 bits of
	// mask per 24-bit pixel, ~8.3% of frame data, the baseline the packed
	// codec is priced against.
	PaperMaskOverheadPct = 100.0 * 2 / 24
)

// maskCodecSynthetics are the fixed-label synthetic workloads. The
// adversarial row alternates R/St on every pixel of every row — the RLE
// worst case — so it demonstrates the encoder's raw-fallback bound rather
// than a win.
func maskCodecSynthetics() []struct {
	name   string
	labels region.List
} {
	return []struct {
		name   string
		labels region.List
	}{
		{"synthetic full frame", region.List{
			{X: 0, Y: 0, W: maskCodecW, H: maskCodecH, Stride: 1, Skip: 1},
		}},
		{"synthetic center ROI", region.List{
			{X: 80, Y: 60, W: 160, H: 120, Stride: 1, Skip: 1},
		}},
		{"synthetic multi-ROI", region.List{
			{X: 12, Y: 20, W: 72, H: 56, Stride: 1, Skip: 2},
			{X: 180, Y: 64, W: 96, H: 80, Stride: 1, Skip: 1},
			{X: 40, Y: 170, W: 120, H: 48, Stride: 1, Skip: 3, Phase: 1},
		}},
		{"adversarial alternating", region.List{
			{X: 0, Y: 0, W: maskCodecW, H: maskCodecH, Stride: 2, Skip: 1},
		}},
	}
}

// MaskCodec prices the raw and packed container forms over synthetic and
// dataset-trace workloads.
func MaskCodec(s Scale) ([]MaskCodecRow, error) {
	frames := 32
	if s == Full {
		frames = 128
	}
	var rows []MaskCodecRow
	for _, syn := range maskCodecSynthetics() {
		labels := syn.labels
		row, err := maskCodecMeasure(syn.name, maskCodecW, maskCodecH, frames,
			func(int) region.List { return labels })
		if err != nil {
			return nil, fmt.Errorf("experiments: maskcodec %s: %w", syn.name, err)
		}
		rows = append(rows, row)
	}

	// Dataset workloads: the same policy-in-the-loop label traces the
	// figure-8 traffic evaluation uses, at simulation resolution and the
	// paper's default cycle length of 10.
	traces, err := labelTraces(s)
	if err != nil {
		return nil, fmt.Errorf("experiments: maskcodec traces: %w", err)
	}
	names := []string{"slam trace", "pose trace", "face trace"}
	for wi, name := range names {
		tr := traces[wi][10]
		row, err := maskCodecMeasure(name, tr.w, tr.h, len(tr.labels),
			func(i int) region.List { return tr.labels[i] })
		if err != nil {
			return nil, fmt.Errorf("experiments: maskcodec %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// maskCodecMeasure encodes one workload's frames and serializes each in
// both container forms. Metadata size depends only on the labels and frame
// index (never pixel values), so the pixel content is a fixed pattern.
func maskCodecMeasure(name string, w, h, frames int, labelsAt func(i int) region.List) (MaskCodecRow, error) {
	enc := core.NewEncoder(w, h, frame.RGB24)
	fr := frame.New(w, h, frame.RGB24)
	for p := range fr.Pix {
		fr.Pix[p] = byte(p*31 + 7)
	}
	var rawScratch, packedScratch []byte
	var rawMeta, packedMeta, rawTotal, packedTotal float64
	for i := 0; i < frames; i++ {
		if err := enc.SetRegionLabels(labelsAt(i)); err != nil {
			return MaskCodecRow{}, err
		}
		ef, err := enc.EncodeFrame(fr, i)
		if err != nil {
			return MaskCodecRow{}, err
		}
		rawScratch = ef.AppendTo(rawScratch[:0])
		packedScratch = ef.AppendPacked(packedScratch[:0])
		body := core.EncodedHeaderSize + len(ef.Pix)
		rawTotal += float64(len(rawScratch))
		packedTotal += float64(len(packedScratch))
		rawMeta += float64(len(rawScratch) - body)
		packedMeta += float64(len(packedScratch) - body)
	}
	n := float64(frames)
	return MaskCodecRow{
		Workload:          name,
		W:                 w,
		H:                 h,
		Frames:            frames,
		RawMetaBytes:      rawMeta / n,
		PackedMetaBytes:   packedMeta / n,
		MetaRatioX:        rawMeta / packedMeta,
		RawWireMBps:       rawTotal / n * maskCodecFPS / 1e6,
		PackedWireMBps:    packedTotal / n * maskCodecFPS / 1e6,
		RawMetaFracPct:    100 * rawMeta / rawTotal,
		PackedMetaFracPct: 100 * packedMeta / packedTotal,
	}, nil
}

// MaskCodecReport renders the pricing table.
func MaskCodecReport(rows []MaskCodecRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Packed-metadata codec vs raw container (paper EncMask tax: %.1f%% of frame data)\n",
		PaperMaskOverheadPct)
	fmt.Fprintf(&b, "%-26s %10s %7s %12s %12s %7s %10s %10s %8s %8s\n",
		"workload", "geometry", "frames", "raw meta B/f", "pack meta B/f", "ratio",
		"raw MB/s", "pack MB/s", "raw m%", "pack m%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %4dx%-5d %7d %12.1f %12.1f %6.1fx %10.2f %10.2f %7.2f%% %7.2f%%\n",
			r.Workload, r.W, r.H, r.Frames, r.RawMetaBytes, r.PackedMetaBytes, r.MetaRatioX,
			r.RawWireMBps, r.PackedWireMBps, r.RawMetaFracPct, r.PackedMetaFracPct)
	}
	return b.String()
}

// MaskCodecCSV writes the rows as CSV.
func MaskCodecCSV(w io.Writer, rows []MaskCodecRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "w", "h", "frames",
		"raw_meta_bytes_per_frame", "packed_meta_bytes_per_frame", "meta_ratio_x",
		"raw_wire_mbps", "packed_wire_mbps", "raw_meta_frac_pct", "packed_meta_frac_pct",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Workload,
			fmt.Sprintf("%d", r.W),
			fmt.Sprintf("%d", r.H),
			fmt.Sprintf("%d", r.Frames),
			fmt.Sprintf("%.1f", r.RawMetaBytes),
			fmt.Sprintf("%.1f", r.PackedMetaBytes),
			fmt.Sprintf("%.3f", r.MetaRatioX),
			fmt.Sprintf("%.3f", r.RawWireMBps),
			fmt.Sprintf("%.3f", r.PackedWireMBps),
			fmt.Sprintf("%.3f", r.RawMetaFracPct),
			fmt.Sprintf("%.3f", r.PackedMetaFracPct),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// MaskCodecJSON writes the rows as the BENCH_maskcodec.json document.
func MaskCodecJSON(w io.Writer, rows []MaskCodecRow) error {
	doc := struct {
		Experiment       string         `json:"experiment"`
		Workload         string         `json:"workload"`
		PaperBaselinePct float64        `json:"paper_encmask_overhead_pct"`
		FPS              int            `json:"fps"`
		Rows             []MaskCodecRow `json:"rows"`
	}{
		Experiment:       "maskcodec_packed_vs_raw",
		Workload:         "RGB24 encode -> RPXE serialize, v1 raw vs v2 packed metadata; synthetic QVGA regions + fig8 label traces",
		PaperBaselinePct: PaperMaskOverheadPct,
		FPS:              maskCodecFPS,
		Rows:             rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
