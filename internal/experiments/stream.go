package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/wire"
	"repro/rpx"
	"repro/rpx/client"
)

// Streaming delivery: frames/sec getting one sensor pipeline's encoded
// frames into N consumers' hands, protocol v3 push versus v2
// request/reply. Not a paper artifact — the paper's system is a single
// sensor pipeline — but it prices the fan-out mechanism the scale-out
// reproduction adds. Request/reply has no cross-session read, so v2
// fan-out means every consumer runs its own capture + GET_ENCODED
// pipeline: N consumers cost N encodes and 2N round trips per frame. v3
// fan-out captures and encodes once and pushes the shared bytes down N
// credit-windowed streams.

// StreamRow is one consumer-count measurement.
type StreamRow struct {
	// Sessions is the number of consumer sessions receiving the frames.
	Sessions int `json:"sessions"`
	// RPCFPS is delivered frames/sec with each consumer running its own
	// capture + LastEncoded pull pipeline (the only v2 fan-out).
	RPCFPS float64 `json:"rpc_fps"`
	// PushFPS is delivered frames/sec with one producer capturing and
	// every consumer on a v3 SUBSCRIBE stream.
	PushFPS float64 `json:"push_fps"`
	// SpeedupX is PushFPS/RPCFPS; above 1 means push wins.
	SpeedupX float64 `json:"speedup_x"`
}

// streamGeometry matches the gateway bench: frames small enough that the
// wire hop, not the encoder, dominates.
const (
	streamW = 160
	streamH = 120
)

// StreamDelivery measures pull-versus-push frame delivery over one
// in-process rpxd backend.
func StreamDelivery(s Scale) ([]StreamRow, error) {
	counts := []int{1, 8}
	frames := 12
	if s == Full {
		counts = []int{1, 8, 64}
		frames = 40
	}

	addrs, stop, err := startGatewayBenchBackends(1)
	if err != nil {
		return nil, err
	}
	defer stop()
	addr := addrs[0]

	rows := make([]StreamRow, 0, len(counts))
	for _, n := range counts {
		rpcFPS, err := streamRunRPC(addr, n, frames)
		if err != nil {
			return nil, fmt.Errorf("experiments: rpc run %d sessions: %w", n, err)
		}
		pushFPS, err := streamRunPush(addr, n, frames)
		if err != nil {
			return nil, fmt.Errorf("experiments: push run %d sessions: %w", n, err)
		}
		rows = append(rows, StreamRow{
			Sessions: n,
			RPCFPS:   rpcFPS,
			PushFPS:  pushFPS,
			SpeedupX: pushFPS / rpcFPS,
		})
	}
	return rows, nil
}

// streamDial opens a producer session with a full-frame label installed.
func streamDial(addr string) (*client.Session, error) {
	sess, err := client.Dial(addr, client.Config{
		W: streamW, H: streamH, Format: rpx.Gray8, Block: true,
	})
	if err != nil {
		return nil, err
	}
	if err := sess.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(streamW, streamH)}); err != nil {
		sess.Close()
		return nil, err
	}
	return sess, nil
}

// streamRunRPC times n consumer sessions each running the full v2 fan-out
// pipeline: capture every frame and pull its encoded bytes via
// LastEncoded (request/reply has no cross-session read, so each consumer
// repeats the capture).
func streamRunRPC(addr string, sessions, frames int) (fps float64, err error) {
	open := make([]*client.Session, 0, sessions)
	defer func() {
		for _, s := range open {
			s.Close()
		}
	}()
	for i := 0; i < sessions; i++ {
		sess, derr := streamDial(addr)
		if derr != nil {
			return 0, derr
		}
		open = append(open, sess)
	}

	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		mu    sync.Mutex
	)
	fail := func(e error) {
		mu.Lock()
		if err == nil {
			err = e
		}
		mu.Unlock()
	}
	for si, sess := range open {
		wg.Add(1)
		go func(si int, sess *client.Session) {
			defer wg.Done()
			fr := rpx.NewFrame(streamW, streamH, rpx.Gray8)
			<-start
			for i := 0; i < frames; i++ {
				for p := range fr.Pix {
					fr.Pix[p] = byte(si*37 + i*11 + p)
				}
				if _, cerr := sess.Capture(fr); cerr != nil {
					fail(fmt.Errorf("session %d capture %d: %w", si, i, cerr))
					return
				}
				ef, gerr := sess.LastEncoded()
				if gerr != nil {
					fail(fmt.Errorf("session %d pull %d: %w", si, i, gerr))
					return
				}
				if ef.FrameIndex != i {
					fail(fmt.Errorf("session %d pull %d returned frame %d", si, i, ef.FrameIndex))
					return
				}
			}
		}(si, sess)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	if err != nil {
		return 0, err
	}
	return float64(sessions*frames) / elapsed, nil
}

// streamRunPush times one producer fanning out to n subscribers over v3
// push streams; the clock stops when every subscriber holds all frames.
func streamRunPush(addr string, sessions, frames int) (fps float64, err error) {
	producer, err := streamDial(addr)
	if err != nil {
		return 0, err
	}
	defer producer.Close()
	subscribers := make([]*client.Session, 0, sessions)
	streams := make([]*client.Stream, 0, sessions)
	defer func() {
		for _, s := range subscribers {
			s.Close()
		}
	}()
	for i := 0; i < sessions; i++ {
		sub, derr := client.Dial(addr, client.Config{W: 8, H: 8, Format: rpx.Gray8})
		if derr != nil {
			return 0, derr
		}
		subscribers = append(subscribers, sub)
		st, serr := sub.Subscribe(client.SubscribeOptions{
			Target: producer.ID(), Credit: wire.MaxCreditWindow, Batch: 8,
		})
		if serr != nil {
			return 0, serr
		}
		streams = append(streams, st)
	}

	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		mu    sync.Mutex
	)
	fail := func(e error) {
		mu.Lock()
		if err == nil {
			err = e
		}
		mu.Unlock()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		fr := rpx.NewFrame(streamW, streamH, rpx.Gray8)
		<-start
		for i := 0; i < frames; i++ {
			for p := range fr.Pix {
				fr.Pix[p] = byte(i*11 + p)
			}
			if _, cerr := producer.Capture(fr); cerr != nil {
				fail(fmt.Errorf("producer capture %d: %w", i, cerr))
				return
			}
		}
	}()
	for si, st := range streams {
		wg.Add(1)
		go func(si int, st *client.Stream) {
			defer wg.Done()
			<-start
			for i := 0; i < frames; i++ {
				f, rerr := st.Recv()
				if rerr != nil {
					fail(fmt.Errorf("subscriber %d recv %d: %w", si, i, rerr))
					return
				}
				if f.Seq != uint64(i) || f.Dropped != 0 {
					fail(fmt.Errorf("subscriber %d frame %d: seq %d dropped %d", si, i, f.Seq, f.Dropped))
					return
				}
			}
		}(si, st)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	if err != nil {
		return 0, err
	}
	return float64(sessions*frames) / elapsed, nil
}

// StreamReport renders the delivery table.
func StreamReport(rows []StreamRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Frame fan-out: %dx%d Gray8, one pipeline's encoded frames to N consumers\n", streamW, streamH)
	fmt.Fprintf(&b, "%10s %14s %14s %10s\n", "consumers", "pull f/s", "push f/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %14.0f %14.0f %9.2fx\n", r.Sessions, r.RPCFPS, r.PushFPS, r.SpeedupX)
	}
	return b.String()
}

// StreamCSV writes the delivery rows as CSV.
func StreamCSV(w io.Writer, rows []StreamRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sessions", "rpc_fps", "push_fps", "speedup_x"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			fmt.Sprintf("%d", r.Sessions),
			fmt.Sprintf("%.1f", r.RPCFPS),
			fmt.Sprintf("%.1f", r.PushFPS),
			fmt.Sprintf("%.3f", r.SpeedupX),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// StreamJSON writes the delivery rows as the BENCH_stream.json document.
func StreamJSON(w io.Writer, rows []StreamRow) error {
	doc := struct {
		Experiment string      `json:"experiment"`
		Workload   string      `json:"workload"`
		Rows       []StreamRow `json:"rows"`
	}{
		Experiment: "stream_push_vs_rpc",
		Workload:   fmt.Sprintf("%dx%d gray8 capture, full-frame labels, batch 8", streamW, streamH),
		Rows:       rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
