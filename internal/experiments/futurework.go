package experiments

import (
	"fmt"
	"math"

	"repro/internal/bitpack"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/features"
	"repro/internal/policy"
	"repro/internal/region"
	"repro/internal/synth"
	"repro/internal/workloads"
)

// FutureWorkResult quantifies the three §7 directions on top of the
// reproduced system:
//
//   - DRAM-less computing: how often the intermediate-frame encoded buffers
//     fit an on-chip SRAM budget, so the system could avoid DRAM entirely
//     between full captures;
//   - Rhythmic pixel camera: the further energy saving from moving the
//     encoder before the CSI link (sensor-side), which shrinks interface
//     traffic to the encoded stream;
//   - Adaptive cycle length: traffic and pixel savings of a motion-adaptive
//     cycle against the best fixed cycle on a mixed-motion sequence.
type FutureWorkResult struct {
	// SRAMBudgetMB is the assumed on-chip buffer budget.
	SRAMBudgetMB float64
	// IntermediateFitFraction is the share of intermediate frames whose
	// encoded frame (payload + metadata) fits the budget.
	IntermediateFitFraction float64
	// MeanIntermediateMB is the average intermediate encoded-frame size.
	MeanIntermediateMB float64

	// CSISavingsMWAtISP and CSISavingsMWInSensor compare encoder placement:
	// at the ISP output the CSI still carries the full stream; inside the
	// camera it carries only encoded pixels.
	CSISavingsMWAtISP    float64
	CSISavingsMWInSensor float64

	// AdaptivePixelFraction and FixedPixelFraction compare stored-pixel
	// shares of the adaptive policy against a fixed CL=10 on a sequence
	// alternating static and fast segments.
	AdaptivePixelFraction float64
	FixedPixelFraction    float64
	// AdaptiveMeanCycle is the average cycle length the adaptive policy
	// chose.
	AdaptiveMeanCycle float64
}

// FutureWork runs the §7 analyses.
func FutureWork(s Scale) (FutureWorkResult, error) {
	out := FutureWorkResult{SRAMBudgetMB: 4}

	// --- DRAM-less: intermediate encoded-frame sizes vs SRAM budget ---
	cfg := slamConfig(s)
	rp, err := workloads.NewRP(cfg.CycleLength, cfg.W, cfg.H)
	if err != nil {
		return out, err
	}
	res, err := workloads.RunSLAM(cfg, rp)
	if err != nil {
		return out, err
	}
	// Evaluate on a 1080p mobile pipeline with 3-byte pixels: the DRAM-less
	// question is whether *intermediate* encoded frames fit an SoC-SRAM
	// class buffer, which is plausible at 1080p (a 4K intermediate frame at
	// ~30% coverage is ~9 MB and still needs DRAM).
	const w, h = 1920, 1080
	scaled := ScaleTrace(res.LabelTrace, cfg.W, cfg.H, w, h)
	meta := float64((w*h+3)/4 + 4*(h+1))
	fit, count := 0, 0
	var sizeSum float64
	var fullPixels, encodedPixels float64
	for t, labels := range scaled {
		counts := core.CountCodes(w, h, t, labels)
		rPix := float64(counts[bitpack.CodeR])
		fullPixels += float64(w * h)
		encodedPixels += rPix
		if t%cfg.CycleLength == 0 {
			continue // full captures go to DRAM regardless
		}
		size := rPix*fig8BPP + meta
		sizeSum += size
		count++
		if size <= out.SRAMBudgetMB*1e6 {
			fit++
		}
	}
	if count > 0 {
		out.IntermediateFitFraction = float64(fit) / float64(count)
		out.MeanIntermediateMB = sizeSum / float64(count) / 1e6
	}

	// --- Rhythmic pixel camera: CSI traffic by encoder placement ---
	// Evaluated at the paper's 4K sensor stream: moving the encoder into
	// the camera shrinks MIPI traffic by the discarded-pixel fraction.
	frames := float64(len(scaled))
	model := energy.Default
	const csiW, csiH = 3840, 2160
	const fps = 30.0
	encodedFraction := encodedPixels / fullPixels
	csiEnergyPerFrame := func(pixels float64) float64 {
		e := model.Energy(energy.Activity{PixelsOverCSI: int64(pixels * frames)})
		return e.CommMJ / frames
	}
	fullCSI := csiEnergyPerFrame(float64(csiW * csiH))
	encCSI := csiEnergyPerFrame(float64(csiW*csiH) * encodedFraction)
	out.CSISavingsMWAtISP = 0 // ISP-output placement leaves CSI untouched
	out.CSISavingsMWInSensor = energy.PowerMW(fullCSI-encCSI, fps)

	// --- Adaptive cycle length on a mixed-motion label trace ---
	adaptive, fixed, meanCycle, err := adaptiveVsFixed(s)
	if err != nil {
		return out, err
	}
	out.AdaptivePixelFraction = adaptive
	out.FixedPixelFraction = fixed
	out.AdaptiveMeanCycle = meanCycle
	return out, nil
}

// adaptiveVsFixed drives the SLAM loop over a static-then-fast sequence
// with an adaptive policy and a fixed CL=10 policy, returning stored-pixel
// fractions and the adaptive policy's mean cycle.
func adaptiveVsFixed(s Scale) (adaptiveFrac, fixedFrac, meanCycle float64, err error) {
	cfg := slamConfig(s)
	world := synth.NewWorld(cfg.WorldSize, cfg.WorldSize, cfg.Seed)
	// Mixed motion: first half static, second half fast.
	half := cfg.Frames / 2
	gtStatic := world.Trajectory(half, cfg.W, cfg.H, synth.ProfileStatic, cfg.Seed+77)
	gtFast := world.Trajectory(cfg.Frames-half, cfg.W, cfg.H, synth.ProfileFast, cfg.Seed+78)
	gt := append(append([]synth.Pose{}, gtStatic...), gtFast...)

	run := func(adaptive bool) (float64, float64, error) {
		var lastLabels region.List
		src := policy.SourceFunc(func(int) region.List { return lastLabels })
		var pol interface {
			Labels(int) region.List
		}
		var ada *policy.AdaptiveCycle
		if adaptive {
			ada = policy.NewAdaptiveCycle(4, 20, cfg.W, cfg.H, 4, src)
			pol = ada
		} else {
			pol = policy.NewCycle(10, cfg.W, cfg.H, src)
		}
		rp, err := workloads.NewRP(10, cfg.W, cfg.H)
		if err != nil {
			return 0, 0, err
		}
		det := policy.DefaultFeatureParams()
		detector := features.NewDetector()
		detector.MaxFeatures = max(60, cfg.W*cfg.H/1400)
		var cycleSum float64
		for t := 0; t < cfg.Frames; t++ {
			labels := pol.Labels(t)
			if len(labels) == 0 {
				labels = region.List{region.FullFrame(cfg.W, cfg.H)}
			}
			in := world.Render(gt[t], cfg.W, cfg.H)
			seen, err := rp.Process(in, t, labels)
			if err != nil {
				return 0, 0, err
			}
			kps := detector.Detect(seen)
			// Scene motion from the camera trajectory — the accelerometer /
			// motion signal §6.1 suggests feeding the policy.
			disp := 0.0
			if t > 0 {
				disp = math.Hypot(gt[t].X-gt[t-1].X, gt[t].Y-gt[t-1].Y)
			}
			lastLabels = policy.FromKeypoints(kps, disp, cfg.W, cfg.H, det)
			if ada != nil {
				ada.ObserveMotion(disp)
				cycleSum += float64(ada.CurrentCycle())
			}
		}
		st := rp.Sys.Stats()
		frac := float64(st.PixelsStored) / float64(st.PixelsIn)
		return frac, cycleSum / float64(cfg.Frames), nil
	}

	adaptiveFrac, meanCycle, err = run(true)
	if err != nil {
		return 0, 0, 0, err
	}
	fixedFrac, _, err = run(false)
	if err != nil {
		return 0, 0, 0, err
	}
	return adaptiveFrac, fixedFrac, meanCycle, nil
}

// Report renders the future-work analysis.
func (r FutureWorkResult) Report() string {
	return table(
		[]string{"Future direction (§7)", "Metric", "Value"},
		[][]string{
			{"DRAM-less computing", fmt.Sprintf("intermediate frames fitting %.0f MB SRAM", r.SRAMBudgetMB),
				fmt.Sprintf("%.0f%%", r.IntermediateFitFraction*100)},
			{"", "mean intermediate encoded frame", fmt.Sprintf("%.2f MB", r.MeanIntermediateMB)},
			{"Rhythmic pixel camera", "CSI power saving, encoder at ISP output", fmt.Sprintf("%.0f mW", r.CSISavingsMWAtISP)},
			{"", "CSI power saving, encoder in sensor", fmt.Sprintf("%.0f mW", r.CSISavingsMWInSensor)},
			{"Adaptive cycle length", "pixels stored (adaptive)", fmt.Sprintf("%.1f%%", r.AdaptivePixelFraction*100)},
			{"", "pixels stored (fixed CL=10)", fmt.Sprintf("%.1f%%", r.FixedPixelFraction*100)},
			{"", "mean adaptive cycle", fmt.Sprintf("%.1f", r.AdaptiveMeanCycle)},
		},
	)
}
