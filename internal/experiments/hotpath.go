package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/wire"
	"repro/rpx"
)

// Hot-path allocation pricing: the capture → encode → RPXE-serialize →
// wire-write pipeline run two ways over identical inputs. The baseline is
// the pre-pooling idiom — LastEncoded's owned deep copy, a fresh
// bytes.Buffer per serialization, a bare WriteMessage per send — and the
// pooled path is the zero-copy contract this repo's transports use:
// BorrowLastEncoded on the owning goroutine, AppendTo into a reused
// scratch, and a MessageWriter assembling header+payload vectored. Same
// bytes leave both pipelines; the difference is purely allocator and
// memcpy traffic, which is what this experiment prices at 1/8/64
// concurrent pipelines.

// HotpathRow is one concurrency-level measurement.
type HotpathRow struct {
	// Sessions is the number of concurrent independent pipelines.
	Sessions int `json:"sessions"`
	// BaselineFPS is frames/sec through the copy-heavy baseline path.
	BaselineFPS float64 `json:"baseline_fps"`
	// PooledFPS is frames/sec through the pooled zero-copy path.
	PooledFPS float64 `json:"pooled_fps"`
	// SpeedupX is PooledFPS/BaselineFPS.
	SpeedupX float64 `json:"speedup_x"`
	// BaselineAllocs is heap allocations per frame on the baseline path.
	BaselineAllocs float64 `json:"baseline_allocs_per_frame"`
	// PooledAllocs is heap allocations per frame on the pooled path.
	PooledAllocs float64 `json:"pooled_allocs_per_frame"`
}

// hotpath geometry: matches the stream/gateway benches so rows are
// comparable across BENCH files.
const (
	hotpathW = 160
	hotpathH = 120
)

// Hotpath measures the two pipeline variants at increasing concurrency.
func Hotpath(s Scale) ([]HotpathRow, error) {
	counts := []int{1, 8}
	frames := 150
	if s == Full {
		counts = []int{1, 8, 64}
		frames = 400
	}
	rows := make([]HotpathRow, 0, len(counts))
	for _, n := range counts {
		baseFPS, baseAllocs, err := hotpathRun(n, frames, hotpathBaseline)
		if err != nil {
			return nil, fmt.Errorf("experiments: hotpath baseline %d sessions: %w", n, err)
		}
		poolFPS, poolAllocs, err := hotpathRun(n, frames, hotpathPooled)
		if err != nil {
			return nil, fmt.Errorf("experiments: hotpath pooled %d sessions: %w", n, err)
		}
		rows = append(rows, HotpathRow{
			Sessions:       n,
			BaselineFPS:    baseFPS,
			PooledFPS:      poolFPS,
			SpeedupX:       poolFPS / baseFPS,
			BaselineAllocs: baseAllocs,
			PooledAllocs:   poolAllocs,
		})
	}
	return rows, nil
}

// hotpathPipeline runs one pipeline's frames; sink swallows the framed wire
// bytes (the experiment prices assembly, not the kernel's TCP stack).
type hotpathPipeline func(sys *rpx.System, fr *rpx.Frame, frames, seed int, sink io.Writer) error

// hotpathRun times n concurrent pipelines and meters allocations across the
// run. Allocation accounting is process-global, so runs are sequential per
// variant and the warm-up frames run before the meter starts.
func hotpathRun(n, frames int, pipeline hotpathPipeline) (fps, allocsPerFrame float64, err error) {
	systems := make([]*rpx.System, n)
	inputs := make([]*rpx.Frame, n)
	for i := range systems {
		sys, serr := rpx.NewSystem(hotpathW, hotpathH, rpx.Gray8)
		if serr != nil {
			return 0, 0, serr
		}
		if serr := sys.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(hotpathW, hotpathH)}); serr != nil {
			return 0, 0, serr
		}
		systems[i] = sys
		inputs[i] = rpx.NewFrame(hotpathW, hotpathH, rpx.Gray8)
		// Warm up past the history depth so frame recycling (and every
		// lazily-grown buffer) reaches steady state before the meter starts.
		if serr := pipeline(sys, inputs[i], 8, i, io.Discard); serr != nil {
			return 0, 0, serr
		}
	}

	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		mu    sync.Mutex
	)
	fail := func(e error) {
		mu.Lock()
		if err == nil {
			err = e
		}
		mu.Unlock()
	}
	for i := range systems {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if perr := pipeline(systems[i], inputs[i], frames, i, io.Discard); perr != nil {
				fail(perr)
			}
		}(i)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return 0, 0, err
	}
	total := float64(n * frames)
	return total / elapsed, float64(after.Mallocs-before.Mallocs) / total, nil
}

// hotpathBaseline is the pre-pooling idiom: every stage allocates — the
// owned LastEncoded copy, a fresh serialization buffer, a bare per-message
// WriteMessage.
func hotpathBaseline(sys *rpx.System, fr *rpx.Frame, frames, seed int, sink io.Writer) error {
	for i := 0; i < frames; i++ {
		for p := range fr.Pix {
			fr.Pix[p] = byte(seed*37 + i*11 + p)
		}
		if _, err := sys.Capture(fr); err != nil {
			return err
		}
		ef := sys.LastEncoded()
		var buf bytes.Buffer
		if _, err := ef.WriteTo(&buf); err != nil {
			return err
		}
		if err := wire.WriteMessage(sink, wire.MsgEncoded, buf.Bytes(), 0); err != nil {
			return err
		}
	}
	return nil
}

// hotpathPooled is the zero-copy contract: borrow the live frame on its
// owning goroutine, serialize into a reused scratch, frame through a
// MessageWriter.
func hotpathPooled(sys *rpx.System, fr *rpx.Frame, frames, seed int, sink io.Writer) error {
	mw := wire.NewMessageWriter(sink)
	var scratch []byte
	for i := 0; i < frames; i++ {
		for p := range fr.Pix {
			fr.Pix[p] = byte(seed*37 + i*11 + p)
		}
		if _, err := sys.Capture(fr); err != nil {
			return err
		}
		ef := sys.BorrowLastEncoded()
		scratch = ef.AppendTo(scratch[:0])
		if err := mw.WriteMessage(wire.MsgEncoded, scratch, 0); err != nil {
			return err
		}
	}
	return nil
}

// HotpathReport renders the allocation-pricing table.
func HotpathReport(rows []HotpathRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hot path: %dx%d Gray8 capture -> encode -> RPXE serialize -> wire write\n", hotpathW, hotpathH)
	fmt.Fprintf(&b, "%9s %14s %14s %9s %14s %14s\n",
		"sessions", "baseline f/s", "pooled f/s", "speedup", "base allocs/f", "pool allocs/f")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9d %14.0f %14.0f %8.2fx %14.1f %14.1f\n",
			r.Sessions, r.BaselineFPS, r.PooledFPS, r.SpeedupX, r.BaselineAllocs, r.PooledAllocs)
	}
	return b.String()
}

// HotpathCSV writes the rows as CSV.
func HotpathCSV(w io.Writer, rows []HotpathRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sessions", "baseline_fps", "pooled_fps", "speedup_x", "baseline_allocs_per_frame", "pooled_allocs_per_frame"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			fmt.Sprintf("%d", r.Sessions),
			fmt.Sprintf("%.1f", r.BaselineFPS),
			fmt.Sprintf("%.1f", r.PooledFPS),
			fmt.Sprintf("%.3f", r.SpeedupX),
			fmt.Sprintf("%.1f", r.BaselineAllocs),
			fmt.Sprintf("%.1f", r.PooledAllocs),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// HotpathJSON writes the rows as the BENCH_hotpath.json document.
func HotpathJSON(w io.Writer, rows []HotpathRow) error {
	doc := struct {
		Experiment string       `json:"experiment"`
		Workload   string       `json:"workload"`
		Rows       []HotpathRow `json:"rows"`
	}{
		Experiment: "hotpath_pooled_vs_baseline",
		Workload:   fmt.Sprintf("%dx%d gray8 capture, full-frame labels, in-process serialize+frame", hotpathW, hotpathH),
		Rows:       rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
