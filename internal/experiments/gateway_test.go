package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestGatewayOverheadShape runs the gateway bench at Quick scale and asserts
// structural soundness only — absolute throughput and even the sign of the
// overhead are scheduling-dependent, so the shape test checks that every row
// measured something and that the emitters agree with the rows.
func TestGatewayOverheadShape(t *testing.T) {
	rows, err := GatewayOverhead(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 at Quick scale", len(rows))
	}
	last := 0
	for _, r := range rows {
		if r.Sessions <= last {
			t.Errorf("session counts not increasing: %+v", rows)
		}
		last = r.Sessions
		if r.DirectFPS <= 0 || r.GatewayFPS <= 0 {
			t.Errorf("non-positive throughput: %+v", r)
		}
	}

	if rep := GatewayReport(rows); !strings.Contains(rep, "Gateway overhead") {
		t.Error("report missing header")
	}

	var csvBuf bytes.Buffer
	if err := GatewayCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(csvBuf.String()), "\n"); lines != len(rows) {
		t.Errorf("CSV rows = %d, want %d", lines, len(rows))
	}

	var jsonBuf bytes.Buffer
	if err := GatewayJSON(&jsonBuf, rows); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string       `json:"experiment"`
		Rows       []GatewayRow `json:"rows"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON emitter output invalid: %v", err)
	}
	if doc.Experiment != "gateway_overhead" || len(doc.Rows) != len(rows) {
		t.Errorf("JSON doc = %q with %d rows", doc.Experiment, len(doc.Rows))
	}
}
