package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/region"
)

// The experiment tests assert the paper's qualitative shapes at Quick
// scale: who wins, roughly by how much, and which way the trends point.

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Rhythmic pixels must discard a large share of the stream (paper:
	// 66% discarded) while the error stays in the same regime (paper:
	// 43 mm → 51 mm, ~+19%).
	if r.RhythmicPixelFraction >= 0.7 {
		t.Errorf("rhythmic stored %.0f%% of pixels, want well under 70%%", r.RhythmicPixelFraction*100)
	}
	if r.RhythmicPixelFraction <= 0.05 {
		t.Errorf("rhythmic stored only %.1f%% — policy degenerate", r.RhythmicPixelFraction*100)
	}
	if r.RhythmicATE > r.FrameBasedATE*6+3 {
		t.Errorf("rhythmic ATE %.2f blew up vs frame-based %.2f", r.RhythmicATE, r.FrameBasedATE)
	}
	if !strings.Contains(r.Report(), "Rhythmic") {
		t.Error("report missing content")
	}
}

func TestFig8Shape(t *testing.T) {
	rows, err := Fig8(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*len(Fig8Baselines) {
		t.Fatalf("got %d rows, want %d", len(rows), 3*len(Fig8Baselines))
	}
	get := func(workload, system string) Fig8Row {
		for _, r := range rows {
			if r.Workload == workload && r.System == system {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", workload, system)
		return Fig8Row{}
	}
	for _, wl := range []string{"Visual SLAM", "Human pose estimation", "Face detection"} {
		fch := get(wl, "FCH")
		rp10 := get(wl, "RP10")
		rp5 := get(wl, "RP5")
		rp15 := get(wl, "RP15")
		mroi := get(wl, "Multi-ROI")
		h264 := get(wl, "H.264")

		// Headline: RPx cuts traffic 43-64% vs FCH (allow a wide band).
		red := 1 - rp10.ThroughputMBps/fch.ThroughputMBps
		if red < 0.30 || red > 0.90 {
			t.Errorf("%s: RP10 reduction = %.0f%%, want 30-90%%", wl, red*100)
		}
		// Higher CL discards more. Allow 10% slack: each CL run is a
		// separate closed-loop workload whose tracker dynamics differ.
		if rp15.ThroughputMBps > rp10.ThroughputMBps*1.10 || rp10.ThroughputMBps > rp5.ThroughputMBps*1.10 {
			t.Errorf("%s: CL ordering violated: %0.f/%0.f/%0.f",
				wl, rp5.ThroughputMBps, rp10.ThroughputMBps, rp15.ThroughputMBps)
		}
		// Multi-ROI exceeds rhythmic (paper: larger, substantially for SLAM).
		if mroi.ThroughputMBps <= rp10.ThroughputMBps {
			t.Errorf("%s: Multi-ROI %.0f <= RP10 %.0f", wl, mroi.ThroughputMBps, rp10.ThroughputMBps)
		}
		// H.264 exceeds everything.
		if h264.ThroughputMBps <= fch.ThroughputMBps {
			t.Errorf("%s: H.264 %.0f <= FCH %.0f", wl, h264.ThroughputMBps, fch.ThroughputMBps)
		}
		// Footprint: RP10 roughly halves FCH (paper: ~50%).
		fred := 1 - rp10.MeanFootprintMB/fch.MeanFootprintMB
		if fred < 0.25 {
			t.Errorf("%s: footprint reduction %.0f%%, want >= 25%%", wl, fred*100)
		}
	}
	if !strings.Contains(Fig8Report(rows), "MB/s") {
		t.Error("report missing content")
	}
}

func TestFig9PoseAndFaceShape(t *testing.T) {
	for _, exp := range []struct {
		name string
		run  func(Scale) ([]Fig9DetectionRow, error)
	}{
		{"pose", Fig9Pose},
		{"face", Fig9Face},
	} {
		rows, err := exp.run(Quick)
		if err != nil {
			t.Fatalf("%s: %v", exp.name, err)
		}
		if len(rows) != len(Fig9Baselines) {
			t.Fatalf("%s: %d rows", exp.name, len(rows))
		}
		get := func(system string) Fig9DetectionRow {
			for _, r := range rows {
				if r.System == system {
					return r
				}
			}
			t.Fatalf("%s: missing %s", exp.name, system)
			return Fig9DetectionRow{}
		}
		fch, fcl, rp10 := get("FCH"), get("FCL"), get("RP10")
		// FCH performs well; FCL degrades substantially (paper: "performs
		// poorly, with significantly raised errors").
		if fch.MAP < 0.3 {
			t.Errorf("%s: FCH mAP = %.2f too low for a meaningful comparison", exp.name, fch.MAP)
		}
		if fcl.MAP >= fch.MAP {
			t.Errorf("%s: FCL mAP %.2f >= FCH %.2f", exp.name, fcl.MAP, fch.MAP)
		}
		// RP10 stays close to FCH (paper: ~5% loss; allow slack).
		if rp10.MAP < fch.MAP*0.55 {
			t.Errorf("%s: RP10 mAP %.2f degraded too far from FCH %.2f", exp.name, rp10.MAP, fch.MAP)
		}
		if !strings.Contains(Fig9DetectionReport("x", rows), "%") {
			t.Error("report missing content")
		}
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.AvgRegions <= 0 {
			t.Errorf("%s: no regions", r.Task)
		}
		if r.MinW <= 0 || r.MaxW < r.MinW {
			t.Errorf("%s: size stats %d..%d", r.Task, r.MinW, r.MaxW)
		}
		if r.MinStride < 1 || r.MaxStride > 4 {
			t.Errorf("%s: stride range %d..%d outside paper's 1..4", r.Task, r.MinStride, r.MaxStride)
		}
		if r.MinRateMS > r.MaxRateMS {
			t.Errorf("%s: rate range inverted", r.Task)
		}
	}
	// SLAM uses hundreds of regions; detection tasks use few (paper:
	// 973 vs a handful).
	if rows[0].AvgRegions < 20 {
		t.Errorf("SLAM avg regions = %.0f, want many", rows[0].AvgRegions)
	}
	if rows[1].AvgRegions > rows[0].AvgRegions {
		t.Error("face should use fewer regions than SLAM")
	}
	if !strings.Contains(Table4Report(rows), "Visual SLAM") {
		t.Error("report missing content")
	}
}

func TestTable5Shape(t *testing.T) {
	rows := Table5()
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	report := Table5Report(rows)
	if !strings.Contains(report, "No Synth") {
		t.Error("parallel/1600 must report No Synth")
	}
	if !strings.Contains(report, "hybrid") {
		t.Error("report missing hybrid rows")
	}
}

func TestEnergyShape(t *testing.T) {
	r, err := Energy(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~18 mJ/frame and ~550 mW saved for RP10 on 4K30. Allow a
	// generous band: the trace policy and scene differ.
	if r.SavingsMJPerFrame < 5 || r.SavingsMJPerFrame > 60 {
		t.Errorf("savings = %.1f mJ/frame, want 5-60", r.SavingsMJPerFrame)
	}
	if r.SavingsMW < 150 || r.SavingsMW > 1800 {
		t.Errorf("savings = %.0f mW, want 150-1800", r.SavingsMW)
	}
	// Hardware overhead must be well under the savings (the point of §6.3).
	if r.EncoderOverheadMW+r.DecoderOverheadMW > r.SavingsMW/3 {
		t.Errorf("overhead %.1f mW not small vs savings %.0f mW",
			r.EncoderOverheadMW+r.DecoderOverheadMW, r.SavingsMW)
	}
	if !strings.Contains(r.Report(), "mJ/frame") {
		t.Error("report missing content")
	}
}

func TestAppendixShape(t *testing.T) {
	series, err := Appendix(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 3 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Fractions) < 3 {
			t.Fatalf("%s: only %d frames", s.Task, len(s.Fractions))
		}
		// Boundary frames are full captures; middle frames are partial.
		if s.Fractions[0] < 0.99 {
			t.Errorf("%s: first frame %.0f%%, want 100%%", s.Task, s.Fractions[0]*100)
		}
		mid := s.Fractions[1 : len(s.Fractions)-1]
		for _, f := range mid {
			if f > 0.95 {
				t.Errorf("%s: intermediate frame at %.0f%%", s.Task, f*100)
				break
			}
		}
	}
	if !strings.Contains(AppendixReport(series), "Frame 1 (100%)") {
		t.Error("report missing content")
	}
}

func TestCLSweepShape(t *testing.T) {
	rows, err := CLSweep(Quick, []int{5, 10, 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Traffic monotonically decreases with CL.
	for i := 1; i < len(rows); i++ {
		if rows[i].ThroughputMBps >= rows[i-1].ThroughputMBps {
			t.Errorf("traffic not decreasing: CL%d %.1f >= CL%d %.1f",
				rows[i].CycleLength, rows[i].ThroughputMBps,
				rows[i-1].CycleLength, rows[i-1].ThroughputMBps)
		}
	}
	if !strings.Contains(CLSweepReport(rows), "Cycle length") {
		t.Error("report missing content")
	}
}

func TestScaleTrace(t *testing.T) {
	in := []region.List{
		{{X: 10, Y: 10, W: 20, H: 20, Stride: 2, Skip: 3, Phase: 1}},
		{},
	}
	out := ScaleTrace(in, 100, 100, 400, 200)
	if len(out) != 2 {
		t.Fatalf("len = %d", len(out))
	}
	l := out[0][0]
	if l.X != 40 || l.Y != 20 || l.W != 80 || l.H != 40 {
		t.Errorf("scaled label = %v", l)
	}
	if l.Stride != 2 || l.Skip != 3 || l.Phase != 1 {
		t.Error("rhythm parameters must not scale")
	}
	if err := out[0].Validate(400, 200); err != nil {
		t.Fatal(err)
	}
	// Labels that scale to nothing are dropped.
	tiny := []region.List{{{X: 99, Y: 99, W: 1, H: 1, Stride: 1, Skip: 1}}}
	shr := ScaleTrace(tiny, 100, 100, 10, 10)
	if len(shr[0]) > 1 {
		t.Errorf("shrunk trace = %v", shr[0])
	}
}

func TestCaptureForUnknown(t *testing.T) {
	if _, err := captureFor("bogus", 10, 10); err == nil {
		t.Error("unknown capture accepted")
	}
}

func TestFutureWorkShape(t *testing.T) {
	r, err := FutureWork(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// DRAM-less: most intermediate 4K encoded frames should fit a 4 MB
	// SRAM budget (the paper's motivation: "store frame buffers in the
	// local SoC memory when not dealing with full frame captures").
	if r.IntermediateFitFraction < 0.5 {
		t.Errorf("only %.0f%% of intermediate frames fit SRAM", r.IntermediateFitFraction*100)
	}
	if r.MeanIntermediateMB <= 0 || r.MeanIntermediateMB > 30 {
		t.Errorf("mean intermediate size = %.2f MB", r.MeanIntermediateMB)
	}
	// In-sensor placement must save CSI power; ISP-output placement saves none.
	if r.CSISavingsMWAtISP != 0 {
		t.Errorf("ISP-output CSI savings = %v, want 0", r.CSISavingsMWAtISP)
	}
	if r.CSISavingsMWInSensor <= 50 {
		t.Errorf("in-sensor CSI savings = %.0f mW, want substantial", r.CSISavingsMWInSensor)
	}
	// The adaptive policy must actually adapt (mean cycle away from both
	// bounds) on the mixed-motion sequence.
	if r.AdaptiveMeanCycle <= 4 || r.AdaptiveMeanCycle >= 20 {
		t.Errorf("adaptive mean cycle = %.1f, want strictly inside [4,20]", r.AdaptiveMeanCycle)
	}
	if r.AdaptivePixelFraction <= 0 || r.AdaptivePixelFraction >= 1 {
		t.Errorf("adaptive pixel fraction = %v", r.AdaptivePixelFraction)
	}
	if !strings.Contains(r.Report(), "DRAM-less") {
		t.Error("report missing content")
	}
}

func TestCSVEmitters(t *testing.T) {
	var buf bytes.Buffer
	fig8 := []Fig8Row{{Workload: "w", System: "s", ThroughputMBps: 1.5}}
	if err := Fig8CSV(&buf, fig8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "workload,system") || !strings.Contains(buf.String(), "1.500") {
		t.Errorf("fig8 csv:\n%s", buf.String())
	}
	buf.Reset()
	if err := Fig9SLAMCSV(&buf, []Fig9SLAMRow{{System: "FCH", ATE: 1.25}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1.2500") {
		t.Errorf("fig9a csv:\n%s", buf.String())
	}
	buf.Reset()
	if err := Fig9DetectionCSV(&buf, "face", []Fig9DetectionRow{{System: "RP10", MAP: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "face,RP10,0.5000") {
		t.Errorf("fig9 det csv:\n%s", buf.String())
	}
	buf.Reset()
	if err := AppendixCSV(&buf, []AppendixSeries{{Task: "t", Benchmark: "b", Fractions: []float64{1, 0.3}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "t,b,2,0.3000") {
		t.Errorf("appendix csv:\n%s", buf.String())
	}
	buf.Reset()
	if err := CLSweepCSV(&buf, []CLSweepRow{{CycleLength: 5, ThroughputMBps: 2}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "5,2.000") {
		t.Errorf("clsweep csv:\n%s", buf.String())
	}
}
