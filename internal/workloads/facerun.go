package workloads

import (
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/region"
	"repro/internal/synth"
	"repro/internal/track"
)

// FaceConfig describes one face-detection run.
type FaceConfig struct {
	W, H        int
	Frames      int
	NumFaces    int
	CycleLength int
	Seed        int64
	// IoUThreshold scores detections (paper uses IoU-thresholded mAP).
	IoUThreshold float64
}

// DefaultFaceConfig returns the evaluation shape (SVGA-class scene).
func DefaultFaceConfig() FaceConfig {
	return FaceConfig{W: 480, H: 360, Frames: 100, NumFaces: 5, CycleLength: 10, Seed: 1, IoUThreshold: 0.4}
}

// DetectionResult reports a detection-style run (face or pose).
type DetectionResult struct {
	System string
	// MAP is IoU-thresholded mean average precision.
	MAP float64
	// Accuracy is the paper's TP/(TP+FP) detection accuracy.
	Accuracy float64
	// LabelTrace is the per-frame region workload for the traffic sim.
	LabelTrace []region.List
	// AvgRegions is the mean region count on intermediate frames.
	AvgRegions float64
}

// RunFace executes the face-detection workload against a capture system.
func RunFace(cfg FaceConfig, cap Capture) (DetectionResult, error) {
	seq := synth.NewFaceSequence(cfg.W, cfg.H, cfg.Frames, cfg.NumFaces, cfg.Seed)
	workload := track.NewFaceWorkload(cfg.CycleLength)
	params := policy.DefaultBoxParams()

	var lastBoxes []synth.Box
	var lastVels []float64
	prevCenters := map[int][2]float64{}
	src := policy.SourceFunc(func(int) region.List {
		return policy.FromBoxes(lastBoxes, lastVels, cfg.W, cfg.H, params)
	})
	pol := policy.NewCycle(cfg.CycleLength, cfg.W, cfg.H, src)

	res := DetectionResult{System: cap.Name()}
	var results []metrics.FrameResult
	var regionCounts []float64
	for t := 0; t < cfg.Frames; t++ {
		labels := pol.Labels(t)
		if len(labels) == 0 {
			labels = region.List{region.FullFrame(cfg.W, cfg.H)}
		}
		res.LabelTrace = append(res.LabelTrace, labels.Clone())
		if !pol.IsFullCapture(t) {
			regionCounts = append(regionCounts, float64(len(labels)))
		}

		in := seq.RenderFrame(t)
		seen, err := cap.Process(in, t, labels)
		if err != nil {
			return res, err
		}
		dets := workload.Step(seen, t)

		// Update policy inputs: boxes and their per-frame velocities.
		lastBoxes = workload.Boxes()
		lastVels = make([]float64, len(lastBoxes))
		centers := map[int][2]float64{}
		for i, b := range lastBoxes {
			cx, cy := b.Center()
			centers[i] = [2]float64{cx, cy}
			if prev, ok := prevCenters[i]; ok {
				lastVels[i] = hypot(cx-prev[0], cy-prev[1])
			} else {
				lastVels[i] = params.FastDisplacement // unknown: assume fast
			}
		}
		prevCenters = centers

		var gts []metrics.GroundTruth
		for _, b := range seq.Truth[t] {
			gts = append(gts, metrics.GroundTruth{X: b.X, Y: b.Y, W: b.W, H: b.H})
		}
		results = append(results, metrics.FrameResult{Detections: dets, Truths: gts})
	}
	res.MAP = metrics.MAP(results, cfg.IoUThreshold)
	res.Accuracy = metrics.DetectionAccuracy(results, cfg.IoUThreshold)
	res.AvgRegions = metrics.Mean(regionCounts)
	return res, nil
}

func hypot(a, b float64) float64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	// Cheap sufficient approximation for velocity bucketing.
	if a > b {
		return a + b/2
	}
	return b + a/2
}
