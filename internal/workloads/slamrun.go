package workloads

import (
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/region"
	"repro/internal/slam"
	"repro/internal/synth"
)

// SLAMConfig describes one V-SLAM run.
type SLAMConfig struct {
	W, H   int
	Frames int
	// CycleLength for the region policy (ignored by frame-based captures,
	// which always see full frames but still record the label trace).
	CycleLength int
	// Profile shapes the camera motion.
	Profile synth.MotionProfile
	// Seed selects the world and trajectory.
	Seed int64
	// WorldSize is the square world canvas side (default 4x the viewport
	// diagonal-ish).
	WorldSize int
}

// DefaultSLAMConfig returns the evaluation shape: 480p-class viewport.
func DefaultSLAMConfig() SLAMConfig {
	return SLAMConfig{
		W: 640, H: 480, Frames: 100, CycleLength: 10,
		Profile: synth.ProfileMedium, Seed: 1, WorldSize: 2048,
	}
}

// SLAMResult reports one run.
type SLAMResult struct {
	System string
	// ATE and ATEStd are the absolute trajectory error RMSE and the
	// stddev of per-frame errors, in world pixels.
	ATE, ATEStd float64
	// RPETrans (px/frame) and RPERot (rad/frame) are relative pose errors.
	RPETrans, RPERot float64
	// LostFrames counts frames where tracking coasted.
	LostFrames int
	// LabelTrace is the per-frame region label list the policy issued
	// (input for the traffic simulator).
	LabelTrace []region.List
	// PixelFractions is stored-pixel fraction per frame for RP captures
	// (nil for others).
	PixelFractions []float64
	// AvgRegions is the mean region count on intermediate frames.
	AvgRegions float64
}

// RunSLAM executes the V-SLAM workload against a capture system.
func RunSLAM(cfg SLAMConfig, cap Capture) (SLAMResult, error) {
	if cfg.WorldSize == 0 {
		cfg.WorldSize = 2048
	}
	world := synth.NewWorld(cfg.WorldSize, cfg.WorldSize, cfg.Seed)
	gt := world.Trajectory(cfg.Frames, cfg.W, cfg.H, cfg.Profile, cfg.Seed+77)

	// Scale the feature budget to resolution like ORB-SLAM does (~1500 at
	// 1080p — roughly one feature per 1400 pixels).
	slamCfg := slam.DefaultConfig()
	slamCfg.Detector.MaxFeatures = max(60, cfg.W*cfg.H/1400)
	sys := slam.New(slamCfg)
	params := policy.DefaultFeatureParams()

	// The policy closes the loop: intermediate frames use regions around
	// the previous frame's features.
	var lastLabels region.List
	src := policy.SourceFunc(func(int) region.List { return lastLabels })
	pol := policy.NewCycle(cfg.CycleLength, cfg.W, cfg.H, src)

	res := SLAMResult{System: cap.Name()}
	var regionCounts []float64
	rp, isRP := cap.(*RP)
	for t := 0; t < cfg.Frames; t++ {
		labels := pol.Labels(t)
		if len(labels) == 0 {
			// No features yet (or policy produced nothing): fall back to a
			// full capture so the system can reacquire.
			labels = region.List{region.FullFrame(cfg.W, cfg.H)}
		}
		res.LabelTrace = append(res.LabelTrace, labels.Clone())
		if !pol.IsFullCapture(t) {
			regionCounts = append(regionCounts, float64(len(labels)))
		}

		in := world.Render(gt[t], cfg.W, cfg.H)
		seen, err := cap.Process(in, t, labels)
		if err != nil {
			return res, err
		}
		step := sys.ProcessFrame(seen)
		if step.Lost {
			res.LostFrames++
		}
		lastLabels = policy.FromKeypointsVel(step.KeyPoints, step.Displacements, step.MeanDisplacement, cfg.W, cfg.H, params)
		if isRP {
			res.PixelFractions = append(res.PixelFractions,
				float64(rp.Sys.Stats().PixelsStored)/float64(rp.Sys.Stats().PixelsIn))
		}
	}

	// Align the estimated trajectory (starting at origin) to ground truth
	// by the first pose, then score.
	est := sys.Trajectory()
	aligned := make([]metrics.Pose2D, len(est))
	for i := range est {
		aligned[i] = metrics.Pose2D{
			X:     est[i].X + gt[0].X,
			Y:     est[i].Y + gt[0].Y,
			Theta: est[i].Theta + gt[0].Theta,
		}
	}
	gtPoses := make([]metrics.Pose2D, len(gt))
	for i, p := range gt {
		gtPoses[i] = metrics.Pose2D{X: p.X, Y: p.Y, Theta: p.Theta}
	}
	var err error
	res.ATE, res.ATEStd, err = metrics.ATE(aligned, gtPoses)
	if err != nil {
		return res, err
	}
	res.RPETrans, res.RPERot, err = metrics.RPE(aligned, gtPoses, 1)
	if err != nil {
		return res, err
	}
	res.AvgRegions = metrics.Mean(regionCounts)
	return res, nil
}
