package workloads

import (
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/region"
	"repro/internal/synth"
	"repro/internal/track"
)

// PoseConfig describes one human-pose-estimation run.
type PoseConfig struct {
	W, H         int
	Frames       int
	CycleLength  int
	Seed         int64
	IoUThreshold float64
	// PoseMargin is the region margin around joint boxes (0 uses the
	// default); tighter margins make the workload more sensitive to stale
	// regions between full captures.
	PoseMargin float64
	// People is the number of walkers in the scene (0 = 1; PoseTrack
	// scenes contain several).
	People int
}

// DefaultPoseConfig returns the evaluation shape (720p-class scene scaled
// to simulation size).
func DefaultPoseConfig() PoseConfig {
	return PoseConfig{W: 480, H: 360, Frames: 80, CycleLength: 10, Seed: 1, IoUThreshold: 0.3, PoseMargin: 0.35, People: 1}
}

// RunPose executes the pose-estimation workload against a capture system.
// Joint trackers initialize from the first (decoded) frame with the
// ground-truth joint boxes, the standard pose-tracking protocol.
func RunPose(cfg PoseConfig, cap Capture) (DetectionResult, error) {
	people := cfg.People
	if people < 1 {
		people = 1
	}
	seq := synth.NewMultiPoseSequence(cfg.W, cfg.H, cfg.Frames, people, cfg.Seed)
	params := policy.DefaultBoxParams()
	params.Margin = cfg.PoseMargin
	if params.Margin <= 0 {
		params.Margin = 0.35
	}

	var workload *track.PoseWorkload
	var lastBoxes []synth.Box
	src := policy.SourceFunc(func(int) region.List {
		return policy.FromBoxes(lastBoxes, nil, cfg.W, cfg.H, params)
	})
	pol := policy.NewCycle(cfg.CycleLength, cfg.W, cfg.H, src)

	res := DetectionResult{System: cap.Name()}
	var results []metrics.FrameResult
	var regionCounts []float64
	for t := 0; t < cfg.Frames; t++ {
		labels := pol.Labels(t)
		if len(labels) == 0 {
			labels = region.List{region.FullFrame(cfg.W, cfg.H)}
		}
		res.LabelTrace = append(res.LabelTrace, labels.Clone())
		if !pol.IsFullCapture(t) {
			regionCounts = append(regionCounts, float64(len(labels)))
		}

		in := seq.RenderFrame(t)
		seen, err := cap.Process(in, t, labels)
		if err != nil {
			return res, err
		}
		if workload == nil {
			workload = track.NewPoseWorkload(seen, seq.Truth[0])
			lastBoxes = workload.Boxes()
			continue // initialization frame is not scored
		}
		dets := workload.Step(seen)
		lastBoxes = workload.Boxes()

		var gts []metrics.GroundTruth
		for _, b := range seq.Truth[t] {
			gts = append(gts, metrics.GroundTruth{X: b.X, Y: b.Y, W: b.W, H: b.H})
		}
		results = append(results, metrics.FrameResult{Detections: dets, Truths: gts})
	}
	res.MAP = metrics.MAP(results, cfg.IoUThreshold)
	res.Accuracy = metrics.DetectionAccuracy(results, cfg.IoUThreshold)
	res.AvgRegions = metrics.Mean(regionCounts)
	return res, nil
}
