package workloads

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/region"
	"repro/internal/synth"
)

func smallSLAM() SLAMConfig {
	cfg := DefaultSLAMConfig()
	cfg.W, cfg.H = 320, 240
	cfg.Frames = 30
	cfg.WorldSize = 1024
	cfg.Profile = synth.ProfileSlow
	return cfg
}

func TestCaptureModels(t *testing.T) {
	in := frame.New(32, 32, frame.Gray8)
	in.FillRect(8, 8, 16, 16, 200)
	full := region.List{region.FullFrame(32, 32)}

	fch, err := FCH{}.Process(in, 0, full)
	if err != nil || !fch.Equal(in) {
		t.Error("FCH must pass frames through")
	}

	textured := synth.NewWorld(128, 128, 3).Canvas.Crop(0, 0, 32, 32)
	fcl, err := FCL{Factor: 4}.Process(textured, 0, full)
	if err != nil {
		t.Fatal(err)
	}
	if fcl.Equal(textured) {
		t.Error("FCL should lose detail")
	}
	if fcl.W != 32 || fcl.H != 32 {
		t.Error("FCL must preserve canvas size")
	}
	// Zero factor defaults to 2.
	if _, err := (FCL{}).Process(in, 0, full); err != nil {
		t.Error(err)
	}

	rp, err := NewRP(10, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name() != "RP10" {
		t.Errorf("Name = %q", rp.Name())
	}
	out, err := rp.Process(in, 0, full)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(in) {
		t.Error("RP with full-frame labels must be lossless")
	}
	partial := region.List{{X: 8, Y: 8, W: 16, H: 16, Stride: 1, Skip: 1}}
	out2, err := rp.Process(in, 1, partial)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Gray(10, 10) != 200 || out2.Gray(0, 0) != 0 {
		t.Error("RP partial capture wrong")
	}

	mr, err := NewMultiROI(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	manySmall := region.List{}
	for i := 0; i < 30; i++ {
		manySmall = append(manySmall, region.Label{X: i, Y: i, W: 2, H: 2, Stride: 2, Skip: 2})
	}
	out3, err := mr.Process(in, 0, manySmall.SortByY())
	if err != nil {
		t.Fatal(err)
	}
	if out3.W != 32 {
		t.Error("MultiROI output shape wrong")
	}

	h264, err := H264{}.Process(in, 0, full)
	if err != nil {
		t.Fatal(err)
	}
	if h264.Equal(in) {
		t.Error("H264 model should mildly degrade the frame")
	}
	// But only mildly: MAE small.
	mae, _ := frame.MAE(h264, in)
	if mae > 6 {
		t.Errorf("H264 degradation MAE = %v, want mild", mae)
	}
}

func TestRunSLAMOnFCH(t *testing.T) {
	res, err := RunSLAM(smallSLAM(), FCH{})
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "FCH" {
		t.Errorf("System = %q", res.System)
	}
	if len(res.LabelTrace) != 30 {
		t.Fatalf("label trace length %d", len(res.LabelTrace))
	}
	if res.ATE > 10 {
		t.Errorf("FCH ATE = %.2f px, want small on slow motion", res.ATE)
	}
	if res.AvgRegions <= 0 {
		t.Error("no regions recorded")
	}
	// Intermediate frames should carry many feature regions.
	if n := len(res.LabelTrace[1]); n < 10 {
		t.Errorf("frame 1 has %d regions, want many", n)
	}
	// Full-capture frames carry the full-frame label.
	if res.LabelTrace[0][0].W != 320 {
		t.Error("frame 0 should be a full capture")
	}
}

func TestRunSLAMOnRPAccuracyOrdering(t *testing.T) {
	cfg := smallSLAM()
	fch, err := RunSLAM(cfg, FCH{})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewRP(cfg.CycleLength, cfg.W, cfg.H)
	if err != nil {
		t.Fatal(err)
	}
	rpRes, err := RunSLAM(cfg, rp)
	if err != nil {
		t.Fatal(err)
	}
	fcl, err := RunSLAM(cfg, FCL{Factor: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: RP close to FCH; FCL substantially worse.
	if rpRes.ATE > fch.ATE*4+2 {
		t.Errorf("RP10 ATE %.2f too far above FCH %.2f", rpRes.ATE, fch.ATE)
	}
	if fcl.ATE < rpRes.ATE*0.8 {
		t.Errorf("FCL ATE %.2f should exceed RP10 %.2f", fcl.ATE, rpRes.ATE)
	}
	if len(rpRes.PixelFractions) == 0 {
		t.Error("RP run should record pixel fractions")
	}
	// Rhythmic capture stores well under the full stream.
	last := rpRes.PixelFractions[len(rpRes.PixelFractions)-1]
	if last > 0.9 {
		t.Errorf("cumulative pixel fraction %.2f, want < 0.9", last)
	}
}

func TestRunFaceOnFCH(t *testing.T) {
	cfg := DefaultFaceConfig()
	res, err := RunFace(cfg, FCH{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MAP < 0.5 {
		t.Errorf("FCH face mAP = %.2f, want >= 0.5", res.MAP)
	}
	if len(res.LabelTrace) != cfg.Frames {
		t.Errorf("trace length %d", len(res.LabelTrace))
	}
}

func TestRunPoseOnFCH(t *testing.T) {
	cfg := DefaultPoseConfig()
	cfg.W, cfg.H = 320, 240
	cfg.Frames = 40
	res, err := RunPose(cfg, FCH{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.25 {
		t.Errorf("FCH pose accuracy = %.2f, want reasonable", res.Accuracy)
	}
	if res.AvgRegions <= 0 {
		t.Error("no regions recorded")
	}
}

func TestRunPoseOnRP(t *testing.T) {
	cfg := DefaultPoseConfig()
	cfg.W, cfg.H = 320, 240
	cfg.Frames = 30
	rp, err := NewRP(cfg.CycleLength, cfg.W, cfg.H)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPose(cfg, rp)
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "RP10" {
		t.Errorf("System = %q", res.System)
	}
	// The rhythmic capture must have stored fewer pixels than the stream.
	st := rp.Sys.Stats()
	if st.PixelsStored >= st.PixelsIn {
		t.Error("RP stored the full stream")
	}
}

func TestRunPoseMultiPerson(t *testing.T) {
	cfg := DefaultPoseConfig()
	cfg.W, cfg.H = 320, 240
	cfg.Frames = 25
	cfg.People = 3
	res, err := RunPose(cfg, FCH{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 walkers × 13 joints tracked → region count scales with people.
	if res.AvgRegions < 20 {
		t.Errorf("AvgRegions = %.0f, want >= 20 with 3 walkers", res.AvgRegions)
	}
	if res.MAP <= 0 {
		t.Errorf("multi-person mAP = %v", res.MAP)
	}
}
