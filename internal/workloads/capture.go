// Package workloads runs the paper's three vision tasks end-to-end against
// every evaluated capture system: frames flow from the synthetic scene
// through a capture model (frame-based, rhythmic, multi-ROI, H.264) into
// the vision algorithm, whose results drive the region policy for the next
// frame — the full closed loop of §4.3. The runners return both task
// accuracy and the per-frame region label traces the traffic simulator
// consumes.
package workloads

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/region"
	"repro/rpx"
)

// Capture models how a capture system transforms the sensor frame into the
// frame the vision algorithm observes.
type Capture interface {
	// Name identifies the system ("FCH", "RP10", ...).
	Name() string
	// Process ingests the sensor frame for time t under the given region
	// labels and returns the frame the application reads back.
	Process(in *frame.Frame, t int, labels region.List) (*frame.Frame, error)
}

// FCH is frame-based computing at full (high) resolution: the application
// sees the sensor frame unchanged.
type FCH struct{}

// Name implements Capture.
func (FCH) Name() string { return "FCH" }

// Process implements Capture.
func (FCH) Process(in *frame.Frame, _ int, _ region.List) (*frame.Frame, error) {
	return in, nil
}

// FCL is frame-based computing at low resolution: the sensor frame is
// captured at 1/Factor resolution; the application sees it upsampled back
// to canvas size (so coordinates stay comparable), with the corresponding
// loss of detail.
type FCL struct {
	Factor int
}

// Name implements Capture.
func (c FCL) Name() string { return "FCL" }

// Process implements Capture.
func (c FCL) Process(in *frame.Frame, _ int, _ region.List) (*frame.Frame, error) {
	f := c.Factor
	if f < 2 {
		f = 2
	}
	return in.Downscale(f).UpscaleNearest(f), nil
}

// RP is the rhythmic pixel region system at a given cycle length: labels
// pass through the runtime to the encoder; the application reads the
// decoder's reconstruction.
type RP struct {
	CycleLength int
	Sys         *rpx.System
}

// NewRP builds a rhythmic capture at the given cycle length for w x h
// frames.
func NewRP(cycleLength, w, h int) (*RP, error) {
	sys, err := rpx.NewSystem(w, h, rpx.Gray8)
	if err != nil {
		return nil, err
	}
	return &RP{CycleLength: cycleLength, Sys: sys}, nil
}

// Name implements Capture.
func (r *RP) Name() string { return fmt.Sprintf("RP%d", r.CycleLength) }

// Process implements Capture.
func (r *RP) Process(in *frame.Frame, t int, labels region.List) (*frame.Frame, error) {
	if err := r.Sys.SetRegionLabels(labels); err != nil {
		return nil, err
	}
	if _, err := r.Sys.Capture(in); err != nil {
		return nil, err
	}
	return r.Sys.Decoded()
}

// MultiROI models an off-the-shelf multi-ROI camera: at most 16 regions,
// merged by k-means, no stride or skip. The merged boxes run through the
// same encode/decode machinery (stride/skip stripped), so the application
// sees full-resolution pixels inside the boxes and black outside.
type MultiROI struct {
	Sys        *rpx.System
	MaxRegions int
	w, h       int
}

// NewMultiROI builds the multi-ROI capture for w x h frames.
func NewMultiROI(w, h int) (*MultiROI, error) {
	sys, err := rpx.NewSystem(w, h, rpx.Gray8)
	if err != nil {
		return nil, err
	}
	return &MultiROI{Sys: sys, MaxRegions: 16, w: w, h: h}, nil
}

// Name implements Capture.
func (m *MultiROI) Name() string { return "Multi-ROI" }

// Process implements Capture.
func (m *MultiROI) Process(in *frame.Frame, t int, labels region.List) (*frame.Frame, error) {
	boxes := region.ClusterKMeans(labels, m.MaxRegions, m.w, m.h, 1)
	if err := m.Sys.SetRegionLabels(boxes); err != nil {
		return nil, err
	}
	if _, err := m.Sys.Capture(in); err != nil {
		return nil, err
	}
	return m.Sys.Decoded()
}

// H264 models the codec baseline's effect on the application: compression
// at the paper's Baseline/5.2 configuration is visually mild, so the
// application sees the full frame with light quantization softening. Its
// memory traffic (the dimension the paper evaluates) is modeled separately
// in internal/baseline.
type H264 struct{}

// Name implements Capture.
func (H264) Name() string { return "H.264" }

// Process implements Capture.
func (H264) Process(in *frame.Frame, _ int, _ region.List) (*frame.Frame, error) {
	out := in.ToGray().GaussianBlur(0.6)
	// Coarsen levels slightly, as quantization would.
	for i, v := range out.Pix {
		out.Pix[i] = v &^ 0x3
	}
	return out, nil
}
