package frame

// Drawing primitives used by the synthetic scene generator and the example
// programs' debug output.

// FillRect fills the rectangle [x, x+w) x [y, y+h), clipped to the frame,
// with luminance v on every channel.
func (fr *Frame) FillRect(x, y, w, h int, v uint8) {
	x0, y0 := max(x, 0), max(y, 0)
	x1, y1 := min(x+w, fr.W), min(y+h, fr.H)
	bpp := fr.BytesPerPixel()
	for row := y0; row < y1; row++ {
		base := row * fr.Stride()
		for col := x0; col < x1; col++ {
			for c := 0; c < bpp; c++ {
				fr.Pix[base+col*bpp+c] = v
			}
		}
	}
}

// DrawRect draws a 1-pixel rectangle outline, clipped to the frame.
func (fr *Frame) DrawRect(x, y, w, h int, v uint8) {
	fr.FillRect(x, y, w, 1, v)
	fr.FillRect(x, y+h-1, w, 1, v)
	fr.FillRect(x, y, 1, h, v)
	fr.FillRect(x+w-1, y, 1, h, v)
}

// FillCircle fills a disc of the given radius centered at (cx, cy), clipped
// to the frame.
func (fr *Frame) FillCircle(cx, cy, radius int, v uint8) {
	r2 := radius * radius
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			if dx*dx+dy*dy <= r2 && fr.InBounds(cx+dx, cy+dy) {
				fr.SetGray(cx+dx, cy+dy, v)
			}
		}
	}
}

// DrawLine draws a 1-pixel line from (x0, y0) to (x1, y1) with Bresenham's
// algorithm, clipped to the frame.
func (fr *Frame) DrawLine(x0, y0, x1, y1 int, v uint8) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if fr.InBounds(x0, y0) {
			fr.SetGray(x0, y0, v)
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
