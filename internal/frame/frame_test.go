package frame

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFormatProperties(t *testing.T) {
	cases := []struct {
		f    Format
		name string
		bpp  int
	}{
		{Gray8, "Gray8", 1},
		{RGB24, "RGB24", 3},
		{YUV444, "YUV444", 3},
		{BayerRGGB, "BayerRGGB", 1},
	}
	for _, c := range cases {
		if c.f.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.f, c.f.String(), c.name)
		}
		if c.f.BytesPerPixel() != c.bpp {
			t.Errorf("%v.BytesPerPixel() = %d, want %d", c.f, c.f.BytesPerPixel(), c.bpp)
		}
	}
	if Format(9).String() != "Format(9)" {
		t.Errorf("unknown format string = %q", Format(9).String())
	}
}

func TestNewAndAddressing(t *testing.T) {
	fr := New(7, 5, RGB24)
	if fr.SizeBytes() != 7*5*3 {
		t.Fatalf("SizeBytes = %d, want %d", fr.SizeBytes(), 7*5*3)
	}
	if fr.Stride() != 21 {
		t.Fatalf("Stride = %d, want 21", fr.Stride())
	}
	if fr.NumPixels() != 35 {
		t.Fatalf("NumPixels = %d, want 35", fr.NumPixels())
	}
	fr.SetPixel(3, 2, []byte{10, 20, 30})
	p := fr.Pixel(3, 2)
	if p[0] != 10 || p[1] != 20 || p[2] != 30 {
		t.Fatalf("Pixel(3,2) = %v, want [10 20 30]", p)
	}
	if off := fr.PixelOffset(3, 2); off != (2*7+3)*3 {
		t.Fatalf("PixelOffset = %d", off)
	}
}

func TestFromPix(t *testing.T) {
	if _, err := FromPix(2, 2, Gray8, make([]byte, 3)); err == nil {
		t.Error("FromPix short buffer: want error")
	}
	if _, err := FromPix(0, 2, Gray8, nil); err == nil {
		t.Error("FromPix zero width: want error")
	}
	buf := []byte{1, 2, 3, 4}
	fr, err := FromPix(2, 2, Gray8, buf)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Gray(1, 1) != 4 {
		t.Errorf("Gray(1,1) = %d, want 4", fr.Gray(1, 1))
	}
	buf[0] = 99 // shared storage
	if fr.Gray(0, 0) != 99 {
		t.Error("FromPix should not copy the buffer")
	}
}

func TestInvalidConstruction(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1], Gray8)
		}()
	}
}

func TestGrayLuma(t *testing.T) {
	fr := New(1, 1, RGB24)
	fr.SetPixel(0, 0, []byte{255, 255, 255})
	if fr.Gray(0, 0) != 255 {
		t.Errorf("white luma = %d, want 255", fr.Gray(0, 0))
	}
	fr.SetPixel(0, 0, []byte{255, 0, 0})
	if g := fr.Gray(0, 0); g < 74 || g > 78 {
		t.Errorf("red luma = %d, want ~76", g)
	}
	yuv := New(1, 1, YUV444)
	yuv.SetPixel(0, 0, []byte{200, 50, 60})
	if yuv.Gray(0, 0) != 200 {
		t.Errorf("YUV luma = %d, want Y channel 200", yuv.Gray(0, 0))
	}
}

func TestGrayAtClamped(t *testing.T) {
	fr := New(3, 3, Gray8)
	fr.SetGray(0, 0, 11)
	fr.SetGray(2, 2, 22)
	if fr.GrayAtClamped(-5, -5) != 11 {
		t.Error("clamp to top-left failed")
	}
	if fr.GrayAtClamped(10, 10) != 22 {
		t.Error("clamp to bottom-right failed")
	}
}

func TestCloneEqualFill(t *testing.T) {
	fr := New(4, 4, Gray8)
	fr.Fill(7)
	c := fr.Clone()
	if !fr.Equal(c) {
		t.Fatal("clone unequal")
	}
	c.SetGray(1, 1, 9)
	if fr.Equal(c) {
		t.Fatal("mutated clone equal")
	}
	if fr.Equal(New(4, 5, Gray8)) {
		t.Fatal("different shapes equal")
	}
}

func TestCrop(t *testing.T) {
	fr := New(10, 10, Gray8)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			fr.SetGray(x, y, uint8(y*10+x))
		}
	}
	c := fr.Crop(3, 4, 4, 3)
	if c.W != 4 || c.H != 3 {
		t.Fatalf("crop dims %dx%d, want 4x3", c.W, c.H)
	}
	if c.Gray(0, 0) != 43 || c.Gray(3, 2) != 66 {
		t.Errorf("crop contents wrong: %d, %d", c.Gray(0, 0), c.Gray(3, 2))
	}
	// Clipped crop.
	c2 := fr.Crop(8, 8, 5, 5)
	if c2.W != 2 || c2.H != 2 {
		t.Errorf("clipped crop dims %dx%d, want 2x2", c2.W, c2.H)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty crop did not panic")
			}
		}()
		fr.Crop(20, 20, 2, 2)
	}()
}

func TestToGray(t *testing.T) {
	fr := New(2, 1, RGB24)
	fr.SetPixel(0, 0, []byte{100, 100, 100})
	fr.SetPixel(1, 0, []byte{0, 0, 0})
	g := fr.ToGray()
	if g.Format != Gray8 || g.Gray(0, 0) != 100 || g.Gray(1, 0) != 0 {
		t.Errorf("ToGray wrong: %v", g.Pix)
	}
	// Gray input is copied, not aliased.
	g2 := g.ToGray()
	g2.SetGray(0, 0, 5)
	if g.Gray(0, 0) == 5 {
		t.Error("ToGray on Gray8 aliased storage")
	}
}

func TestDownscaleBox(t *testing.T) {
	fr := New(4, 4, Gray8)
	fr.FillRect(0, 0, 2, 2, 100) // top-left block all 100
	fr.FillRect(2, 2, 2, 2, 40)  // bottom-right all 40
	d := fr.Downscale(2)
	if d.W != 2 || d.H != 2 {
		t.Fatalf("downscale dims %dx%d", d.W, d.H)
	}
	if d.Gray(0, 0) != 100 || d.Gray(1, 1) != 40 || d.Gray(1, 0) != 0 {
		t.Errorf("downscale values: %v", d.Pix)
	}
	if !fr.Downscale(1).Equal(fr) {
		t.Error("Downscale(1) should be identity")
	}
}

func TestUpscaleNearest(t *testing.T) {
	fr := New(2, 2, Gray8)
	fr.SetGray(0, 0, 1)
	fr.SetGray(1, 0, 2)
	fr.SetGray(0, 1, 3)
	fr.SetGray(1, 1, 4)
	u := fr.UpscaleNearest(3)
	if u.W != 6 || u.H != 6 {
		t.Fatalf("upscale dims %dx%d", u.W, u.H)
	}
	if u.Gray(2, 2) != 1 || u.Gray(3, 2) != 2 || u.Gray(2, 3) != 3 || u.Gray(5, 5) != 4 {
		t.Errorf("upscale values wrong")
	}
}

func TestDownscaleUpscaleRoundTripUniform(t *testing.T) {
	fr := New(8, 8, Gray8)
	fr.Fill(123)
	rt := fr.Downscale(2).UpscaleNearest(2)
	if !rt.Equal(fr) {
		t.Error("uniform frame should round-trip through scale 2")
	}
}

func TestResizeBilinear(t *testing.T) {
	fr := New(4, 4, Gray8)
	fr.Fill(80)
	r := fr.ResizeBilinear(7, 3)
	if r.W != 7 || r.H != 3 {
		t.Fatalf("resize dims %dx%d", r.W, r.H)
	}
	for i, v := range r.Pix {
		if v != 80 {
			t.Fatalf("uniform resize changed value at %d: %d", i, v)
		}
	}
	// Gradient image stays monotone along x after resize.
	g := New(16, 4, Gray8)
	for y := 0; y < 4; y++ {
		for x := 0; x < 16; x++ {
			g.SetGray(x, y, uint8(x*16))
		}
	}
	r2 := g.ResizeBilinear(8, 4)
	for x := 1; x < 8; x++ {
		if r2.Gray(x, 0) < r2.Gray(x-1, 0) {
			t.Fatalf("resize broke monotonicity at x=%d", x)
		}
	}
}

func TestGaussianBlurPreservesUniformAndSmooths(t *testing.T) {
	fr := New(9, 9, Gray8)
	fr.Fill(50)
	b := fr.GaussianBlur(1.2)
	for i, v := range b.Pix {
		if v != 50 {
			t.Fatalf("blur changed uniform frame at %d: %d", i, v)
		}
	}
	// Impulse: center should spread.
	imp := New(9, 9, Gray8)
	imp.SetGray(4, 4, 255)
	bi := imp.GaussianBlur(1.0)
	if bi.Gray(4, 4) >= 255 || bi.Gray(4, 4) == 0 {
		t.Errorf("blurred impulse center = %d", bi.Gray(4, 4))
	}
	if bi.Gray(3, 4) == 0 {
		t.Error("impulse did not spread")
	}
	if !imp.GaussianBlur(0).Equal(imp) {
		t.Error("sigma=0 should be identity")
	}
}

func TestGradients(t *testing.T) {
	fr := New(8, 8, Gray8)
	// Vertical edge at x=4.
	fr.FillRect(4, 0, 4, 8, 200)
	gx, gy := fr.Gradients()
	if gx[3*8+4] <= 0 {
		t.Errorf("gx at edge = %d, want > 0", gx[3*8+4])
	}
	if gy[3*8+4] != 0 {
		t.Errorf("gy at vertical edge = %d, want 0", gy[3*8+4])
	}
}

func TestIntegralBoxSum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fr := New(13, 9, Gray8)
	for i := range fr.Pix {
		fr.Pix[i] = uint8(rng.Intn(256))
	}
	ii := fr.Integral()
	for trial := 0; trial < 30; trial++ {
		x0, y0 := rng.Intn(13), rng.Intn(9)
		x1, y1 := x0+rng.Intn(13-x0)+1, y0+rng.Intn(9-y0)+1
		var naive int64
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				naive += int64(fr.Gray(x, y))
			}
		}
		if got := BoxSum(ii, x0, y0, x1, y1); got != naive {
			t.Fatalf("BoxSum(%d,%d,%d,%d) = %d, want %d", x0, y0, x1, y1, got, naive)
		}
	}
}

func TestMAEPSNR(t *testing.T) {
	a := New(4, 4, Gray8)
	b := New(4, 4, Gray8)
	mae, err := MAE(a, b)
	if err != nil || mae != 0 {
		t.Errorf("identical MAE = %v, %v", mae, err)
	}
	psnr, err := PSNR(a, b)
	if err != nil || !math.IsInf(psnr, 1) {
		t.Errorf("identical PSNR = %v, %v", psnr, err)
	}
	b.Fill(10)
	mae, _ = MAE(a, b)
	if mae != 10 {
		t.Errorf("MAE = %v, want 10", mae)
	}
	psnr, _ = PSNR(a, b)
	if psnr < 28 || psnr > 29 {
		t.Errorf("PSNR = %v, want ~28.1", psnr)
	}
	if _, err := MAE(a, New(5, 4, Gray8)); err == nil {
		t.Error("MAE shape mismatch: want error")
	}
	if _, err := PSNR(a, New(5, 4, Gray8)); err == nil {
		t.Error("PSNR shape mismatch: want error")
	}
}

func TestDrawPrimitives(t *testing.T) {
	fr := New(10, 10, Gray8)
	fr.DrawRect(2, 2, 5, 5, 255)
	if fr.Gray(2, 2) != 255 || fr.Gray(6, 6) != 255 || fr.Gray(4, 4) != 0 {
		t.Error("DrawRect outline wrong")
	}
	fr2 := New(10, 10, Gray8)
	fr2.FillCircle(5, 5, 3, 200)
	if fr2.Gray(5, 5) != 200 || fr2.Gray(5, 2) != 200 || fr2.Gray(0, 0) != 0 {
		t.Error("FillCircle wrong")
	}
	// Circle partially off-frame should not panic.
	fr2.FillCircle(-1, -1, 3, 100)
	fr3 := New(10, 10, Gray8)
	fr3.DrawLine(0, 0, 9, 9, 77)
	for i := 0; i < 10; i++ {
		if fr3.Gray(i, i) != 77 {
			t.Fatalf("diagonal line missing pixel %d", i)
		}
	}
	fr3.DrawLine(9, 0, 0, 9, 66) // reverse direction
	if fr3.Gray(0, 9) != 66 {
		t.Error("reverse line missing endpoint")
	}
}

func TestPNMRoundTrip(t *testing.T) {
	for _, format := range []Format{Gray8, RGB24} {
		fr := New(6, 4, format)
		rng := rand.New(rand.NewSource(1))
		for i := range fr.Pix {
			fr.Pix[i] = uint8(rng.Intn(256))
		}
		var buf bytes.Buffer
		if err := fr.WritePNM(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadPNM(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(fr) {
			t.Errorf("%v PNM round trip mismatch", format)
		}
	}
}

func TestPNMErrors(t *testing.T) {
	for name, data := range map[string]string{
		"badMagic":  "P3\n2 2\n255\n",
		"badMaxval": "P5\n2 2\n65535\n",
		"badDims":   "P5\n-2 2\n255\n",
		"badToken":  "P5\nxx 2\n255\n",
		"shortData": "P5\n4 4\n255\nab",
	} {
		if _, err := ReadPNM(bytes.NewReader([]byte(data))); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	// Comments are skipped.
	good := "P5 # comment\n# another\n2 1\n255\nAB"
	fr, err := ReadPNM(bytes.NewReader([]byte(good)))
	if err != nil {
		t.Fatalf("comment handling: %v", err)
	}
	if fr.Gray(0, 0) != 'A' || fr.Gray(1, 0) != 'B' {
		t.Error("comment-laden PNM parsed wrong")
	}
}

func TestSavePNMLoadPNM(t *testing.T) {
	dir := t.TempDir()
	fr := New(3, 3, Gray8)
	fr.Fill(42)
	path := dir + "/a.pgm"
	if err := fr.SavePNM(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPNM(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(fr) {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadPNM(dir + "/missing.pgm"); err == nil {
		t.Error("missing file: want error")
	}
}

// Property: crop of a crop equals direct crop.
func TestCropComposeProperty(t *testing.T) {
	base := New(32, 32, Gray8)
	rng := rand.New(rand.NewSource(9))
	for i := range base.Pix {
		base.Pix[i] = uint8(rng.Intn(256))
	}
	f := func(x1s, y1s, x2s, y2s uint8) bool {
		x1, y1 := int(x1s)%16, int(y1s)%16
		x2, y2 := int(x2s)%8, int(y2s)%8
		a := base.Crop(x1, y1, 16, 16).Crop(x2, y2, 8, 8)
		b := base.Crop(x1+x2, y1+y2, 8, 8)
		return a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDownscale1080pTo480p(b *testing.B) {
	fr := New(1920, 1080, Gray8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = fr.Downscale(2)
	}
}

func BenchmarkGaussianBlurVGA(b *testing.B) {
	fr := New(640, 480, Gray8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = fr.GaussianBlur(1.5)
	}
}
