// Package frame provides the image-frame substrate for the rhythmic pixel
// region system: pixel buffers in several formats, raster-scan addressing,
// and the image operations (scaling, filtering, gradients) that the ISP
// simulation and the vision workloads are built on.
//
// The package is deliberately self-contained (stdlib only) because the
// encoder/decoder, ISP model, and feature extractor all need tight control
// over pixel layout: frames are stored as a single contiguous raster-scan
// byte slice, exactly the layout a camera's line-by-line readout produces
// and the layout the rhythmic pixel encoder consumes.
package frame

import (
	"fmt"
	"math"
)

// Format identifies the pixel format of a Frame.
type Format uint8

const (
	// Gray8 is 8-bit single-channel luminance, 1 byte/pixel.
	Gray8 Format = iota
	// RGB24 is interleaved 8-bit red, green, blue, 3 bytes/pixel.
	RGB24
	// YUV444 is interleaved 8-bit Y, U, V, 3 bytes/pixel.
	YUV444
	// BayerRGGB is a raw 8-bit Bayer mosaic (RGGB tiling), 1 byte/pixel,
	// as produced by the simulated image sensor before demosaicing.
	BayerRGGB
)

// String returns the format's name.
func (f Format) String() string {
	switch f {
	case Gray8:
		return "Gray8"
	case RGB24:
		return "RGB24"
	case YUV444:
		return "YUV444"
	case BayerRGGB:
		return "BayerRGGB"
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// BytesPerPixel returns the per-pixel storage of the format.
func (f Format) BytesPerPixel() int {
	switch f {
	case Gray8, BayerRGGB:
		return 1
	case RGB24, YUV444:
		return 3
	}
	panic("frame: unknown format")
}

// Frame is a raster-scan pixel buffer. Pix holds W*H*BytesPerPixel bytes,
// with pixel (x, y) beginning at offset (y*W+x)*BytesPerPixel. The zero
// value is not usable; construct frames with New or FromPix.
type Frame struct {
	W, H   int
	Format Format
	Pix    []byte
}

// New returns a zero-filled frame of the given dimensions and format.
func New(w, h int, f Format) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame: invalid dimensions %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Format: f, Pix: make([]byte, w*h*f.BytesPerPixel())}
}

// FromPix wraps an existing raster-scan buffer without copying.
func FromPix(w, h int, f Format, pix []byte) (*Frame, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("frame: invalid dimensions %dx%d", w, h)
	}
	if need := w * h * f.BytesPerPixel(); len(pix) != need {
		return nil, fmt.Errorf("frame: buffer is %d bytes, need %d for %dx%d %v", len(pix), need, w, h, f)
	}
	return &Frame{W: w, H: h, Format: f, Pix: pix}, nil
}

// BytesPerPixel returns the frame's per-pixel storage.
func (fr *Frame) BytesPerPixel() int { return fr.Format.BytesPerPixel() }

// Stride returns the byte length of one pixel row.
func (fr *Frame) Stride() int { return fr.W * fr.BytesPerPixel() }

// SizeBytes returns the total pixel storage of the frame.
func (fr *Frame) SizeBytes() int { return len(fr.Pix) }

// NumPixels returns W*H.
func (fr *Frame) NumPixels() int { return fr.W * fr.H }

// InBounds reports whether (x, y) is a valid pixel coordinate.
func (fr *Frame) InBounds(x, y int) bool {
	return x >= 0 && x < fr.W && y >= 0 && y < fr.H
}

// PixelOffset returns the byte offset of pixel (x, y).
func (fr *Frame) PixelOffset(x, y int) int {
	return (y*fr.W + x) * fr.BytesPerPixel()
}

// Pixel returns the bytes of pixel (x, y) as a sub-slice of Pix.
func (fr *Frame) Pixel(x, y int) []byte {
	if !fr.InBounds(x, y) {
		panic(fmt.Sprintf("frame: pixel (%d,%d) out of %dx%d", x, y, fr.W, fr.H))
	}
	off := fr.PixelOffset(x, y)
	return fr.Pix[off : off+fr.BytesPerPixel()]
}

// SetPixel copies len(BytesPerPixel) bytes into pixel (x, y).
func (fr *Frame) SetPixel(x, y int, v []byte) {
	copy(fr.Pixel(x, y), v)
}

// Gray returns the 8-bit luminance of pixel (x, y). For RGB24 it uses the
// BT.601 luma weights; for YUV444 it returns the Y channel directly.
func (fr *Frame) Gray(x, y int) uint8 {
	p := fr.Pixel(x, y)
	switch fr.Format {
	case Gray8, BayerRGGB:
		return p[0]
	case RGB24:
		// BT.601: Y = 0.299 R + 0.587 G + 0.114 B, in fixed point.
		return uint8((299*int(p[0]) + 587*int(p[1]) + 114*int(p[2]) + 500) / 1000)
	case YUV444:
		return p[0]
	}
	panic("frame: unknown format")
}

// SetGray writes luminance v to pixel (x, y). For 3-channel formats every
// channel is set to v (neutral chroma for YUV is not modeled here; the ISP
// package handles proper conversion).
func (fr *Frame) SetGray(x, y int, v uint8) {
	p := fr.Pixel(x, y)
	for i := range p {
		p[i] = v
	}
}

// GrayAtClamped returns luminance with coordinates clamped to the frame
// border, the edge-extension convention used by the convolution kernels.
func (fr *Frame) GrayAtClamped(x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= fr.W {
		x = fr.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= fr.H {
		y = fr.H - 1
	}
	return fr.Gray(x, y)
}

// Clone returns a deep copy of the frame.
func (fr *Frame) Clone() *Frame {
	c := &Frame{W: fr.W, H: fr.H, Format: fr.Format, Pix: make([]byte, len(fr.Pix))}
	copy(c.Pix, fr.Pix)
	return c
}

// Fill sets every pixel channel to v.
func (fr *Frame) Fill(v uint8) {
	for i := range fr.Pix {
		fr.Pix[i] = v
	}
}

// Equal reports whether two frames have identical dimensions, format, and
// pixel data.
func (fr *Frame) Equal(o *Frame) bool {
	if fr.W != o.W || fr.H != o.H || fr.Format != o.Format {
		return false
	}
	for i, b := range fr.Pix {
		if b != o.Pix[i] {
			return false
		}
	}
	return true
}

// Crop returns a copy of the rectangle [x, x+w) x [y, y+h). The rectangle is
// clipped to the frame bounds; the result has the clipped dimensions.
func (fr *Frame) Crop(x, y, w, h int) *Frame {
	x0, y0 := max(x, 0), max(y, 0)
	x1, y1 := min(x+w, fr.W), min(y+h, fr.H)
	if x1 <= x0 || y1 <= y0 {
		panic(fmt.Sprintf("frame: empty crop (%d,%d,%d,%d) of %dx%d", x, y, w, h, fr.W, fr.H))
	}
	out := New(x1-x0, y1-y0, fr.Format)
	bpp := fr.BytesPerPixel()
	for row := y0; row < y1; row++ {
		src := fr.Pix[(row*fr.W+x0)*bpp : (row*fr.W+x1)*bpp]
		dst := out.Pix[(row-y0)*out.Stride() : (row-y0+1)*out.Stride()]
		copy(dst, src)
	}
	return out
}

// ToGray converts the frame to Gray8. Gray8 input is copied.
func (fr *Frame) ToGray() *Frame {
	if fr.Format == Gray8 {
		return fr.Clone()
	}
	out := New(fr.W, fr.H, Gray8)
	for y := 0; y < fr.H; y++ {
		for x := 0; x < fr.W; x++ {
			out.Pix[y*fr.W+x] = fr.Gray(x, y)
		}
	}
	return out
}

// MAE returns the mean absolute per-byte error between two frames of
// identical shape.
func MAE(a, b *Frame) (float64, error) {
	if a.W != b.W || a.H != b.H || a.Format != b.Format {
		return 0, fmt.Errorf("frame: MAE shape mismatch %dx%d %v vs %dx%d %v", a.W, a.H, a.Format, b.W, b.H, b.Format)
	}
	var sum int64
	for i := range a.Pix {
		d := int64(a.Pix[i]) - int64(b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return float64(sum) / float64(len(a.Pix)), nil
}

// PSNR returns the peak signal-to-noise ratio in dB between two frames of
// identical shape. Identical frames return +Inf.
func PSNR(a, b *Frame) (float64, error) {
	if a.W != b.W || a.H != b.H || a.Format != b.Format {
		return 0, fmt.Errorf("frame: PSNR shape mismatch")
	}
	var sum float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		sum += d * d
	}
	mse := sum / float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}
