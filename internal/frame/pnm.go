package frame

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// PNM (PGM/PPM) input/output. The binary Netpbm formats are the simplest
// widely supported image containers and need no compression library, so the
// CLI tools use them to move frames in and out of the pipeline.

// WritePNM writes the frame to w as binary PGM (Gray8/Bayer) or PPM
// (RGB24/YUV444; YUV is written raw without conversion).
func (fr *Frame) WritePNM(w io.Writer) error {
	var magic string
	switch fr.BytesPerPixel() {
	case 1:
		magic = "P5"
	case 3:
		magic = "P6"
	default:
		return fmt.Errorf("frame: no PNM mapping for %v", fr.Format)
	}
	if _, err := fmt.Fprintf(w, "%s\n%d %d\n255\n", magic, fr.W, fr.H); err != nil {
		return err
	}
	_, err := w.Write(fr.Pix)
	return err
}

// SavePNM writes the frame to a file using WritePNM.
func (fr *Frame) SavePNM(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := fr.WritePNM(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPNM reads a binary PGM (P5) or PPM (P6) image. PGM becomes Gray8 and
// PPM becomes RGB24. Only maxval 255 is supported.
func ReadPNM(r io.Reader) (*Frame, error) {
	br := bufio.NewReader(r)
	magic, err := pnmToken(br)
	if err != nil {
		return nil, err
	}
	var format Format
	switch magic {
	case "P5":
		format = Gray8
	case "P6":
		format = RGB24
	default:
		return nil, fmt.Errorf("frame: unsupported PNM magic %q", magic)
	}
	var w, h, maxval int
	for _, dst := range []*int{&w, &h, &maxval} {
		tok, err := pnmToken(br)
		if err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(tok, "%d", dst); err != nil {
			return nil, fmt.Errorf("frame: bad PNM header token %q", tok)
		}
	}
	if maxval != 255 {
		return nil, fmt.Errorf("frame: unsupported PNM maxval %d", maxval)
	}
	if w <= 0 || h <= 0 || w > 1<<16 || h > 1<<16 {
		return nil, fmt.Errorf("frame: unreasonable PNM dimensions %dx%d", w, h)
	}
	fr := New(w, h, format)
	if _, err := io.ReadFull(br, fr.Pix); err != nil {
		return nil, fmt.Errorf("frame: short PNM pixel data: %w", err)
	}
	return fr, nil
}

// LoadPNM reads a PNM image from a file.
func LoadPNM(path string) (*Frame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPNM(f)
}

// pnmToken reads the next whitespace-delimited token, skipping '#' comments.
func pnmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	inComment := false
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case inComment:
			if b == '\n' {
				inComment = false
			}
		case b == '#':
			inComment = true
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}
