package frame

import "math"

// GaussianBlur returns a Gray8 frame blurred with a separable Gaussian of
// the given sigma. Kernel radius is ceil(3*sigma). Edges use clamp-to-border
// extension.
func (fr *Frame) GaussianBlur(sigma float64) *Frame {
	if fr.Format != Gray8 {
		panic("frame: GaussianBlur requires Gray8")
	}
	if sigma <= 0 {
		return fr.Clone()
	}
	radius := int(math.Ceil(3 * sigma))
	kernel := make([]float64, 2*radius+1)
	var sum float64
	for i := range kernel {
		d := float64(i - radius)
		kernel[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= sum
	}

	// Horizontal pass into a float buffer, vertical pass back to bytes.
	tmp := make([]float64, fr.W*fr.H)
	for y := 0; y < fr.H; y++ {
		for x := 0; x < fr.W; x++ {
			var acc float64
			for k, kv := range kernel {
				sxp := x + k - radius
				if sxp < 0 {
					sxp = 0
				} else if sxp >= fr.W {
					sxp = fr.W - 1
				}
				acc += kv * float64(fr.Pix[y*fr.W+sxp])
			}
			tmp[y*fr.W+x] = acc
		}
	}
	out := New(fr.W, fr.H, Gray8)
	for y := 0; y < fr.H; y++ {
		for x := 0; x < fr.W; x++ {
			var acc float64
			for k, kv := range kernel {
				syp := y + k - radius
				if syp < 0 {
					syp = 0
				} else if syp >= fr.H {
					syp = fr.H - 1
				}
				acc += kv * tmp[syp*fr.W+x]
			}
			v := acc + 0.5
			if v > 255 {
				v = 255
			} else if v < 0 {
				v = 0
			}
			out.Pix[y*fr.W+x] = uint8(v)
		}
	}
	return out
}

// Gradients computes Sobel x/y gradients of a Gray8 frame. The returned
// slices are W*H int16 values in raster order.
func (fr *Frame) Gradients() (gx, gy []int16) {
	if fr.Format != Gray8 {
		panic("frame: Gradients requires Gray8")
	}
	gx = make([]int16, fr.W*fr.H)
	gy = make([]int16, fr.W*fr.H)
	at := func(x, y int) int {
		if x < 0 {
			x = 0
		} else if x >= fr.W {
			x = fr.W - 1
		}
		if y < 0 {
			y = 0
		} else if y >= fr.H {
			y = fr.H - 1
		}
		return int(fr.Pix[y*fr.W+x])
	}
	for y := 0; y < fr.H; y++ {
		for x := 0; x < fr.W; x++ {
			sx := -at(x-1, y-1) + at(x+1, y-1) - 2*at(x-1, y) + 2*at(x+1, y) - at(x-1, y+1) + at(x+1, y+1)
			sy := -at(x-1, y-1) - 2*at(x, y-1) - at(x+1, y-1) + at(x-1, y+1) + 2*at(x, y+1) + at(x+1, y+1)
			gx[y*fr.W+x] = int16(sx)
			gy[y*fr.W+x] = int16(sy)
		}
	}
	return gx, gy
}

// Integral returns the (W+1)x(H+1) summed-area table of a Gray8 frame:
// I[y][x] = sum of pixels in [0,x) x [0,y). Box sums over any rectangle are
// then O(1), which the tracker's normalized cross-correlation uses.
func (fr *Frame) Integral() [][]int64 {
	if fr.Format != Gray8 {
		panic("frame: Integral requires Gray8")
	}
	ii := make([][]int64, fr.H+1)
	for i := range ii {
		ii[i] = make([]int64, fr.W+1)
	}
	for y := 0; y < fr.H; y++ {
		var rowSum int64
		for x := 0; x < fr.W; x++ {
			rowSum += int64(fr.Pix[y*fr.W+x])
			ii[y+1][x+1] = ii[y][x+1] + rowSum
		}
	}
	return ii
}

// BoxSum returns the sum of pixels in [x0,x1) x [y0,y1) given an integral
// image from Integral.
func BoxSum(ii [][]int64, x0, y0, x1, y1 int) int64 {
	return ii[y1][x1] - ii[y0][x1] - ii[y1][x0] + ii[y0][x0]
}
