package frame

import "fmt"

// Downscale reduces a frame by an integer factor using box filtering (the
// average of each factor x factor block). This is the model of "frame-based
// computing at low resolution" (FCL): the whole frame is captured, then
// uniformly decimated.
func (fr *Frame) Downscale(factor int) *Frame {
	if factor < 1 {
		panic(fmt.Sprintf("frame: invalid downscale factor %d", factor))
	}
	if factor == 1 {
		return fr.Clone()
	}
	w := fr.W / factor
	h := fr.H / factor
	if w == 0 || h == 0 {
		panic(fmt.Sprintf("frame: downscale factor %d too large for %dx%d", factor, fr.W, fr.H))
	}
	bpp := fr.BytesPerPixel()
	out := New(w, h, fr.Format)
	area := factor * factor
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for c := 0; c < bpp; c++ {
				sum := 0
				for dy := 0; dy < factor; dy++ {
					row := (y*factor + dy) * fr.Stride()
					for dx := 0; dx < factor; dx++ {
						sum += int(fr.Pix[row+(x*factor+dx)*bpp+c])
					}
				}
				out.Pix[(y*w+x)*bpp+c] = uint8((sum + area/2) / area)
			}
		}
	}
	return out
}

// UpscaleNearest enlarges a frame by an integer factor with pixel
// replication, mirroring how a strided region's held pixels appear when
// reconstructed by the decoder.
func (fr *Frame) UpscaleNearest(factor int) *Frame {
	if factor < 1 {
		panic(fmt.Sprintf("frame: invalid upscale factor %d", factor))
	}
	if factor == 1 {
		return fr.Clone()
	}
	bpp := fr.BytesPerPixel()
	out := New(fr.W*factor, fr.H*factor, fr.Format)
	for y := 0; y < out.H; y++ {
		srcRow := (y / factor) * fr.Stride()
		dstRow := y * out.Stride()
		for x := 0; x < out.W; x++ {
			copy(out.Pix[dstRow+x*bpp:dstRow+(x+1)*bpp], fr.Pix[srcRow+(x/factor)*bpp:srcRow+(x/factor+1)*bpp])
		}
	}
	return out
}

// ResizeBilinear resizes a Gray8 frame to w x h with bilinear interpolation.
// The feature extractor's image pyramid uses this for non-integer octave
// scale factors.
func (fr *Frame) ResizeBilinear(w, h int) *Frame {
	if fr.Format != Gray8 {
		panic("frame: ResizeBilinear requires Gray8")
	}
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame: invalid resize target %dx%d", w, h))
	}
	out := New(w, h, Gray8)
	// Map output pixel centers into source coordinates.
	sx := float64(fr.W) / float64(w)
	sy := float64(fr.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		y0 := int(fy)
		if fy < 0 {
			fy, y0 = 0, 0
		}
		ty := fy - float64(y0)
		y1 := y0 + 1
		if y1 >= fr.H {
			y1 = fr.H - 1
		}
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			x0 := int(fx)
			if fx < 0 {
				fx, x0 = 0, 0
			}
			tx := fx - float64(x0)
			x1 := x0 + 1
			if x1 >= fr.W {
				x1 = fr.W - 1
			}
			p00 := float64(fr.Pix[y0*fr.W+x0])
			p01 := float64(fr.Pix[y0*fr.W+x1])
			p10 := float64(fr.Pix[y1*fr.W+x0])
			p11 := float64(fr.Pix[y1*fr.W+x1])
			top := p00 + (p01-p00)*tx
			bot := p10 + (p11-p10)*tx
			out.Pix[y*w+x] = uint8(top + (bot-top)*ty + 0.5)
		}
	}
	return out
}
