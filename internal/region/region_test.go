package region

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := Label{X: 10, Y: 10, W: 20, H: 20, Stride: 2, Skip: 3, Phase: 1}
	if err := good.Validate(100, 100); err != nil {
		t.Errorf("valid label rejected: %v", err)
	}
	bad := []Label{
		{X: 0, Y: 0, W: 0, H: 5, Stride: 1, Skip: 1},           // empty W
		{X: 0, Y: 0, W: 5, H: -1, Stride: 1, Skip: 1},          // empty H
		{X: -1, Y: 0, W: 5, H: 5, Stride: 1, Skip: 1},          // off left
		{X: 98, Y: 0, W: 5, H: 5, Stride: 1, Skip: 1},          // off right
		{X: 0, Y: 98, W: 5, H: 5, Stride: 1, Skip: 1},          // off bottom
		{X: 0, Y: 0, W: 5, H: 5, Stride: 0, Skip: 1},           // bad stride
		{X: 0, Y: 0, W: 5, H: 5, Stride: 1, Skip: 0},           // bad skip
		{X: 0, Y: 0, W: 5, H: 5, Stride: 1, Skip: 2, Phase: 2}, // bad phase
	}
	for i, l := range bad {
		if err := l.Validate(100, 100); err == nil {
			t.Errorf("bad label %d accepted: %v", i, l)
		}
	}
}

func TestActiveAt(t *testing.T) {
	l := Label{W: 1, H: 1, Stride: 1, Skip: 3, Phase: 1}
	active := []bool{false, true, false, false, true, false, false}
	for f, want := range active {
		if got := l.ActiveAt(f); got != want {
			t.Errorf("ActiveAt(%d) = %v, want %v", f, got, want)
		}
	}
	every := Label{W: 1, H: 1, Stride: 1, Skip: 1}
	for f := 0; f < 5; f++ {
		if !every.ActiveAt(f) {
			t.Errorf("skip=1 inactive at %d", f)
		}
	}
	// Negative frame indices stay well-defined.
	if l.ActiveAt(-2) != true {
		t.Error("ActiveAt(-2) with skip 3 phase 1: (-2-1)%3==0, want active")
	}
}

func TestContainsOnStride(t *testing.T) {
	l := Label{X: 4, Y: 6, W: 10, H: 8, Stride: 2, Skip: 1}
	if !l.Contains(4, 6) || !l.Contains(13, 13) {
		t.Error("corners should be contained")
	}
	if l.Contains(14, 6) || l.Contains(4, 14) || l.Contains(3, 6) {
		t.Error("outside points contained")
	}
	if !l.OnStride(4, 6) || !l.OnStride(6, 8) {
		t.Error("lattice points rejected")
	}
	if l.OnStride(5, 6) || l.OnStride(4, 7) {
		t.Error("off-lattice points accepted")
	}
}

func TestRowOverlaps(t *testing.T) {
	l := Label{X: 0, Y: 10, W: 5, H: 6, Stride: 3, Skip: 1}
	cases := map[int]bool{9: false, 10: true, 11: false, 13: true, 15: false, 16: false}
	for y, want := range cases {
		if got := l.RowOverlaps(y); got != want {
			t.Errorf("RowOverlaps(%d) = %v, want %v", y, got, want)
		}
	}
	if !l.RowInYRange(11) || l.RowInYRange(16) {
		t.Error("RowInYRange wrong")
	}
}

func TestSampledPixels(t *testing.T) {
	cases := []struct {
		l    Label
		want int
	}{
		{Label{W: 10, H: 10, Stride: 1}, 100},
		{Label{W: 10, H: 10, Stride: 2}, 25},
		{Label{W: 11, H: 11, Stride: 2}, 36}, // ceil(11/2)^2
		{Label{W: 7, H: 3, Stride: 4}, 2},    // ceil(7/4)*ceil(3/4) = 2*1
	}
	for _, c := range cases {
		if got := c.l.SampledPixels(); got != c.want {
			t.Errorf("%v SampledPixels = %d, want %d", c.l, got, c.want)
		}
	}
	if (Label{W: 3, H: 4}).Area() != 12 {
		t.Error("Area wrong")
	}
}

func TestListSortValidate(t *testing.T) {
	ls := List{
		{X: 5, Y: 30, W: 4, H: 4, Stride: 1, Skip: 1},
		{X: 1, Y: 10, W: 4, H: 4, Stride: 1, Skip: 1},
		{X: 9, Y: 10, W: 4, H: 4, Stride: 1, Skip: 1},
	}
	if ls.IsSortedByY() {
		t.Error("unsorted list reported sorted")
	}
	ls.SortByY()
	if !ls.IsSortedByY() || ls[0].Y != 10 || ls[0].X != 1 || ls[2].Y != 30 {
		t.Errorf("sort wrong: %v", ls)
	}
	if err := ls.Validate(100, 100); err != nil {
		t.Errorf("valid list rejected: %v", err)
	}
	ls[1].Stride = 0
	if err := ls.Validate(100, 100); err == nil {
		t.Error("invalid list accepted")
	}
	c := ls.Clone()
	c[0].X = 99
	if ls[0].X == 99 {
		t.Error("Clone aliases storage")
	}
}

func TestFullFrame(t *testing.T) {
	l := FullFrame(640, 480)
	if l.X != 0 || l.Y != 0 || l.W != 640 || l.H != 480 || l.Stride != 1 || l.Skip != 1 {
		t.Errorf("FullFrame = %v", l)
	}
	if err := l.Validate(640, 480); err != nil {
		t.Error(err)
	}
	if l.SampledPixels() != 640*480 {
		t.Error("FullFrame should sample every pixel")
	}
}

func TestClip(t *testing.T) {
	l, ok := Clip(Label{X: -5, Y: -5, W: 20, H: 20, Stride: 0, Skip: -1, Phase: 5}, 100, 100)
	if !ok {
		t.Fatal("clip rejected recoverable label")
	}
	if l.X != 0 || l.Y != 0 || l.W != 15 || l.H != 15 || l.Stride != 1 || l.Skip != 1 || l.Phase != 0 {
		t.Errorf("Clip = %v", l)
	}
	l2, ok := Clip(Label{X: 90, Y: 90, W: 50, H: 50, Stride: 2, Skip: 2}, 100, 100)
	if !ok || l2.W != 10 || l2.H != 10 {
		t.Errorf("Clip overflow = %v ok=%v", l2, ok)
	}
	if _, ok := Clip(Label{X: 200, Y: 0, W: 10, H: 10}, 100, 100); ok {
		t.Error("fully outside label not rejected")
	}
	if _, ok := Clip(Label{X: 0, Y: 0, W: -3, H: 10}, 100, 100); ok {
		t.Error("negative-size label not rejected")
	}
}

// Property: after Clip, the label always validates.
func TestClipValidatesProperty(t *testing.T) {
	f := func(x, y int16, w, h uint8, stride, skip int8) bool {
		l, ok := Clip(Label{X: int(x), Y: int(y), W: int(w), H: int(h),
			Stride: int(stride), Skip: int(skip)}, 320, 240)
		if !ok {
			return true
		}
		return l.Validate(320, 240) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	ls := List{
		{X: 0, Y: 0, W: 10, H: 20, Stride: 1, Skip: 1},
		{X: 50, Y: 50, W: 30, H: 12, Stride: 2, Skip: 4},
	}
	s := ls.Stats(100, 100)
	if s.NumRegions != 2 {
		t.Errorf("NumRegions = %d", s.NumRegions)
	}
	if s.MinW != 10 || s.MaxW != 30 || s.MinH != 12 || s.MaxH != 20 {
		t.Errorf("size stats wrong: %+v", s)
	}
	if s.MinStride != 1 || s.MaxStride != 2 || s.MinSkip != 1 || s.MaxSkip != 4 {
		t.Errorf("rhythm stats wrong: %+v", s)
	}
	if s.TotalSampled != 200+15*6 {
		t.Errorf("TotalSampled = %d, want %d", s.TotalSampled, 200+90)
	}
	if s.UnionAreaApproxPixels <= 0 || s.UnionAreaApproxPixels > 100*100 {
		t.Errorf("union approx out of range: %d", s.UnionAreaApproxPixels)
	}
	empty := List{}.Stats(100, 100)
	if empty.NumRegions != 0 || empty.TotalSampled != 0 {
		t.Errorf("empty stats: %+v", empty)
	}
}

func TestClusterKMeansBasic(t *testing.T) {
	// Two clusters of small regions far apart: k=2 must produce two boxes
	// that each bound one cluster.
	var ls List
	for i := 0; i < 10; i++ {
		ls = append(ls, Label{X: 10 + i, Y: 10 + i, W: 5, H: 5, Stride: 3, Skip: 2})
		ls = append(ls, Label{X: 200 + i, Y: 200 + i, W: 5, H: 5, Stride: 2, Skip: 4})
	}
	out := ClusterKMeans(ls, 2, 320, 240, 1)
	if len(out) != 2 {
		t.Fatalf("got %d clusters, want 2", len(out))
	}
	for _, l := range out {
		if l.Stride != 1 || l.Skip != 1 {
			t.Errorf("multi-ROI cluster must not use stride/skip: %v", l)
		}
		if err := l.Validate(320, 240); err != nil {
			t.Errorf("invalid cluster: %v", err)
		}
	}
	// First cluster bounds 10..24 in both axes.
	if out[0].X != 10 || out[0].Y != 10 || out[0].W != 14 || out[0].H != 14 {
		t.Errorf("cluster 0 box = %v", out[0])
	}
}

func TestClusterKMeansFewRegions(t *testing.T) {
	ls := List{{X: 5, Y: 5, W: 10, H: 10, Stride: 4, Skip: 8}}
	out := ClusterKMeans(ls, 16, 100, 100, 1)
	if len(out) != 1 {
		t.Fatalf("got %d, want 1", len(out))
	}
	if out[0].Stride != 1 || out[0].Skip != 1 {
		t.Error("stride/skip must be stripped for multi-ROI model")
	}
	if ClusterKMeans(nil, 16, 100, 100, 1) != nil {
		t.Error("empty input should return nil")
	}
}

func TestClusterKMeansCapsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var ls List
	for i := 0; i < 500; i++ {
		ls = append(ls, Label{X: rng.Intn(1800), Y: rng.Intn(1000), W: 40, H: 40, Stride: 1, Skip: 1})
	}
	out := ClusterKMeans(ls, 16, 1920, 1080, 7)
	if len(out) > 16 || len(out) == 0 {
		t.Fatalf("got %d clusters, want 1..16", len(out))
	}
	if !out.IsSortedByY() {
		t.Error("output not sorted")
	}
	// Every input region's center must be inside some output box.
	for _, l := range ls {
		cx, cy := l.X+l.W/2, l.Y+l.H/2
		found := false
		for _, o := range out {
			if o.Contains(cx, cy) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("input region %v center not covered by any cluster", l)
		}
	}
}

func TestClusterKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var ls List
	for i := 0; i < 100; i++ {
		ls = append(ls, Label{X: rng.Intn(600), Y: rng.Intn(400), W: 20, H: 20, Stride: 1, Skip: 1})
	}
	a := ClusterKMeans(ls.Clone(), 8, 640, 480, 42)
	b := ClusterKMeans(ls.Clone(), 8, 640, 480, 42)
	if len(a) != len(b) {
		t.Fatal("non-deterministic cluster count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic cluster %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestClusterKMeansPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	ClusterKMeans(List{{W: 1, H: 1, Stride: 1, Skip: 1}}, 0, 10, 10, 1)
}

func TestMergeOverlapping(t *testing.T) {
	ls := List{
		{X: 0, Y: 0, W: 20, H: 20, Stride: 2, Skip: 3, Phase: 1},
		{X: 5, Y: 5, W: 20, H: 20, Stride: 1, Skip: 1}, // heavy overlap with first
		{X: 100, Y: 100, W: 10, H: 10, Stride: 1, Skip: 1},
	}
	out := MergeOverlapping(ls, 0.2, 200, 200)
	if len(out) != 2 {
		t.Fatalf("got %d labels, want 2 (first two merged)", len(out))
	}
	var big Label
	for _, l := range out {
		if l.W > 10 {
			big = l
		}
	}
	// Bounding box of the overlapping pair with the finer rhythm.
	if big.X != 0 || big.Y != 0 || big.W != 25 || big.H != 25 {
		t.Errorf("merged box = %v", big)
	}
	if big.Stride != 1 || big.Skip != 1 {
		t.Errorf("merged rhythm = s%d k%d, want finest (1,1)", big.Stride, big.Skip)
	}
	if err := out.Validate(200, 200); err != nil {
		t.Fatal(err)
	}
}

func TestMergeOverlappingDisjointUntouched(t *testing.T) {
	ls := List{
		{X: 0, Y: 0, W: 10, H: 10, Stride: 1, Skip: 1},
		{X: 50, Y: 50, W: 10, H: 10, Stride: 2, Skip: 2},
	}
	out := MergeOverlapping(ls, 0.1, 100, 100)
	if len(out) != 2 {
		t.Fatalf("disjoint labels merged: %v", out)
	}
	// Input is not mutated.
	single := MergeOverlapping(ls[:1], 0.1, 100, 100)
	if len(single) != 1 || single[0] != ls[0] {
		t.Error("single-label merge wrong")
	}
}

func TestMergeOverlappingChain(t *testing.T) {
	// A chain of pairwise-overlapping labels collapses transitively.
	var ls List
	for i := 0; i < 10; i++ {
		ls = append(ls, Label{X: i * 6, Y: 0, W: 10, H: 10, Stride: 1, Skip: 1})
	}
	out := MergeOverlapping(ls, 0.2, 200, 200)
	if len(out) != 1 {
		t.Fatalf("chain merged into %d labels, want 1", len(out))
	}
	if out[0].X != 0 || out[0].W != 9*6+10 {
		t.Errorf("chain box = %v", out[0])
	}
}

func TestOverlapCoeff(t *testing.T) {
	a := Label{X: 0, Y: 0, W: 10, H: 10}
	if overlapCoeff(a, a) != 1 {
		t.Error("self overlap != 1")
	}
	if overlapCoeff(a, Label{X: 50, Y: 50, W: 5, H: 5}) != 0 {
		t.Error("disjoint overlap != 0")
	}
	// Containment yields 1 regardless of size ratio.
	if overlapCoeff(a, Label{X: 2, Y: 2, W: 3, H: 3}) != 1 {
		t.Error("nested overlap != 1")
	}
}
