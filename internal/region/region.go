// Package region defines the developer-facing region label abstraction of
// rhythmic pixel regions (§3.1): rectangular neighborhoods of pixels with
// region-specific spatial resolution (stride) and temporal rate (skip).
//
// A capture workload is a list of labels. Labels may overlap; the encoder's
// raster-packed representation stores each pixel at most once regardless of
// how many labels cover it.
package region

import (
	"fmt"
	"sort"
)

// Label describes one rhythmic pixel region, mirroring the paper's
// RegionLabel struct:
//
//	struct RegionLabel { int x, y, w, h, stride, skip; };
//
// X, Y is the top-left corner; W, H the extent. Stride is the spatial
// sampling density: within the region, only pixels whose offset from the
// region origin is a multiple of Stride in both axes are captured (Stride=1
// captures every pixel, Stride=2 every other pixel per axis, i.e. 1/4 of
// the region's pixels). Skip is the temporal interval in frames between
// consecutive samplings: a region with Skip=s is captured on frames where
// (frameIndex-Phase) mod s == 0 (Skip=1 captures every frame, Skip=2 every
// other frame). Phase offsets the region's rhythm within its skip interval.
type Label struct {
	X, Y   int
	W, H   int
	Stride int
	Skip   int
	Phase  int
}

// Validate reports whether the label is well formed within a w x h frame.
// Labels must be non-empty, lie fully inside the frame, and have positive
// stride and skip.
func (l Label) Validate(frameW, frameH int) error {
	switch {
	case l.W <= 0 || l.H <= 0:
		return fmt.Errorf("region: empty label %dx%d", l.W, l.H)
	case l.X < 0 || l.Y < 0 || l.X+l.W > frameW || l.Y+l.H > frameH:
		return fmt.Errorf("region: label (%d,%d %dx%d) outside %dx%d frame", l.X, l.Y, l.W, l.H, frameW, frameH)
	case l.Stride < 1:
		return fmt.Errorf("region: stride %d < 1", l.Stride)
	case l.Skip < 1:
		return fmt.Errorf("region: skip %d < 1", l.Skip)
	case l.Phase < 0 || l.Phase >= l.Skip:
		return fmt.Errorf("region: phase %d outside [0,%d)", l.Phase, l.Skip)
	}
	return nil
}

// ActiveAt reports whether the region is temporally sampled at the given
// frame index: the frame falls on the region's rhythm.
func (l Label) ActiveAt(frameIndex int) bool {
	if l.Skip <= 1 {
		return true
	}
	m := (frameIndex - l.Phase) % l.Skip
	if m < 0 {
		m += l.Skip
	}
	return m == 0
}

// Contains reports whether pixel (x, y) lies inside the region rectangle.
func (l Label) Contains(x, y int) bool {
	return x >= l.X && x < l.X+l.W && y >= l.Y && y < l.Y+l.H
}

// OnStride reports whether pixel (x, y), assumed inside the region, falls on
// the region's spatial sampling lattice.
func (l Label) OnStride(x, y int) bool {
	if l.Stride <= 1 {
		return true
	}
	return (x-l.X)%l.Stride == 0 && (y-l.Y)%l.Stride == 0
}

// RowOverlaps reports whether the region covers image row y and the row
// falls on the region's vertical stride lattice (matching the paper's RoI
// Selector, which shortlists "region labels where row is in y-range" and
// matches the vertical stride).
func (l Label) RowOverlaps(y int) bool {
	if y < l.Y || y >= l.Y+l.H {
		return false
	}
	return l.Stride <= 1 || (y-l.Y)%l.Stride == 0
}

// RowInYRange reports whether the region's rectangle covers image row y,
// ignoring stride. Pixels on such rows are regional even when strided out.
func (l Label) RowInYRange(y int) bool {
	return y >= l.Y && y < l.Y+l.H
}

// SampledPixels returns the number of pixels the region contributes on a
// frame where it is active: the count of lattice points under the stride.
func (l Label) SampledPixels() int {
	return ceilDiv(l.W, l.Stride) * ceilDiv(l.H, l.Stride)
}

// Area returns W*H.
func (l Label) Area() int { return l.W * l.H }

// String formats the label compactly.
func (l Label) String() string {
	return fmt.Sprintf("{%d,%d %dx%d s%d k%d p%d}", l.X, l.Y, l.W, l.H, l.Stride, l.Skip, l.Phase)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// List is a capture workload: a set of region labels. The encoder requires
// lists sorted by Y (the paper has the app runtime pre-sort labels so the
// hardware RoI Selector can shortlist rows cheaply).
type List []Label

// Validate checks every label against the frame dimensions.
func (ls List) Validate(frameW, frameH int) error {
	for i, l := range ls {
		if err := l.Validate(frameW, frameH); err != nil {
			return fmt.Errorf("label %d: %w", i, err)
		}
	}
	return nil
}

// SortByY sorts the list by top edge, then left edge, in place, and returns
// it. This is the pre-sorting step the paper assigns to the OS-level runtime.
func (ls List) SortByY() List {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Y != ls[j].Y {
			return ls[i].Y < ls[j].Y
		}
		return ls[i].X < ls[j].X
	})
	return ls
}

// IsSortedByY reports whether the list is sorted by top edge.
func (ls List) IsSortedByY() bool {
	return sort.SliceIsSorted(ls, func(i, j int) bool { return ls[i].Y < ls[j].Y })
}

// Clone returns a copy of the list.
func (ls List) Clone() List {
	out := make(List, len(ls))
	copy(out, ls)
	return out
}

// FullFrame returns a single label covering the whole frame at full
// resolution and rate — the frame-based-computing degenerate case.
func FullFrame(w, h int) Label {
	return Label{X: 0, Y: 0, W: w, H: h, Stride: 1, Skip: 1}
}

// Clip returns a copy of l clipped to the w x h frame with stride/skip
// floored to legal values, or false if the clipped rectangle is empty.
// Policies use this to sanitize predicted regions near frame borders.
func Clip(l Label, w, h int) (Label, bool) {
	if l.X < 0 {
		l.W += l.X
		l.X = 0
	}
	if l.Y < 0 {
		l.H += l.Y
		l.Y = 0
	}
	if l.X+l.W > w {
		l.W = w - l.X
	}
	if l.Y+l.H > h {
		l.H = h - l.Y
	}
	if l.W <= 0 || l.H <= 0 || l.X >= w || l.Y >= h {
		return Label{}, false
	}
	if l.Stride < 1 {
		l.Stride = 1
	}
	if l.Skip < 1 {
		l.Skip = 1
	}
	if l.Phase < 0 || l.Phase >= l.Skip {
		l.Phase = 0
	}
	return l, true
}

// CoverageStats summarizes a list for reporting (the paper's Table 4).
type CoverageStats struct {
	NumRegions            int
	MinW, MinH            int
	MaxW, MaxH            int
	MinStride, MaxStride  int
	MinSkip, MaxSkip      int
	TotalSampled          int // sum of per-region sampled pixel counts
	UnionAreaApproxPixels int // approximate union coverage (grid sampled)
}

// Stats computes coverage statistics for the list over a w x h frame.
func (ls List) Stats(w, h int) CoverageStats {
	s := CoverageStats{NumRegions: len(ls)}
	if len(ls) == 0 {
		return s
	}
	s.MinW, s.MinH = ls[0].W, ls[0].H
	s.MinStride, s.MinSkip = ls[0].Stride, ls[0].Skip
	for _, l := range ls {
		s.MinW, s.MaxW = min(s.MinW, l.W), max(s.MaxW, l.W)
		s.MinH, s.MaxH = min(s.MinH, l.H), max(s.MaxH, l.H)
		s.MinStride, s.MaxStride = min(s.MinStride, l.Stride), max(s.MaxStride, l.Stride)
		s.MinSkip, s.MaxSkip = min(s.MinSkip, l.Skip), max(s.MaxSkip, l.Skip)
		s.TotalSampled += l.SampledPixels()
	}
	// Approximate the union coverage by sampling a coarse grid; exact union
	// of hundreds of rectangles is not needed for reporting.
	const grid = 128
	stepX, stepY := max(w/grid, 1), max(h/grid, 1)
	covered, total := 0, 0
	for y := 0; y < h; y += stepY {
		for x := 0; x < w; x += stepX {
			total++
			for _, l := range ls {
				if l.Contains(x, y) {
					covered++
					break
				}
			}
		}
	}
	if total > 0 {
		s.UnionAreaApproxPixels = int(float64(covered) / float64(total) * float64(w) * float64(h))
	}
	return s
}
