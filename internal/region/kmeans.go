package region

import "math/rand"

// pt is a 2D region-center point used by the k-means clustering.
type pt struct{ x, y float64 }

// ClusterKMeans merges a list of regions into at most k larger regions by
// k-means clustering of region centers, as the paper does to model
// commercial multi-ROI cameras (§5.3: "For workloads that use more regions,
// we combine smaller regions into 16 larger regions through k-means
// clustering"). Each output region is the bounding box of its cluster's
// members with Stride=1, Skip=1 ("we do not implement stride or skip
// adaptations" for the multi-ROI baseline), clipped to the frame.
//
// The function is deterministic for a given seed.
func ClusterKMeans(ls List, k int, frameW, frameH int, seed int64) List {
	if len(ls) == 0 {
		return nil
	}
	if k <= 0 {
		panic("region: k must be positive")
	}
	if len(ls) <= k {
		out := make(List, 0, len(ls))
		for _, l := range ls {
			l.Stride, l.Skip, l.Phase = 1, 1, 0
			out = append(out, l)
		}
		return out.SortByY()
	}

	centers := make([]pt, len(ls))
	for i, l := range ls {
		centers[i] = pt{float64(l.X) + float64(l.W)/2, float64(l.Y) + float64(l.H)/2}
	}

	// k-means++ style seeding: first center random, rest far from chosen.
	rng := rand.New(rand.NewSource(seed))
	seeds := make([]pt, 0, k)
	seeds = append(seeds, centers[rng.Intn(len(centers))])
	for len(seeds) < k {
		best, bestD := 0, -1.0
		for i, c := range centers {
			d := minDist2(c.x, c.y, seeds)
			if d > bestD {
				best, bestD = i, d
			}
		}
		seeds = append(seeds, centers[best])
	}

	assign := make([]int, len(centers))
	for iter := 0; iter < 25; iter++ {
		changed := false
		for i, c := range centers {
			best, bestD := 0, -1.0
			for j, s := range seeds {
				dx, dy := c.x-s.x, c.y-s.y
				d := dx*dx + dy*dy
				if bestD < 0 || d < bestD {
					best, bestD = j, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		var sx, sy = make([]float64, k), make([]float64, k)
		n := make([]int, k)
		for i, a := range assign {
			sx[a] += centers[i].x
			sy[a] += centers[i].y
			n[a]++
		}
		for j := 0; j < k; j++ {
			if n[j] > 0 {
				seeds[j] = pt{sx[j] / float64(n[j]), sy[j] / float64(n[j])}
			}
		}
		if !changed {
			break
		}
	}

	// Bounding box per cluster.
	type box struct {
		x0, y0, x1, y1 int
		used           bool
	}
	boxes := make([]box, k)
	for i, a := range assign {
		l := ls[i]
		if !boxes[a].used {
			boxes[a] = box{l.X, l.Y, l.X + l.W, l.Y + l.H, true}
			continue
		}
		b := &boxes[a]
		b.x0 = min(b.x0, l.X)
		b.y0 = min(b.y0, l.Y)
		b.x1 = max(b.x1, l.X+l.W)
		b.y1 = max(b.y1, l.Y+l.H)
	}
	var out List
	for _, b := range boxes {
		if !b.used {
			continue
		}
		l, ok := Clip(Label{X: b.x0, Y: b.y0, W: b.x1 - b.x0, H: b.y1 - b.y0, Stride: 1, Skip: 1}, frameW, frameH)
		if ok {
			out = append(out, l)
		}
	}
	return out.SortByY()
}

// MergeOverlapping greedily coalesces labels whose rectangles overlap by
// more than overlapThreshold — measured as the overlap coefficient,
// intersection over the smaller area, so nested and chained regions
// collapse — into their bounding box, keeping the finer (smaller) stride
// and the faster (smaller) skip of each merged pair so quality is never
// reduced by merging. Policies use it to trade register pressure against
// capture efficiency — the paper notes that grouping features into fewer
// regions costs memory efficiency (§3.4), which the region-grouping
// ablation quantifies.
func MergeOverlapping(ls List, overlapThreshold float64, frameW, frameH int) List {
	if len(ls) <= 1 {
		return ls.Clone()
	}
	work := ls.Clone()
	merged := true
	for merged {
		merged = false
		for i := 0; i < len(work) && !merged; i++ {
			for j := i + 1; j < len(work); j++ {
				if overlapCoeff(work[i], work[j]) <= overlapThreshold {
					continue
				}
				a, b := work[i], work[j]
				box := Label{
					X:      min(a.X, b.X),
					Y:      min(a.Y, b.Y),
					Stride: min(a.Stride, b.Stride),
					Skip:   min(a.Skip, b.Skip),
				}
				box.W = max(a.X+a.W, b.X+b.W) - box.X
				box.H = max(a.Y+a.H, b.Y+b.H) - box.Y
				box.Phase = a.Phase % box.Skip
				clipped, ok := Clip(box, frameW, frameH)
				if !ok {
					continue
				}
				work[i] = clipped
				work = append(work[:j], work[j+1:]...)
				merged = true
				break
			}
		}
	}
	return work.SortByY()
}

// overlapCoeff returns the overlap coefficient of two labels: rectangle
// intersection over the smaller rectangle's area (1 when either contains
// the other).
func overlapCoeff(a, b Label) float64 {
	x0 := max(a.X, b.X)
	y0 := max(a.Y, b.Y)
	x1 := min(a.X+a.W, b.X+b.W)
	y1 := min(a.Y+a.H, b.Y+b.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	inter := float64((x1 - x0) * (y1 - y0))
	return inter / float64(min(a.Area(), b.Area()))
}

func minDist2(x, y float64, pts []pt) float64 {
	best := -1.0
	for _, p := range pts {
		dx, dy := x-p.x, y-p.y
		d := dx*dx + dy*dy
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}
