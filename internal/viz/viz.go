// Package viz renders EncMasks, region layouts, and frames as compact
// ASCII art for CLI inspection and debugging — the fastest way to see what
// the encoder actually kept.
package viz

import (
	"strings"

	"repro/internal/bitpack"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/region"
)

// maskGlyphs maps EncMask codes to display characters: non-regional is
// blank, strided is light, skipped is medium, captured is solid.
var maskGlyphs = [4]byte{'.', '-', 'o', '#'}

// Mask renders an encoded frame's EncMask downsampled to at most maxCols
// columns. Each output cell shows the dominant code of its pixel block.
func Mask(ef *core.EncodedFrame, maxCols int) string {
	if maxCols < 8 {
		maxCols = 8
	}
	step := (ef.W + maxCols - 1) / maxCols
	if step < 1 {
		step = 1
	}
	var b strings.Builder
	for y := 0; y < ef.H; y += step {
		for x := 0; x < ef.W; x += step {
			var counts [4]int
			for dy := 0; dy < step && y+dy < ef.H; dy++ {
				base := (y + dy) * ef.W
				for dx := 0; dx < step && x+dx < ef.W; dx++ {
					counts[ef.Mask.Get(base+x+dx)]++
				}
			}
			best := 0
			for c := 1; c < 4; c++ {
				if counts[c] > counts[best] {
					best = c
				}
			}
			b.WriteByte(maskGlyphs[best])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Legend describes the Mask glyphs.
func Legend() string {
	return ". non-regional   - strided   o temporally skipped   # captured"
}

// Regions renders a region label layout over a w x h frame downsampled to
// maxCols columns: cells covered by any region print its stride digit
// (capped at 9), empty cells print '.'.
func Regions(ls region.List, w, h, maxCols int) string {
	if maxCols < 8 {
		maxCols = 8
	}
	step := (w + maxCols - 1) / maxCols
	if step < 1 {
		step = 1
	}
	var b strings.Builder
	for y := 0; y < h; y += step {
		for x := 0; x < w; x += step {
			ch := byte('.')
			for _, l := range ls {
				if l.Contains(x, y) {
					s := l.Stride
					if s > 9 {
						s = 9
					}
					ch = byte('0' + s)
					break
				}
			}
			b.WriteByte(ch)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// grayRamp maps luminance to ASCII density.
const grayRamp = " .:-=+*#%@"

// Frame renders a Gray8 (or converted) frame as ASCII downsampled to
// maxCols columns.
func Frame(fr *frame.Frame, maxCols int) string {
	g := fr
	if fr.Format != frame.Gray8 {
		g = fr.ToGray()
	}
	if maxCols < 8 {
		maxCols = 8
	}
	step := (g.W + maxCols - 1) / maxCols
	if step < 1 {
		step = 1
	}
	var b strings.Builder
	for y := 0; y < g.H; y += step * 2 { // character cells are ~2:1
		for x := 0; x < g.W; x += step {
			var sum, n int
			for dy := 0; dy < step*2 && y+dy < g.H; dy++ {
				for dx := 0; dx < step && x+dx < g.W; dx++ {
					sum += int(g.Pix[(y+dy)*g.W+x+dx])
					n++
				}
			}
			idx := sum / n * (len(grayRamp) - 1) / 255
			b.WriteByte(grayRamp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CodeHistogramBar renders the EncMask code distribution as a labeled bar.
func CodeHistogramBar(ef *core.EncodedFrame, width int) string {
	if width < 10 {
		width = 10
	}
	h := ef.Mask.Histogram()
	total := ef.W * ef.H
	var b strings.Builder
	for code := 3; code >= 0; code-- {
		n := h[code]
		fill := n * width / total
		name := bitpack.Code(code).String()
		b.WriteString(name)
		b.WriteString(strings.Repeat(" ", 3-len(name)))
		b.WriteByte('|')
		b.WriteString(strings.Repeat("█", fill))
		b.WriteString(strings.Repeat(" ", width-fill))
		b.WriteString("| ")
		b.WriteString(percent(n, total))
		b.WriteByte('\n')
	}
	return b.String()
}

func percent(n, total int) string {
	if total == 0 {
		return "0%"
	}
	v := n * 1000 / total
	return itoa(v/10) + "." + itoa(v%10) + "%"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
