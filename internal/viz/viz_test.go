package viz

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/region"
)

func encodedFixture(t *testing.T) *core.EncodedFrame {
	t.Helper()
	enc := core.NewEncoder(64, 48, frame.Gray8)
	err := enc.SetRegionLabels(region.List{
		{X: 8, Y: 8, W: 24, H: 24, Stride: 1, Skip: 1},
		{X: 40, Y: 24, W: 16, H: 16, Stride: 2, Skip: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ef, err := enc.EncodeFrame(frame.New(64, 48, frame.Gray8), 1) // frame 1: second region skipped
	if err != nil {
		t.Fatal(err)
	}
	return ef
}

func TestMaskRendering(t *testing.T) {
	ef := encodedFixture(t)
	out := Mask(ef, 32)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 24 { // 48 rows at step 2
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(out, "#") {
		t.Error("no captured cells rendered")
	}
	if !strings.Contains(out, "o") {
		t.Error("no skipped cells rendered")
	}
	if !strings.Contains(out, ".") {
		t.Error("no empty cells rendered")
	}
	if Legend() == "" {
		t.Error("empty legend")
	}
	// Tiny maxCols clamps without panicking.
	if Mask(ef, 1) == "" {
		t.Error("clamped render empty")
	}
}

func TestRegionsRendering(t *testing.T) {
	ls := region.List{
		{X: 0, Y: 0, W: 32, H: 32, Stride: 1, Skip: 1},
		{X: 48, Y: 0, W: 16, H: 16, Stride: 12, Skip: 1}, // stride digit capped at 9
	}
	out := Regions(ls, 64, 48, 32)
	if !strings.Contains(out, "1") || !strings.Contains(out, "9") || !strings.Contains(out, ".") {
		t.Errorf("region render missing glyphs:\n%s", out)
	}
}

func TestFrameRendering(t *testing.T) {
	fr := frame.New(64, 48, frame.Gray8)
	fr.FillRect(0, 0, 32, 48, 255)
	out := Frame(fr, 32)
	if !strings.Contains(out, "@") || !strings.Contains(out, " ") {
		t.Errorf("frame render missing contrast:\n%s", out)
	}
	// RGB input converts.
	rgb := frame.New(16, 16, frame.RGB24)
	if Frame(rgb, 8) == "" {
		t.Error("RGB render empty")
	}
}

func TestCodeHistogramBar(t *testing.T) {
	ef := encodedFixture(t)
	out := CodeHistogramBar(ef, 20)
	for _, want := range []string{"R", "St", "Sk", "N", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q:\n%s", want, out)
		}
	}
	if CodeHistogramBar(ef, 1) == "" { // width clamps
		t.Error("clamped histogram empty")
	}
}

func TestPercentItoa(t *testing.T) {
	if percent(0, 0) != "0%" {
		t.Error("degenerate percent")
	}
	if percent(1, 2) != "50.0%" {
		t.Errorf("percent(1,2) = %q", percent(1, 2))
	}
	if itoa(0) != "0" || itoa(407) != "407" {
		t.Error("itoa wrong")
	}
}
