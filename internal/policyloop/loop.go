// Package policyloop closes the rhythmic-pixel control loop over the wire:
// a worker subscribes to a producing session's frame stream (through rpxd
// directly or an rpxgw in front of a fleet), decodes the pushed frames, runs
// a registry-selected policy over the observed scene once per cycle, and
// pushes the resulting region-label workload back to the producer with
// in-stream label feedback (protocol v5, Stream.SetLabels).
//
// The paper's evaluations drive policies offline from ground truth; this
// package is the deployment shape §4.3.1 implies — the policy lives in a
// separate process from the capture pipeline, sees only what the sensor
// actually encoded, and steers the sensor's rhythm for the frames that
// follow. The server guarantees a deterministic boundary for every pushed
// workload (LABELS_APPLIED carries the first frame index captured under the
// new labels), so the loop's effect on the stream is exact, not
// best-effort.
package policyloop

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/slam"
	"repro/internal/wire"
	"repro/rpx"
	"repro/rpx/client"
)

// Default knobs.
const (
	DefaultCredit      = 64
	DefaultBatch       = 8
	DefaultCycleLength = 4
	DefaultMaxRetries  = 5
	DefaultBackoff     = 100 * time.Millisecond
	maxBackoff         = 5 * time.Second
)

// Config parameterizes a Loop.
type Config struct {
	// Addr is the rpxd (or rpxgw) address to dial.
	Addr string
	// Target is the producing session's server-assigned id whose stream the
	// loop steers.
	Target uint64
	// Policy selects the region policy by registry name (policy.Names).
	Policy string
	// CycleLength is the loop cadence: the policy observes the scene and
	// pushes a fresh workload once every CycleLength streamed frames. The
	// policy's own full-frame renewal cycle runs in push units, so complete
	// scene coverage recurs every CycleLength pushes. 0 selects
	// DefaultCycleLength.
	CycleLength int
	// W, H, Format describe the target session's frames — the geometry the
	// loop's decoder reconstructs. (The loop's own wire session is a minimal
	// placeholder; only the subscription matters.)
	W, H   int
	Format rpx.Format
	// Tile is the motion-grid pitch in pixels (0 = policy.DefaultMotionTile).
	Tile int
	// Features enables the feature/track frontend: keypoints, per-feature
	// displacements, and the global motion estimate from an incremental
	// matcher feed the policy alongside the motion grid. Gray8 targets only.
	Features bool
	// Credit is the push credit window in frames (0 = DefaultCredit); Batch
	// bounds frames per FRAME_PUSH (0 = DefaultBatch).
	Credit, Batch int
	// Timeout bounds each stream read; a producer idle longer than this
	// breaks the subscription (and Reconnect re-attaches). 0 = client
	// default.
	Timeout time.Duration
	// Reconnect re-dials and re-subscribes after transport errors, with
	// exponential backoff. MaxRetries bounds consecutive failed attempts
	// (0 = DefaultMaxRetries; a successful re-attach resets the count);
	// Backoff is the base delay (0 = DefaultBackoff).
	Reconnect  bool
	MaxRetries int
	Backoff    time.Duration
	// Metrics, when non-nil, receives the rpxpolicy_* series.
	Metrics *obs.Registry
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of loop progress.
type Stats struct {
	// Frames is the number of pushed frames received and decoded.
	Frames uint64
	// Cycles is the number of completed observe+push cycles.
	Cycles uint64
	// LabelsPushed counts SetLabels writes; LabelsRejected counts the
	// subset the server refused (bad geometry, backlog) — rejections leave
	// the previous workload in force.
	LabelsPushed   uint64
	LabelsRejected uint64
	// Reconnects counts successful re-attachments after transport errors.
	Reconnects uint64
	// LastBoundary is the most recent LABELS_APPLIED frame index: every
	// frame from it on was captured under the loop's latest accepted
	// workload.
	LastBoundary uint64
}

// Loop is a running closed-loop policy worker. Construct with New, drive
// with Run.
type Loop struct {
	cfg Config
	pol policy.Policy

	// everAttached distinguishes the first subscription from re-attachments
	// (only Run's goroutine touches it).
	everAttached bool

	frames       atomic.Uint64
	cycles       atomic.Uint64
	pushed       atomic.Uint64
	rejected     atomic.Uint64
	reconnects   atomic.Uint64
	lastBoundary atomic.Uint64
	lag          *obs.Histogram
}

// New validates the configuration and builds the policy. An unknown policy
// name fails here, listing the registered names.
func New(cfg Config) (*Loop, error) {
	if cfg.Addr == "" {
		return nil, errors.New("policyloop: no server address")
	}
	if cfg.Target == 0 {
		return nil, errors.New("policyloop: no target session id")
	}
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("policyloop: invalid target geometry %dx%d", cfg.W, cfg.H)
	}
	if cfg.CycleLength <= 0 {
		cfg.CycleLength = DefaultCycleLength
	}
	if cfg.Credit <= 0 {
		cfg.Credit = DefaultCredit
	}
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultBatch
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBackoff
	}
	if cfg.Features && cfg.Format != rpx.Gray8 {
		return nil, fmt.Errorf("policyloop: feature frontend needs Gray8 frames, target is %v", cfg.Format)
	}
	pol, err := policy.Build(cfg.Policy, cfg.W, cfg.H, cfg.CycleLength)
	if err != nil {
		return nil, err
	}
	l := &Loop{cfg: cfg, pol: pol, lag: &obs.Histogram{}}
	if m := cfg.Metrics; m != nil {
		m.CounterFunc("rpxpolicy_frames_total", "pushed frames received and decoded", l.frames.Load)
		m.CounterFunc("rpxpolicy_cycles_total", "completed observe+push policy cycles", l.cycles.Load)
		m.CounterFunc("rpxpolicy_labels_pushed_total", "label workloads pushed to the target", l.pushed.Load)
		m.CounterFunc("rpxpolicy_labels_rejected_total", "pushed workloads the server refused", l.rejected.Load)
		m.CounterFunc("rpxpolicy_reconnects_total", "successful re-attachments after transport errors", l.reconnects.Load)
		m.GaugeFunc("rpxpolicy_last_boundary", "frame index of the latest accepted workload's boundary",
			func() float64 { return float64(l.lastBoundary.Load()) })
		m.RegisterHistogram("rpxpolicy_cycle_lag_seconds", "observe-to-push latency per policy cycle", l.lag)
	}
	return l, nil
}

// Stats returns a snapshot of the loop counters. Safe concurrently with Run.
func (l *Loop) Stats() Stats {
	return Stats{
		Frames:         l.frames.Load(),
		Cycles:         l.cycles.Load(),
		LabelsPushed:   l.pushed.Load(),
		LabelsRejected: l.rejected.Load(),
		Reconnects:     l.reconnects.Load(),
		LastBoundary:   l.lastBoundary.Load(),
	}
}

func (l *Loop) logf(format string, args ...any) {
	if l.cfg.Logf != nil {
		l.cfg.Logf(format, args...)
	}
}

// Run drives the loop until ctx is cancelled (returns nil: graceful drain),
// the producing session ends (returns nil: the stream's natural end), or an
// unrecoverable error occurs. With Reconnect set, transport errors re-dial
// and re-subscribe under exponential backoff instead of returning.
func (l *Loop) Run(ctx context.Context) error {
	attempts := 0
	for {
		attached, err := l.runOnce(ctx)
		if ctx.Err() != nil {
			return nil
		}
		if err == nil {
			return nil
		}
		// A terminal server error means the producer is gone for good
		// (session closed); re-attaching would target a dead id.
		var re *wire.RemoteError
		if errors.As(err, &re) {
			return fmt.Errorf("policyloop: stream ended by server: %w", err)
		}
		if !l.cfg.Reconnect {
			return err
		}
		if attached {
			attempts = 0
		}
		attempts++
		if attempts > l.cfg.MaxRetries {
			return fmt.Errorf("policyloop: giving up after %d attempts: %w", attempts-1, err)
		}
		delay := min(l.cfg.Backoff<<(attempts-1), maxBackoff)
		l.logf("policyloop: %v; re-attaching in %v (attempt %d/%d)", err, delay, attempts, l.cfg.MaxRetries)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(delay):
		}
	}
}

// runOnce dials, subscribes, and runs the decode/observe/push loop until the
// stream ends or errors. attached reports whether the subscription was
// established (used to reset the retry budget).
func (l *Loop) runOnce(ctx context.Context) (attached bool, err error) {
	// The loop's own session is a minimal placeholder — only the
	// subscription (and its v5 label-feedback channel) matters.
	sess, err := client.Dial(l.cfg.Addr, client.Config{
		W: 8, H: 8, Format: rpx.Gray8,
		LabelFeedback:  true,
		RequestTimeout: l.cfg.Timeout,
	})
	if err != nil {
		return false, fmt.Errorf("policyloop: dial %s: %w", l.cfg.Addr, err)
	}
	defer sess.Close()

	st, err := sess.Subscribe(client.SubscribeOptions{
		Target: l.cfg.Target,
		Credit: l.cfg.Credit,
		Batch:  l.cfg.Batch,
	})
	if err != nil {
		return false, fmt.Errorf("policyloop: subscribe to session %d: %w", l.cfg.Target, err)
	}
	if l.everAttached {
		l.reconnects.Add(1)
	}
	l.everAttached = true
	l.logf("policyloop: attached to session %d (policy %s, CL %d, credit %d)",
		l.cfg.Target, l.cfg.Policy, l.cfg.CycleLength, l.cfg.Credit)
	st.OnLabelsApplied(func(la client.LabelsApplied) {
		if la.Err != nil {
			l.rejected.Add(1)
			l.logf("policyloop: workload rejected: %v", la.Err)
			return
		}
		l.lastBoundary.Store(la.AppliedSeq)
	})

	// Recv blocks in a read; cancelling ctx closes the session underneath it
	// so the drain is prompt. watcherDone keeps the watcher from outliving
	// this attachment and closing a future session's connection.
	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		select {
		case <-ctx.Done():
			sess.Close()
		case <-watcherDone:
		}
	}()

	dec := core.NewDecoder(l.cfg.W, l.cfg.H, frame.Format(l.cfg.Format))
	motion := policy.NewMotionMap(l.cfg.W, l.cfg.H, l.cfg.Tile)
	var tracker *slam.System
	if l.cfg.Features {
		tracker = slam.New(slam.DefaultConfig())
	}

	var prev, cur *frame.Frame
	sinceCycle := 0
	pushes := 0
	consumed := 0
	replenish := max(1, l.cfg.Credit/2)
	for {
		f, err := st.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return true, nil
			}
			return true, fmt.Errorf("policyloop: stream receive: %w", err)
		}
		l.frames.Add(1)
		if consumed++; consumed >= replenish {
			if err := st.Grant(consumed); err != nil {
				return true, fmt.Errorf("policyloop: credit grant: %w", err)
			}
			consumed = 0
		}

		ef, err := f.Decode()
		if err != nil {
			return true, fmt.Errorf("policyloop: frame %d container: %w", f.Seq, err)
		}
		if err := dec.Push(ef); err != nil {
			return true, fmt.Errorf("policyloop: frame %d: %w", f.Seq, err)
		}
		img, err := dec.DecodeFrame()
		if err != nil {
			return true, fmt.Errorf("policyloop: decode frame %d: %w", f.Seq, err)
		}
		prev, cur = cur, img

		if sinceCycle++; sinceCycle < l.cfg.CycleLength {
			continue
		}
		sinceCycle = 0
		start := time.Now()
		var fb policy.Feedback
		if prev != nil {
			if err := motion.Update(prev, cur); err != nil {
				return true, fmt.Errorf("policyloop: motion update: %w", err)
			}
			fb.Motion = motion
		}
		if tracker != nil {
			step := tracker.ProcessFrame(cur)
			fb.KeyPoints = step.KeyPoints
			fb.Displacements = step.Displacements
			fb.MeanDisplacement = step.MeanDisplacement
		}
		l.pol.Observe(fb)
		labels := l.pol.Labels(pushes)
		pushes++
		if err := st.SetLabels(labels); err != nil {
			return true, fmt.Errorf("policyloop: push labels: %w", err)
		}
		l.lag.Observe(time.Since(start))
		l.pushed.Add(1)
		l.cycles.Add(1)
	}
}
